//===- sail/Parser.cpp - Mini-Sail parser --------------------------------------===//

#include "sail/Parser.h"

#include "sail/Resolver.h"

using namespace islaris;
using namespace islaris::sail;

std::string Type::toString() const {
  switch (Kind) {
  case K::Unit:
    return "unit";
  case K::Bool:
    return "bool";
  case K::Bits:
    return "bits(" + std::to_string(Width) + ")";
  }
  return "?";
}

void Parser::fail(const std::string &Msg) {
  if (Error.empty())
    Error = "line " + std::to_string(peek().Line) + ": " + Msg;
}

bool Parser::expect(Tok K, const char *What) {
  if (match(K))
    return true;
  fail(std::string("expected ") + What);
  return false;
}

std::optional<Type> Parser::parseType() {
  if (match(Tok::KwUnit))
    return Type::unit();
  if (match(Tok::KwBool))
    return Type::boolean();
  if (match(Tok::KwBits)) {
    if (!expect(Tok::LParen, "'(' after bits"))
      return std::nullopt;
    if (!check(Tok::IntLit)) {
      fail("expected bitvector width");
      return std::nullopt;
    }
    unsigned W = unsigned(advance().Int);
    if (!expect(Tok::RParen, "')' after width"))
      return std::nullopt;
    if (W == 0 || W > BitVec::MaxWidth) {
      fail("unsupported bitvector width");
      return std::nullopt;
    }
    return Type::bits(W);
  }
  fail("expected a type");
  return std::nullopt;
}

bool Parser::parseRegister(Model &M) {
  RegisterDecl R;
  if (!check(Tok::Ident)) {
    fail("expected register name");
    return false;
  }
  R.Name = advance().Text;
  if (!expect(Tok::Colon, "':' after register name"))
    return false;
  if (match(Tok::KwStruct)) {
    R.IsStruct = true;
    if (!expect(Tok::LBrace, "'{' after struct"))
      return false;
    while (true) {
      if (!check(Tok::Ident)) {
        fail("expected field name");
        return false;
      }
      std::string FName = advance().Text;
      if (!expect(Tok::Colon, "':' after field name"))
        return false;
      auto FT = parseType();
      if (!FT)
        return false;
      if (!FT->isBits()) {
        fail("register fields must have bits(N) type");
        return false;
      }
      R.Fields.emplace_back(FName, FT->Width);
      if (match(Tok::RBrace))
        break;
      if (!expect(Tok::Comma, "',' between fields"))
        return false;
    }
  } else {
    auto T = parseType();
    if (!T)
      return false;
    if (!T->isBits()) {
      fail("registers must have bits(N) or struct type");
      return false;
    }
    R.Width = T->Width;
  }
  M.Registers.push_back(std::move(R));
  return true;
}

bool Parser::parseFunction(Model &M) {
  auto F = std::make_unique<FunctionDecl>();
  F->Line = peek().Line;
  if (!check(Tok::Ident)) {
    fail("expected function name");
    return false;
  }
  F->Name = advance().Text;
  if (!expect(Tok::LParen, "'(' after function name"))
    return false;
  if (!match(Tok::RParen)) {
    while (true) {
      Param P;
      if (!check(Tok::Ident)) {
        fail("expected parameter name");
        return false;
      }
      P.Name = advance().Text;
      if (!expect(Tok::Colon, "':' after parameter name"))
        return false;
      auto T = parseType();
      if (!T)
        return false;
      P.Ty = *T;
      F->Params.push_back(std::move(P));
      if (match(Tok::RParen))
        break;
      if (!expect(Tok::Comma, "',' between parameters"))
        return false;
    }
  }
  if (!expect(Tok::Arrow, "'->' before return type"))
    return false;
  auto RT = parseType();
  if (!RT)
    return false;
  F->RetTy = *RT;
  if (!expect(Tok::Assign, "'=' before function body"))
    return false;
  F->Body = parseBlock();
  if (!F->Body)
    return false;
  M.Functions.push_back(std::move(F));
  return true;
}

StmtPtr Parser::parseBlock() {
  if (!expect(Tok::LBrace, "'{'"))
    return nullptr;
  auto B = std::make_unique<Stmt>();
  B->Kind = StmtKind::Block;
  B->Line = peek().Line;
  while (!check(Tok::RBrace)) {
    if (check(Tok::End)) {
      fail("unterminated block");
      return nullptr;
    }
    StmtPtr S = parseStmt();
    if (!S)
      return nullptr;
    B->Body.push_back(std::move(S));
  }
  advance(); // '}'
  return B;
}

StmtPtr Parser::parseIfStmt() {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::If;
  S->Line = peek().Line;
  advance(); // 'if'
  S->Value = parseExpr();
  if (!S->Value)
    return nullptr;
  if (!expect(Tok::KwThen, "'then' after if condition"))
    return nullptr;
  StmtPtr Then = parseBlock();
  if (!Then)
    return nullptr;
  S->Body.push_back(std::move(Then));
  if (match(Tok::KwElse)) {
    if (check(Tok::KwIf)) {
      StmtPtr ElseIf = parseIfStmt();
      if (!ElseIf)
        return nullptr;
      S->Else.push_back(std::move(ElseIf));
    } else {
      StmtPtr Else = parseBlock();
      if (!Else)
        return nullptr;
      S->Else.push_back(std::move(Else));
    }
  }
  match(Tok::Semi); // optional trailing ';'
  return S;
}

StmtPtr Parser::parseStmt() {
  int Line = peek().Line;
  if (check(Tok::KwIf))
    return parseIfStmt();

  auto S = std::make_unique<Stmt>();
  S->Line = Line;

  if (match(Tok::KwLet) || (check(Tok::KwVar) && (advance(), true))) {
    // The condition above consumed either 'let' or 'var'.
    S->Kind = StmtKind::Let;
    S->Mutable = Toks[Pos - 1].Kind == Tok::KwVar;
    if (!check(Tok::Ident)) {
      fail("expected binding name");
      return nullptr;
    }
    S->Name = advance().Text;
    if (!expect(Tok::Assign, "'=' in binding"))
      return nullptr;
    S->Value = parseExpr();
    if (!S->Value || !expect(Tok::Semi, "';' after binding"))
      return nullptr;
    return S;
  }
  if (match(Tok::KwReturn)) {
    S->Kind = StmtKind::Return;
    if (!check(Tok::Semi)) {
      S->Value = parseExpr();
      if (!S->Value)
        return nullptr;
    }
    if (!expect(Tok::Semi, "';' after return"))
      return nullptr;
    return S;
  }
  if (match(Tok::KwThrow)) {
    S->Kind = StmtKind::Throw;
    if (!expect(Tok::LParen, "'(' after throw"))
      return nullptr;
    if (!check(Tok::StrLit)) {
      fail("expected string message in throw");
      return nullptr;
    }
    S->Message = advance().Text;
    if (!expect(Tok::RParen, "')'") || !expect(Tok::Semi, "';'"))
      return nullptr;
    return S;
  }
  if (match(Tok::KwAssert)) {
    S->Kind = StmtKind::Assert;
    if (!expect(Tok::LParen, "'(' after assert"))
      return nullptr;
    S->Value = parseExpr();
    if (!S->Value)
      return nullptr;
    if (match(Tok::Comma)) {
      if (!check(Tok::StrLit)) {
        fail("expected string message in assert");
        return nullptr;
      }
      S->Message = advance().Text;
    }
    if (!expect(Tok::RParen, "')'") || !expect(Tok::Semi, "';'"))
      return nullptr;
    return S;
  }

  // Assignment forms: Name = e;  Name.Field = e;  — otherwise an
  // expression statement (a call).
  if (check(Tok::Ident)) {
    if (peek(1).Kind == Tok::Assign) {
      S->Kind = StmtKind::Assign; // may become RegWrite in the resolver
      S->Name = advance().Text;
      advance(); // '='
      S->Value = parseExpr();
      if (!S->Value || !expect(Tok::Semi, "';' after assignment"))
        return nullptr;
      return S;
    }
    if (peek(1).Kind == Tok::Dot && peek(2).Kind == Tok::Ident &&
        peek(3).Kind == Tok::Assign) {
      S->Kind = StmtKind::RegWrite;
      S->Name = advance().Text;
      advance(); // '.'
      S->Field = advance().Text;
      advance(); // '='
      S->Value = parseExpr();
      if (!S->Value || !expect(Tok::Semi, "';' after register write"))
        return nullptr;
      return S;
    }
  }

  S->Kind = StmtKind::ExprStmt;
  S->Value = parseExpr();
  if (!S->Value || !expect(Tok::Semi, "';' after expression"))
    return nullptr;
  return S;
}

//===----------------------------------------------------------------------===//
// Expressions.
//===----------------------------------------------------------------------===//

namespace {
struct OpInfo {
  BinOp Op;
  int Prec;
};
} // namespace

/// Binary operator table; higher Prec binds tighter.
static bool binOpFor(Tok K, OpInfo &Out) {
  switch (K) {
  case Tok::Pipe:
    Out = {BinOp::BvOr, 1};
    return true; // also boolean-or after resolution
  case Tok::Caret:
    Out = {BinOp::BvXor, 2};
    return true;
  case Tok::Amp:
    Out = {BinOp::BvAnd, 3};
    return true; // also boolean-and
  case Tok::EqEq:
    Out = {BinOp::Eq, 4};
    return true;
  case Tok::NotEq:
    Out = {BinOp::Ne, 4};
    return true;
  case Tok::ULt:
    Out = {BinOp::ULt, 5};
    return true;
  case Tok::ULe:
    Out = {BinOp::ULe, 5};
    return true;
  case Tok::SLt:
    Out = {BinOp::SLt, 5};
    return true;
  case Tok::SLe:
    Out = {BinOp::SLe, 5};
    return true;
  case Tok::UGt: // desugared by swapping operands below
  case Tok::UGe:
  case Tok::SGt:
  case Tok::SGe:
    Out = {BinOp::ULt, 5};
    return true;
  case Tok::At:
    Out = {BinOp::Concat, 6};
    return true;
  case Tok::Shl:
    Out = {BinOp::Shl, 7};
    return true;
  case Tok::LShr:
    Out = {BinOp::LShr, 7};
    return true;
  case Tok::AShr:
    Out = {BinOp::AShr, 7};
    return true;
  case Tok::Plus:
    Out = {BinOp::Add, 8};
    return true;
  case Tok::Minus:
    Out = {BinOp::Sub, 8};
    return true;
  case Tok::Star:
    Out = {BinOp::Mul, 9};
    return true;
  case Tok::Slash:
    Out = {BinOp::UDiv, 9};
    return true;
  case Tok::Percent:
    Out = {BinOp::URem, 9};
    return true;
  default:
    return false;
  }
}

ExprPtr Parser::parseExpr() { return parseBinary(1); }

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  while (true) {
    OpInfo Info;
    Tok K = peek().Kind;
    if (!binOpFor(K, Info) || Info.Prec < MinPrec)
      return Lhs;
    int Line = peek().Line;
    advance();
    ExprPtr Rhs = parseBinary(Info.Prec + 1);
    if (!Rhs)
      return nullptr;
    auto E = std::make_unique<Expr>();
    E->Kind = ExprKind::Binary;
    E->Line = Line;
    // Desugar the "greater" family into swapped-less forms.
    bool Swap = K == Tok::UGt || K == Tok::UGe || K == Tok::SGt ||
                K == Tok::SGe;
    switch (K) {
    case Tok::UGt:
      E->BOp = BinOp::ULt;
      break;
    case Tok::UGe:
      E->BOp = BinOp::ULe;
      break;
    case Tok::SGt:
      E->BOp = BinOp::SLt;
      break;
    case Tok::SGe:
      E->BOp = BinOp::SLe;
      break;
    default:
      E->BOp = Info.Op;
      break;
    }
    if (Swap) {
      E->Args.push_back(std::move(Rhs));
      E->Args.push_back(std::move(Lhs));
    } else {
      E->Args.push_back(std::move(Lhs));
      E->Args.push_back(std::move(Rhs));
    }
    Lhs = std::move(E);
  }
}

ExprPtr Parser::parseUnary() {
  int Line = peek().Line;
  auto mk = [&](UnOp Op, ExprPtr Arg) {
    auto E = std::make_unique<Expr>();
    E->Kind = ExprKind::Unary;
    E->Line = Line;
    E->UOp = Op;
    E->Args.push_back(std::move(Arg));
    return E;
  };
  if (match(Tok::Bang)) {
    ExprPtr A = parseUnary();
    return A ? mk(UnOp::BoolNot, std::move(A)) : nullptr;
  }
  if (match(Tok::Tilde)) {
    ExprPtr A = parseUnary();
    return A ? mk(UnOp::BvNot, std::move(A)) : nullptr;
  }
  if (match(Tok::Minus)) {
    ExprPtr A = parseUnary();
    return A ? mk(UnOp::BvNeg, std::move(A)) : nullptr;
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  if (!E)
    return nullptr;
  while (check(Tok::LBracket)) {
    int Line = peek().Line;
    advance();
    if (!check(Tok::IntLit)) {
      fail("expected literal slice bound");
      return nullptr;
    }
    unsigned Hi = unsigned(advance().Int);
    unsigned Lo = Hi;
    if (match(Tok::DotDot)) {
      if (!check(Tok::IntLit)) {
        fail("expected literal slice lower bound");
        return nullptr;
      }
      Lo = unsigned(advance().Int);
    }
    if (!expect(Tok::RBracket, "']' after slice"))
      return nullptr;
    auto S = std::make_unique<Expr>();
    S->Kind = ExprKind::Slice;
    S->Line = Line;
    S->SliceHi = Hi;
    S->SliceLo = Lo;
    S->Args.push_back(std::move(E));
    E = std::move(S);
  }
  return E;
}

ExprPtr Parser::parsePrimary() {
  int Line = peek().Line;
  auto E = std::make_unique<Expr>();
  E->Line = Line;

  if (check(Tok::BitsLit)) {
    E->Kind = ExprKind::BitsLit;
    E->BitsVal = advance().Bits;
    return E;
  }
  if (check(Tok::IntLit)) {
    E->Kind = ExprKind::IntLit;
    E->IntVal = advance().Int;
    return E;
  }
  if (match(Tok::KwTrue)) {
    E->Kind = ExprKind::BoolLit;
    E->BoolVal = true;
    return E;
  }
  if (match(Tok::KwFalse)) {
    E->Kind = ExprKind::BoolLit;
    E->BoolVal = false;
    return E;
  }
  if (match(Tok::LParen)) {
    ExprPtr Inner = parseExpr();
    if (!Inner || !expect(Tok::RParen, "')'"))
      return nullptr;
    return Inner;
  }
  if (check(Tok::KwIf)) {
    advance();
    E->Kind = ExprKind::IfExpr;
    ExprPtr C = parseExpr();
    if (!C || !expect(Tok::KwThen, "'then' in if expression"))
      return nullptr;
    ExprPtr T = parseExpr();
    if (!T || !expect(Tok::KwElse, "'else' in if expression"))
      return nullptr;
    ExprPtr El = parseExpr();
    if (!El)
      return nullptr;
    E->Args.push_back(std::move(C));
    E->Args.push_back(std::move(T));
    E->Args.push_back(std::move(El));
    return E;
  }
  if (check(Tok::Ident)) {
    std::string Name = advance().Text;
    if (match(Tok::LParen)) {
      E->Kind = ExprKind::Call;
      E->Name = std::move(Name);
      if (!match(Tok::RParen)) {
        while (true) {
          ExprPtr A = parseExpr();
          if (!A)
            return nullptr;
          E->Args.push_back(std::move(A));
          if (match(Tok::RParen))
            break;
          if (!expect(Tok::Comma, "',' between arguments"))
            return nullptr;
        }
      }
      return E;
    }
    if (check(Tok::Dot) && peek(1).Kind == Tok::Ident) {
      // Register field read R.F (also reached for plain locals named with
      // dots — not allowed, so this is unambiguous; the resolver validates).
      advance();
      E->Kind = ExprKind::RegRead;
      E->Name = std::move(Name);
      E->Field = advance().Text;
      return E;
    }
    // Local variable or whole-register read; resolver decides.
    E->Kind = ExprKind::VarRef;
    E->Name = std::move(Name);
    return E;
  }
  fail("expected an expression");
  return nullptr;
}

std::unique_ptr<Model> Parser::parseModel() {
  auto M = std::make_unique<Model>();
  while (!check(Tok::End)) {
    if (match(Tok::KwRegister)) {
      if (!parseRegister(*M))
        return nullptr;
    } else if (match(Tok::KwFunction)) {
      if (!parseFunction(*M))
        return nullptr;
    } else {
      fail("expected 'register' or 'function' at top level");
      return nullptr;
    }
  }
  return M;
}

std::unique_ptr<Model> islaris::sail::parseModel(const std::string &Source,
                                                 std::string &Error) {
  Lexer L(Source);
  if (!L.ok()) {
    Error = L.error();
    return nullptr;
  }
  Parser P(L.tokens());
  auto M = P.parseModel();
  if (!M) {
    Error = P.error();
    return nullptr;
  }
  // Count non-whitespace source lines for reporting.
  unsigned Lines = 0;
  bool NonWs = false;
  for (char C : Source) {
    if (C == '\n') {
      Lines += NonWs;
      NonWs = false;
    } else if (C != ' ' && C != '\t' && C != '\r') {
      NonWs = true;
    }
  }
  Lines += NonWs;
  M->SourceLines = Lines;

  Resolver R(*M);
  if (!R.run()) {
    Error = R.error();
    return nullptr;
  }
  return M;
}
