//===- sail/Printer.cpp - Mini-Sail pretty printer -------------------------------===//

#include "sail/Printer.h"

using namespace islaris;
using namespace islaris::sail;

namespace {

const char *binOpSpelling(BinOp Op) {
  switch (Op) {
  case BinOp::BoolAnd:
  case BinOp::BvAnd:
    return "&";
  case BinOp::BoolOr:
  case BinOp::BvOr:
    return "|";
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "!=";
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::UDiv:
    return "/u";
  case BinOp::URem:
    return "%u";
  case BinOp::BvXor:
    return "^";
  case BinOp::Shl:
    return "<<";
  case BinOp::LShr:
    return ">>";
  case BinOp::AShr:
    return ">>>";
  case BinOp::ULt:
    return "<u";
  case BinOp::ULe:
    return "<=u";
  case BinOp::SLt:
    return "<s";
  case BinOp::SLe:
    return "<=s";
  case BinOp::Concat:
    return "@";
  }
  return "?";
}

std::string pad(unsigned Indent) { return std::string(Indent * 2, ' '); }

std::string printBlockBody(const std::vector<StmtPtr> &Body,
                           unsigned Indent) {
  std::string S = "{\n";
  for (const StmtPtr &Child : Body)
    S += printStmt(*Child, Indent + 1);
  S += pad(Indent) + "}";
  return S;
}

} // namespace

std::string islaris::sail::printExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::BitsLit: {
    // Widths divisible by four print as hex, others as binary — matching
    // the literal forms the lexer accepts (0x / 0b).
    std::string L = E.BitsVal.toString(); // "#x.." or "#b.."
    L[0] = '0';
    return L;
  }
  case ExprKind::BoolLit:
    return E.BoolVal ? "true" : "false";
  case ExprKind::IntLit:
    return std::to_string(E.IntVal);
  case ExprKind::VarRef:
    return E.Name;
  case ExprKind::RegRead:
    return E.Field.empty() ? E.Name : E.Name + "." + E.Field;
  case ExprKind::Call: {
    std::string S;
    switch (E.BuiltinKind) {
    case Builtin::ZeroExtend:
      S = "zero_extend";
      break;
    case Builtin::SignExtend:
      S = "sign_extend";
      break;
    case Builtin::Truncate:
      S = "truncate";
      break;
    case Builtin::ReverseBits:
      S = "reverse_bits";
      break;
    case Builtin::ReadMem:
      S = "read_mem";
      break;
    case Builtin::WriteMem:
      S = "write_mem";
      break;
    case Builtin::None:
      S = E.Name;
      break;
    }
    S += "(";
    for (size_t I = 0; I < E.Args.size(); ++I) {
      if (I)
        S += ", ";
      S += printExpr(*E.Args[I]);
    }
    return S + ")";
  }
  case ExprKind::Unary: {
    const char *Op = E.UOp == UnOp::BoolNot ? "!"
                     : E.UOp == UnOp::BvNot ? "~"
                                            : "-";
    return std::string(Op) + "(" + printExpr(*E.Args[0]) + ")";
  }
  case ExprKind::Binary:
    return "(" + printExpr(*E.Args[0]) + " " + binOpSpelling(E.BOp) + " " +
           printExpr(*E.Args[1]) + ")";
  case ExprKind::IfExpr:
    return "(if " + printExpr(*E.Args[0]) + " then " +
           printExpr(*E.Args[1]) + " else " + printExpr(*E.Args[2]) + ")";
  case ExprKind::Slice: {
    std::string S = "(" + printExpr(*E.Args[0]) + ")[" +
                    std::to_string(E.SliceHi);
    if (E.SliceHi != E.SliceLo)
      S += " .. " + std::to_string(E.SliceLo);
    return S + "]";
  }
  }
  return "<expr>";
}

std::string islaris::sail::printStmt(const Stmt &S, unsigned Indent) {
  std::string P = pad(Indent);
  switch (S.Kind) {
  case StmtKind::Block:
    return P + printBlockBody(S.Body, Indent) + "\n";
  case StmtKind::Let:
    return P + (S.Mutable ? "var " : "let ") + S.Name + " = " +
           printExpr(*S.Value) + ";\n";
  case StmtKind::Assign:
    return P + S.Name + " = " + printExpr(*S.Value) + ";\n";
  case StmtKind::RegWrite:
    return P + S.Name + (S.Field.empty() ? "" : "." + S.Field) + " = " +
           printExpr(*S.Value) + ";\n";
  case StmtKind::If: {
    std::string R = P + "if " + printExpr(*S.Value) + " then ";
    // The then-branch is a single Block statement; else is a Block or a
    // nested If.
    assert(S.Body.size() == 1 && S.Body[0]->Kind == StmtKind::Block &&
           "if-then must hold one block");
    R += printBlockBody(S.Body[0]->Body, Indent);
    if (!S.Else.empty()) {
      if (S.Else[0]->Kind == StmtKind::If) {
        R += " else " + printStmt(*S.Else[0], Indent).substr(P.size());
        return R; // the nested if prints its own terminator
      }
      R += " else " + printBlockBody(S.Else[0]->Body, Indent);
    }
    return R + ";\n";
  }
  case StmtKind::ExprStmt:
    return P + printExpr(*S.Value) + ";\n";
  case StmtKind::Return:
    return P + (S.Value ? "return " + printExpr(*S.Value) : "return") +
           ";\n";
  case StmtKind::Throw:
    return P + "throw(\"" + S.Message + "\");\n";
  case StmtKind::Assert:
    return P + "assert(" + printExpr(*S.Value) +
           (S.Message.empty() ? "" : ", \"" + S.Message + "\"") + ");\n";
  }
  return P + "<stmt>\n";
}

std::string islaris::sail::printModel(const Model &M) {
  std::string S;
  for (const RegisterDecl &R : M.Registers) {
    S += "register " + R.Name + " : ";
    if (R.IsStruct) {
      S += "struct { ";
      for (size_t I = 0; I < R.Fields.size(); ++I) {
        if (I)
          S += ", ";
        S += R.Fields[I].first + " : bits(" +
             std::to_string(R.Fields[I].second) + ")";
      }
      S += " }";
    } else {
      S += "bits(" + std::to_string(R.Width) + ")";
    }
    S += "\n";
  }
  S += "\n";
  for (const auto &F : M.Functions) {
    S += "function " + F->Name + "(";
    for (size_t I = 0; I < F->Params.size(); ++I) {
      if (I)
        S += ", ";
      S += F->Params[I].Name + " : " + F->Params[I].Ty.toString();
    }
    S += ") -> " + F->RetTy.toString() + " = ";
    S += printBlockBody(F->Body->Body, 0);
    S += "\n\n";
  }
  return S;
}
