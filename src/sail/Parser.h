//===- sail/Parser.h - Mini-Sail parser -------------------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for mini-Sail.  parseModel() also runs the
/// resolver (sail/Resolver.h), so a returned Model is fully typed.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SAIL_PARSER_H
#define ISLARIS_SAIL_PARSER_H

#include "sail/Ast.h"
#include "sail/Lexer.h"

#include <memory>
#include <optional>

namespace islaris::sail {

/// Parses (and resolves) a full model.  Returns null and sets \p Error on
/// failure.
std::unique_ptr<Model> parseModel(const std::string &Source,
                                  std::string &Error);

/// Implementation class, exposed for unit tests of individual productions.
class Parser {
public:
  explicit Parser(const std::vector<Token> &Tokens) : Toks(Tokens) {}

  std::unique_ptr<Model> parseModel();
  const std::string &error() const { return Error; }

private:
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  const Token &advance() { return Toks[Pos < Toks.size() - 1 ? Pos++ : Pos]; }
  bool check(Tok K) const { return peek().Kind == K; }
  bool match(Tok K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool expect(Tok K, const char *What);
  void fail(const std::string &Msg);

  bool parseRegister(Model &M);
  bool parseFunction(Model &M);
  std::optional<Type> parseType();

  StmtPtr parseBlock();
  StmtPtr parseStmt();
  StmtPtr parseIfStmt();

  ExprPtr parseExpr();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  const std::vector<Token> &Toks;
  size_t Pos = 0;
  std::string Error;
};

} // namespace islaris::sail

#endif // ISLARIS_SAIL_PARSER_H
