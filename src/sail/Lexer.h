//===- sail/Lexer.h - Mini-Sail lexer ---------------------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SAIL_LEXER_H
#define ISLARIS_SAIL_LEXER_H

#include "support/BitVec.h"

#include <string>
#include <vector>

namespace islaris::sail {

/// Token kinds for the mini-Sail language.
enum class Tok : uint8_t {
  End,
  Ident,
  BitsLit, ///< 0x... or 0b...
  IntLit,  ///< Bare decimal.
  StrLit,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Colon,
  Dot,
  DotDot,
  Arrow, ///< ->
  Assign,
  // Operators.
  EqEq,
  NotEq,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Plus,
  Minus,
  Star,
  Slash,   ///< /u (unsigned division)
  Percent, ///< %u (unsigned remainder)
  Shl,    ///< <<
  LShr,   ///< >>
  AShr,   ///< >>>
  ULt,    ///< <u
  ULe,    ///< <=u
  UGt,    ///< >u
  UGe,    ///< >=u
  SLt,    ///< <s
  SLe,    ///< <=s
  SGt,    ///< >s
  SGe,    ///< >=s
  At, ///< @ (concatenation)
  // Keywords.
  KwRegister,
  KwStruct,
  KwFunction,
  KwBits,
  KwBool,
  KwUnit,
  KwLet,
  KwVar,
  KwIf,
  KwThen,
  KwElse,
  KwReturn,
  KwThrow,
  KwAssert,
  KwTrue,
  KwFalse,
};

struct Token {
  Tok Kind = Tok::End;
  std::string Text; ///< Ident / StrLit contents.
  BitVec Bits;      ///< BitsLit value.
  uint64_t Int = 0; ///< IntLit value.
  int Line = 1;
};

/// Tokenizes mini-Sail source.  Reports the first error via error().
class Lexer {
public:
  explicit Lexer(const std::string &Source);
  const std::vector<Token> &tokens() const { return Tokens; }
  bool ok() const { return Error.empty(); }
  const std::string &error() const { return Error; }

private:
  std::vector<Token> Tokens;
  std::string Error;
};

} // namespace islaris::sail

#endif // ISLARIS_SAIL_LEXER_H
