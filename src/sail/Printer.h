//===- sail/Printer.h - Mini-Sail pretty printer ----------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a (resolved or unresolved) Model back to parseable mini-Sail
/// source.  Expressions print fully parenthesized, so printing is stable
/// under re-parsing (print . parse . print == print); the round-trip
/// property is what the tests check, and it pins down the concrete syntax
/// accepted by the parser.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SAIL_PRINTER_H
#define ISLARIS_SAIL_PRINTER_H

#include "sail/Ast.h"

#include <string>

namespace islaris::sail {

/// Renders one expression (parenthesized).
std::string printExpr(const Expr &E);

/// Renders one statement at the given indentation depth.
std::string printStmt(const Stmt &S, unsigned Indent = 0);

/// Renders a whole model as parseable source.
std::string printModel(const Model &M);

} // namespace islaris::sail

#endif // ISLARIS_SAIL_PRINTER_H
