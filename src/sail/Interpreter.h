//===- sail/Interpreter.h - Concrete mini-Sail execution --------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct (concrete) semantics of mini-Sail models, executing against an
/// itl::MachineState.  This is the reference semantics used by translation
/// validation (§5) and by differential tests of the symbolic executor: the
/// same instruction run (a) concretely here and (b) via its Isla trace under
/// the ITL semantics must agree on final states and visible labels.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SAIL_INTERPRETER_H
#define ISLARIS_SAIL_INTERPRETER_H

#include "itl/OpSem.h"
#include "sail/Ast.h"

#include <optional>

namespace islaris::sail {

/// Outcome of executing a model function.
struct ExecResult {
  bool Ok = false;
  std::string Error; ///< throw()/assert message or runtime error.
};

/// Concrete interpreter over a resolved Model.  Mutates the MachineState
/// passed to callFunction; unmapped memory accesses go through the MMIO
/// oracle and are recorded as labels, mirroring Fig. 10.
class Interpreter {
public:
  Interpreter(const Model &M, itl::MmioOracle *Oracle = nullptr)
      : M(M), Oracle(Oracle) {}

  /// Calls \p Name with \p Args against \p State.  The conventional entry
  /// point for one instruction is callFunction("decode", {opcode}, State).
  ExecResult callFunction(const std::string &Name,
                          const std::vector<smt::Value> &Args,
                          itl::MachineState &State);

  /// Visible MMIO labels accumulated since construction / clearLabels().
  const std::vector<itl::Label> &labels() const { return Labels; }
  void clearLabels() { Labels.clear(); }

private:
  struct Frame {
    std::vector<std::optional<smt::Value>> Locals;
  };
  enum class FlowKind { Normal, Returned };

  /// Statement execution; Returned carries the value in RetVal.
  std::optional<FlowKind> execStmt(const Stmt &S, Frame &F,
                                   itl::MachineState &State);
  std::optional<smt::Value> evalExpr(const Expr &E, Frame &F,
                                     itl::MachineState &State);
  std::optional<smt::Value> callImpl(const FunctionDecl &Fn,
                                     std::vector<smt::Value> Args,
                                     itl::MachineState &State);
  bool err(int Line, const std::string &Msg);

  const Model &M;
  itl::MmioOracle *Oracle;
  std::vector<itl::Label> Labels;
  std::string Error;
  smt::Value RetVal;
  unsigned Depth = 0;
};

} // namespace islaris::sail

#endif // ISLARIS_SAIL_INTERPRETER_H
