//===- sail/Lexer.cpp - Mini-Sail lexer ---------------------------------------===//

#include "sail/Lexer.h"

#include <unordered_map>

using namespace islaris;
using namespace islaris::sail;

static const std::unordered_map<std::string, Tok> &keywords() {
  static const std::unordered_map<std::string, Tok> KW = {
      {"register", Tok::KwRegister}, {"struct", Tok::KwStruct},
      {"function", Tok::KwFunction}, {"bits", Tok::KwBits},
      {"bool", Tok::KwBool},         {"unit", Tok::KwUnit},
      {"let", Tok::KwLet},           {"var", Tok::KwVar},
      {"if", Tok::KwIf},             {"then", Tok::KwThen},
      {"else", Tok::KwElse},         {"return", Tok::KwReturn},
      {"throw", Tok::KwThrow},       {"assert", Tok::KwAssert},
      {"true", Tok::KwTrue},         {"false", Tok::KwFalse},
  };
  return KW;
}

static bool isIdentStart(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_';
}
static bool isIdentChar(char C) {
  return isIdentStart(C) || (C >= '0' && C <= '9');
}
static bool isDigit(char C) { return C >= '0' && C <= '9'; }

Lexer::Lexer(const std::string &Src) {
  size_t I = 0;
  int Line = 1;
  auto fail = [&](const std::string &Msg) {
    if (Error.empty())
      Error = "line " + std::to_string(Line) + ": " + Msg;
  };
  auto push = [&](Tok K) {
    Token T;
    T.Kind = K;
    T.Line = Line;
    Tokens.push_back(std::move(T));
  };

  while (I < Src.size() && Error.empty()) {
    char C = Src[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r') {
      ++I;
      continue;
    }
    if (C == '/' && I + 1 < Src.size() && Src[I + 1] == 'u') {
      push(Tok::Slash);
      I += 2;
      continue;
    }
    if (C == '%' && I + 1 < Src.size() && Src[I + 1] == 'u') {
      push(Tok::Percent);
      I += 2;
      continue;
    }
    if (C == '/' && I + 1 < Src.size() && Src[I + 1] == '/') {
      while (I < Src.size() && Src[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && I + 1 < Src.size() && Src[I + 1] == '*') {
      I += 2;
      while (I + 1 < Src.size() && !(Src[I] == '*' && Src[I + 1] == '/')) {
        if (Src[I] == '\n')
          ++Line;
        ++I;
      }
      if (I + 1 >= Src.size())
        { fail("unterminated block comment"); return; }
      I += 2;
      continue;
    }
    if (isIdentStart(C)) {
      size_t Start = I;
      while (I < Src.size() && isIdentChar(Src[I]))
        ++I;
      std::string Word = Src.substr(Start, I - Start);
      auto KwIt = keywords().find(Word);
      Token T;
      T.Line = Line;
      if (KwIt != keywords().end()) {
        T.Kind = KwIt->second;
      } else {
        T.Kind = Tok::Ident;
        T.Text = std::move(Word);
      }
      Tokens.push_back(std::move(T));
      continue;
    }
    if (isDigit(C)) {
      if (C == '0' && I + 1 < Src.size() &&
          (Src[I + 1] == 'x' || Src[I + 1] == 'b')) {
        size_t Start = I;
        I += 2;
        while (I < Src.size() && (isDigit(Src[I]) ||
                                  (Src[I] >= 'a' && Src[I] <= 'f') ||
                                  (Src[I] >= 'A' && Src[I] <= 'F')))
          ++I;
        Token T;
        T.Kind = Tok::BitsLit;
        T.Line = Line;
        if (!BitVec::fromString(Src.substr(Start, I - Start), T.Bits))
          { fail("malformed bitvector literal"); return; }
        Tokens.push_back(std::move(T));
        continue;
      }
      size_t Start = I;
      while (I < Src.size() && isDigit(Src[I]))
        ++I;
      Token T;
      T.Kind = Tok::IntLit;
      T.Line = Line;
      T.Int = std::stoull(Src.substr(Start, I - Start));
      Tokens.push_back(std::move(T));
      continue;
    }
    if (C == '"') {
      size_t End = Src.find('"', I + 1);
      if (End == std::string::npos)
        { fail("unterminated string literal"); return; }
      Token T;
      T.Kind = Tok::StrLit;
      T.Line = Line;
      T.Text = Src.substr(I + 1, End - I - 1);
      Tokens.push_back(std::move(T));
      I = End + 1;
      continue;
    }

    auto two = [&](char D) {
      return I + 1 < Src.size() && Src[I + 1] == D;
    };
    switch (C) {
    case '(':
      push(Tok::LParen);
      ++I;
      break;
    case ')':
      push(Tok::RParen);
      ++I;
      break;
    case '{':
      push(Tok::LBrace);
      ++I;
      break;
    case '}':
      push(Tok::RBrace);
      ++I;
      break;
    case '[':
      push(Tok::LBracket);
      ++I;
      break;
    case ']':
      push(Tok::RBracket);
      ++I;
      break;
    case ',':
      push(Tok::Comma);
      ++I;
      break;
    case ';':
      push(Tok::Semi);
      ++I;
      break;
    case ':':
      push(Tok::Colon);
      ++I;
      break;
    case '.':
      if (two('.')) {
        push(Tok::DotDot);
        I += 2;
      } else {
        push(Tok::Dot);
        ++I;
      }
      break;
    case '@':
      push(Tok::At);
      ++I;
      break;
    case '&':
      push(Tok::Amp);
      ++I;
      break;
    case '|':
      push(Tok::Pipe);
      ++I;
      break;
    case '^':
      push(Tok::Caret);
      ++I;
      break;
    case '~':
      push(Tok::Tilde);
      ++I;
      break;
    case '+':
      push(Tok::Plus);
      ++I;
      break;
    case '*':
      push(Tok::Star);
      ++I;
      break;
    case '-':
      if (two('>')) {
        push(Tok::Arrow);
        I += 2;
      } else {
        push(Tok::Minus);
        ++I;
      }
      break;
    case '!':
      if (two('=')) {
        push(Tok::NotEq);
        I += 2;
      } else {
        push(Tok::Bang);
        ++I;
      }
      break;
    case '=':
      if (two('=')) {
        push(Tok::EqEq);
        I += 2;
      } else {
        push(Tok::Assign);
        ++I;
      }
      break;
    case '<':
      if (two('<')) {
        push(Tok::Shl);
        I += 2;
      } else if (two('u')) {
        push(Tok::ULt);
        I += 2;
      } else if (two('s')) {
        push(Tok::SLt);
        I += 2;
      } else if (two('=') && I + 2 < Src.size() && Src[I + 2] == 'u') {
        push(Tok::ULe);
        I += 3;
      } else if (two('=') && I + 2 < Src.size() && Src[I + 2] == 's') {
        push(Tok::SLe);
        I += 3;
      } else {
        { fail("use <u/<s/<=u/<=s for comparisons"); return; }
      }
      break;
    case '>':
      if (two('>') && I + 2 < Src.size() && Src[I + 2] == '>') {
        push(Tok::AShr);
        I += 3;
      } else if (two('>')) {
        push(Tok::LShr);
        I += 2;
      } else if (two('u')) {
        push(Tok::UGt);
        I += 2;
      } else if (two('s')) {
        push(Tok::SGt);
        I += 2;
      } else if (two('=') && I + 2 < Src.size() && Src[I + 2] == 'u') {
        push(Tok::UGe);
        I += 3;
      } else if (two('=') && I + 2 < Src.size() && Src[I + 2] == 's') {
        push(Tok::SGe);
        I += 3;
      } else {
        { fail("use >u/>s/>=u/>=s for comparisons"); return; }
      }
      break;
    default:
      { fail(std::string("unexpected character '") + C + "'"); return; }
    }
  }
  Token T;
  T.Kind = Tok::End;
  T.Line = Line;
  Tokens.push_back(std::move(T));
}
