//===- sail/Interpreter.cpp - Concrete mini-Sail execution --------------------===//

#include "sail/Interpreter.h"

using namespace islaris;
using namespace islaris::sail;
using islaris::itl::Label;
using islaris::itl::Reg;
using smt::Value;

bool Interpreter::err(int Line, const std::string &Msg) {
  if (Error.empty())
    Error = "line " + std::to_string(Line) + ": " + Msg;
  return false;
}

std::optional<Value> Interpreter::evalExpr(const Expr &E, Frame &F,
                                           itl::MachineState &State) {
  switch (E.Kind) {
  case ExprKind::BitsLit:
    return Value(E.BitsVal);
  case ExprKind::BoolLit:
    return Value(E.BoolVal);
  case ExprKind::IntLit:
    err(E.Line, "internal: unresolved decimal literal");
    return std::nullopt;
  case ExprKind::VarRef: {
    assert(E.LocalIdx >= 0 && "unresolved local");
    const auto &Slot = F.Locals[size_t(E.LocalIdx)];
    assert(Slot.has_value() && "read of uninitialized local");
    return *Slot;
  }
  case ExprKind::RegRead: {
    const Value *V = State.getReg(Reg(E.Name, E.Field));
    if (!V) {
      err(E.Line, "read of uninitialized register " + E.Name +
                      (E.Field.empty() ? "" : "." + E.Field));
      return std::nullopt;
    }
    assert(V->isBitVec() && V->asBitVec().width() == E.Ty.Width &&
           "machine state register width mismatch");
    return *V;
  }
  case ExprKind::Call: {
    // Builtins.
    switch (E.BuiltinKind) {
    case Builtin::ZeroExtend:
    case Builtin::SignExtend:
    case Builtin::Truncate: {
      auto V = evalExpr(*E.Args[0], F, State);
      if (!V)
        return std::nullopt;
      const BitVec &B = V->asBitVec();
      if (E.BuiltinKind == Builtin::Truncate)
        return Value(B.extract(E.ExtWidth - 1, 0));
      unsigned Extra = E.ExtWidth - B.width();
      return Value(E.BuiltinKind == Builtin::ZeroExtend ? B.zext(Extra)
                                                        : B.sext(Extra));
    }
    case Builtin::ReverseBits: {
      auto V = evalExpr(*E.Args[0], F, State);
      if (!V)
        return std::nullopt;
      return Value(V->asBitVec().reverseBits());
    }
    case Builtin::ReadMem: {
      auto A = evalExpr(*E.Args[0], F, State);
      if (!A)
        return std::nullopt;
      if (!A->asBitVec().fitsUInt64()) {
        err(E.Line, "read_mem address out of range");
        return std::nullopt;
      }
      uint64_t Addr = A->asBitVec().toUInt64();
      if (State.isMapped(Addr, E.MemBytes))
        return Value(State.loadBytes(Addr, E.MemBytes));
      if (!Oracle) {
        err(E.Line, "MMIO read without an oracle");
        return std::nullopt;
      }
      BitVec Data = Oracle->mmioRead(Addr, E.MemBytes);
      Labels.push_back(Label::read(BitVec(64, Addr), Data));
      return Value(Data);
    }
    case Builtin::WriteMem: {
      auto A = evalExpr(*E.Args[0], F, State);
      auto D = evalExpr(*E.Args[1], F, State);
      if (!A || !D)
        return std::nullopt;
      if (!A->asBitVec().fitsUInt64()) {
        err(E.Line, "write_mem address out of range");
        return std::nullopt;
      }
      uint64_t Addr = A->asBitVec().toUInt64();
      if (State.isMapped(Addr, E.MemBytes))
        State.storeBytes(Addr, D->asBitVec().toBytes());
      else
        Labels.push_back(Label::write(BitVec(64, Addr), D->asBitVec()));
      return Value(BitVec(1, 0)); // unit placeholder
    }
    case Builtin::None:
      break;
    }
    // User function.
    std::vector<Value> Args;
    Args.reserve(E.Args.size());
    for (const ExprPtr &A : E.Args) {
      auto V = evalExpr(*A, F, State);
      if (!V)
        return std::nullopt;
      Args.push_back(std::move(*V));
    }
    return callImpl(*E.Callee, std::move(Args), State);
  }
  case ExprKind::Unary: {
    auto V = evalExpr(*E.Args[0], F, State);
    if (!V)
      return std::nullopt;
    switch (E.UOp) {
    case UnOp::BoolNot:
      return Value(!V->asBool());
    case UnOp::BvNot:
      return Value(V->asBitVec().bvnot());
    case UnOp::BvNeg:
      return Value(V->asBitVec().neg());
    }
    return std::nullopt;
  }
  case ExprKind::Binary: {
    // Short-circuit the boolean connectives.
    if (E.BOp == BinOp::BoolAnd || E.BOp == BinOp::BoolOr) {
      auto L = evalExpr(*E.Args[0], F, State);
      if (!L)
        return std::nullopt;
      if (E.BOp == BinOp::BoolAnd && !L->asBool())
        return Value(false);
      if (E.BOp == BinOp::BoolOr && L->asBool())
        return Value(true);
      return evalExpr(*E.Args[1], F, State);
    }
    auto L = evalExpr(*E.Args[0], F, State);
    auto R = evalExpr(*E.Args[1], F, State);
    if (!L || !R)
      return std::nullopt;
    switch (E.BOp) {
    case BinOp::Eq:
      return Value(*L == *R);
    case BinOp::Ne:
      return Value(*L != *R);
    case BinOp::Add:
      return Value(L->asBitVec().add(R->asBitVec()));
    case BinOp::Sub:
      return Value(L->asBitVec().sub(R->asBitVec()));
    case BinOp::Mul:
      return Value(L->asBitVec().mul(R->asBitVec()));
    case BinOp::UDiv:
      return Value(L->asBitVec().udiv(R->asBitVec()));
    case BinOp::URem:
      return Value(L->asBitVec().urem(R->asBitVec()));
    case BinOp::BvAnd:
      return Value(L->asBitVec().bvand(R->asBitVec()));
    case BinOp::BvOr:
      return Value(L->asBitVec().bvor(R->asBitVec()));
    case BinOp::BvXor:
      return Value(L->asBitVec().bvxor(R->asBitVec()));
    case BinOp::Shl:
      return Value(L->asBitVec().shl(R->asBitVec()));
    case BinOp::LShr:
      return Value(L->asBitVec().lshr(R->asBitVec()));
    case BinOp::AShr:
      return Value(L->asBitVec().ashr(R->asBitVec()));
    case BinOp::ULt:
      return Value(L->asBitVec().ult(R->asBitVec()));
    case BinOp::ULe:
      return Value(L->asBitVec().ule(R->asBitVec()));
    case BinOp::SLt:
      return Value(L->asBitVec().slt(R->asBitVec()));
    case BinOp::SLe:
      return Value(L->asBitVec().sle(R->asBitVec()));
    case BinOp::Concat:
      return Value(L->asBitVec().concat(R->asBitVec()));
    case BinOp::BoolAnd:
    case BinOp::BoolOr:
      break; // handled above
    }
    err(E.Line, "internal: unhandled binary operator");
    return std::nullopt;
  }
  case ExprKind::IfExpr: {
    auto C = evalExpr(*E.Args[0], F, State);
    if (!C)
      return std::nullopt;
    return evalExpr(*E.Args[C->asBool() ? 1 : 2], F, State);
  }
  case ExprKind::Slice: {
    auto V = evalExpr(*E.Args[0], F, State);
    if (!V)
      return std::nullopt;
    return Value(V->asBitVec().extract(E.SliceHi, E.SliceLo));
  }
  }
  err(E.Line, "internal: unhandled expression kind");
  return std::nullopt;
}

std::optional<Interpreter::FlowKind>
Interpreter::execStmt(const Stmt &S, Frame &F, itl::MachineState &State) {
  switch (S.Kind) {
  case StmtKind::Block:
    for (const StmtPtr &Child : S.Body) {
      auto Flow = execStmt(*Child, F, State);
      if (!Flow)
        return std::nullopt;
      if (*Flow == FlowKind::Returned)
        return Flow;
    }
    return FlowKind::Normal;
  case StmtKind::Let: {
    auto V = evalExpr(*S.Value, F, State);
    if (!V)
      return std::nullopt;
    F.Locals[size_t(S.LocalIdx)] = std::move(*V);
    return FlowKind::Normal;
  }
  case StmtKind::Assign: {
    auto V = evalExpr(*S.Value, F, State);
    if (!V)
      return std::nullopt;
    F.Locals[size_t(S.LocalIdx)] = std::move(*V);
    return FlowKind::Normal;
  }
  case StmtKind::RegWrite: {
    auto V = evalExpr(*S.Value, F, State);
    if (!V)
      return std::nullopt;
    State.setReg(Reg(S.Name, S.Field), std::move(*V));
    return FlowKind::Normal;
  }
  case StmtKind::If: {
    auto C = evalExpr(*S.Value, F, State);
    if (!C)
      return std::nullopt;
    const auto &Branch = C->asBool() ? S.Body : S.Else;
    for (const StmtPtr &Child : Branch) {
      auto Flow = execStmt(*Child, F, State);
      if (!Flow)
        return std::nullopt;
      if (*Flow == FlowKind::Returned)
        return Flow;
    }
    return FlowKind::Normal;
  }
  case StmtKind::ExprStmt:
    if (!evalExpr(*S.Value, F, State))
      return std::nullopt;
    return FlowKind::Normal;
  case StmtKind::Return:
    if (S.Value) {
      auto V = evalExpr(*S.Value, F, State);
      if (!V)
        return std::nullopt;
      RetVal = std::move(*V);
    }
    return FlowKind::Returned;
  case StmtKind::Throw:
    err(S.Line, "model exception: " + S.Message);
    return std::nullopt;
  case StmtKind::Assert: {
    auto C = evalExpr(*S.Value, F, State);
    if (!C)
      return std::nullopt;
    if (!C->asBool()) {
      err(S.Line, "model assertion failed: " + S.Message);
      return std::nullopt;
    }
    return FlowKind::Normal;
  }
  }
  err(S.Line, "internal: unhandled statement kind");
  return std::nullopt;
}

std::optional<Value> Interpreter::callImpl(const FunctionDecl &Fn,
                                           std::vector<Value> Args,
                                           itl::MachineState &State) {
  if (++Depth > 128) {
    err(Fn.Line, "call depth limit exceeded in " + Fn.Name);
    --Depth;
    return std::nullopt;
  }
  Frame F;
  F.Locals.resize(Fn.NumLocals);
  for (size_t I = 0; I < Args.size(); ++I)
    F.Locals[I] = std::move(Args[I]);
  RetVal = Value(BitVec(1, 0));
  auto Flow = execStmt(*Fn.Body, F, State);
  --Depth;
  if (!Flow)
    return std::nullopt;
  if (*Flow == FlowKind::Normal && !Fn.RetTy.isUnit()) {
    err(Fn.Line, "function " + Fn.Name + " fell off the end");
    return std::nullopt;
  }
  return RetVal;
}

ExecResult Interpreter::callFunction(const std::string &Name,
                                     const std::vector<Value> &Args,
                                     itl::MachineState &State) {
  Error.clear();
  const FunctionDecl *Fn = M.findFunction(Name);
  if (!Fn)
    return {false, "unknown function " + Name};
  if (Fn->Params.size() != Args.size())
    return {false, "arity mismatch calling " + Name};
  auto R = callImpl(*Fn, Args, State);
  if (!R)
    return {false, Error};
  return {true, ""};
}
