//===- sail/Ast.h - Mini-Sail abstract syntax -------------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-Sail ISA definition language.  This stands in for Sail itself:
/// the Armv8-A and RISC-V instruction semantics (src/models) are written in
/// it, the concrete interpreter (sail/Interpreter.h) gives it a direct
/// semantics, and the Isla-style symbolic executor (isla/Executor.h)
/// evaluates it symbolically to produce ITL traces.
///
/// The language is a first-order imperative expression language over
/// fixed-width bitvectors: registers (optionally struct-shaped with named
/// bitvector fields), pure functions with a single return value, if/else,
/// let/var locals, bitvector operators, slicing, concatenation, memory
/// builtins, and Sail-style exceptions (`throw`) for UNDEFINED encodings.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SAIL_AST_H
#define ISLARIS_SAIL_AST_H

#include "support/BitVec.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace islaris::sail {

/// A mini-Sail type: unit, bool, or bits(N).
struct Type {
  enum class K : uint8_t { Unit, Bool, Bits } Kind = K::Unit;
  unsigned Width = 0; ///< Valid for Bits.

  static Type unit() { return {K::Unit, 0}; }
  static Type boolean() { return {K::Bool, 0}; }
  static Type bits(unsigned W) { return {K::Bits, W}; }

  bool isUnit() const { return Kind == K::Unit; }
  bool isBool() const { return Kind == K::Bool; }
  bool isBits() const { return Kind == K::Bits; }
  bool operator==(const Type &O) const {
    return Kind == O.Kind && Width == O.Width;
  }
  bool operator!=(const Type &O) const { return !(*this == O); }
  std::string toString() const;
};

/// Unary operators.
enum class UnOp : uint8_t { BoolNot, BvNot, BvNeg };

/// Binary operators.  Comparison operators carry their signedness in the
/// name, as in Sail's <_u / <_s family.
enum class BinOp : uint8_t {
  BoolAnd,
  BoolOr,
  Eq,
  Ne,
  Add,
  Sub,
  Mul,
  UDiv,
  URem,
  BvAnd,
  BvOr,
  BvXor,
  Shl,
  LShr,
  AShr,
  ULt,
  ULe,
  SLt,
  SLe,
  Concat,
};

/// Builtin functions with width-polymorphic or effectful signatures.
enum class Builtin : uint8_t {
  None,
  ZeroExtend,  ///< zero_extend(e, W) — extend to absolute width W.
  SignExtend,  ///< sign_extend(e, W)
  Truncate,    ///< truncate(e, W) — keep the low W bits.
  ReverseBits, ///< reverse_bits(e) — the rbit primitive.
  ReadMem,     ///< read_mem(addr, N) -> bits(8N); effectful.
  WriteMem,    ///< write_mem(addr, data, N) -> unit; effectful.
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct FunctionDecl;

/// Expression node kinds.
enum class ExprKind : uint8_t {
  BitsLit,  ///< 0x... / 0b... literal.
  BoolLit,  ///< true / false.
  IntLit,   ///< Bare decimal literal; only valid as a width/bound argument.
  VarRef,   ///< Local variable or parameter.
  RegRead,  ///< Register or register-field read.
  Call,     ///< User function or builtin call.
  Unary,    ///< UnOp.
  Binary,   ///< BinOp.
  IfExpr,   ///< if c then e1 else e2 (expression form).
  Slice,    ///< e[hi .. lo] or e[i] with literal bounds.
};

/// An expression.  After resolution, Ty is the computed type, VarRef carries
/// LocalIdx, and Call carries either Callee or BuiltinKind.
struct Expr {
  ExprKind Kind;
  // Source position for diagnostics.
  int Line = 0;

  // Literals.
  BitVec BitsVal;
  bool BoolVal = false;
  uint64_t IntVal = 0;

  // Names.
  std::string Name;  ///< VarRef / RegRead base / Call target.
  std::string Field; ///< RegRead field (empty for whole register).

  // Children.
  std::vector<ExprPtr> Args; ///< Call args / Unary[0] / Binary[0,1] /
                             ///< IfExpr[c,t,e] / Slice[0].
  UnOp UOp = UnOp::BoolNot;
  BinOp BOp = BinOp::Add;
  unsigned SliceHi = 0, SliceLo = 0;

  // Resolution results.
  Type Ty;
  int LocalIdx = -1;
  const FunctionDecl *Callee = nullptr;
  Builtin BuiltinKind = Builtin::None;
  unsigned ExtWidth = 0;   ///< Resolved width for extend/truncate.
  unsigned MemBytes = 0;   ///< Resolved byte count for read_mem/write_mem.
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Statement node kinds.
enum class StmtKind : uint8_t {
  Let,      ///< let x = e;  or  var x = e;
  Assign,   ///< x = e;   (x must be a `var` local)
  RegWrite, ///< R = e;  or  R.F = e;
  If,       ///< if c then { ... } else { ... }
  ExprStmt, ///< A call evaluated for its effects.
  Return,   ///< return e;  or  return;
  Throw,    ///< throw("msg") — Sail-level failure (UNDEFINED etc.).
  Assert,   ///< assert(c, "msg") — model invariant.
  Block,    ///< { s1 ... sn }
};

struct Stmt {
  StmtKind Kind;
  int Line = 0;

  std::string Name;  ///< Let/Assign target, RegWrite base.
  std::string Field; ///< RegWrite field.
  bool Mutable = false;
  std::string Message; ///< Throw/Assert message.

  ExprPtr Value; ///< Let/Assign/RegWrite/Return value, If/Assert condition,
                 ///< ExprStmt expression.
  std::vector<StmtPtr> Body; ///< If-then block / Block statements.
  std::vector<StmtPtr> Else; ///< If-else block.

  // Resolution results.
  int LocalIdx = -1;
};

/// A function parameter.
struct Param {
  std::string Name;
  Type Ty;
};

/// A top-level function.
struct FunctionDecl {
  std::string Name;
  std::vector<Param> Params;
  Type RetTy;
  StmtPtr Body;
  int Line = 0;

  /// Total number of local slots (params + lets), set by the resolver.
  unsigned NumLocals = 0;

  /// Statically effect-free: no register or memory access, no throw/assert,
  /// and only calls to pure functions (recursion is conservatively impure).
  /// Set by the resolver; the executor may memoize calls to pure helpers
  /// within a run, with a dynamic no-events-emitted check as a second fence.
  bool IsPure = false;
};

/// A register declaration: a plain bitvector or a struct of named bitvector
/// fields (e.g. PSTATE).
struct RegisterDecl {
  std::string Name;
  bool IsStruct = false;
  unsigned Width = 0;                              ///< Plain registers.
  std::vector<std::pair<std::string, unsigned>> Fields; ///< Struct registers.

  /// Width of the named field; asserts if absent.
  unsigned fieldWidth(const std::string &F) const {
    for (const auto &[Name2, W] : Fields)
      if (Name2 == F)
        return W;
    assert(false && "unknown register field");
    return 0;
  }
  bool hasField(const std::string &F) const {
    for (const auto &[Name2, W] : Fields)
      if (Name2 == F)
        return true;
    return false;
  }
};

/// A complete mini-Sail model: registers plus functions.  The conventional
/// entry point is `decode(opcode : bits(32)) -> unit`, which executes one
/// instruction including the PC update.
struct Model {
  /// Process-unique identity, minted at construction and never reused.
  /// Identity caches (cache::fingerprintModel's memo) key on this instead
  /// of the address: with hot model reloads parsing and freeing Model
  /// instances, a recycled heap address must not resurrect a dead model's
  /// cached fingerprint into fresh cache keys.
  const uint64_t Uid = nextUid();

  std::vector<RegisterDecl> Registers;
  std::vector<std::unique_ptr<FunctionDecl>> Functions;

  std::unordered_map<std::string, const RegisterDecl *> RegisterByName;
  std::unordered_map<std::string, const FunctionDecl *> FunctionByName;

  const RegisterDecl *findRegister(const std::string &Name) const {
    auto It = RegisterByName.find(Name);
    return It == RegisterByName.end() ? nullptr : It->second;
  }
  const FunctionDecl *findFunction(const std::string &Name) const {
    auto It = FunctionByName.find(Name);
    return It == FunctionByName.end() ? nullptr : It->second;
  }

  /// Non-whitespace source line count (for DESIGN/EXPERIMENTS reporting).
  unsigned SourceLines = 0;

private:
  static uint64_t nextUid() {
    static std::atomic<uint64_t> Counter{0};
    return Counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }
};

} // namespace islaris::sail

#endif // ISLARIS_SAIL_AST_H
