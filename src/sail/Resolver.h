//===- sail/Resolver.h - Mini-Sail name resolution and typing ---*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resolves names (locals vs. registers vs. functions vs. builtins), checks
/// types, and annotates the AST in place.  Every bitvector width is static;
/// resolution failures are model-authoring bugs caught before any execution.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SAIL_RESOLVER_H
#define ISLARIS_SAIL_RESOLVER_H

#include "sail/Ast.h"

#include <string>
#include <vector>

namespace islaris::sail {

/// Resolves and type-checks a parsed Model in place.
class Resolver {
public:
  explicit Resolver(Model &M) : M(M) {}

  /// Returns false and sets error() on the first failure.
  bool run();
  const std::string &error() const { return Error; }

private:
  struct Local {
    std::string Name;
    Type Ty;
    bool Mutable;
    int Idx;
  };

  bool resolveFunction(FunctionDecl &F);
  bool resolveStmt(Stmt &S);
  bool resolveExpr(Expr &E);
  bool resolveCall(Expr &E);
  void classifyPurity();
  Local *lookupLocal(const std::string &Name);
  bool fail(int Line, const std::string &Msg);

  Model &M;
  std::string Error;
  FunctionDecl *CurFn = nullptr;
  std::vector<Local> Locals;
  std::vector<size_t> ScopeMarks;
  unsigned NextLocalIdx = 0;
};

} // namespace islaris::sail

#endif // ISLARIS_SAIL_RESOLVER_H
