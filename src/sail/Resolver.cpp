//===- sail/Resolver.cpp - Mini-Sail name resolution and typing ----------------===//

#include "sail/Resolver.h"

#include <unordered_map>

using namespace islaris;
using namespace islaris::sail;

bool Resolver::fail(int Line, const std::string &Msg) {
  if (Error.empty())
    Error = "line " + std::to_string(Line) + ": " + Msg;
  return false;
}

Resolver::Local *Resolver::lookupLocal(const std::string &Name) {
  for (size_t I = Locals.size(); I-- > 0;)
    if (Locals[I].Name == Name)
      return &Locals[I];
  return nullptr;
}

bool Resolver::run() {
  for (const RegisterDecl &R : M.Registers) {
    if (!M.RegisterByName.emplace(R.Name, &R).second)
      return fail(0, "duplicate register " + R.Name);
  }
  for (const auto &F : M.Functions) {
    if (!M.FunctionByName.emplace(F->Name, F.get()).second)
      return fail(F->Line, "duplicate function " + F->Name);
    if (M.RegisterByName.count(F->Name))
      return fail(F->Line, "function shadows register " + F->Name);
  }
  for (const auto &F : M.Functions)
    if (!resolveFunction(*F))
      return false;
  classifyPurity();
  return true;
}

namespace {

/// Purity lattice for the fixed-point below.
enum class Purity : uint8_t { Unvisited, InProgress, Pure, Impure };

struct PurityScan {
  std::unordered_map<const FunctionDecl *, Purity> State;

  bool stmtPure(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::RegWrite:
    case StmtKind::Throw:
    case StmtKind::Assert:
      // Throw/assert shape the path set (and assert queries the solver), so
      // a function containing either is never a memoizable summary.
      return false;
    case StmtKind::Block: {
      for (const StmtPtr &C : S.Body)
        if (!stmtPure(*C))
          return false;
      return true;
    }
    case StmtKind::If: {
      if (!exprPure(*S.Value))
        return false;
      for (const StmtPtr &C : S.Body)
        if (!stmtPure(*C))
          return false;
      for (const StmtPtr &C : S.Else)
        if (!stmtPure(*C))
          return false;
      return true;
    }
    case StmtKind::Let:
    case StmtKind::Assign:
    case StmtKind::ExprStmt:
      return exprPure(*S.Value);
    case StmtKind::Return:
      return !S.Value || exprPure(*S.Value);
    }
    return false;
  }

  bool exprPure(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::RegRead:
      return false;
    case ExprKind::Call:
      if (E.BuiltinKind == Builtin::ReadMem ||
          E.BuiltinKind == Builtin::WriteMem)
        return false;
      if (E.BuiltinKind == Builtin::None && !fnPure(*E.Callee))
        return false;
      break;
    default:
      break;
    }
    for (const ExprPtr &A : E.Args)
      if (!exprPure(*A))
        return false;
    return true;
  }

  bool fnPure(const FunctionDecl &F) {
    Purity &P = State[&F];
    if (P == Purity::InProgress)
      return false; // recursion: conservatively impure
    if (P != Purity::Unvisited)
      return P == Purity::Pure;
    P = Purity::InProgress;
    bool Pure = stmtPure(*F.Body);
    State[&F] = Pure ? Purity::Pure : Purity::Impure;
    return Pure;
  }
};

} // namespace

void Resolver::classifyPurity() {
  PurityScan Scan;
  for (const auto &F : M.Functions)
    F->IsPure = Scan.fnPure(*F);
}

bool Resolver::resolveFunction(FunctionDecl &F) {
  CurFn = &F;
  Locals.clear();
  ScopeMarks.clear();
  NextLocalIdx = 0;
  for (const Param &P : F.Params) {
    if (lookupLocal(P.Name))
      return fail(F.Line, "duplicate parameter " + P.Name);
    Locals.push_back({P.Name, P.Ty, false, int(NextLocalIdx++)});
  }
  if (!resolveStmt(*F.Body))
    return false;
  F.NumLocals = NextLocalIdx;
  return true;
}

bool Resolver::resolveCall(Expr &E) {
  // Builtins first.
  const std::string &N = E.Name;
  auto checkArgs = [&](size_t Want) {
    if (E.Args.size() != Want)
      return fail(E.Line, N + " expects " + std::to_string(Want) +
                              " argument(s)");
    return true;
  };
  auto intArg = [&](size_t I, uint64_t &Out) {
    if (E.Args[I]->Kind != ExprKind::IntLit)
      return fail(E.Line, N + ": argument " + std::to_string(I + 1) +
                              " must be a decimal literal");
    Out = E.Args[I]->IntVal;
    return true;
  };

  if (N == "zero_extend" || N == "sign_extend" || N == "truncate") {
    if (!checkArgs(2))
      return false;
    if (!resolveExpr(*E.Args[0]))
      return false;
    uint64_t W;
    if (!intArg(1, W))
      return false;
    if (!E.Args[0]->Ty.isBits())
      return fail(E.Line, N + " needs a bitvector operand");
    unsigned OrigW = E.Args[0]->Ty.Width;
    if (N == "truncate") {
      if (W == 0 || W > OrigW)
        return fail(E.Line, "truncate width out of range");
      E.BuiltinKind = Builtin::Truncate;
    } else {
      if (W < OrigW || W > BitVec::MaxWidth)
        return fail(E.Line, N + " width out of range");
      E.BuiltinKind =
          N == "zero_extend" ? Builtin::ZeroExtend : Builtin::SignExtend;
    }
    E.ExtWidth = unsigned(W);
    E.Ty = Type::bits(unsigned(W));
    return true;
  }
  if (N == "reverse_bits") {
    if (!checkArgs(1) || !resolveExpr(*E.Args[0]))
      return false;
    if (!E.Args[0]->Ty.isBits())
      return fail(E.Line, "reverse_bits needs a bitvector operand");
    E.BuiltinKind = Builtin::ReverseBits;
    E.Ty = E.Args[0]->Ty;
    return true;
  }
  if (N == "read_mem") {
    if (!checkArgs(2) || !resolveExpr(*E.Args[0]))
      return false;
    uint64_t Bytes;
    if (!intArg(1, Bytes))
      return false;
    if (E.Args[0]->Ty != Type::bits(64))
      return fail(E.Line, "read_mem address must be bits(64)");
    if (Bytes < 1 || Bytes > 16)
      return fail(E.Line, "read_mem size out of range");
    E.BuiltinKind = Builtin::ReadMem;
    E.MemBytes = unsigned(Bytes);
    E.Ty = Type::bits(unsigned(Bytes) * 8);
    return true;
  }
  if (N == "write_mem") {
    if (!checkArgs(3) || !resolveExpr(*E.Args[0]) || !resolveExpr(*E.Args[1]))
      return false;
    uint64_t Bytes;
    if (!intArg(2, Bytes))
      return false;
    if (E.Args[0]->Ty != Type::bits(64))
      return fail(E.Line, "write_mem address must be bits(64)");
    if (Bytes < 1 || Bytes > 16)
      return fail(E.Line, "write_mem size out of range");
    if (E.Args[1]->Ty != Type::bits(unsigned(Bytes) * 8))
      return fail(E.Line, "write_mem data width mismatch");
    E.BuiltinKind = Builtin::WriteMem;
    E.MemBytes = unsigned(Bytes);
    E.Ty = Type::unit();
    return true;
  }

  // User function.
  const FunctionDecl *F = M.findFunction(N);
  if (!F)
    return fail(E.Line, "unknown function " + N);
  if (E.Args.size() != F->Params.size())
    return fail(E.Line, N + " expects " + std::to_string(F->Params.size()) +
                            " argument(s)");
  for (size_t I = 0; I < E.Args.size(); ++I) {
    if (!resolveExpr(*E.Args[I]))
      return false;
    if (E.Args[I]->Ty != F->Params[I].Ty)
      return fail(E.Line, N + ": argument " + std::to_string(I + 1) +
                              " has type " + E.Args[I]->Ty.toString() +
                              ", expected " + F->Params[I].Ty.toString());
  }
  E.Callee = F;
  E.Ty = F->RetTy;
  return true;
}

bool Resolver::resolveExpr(Expr &E) {
  switch (E.Kind) {
  case ExprKind::BitsLit:
    E.Ty = Type::bits(E.BitsVal.width());
    return true;
  case ExprKind::BoolLit:
    E.Ty = Type::boolean();
    return true;
  case ExprKind::IntLit:
    return fail(E.Line, "decimal literal only allowed as a width argument "
                        "or shift amount; use 0x/0b literals for values");
  case ExprKind::VarRef: {
    if (Local *L = lookupLocal(E.Name)) {
      E.LocalIdx = L->Idx;
      E.Ty = L->Ty;
      return true;
    }
    if (const RegisterDecl *R = M.findRegister(E.Name)) {
      if (R->IsStruct)
        return fail(E.Line, "struct register " + E.Name +
                                " must be accessed via a field");
      E.Kind = ExprKind::RegRead;
      E.Ty = Type::bits(R->Width);
      return true;
    }
    return fail(E.Line, "unknown name " + E.Name);
  }
  case ExprKind::RegRead: {
    const RegisterDecl *R = M.findRegister(E.Name);
    if (!R)
      return fail(E.Line, "unknown register " + E.Name);
    if (E.Field.empty()) {
      if (R->IsStruct)
        return fail(E.Line, "struct register " + E.Name +
                                " must be accessed via a field");
      E.Ty = Type::bits(R->Width);
      return true;
    }
    if (!R->IsStruct || !R->hasField(E.Field))
      return fail(E.Line, "register " + E.Name + " has no field " + E.Field);
    E.Ty = Type::bits(R->fieldWidth(E.Field));
    return true;
  }
  case ExprKind::Call:
    return resolveCall(E);
  case ExprKind::Unary: {
    if (!resolveExpr(*E.Args[0]))
      return false;
    const Type &T = E.Args[0]->Ty;
    if (E.UOp == UnOp::BoolNot) {
      if (!T.isBool())
        return fail(E.Line, "'!' needs a boolean operand");
      E.Ty = Type::boolean();
      return true;
    }
    if (!T.isBits())
      return fail(E.Line, "bitwise operator needs a bitvector operand");
    E.Ty = T;
    return true;
  }
  case ExprKind::Binary: {
    // Shift amounts may be decimal literals: give them the width of the
    // left operand.
    if ((E.BOp == BinOp::Shl || E.BOp == BinOp::LShr ||
         E.BOp == BinOp::AShr) &&
        E.Args[1]->Kind == ExprKind::IntLit) {
      if (!resolveExpr(*E.Args[0]))
        return false;
      if (!E.Args[0]->Ty.isBits())
        return fail(E.Line, "shift needs a bitvector operand");
      Expr &Amt = *E.Args[1];
      Amt.Kind = ExprKind::BitsLit;
      Amt.BitsVal = BitVec(E.Args[0]->Ty.Width, Amt.IntVal);
      Amt.Ty = E.Args[0]->Ty;
      E.Ty = E.Args[0]->Ty;
      return true;
    }
    if (!resolveExpr(*E.Args[0]) || !resolveExpr(*E.Args[1]))
      return false;
    const Type &L = E.Args[0]->Ty, &R = E.Args[1]->Ty;
    switch (E.BOp) {
    case BinOp::BvAnd:
    case BinOp::BvOr:
      // '&' and '|' are overloaded on booleans.
      if (L.isBool() && R.isBool()) {
        E.BOp = E.BOp == BinOp::BvAnd ? BinOp::BoolAnd : BinOp::BoolOr;
        E.Ty = Type::boolean();
        return true;
      }
      [[fallthrough]];
    case BinOp::BvXor:
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::Mul:
    case BinOp::UDiv:
    case BinOp::URem:
      if (!L.isBits() || L != R)
        return fail(E.Line, "operator needs equal-width bitvectors, got " +
                                L.toString() + " and " + R.toString());
      E.Ty = L;
      return true;
    case BinOp::BoolAnd:
    case BinOp::BoolOr:
      if (!L.isBool() || !R.isBool())
        return fail(E.Line, "boolean operator needs boolean operands");
      E.Ty = Type::boolean();
      return true;
    case BinOp::Eq:
    case BinOp::Ne:
      if (L != R || L.isUnit())
        return fail(E.Line, "'=='/'!=' needs equal types, got " +
                                L.toString() + " and " + R.toString());
      E.Ty = Type::boolean();
      return true;
    case BinOp::ULt:
    case BinOp::ULe:
    case BinOp::SLt:
    case BinOp::SLe:
      if (!L.isBits() || L != R)
        return fail(E.Line, "comparison needs equal-width bitvectors");
      E.Ty = Type::boolean();
      return true;
    case BinOp::Shl:
    case BinOp::LShr:
    case BinOp::AShr:
      if (!L.isBits() || !R.isBits())
        return fail(E.Line, "shift needs bitvector operands");
      // Amounts wider than the shifted value could be silently truncated in
      // the symbolic encoding; require the model to narrow them explicitly.
      if (R.Width > L.Width)
        return fail(E.Line, "shift amount wider than the shifted value");
      E.Ty = L;
      return true;
    case BinOp::Concat:
      if (!L.isBits() || !R.isBits())
        return fail(E.Line, "'@' needs bitvector operands");
      E.Ty = Type::bits(L.Width + R.Width);
      return true;
    }
    return fail(E.Line, "unhandled binary operator");
  }
  case ExprKind::IfExpr: {
    if (!resolveExpr(*E.Args[0]) || !resolveExpr(*E.Args[1]) ||
        !resolveExpr(*E.Args[2]))
      return false;
    if (!E.Args[0]->Ty.isBool())
      return fail(E.Line, "if condition must be boolean");
    if (E.Args[1]->Ty != E.Args[2]->Ty)
      return fail(E.Line, "if branches have different types");
    E.Ty = E.Args[1]->Ty;
    return true;
  }
  case ExprKind::Slice: {
    if (!resolveExpr(*E.Args[0]))
      return false;
    if (!E.Args[0]->Ty.isBits())
      return fail(E.Line, "slice needs a bitvector operand");
    if (E.SliceLo > E.SliceHi || E.SliceHi >= E.Args[0]->Ty.Width)
      return fail(E.Line, "slice bounds out of range");
    E.Ty = Type::bits(E.SliceHi - E.SliceLo + 1);
    return true;
  }
  }
  return fail(E.Line, "unhandled expression kind");
}

bool Resolver::resolveStmt(Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Block: {
    ScopeMarks.push_back(Locals.size());
    for (const StmtPtr &Child : S.Body)
      if (!resolveStmt(*Child))
        return false;
    Locals.resize(ScopeMarks.back());
    ScopeMarks.pop_back();
    return true;
  }
  case StmtKind::Let: {
    if (!resolveExpr(*S.Value))
      return false;
    if (S.Value->Ty.isUnit())
      return fail(S.Line, "cannot bind a unit value");
    if (lookupLocal(S.Name))
      return fail(S.Line, "shadowing of " + S.Name + " is not allowed");
    if (M.findRegister(S.Name))
      return fail(S.Line, "local " + S.Name + " shadows a register");
    S.LocalIdx = int(NextLocalIdx++);
    Locals.push_back({S.Name, S.Value->Ty, S.Mutable, S.LocalIdx});
    return true;
  }
  case StmtKind::Assign: {
    if (Local *L = lookupLocal(S.Name)) {
      if (!L->Mutable)
        return fail(S.Line, "assignment to immutable binding " + S.Name);
      if (!resolveExpr(*S.Value))
        return false;
      if (S.Value->Ty != L->Ty)
        return fail(S.Line, "assignment type mismatch for " + S.Name);
      S.LocalIdx = L->Idx;
      return true;
    }
    // A whole-register write.
    S.Kind = StmtKind::RegWrite;
    [[fallthrough]];
  }
  case StmtKind::RegWrite: {
    const RegisterDecl *R = M.findRegister(S.Name);
    if (!R)
      return fail(S.Line, "unknown register " + S.Name);
    unsigned Width;
    if (S.Field.empty()) {
      if (R->IsStruct)
        return fail(S.Line, "struct register " + S.Name +
                                " must be written via a field");
      Width = R->Width;
    } else {
      if (!R->IsStruct || !R->hasField(S.Field))
        return fail(S.Line, "register " + S.Name + " has no field " +
                                S.Field);
      Width = R->fieldWidth(S.Field);
    }
    if (!resolveExpr(*S.Value))
      return false;
    if (S.Value->Ty != Type::bits(Width))
      return fail(S.Line, "register write width mismatch for " + S.Name);
    return true;
  }
  case StmtKind::If: {
    if (!resolveExpr(*S.Value))
      return false;
    if (!S.Value->Ty.isBool())
      return fail(S.Line, "if condition must be boolean");
    for (const StmtPtr &B : S.Body)
      if (!resolveStmt(*B))
        return false;
    for (const StmtPtr &B : S.Else)
      if (!resolveStmt(*B))
        return false;
    return true;
  }
  case StmtKind::ExprStmt: {
    if (S.Value->Kind != ExprKind::Call)
      return fail(S.Line, "only calls may be used as statements");
    return resolveExpr(*S.Value);
  }
  case StmtKind::Return: {
    if (!S.Value) {
      if (!CurFn->RetTy.isUnit())
        return fail(S.Line, "missing return value");
      return true;
    }
    if (!resolveExpr(*S.Value))
      return false;
    if (S.Value->Ty != CurFn->RetTy)
      return fail(S.Line, "return type mismatch: " + S.Value->Ty.toString() +
                              " vs " + CurFn->RetTy.toString());
    return true;
  }
  case StmtKind::Throw:
    return true;
  case StmtKind::Assert:
    if (!resolveExpr(*S.Value))
      return false;
    if (!S.Value->Ty.isBool())
      return fail(S.Line, "assert condition must be boolean");
    return true;
  }
  return fail(S.Line, "unhandled statement kind");
}
