//===- isla/Executor.h - Symbolic execution of mini-Sail --------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Isla component (§2.1, §3): given an opcode (possibly with symbolic
/// immediate fields) and assumptions on the machine configuration, evaluate
/// the mini-Sail model symbolically, pruning branches that are unreachable
/// under the assumptions with the SMT solver, and emit an ITL trace.
///
/// Path exploration has two engines (ExecEngine).  The production Snapshot
/// engine runs the model on an explicit frame-stack machine; at each
/// both-feasible symbolic branch it checkpoints the run state (control and
/// value stacks, register maps, event/path-condition lengths, pooled-variable
/// cursor) and pushes the flipped alternative onto a DFS worklist, so shared
/// prefixes execute exactly once.  The legacy Replay engine re-executes the
/// whole model per path following a recorded decision prefix.  Both merge
/// their linear event sequences into a trace tree by longest common prefix,
/// and variable naming is deterministic (a pooled allocator keyed by event
/// position), so the two engines are bit-identical: a shared prefix, then
/// Cases() whose subtraces begin with Assert() of the branch condition
/// (Fig. 6).
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_ISLA_EXECUTOR_H
#define ISLARIS_ISLA_EXECUTOR_H

#include "itl/Trace.h"
#include "sail/Ast.h"
#include "smt/Solver.h"
#include "support/Diag.h"
#include "support/Guard.h"

#include <functional>
#include <optional>

namespace islaris::isla {

/// A constraint on the initial value of one register, used when a concrete
/// assumed value is too strong (e.g. the pKVM eret case, where SPSR_EL2 may
/// be one of two values, §6).  Given the builder and the fresh variable
/// standing for the register's initial value, returns the assumed predicate.
using RegConstraintFn = std::function<const smt::Term *(
    smt::TermBuilder &, const smt::Term *)>;

/// Assumptions on the system state, mirroring Isla's -R / constraint flags.
/// Concrete assumptions become assume-reg events; predicate constraints
/// become declare-const + read-reg + assume event triples.
struct Assumptions {
  std::vector<std::pair<itl::Reg, BitVec>> Concrete;
  std::vector<std::pair<itl::Reg, RegConstraintFn>> Constraints;

  Assumptions &assume(itl::Reg R, BitVec V) {
    Concrete.emplace_back(std::move(R), std::move(V));
    return *this;
  }
  Assumptions &constrain(itl::Reg R, RegConstraintFn F) {
    Constraints.emplace_back(std::move(R), std::move(F));
    return *this;
  }
};

/// An instruction opcode: concrete bits plus a mask of symbolic bits
/// (supporting Isla's "symbolic immediate operands", §3).  Contiguous
/// symbolic runs become one fresh variable each.
struct OpcodeSpec {
  BitVec Bits;    ///< Base bits (symbolic positions ignored).
  BitVec SymMask; ///< 1 = this bit is symbolic.

  static OpcodeSpec concrete(uint32_t Op) {
    return {BitVec(32, Op), BitVec(32, 0)};
  }
  /// Marks bits [Hi..Lo] of a 32-bit opcode as symbolic.
  static OpcodeSpec symbolicField(uint32_t Op, unsigned Hi, unsigned Lo) {
    BitVec Mask = BitVec::zeros(32);
    for (unsigned I = Lo; I <= Hi; ++I)
      Mask = Mask.insertSlice(I, BitVec(1, 1));
    return {BitVec(32, Op), Mask};
  }
  bool isConcrete() const { return SymMask.isZero(); }
};

/// Path-exploration engine.  Snapshot is the production engine: it forks by
/// checkpointing the run state at each both-feasible branch and restoring it
/// on backtrack, so shared prefixes execute exactly once.  Replay is the
/// original concolic engine (re-runs the whole model per path following a
/// recorded decision prefix), kept as a differential oracle and ablation
/// baseline.  Snapshot and Replay produce bit-identical merged traces, so
/// choosing between them is NOT part of the trace-cache fingerprint.
///
/// Merge extends Snapshot with path merging at post-dominator join points:
/// when both arms of a both-feasible branch reach the branch's control-flow
/// join with purely register-level effects, the two run states are collapsed
/// into one — divergent register values become ite(cond, then, else) terms —
/// instead of enumerating both suffixes.  Merged traces are semantically
/// equivalent to the enumerated ones but NOT bit-identical (one linear path
/// with ite values replaces a Cases() split), so Merge is salted into the
/// trace-cache key and validated against Snapshot through the validation
/// equivalence checker, not by byte comparison.  Arms whose effects cannot
/// be merged (memory events, assumptions, nested unmerged forks, or ite
/// terms past MergeTermBudget) fall back to plain enumeration for that fork
/// only (ExecStats::MergeFallbacks).
enum class ExecEngine : uint8_t { Snapshot, Replay, Merge };

/// Process-wide default engine for newly constructed ExecOptions.  Follows
/// the same ambient install/restore protocol as ambientTraceCache: set
/// before a suite run, restore after (the pointer-sized store itself is not
/// synchronized).
ExecEngine defaultExecEngine();
void setDefaultExecEngine(ExecEngine E);

/// Knobs for the E4/E5 ablation benchmarks, plus the per-run resource
/// guards.  Only the first three fields are semantic (they shape the emitted
/// trace) and participate in the trace-cache fingerprint; the guards below
/// them only decide whether a run *completes* — a guarded failure is never
/// cached, so they must stay out of cache/Fingerprint.
struct ExecOptions {
  /// Reuse the value of a register read within the instruction (Isla's
  /// trace simplification).  Off = every model-level read re-emits an event.
  bool CacheRegReads = true;
  /// Name only sink values (register/memory writes, branch conditions) with
  /// define-const.  Off = name every intermediate compound value, greatly
  /// inflating the trace (the unsimplified baseline).
  bool SinksOnly = true;
  /// Instruction budget safeguard against model bugs.
  unsigned MaxPaths = 64;

  /// Path-exploration engine.  Snapshot and Replay are bit-identical and
  /// share cache keys; Merge emits semantically equivalent but differently
  /// shaped traces and is salted into the fingerprint.  Defaults to the
  /// ambient engine so suite harnesses can flip a whole run without
  /// threading the knob everywhere.
  ExecEngine Engine = defaultExecEngine();

  /// Merge engine only: ceiling on the term-DAG size (distinct nodes) of
  /// any single merged ite register value.  A join whose merged value would
  /// exceed the budget falls back to plain enumeration for that fork, so
  /// pathological branch nests cannot blow up the term graph.  Semantic
  /// under Engine == Merge (it shapes the trace) and fingerprinted there.
  unsigned MergeTermBudget = 4096;

  /// Merge engine only: name of the architecture's program-counter register.
  /// When set, forks whose arms disagree on this register's value fall back
  /// to enumeration instead of merging — an ite jump target is opaque to
  /// consumers that walk the trace as a CFG (the proof engine resolves each
  /// instruction's successor address), so control-flow forks stay enumerated
  /// while data forks merge.  Empty merges the PC like any other register
  /// (fine for standalone trace generation and validation).  Semantic under
  /// Engine == Merge and fingerprinted there.
  std::string MergePcName;

  /// Wall-clock deadline for this one trace generation (0 = none).  Checked
  /// between statements, so a wedged SAT call is bounded separately by the
  /// solver guards below.
  double DeadlineSeconds = 0;
  /// Per-solver-check guards (0 = unlimited), forwarded to smt::Solver.
  double SolverCheckSeconds = 0;
  uint64_t SolverConflicts = 0;
  uint64_t SolverPropagations = 0;
  /// Cooperative cancellation: polled every statement and inside the SAT
  /// core; a fired token fails the run with ErrorCode::Cancelled.
  support::CancelToken Cancel;
};

/// Statistics of one symbolic execution.
struct ExecStats {
  unsigned Paths = 0;          ///< Linear paths in the final trace.
  unsigned PrunedBranches = 0; ///< Branches cut by the solver.
  unsigned SolverQueries = 0;
  unsigned Events = 0; ///< Total events in the merged trace.
  /// Queries of this run answered by the solver's memo table instead of a
  /// SAT call (flipped-branch re-checks repeat heavily).  Derived, not part
  /// of the serialized trace-cache entry format.
  unsigned SolverMemoHits = 0;
  /// Queries answered by a persistent side-condition store (when one is
  /// installed via setSolverCache).  Derived, like SolverMemoHits.
  unsigned SolverStoreHits = 0;
  /// Model statements actually dispatched across all paths of this run.
  /// Under the replay engine this is O(paths x model size); the snapshot
  /// engine re-executes only divergent suffixes.  Derived.
  uint64_t StmtsExecuted = 0;
  /// Statements the snapshot engine did NOT re-execute because the shared
  /// prefix was restored from a checkpoint: the sum over resumed forks of
  /// the statements executed before the fork point.  Always 0 under the
  /// replay engine.  Derived.
  uint64_t StmtsSkippedBySnapshot = 0;
  /// Calls to statically-pure model helpers answered from the per-run
  /// (function, argument-terms) summary memo.  Derived.
  unsigned HelperMemoHits = 0;
  /// Merge engine: both-feasible forks whose arms were collapsed at their
  /// join point instead of enumerated (each merge halves the suffix count
  /// below it).  Always 0 under Snapshot/Replay.  Derived.
  unsigned PathsMerged = 0;
  /// Merge engine: both-feasible forks that fell back to plain enumeration
  /// (unmergeable segment effects, control divergence at the join, or a
  /// merged value past MergeTermBudget).  Derived.
  unsigned MergeFallbacks = 0;
  /// Merge engine: ite terms introduced by register joins.  Derived.
  uint64_t IteTermsIntroduced = 0;
  /// Times the rewriter's root-rule loop hit its defensive iteration cap
  /// during this run (see smt::Rewriter::fixpointCapHits) — counts both the
  /// executor's own rewriter and its solver's.  Zero in a healthy rule set.
  uint64_t FixpointCapHits = 0;
};

/// Result of symbolically executing one opcode.  On failure, D carries the
/// structured diagnostic (Error mirrors D.Message for older call sites).
struct ExecResult {
  bool Ok = false;
  std::string Error;
  support::Diag D;
  itl::Trace Trace;
  /// Fresh variables standing for symbolic opcode fields, low-to-high.
  std::vector<const smt::Term *> OpcodeVars;
  ExecStats Stats;
};

/// Width in bits of the register designator \p R under \p M's declarations
/// (field-granular, e.g. PSTATE.EL is 2 bits); 0 if \p R is unknown.  Used
/// by the executor's assumption preamble and by the trace-cache key
/// derivation (cache/Fingerprint), which must agree on constraint-variable
/// widths.
unsigned registerWidth(const sail::Model &M, const itl::Reg &R);

/// The symbolic executor.  One instance per (model, builder); run() may be
/// called repeatedly.
class Executor {
public:
  Executor(const sail::Model &M, smt::TermBuilder &TB);

  /// Symbolically executes `decode(opcode)` under \p A, dispatching on
  /// Opts.Engine.
  ExecResult run(const OpcodeSpec &Op, const Assumptions &A,
                 const ExecOptions &Opts = ExecOptions());

  /// Installs a persistent store for the executor's branch-pruning and
  /// assertion side-condition queries (nullptr to detach).  The caller
  /// keeps ownership and must salt the store by the model fingerprint if it
  /// is shared across models (see cache::SaltedSolverCache).
  void setSolverCache(smt::SolverCache *C) { Solver.setCache(C); }

  /// Cumulative solver statistics (for the Fig. 12 harness).
  const smt::SolverStats &solverStats() const { return Solver.stats(); }

private:
  struct RunState;
  struct Machine; // the snapshot-forking explicit-stack interpreter

  ExecResult runReplay(const OpcodeSpec &Op, const Assumptions &A,
                       const ExecOptions &Opts);
  ExecResult runSnapshot(const OpcodeSpec &Op, const Assumptions &A,
                         const ExecOptions &Opts);
  /// Snapshot engine extended with post-dominator path merging (see
  /// ExecEngine::Merge).
  ExecResult runMerge(const OpcodeSpec &Op, const Assumptions &A,
                      const ExecOptions &Opts);
  /// Emits the shared per-path preamble (assumption events, opcode term).
  /// On failure marks \p RS failed and returns nullptr.
  const smt::Term *emitPreamble(const OpcodeSpec &Op, const Assumptions &A,
                                RunState &RS,
                                std::vector<const smt::Term *> &OpVars);

  const smt::Term *evalExpr(const sail::Expr &E, RunState &RS);
  const smt::Term *evalCall(const sail::Expr &E, RunState &RS);
  void execStmt(const sail::Stmt &S, RunState &RS, bool &Returned);
  void execBlock(const std::vector<sail::StmtPtr> &Body, RunState &RS,
                 bool &Returned);
  const smt::Term *callFunction(const sail::FunctionDecl &F,
                                std::vector<const smt::Term *> Args,
                                RunState &RS);
  /// Resolves a symbolic boolean to a concrete decision, pruning with the
  /// solver or forking (recording a decision).
  bool decideBranch(const smt::Term *Cond, RunState &RS);
  const smt::Term *readRegister(const itl::Reg &R, unsigned Width,
                                RunState &RS);
  void writeRegister(const itl::Reg &R, const smt::Term *V, RunState &RS);
  /// Names \p V with a define-const if it is compound; returns the name.
  const smt::Term *nameValue(const smt::Term *V, RunState &RS);
  const smt::Term *pooledVar(smt::Sort S, RunState &RS);

  const sail::Model &M;
  smt::TermBuilder &TB;
  smt::Solver Solver;
  smt::Rewriter RW;
};

} // namespace islaris::isla

#endif // ISLARIS_ISLA_EXECUTOR_H
