//===- isla/Executor.cpp - Symbolic execution of mini-Sail --------------------===//

#include "isla/Executor.h"

#include "smt/Evaluator.h"
#include "support/FaultInjector.h"

#include <chrono>
#include <stdexcept>

using namespace islaris;
using namespace islaris::isla;
using islaris::itl::Event;
using islaris::itl::Reg;
using islaris::itl::RegHash;
using islaris::itl::Trace;
using islaris::sail::BinOp;
using islaris::sail::Builtin;
using islaris::sail::Expr;
using islaris::sail::ExprKind;
using islaris::sail::Stmt;
using islaris::sail::StmtKind;
using islaris::sail::UnOp;
using smt::Sort;
using smt::Term;

namespace {

/// One symbolic branch decision (concolic path enumeration).
struct Decision {
  bool Taken;
  bool Both;    ///< Both sides were feasible at discovery.
  bool Flipped; ///< Already explored the other side.
};

} // namespace

/// Per-run mutable state.
struct Executor::RunState {
  const Assumptions *A = nullptr;
  const ExecOptions *Opts = nullptr;

  std::vector<Event> Events;
  std::unordered_map<Reg, const Term *, RegHash> RegCache;
  std::unordered_map<Reg, bool, RegHash> ReadEmitted;
  std::unordered_map<Reg, bool, RegHash> Written;
  std::vector<const Term *> PathCond;

  std::vector<Decision> *Decisions = nullptr;
  size_t DecisionCursor = 0;
  std::vector<const Term *> *VarPool = nullptr;
  size_t VarCursor = 0;

  /// Locals of the current call frame (swapped on call/return).
  std::vector<const Term *> Locals;

  unsigned Depth = 0;
  std::string Error;
  support::ErrorCode Code = support::ErrorCode::Ok;
  unsigned PrunedBranches = 0;
  unsigned SolverQueries = 0;

  // Resource guards for the enclosing run() (shared across its paths).
  const std::atomic<bool> *CancelFlag = nullptr;
  std::chrono::steady_clock::time_point Deadline =
      std::chrono::steady_clock::time_point::max();
  uint64_t StmtsSinceClock = 0;

  bool failed() const { return !Error.empty(); }
  void fail(int Line, const std::string &Msg,
            support::ErrorCode C = support::ErrorCode::ModelError) {
    if (Error.empty()) {
      Error = "line " + std::to_string(Line) + ": " + Msg;
      Code = C;
    }
  }
  /// Guard failures are not tied to a model source line.
  void failGuard(support::ErrorCode C, const std::string &Msg) {
    if (Error.empty()) {
      Error = Msg;
      Code = C;
    }
  }

  /// Statement-granular guard poll: cancellation every statement (one
  /// relaxed atomic load), the wall clock every 256 statements.
  bool guardTripped() {
    if (CancelFlag && CancelFlag->load(std::memory_order_relaxed)) {
      failGuard(support::ErrorCode::Cancelled,
                "trace generation cancelled");
      return true;
    }
    if (Deadline != std::chrono::steady_clock::time_point::max() &&
        ++StmtsSinceClock >= 256) {
      StmtsSinceClock = 0;
      if (std::chrono::steady_clock::now() >= Deadline) {
        failGuard(support::ErrorCode::DeadlineExceeded,
                  "trace generation deadline exceeded");
        return true;
      }
    }
    return false;
  }
};

unsigned islaris::isla::registerWidth(const sail::Model &M,
                                      const itl::Reg &R) {
  const sail::RegisterDecl *RD = M.findRegister(R.Base);
  if (!RD)
    return 0;
  if (!R.hasField())
    return RD->Width;
  return RD->hasField(R.Field) ? RD->fieldWidth(R.Field) : 0;
}

Executor::Executor(const sail::Model &M, smt::TermBuilder &TB)
    : M(M), TB(TB), Solver(TB), RW(TB) {}

const Term *Executor::pooledVar(Sort S, RunState &RS) {
  std::vector<const Term *> &Pool = *RS.VarPool;
  if (RS.VarCursor < Pool.size()) {
    const Term *V = Pool[RS.VarCursor];
    if (V->sort() != S)
      Pool[RS.VarCursor] = V = TB.freshVar(S);
    ++RS.VarCursor;
    return V;
  }
  const Term *V = TB.freshVar(S);
  Pool.push_back(V);
  ++RS.VarCursor;
  return V;
}

/// Selection-only simplification for trace values: resolves extracts over
/// concats/extensions (so a discarded-flags concat like Fig. 2's
/// AddWithCarry result collapses away) but deliberately keeps arithmetic
/// intact — the 128-bit addition "vestige" of Fig. 3 stays visible, as in
/// Isla's real output.
static const Term *selectSimplify(smt::TermBuilder &TB, const Term *T) {
  using smt::Kind;
  // Simplify children first.
  std::vector<const Term *> Ops;
  bool Changed = false;
  for (const Term *Op : T->operands()) {
    const Term *S = selectSimplify(TB, Op);
    Changed |= S != Op;
    Ops.push_back(S);
  }
  if (T->kind() == Kind::Extract) {
    const Term *Op = Ops.empty() ? T->operand(0) : Ops[0];
    unsigned Hi = T->attrA(), Lo = T->attrB();
    if (Op->kind() == Kind::Concat) {
      unsigned LoW = Op->operand(1)->width();
      if (Hi < LoW)
        return selectSimplify(TB, TB.extract(Hi, Lo, Op->operand(1)));
      if (Lo >= LoW)
        return selectSimplify(
            TB, TB.extract(Hi - LoW, Lo - LoW, Op->operand(0)));
    }
    if ((Op->kind() == Kind::ZeroExtend || Op->kind() == Kind::SignExtend) &&
        Hi < Op->operand(0)->width())
      return selectSimplify(TB, TB.extract(Hi, Lo, Op->operand(0)));
    if (Changed)
      return TB.extract(Hi, Lo, Op);
    return T;
  }
  if (!Changed)
    return T;
  // Rebuild with the simplified children for the kinds sinks produce.
  switch (T->kind()) {
  case Kind::Concat:
    return TB.concat(Ops[0], Ops[1]);
  case Kind::ZeroExtend:
    return TB.zeroExtend(T->attrA(), Ops[0]);
  case Kind::SignExtend:
    return TB.signExtend(T->attrA(), Ops[0]);
  case Kind::Ite:
    return TB.iteTerm(Ops[0], Ops[1], Ops[2]);
  case Kind::Eq:
    return TB.eqTerm(Ops[0], Ops[1]);
  case Kind::Not:
    return TB.notTerm(Ops[0]);
  case Kind::BVNot:
    return TB.bvNot(Ops[0]);
  case Kind::BVNeg:
    return TB.bvNeg(Ops[0]);
  case Kind::BVAdd:
    return TB.bvAdd(Ops[0], Ops[1]);
  case Kind::BVSub:
    return TB.bvSub(Ops[0], Ops[1]);
  case Kind::BVMul:
    return TB.bvMul(Ops[0], Ops[1]);
  case Kind::BVAnd:
    return TB.bvAnd(Ops[0], Ops[1]);
  case Kind::BVOr:
    return TB.bvOr(Ops[0], Ops[1]);
  case Kind::BVXor:
    return TB.bvXor(Ops[0], Ops[1]);
  case Kind::BVShl:
    return TB.bvShl(Ops[0], Ops[1]);
  case Kind::BVLShr:
    return TB.bvLShr(Ops[0], Ops[1]);
  case Kind::BVAShr:
    return TB.bvAShr(Ops[0], Ops[1]);
  case Kind::BVUlt:
    return TB.bvUlt(Ops[0], Ops[1]);
  case Kind::BVUle:
    return TB.bvUle(Ops[0], Ops[1]);
  case Kind::BVSlt:
    return TB.bvSlt(Ops[0], Ops[1]);
  case Kind::BVSle:
    return TB.bvSle(Ops[0], Ops[1]);
  case Kind::BVUDiv:
    return TB.bvUDiv(Ops[0], Ops[1]);
  case Kind::BVURem:
    return TB.bvURem(Ops[0], Ops[1]);
  case Kind::BVSDiv:
    return TB.bvSDiv(Ops[0], Ops[1]);
  case Kind::BVSRem:
    return TB.bvSRem(Ops[0], Ops[1]);
  case Kind::And:
    return TB.andTerm(Ops[0], Ops[1]);
  case Kind::Or:
    return TB.orTerm(Ops[0], Ops[1]);
  case Kind::Implies:
    return TB.impliesTerm(Ops[0], Ops[1]);
  default:
    return T;
  }
}

const Term *Executor::nameValue(const Term *V, RunState &RS) {
  V = selectSimplify(TB, V);
  if (V->isVar() || V->isConst())
    return V;
  const Term *Name = pooledVar(V->sort(), RS);
  RS.Events.push_back(Event::defineConst(Name, V));
  return Name;
}

const Term *Executor::readRegister(const Reg &R, unsigned Width,
                                   RunState &RS) {
  auto It = RS.RegCache.find(R);
  if (It != RS.RegCache.end()) {
    bool Emitted = RS.ReadEmitted[R];
    if (!Emitted) {
      RS.Events.push_back(Event::readReg(R, It->second));
      RS.ReadEmitted[R] = true;
    } else if (!RS.Opts->CacheRegReads && !RS.Written[R]) {
      // Unsimplified baseline: every model-level read is its own event with
      // a fresh unknown (later reads still denote the same register value;
      // the ITL read semantics re-establishes the equality).
      const Term *V = pooledVar(Sort::bitvec(Width), RS);
      RS.Events.push_back(Event::declareConst(V));
      RS.Events.push_back(Event::readReg(R, V));
      return V;
    }
    return It->second;
  }
  const Term *V = pooledVar(Sort::bitvec(Width), RS);
  RS.Events.push_back(Event::declareConst(V));
  RS.Events.push_back(Event::readReg(R, V));
  RS.RegCache[R] = V;
  RS.ReadEmitted[R] = true;
  return V;
}

void Executor::writeRegister(const Reg &R, const Term *V, RunState &RS) {
  const Term *Named = nameValue(V, RS);
  RS.Events.push_back(Event::writeReg(R, Named));
  RS.RegCache[R] = Named;
  RS.ReadEmitted[R] = true;
  RS.Written[R] = true;
}

bool Executor::decideBranch(const Term *Cond, RunState &RS) {
  const Term *S = RW.simplify(Cond);
  if (S->kind() == smt::Kind::ConstBool)
    return S->constBool();

  // Replaying a recorded decision?
  if (RS.DecisionCursor < RS.Decisions->size()) {
    Decision &D = (*RS.Decisions)[RS.DecisionCursor++];
    if (!D.Both)
      return D.Taken; // pruned at discovery; no events, condition implied
    const Term *Named = nameValue(S, RS);
    const Term *Branch = D.Taken ? Named : TB.notTerm(Named);
    RS.Events.push_back(Event::assertE(Branch));
    RS.PathCond.push_back(D.Taken ? S : TB.notTerm(S));
    return D.Taken;
  }

  // Fresh decision: ask the solver which sides are reachable under the
  // current path condition (this is Isla's branch pruning).  An Unknown on
  // either side means we cannot *soundly* prune or fork — treating it as
  // Sat would fork on a possibly-infeasible side, treating it as Unsat
  // would prune a possibly-feasible one — so the run fails with an
  // attributed solver-budget diagnostic instead.
  std::vector<const Term *> Base = RS.PathCond;
  Base.push_back(S);
  RS.SolverQueries += 2;
  smt::Result TrueRes = Solver.check(Base);
  Base.back() = TB.notTerm(S);
  smt::Result FalseRes = Solver.check(Base);
  if (TrueRes == smt::Result::Unknown || FalseRes == smt::Result::Unknown) {
    RS.failGuard(RS.CancelFlag &&
                         RS.CancelFlag->load(std::memory_order_relaxed)
                     ? support::ErrorCode::Cancelled
                     : support::ErrorCode::SolverBudgetExceeded,
                 "solver gave up deciding a branch condition");
    return false;
  }
  bool TrueSat = TrueRes == smt::Result::Sat;
  bool FalseSat = FalseRes == smt::Result::Sat;
  if (!TrueSat && !FalseSat) {
    // The path condition itself became unsatisfiable — an executor
    // invariant violation (decisions are only recorded on feasible sides).
    RS.failGuard(support::ErrorCode::Internal,
                 "internal: path condition became unsatisfiable");
    return false;
  }

  if (TrueSat != FalseSat) {
    ++RS.PrunedBranches;
    RS.Decisions->push_back({TrueSat, false, false});
    ++RS.DecisionCursor;
    return TrueSat;
  }
  // Both feasible: fork.  Name the condition (shared prefix), assert the
  // chosen side (head of the divergent suffix, as in Fig. 6).
  RS.Decisions->push_back({true, true, false});
  ++RS.DecisionCursor;
  const Term *Named = nameValue(S, RS);
  RS.Events.push_back(Event::assertE(Named));
  RS.PathCond.push_back(S);
  return true;
}

//===----------------------------------------------------------------------===//
// Expression evaluation.
//===----------------------------------------------------------------------===//

const Term *Executor::evalCall(const Expr &E, RunState &RS) {
  switch (E.BuiltinKind) {
  case Builtin::ZeroExtend:
  case Builtin::SignExtend:
  case Builtin::Truncate: {
    const Term *V = evalExpr(*E.Args[0], RS);
    if (!V)
      return nullptr;
    if (E.BuiltinKind == Builtin::Truncate)
      return TB.extract(E.ExtWidth - 1, 0, V);
    unsigned Extra = E.ExtWidth - V->width();
    return E.BuiltinKind == Builtin::ZeroExtend ? TB.zeroExtend(Extra, V)
                                                : TB.signExtend(Extra, V);
  }
  case Builtin::ReverseBits: {
    const Term *V = evalExpr(*E.Args[0], RS);
    if (!V)
      return nullptr;
    if (V->kind() == smt::Kind::ConstBV)
      return TB.constBV(V->constBV().reverseBits());
    // Structural expansion: the result is bit 0 of the input (as the new
    // MSB) down to bit w-1 (as the new LSB).
    const Term *R = TB.extract(0, 0, V);
    for (unsigned I = 1; I < V->width(); ++I)
      R = TB.concat(R, TB.extract(I, I, V));
    return R;
  }
  case Builtin::ReadMem: {
    const Term *A = evalExpr(*E.Args[0], RS);
    if (!A)
      return nullptr;
    const Term *V = pooledVar(Sort::bitvec(E.MemBytes * 8), RS);
    RS.Events.push_back(Event::declareConst(V));
    RS.Events.push_back(Event::readMem(V, A, E.MemBytes));
    return V;
  }
  case Builtin::WriteMem: {
    const Term *A = evalExpr(*E.Args[0], RS);
    const Term *D = evalExpr(*E.Args[1], RS);
    if (!A || !D)
      return nullptr;
    RS.Events.push_back(
        Event::writeMem(A, nameValue(D, RS), E.MemBytes));
    return TB.constBV(1, 0); // unit placeholder
  }
  case Builtin::None:
    break;
  }
  std::vector<const Term *> Args;
  Args.reserve(E.Args.size());
  for (const sail::ExprPtr &A : E.Args) {
    const Term *V = evalExpr(*A, RS);
    if (!V)
      return nullptr;
    Args.push_back(V);
  }
  return callFunction(*E.Callee, std::move(Args), RS);
}

const Term *Executor::evalExpr(const Expr &E, RunState &RS) {
  if (RS.failed())
    return nullptr;
  const Term *Result = nullptr;
  switch (E.Kind) {
  case ExprKind::BitsLit:
    return TB.constBV(E.BitsVal);
  case ExprKind::BoolLit:
    return TB.constBool(E.BoolVal);
  case ExprKind::IntLit:
    RS.fail(E.Line, "internal: unresolved decimal literal");
    return nullptr;
  case ExprKind::VarRef: {
    const Term *V = RS.Locals[size_t(E.LocalIdx)];
    if (!V) {
      RS.fail(E.Line, "internal: read of uninitialized local",
              support::ErrorCode::Internal);
      return nullptr;
    }
    return V;
  }
  case ExprKind::RegRead:
    return readRegister(Reg(E.Name, E.Field), E.Ty.Width, RS);
  case ExprKind::Call:
    return evalCall(E, RS);
  case ExprKind::Unary: {
    const Term *V = evalExpr(*E.Args[0], RS);
    if (!V)
      return nullptr;
    switch (E.UOp) {
    case UnOp::BoolNot:
      Result = TB.notTerm(V);
      break;
    case UnOp::BvNot:
      Result = TB.bvNot(V);
      break;
    case UnOp::BvNeg:
      Result = TB.bvNeg(V);
      break;
    }
    break;
  }
  case ExprKind::Binary: {
    const Term *L = evalExpr(*E.Args[0], RS);
    const Term *R = evalExpr(*E.Args[1], RS);
    if (!L || !R)
      return nullptr;
    switch (E.BOp) {
    case BinOp::BoolAnd:
      Result = TB.andTerm(L, R);
      break;
    case BinOp::BoolOr:
      Result = TB.orTerm(L, R);
      break;
    case BinOp::Eq:
      Result = TB.eqTerm(L, R);
      break;
    case BinOp::Ne:
      Result = TB.notTerm(TB.eqTerm(L, R));
      break;
    case BinOp::Add:
      Result = TB.bvAdd(L, R);
      break;
    case BinOp::Sub:
      Result = TB.bvSub(L, R);
      break;
    case BinOp::Mul:
      Result = TB.bvMul(L, R);
      break;
    case BinOp::UDiv:
      Result = TB.bvUDiv(L, R);
      break;
    case BinOp::URem:
      Result = TB.bvURem(L, R);
      break;
    case BinOp::BvAnd:
      Result = TB.bvAnd(L, R);
      break;
    case BinOp::BvOr:
      Result = TB.bvOr(L, R);
      break;
    case BinOp::BvXor:
      Result = TB.bvXor(L, R);
      break;
    case BinOp::Shl:
      Result = TB.bvShl(L, TB.zextTo(L->width(), R));
      break;
    case BinOp::LShr:
      Result = TB.bvLShr(L, TB.zextTo(L->width(), R));
      break;
    case BinOp::AShr:
      Result = TB.bvAShr(L, TB.zextTo(L->width(), R));
      break;
    case BinOp::ULt:
      Result = TB.bvUlt(L, R);
      break;
    case BinOp::ULe:
      Result = TB.bvUle(L, R);
      break;
    case BinOp::SLt:
      Result = TB.bvSlt(L, R);
      break;
    case BinOp::SLe:
      Result = TB.bvSle(L, R);
      break;
    case BinOp::Concat:
      Result = TB.concat(L, R);
      break;
    }
    break;
  }
  case ExprKind::IfExpr: {
    const Term *C = evalExpr(*E.Args[0], RS);
    if (!C)
      return nullptr;
    // Value-level selection stays an ite term (no fork).
    const Term *CS = RW.simplify(C);
    if (CS->kind() == smt::Kind::ConstBool)
      return evalExpr(*E.Args[CS->constBool() ? 1 : 2], RS);
    const Term *T = evalExpr(*E.Args[1], RS);
    const Term *El = evalExpr(*E.Args[2], RS);
    if (!T || !El)
      return nullptr;
    Result = TB.iteTerm(CS, T, El);
    break;
  }
  case ExprKind::Slice: {
    const Term *V = evalExpr(*E.Args[0], RS);
    if (!V)
      return nullptr;
    Result = TB.extract(E.SliceHi, E.SliceLo, V);
    break;
  }
  }
  if (!Result) {
    RS.fail(E.Line, "internal: unhandled expression");
    return nullptr;
  }
  // Unsimplified baseline: name every compound intermediate.
  if (!RS.Opts->SinksOnly)
    Result = nameValue(Result, RS);
  return Result;
}

//===----------------------------------------------------------------------===//
// Statements.
//===----------------------------------------------------------------------===//

void Executor::execBlock(const std::vector<sail::StmtPtr> &Body, RunState &RS,
                         bool &Returned) {
  for (const sail::StmtPtr &S : Body) {
    if (RS.failed() || Returned)
      return;
    execStmt(*S, RS, Returned);
  }
}

void Executor::execStmt(const Stmt &S, RunState &RS, bool &Returned) {
  if (RS.guardTripped())
    return;
  switch (S.Kind) {
  case StmtKind::Block:
    return execBlock(S.Body, RS, Returned);
  case StmtKind::Let:
  case StmtKind::Assign: {
    const Term *V = evalExpr(*S.Value, RS);
    if (!V)
      return;
    RS.Locals[size_t(S.LocalIdx)] = V;
    return;
  }
  case StmtKind::RegWrite: {
    const Term *V = evalExpr(*S.Value, RS);
    if (!V)
      return;
    writeRegister(Reg(S.Name, S.Field), V, RS);
    return;
  }
  case StmtKind::If: {
    const Term *C = evalExpr(*S.Value, RS);
    if (!C)
      return;
    if (decideBranch(C, RS))
      execBlock(S.Body, RS, Returned);
    else
      execBlock(S.Else, RS, Returned);
    return;
  }
  case StmtKind::ExprStmt:
    evalExpr(*S.Value, RS);
    return;
  case StmtKind::Return:
    if (S.Value) {
      const Term *V = evalExpr(*S.Value, RS);
      if (!V)
        return;
      RS.Locals.back() = V; // return slot, see callFunction
    }
    Returned = true;
    return;
  case StmtKind::Throw:
    RS.fail(S.Line, "reachable model exception: " + S.Message);
    return;
  case StmtKind::Assert: {
    const Term *C = evalExpr(*S.Value, RS);
    if (!C)
      return;
    const Term *CS = RW.simplify(C);
    if (CS->kind() == smt::Kind::ConstBool) {
      if (!CS->constBool())
        RS.fail(S.Line, "model assertion failed: " + S.Message);
      return;
    }
    std::vector<const Term *> Query = RS.PathCond;
    Query.push_back(TB.notTerm(CS));
    ++RS.SolverQueries;
    smt::Result QR = Solver.check(Query);
    if (QR == smt::Result::Unknown)
      RS.failGuard(support::ErrorCode::SolverBudgetExceeded,
                   "solver gave up on model assertion: " + S.Message);
    else if (QR == smt::Result::Sat)
      RS.fail(S.Line, "model assertion not provable: " + S.Message);
    return;
  }
  }
  RS.fail(S.Line, "internal: unhandled statement");
}

const Term *Executor::callFunction(const sail::FunctionDecl &F,
                                   std::vector<const Term *> Args,
                                   RunState &RS) {
  if (++RS.Depth > 128) {
    RS.fail(F.Line, "call depth limit exceeded in " + F.Name);
    --RS.Depth;
    return nullptr;
  }
  std::vector<const Term *> Saved = std::move(RS.Locals);
  RS.Locals.assign(F.NumLocals + 1, nullptr); // +1: return slot at back()
  for (size_t I = 0; I < Args.size(); ++I)
    RS.Locals[I] = Args[I];
  RS.Locals.back() = TB.constBV(1, 0); // unit default

  bool Returned = false;
  execStmt(*F.Body, RS, Returned);
  const Term *Ret = RS.Locals.back();
  RS.Locals = std::move(Saved);
  --RS.Depth;
  if (RS.failed())
    return nullptr;
  if (!Returned && !F.RetTy.isUnit()) {
    RS.fail(F.Line, "function " + F.Name + " fell off the end");
    return nullptr;
  }
  return Ret;
}

//===----------------------------------------------------------------------===//
// Path enumeration and trace merging.
//===----------------------------------------------------------------------===//

static bool eventEquals(const Event &A, const Event &B) {
  return A.K == B.K && A.R == B.R && A.Val == B.Val && A.Addr == B.Addr &&
         A.NBytes == B.NBytes && A.Var == B.Var && A.Expr == B.Expr;
}

/// Merges linear event paths (sharing deterministic prefixes) into a tree.
/// Violated merge invariants (only possible if path enumeration produced an
/// inconsistent set) are reported through \p Err instead of asserting, so a
/// Release build fails the run cleanly rather than mis-merging.
static Trace mergePaths(const std::vector<std::vector<Event>> &Paths,
                        std::vector<size_t> Members, size_t From,
                        std::string &Err) {
  Trace T;
  // Extend the common prefix.
  while (true) {
    const std::vector<Event> &First = Paths[Members[0]];
    bool AllHave = From < First.size();
    for (size_t M : Members)
      AllHave = AllHave && From < Paths[M].size() &&
                eventEquals(Paths[M][From], First[From]);
    if (!AllHave)
      break;
    T.Events.push_back(First[From]);
    ++From;
  }
  if (Members.size() == 1)
    return T; // exhausted a single path
  // Group by the divergence event (first-occurrence order).
  std::vector<std::vector<size_t>> Groups;
  for (size_t M : Members) {
    if (From >= Paths[M].size()) {
      Err = "internal: path is a strict prefix of another path";
      return T;
    }
    bool Placed = false;
    for (auto &G : Groups) {
      if (eventEquals(Paths[G[0]][From], Paths[M][From])) {
        G.push_back(M);
        Placed = true;
        break;
      }
    }
    if (!Placed)
      Groups.push_back({M});
  }
  if (Groups.size() <= 1) {
    Err = "internal: divergence with a single group";
    return T;
  }
  for (auto &G : Groups) {
    T.Cases.push_back(mergePaths(Paths, std::move(G), From, Err));
    if (!Err.empty())
      return T;
  }
  return T;
}

ExecResult Executor::run(const OpcodeSpec &Op, const Assumptions &A,
                         const ExecOptions &Opts) {
  ExecResult Res;
  auto failRun = [&Res](support::ErrorCode C,
                        const std::string &Msg) -> ExecResult & {
    Res.Ok = false;
    Res.Error = Msg;
    Res.D = support::Diag::error(C, "executor", Msg);
    return Res;
  };

  // Chaos hooks: exec-throw exercises the batch driver's exception
  // containment, exec-step the ordinary Diag failure path.
  if (support::FaultInjector::fire(support::FaultSite::ExecThrow))
    throw std::runtime_error("injected executor fault (exec-throw)");
  if (support::FaultInjector::fire(support::FaultSite::ExecStep))
    return failRun(support::ErrorCode::InjectedFault,
                   "injected executor fault (exec-step)");

  // Install the per-check solver guards for this run.  The guards are not
  // part of the trace-cache fingerprint: a guarded failure is never cached,
  // and a success is budget-independent.
  smt::SolverLimits SL;
  SL.MaxConflicts = Opts.SolverConflicts;
  SL.MaxPropagations = Opts.SolverPropagations;
  SL.MaxSeconds = Opts.SolverCheckSeconds;
  SL.Cancel = Opts.Cancel;
  Solver.setLimits(SL);

  auto Deadline = std::chrono::steady_clock::time_point::max();
  if (Opts.DeadlineSeconds > 0)
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(Opts.DeadlineSeconds));

  std::vector<Decision> Decisions;
  std::vector<const Term *> VarPool;
  std::vector<std::vector<Event>> PathEvents;
  ExecStats Stats;
  uint64_t MemoHitsBefore = Solver.stats().NumMemoHits;

  const sail::FunctionDecl *Decode = M.findFunction("decode");
  if (!Decode || Decode->Params.size() != 1 ||
      Decode->Params[0].Ty != sail::Type::bits(32)) {
    return failRun(support::ErrorCode::ModelError,
                   "model has no decode(bits(32)) entry point");
  }

  while (true) {
    if (PathEvents.size() >= Opts.MaxPaths) {
      return failRun(support::ErrorCode::PathBudgetExceeded,
                     "path budget exceeded (model blow-up?)");
    }
    if (Opts.Cancel.cancelled())
      return failRun(support::ErrorCode::Cancelled,
                     "trace generation cancelled");
    if (Deadline != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= Deadline)
      return failRun(support::ErrorCode::DeadlineExceeded,
                     "trace generation deadline exceeded");
    RunState RS;
    RS.A = &A;
    RS.Opts = &Opts;
    RS.Decisions = &Decisions;
    RS.VarPool = &VarPool;
    RS.CancelFlag = Opts.Cancel.raw();
    RS.Deadline = Deadline;

    // Assumption preamble: concrete assumed values first (Fig. 3 lines
    // 2-3), then constrained registers as declare/read/assume triples.
    for (const auto &[R, V] : A.Concrete) {
      RS.Events.push_back(Event::assumeReg(R, TB.constBV(V)));
      RS.RegCache[R] = TB.constBV(V);
    }
    for (const auto &[R, F] : A.Constraints) {
      if (!M.findRegister(R.Base)) {
        return failRun(support::ErrorCode::UnknownRegister,
                       "constraint on unknown register " + R.Base);
      }
      unsigned W = registerWidth(M, R);
      const Term *V = pooledVar(Sort::bitvec(W), RS);
      const Term *P = F(TB, V);
      RS.Events.push_back(Event::declareConst(V));
      RS.Events.push_back(Event::readReg(R, V));
      RS.Events.push_back(Event::assumeE(P));
      RS.RegCache[R] = V;
      RS.ReadEmitted[R] = true;
      RS.PathCond.push_back(P);
    }

    // Build the opcode term: concrete segments folded, symbolic runs as
    // fresh variables (partially symbolic opcodes, §3).
    std::vector<const Term *> SegmentsLowFirst;
    std::vector<const Term *> OpVars;
    unsigned I = 0;
    while (I < 32) {
      unsigned J = I;
      bool Sym = Op.SymMask.bit(I);
      while (J < 32 && Op.SymMask.bit(J) == Sym)
        ++J;
      if (Sym) {
        const Term *V = pooledVar(Sort::bitvec(J - I), RS);
        RS.Events.push_back(Event::declareConst(V));
        SegmentsLowFirst.push_back(V);
        OpVars.push_back(V);
      } else {
        SegmentsLowFirst.push_back(TB.constBV(Op.Bits.extract(J - 1, I)));
      }
      I = J;
    }
    const Term *Opcode = SegmentsLowFirst[0];
    for (size_t K = 1; K < SegmentsLowFirst.size(); ++K)
      Opcode = TB.concat(SegmentsLowFirst[K], Opcode);

    callFunction(*Decode, {Opcode}, RS);
    if (RS.failed())
      return failRun(RS.Code == support::ErrorCode::Ok
                         ? support::ErrorCode::ModelError
                         : RS.Code,
                     RS.Error);
    Stats.PrunedBranches += RS.PrunedBranches;
    Stats.SolverQueries += RS.SolverQueries;
    if (PathEvents.empty())
      Res.OpcodeVars = OpVars;
    PathEvents.push_back(std::move(RS.Events));

    // Backtrack to the most recent unflipped genuine fork.
    while (!Decisions.empty() &&
           (!Decisions.back().Both || Decisions.back().Flipped))
      Decisions.pop_back();
    if (Decisions.empty())
      break;
    Decisions.back().Taken = !Decisions.back().Taken;
    Decisions.back().Flipped = true;
  }

  std::vector<size_t> All(PathEvents.size());
  for (size_t K = 0; K < All.size(); ++K)
    All[K] = K;
  std::string MergeErr;
  Res.Trace = mergePaths(PathEvents, std::move(All), 0, MergeErr);
  if (!MergeErr.empty())
    return failRun(support::ErrorCode::Internal, MergeErr);
  Stats.Paths = unsigned(PathEvents.size());
  Stats.Events = Res.Trace.countEvents();
  Stats.SolverMemoHits =
      unsigned(Solver.stats().NumMemoHits - MemoHitsBefore);
  Res.Stats = Stats;
  Res.Ok = true;
  return Res;
}
