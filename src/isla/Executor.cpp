//===- isla/Executor.cpp - Symbolic execution of mini-Sail --------------------===//

#include "isla/Executor.h"

#include "smt/Evaluator.h"
#include "support/FaultInjector.h"

#include <chrono>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <unordered_set>

using namespace islaris;
using namespace islaris::isla;
using islaris::itl::Event;
using islaris::itl::EventKind;
using islaris::itl::Reg;
using islaris::itl::RegHash;
using islaris::itl::Trace;
using islaris::sail::BinOp;
using islaris::sail::Builtin;
using islaris::sail::Expr;
using islaris::sail::ExprKind;
using islaris::sail::Stmt;
using islaris::sail::StmtKind;
using islaris::sail::UnOp;
using smt::Sort;
using smt::Term;

namespace {

/// One symbolic branch decision (concolic path enumeration).
struct Decision {
  bool Taken;
  bool Both;    ///< Both sides were feasible at discovery.
  bool Flipped; ///< Already explored the other side.
};

} // namespace

/// Per-run mutable state.
struct Executor::RunState {
  const Assumptions *A = nullptr;
  const ExecOptions *Opts = nullptr;

  std::vector<Event> Events;
  std::unordered_map<Reg, const Term *, RegHash> RegCache;
  std::unordered_map<Reg, bool, RegHash> ReadEmitted;
  std::unordered_map<Reg, bool, RegHash> Written;
  std::vector<const Term *> PathCond;

  std::vector<Decision> *Decisions = nullptr;
  size_t DecisionCursor = 0;
  std::vector<const Term *> *VarPool = nullptr;
  size_t VarCursor = 0;

  /// Locals of the current call frame (swapped on call/return).
  std::vector<const Term *> Locals;

  unsigned Depth = 0;
  std::string Error;
  support::ErrorCode Code = support::ErrorCode::Ok;
  unsigned PrunedBranches = 0;
  unsigned SolverQueries = 0;
  uint64_t Stmts = 0; ///< Statements dispatched (ExecStats::StmtsExecuted).

  // Resource guards for the enclosing run() (shared across its paths).
  const std::atomic<bool> *CancelFlag = nullptr;
  std::chrono::steady_clock::time_point Deadline =
      std::chrono::steady_clock::time_point::max();
  uint64_t StmtsSinceClock = 0;

  bool failed() const { return !Error.empty(); }
  void fail(int Line, const std::string &Msg,
            support::ErrorCode C = support::ErrorCode::ModelError) {
    if (Error.empty()) {
      Error = "line " + std::to_string(Line) + ": " + Msg;
      Code = C;
    }
  }
  /// Guard failures are not tied to a model source line.
  void failGuard(support::ErrorCode C, const std::string &Msg) {
    if (Error.empty()) {
      Error = Msg;
      Code = C;
    }
  }

  /// Statement-granular guard poll: cancellation every statement (one
  /// relaxed atomic load), the wall clock every 256 statements.
  bool guardTripped() {
    if (CancelFlag && CancelFlag->load(std::memory_order_relaxed)) {
      failGuard(support::ErrorCode::Cancelled,
                "trace generation cancelled");
      return true;
    }
    if (Deadline != std::chrono::steady_clock::time_point::max() &&
        ++StmtsSinceClock >= 256) {
      StmtsSinceClock = 0;
      if (std::chrono::steady_clock::now() >= Deadline) {
        failGuard(support::ErrorCode::DeadlineExceeded,
                  "trace generation deadline exceeded");
        return true;
      }
    }
    return false;
  }
};

// Ambient default engine (see defaultExecEngine in the header).  Same
// discipline as cache::ambientTraceCache: installed before a suite run
// spawns workers, restored after the pool joins.
static ExecEngine AmbientEngine = ExecEngine::Snapshot;

ExecEngine islaris::isla::defaultExecEngine() { return AmbientEngine; }
void islaris::isla::setDefaultExecEngine(ExecEngine E) { AmbientEngine = E; }

unsigned islaris::isla::registerWidth(const sail::Model &M,
                                      const itl::Reg &R) {
  const sail::RegisterDecl *RD = M.findRegister(R.Base);
  if (!RD)
    return 0;
  if (!R.hasField())
    return RD->Width;
  return RD->hasField(R.Field) ? RD->fieldWidth(R.Field) : 0;
}

Executor::Executor(const sail::Model &M, smt::TermBuilder &TB)
    : M(M), TB(TB), Solver(TB), RW(TB) {}

const Term *Executor::pooledVar(Sort S, RunState &RS) {
  std::vector<const Term *> &Pool = *RS.VarPool;
  if (RS.VarCursor < Pool.size()) {
    const Term *V = Pool[RS.VarCursor];
    if (V->sort() != S)
      Pool[RS.VarCursor] = V = TB.freshVar(S);
    ++RS.VarCursor;
    return V;
  }
  const Term *V = TB.freshVar(S);
  Pool.push_back(V);
  ++RS.VarCursor;
  return V;
}

/// Selection-only simplification for trace values: resolves extracts over
/// concats/extensions (so a discarded-flags concat like Fig. 2's
/// AddWithCarry result collapses away) but deliberately keeps arithmetic
/// intact — the 128-bit addition "vestige" of Fig. 3 stays visible, as in
/// Isla's real output.
static const Term *selectSimplify(smt::TermBuilder &TB, const Term *T) {
  using smt::Kind;
  // Simplify children first.
  std::vector<const Term *> Ops;
  bool Changed = false;
  for (const Term *Op : T->operands()) {
    const Term *S = selectSimplify(TB, Op);
    Changed |= S != Op;
    Ops.push_back(S);
  }
  if (T->kind() == Kind::Extract) {
    const Term *Op = Ops.empty() ? T->operand(0) : Ops[0];
    unsigned Hi = T->attrA(), Lo = T->attrB();
    if (Op->kind() == Kind::Concat) {
      unsigned LoW = Op->operand(1)->width();
      if (Hi < LoW)
        return selectSimplify(TB, TB.extract(Hi, Lo, Op->operand(1)));
      if (Lo >= LoW)
        return selectSimplify(
            TB, TB.extract(Hi - LoW, Lo - LoW, Op->operand(0)));
    }
    if ((Op->kind() == Kind::ZeroExtend || Op->kind() == Kind::SignExtend) &&
        Hi < Op->operand(0)->width())
      return selectSimplify(TB, TB.extract(Hi, Lo, Op->operand(0)));
    if (Changed)
      return TB.extract(Hi, Lo, Op);
    return T;
  }
  if (!Changed)
    return T;
  // Rebuild with the simplified children for the kinds sinks produce.
  switch (T->kind()) {
  case Kind::Concat:
    return TB.concat(Ops[0], Ops[1]);
  case Kind::ZeroExtend:
    return TB.zeroExtend(T->attrA(), Ops[0]);
  case Kind::SignExtend:
    return TB.signExtend(T->attrA(), Ops[0]);
  case Kind::Ite:
    return TB.iteTerm(Ops[0], Ops[1], Ops[2]);
  case Kind::Eq:
    return TB.eqTerm(Ops[0], Ops[1]);
  case Kind::Not:
    return TB.notTerm(Ops[0]);
  case Kind::BVNot:
    return TB.bvNot(Ops[0]);
  case Kind::BVNeg:
    return TB.bvNeg(Ops[0]);
  case Kind::BVAdd:
    return TB.bvAdd(Ops[0], Ops[1]);
  case Kind::BVSub:
    return TB.bvSub(Ops[0], Ops[1]);
  case Kind::BVMul:
    return TB.bvMul(Ops[0], Ops[1]);
  case Kind::BVAnd:
    return TB.bvAnd(Ops[0], Ops[1]);
  case Kind::BVOr:
    return TB.bvOr(Ops[0], Ops[1]);
  case Kind::BVXor:
    return TB.bvXor(Ops[0], Ops[1]);
  case Kind::BVShl:
    return TB.bvShl(Ops[0], Ops[1]);
  case Kind::BVLShr:
    return TB.bvLShr(Ops[0], Ops[1]);
  case Kind::BVAShr:
    return TB.bvAShr(Ops[0], Ops[1]);
  case Kind::BVUlt:
    return TB.bvUlt(Ops[0], Ops[1]);
  case Kind::BVUle:
    return TB.bvUle(Ops[0], Ops[1]);
  case Kind::BVSlt:
    return TB.bvSlt(Ops[0], Ops[1]);
  case Kind::BVSle:
    return TB.bvSle(Ops[0], Ops[1]);
  case Kind::BVUDiv:
    return TB.bvUDiv(Ops[0], Ops[1]);
  case Kind::BVURem:
    return TB.bvURem(Ops[0], Ops[1]);
  case Kind::BVSDiv:
    return TB.bvSDiv(Ops[0], Ops[1]);
  case Kind::BVSRem:
    return TB.bvSRem(Ops[0], Ops[1]);
  case Kind::And:
    return TB.andTerm(Ops[0], Ops[1]);
  case Kind::Or:
    return TB.orTerm(Ops[0], Ops[1]);
  case Kind::Implies:
    return TB.impliesTerm(Ops[0], Ops[1]);
  default:
    return T;
  }
}

const Term *Executor::nameValue(const Term *V, RunState &RS) {
  V = selectSimplify(TB, V);
  if (V->isVar() || V->isConst())
    return V;
  const Term *Name = pooledVar(V->sort(), RS);
  RS.Events.push_back(Event::defineConst(Name, V));
  return Name;
}

const Term *Executor::readRegister(const Reg &R, unsigned Width,
                                   RunState &RS) {
  auto It = RS.RegCache.find(R);
  if (It != RS.RegCache.end()) {
    bool Emitted = RS.ReadEmitted[R];
    if (!Emitted) {
      RS.Events.push_back(Event::readReg(R, It->second));
      RS.ReadEmitted[R] = true;
    } else if (!RS.Opts->CacheRegReads && !RS.Written[R]) {
      // Unsimplified baseline: every model-level read is its own event with
      // a fresh unknown (later reads still denote the same register value;
      // the ITL read semantics re-establishes the equality).
      const Term *V = pooledVar(Sort::bitvec(Width), RS);
      RS.Events.push_back(Event::declareConst(V));
      RS.Events.push_back(Event::readReg(R, V));
      return V;
    }
    return It->second;
  }
  const Term *V = pooledVar(Sort::bitvec(Width), RS);
  RS.Events.push_back(Event::declareConst(V));
  RS.Events.push_back(Event::readReg(R, V));
  RS.RegCache[R] = V;
  RS.ReadEmitted[R] = true;
  return V;
}

void Executor::writeRegister(const Reg &R, const Term *V, RunState &RS) {
  const Term *Named = nameValue(V, RS);
  RS.Events.push_back(Event::writeReg(R, Named));
  RS.RegCache[R] = Named;
  RS.ReadEmitted[R] = true;
  RS.Written[R] = true;
}

bool Executor::decideBranch(const Term *Cond, RunState &RS) {
  const Term *S = RW.simplify(Cond);
  if (S->kind() == smt::Kind::ConstBool)
    return S->constBool();

  // Replaying a recorded decision?
  if (RS.DecisionCursor < RS.Decisions->size()) {
    Decision &D = (*RS.Decisions)[RS.DecisionCursor++];
    if (!D.Both)
      return D.Taken; // pruned at discovery; no events, condition implied
    const Term *Named = nameValue(S, RS);
    const Term *Branch = D.Taken ? Named : TB.notTerm(Named);
    RS.Events.push_back(Event::assertE(Branch));
    RS.PathCond.push_back(D.Taken ? S : TB.notTerm(S));
    return D.Taken;
  }

  // Fresh decision: ask the solver which sides are reachable under the
  // current path condition (this is Isla's branch pruning).  An Unknown on
  // either side means we cannot *soundly* prune or fork — treating it as
  // Sat would fork on a possibly-infeasible side, treating it as Unsat
  // would prune a possibly-feasible one — so the run fails with an
  // attributed solver-budget diagnostic instead.
  std::vector<const Term *> Base = RS.PathCond;
  Base.push_back(S);
  RS.SolverQueries += 2;
  smt::Result TrueRes = Solver.check(Base);
  Base.back() = TB.notTerm(S);
  smt::Result FalseRes = Solver.check(Base);
  if (TrueRes == smt::Result::Unknown || FalseRes == smt::Result::Unknown) {
    RS.failGuard(RS.CancelFlag &&
                         RS.CancelFlag->load(std::memory_order_relaxed)
                     ? support::ErrorCode::Cancelled
                     : support::ErrorCode::SolverBudgetExceeded,
                 "solver gave up deciding a branch condition");
    return false;
  }
  bool TrueSat = TrueRes == smt::Result::Sat;
  bool FalseSat = FalseRes == smt::Result::Sat;
  if (!TrueSat && !FalseSat) {
    // The path condition itself became unsatisfiable — an executor
    // invariant violation (decisions are only recorded on feasible sides).
    RS.failGuard(support::ErrorCode::Internal,
                 "internal: path condition became unsatisfiable");
    return false;
  }

  if (TrueSat != FalseSat) {
    ++RS.PrunedBranches;
    RS.Decisions->push_back({TrueSat, false, false});
    ++RS.DecisionCursor;
    return TrueSat;
  }
  // Both feasible: fork.  Name the condition (shared prefix), assert the
  // chosen side (head of the divergent suffix, as in Fig. 6).
  RS.Decisions->push_back({true, true, false});
  ++RS.DecisionCursor;
  const Term *Named = nameValue(S, RS);
  RS.Events.push_back(Event::assertE(Named));
  RS.PathCond.push_back(S);
  return true;
}

//===----------------------------------------------------------------------===//
// Expression evaluation.
//===----------------------------------------------------------------------===//

const Term *Executor::evalCall(const Expr &E, RunState &RS) {
  switch (E.BuiltinKind) {
  case Builtin::ZeroExtend:
  case Builtin::SignExtend:
  case Builtin::Truncate: {
    const Term *V = evalExpr(*E.Args[0], RS);
    if (!V)
      return nullptr;
    if (E.BuiltinKind == Builtin::Truncate)
      return TB.extract(E.ExtWidth - 1, 0, V);
    unsigned Extra = E.ExtWidth - V->width();
    return E.BuiltinKind == Builtin::ZeroExtend ? TB.zeroExtend(Extra, V)
                                                : TB.signExtend(Extra, V);
  }
  case Builtin::ReverseBits: {
    const Term *V = evalExpr(*E.Args[0], RS);
    if (!V)
      return nullptr;
    if (V->kind() == smt::Kind::ConstBV)
      return TB.constBV(V->constBV().reverseBits());
    // Structural expansion: the result is bit 0 of the input (as the new
    // MSB) down to bit w-1 (as the new LSB).
    const Term *R = TB.extract(0, 0, V);
    for (unsigned I = 1; I < V->width(); ++I)
      R = TB.concat(R, TB.extract(I, I, V));
    return R;
  }
  case Builtin::ReadMem: {
    const Term *A = evalExpr(*E.Args[0], RS);
    if (!A)
      return nullptr;
    const Term *V = pooledVar(Sort::bitvec(E.MemBytes * 8), RS);
    RS.Events.push_back(Event::declareConst(V));
    RS.Events.push_back(Event::readMem(V, A, E.MemBytes));
    return V;
  }
  case Builtin::WriteMem: {
    const Term *A = evalExpr(*E.Args[0], RS);
    const Term *D = evalExpr(*E.Args[1], RS);
    if (!A || !D)
      return nullptr;
    RS.Events.push_back(
        Event::writeMem(A, nameValue(D, RS), E.MemBytes));
    return TB.constBV(1, 0); // unit placeholder
  }
  case Builtin::None:
    break;
  }
  std::vector<const Term *> Args;
  Args.reserve(E.Args.size());
  for (const sail::ExprPtr &A : E.Args) {
    const Term *V = evalExpr(*A, RS);
    if (!V)
      return nullptr;
    Args.push_back(V);
  }
  return callFunction(*E.Callee, std::move(Args), RS);
}

const Term *Executor::evalExpr(const Expr &E, RunState &RS) {
  if (RS.failed())
    return nullptr;
  const Term *Result = nullptr;
  switch (E.Kind) {
  case ExprKind::BitsLit:
    return TB.constBV(E.BitsVal);
  case ExprKind::BoolLit:
    return TB.constBool(E.BoolVal);
  case ExprKind::IntLit:
    RS.fail(E.Line, "internal: unresolved decimal literal");
    return nullptr;
  case ExprKind::VarRef: {
    const Term *V = RS.Locals[size_t(E.LocalIdx)];
    if (!V) {
      RS.fail(E.Line, "internal: read of uninitialized local",
              support::ErrorCode::Internal);
      return nullptr;
    }
    return V;
  }
  case ExprKind::RegRead:
    return readRegister(Reg(E.Name, E.Field), E.Ty.Width, RS);
  case ExprKind::Call:
    return evalCall(E, RS);
  case ExprKind::Unary: {
    const Term *V = evalExpr(*E.Args[0], RS);
    if (!V)
      return nullptr;
    switch (E.UOp) {
    case UnOp::BoolNot:
      Result = TB.notTerm(V);
      break;
    case UnOp::BvNot:
      Result = TB.bvNot(V);
      break;
    case UnOp::BvNeg:
      Result = TB.bvNeg(V);
      break;
    }
    break;
  }
  case ExprKind::Binary: {
    const Term *L = evalExpr(*E.Args[0], RS);
    const Term *R = evalExpr(*E.Args[1], RS);
    if (!L || !R)
      return nullptr;
    switch (E.BOp) {
    case BinOp::BoolAnd:
      Result = TB.andTerm(L, R);
      break;
    case BinOp::BoolOr:
      Result = TB.orTerm(L, R);
      break;
    case BinOp::Eq:
      Result = TB.eqTerm(L, R);
      break;
    case BinOp::Ne:
      Result = TB.notTerm(TB.eqTerm(L, R));
      break;
    case BinOp::Add:
      Result = TB.bvAdd(L, R);
      break;
    case BinOp::Sub:
      Result = TB.bvSub(L, R);
      break;
    case BinOp::Mul:
      Result = TB.bvMul(L, R);
      break;
    case BinOp::UDiv:
      Result = TB.bvUDiv(L, R);
      break;
    case BinOp::URem:
      Result = TB.bvURem(L, R);
      break;
    case BinOp::BvAnd:
      Result = TB.bvAnd(L, R);
      break;
    case BinOp::BvOr:
      Result = TB.bvOr(L, R);
      break;
    case BinOp::BvXor:
      Result = TB.bvXor(L, R);
      break;
    case BinOp::Shl:
      Result = TB.bvShl(L, TB.zextTo(L->width(), R));
      break;
    case BinOp::LShr:
      Result = TB.bvLShr(L, TB.zextTo(L->width(), R));
      break;
    case BinOp::AShr:
      Result = TB.bvAShr(L, TB.zextTo(L->width(), R));
      break;
    case BinOp::ULt:
      Result = TB.bvUlt(L, R);
      break;
    case BinOp::ULe:
      Result = TB.bvUle(L, R);
      break;
    case BinOp::SLt:
      Result = TB.bvSlt(L, R);
      break;
    case BinOp::SLe:
      Result = TB.bvSle(L, R);
      break;
    case BinOp::Concat:
      Result = TB.concat(L, R);
      break;
    }
    break;
  }
  case ExprKind::IfExpr: {
    const Term *C = evalExpr(*E.Args[0], RS);
    if (!C)
      return nullptr;
    // Value-level selection stays an ite term (no fork).
    const Term *CS = RW.simplify(C);
    if (CS->kind() == smt::Kind::ConstBool)
      return evalExpr(*E.Args[CS->constBool() ? 1 : 2], RS);
    const Term *T = evalExpr(*E.Args[1], RS);
    const Term *El = evalExpr(*E.Args[2], RS);
    if (!T || !El)
      return nullptr;
    Result = TB.iteTerm(CS, T, El);
    break;
  }
  case ExprKind::Slice: {
    const Term *V = evalExpr(*E.Args[0], RS);
    if (!V)
      return nullptr;
    Result = TB.extract(E.SliceHi, E.SliceLo, V);
    break;
  }
  }
  if (!Result) {
    RS.fail(E.Line, "internal: unhandled expression");
    return nullptr;
  }
  // Unsimplified baseline: name every compound intermediate.
  if (!RS.Opts->SinksOnly)
    Result = nameValue(Result, RS);
  return Result;
}

//===----------------------------------------------------------------------===//
// Statements.
//===----------------------------------------------------------------------===//

void Executor::execBlock(const std::vector<sail::StmtPtr> &Body, RunState &RS,
                         bool &Returned) {
  for (const sail::StmtPtr &S : Body) {
    if (RS.failed() || Returned)
      return;
    execStmt(*S, RS, Returned);
  }
}

void Executor::execStmt(const Stmt &S, RunState &RS, bool &Returned) {
  ++RS.Stmts;
  if (RS.guardTripped())
    return;
  switch (S.Kind) {
  case StmtKind::Block:
    return execBlock(S.Body, RS, Returned);
  case StmtKind::Let:
  case StmtKind::Assign: {
    const Term *V = evalExpr(*S.Value, RS);
    if (!V)
      return;
    RS.Locals[size_t(S.LocalIdx)] = V;
    return;
  }
  case StmtKind::RegWrite: {
    const Term *V = evalExpr(*S.Value, RS);
    if (!V)
      return;
    writeRegister(Reg(S.Name, S.Field), V, RS);
    return;
  }
  case StmtKind::If: {
    const Term *C = evalExpr(*S.Value, RS);
    if (!C)
      return;
    if (decideBranch(C, RS))
      execBlock(S.Body, RS, Returned);
    else
      execBlock(S.Else, RS, Returned);
    return;
  }
  case StmtKind::ExprStmt:
    evalExpr(*S.Value, RS);
    return;
  case StmtKind::Return:
    if (S.Value) {
      const Term *V = evalExpr(*S.Value, RS);
      if (!V)
        return;
      RS.Locals.back() = V; // return slot, see callFunction
    }
    Returned = true;
    return;
  case StmtKind::Throw:
    RS.fail(S.Line, "reachable model exception: " + S.Message);
    return;
  case StmtKind::Assert: {
    const Term *C = evalExpr(*S.Value, RS);
    if (!C)
      return;
    const Term *CS = RW.simplify(C);
    if (CS->kind() == smt::Kind::ConstBool) {
      if (!CS->constBool())
        RS.fail(S.Line, "model assertion failed: " + S.Message);
      return;
    }
    std::vector<const Term *> Query = RS.PathCond;
    Query.push_back(TB.notTerm(CS));
    ++RS.SolverQueries;
    smt::Result QR = Solver.check(Query);
    if (QR == smt::Result::Unknown)
      RS.failGuard(support::ErrorCode::SolverBudgetExceeded,
                   "solver gave up on model assertion: " + S.Message);
    else if (QR == smt::Result::Sat)
      RS.fail(S.Line, "model assertion not provable: " + S.Message);
    return;
  }
  }
  RS.fail(S.Line, "internal: unhandled statement");
}

const Term *Executor::callFunction(const sail::FunctionDecl &F,
                                   std::vector<const Term *> Args,
                                   RunState &RS) {
  if (++RS.Depth > 128) {
    RS.fail(F.Line, "call depth limit exceeded in " + F.Name);
    --RS.Depth;
    return nullptr;
  }
  std::vector<const Term *> Saved = std::move(RS.Locals);
  RS.Locals.assign(F.NumLocals + 1, nullptr); // +1: return slot at back()
  for (size_t I = 0; I < Args.size(); ++I)
    RS.Locals[I] = Args[I];
  RS.Locals.back() = TB.constBV(1, 0); // unit default

  bool Returned = false;
  execStmt(*F.Body, RS, Returned);
  const Term *Ret = RS.Locals.back();
  RS.Locals = std::move(Saved);
  --RS.Depth;
  if (RS.failed())
    return nullptr;
  if (!Returned && !F.RetTy.isUnit()) {
    RS.fail(F.Line, "function " + F.Name + " fell off the end");
    return nullptr;
  }
  return Ret;
}

//===----------------------------------------------------------------------===//
// Path enumeration and trace merging.
//===----------------------------------------------------------------------===//

static bool eventEquals(const Event &A, const Event &B) {
  return A.K == B.K && A.R == B.R && A.Val == B.Val && A.Addr == B.Addr &&
         A.NBytes == B.NBytes && A.Var == B.Var && A.Expr == B.Expr;
}

/// Merges linear event paths (sharing deterministic prefixes) into a tree.
/// Violated merge invariants (only possible if path enumeration produced an
/// inconsistent set) are reported through \p Err instead of asserting, so a
/// Release build fails the run cleanly rather than mis-merging.
static Trace mergePaths(const std::vector<std::vector<Event>> &Paths,
                        std::vector<size_t> Members, size_t From,
                        std::string &Err) {
  Trace T;
  // Extend the common prefix.
  while (true) {
    const std::vector<Event> &First = Paths[Members[0]];
    bool AllHave = From < First.size();
    for (size_t M : Members)
      AllHave = AllHave && From < Paths[M].size() &&
                eventEquals(Paths[M][From], First[From]);
    if (!AllHave)
      break;
    T.Events.push_back(First[From]);
    ++From;
  }
  if (Members.size() == 1)
    return T; // exhausted a single path
  // Group by the divergence event (first-occurrence order).
  std::vector<std::vector<size_t>> Groups;
  for (size_t M : Members) {
    if (From >= Paths[M].size()) {
      Err = "internal: path is a strict prefix of another path";
      return T;
    }
    bool Placed = false;
    for (auto &G : Groups) {
      if (eventEquals(Paths[G[0]][From], Paths[M][From])) {
        G.push_back(M);
        Placed = true;
        break;
      }
    }
    if (!Placed)
      Groups.push_back({M});
  }
  if (Groups.size() <= 1) {
    Err = "internal: divergence with a single group";
    return T;
  }
  for (auto &G : Groups) {
    T.Cases.push_back(mergePaths(Paths, std::move(G), From, Err));
    if (!Err.empty())
      return T;
  }
  return T;
}

/// Installs the per-check solver guards for a run and computes its deadline.
/// The guards are not part of the trace-cache fingerprint: a guarded failure
/// is never cached, and a success is budget-independent.
static std::chrono::steady_clock::time_point
installGuards(smt::Solver &Solver, const ExecOptions &Opts) {
  smt::SolverLimits SL;
  SL.MaxConflicts = Opts.SolverConflicts;
  SL.MaxPropagations = Opts.SolverPropagations;
  SL.MaxSeconds = Opts.SolverCheckSeconds;
  SL.Cancel = Opts.Cancel;
  Solver.setLimits(SL);

  auto Deadline = std::chrono::steady_clock::time_point::max();
  if (Opts.DeadlineSeconds > 0)
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(Opts.DeadlineSeconds));
  return Deadline;
}

const Term *Executor::emitPreamble(const OpcodeSpec &Op, const Assumptions &A,
                                   RunState &RS,
                                   std::vector<const Term *> &OpVars) {
  // Assumption preamble: concrete assumed values first (Fig. 3 lines 2-3),
  // then constrained registers as declare/read/assume triples.
  for (const auto &[R, V] : A.Concrete) {
    RS.Events.push_back(Event::assumeReg(R, TB.constBV(V)));
    RS.RegCache[R] = TB.constBV(V);
  }
  for (const auto &[R, F] : A.Constraints) {
    if (!M.findRegister(R.Base)) {
      RS.failGuard(support::ErrorCode::UnknownRegister,
                   "constraint on unknown register " + R.Base);
      return nullptr;
    }
    unsigned W = registerWidth(M, R);
    const Term *V = pooledVar(Sort::bitvec(W), RS);
    const Term *P = F(TB, V);
    RS.Events.push_back(Event::declareConst(V));
    RS.Events.push_back(Event::readReg(R, V));
    RS.Events.push_back(Event::assumeE(P));
    RS.RegCache[R] = V;
    RS.ReadEmitted[R] = true;
    RS.PathCond.push_back(P);
  }

  // Build the opcode term: concrete segments folded, symbolic runs as
  // fresh variables (partially symbolic opcodes, §3).
  std::vector<const Term *> SegmentsLowFirst;
  unsigned I = 0;
  while (I < 32) {
    unsigned J = I;
    bool Sym = Op.SymMask.bit(I);
    while (J < 32 && Op.SymMask.bit(J) == Sym)
      ++J;
    if (Sym) {
      const Term *V = pooledVar(Sort::bitvec(J - I), RS);
      RS.Events.push_back(Event::declareConst(V));
      SegmentsLowFirst.push_back(V);
      OpVars.push_back(V);
    } else {
      SegmentsLowFirst.push_back(TB.constBV(Op.Bits.extract(J - 1, I)));
    }
    I = J;
  }
  const Term *Opcode = SegmentsLowFirst[0];
  for (size_t K = 1; K < SegmentsLowFirst.size(); ++K)
    Opcode = TB.concat(SegmentsLowFirst[K], Opcode);
  return Opcode;
}

ExecResult Executor::runReplay(const OpcodeSpec &Op, const Assumptions &A,
                               const ExecOptions &Opts) {
  ExecResult Res;
  auto failRun = [&Res](support::ErrorCode C,
                        const std::string &Msg) -> ExecResult & {
    Res.Ok = false;
    Res.Error = Msg;
    Res.D = support::Diag::error(C, "executor", Msg);
    return Res;
  };

  auto Deadline = installGuards(Solver, Opts);

  std::vector<Decision> Decisions;
  std::vector<const Term *> VarPool;
  std::vector<std::vector<Event>> PathEvents;
  ExecStats Stats;
  uint64_t MemoHitsBefore = Solver.stats().NumMemoHits;
  uint64_t StoreHitsBefore = Solver.stats().NumStoreHits;
  uint64_t CapHitsBefore =
      RW.fixpointCapHits() + Solver.stats().FixpointCapHits;

  const sail::FunctionDecl *Decode = M.findFunction("decode");
  if (!Decode || Decode->Params.size() != 1 ||
      Decode->Params[0].Ty != sail::Type::bits(32)) {
    return failRun(support::ErrorCode::ModelError,
                   "model has no decode(bits(32)) entry point");
  }

  while (true) {
    if (PathEvents.size() >= Opts.MaxPaths) {
      return failRun(support::ErrorCode::PathBudgetExceeded,
                     "path budget exceeded (model blow-up?)");
    }
    if (Opts.Cancel.cancelled())
      return failRun(support::ErrorCode::Cancelled,
                     "trace generation cancelled");
    if (Deadline != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= Deadline)
      return failRun(support::ErrorCode::DeadlineExceeded,
                     "trace generation deadline exceeded");
    RunState RS;
    RS.A = &A;
    RS.Opts = &Opts;
    RS.Decisions = &Decisions;
    RS.VarPool = &VarPool;
    RS.CancelFlag = Opts.Cancel.raw();
    RS.Deadline = Deadline;

    std::vector<const Term *> OpVars;
    const Term *Opcode = emitPreamble(Op, A, RS, OpVars);
    if (RS.failed())
      return failRun(RS.Code, RS.Error);

    callFunction(*Decode, {Opcode}, RS);
    if (RS.failed())
      return failRun(RS.Code == support::ErrorCode::Ok
                         ? support::ErrorCode::ModelError
                         : RS.Code,
                     RS.Error);
    Stats.PrunedBranches += RS.PrunedBranches;
    Stats.SolverQueries += RS.SolverQueries;
    Stats.StmtsExecuted += RS.Stmts;
    if (PathEvents.empty())
      Res.OpcodeVars = OpVars;
    PathEvents.push_back(std::move(RS.Events));

    // Backtrack to the most recent unflipped genuine fork.
    while (!Decisions.empty() &&
           (!Decisions.back().Both || Decisions.back().Flipped))
      Decisions.pop_back();
    if (Decisions.empty())
      break;
    Decisions.back().Taken = !Decisions.back().Taken;
    Decisions.back().Flipped = true;
  }

  std::vector<size_t> All(PathEvents.size());
  for (size_t K = 0; K < All.size(); ++K)
    All[K] = K;
  std::string MergeErr;
  Res.Trace = mergePaths(PathEvents, std::move(All), 0, MergeErr);
  if (!MergeErr.empty())
    return failRun(support::ErrorCode::Internal, MergeErr);
  Stats.Paths = unsigned(PathEvents.size());
  Stats.Events = Res.Trace.countEvents();
  Stats.SolverMemoHits =
      unsigned(Solver.stats().NumMemoHits - MemoHitsBefore);
  Stats.SolverStoreHits =
      unsigned(Solver.stats().NumStoreHits - StoreHitsBefore);
  Stats.FixpointCapHits = RW.fixpointCapHits() +
                          Solver.stats().FixpointCapHits - CapHitsBefore;
  Res.Stats = Stats;
  Res.Ok = true;
  return Res;
}

//===----------------------------------------------------------------------===//
// The snapshot-forking engine.
//
// The recursive interpreter above cannot resume a flipped branch without
// re-running the model, so the snapshot engine is a defunctionalized
// frame-stack machine: control is an explicit stack of copyable frames
// (statements AND expressions — forks can occur inside expression-position
// calls), values an explicit operand stack.  A both-feasible branch deep
// inside nested calls is then checkpointable by value-copying the two
// stacks plus the mutable RunState maps; restoring a checkpoint and
// appending the flipped assertion continues the run as if the shared prefix
// had been re-executed — except it wasn't, which is the whole point.
//
// Determinism invariants (what makes the output bit-identical to replay):
//  * events and path conditions are append-only, so a checkpoint stores
//    only their lengths and restore truncates;
//  * pooled variable naming is position-stable: restoring VarCursor makes
//    the flipped path draw exactly the variables the replay engine would
//    re-draw while re-executing the prefix;
//  * the branch condition is named (define-const, shared prefix) BEFORE the
//    checkpoint and asserted AFTER it, mirroring decideBranch's order, so
//    the merged tree diverges exactly at the Assert events (Fig. 6).
//===----------------------------------------------------------------------===//

struct Executor::Machine {
  enum class FK : uint8_t {
    Stmt,        ///< Dispatch one statement.
    BlockStep,   ///< Run the next statement of a block body.
    AssignLocal, ///< Store popped value into S->LocalIdx.
    WriteReg,    ///< writeRegister(popped value).
    IfCond,      ///< Decide a popped branch condition (the fork point).
    Drop,        ///< Discard a popped value (ExprStmt).
    ReturnValue, ///< Store popped value in the return slot, unwind.
    AssertCond,  ///< Discharge a popped assert condition.
    Expr,        ///< Dispatch one expression.
    ApplyUnary,  ///< Combine 1 popped operand.
    ApplyBinary, ///< Combine 2 popped operands.
    IfExprCond,  ///< Branch-free ite: decide const vs. symbolic.
    IteJoin,     ///< Combine popped then/else into an ite term.
    ApplySlice,  ///< Extract from a popped operand.
    ApplyExt,    ///< zero/sign-extend or truncate a popped operand.
    ApplyRev,    ///< reverse_bits of a popped operand.
    ReadMemFin,  ///< Emit read-mem events for a popped address.
    WriteMemFin, ///< Emit a write-mem event for popped address + data.
    CallArgsDone, ///< All arguments evaluated: enter the callee.
    CallExit,    ///< Restore caller locals, push the return value.
  };

  /// One continuation frame.  Everything is an immutable AST pointer, an
  /// index, or a hash-consed term, so frames (and thus snapshots) are plain
  /// value copies.
  struct Frame {
    FK K;
    const Stmt *S = nullptr;
    const Expr *E = nullptr;
    const std::vector<sail::StmtPtr> *Body = nullptr;
    size_t Idx = 0;
    const Term *T = nullptr; ///< IteJoin: the simplified condition.
    // CallExit bookkeeping.
    const sail::FunctionDecl *F = nullptr;
    std::vector<const Term *> Saved; ///< Caller's locals.
    bool Returned = false;
    // Pure-helper memo bookkeeping (CallExit frames of candidates only).
    bool MemoCand = false;
    size_t EventsAtEntry = 0;
    unsigned QueriesAtEntry = 0;
    std::vector<const Term *> MemoArgs;
  };

  /// A checkpoint at a both-feasible branch: everything a flipped path
  /// needs to continue as if it had re-executed the shared prefix.
  struct Snapshot {
    std::vector<Frame> Control;
    std::vector<const Term *> Values;
    std::vector<const Term *> Locals;
    std::unordered_map<Reg, const Term *, RegHash> RegCache;
    std::unordered_map<Reg, bool, RegHash> ReadEmitted;
    std::unordered_map<Reg, bool, RegHash> Written;
    size_t EventsLen = 0;
    size_t PathCondLen = 0;
    size_t VarCursor = 0;
    unsigned Depth = 0;
    uint64_t PathStmts = 0; ///< Logical path length at the fork point.
    const Stmt *IfStmt = nullptr;
    const Term *Cond = nullptr;  ///< Simplified condition (path-cond form).
    const Term *Named = nullptr; ///< Named condition (event form).
  };

  Executor &X;
  RunState RS;
  ExecStats *Stats = nullptr;
  std::vector<Frame> Control;
  std::vector<const Term *> Values;
  std::vector<Snapshot> Snaps; ///< DFS worklist of unexplored flips.
  /// Per-run summaries of statically-pure helpers, keyed on the hash-consed
  /// argument terms.  Exact-pointer lookups only, so the (nondeterministic)
  /// map ordering never leaks into the trace.
  std::map<std::pair<const sail::FunctionDecl *, std::vector<const Term *>>,
           const Term *>
      Memo;
  uint64_t PathStmts = 0; ///< Logical statements of the current path.

  explicit Machine(Executor &X) : X(X) {}

  void push(FK K, const Stmt *S = nullptr, const Expr *E = nullptr) {
    Frame Fr;
    Fr.K = K;
    Fr.S = S;
    Fr.E = E;
    Control.push_back(std::move(Fr));
  }
  void pushExpr(const Expr &E) { push(FK::Expr, nullptr, &E); }
  void pushBlock(const std::vector<sail::StmtPtr> &Body) {
    Frame Fr;
    Fr.K = FK::BlockStep;
    Fr.Body = &Body;
    Control.push_back(std::move(Fr));
  }
  const Term *popValue() {
    const Term *V = Values.back();
    Values.pop_back();
    return V;
  }
  /// Tail of the recursive evalExpr for compound results: name every
  /// intermediate in the unsimplified baseline.
  void finish(const Term *V) {
    if (!RS.Opts->SinksOnly)
      V = X.nameValue(V, RS);
    Values.push_back(V);
  }

  /// Return-statement unwinding: pop frames down to (and keeping) the
  /// innermost CallExit, which then sees Returned = true.
  void unwindReturn() {
    for (size_t I = Control.size(); I-- > 0;) {
      if (Control[I].K == FK::CallExit) {
        Control[I].Returned = true;
        Control.resize(I + 1);
        return;
      }
    }
    Control.clear();
  }

  void enterFunction(const sail::FunctionDecl &F,
                     std::vector<const Term *> Args) {
    if (++RS.Depth > 128) {
      RS.fail(F.Line, "call depth limit exceeded in " + F.Name);
      --RS.Depth;
      return;
    }
    bool Cand = F.IsPure;
    if (Cand) {
      auto It = Memo.find({&F, Args});
      if (It != Memo.end()) {
        ++Stats->HelperMemoHits;
        --RS.Depth;
        Values.push_back(It->second);
        return;
      }
    }
    Frame CE;
    CE.K = FK::CallExit;
    CE.F = &F;
    CE.Saved = std::move(RS.Locals);
    CE.MemoCand = Cand;
    CE.EventsAtEntry = RS.Events.size();
    CE.QueriesAtEntry = RS.SolverQueries;
    if (Cand)
      CE.MemoArgs = Args;
    RS.Locals.assign(F.NumLocals + 1, nullptr); // +1: return slot at back()
    for (size_t I = 0; I < Args.size(); ++I)
      RS.Locals[I] = Args[I];
    RS.Locals.back() = X.TB.constBV(1, 0); // unit default
    Control.push_back(std::move(CE));
    push(FK::Stmt, F.Body.get());
  }

  void takeSnapshot(const Stmt &S, const Term *Cond, const Term *Named) {
    Snapshot Sn;
    Sn.Control = Control;
    Sn.Values = Values;
    Sn.Locals = RS.Locals;
    Sn.RegCache = RS.RegCache;
    Sn.ReadEmitted = RS.ReadEmitted;
    Sn.Written = RS.Written;
    Sn.EventsLen = RS.Events.size();
    Sn.PathCondLen = RS.PathCond.size();
    Sn.VarCursor = RS.VarCursor;
    Sn.Depth = RS.Depth;
    Sn.PathStmts = PathStmts;
    Sn.IfStmt = &S;
    Sn.Cond = Cond;
    Sn.Named = Named;
    Snaps.push_back(std::move(Sn));
  }

  /// Restores the most recent checkpoint and enters the flipped (else)
  /// side: the shared prefix is NOT re-executed, which is the engine's
  /// entire reason to exist.
  void resume() {
    Snapshot Sn = std::move(Snaps.back());
    Snaps.pop_back();
    Stats->StmtsSkippedBySnapshot += Sn.PathStmts;
    RS.Events.resize(Sn.EventsLen);
    RS.PathCond.resize(Sn.PathCondLen);
    RS.RegCache = std::move(Sn.RegCache);
    RS.ReadEmitted = std::move(Sn.ReadEmitted);
    RS.Written = std::move(Sn.Written);
    RS.Locals = std::move(Sn.Locals);
    RS.VarCursor = Sn.VarCursor;
    RS.Depth = Sn.Depth;
    Control = std::move(Sn.Control);
    Values = std::move(Sn.Values);
    PathStmts = Sn.PathStmts;
    // Mirror decideBranch's replay of a flipped Both decision: assert the
    // negated named condition and take the else side.
    RS.Events.push_back(Event::assertE(X.TB.notTerm(Sn.Named)));
    RS.PathCond.push_back(X.TB.notTerm(Sn.Cond));
    pushBlock(Sn.IfStmt->Else);
  }

  //===--------------------------------------------------------------------===//
  // Path merging at post-dominator joins (ExecEngine::Merge).
  //
  // The fork's post-dominator needs no CFG analysis: mini-Sail is
  // structured, so both arms of an if rejoin exactly when the control stack
  // shrinks back to its depth at decide() time.  runMerge records every
  // both-feasible fork on the Pending stack (nested forks have strictly
  // increasing join depths) and checks the stack depth after every step.
  // At the then-join the engine captures the arm's effects and flips to the
  // else arm WITHOUT restoring the variable cursor — both arms' values must
  // coexist in one linear trace — and at the else-join the two run states
  // collapse into one: divergent registers and locals become
  // ite(cond, then, else), the two fork asserts and per-arm write-reg
  // events are dropped, and the path condition reverts to the shared
  // prefix's.  The merged trace is semantically equivalent to the
  // enumerated pair but not bit-identical, which is why Merge is salted
  // into the trace-cache key and validated through the equivalence checker.
  //
  // Any arm with effects an ite cannot express — memory traffic, a nested
  // fork that itself fell back (its Assert poisons the segment), control
  // stacks that do not re-converge (a return unwinding past the join), or
  // an ite value past MergeTermBudget — demotes the fork to plain
  // enumeration: the unexplored side is queued on the Work list and the
  // current path simply continues.  Work is kept sorted by snapshot event
  // length (deepest resumed first) so the append-only-prefix invariant of
  // the snapshot discipline survives out-of-order fallbacks.
  //===--------------------------------------------------------------------===//

  /// A both-feasible fork awaiting its join.  Until the then-join only
  /// Snap/JoinDepth are set; captureThenAndFlip fills the Then* fields and
  /// re-runs the else arm from the snapshot.
  struct PendingMerge {
    Snapshot Snap;
    size_t JoinDepth = 0;
    bool InElse = false;
    std::vector<Event> ThenSeg; ///< Events from the fork to the then-join.
    std::vector<Frame> ThenControl;
    std::vector<const Term *> ThenValues;
    std::vector<const Term *> ThenLocals;
    std::unordered_map<Reg, const Term *, RegHash> ThenRegCache;
    std::unordered_map<Reg, bool, RegHash> ThenReadEmitted;
    std::unordered_map<Reg, bool, RegHash> ThenWritten;
    size_t ThenVarCursor = 0;
    unsigned ThenDepth = 0;
    uint64_t ThenPathStmts = 0;
  };

  /// A queued resumption after a fallback.  !Continuation: the fork's else
  /// side, resumed exactly like the plain snapshot engine.  Continuation:
  /// the then-join state of a fork whose merge failed at the else-join —
  /// the then path, already executed up to its join, resumes from there.
  struct ResumePoint {
    bool Continuation = false;
    PendingMerge PM;
  };

  std::vector<PendingMerge> Pending; ///< Open forks, innermost last.
  std::vector<ResumePoint> Work;     ///< Sorted ascending by Snap.EventsLen.

  /// Sorted insert keyed on the fork snapshot's event length: the worklist
  /// pops from the back, and a resumption must never outlive a shallower
  /// one whose restore would truncate its shared prefix.
  void pushWork(ResumePoint RP) {
    size_t Key = RP.PM.Snap.EventsLen;
    size_t I = Work.size();
    while (I > 0 && Work[I - 1].PM.Snap.EventsLen > Key)
      --I;
    Work.insert(Work.begin() + ptrdiff_t(I), std::move(RP));
  }

  void resumeWork() {
    ResumePoint RP = std::move(Work.back());
    Work.pop_back();
    PendingMerge &PM = RP.PM;
    Snapshot &Sn = PM.Snap;
    if (!RP.Continuation) {
      // Plain flipped-else resume (the Machine::resume body, minus the
      // Snaps-stack pop).
      Stats->StmtsSkippedBySnapshot += Sn.PathStmts;
      RS.Events.resize(Sn.EventsLen);
      RS.PathCond.resize(Sn.PathCondLen);
      RS.RegCache = std::move(Sn.RegCache);
      RS.ReadEmitted = std::move(Sn.ReadEmitted);
      RS.Written = std::move(Sn.Written);
      RS.Locals = std::move(Sn.Locals);
      RS.VarCursor = Sn.VarCursor;
      RS.Depth = Sn.Depth;
      Control = std::move(Sn.Control);
      Values = std::move(Sn.Values);
      PathStmts = Sn.PathStmts;
      RS.Events.push_back(Event::assertE(X.TB.notTerm(Sn.Named)));
      RS.PathCond.push_back(X.TB.notTerm(Sn.Cond));
      pushBlock(Sn.IfStmt->Else);
      return;
    }
    // Mid-path continuation: the then arm ran to its join before the merge
    // was abandoned, so restart it exactly there (its fork assert is the
    // head of ThenSeg).
    Stats->StmtsSkippedBySnapshot += PM.ThenPathStmts;
    RS.Events.resize(Sn.EventsLen);
    RS.Events.insert(RS.Events.end(), PM.ThenSeg.begin(), PM.ThenSeg.end());
    RS.PathCond.resize(Sn.PathCondLen);
    RS.PathCond.push_back(Sn.Cond);
    RS.RegCache = std::move(PM.ThenRegCache);
    RS.ReadEmitted = std::move(PM.ThenReadEmitted);
    RS.Written = std::move(PM.ThenWritten);
    RS.Locals = std::move(PM.ThenLocals);
    RS.VarCursor = PM.ThenVarCursor;
    RS.Depth = PM.ThenDepth;
    Control = std::move(PM.ThenControl);
    Values = std::move(PM.ThenValues);
    PathStmts = PM.ThenPathStmts;
  }

  /// True iff events [From..end) are the fork's own assert followed only by
  /// register-level effects.  Memory traffic cannot be collapsed into an
  /// ite, and a second Assert is a nested fork that fell back to
  /// enumeration — merging across it would lose its path split, so the
  /// poisoning cascades outward by construction.
  bool segMergeable(size_t From) const {
    if (From >= RS.Events.size() || RS.Events[From].K != EventKind::Assert)
      return false;
    for (size_t I = From + 1; I < RS.Events.size(); ++I) {
      switch (RS.Events[I].K) {
      case EventKind::DeclareConst:
      case EventKind::DefineConst:
      case EventKind::ReadReg:
      case EventKind::WriteReg:
        continue;
      default:
        return false;
      }
    }
    return true;
  }

  static bool frameEq(const Frame &A, const Frame &B) {
    return A.K == B.K && A.S == B.S && A.E == B.E && A.Body == B.Body &&
           A.Idx == B.Idx && A.T == B.T && A.F == B.F &&
           A.Saved == B.Saved && A.Returned == B.Returned &&
           A.MemoCand == B.MemoCand &&
           A.EventsAtEntry == B.EventsAtEntry &&
           A.QueriesAtEntry == B.QueriesAtEntry &&
           A.MemoArgs == B.MemoArgs;
  }

  /// Distinct-node count of a term DAG, stopping early past \p Cap.
  static size_t dagSizeCapped(const Term *T,
                              std::unordered_set<const Term *> &Seen,
                              size_t Cap) {
    if (Seen.size() > Cap || !Seen.insert(T).second)
      return Seen.size();
    for (const Term *Op : T->operands()) {
      dagSizeCapped(Op, Seen, Cap);
      if (Seen.size() > Cap)
        break;
    }
    return Seen.size();
  }

  /// At the then-join of a mergeable then arm: record the arm's final state
  /// and re-run the else arm from the fork snapshot.  The variable cursor is
  /// deliberately NOT restored — the else arm draws fresh pooled variables
  /// so both arms' definitions coexist in the one merged event sequence.
  void captureThenAndFlip(PendingMerge &PM) {
    Snapshot &Sn = PM.Snap;
    PM.ThenSeg.assign(RS.Events.begin() + ptrdiff_t(Sn.EventsLen),
                      RS.Events.end());
    PM.ThenControl = Control;
    PM.ThenValues = Values;
    PM.ThenLocals = RS.Locals;
    PM.ThenRegCache = RS.RegCache;
    PM.ThenReadEmitted = RS.ReadEmitted;
    PM.ThenWritten = RS.Written;
    PM.ThenVarCursor = RS.VarCursor;
    PM.ThenDepth = RS.Depth;
    PM.ThenPathStmts = PathStmts;
    PM.InElse = true;
    // Copies, not moves: the snapshot must survive for a possible Mode-B
    // fallback (tryMerge failure) at the else-join.
    Stats->StmtsSkippedBySnapshot += Sn.PathStmts;
    RS.Events.resize(Sn.EventsLen);
    RS.PathCond.resize(Sn.PathCondLen);
    RS.RegCache = Sn.RegCache;
    RS.ReadEmitted = Sn.ReadEmitted;
    RS.Written = Sn.Written;
    RS.Locals = Sn.Locals;
    RS.Depth = Sn.Depth;
    Control = Sn.Control;
    Values = Sn.Values;
    PathStmts = Sn.PathStmts;
    RS.Events.push_back(Event::assertE(X.TB.notTerm(Sn.Named)));
    RS.PathCond.push_back(X.TB.notTerm(Sn.Cond));
    pushBlock(Sn.IfStmt->Else);
  }

  /// At the else-join: collapse the two arms into the current run state if
  /// every divergence is expressible as an ite within budget.  Performs no
  /// mutation until every check has passed.
  bool tryMerge(PendingMerge &PM) {
    Snapshot &Sn = PM.Snap;
    size_t From = Sn.EventsLen;
    if (!segMergeable(From))
      return false;
    // The arms must reconverge on identical control state: same frames
    // (the only in-place mutation visible exactly at the join is a
    // CallExit's Returned flag, when one arm returned and the other fell
    // through — not mergeable), same operand stack, same call depth.
    if (RS.Depth != PM.ThenDepth ||
        Control.size() != PM.ThenControl.size() ||
        Values.size() != PM.ThenValues.size() ||
        RS.Locals.size() != PM.ThenLocals.size())
      return false;
    for (size_t I = 0; I < Control.size(); ++I)
      if (!frameEq(Control[I], PM.ThenControl[I]))
        return false;
    for (size_t I = 0; I < Values.size(); ++I)
      if (Values[I] != PM.ThenValues[I])
        return false;
    // A local initialized in one arm only has no value to ite against.
    for (size_t I = 0; I < RS.Locals.size(); ++I)
      if ((PM.ThenLocals[I] == nullptr) != (RS.Locals[I] == nullptr))
        return false;

    // Registers written by either arm, then-arm order first.  The side
    // that wrote always has a cache entry; the other side falls back to
    // the fork-time value (inherited cache entry) or a fresh read.
    std::vector<Reg> WriteOrder;
    auto addWrites = [&](const std::vector<Event> &Evs, size_t Lo) {
      for (size_t I = Lo; I < Evs.size(); ++I) {
        if (Evs[I].K != EventKind::WriteReg)
          continue;
        bool SeenReg = false;
        for (const Reg &R : WriteOrder)
          if (R == Evs[I].R) {
            SeenReg = true;
            break;
          }
        if (!SeenReg)
          WriteOrder.push_back(Evs[I].R);
      }
    };
    addWrites(PM.ThenSeg, 0);
    addWrites(RS.Events, From);

    // Arms that disagree on the program counter stay enumerated: an ite
    // jump target is opaque to consumers that walk the trace as a CFG
    // (the proof engine resolves each instruction's successor address), so
    // control-flow forks demote while data forks keep merging.
    if (!RS.Opts->MergePcName.empty()) {
      for (const Reg &R : WriteOrder) {
        if (R.Base != RS.Opts->MergePcName)
          continue;
        auto TI = PM.ThenRegCache.find(R);
        auto EI = RS.RegCache.find(R);
        if (TI == PM.ThenRegCache.end() || EI == RS.RegCache.end() ||
            TI->second != EI->second)
          return false;
      }
    }

    // Budget: every candidate ite's operand DAG must stay under
    // MergeTermBudget, or pathological branch nests would compound ites
    // into an exponential term graph.
    const Term *Named = Sn.Named;
    size_t Cap = RS.Opts->MergeTermBudget;
    auto overBudget = [&](const Term *A, const Term *B) {
      if (A == B)
        return false;
      std::unordered_set<const Term *> DagSeen;
      dagSizeCapped(Named, DagSeen, Cap);
      if (A)
        dagSizeCapped(A, DagSeen, Cap);
      if (B)
        dagSizeCapped(B, DagSeen, Cap);
      return DagSeen.size() > Cap;
    };
    for (const Reg &R : WriteOrder) {
      auto TI = PM.ThenRegCache.find(R);
      auto EI = RS.RegCache.find(R);
      if (overBudget(TI == PM.ThenRegCache.end() ? nullptr : TI->second,
                     EI == RS.RegCache.end() ? nullptr : EI->second))
        return false;
    }
    for (size_t I = 0; I < RS.Locals.size(); ++I)
      if (overBudget(PM.ThenLocals[I], RS.Locals[I]))
        return false;

    // ---- Commit.  Capture the else side before rebuilding. ----
    std::vector<Event> ElseSeg(RS.Events.begin() + ptrdiff_t(From),
                               RS.Events.end());
    auto ElseRegCache = std::move(RS.RegCache);

    // Events: shared prefix, then both arms' effects with the fork asserts
    // and write-reg markers dropped.  Reads inside a segment always bind
    // pre-fork values (a write populates the register cache, suppressing
    // later read events), so hoisting the writes past them into the merged
    // section preserves every binding.
    RS.Events.resize(Sn.EventsLen);
    auto appendKept = [&](const std::vector<Event> &Evs) {
      for (size_t I = 1; I < Evs.size(); ++I) // [0] is the fork assert
        if (Evs[I].K != EventKind::WriteReg)
          RS.Events.push_back(Evs[I]);
    };
    appendKept(PM.ThenSeg);
    appendKept(ElseSeg);

    // Maps: fork-time state plus the segments' first-occurrence reads (when
    // both arms read the same unseen register, the then-arm variable wins;
    // the else-arm twin stays declared and the ITL read-event semantics
    // equates the two).
    RS.RegCache = std::move(Sn.RegCache);
    RS.ReadEmitted = std::move(Sn.ReadEmitted);
    RS.Written = std::move(Sn.Written);
    for (size_t I = Sn.EventsLen; I < RS.Events.size(); ++I) {
      const Event &E = RS.Events[I];
      if (E.K == EventKind::ReadReg && !RS.RegCache.count(E.R)) {
        RS.RegCache[E.R] = E.Val;
        RS.ReadEmitted[E.R] = true;
      }
    }
    RS.PathCond.resize(Sn.PathCondLen);

    // Locals: divergent slots collapse to ite(cond, then, else).
    for (size_t I = 0; I < RS.Locals.size(); ++I) {
      const Term *TV = PM.ThenLocals[I];
      if (TV != RS.Locals[I]) {
        RS.Locals[I] = X.TB.iteTerm(Named, TV, RS.Locals[I]);
        ++Stats->IteTermsIntroduced;
      }
    }

    // Registers: one merged write per register either arm wrote.
    for (const Reg &R : WriteOrder) {
      auto TI = PM.ThenRegCache.find(R);
      auto EI = ElseRegCache.find(R);
      const Term *TV = TI == PM.ThenRegCache.end() ? nullptr : TI->second;
      const Term *EV = EI == ElseRegCache.end() ? nullptr : EI->second;
      unsigned W = (TV ? TV : EV)->width();
      auto freshRead = [&]() {
        // The arm never observed R, so its side of the ite is R's pre-fork
        // value: sound to read here because the per-arm writes were
        // dropped above and the merged write is not emitted yet.
        const Term *V = X.pooledVar(Sort::bitvec(W), RS);
        RS.Events.push_back(Event::declareConst(V));
        RS.Events.push_back(Event::readReg(R, V));
        return V;
      };
      if (!TV)
        TV = freshRead();
      if (!EV)
        EV = freshRead();
      const Term *V = TV;
      if (TV != EV) {
        V = X.TB.iteTerm(Named, TV, EV);
        ++Stats->IteTermsIntroduced;
      }
      X.writeRegister(R, V, RS);
    }
    return true;
  }

  /// After every step of runMerge: resolve any pending forks whose join
  /// depth the control stack has reached (or unwound past).
  void checkJoin() {
    while (!Pending.empty() && !RS.failed()) {
      PendingMerge &PM = Pending.back();
      if (Control.size() > PM.JoinDepth)
        return; // still inside an arm
      auto fallBack = [&] {
        ++Stats->MergeFallbacks;
        ResumePoint RP;
        RP.Continuation = PM.InElse;
        RP.PM = std::move(Pending.back());
        pushWork(std::move(RP));
        Pending.pop_back();
      };
      if (Control.size() < PM.JoinDepth) {
        // A return unwound past the join: the arms never reconverge.  The
        // current path keeps running; the unexplored side (or the parked
        // then continuation) becomes ordinary enumerated work.  The unwind
        // may have jumped outer joins too, hence the loop.
        fallBack();
        continue;
      }
      if (!PM.InElse) {
        if (!segMergeable(PM.Snap.EventsLen)) {
          fallBack(); // cheap reject before paying for the else capture
          continue;
        }
        captureThenAndFlip(PM);
        return; // now exploring the else arm
      }
      if (tryMerge(PM)) {
        ++Stats->PathsMerged;
        Pending.pop_back();
        continue;
      }
      fallBack();
    }
  }

  void execStmtFrame(const Stmt &S) {
    ++RS.Stmts;
    ++PathStmts;
    if (RS.guardTripped())
      return;
    switch (S.Kind) {
    case StmtKind::Block:
      pushBlock(S.Body);
      return;
    case StmtKind::Let:
    case StmtKind::Assign:
      push(FK::AssignLocal, &S);
      pushExpr(*S.Value);
      return;
    case StmtKind::RegWrite:
      push(FK::WriteReg, &S);
      pushExpr(*S.Value);
      return;
    case StmtKind::If:
      push(FK::IfCond, &S);
      pushExpr(*S.Value);
      return;
    case StmtKind::ExprStmt:
      push(FK::Drop, &S);
      pushExpr(*S.Value);
      return;
    case StmtKind::Return:
      if (S.Value) {
        push(FK::ReturnValue, &S);
        pushExpr(*S.Value);
      } else {
        unwindReturn();
      }
      return;
    case StmtKind::Throw:
      RS.fail(S.Line, "reachable model exception: " + S.Message);
      return;
    case StmtKind::Assert:
      push(FK::AssertCond, &S);
      pushExpr(*S.Value);
      return;
    }
    RS.fail(S.Line, "internal: unhandled statement");
  }

  void evalExprFrame(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::BitsLit:
      Values.push_back(X.TB.constBV(E.BitsVal));
      return;
    case ExprKind::BoolLit:
      Values.push_back(X.TB.constBool(E.BoolVal));
      return;
    case ExprKind::IntLit:
      RS.fail(E.Line, "internal: unresolved decimal literal");
      return;
    case ExprKind::VarRef: {
      const Term *V = RS.Locals[size_t(E.LocalIdx)];
      if (!V) {
        RS.fail(E.Line, "internal: read of uninitialized local",
                support::ErrorCode::Internal);
        return;
      }
      Values.push_back(V);
      return;
    }
    case ExprKind::RegRead:
      Values.push_back(
          X.readRegister(Reg(E.Name, E.Field), E.Ty.Width, RS));
      return;
    case ExprKind::Call:
      evalCallFrame(E);
      return;
    case ExprKind::Unary:
      push(FK::ApplyUnary, nullptr, &E);
      pushExpr(*E.Args[0]);
      return;
    case ExprKind::Binary:
      push(FK::ApplyBinary, nullptr, &E);
      pushExpr(*E.Args[1]); // dispatched second (operand order preserved)
      pushExpr(*E.Args[0]); // dispatched first
      return;
    case ExprKind::IfExpr:
      push(FK::IfExprCond, nullptr, &E);
      pushExpr(*E.Args[0]);
      return;
    case ExprKind::Slice:
      push(FK::ApplySlice, nullptr, &E);
      pushExpr(*E.Args[0]);
      return;
    }
    RS.fail(E.Line, "internal: unhandled expression");
  }

  void evalCallFrame(const Expr &E) {
    switch (E.BuiltinKind) {
    case Builtin::ZeroExtend:
    case Builtin::SignExtend:
    case Builtin::Truncate:
      push(FK::ApplyExt, nullptr, &E);
      pushExpr(*E.Args[0]);
      return;
    case Builtin::ReverseBits:
      push(FK::ApplyRev, nullptr, &E);
      pushExpr(*E.Args[0]);
      return;
    case Builtin::ReadMem:
      push(FK::ReadMemFin, nullptr, &E);
      pushExpr(*E.Args[0]);
      return;
    case Builtin::WriteMem:
      push(FK::WriteMemFin, nullptr, &E);
      pushExpr(*E.Args[1]); // data, dispatched second
      pushExpr(*E.Args[0]); // address, dispatched first
      return;
    case Builtin::None:
      break;
    }
    push(FK::CallArgsDone, nullptr, &E);
    for (size_t I = E.Args.size(); I-- > 0;)
      pushExpr(*E.Args[I]); // reversed push = in-order dispatch
  }

  /// Decides a symbolic branch condition: the solver prunes one-sided
  /// branches exactly as decideBranch does; a both-feasible branch takes a
  /// checkpoint instead of recording a Decision.
  void decide(const Frame &Fr) {
    const Stmt &S = *Fr.S;
    const Term *C = popValue();
    const Term *CS = X.RW.simplify(C);
    if (CS->kind() == smt::Kind::ConstBool) {
      pushBlock(CS->constBool() ? S.Body : S.Else);
      return;
    }
    std::vector<const Term *> Base = RS.PathCond;
    Base.push_back(CS);
    RS.SolverQueries += 2;
    smt::Result TrueRes = X.Solver.check(Base);
    Base.back() = X.TB.notTerm(CS);
    smt::Result FalseRes = X.Solver.check(Base);
    if (TrueRes == smt::Result::Unknown ||
        FalseRes == smt::Result::Unknown) {
      RS.failGuard(RS.CancelFlag &&
                           RS.CancelFlag->load(std::memory_order_relaxed)
                       ? support::ErrorCode::Cancelled
                       : support::ErrorCode::SolverBudgetExceeded,
                   "solver gave up deciding a branch condition");
      return;
    }
    bool TrueSat = TrueRes == smt::Result::Sat;
    bool FalseSat = FalseRes == smt::Result::Sat;
    if (!TrueSat && !FalseSat) {
      RS.failGuard(support::ErrorCode::Internal,
                   "internal: path condition became unsatisfiable");
      return;
    }
    if (TrueSat != FalseSat) {
      ++RS.PrunedBranches;
      pushBlock(TrueSat ? S.Body : S.Else);
      return;
    }
    // Both feasible: name the condition (shared prefix), checkpoint, then
    // assert the chosen side (head of the divergent suffix, Fig. 6).
    const Term *Named = X.nameValue(CS, RS);
    takeSnapshot(S, CS, Named);
    RS.Events.push_back(Event::assertE(Named));
    RS.PathCond.push_back(CS);
    pushBlock(S.Body);
  }

  void step() {
    Frame Fr = std::move(Control.back());
    Control.pop_back();
    switch (Fr.K) {
    case FK::Stmt:
      execStmtFrame(*Fr.S);
      return;
    case FK::BlockStep: {
      if (Fr.Idx >= Fr.Body->size())
        return;
      const Stmt *Child = (*Fr.Body)[Fr.Idx].get();
      ++Fr.Idx;
      Control.push_back(std::move(Fr));
      push(FK::Stmt, Child);
      return;
    }
    case FK::AssignLocal:
      RS.Locals[size_t(Fr.S->LocalIdx)] = popValue();
      return;
    case FK::WriteReg:
      X.writeRegister(Reg(Fr.S->Name, Fr.S->Field), popValue(), RS);
      return;
    case FK::IfCond:
      decide(Fr);
      return;
    case FK::Drop:
      popValue();
      return;
    case FK::ReturnValue:
      RS.Locals.back() = popValue();
      unwindReturn();
      return;
    case FK::AssertCond: {
      const Stmt &S = *Fr.S;
      const Term *CS = X.RW.simplify(popValue());
      if (CS->kind() == smt::Kind::ConstBool) {
        if (!CS->constBool())
          RS.fail(S.Line, "model assertion failed: " + S.Message);
        return;
      }
      std::vector<const Term *> Query = RS.PathCond;
      Query.push_back(X.TB.notTerm(CS));
      ++RS.SolverQueries;
      smt::Result QR = X.Solver.check(Query);
      if (QR == smt::Result::Unknown)
        RS.failGuard(support::ErrorCode::SolverBudgetExceeded,
                     "solver gave up on model assertion: " + S.Message);
      else if (QR == smt::Result::Sat)
        RS.fail(S.Line, "model assertion not provable: " + S.Message);
      return;
    }
    case FK::Expr:
      evalExprFrame(*Fr.E);
      return;
    case FK::ApplyUnary: {
      const Term *V = popValue();
      switch (Fr.E->UOp) {
      case UnOp::BoolNot:
        finish(X.TB.notTerm(V));
        return;
      case UnOp::BvNot:
        finish(X.TB.bvNot(V));
        return;
      case UnOp::BvNeg:
        finish(X.TB.bvNeg(V));
        return;
      }
      return;
    }
    case FK::ApplyBinary: {
      const Term *R = popValue();
      const Term *L = popValue();
      smt::TermBuilder &TB = X.TB;
      switch (Fr.E->BOp) {
      case BinOp::BoolAnd:
        finish(TB.andTerm(L, R));
        return;
      case BinOp::BoolOr:
        finish(TB.orTerm(L, R));
        return;
      case BinOp::Eq:
        finish(TB.eqTerm(L, R));
        return;
      case BinOp::Ne:
        finish(TB.notTerm(TB.eqTerm(L, R)));
        return;
      case BinOp::Add:
        finish(TB.bvAdd(L, R));
        return;
      case BinOp::Sub:
        finish(TB.bvSub(L, R));
        return;
      case BinOp::Mul:
        finish(TB.bvMul(L, R));
        return;
      case BinOp::UDiv:
        finish(TB.bvUDiv(L, R));
        return;
      case BinOp::URem:
        finish(TB.bvURem(L, R));
        return;
      case BinOp::BvAnd:
        finish(TB.bvAnd(L, R));
        return;
      case BinOp::BvOr:
        finish(TB.bvOr(L, R));
        return;
      case BinOp::BvXor:
        finish(TB.bvXor(L, R));
        return;
      case BinOp::Shl:
        finish(TB.bvShl(L, TB.zextTo(L->width(), R)));
        return;
      case BinOp::LShr:
        finish(TB.bvLShr(L, TB.zextTo(L->width(), R)));
        return;
      case BinOp::AShr:
        finish(TB.bvAShr(L, TB.zextTo(L->width(), R)));
        return;
      case BinOp::ULt:
        finish(TB.bvUlt(L, R));
        return;
      case BinOp::ULe:
        finish(TB.bvUle(L, R));
        return;
      case BinOp::SLt:
        finish(TB.bvSlt(L, R));
        return;
      case BinOp::SLe:
        finish(TB.bvSle(L, R));
        return;
      case BinOp::Concat:
        finish(TB.concat(L, R));
        return;
      }
      return;
    }
    case FK::IfExprCond: {
      const Term *C = popValue();
      const Term *CS = X.RW.simplify(C);
      if (CS->kind() == smt::Kind::ConstBool) {
        // Tail position in the recursive engine: the chosen arm's own
        // dispatch decides naming, no extra finish() here.
        pushExpr(*Fr.E->Args[CS->constBool() ? 1 : 2]);
        return;
      }
      Frame J;
      J.K = FK::IteJoin;
      J.E = Fr.E;
      J.T = CS;
      Control.push_back(std::move(J));
      pushExpr(*Fr.E->Args[2]); // else, dispatched second
      pushExpr(*Fr.E->Args[1]); // then, dispatched first
      return;
    }
    case FK::IteJoin: {
      const Term *El = popValue();
      const Term *Th = popValue();
      finish(X.TB.iteTerm(Fr.T, Th, El));
      return;
    }
    case FK::ApplySlice:
      finish(X.TB.extract(Fr.E->SliceHi, Fr.E->SliceLo, popValue()));
      return;
    case FK::ApplyExt: {
      const Term *V = popValue();
      const Expr &E = *Fr.E;
      // Builtins return raw (early-return in the recursive engine: no
      // naming even in the unsimplified baseline).
      if (E.BuiltinKind == Builtin::Truncate) {
        Values.push_back(X.TB.extract(E.ExtWidth - 1, 0, V));
        return;
      }
      unsigned Extra = E.ExtWidth - V->width();
      Values.push_back(E.BuiltinKind == Builtin::ZeroExtend
                           ? X.TB.zeroExtend(Extra, V)
                           : X.TB.signExtend(Extra, V));
      return;
    }
    case FK::ApplyRev: {
      const Term *V = popValue();
      if (V->kind() == smt::Kind::ConstBV) {
        Values.push_back(X.TB.constBV(V->constBV().reverseBits()));
        return;
      }
      const Term *R = X.TB.extract(0, 0, V);
      for (unsigned I = 1; I < V->width(); ++I)
        R = X.TB.concat(R, X.TB.extract(I, I, V));
      Values.push_back(R);
      return;
    }
    case FK::ReadMemFin: {
      const Term *A = popValue();
      const Term *V =
          X.pooledVar(Sort::bitvec(Fr.E->MemBytes * 8), RS);
      RS.Events.push_back(Event::declareConst(V));
      RS.Events.push_back(Event::readMem(V, A, Fr.E->MemBytes));
      Values.push_back(V);
      return;
    }
    case FK::WriteMemFin: {
      const Term *D = popValue();
      const Term *A = popValue();
      const Term *ND = X.nameValue(D, RS);
      RS.Events.push_back(Event::writeMem(A, ND, Fr.E->MemBytes));
      Values.push_back(X.TB.constBV(1, 0)); // unit placeholder
      return;
    }
    case FK::CallArgsDone: {
      size_t N = Fr.E->Args.size();
      std::vector<const Term *> Args(Values.end() - ptrdiff_t(N),
                                     Values.end());
      Values.resize(Values.size() - N);
      enterFunction(*Fr.E->Callee, std::move(Args));
      return;
    }
    case FK::CallExit: {
      const Term *Ret = RS.Locals.back();
      RS.Locals = std::move(Fr.Saved);
      --RS.Depth;
      if (!Fr.Returned && !Fr.F->RetTy.isUnit()) {
        RS.fail(Fr.F->Line,
                "function " + Fr.F->Name + " fell off the end");
        return;
      }
      // A candidate's summary is stored only if the call was dynamically
      // effect-free on this path: no events (covers forks, register and
      // memory traffic, and baseline-mode naming) and no solver queries
      // (covers prunes and asserts, whose feasibility is path-dependent).
      if (Fr.MemoCand && RS.Events.size() == Fr.EventsAtEntry &&
          RS.SolverQueries == Fr.QueriesAtEntry && Ret)
        Memo.emplace(std::make_pair(Fr.F, std::move(Fr.MemoArgs)), Ret);
      Values.push_back(Ret);
      return;
    }
    }
  }
};

ExecResult Executor::runSnapshot(const OpcodeSpec &Op, const Assumptions &A,
                                 const ExecOptions &Opts) {
  ExecResult Res;
  auto failRun = [&Res](support::ErrorCode C,
                        const std::string &Msg) -> ExecResult & {
    Res.Ok = false;
    Res.Error = Msg;
    Res.D = support::Diag::error(C, "executor", Msg);
    return Res;
  };

  auto Deadline = installGuards(Solver, Opts);

  const sail::FunctionDecl *Decode = M.findFunction("decode");
  if (!Decode || Decode->Params.size() != 1 ||
      Decode->Params[0].Ty != sail::Type::bits(32)) {
    return failRun(support::ErrorCode::ModelError,
                   "model has no decode(bits(32)) entry point");
  }

  std::vector<const Term *> VarPool;
  std::vector<std::vector<Event>> PathEvents;
  ExecStats Stats;
  uint64_t MemoHitsBefore = Solver.stats().NumMemoHits;
  uint64_t StoreHitsBefore = Solver.stats().NumStoreHits;
  uint64_t CapHitsBefore =
      RW.fixpointCapHits() + Solver.stats().FixpointCapHits;

  Machine Mc(*this);
  Mc.Stats = &Stats;
  RunState &RS = Mc.RS;
  RS.A = &A;
  RS.Opts = &Opts;
  RS.VarPool = &VarPool;
  RS.CancelFlag = Opts.Cancel.raw();
  RS.Deadline = Deadline;

  // The preamble and the decode entry happen ONCE: every fork checkpoint
  // transitively extends this shared prefix.
  std::vector<const Term *> OpVars;
  const Term *Opcode = emitPreamble(Op, A, RS, OpVars);
  if (RS.failed())
    return failRun(RS.Code, RS.Error);
  Res.OpcodeVars = std::move(OpVars);
  Mc.enterFunction(*Decode, {Opcode});

  while (true) {
    // Guard placement mirrors the replay loop: budgets are checked before
    // each path is (re)started, so failure attribution is identical.
    if (PathEvents.size() >= Opts.MaxPaths) {
      return failRun(support::ErrorCode::PathBudgetExceeded,
                     "path budget exceeded (model blow-up?)");
    }
    if (Opts.Cancel.cancelled())
      return failRun(support::ErrorCode::Cancelled,
                     "trace generation cancelled");
    if (Deadline != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= Deadline)
      return failRun(support::ErrorCode::DeadlineExceeded,
                     "trace generation deadline exceeded");

    while (!Mc.Control.empty() && !RS.failed())
      Mc.step();
    if (RS.failed())
      return failRun(RS.Code == support::ErrorCode::Ok
                         ? support::ErrorCode::ModelError
                         : RS.Code,
                     RS.Error);
    PathEvents.push_back(RS.Events); // copy: checkpoints share the prefix
    if (Mc.Snaps.empty())
      break;
    Mc.resume();
  }

  std::vector<size_t> All(PathEvents.size());
  for (size_t K = 0; K < All.size(); ++K)
    All[K] = K;
  std::string MergeErr;
  Res.Trace = mergePaths(PathEvents, std::move(All), 0, MergeErr);
  if (!MergeErr.empty())
    return failRun(support::ErrorCode::Internal, MergeErr);
  Stats.Paths = unsigned(PathEvents.size());
  Stats.Events = Res.Trace.countEvents();
  Stats.PrunedBranches = RS.PrunedBranches;
  Stats.SolverQueries = RS.SolverQueries;
  Stats.StmtsExecuted = RS.Stmts;
  Stats.SolverMemoHits =
      unsigned(Solver.stats().NumMemoHits - MemoHitsBefore);
  Stats.SolverStoreHits =
      unsigned(Solver.stats().NumStoreHits - StoreHitsBefore);
  Stats.FixpointCapHits = RW.fixpointCapHits() +
                          Solver.stats().FixpointCapHits - CapHitsBefore;
  Res.Stats = Stats;
  Res.Ok = true;
  return Res;
}

ExecResult Executor::runMerge(const OpcodeSpec &Op, const Assumptions &A,
                              const ExecOptions &Opts) {
  ExecResult Res;
  auto failRun = [&Res](support::ErrorCode C,
                        const std::string &Msg) -> ExecResult & {
    Res.Ok = false;
    Res.Error = Msg;
    Res.D = support::Diag::error(C, "executor", Msg);
    return Res;
  };

  auto Deadline = installGuards(Solver, Opts);

  const sail::FunctionDecl *Decode = M.findFunction("decode");
  if (!Decode || Decode->Params.size() != 1 ||
      Decode->Params[0].Ty != sail::Type::bits(32)) {
    return failRun(support::ErrorCode::ModelError,
                   "model has no decode(bits(32)) entry point");
  }

  std::vector<const Term *> VarPool;
  std::vector<std::vector<Event>> PathEvents;
  ExecStats Stats;
  uint64_t MemoHitsBefore = Solver.stats().NumMemoHits;
  uint64_t StoreHitsBefore = Solver.stats().NumStoreHits;
  uint64_t CapHitsBefore =
      RW.fixpointCapHits() + Solver.stats().FixpointCapHits;

  Machine Mc(*this);
  Mc.Stats = &Stats;
  RunState &RS = Mc.RS;
  RS.A = &A;
  RS.Opts = &Opts;
  RS.VarPool = &VarPool;
  RS.CancelFlag = Opts.Cancel.raw();
  RS.Deadline = Deadline;

  std::vector<const Term *> OpVars;
  const Term *Opcode = emitPreamble(Op, A, RS, OpVars);
  if (RS.failed())
    return failRun(RS.Code, RS.Error);
  Res.OpcodeVars = std::move(OpVars);
  Mc.enterFunction(*Decode, {Opcode});

  while (true) {
    if (PathEvents.size() >= Opts.MaxPaths) {
      return failRun(support::ErrorCode::PathBudgetExceeded,
                     "path budget exceeded (model blow-up?)");
    }
    if (Opts.Cancel.cancelled())
      return failRun(support::ErrorCode::Cancelled,
                     "trace generation cancelled");
    if (Deadline != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= Deadline)
      return failRun(support::ErrorCode::DeadlineExceeded,
                     "trace generation deadline exceeded");

    while (!Mc.Control.empty() && !RS.failed()) {
      Mc.step();
      if (!Mc.Snaps.empty()) {
        // decide() just checkpointed a both-feasible fork; park it for
        // join-point merging instead of plain DFS enumeration.  The join
        // depth is the stack depth at decide() time — one less than now,
        // since decide() already pushed the then block.
        Machine::PendingMerge PM;
        PM.Snap = std::move(Mc.Snaps.back());
        Mc.Snaps.pop_back();
        PM.JoinDepth = Mc.Control.size() - 1;
        Mc.Pending.push_back(std::move(PM));
      }
      Mc.checkJoin();
    }
    if (RS.failed())
      return failRun(RS.Code == support::ErrorCode::Ok
                         ? support::ErrorCode::ModelError
                         : RS.Code,
                     RS.Error);
    // checkJoin drained Pending when Control emptied (every open fork
    // merged or fell back), so the finished path is fully resolved.
    PathEvents.push_back(RS.Events);
    if (Mc.Work.empty())
      break;
    Mc.resumeWork();
  }

  std::vector<size_t> All(PathEvents.size());
  for (size_t K = 0; K < All.size(); ++K)
    All[K] = K;
  std::string MergeErr;
  Res.Trace = mergePaths(PathEvents, std::move(All), 0, MergeErr);
  if (!MergeErr.empty())
    return failRun(support::ErrorCode::Internal, MergeErr);
  Stats.Paths = unsigned(PathEvents.size());
  Stats.Events = Res.Trace.countEvents();
  Stats.PrunedBranches = RS.PrunedBranches;
  Stats.SolverQueries = RS.SolverQueries;
  Stats.StmtsExecuted = RS.Stmts;
  Stats.SolverMemoHits =
      unsigned(Solver.stats().NumMemoHits - MemoHitsBefore);
  Stats.SolverStoreHits =
      unsigned(Solver.stats().NumStoreHits - StoreHitsBefore);
  Stats.FixpointCapHits = RW.fixpointCapHits() +
                          Solver.stats().FixpointCapHits - CapHitsBefore;
  Res.Stats = Stats;
  Res.Ok = true;
  return Res;
}

ExecResult Executor::run(const OpcodeSpec &Op, const Assumptions &A,
                         const ExecOptions &Opts) {
  // Chaos hooks: exec-throw exercises the batch driver's exception
  // containment, exec-step the ordinary Diag failure path.  Fired here so
  // both engines sit behind the same fault surface.
  if (support::FaultInjector::fire(support::FaultSite::ExecThrow))
    throw std::runtime_error("injected executor fault (exec-throw)");
  if (support::FaultInjector::fire(support::FaultSite::ExecStep)) {
    ExecResult Res;
    Res.Ok = false;
    Res.Error = "injected executor fault (exec-step)";
    Res.D = support::Diag::error(support::ErrorCode::InjectedFault,
                                 "executor", Res.Error);
    return Res;
  }
  switch (Opts.Engine) {
  case ExecEngine::Replay:
    return runReplay(Op, A, Opts);
  case ExecEngine::Merge:
    return runMerge(Op, A, Opts);
  case ExecEngine::Snapshot:
    break;
  }
  return runSnapshot(Op, A, Opts);
}
