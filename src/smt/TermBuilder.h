//===- smt/TermBuilder.h - Hash-consing term factory -----------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factory and owner for Term nodes.  All construction goes through here so
/// that structurally equal terms are pointer-equal.  Construction performs
/// only trivial constant folding; deeper simplification lives in Rewriter.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SMT_TERMBUILDER_H
#define ISLARIS_SMT_TERMBUILDER_H

#include "smt/Term.h"

#include <memory>
#include <unordered_map>

namespace islaris::smt {

/// Owns and uniques Term nodes.  Not thread-safe; one builder per pipeline.
class TermBuilder {
public:
  TermBuilder();
  ~TermBuilder();
  TermBuilder(const TermBuilder &) = delete;
  TermBuilder &operator=(const TermBuilder &) = delete;

  //===------------------------------------------------------------------===//
  // Leaves.
  //===------------------------------------------------------------------===//

  const Term *constBV(const BitVec &V);
  const Term *constBV(unsigned Width, uint64_t V) {
    return constBV(BitVec(Width, V));
  }
  const Term *constBool(bool V);
  const Term *trueTerm() { return constBool(true); }
  const Term *falseTerm() { return constBool(false); }

  /// Creates a fresh variable with an automatically numbered name
  /// ("v0", "v1", ...), matching Isla's naming scheme.
  const Term *freshVar(Sort S);
  /// Creates a fresh variable with an explicit display name.
  const Term *freshVar(Sort S, const std::string &Name);
  /// Looks up a previously created variable by id; null if unknown.
  const Term *varById(uint32_t Id) const;

  //===------------------------------------------------------------------===//
  // Boolean layer.
  //===------------------------------------------------------------------===//

  const Term *notTerm(const Term *T);
  const Term *andTerm(const Term *L, const Term *R);
  const Term *orTerm(const Term *L, const Term *R);
  const Term *impliesTerm(const Term *L, const Term *R);
  const Term *iteTerm(const Term *C, const Term *T, const Term *E);
  const Term *eqTerm(const Term *L, const Term *R);
  const Term *distinctTerm(const Term *L, const Term *R) {
    return notTerm(eqTerm(L, R));
  }

  //===------------------------------------------------------------------===//
  // Bitvector layer.
  //===------------------------------------------------------------------===//

  const Term *bvAdd(const Term *L, const Term *R);
  const Term *bvSub(const Term *L, const Term *R);
  const Term *bvMul(const Term *L, const Term *R);
  const Term *bvUDiv(const Term *L, const Term *R);
  const Term *bvURem(const Term *L, const Term *R);
  const Term *bvSDiv(const Term *L, const Term *R);
  const Term *bvSRem(const Term *L, const Term *R);
  const Term *bvNeg(const Term *T);
  const Term *bvAnd(const Term *L, const Term *R);
  const Term *bvOr(const Term *L, const Term *R);
  const Term *bvXor(const Term *L, const Term *R);
  const Term *bvNot(const Term *T);
  const Term *bvShl(const Term *L, const Term *R);
  const Term *bvLShr(const Term *L, const Term *R);
  const Term *bvAShr(const Term *L, const Term *R);
  const Term *bvUlt(const Term *L, const Term *R);
  const Term *bvUle(const Term *L, const Term *R);
  const Term *bvSlt(const Term *L, const Term *R);
  const Term *bvSle(const Term *L, const Term *R);
  const Term *bvUgt(const Term *L, const Term *R) { return bvUlt(R, L); }
  const Term *bvUge(const Term *L, const Term *R) { return bvUle(R, L); }
  const Term *bvSgt(const Term *L, const Term *R) { return bvSlt(R, L); }
  const Term *bvSge(const Term *L, const Term *R) { return bvSle(R, L); }

  const Term *extract(unsigned Hi, unsigned Lo, const Term *T);
  const Term *concat(const Term *Hi, const Term *Lo);
  const Term *zeroExtend(unsigned Extra, const Term *T);
  const Term *signExtend(unsigned Extra, const Term *T);
  /// Zero-extends or truncates \p T to exactly \p Width bits.
  const Term *zextTo(unsigned Width, const Term *T);

  /// Substitutes variables in \p T according to \p Map (varId -> term).
  /// Unmapped variables are left in place.
  const Term *substitute(const Term *T,
                         const std::unordered_map<uint32_t, const Term *> &Map);

  /// Number of terms created so far (diagnostics / stats).
  unsigned numTerms() const { return NextId; }
  uint32_t numVars() const { return NextVarId; }

private:
  const Term *make(Kind K, Sort Ty, std::vector<const Term *> Ops,
                   const BitVec &Const, const std::string &Name, uint32_t A,
                   uint32_t B);
  const Term *binOp(Kind K, Sort Ty, const Term *L, const Term *R);

  struct Key;
  struct KeyHash;
  struct KeyEq;
  std::vector<std::unique_ptr<Term>> Terms;
  std::unordered_map<size_t, std::vector<const Term *>> Table;
  std::vector<const Term *> VarsById;
  unsigned NextId = 0;
  uint32_t NextVarId = 0;
};

} // namespace islaris::smt

#endif // ISLARIS_SMT_TERMBUILDER_H
