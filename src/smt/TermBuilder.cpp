//===- smt/TermBuilder.cpp - Hash-consing term factory ---------------------===//

#include "smt/TermBuilder.h"

using namespace islaris;
using namespace islaris::smt;

TermBuilder::TermBuilder() = default;
TermBuilder::~TermBuilder() = default;

static size_t hashCombine(size_t H, size_t V) {
  return H * 1099511628211ULL + V + 0x9e3779b97f4a7c15ULL;
}

static size_t computeHash(Kind K, Sort Ty, const std::vector<const Term *> &Ops,
                          const BitVec &Const, uint32_t A, uint32_t B) {
  size_t H = size_t(K);
  H = hashCombine(H, Ty.isBool() ? 0 : Ty.width());
  for (const Term *Op : Ops)
    H = hashCombine(H, Op->id());
  if (K == Kind::ConstBV)
    H = hashCombine(H, Const.hash());
  H = hashCombine(H, A);
  H = hashCombine(H, B);
  return H;
}

const Term *TermBuilder::make(Kind K, Sort Ty, std::vector<const Term *> Ops,
                              const BitVec &Const, const std::string &Name,
                              uint32_t A, uint32_t B) {
  size_t H = computeHash(K, Ty, Ops, Const, A, B);
  // Variables are never hash-consed together: identity is the var id.
  if (K != Kind::Var) {
    for (const Term *Cand : Table[H]) {
      if (Cand->K != K || Cand->Ty != Ty || Cand->Ops != Ops ||
          Cand->A != A || Cand->B != B)
        continue;
      if (K == Kind::ConstBV && Cand->Const != Const)
        continue;
      return Cand;
    }
  }
  std::unique_ptr<Term> T(new Term());
  T->K = K;
  T->Ty = Ty;
  T->Ops = std::move(Ops);
  T->Const = Const;
  T->Name = Name;
  T->A = A;
  T->B = B;
  T->Id = NextId++;
  T->HashVal = H;
  const Term *Raw = T.get();
  Terms.push_back(std::move(T));
  if (K != Kind::Var)
    Table[H].push_back(Raw);
  return Raw;
}

const Term *TermBuilder::constBV(const BitVec &V) {
  return make(Kind::ConstBV, Sort::bitvec(V.width()), {}, V, "", 0, 0);
}

const Term *TermBuilder::constBool(bool V) {
  return make(Kind::ConstBool, Sort::boolean(), {}, BitVec(), "", V ? 1 : 0,
              0);
}

const Term *TermBuilder::freshVar(Sort S) {
  return freshVar(S, "v" + std::to_string(NextVarId));
}

const Term *TermBuilder::freshVar(Sort S, const std::string &Name) {
  uint32_t Id = NextVarId++;
  const Term *T = make(Kind::Var, S, {}, BitVec(), Name, Id, 0);
  VarsById.push_back(T);
  return T;
}

const Term *TermBuilder::varById(uint32_t Id) const {
  return Id < VarsById.size() ? VarsById[Id] : nullptr;
}

//===----------------------------------------------------------------------===//
// Boolean layer (with constant folding on construction).
//===----------------------------------------------------------------------===//

const Term *TermBuilder::notTerm(const Term *T) {
  assert(T->isBool() && "not requires a boolean operand");
  if (T->kind() == Kind::ConstBool)
    return constBool(!T->constBool());
  if (T->kind() == Kind::Not)
    return T->operand(0);
  return make(Kind::Not, Sort::boolean(), {T}, BitVec(), "", 0, 0);
}

const Term *TermBuilder::andTerm(const Term *L, const Term *R) {
  assert(L->isBool() && R->isBool() && "and requires boolean operands");
  if (L->kind() == Kind::ConstBool)
    return L->constBool() ? R : L;
  if (R->kind() == Kind::ConstBool)
    return R->constBool() ? L : R;
  if (L == R)
    return L;
  return make(Kind::And, Sort::boolean(), {L, R}, BitVec(), "", 0, 0);
}

const Term *TermBuilder::orTerm(const Term *L, const Term *R) {
  assert(L->isBool() && R->isBool() && "or requires boolean operands");
  if (L->kind() == Kind::ConstBool)
    return L->constBool() ? L : R;
  if (R->kind() == Kind::ConstBool)
    return R->constBool() ? R : L;
  if (L == R)
    return L;
  return make(Kind::Or, Sort::boolean(), {L, R}, BitVec(), "", 0, 0);
}

const Term *TermBuilder::impliesTerm(const Term *L, const Term *R) {
  return orTerm(notTerm(L), R);
}

const Term *TermBuilder::iteTerm(const Term *C, const Term *T, const Term *E) {
  assert(C->isBool() && "ite condition must be boolean");
  assert(T->sort() == E->sort() && "ite branch sorts differ");
  if (C->kind() == Kind::ConstBool)
    return C->constBool() ? T : E;
  if (T == E)
    return T;
  return make(Kind::Ite, T->sort(), {C, T, E}, BitVec(), "", 0, 0);
}

const Term *TermBuilder::eqTerm(const Term *L, const Term *R) {
  assert(L->sort() == R->sort() && "equality requires equal sorts");
  if (L == R)
    return trueTerm();
  if (L->kind() == Kind::ConstBV && R->kind() == Kind::ConstBV)
    return constBool(L->constBV() == R->constBV());
  if (L->kind() == Kind::ConstBool && R->kind() == Kind::ConstBool)
    return constBool(L->constBool() == R->constBool());
  return make(Kind::Eq, Sort::boolean(), {L, R}, BitVec(), "", 0, 0);
}

//===----------------------------------------------------------------------===//
// Bitvector layer.
//===----------------------------------------------------------------------===//

/// Folds a binary bitvector operation over two constants.
static BitVec foldBV(Kind K, const BitVec &A, const BitVec &B) {
  switch (K) {
  case Kind::BVAdd:
    return A.add(B);
  case Kind::BVSub:
    return A.sub(B);
  case Kind::BVMul:
    return A.mul(B);
  case Kind::BVUDiv:
    return A.udiv(B);
  case Kind::BVURem:
    return A.urem(B);
  case Kind::BVSDiv:
    return A.sdiv(B);
  case Kind::BVSRem:
    return A.srem(B);
  case Kind::BVAnd:
    return A.bvand(B);
  case Kind::BVOr:
    return A.bvor(B);
  case Kind::BVXor:
    return A.bvxor(B);
  case Kind::BVShl:
    return A.shl(B);
  case Kind::BVLShr:
    return A.lshr(B);
  case Kind::BVAShr:
    return A.ashr(B);
  case Kind::Concat:
    return A.concat(B);
  default:
    assert(false && "not a foldable binary bitvector kind");
    return A;
  }
}

const Term *TermBuilder::binOp(Kind K, Sort Ty, const Term *L, const Term *R) {
  if (L->kind() == Kind::ConstBV && R->kind() == Kind::ConstBV) {
    BitVec F = foldBV(K, L->constBV(), R->constBV());
    switch (K) {
    case Kind::BVUlt:
    case Kind::BVUle:
    case Kind::BVSlt:
    case Kind::BVSle:
      break; // handled in the predicate builders below
    default:
      return constBV(F);
    }
  }
  return make(K, Ty, {L, R}, BitVec(), "", 0, 0);
}

#define BV_ARITH(NAME, KIND)                                                   \
  const Term *TermBuilder::NAME(const Term *L, const Term *R) {                \
    assert(L->sort() == R->sort() && L->sort().isBitVec() &&                   \
           "bitvector operation requires equal bitvector sorts");              \
    return binOp(Kind::KIND, L->sort(), L, R);                                 \
  }

BV_ARITH(bvAdd, BVAdd)
BV_ARITH(bvSub, BVSub)
BV_ARITH(bvMul, BVMul)
BV_ARITH(bvUDiv, BVUDiv)
BV_ARITH(bvURem, BVURem)
BV_ARITH(bvSDiv, BVSDiv)
BV_ARITH(bvSRem, BVSRem)
BV_ARITH(bvAnd, BVAnd)
BV_ARITH(bvOr, BVOr)
BV_ARITH(bvXor, BVXor)
BV_ARITH(bvShl, BVShl)
BV_ARITH(bvLShr, BVLShr)
BV_ARITH(bvAShr, BVAShr)
#undef BV_ARITH

const Term *TermBuilder::bvNeg(const Term *T) {
  assert(T->sort().isBitVec() && "bvneg requires a bitvector");
  if (T->kind() == Kind::ConstBV)
    return constBV(T->constBV().neg());
  return make(Kind::BVNeg, T->sort(), {T}, BitVec(), "", 0, 0);
}

const Term *TermBuilder::bvNot(const Term *T) {
  assert(T->sort().isBitVec() && "bvnot requires a bitvector");
  if (T->kind() == Kind::ConstBV)
    return constBV(T->constBV().bvnot());
  if (T->kind() == Kind::BVNot)
    return T->operand(0);
  return make(Kind::BVNot, T->sort(), {T}, BitVec(), "", 0, 0);
}

#define BV_PRED(NAME, KIND, OP)                                                \
  const Term *TermBuilder::NAME(const Term *L, const Term *R) {                \
    assert(L->sort() == R->sort() && L->sort().isBitVec() &&                   \
           "bitvector predicate requires equal bitvector sorts");              \
    if (L->kind() == Kind::ConstBV && R->kind() == Kind::ConstBV)              \
      return constBool(L->constBV().OP(R->constBV()));                         \
    return make(Kind::KIND, Sort::boolean(), {L, R}, BitVec(), "", 0, 0);      \
  }

BV_PRED(bvUlt, BVUlt, ult)
BV_PRED(bvUle, BVUle, ule)
BV_PRED(bvSlt, BVSlt, slt)
BV_PRED(bvSle, BVSle, sle)
#undef BV_PRED

const Term *TermBuilder::extract(unsigned Hi, unsigned Lo, const Term *T) {
  assert(T->sort().isBitVec() && Lo <= Hi && Hi < T->width() &&
         "bad extract bounds");
  if (Hi == T->width() - 1 && Lo == 0)
    return T;
  if (T->kind() == Kind::ConstBV)
    return constBV(T->constBV().extract(Hi, Lo));
  // extract of extract composes.
  if (T->kind() == Kind::Extract)
    return extract(T->attrB() + Hi, T->attrB() + Lo, T->operand(0));
  return make(Kind::Extract, Sort::bitvec(Hi - Lo + 1), {T}, BitVec(), "", Hi,
              Lo);
}

const Term *TermBuilder::concat(const Term *Hi, const Term *Lo) {
  assert(Hi->sort().isBitVec() && Lo->sort().isBitVec() &&
         "concat requires bitvectors");
  if (Hi->kind() == Kind::ConstBV && Lo->kind() == Kind::ConstBV)
    return constBV(Hi->constBV().concat(Lo->constBV()));
  return make(Kind::Concat, Sort::bitvec(Hi->width() + Lo->width()), {Hi, Lo},
              BitVec(), "", 0, 0);
}

const Term *TermBuilder::zeroExtend(unsigned Extra, const Term *T) {
  assert(T->sort().isBitVec() && "zero_extend requires a bitvector");
  if (Extra == 0)
    return T;
  if (T->kind() == Kind::ConstBV)
    return constBV(T->constBV().zext(Extra));
  return make(Kind::ZeroExtend, Sort::bitvec(T->width() + Extra), {T},
              BitVec(), "", Extra, 0);
}

const Term *TermBuilder::signExtend(unsigned Extra, const Term *T) {
  assert(T->sort().isBitVec() && "sign_extend requires a bitvector");
  if (Extra == 0)
    return T;
  if (T->kind() == Kind::ConstBV)
    return constBV(T->constBV().sext(Extra));
  return make(Kind::SignExtend, Sort::bitvec(T->width() + Extra), {T},
              BitVec(), "", Extra, 0);
}

const Term *TermBuilder::zextTo(unsigned Width, const Term *T) {
  if (Width == T->width())
    return T;
  if (Width < T->width())
    return extract(Width - 1, 0, T);
  return zeroExtend(Width - T->width(), T);
}

const Term *TermBuilder::substitute(
    const Term *T, const std::unordered_map<uint32_t, const Term *> &Map) {
  std::unordered_map<const Term *, const Term *> Memo;
  // Iterative post-order rebuild to avoid deep recursion on long event
  // chains.
  std::vector<std::pair<const Term *, bool>> Stack = {{T, false}};
  while (!Stack.empty()) {
    auto [Cur, Expanded] = Stack.back();
    Stack.pop_back();
    if (Memo.count(Cur))
      continue;
    if (!Expanded) {
      Stack.push_back({Cur, true});
      for (const Term *Op : Cur->operands())
        Stack.push_back({Op, false});
      continue;
    }
    const Term *New = Cur;
    if (Cur->isVar()) {
      auto It = Map.find(Cur->varId());
      if (It != Map.end()) {
        assert(It->second->sort() == Cur->sort() &&
               "substitution changes the sort");
        New = It->second;
      }
    } else if (!Cur->operands().empty()) {
      std::vector<const Term *> NewOps;
      NewOps.reserve(Cur->numOperands());
      bool Changed = false;
      for (const Term *Op : Cur->operands()) {
        const Term *MOp = Memo.at(Op);
        Changed |= MOp != Op;
        NewOps.push_back(MOp);
      }
      if (Changed) {
        switch (Cur->kind()) {
        case Kind::Not:
          New = notTerm(NewOps[0]);
          break;
        case Kind::And:
          New = andTerm(NewOps[0], NewOps[1]);
          break;
        case Kind::Or:
          New = orTerm(NewOps[0], NewOps[1]);
          break;
        case Kind::Ite:
          New = iteTerm(NewOps[0], NewOps[1], NewOps[2]);
          break;
        case Kind::Eq:
          New = eqTerm(NewOps[0], NewOps[1]);
          break;
        case Kind::BVNeg:
          New = bvNeg(NewOps[0]);
          break;
        case Kind::BVNot:
          New = bvNot(NewOps[0]);
          break;
        case Kind::Extract:
          New = extract(Cur->attrA(), Cur->attrB(), NewOps[0]);
          break;
        case Kind::Concat:
          New = concat(NewOps[0], NewOps[1]);
          break;
        case Kind::ZeroExtend:
          New = zeroExtend(Cur->attrA(), NewOps[0]);
          break;
        case Kind::SignExtend:
          New = signExtend(Cur->attrA(), NewOps[0]);
          break;
        case Kind::BVUlt:
          New = bvUlt(NewOps[0], NewOps[1]);
          break;
        case Kind::BVUle:
          New = bvUle(NewOps[0], NewOps[1]);
          break;
        case Kind::BVSlt:
          New = bvSlt(NewOps[0], NewOps[1]);
          break;
        case Kind::BVSle:
          New = bvSle(NewOps[0], NewOps[1]);
          break;
        default:
          New = binOp(Cur->kind(), Cur->sort(), NewOps[0], NewOps[1]);
          break;
        }
      }
    }
    Memo[Cur] = New;
  }
  return Memo.at(T);
}
