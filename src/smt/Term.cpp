//===- smt/Term.cpp - Term printing and traversal --------------------------===//

#include "smt/Term.h"

#include <unordered_set>

using namespace islaris;
using namespace islaris::smt;

std::string Sort::toString() const {
  if (isBool())
    return "Bool";
  return "(_ BitVec " + std::to_string(Width) + ")";
}

const char *islaris::smt::kindName(Kind K) {
  switch (K) {
  case Kind::ConstBV:
    return "constbv";
  case Kind::ConstBool:
    return "constbool";
  case Kind::Var:
    return "var";
  case Kind::Not:
    return "not";
  case Kind::And:
    return "and";
  case Kind::Or:
    return "or";
  case Kind::Implies:
    return "=>";
  case Kind::Ite:
    return "ite";
  case Kind::Eq:
    return "=";
  case Kind::BVAdd:
    return "bvadd";
  case Kind::BVSub:
    return "bvsub";
  case Kind::BVMul:
    return "bvmul";
  case Kind::BVUDiv:
    return "bvudiv";
  case Kind::BVURem:
    return "bvurem";
  case Kind::BVSDiv:
    return "bvsdiv";
  case Kind::BVSRem:
    return "bvsrem";
  case Kind::BVNeg:
    return "bvneg";
  case Kind::BVAnd:
    return "bvand";
  case Kind::BVOr:
    return "bvor";
  case Kind::BVXor:
    return "bvxor";
  case Kind::BVNot:
    return "bvnot";
  case Kind::BVShl:
    return "bvshl";
  case Kind::BVLShr:
    return "bvlshr";
  case Kind::BVAShr:
    return "bvashr";
  case Kind::BVUlt:
    return "bvult";
  case Kind::BVUle:
    return "bvule";
  case Kind::BVSlt:
    return "bvslt";
  case Kind::BVSle:
    return "bvsle";
  case Kind::Extract:
    return "extract";
  case Kind::Concat:
    return "concat";
  case Kind::ZeroExtend:
    return "zero_extend";
  case Kind::SignExtend:
    return "sign_extend";
  }
  return "<unknown>";
}

static void printTerm(const Term *T, std::string &Out) {
  switch (T->kind()) {
  case Kind::ConstBV:
    Out += T->constBV().toString();
    return;
  case Kind::ConstBool:
    Out += T->constBool() ? "true" : "false";
    return;
  case Kind::Var:
    Out += T->varName();
    return;
  case Kind::Extract:
    Out += "((_ extract " + std::to_string(T->attrA()) + " " +
           std::to_string(T->attrB()) + ") ";
    printTerm(T->operand(0), Out);
    Out += ")";
    return;
  case Kind::ZeroExtend:
  case Kind::SignExtend:
    Out += "((_ ";
    Out += kindName(T->kind());
    Out += " " + std::to_string(T->attrA()) + ") ";
    printTerm(T->operand(0), Out);
    Out += ")";
    return;
  default:
    Out += "(";
    Out += kindName(T->kind());
    for (const Term *Op : T->operands()) {
      Out += " ";
      printTerm(Op, Out);
    }
    Out += ")";
    return;
  }
}

std::string Term::toString() const {
  std::string S;
  printTerm(this, S);
  return S;
}

std::vector<const Term *> islaris::smt::collectVars(const Term *T) {
  std::vector<const Term *> Result;
  std::unordered_set<const Term *> Seen;
  std::vector<const Term *> Stack = {T};
  while (!Stack.empty()) {
    const Term *Cur = Stack.back();
    Stack.pop_back();
    if (!Seen.insert(Cur).second)
      continue;
    if (Cur->isVar())
      Result.push_back(Cur);
    for (const Term *Op : Cur->operands())
      Stack.push_back(Op);
  }
  return Result;
}
