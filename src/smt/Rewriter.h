//===- smt/Rewriter.h - Algebraic term simplification ----------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bottom-up algebraic simplification of QF_BV terms.  Isla performs
/// "additional simplification of traces" (§3); this rewriter implements the
/// rules needed both for that trace simplification and for cheap discharge
/// of separation-logic side conditions before falling back to the SAT-based
/// solver.  All rules are semantics-preserving; soundness is property-tested
/// against the concrete evaluator.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SMT_REWRITER_H
#define ISLARIS_SMT_REWRITER_H

#include "smt/TermBuilder.h"

#include <unordered_map>

namespace islaris::smt {

/// A memoizing bottom-up simplifier.  Create one per builder; the memo cache
/// persists across calls.
class Rewriter {
public:
  explicit Rewriter(TermBuilder &TB) : TB(TB) {}

  /// Returns a simplified term equivalent to \p T.
  const Term *simplify(const Term *T);

  /// Times the root-rule loop exhausted its 64-iteration defensive cap and
  /// returned a term that might not be fully normalized.  Persistently zero
  /// in a healthy rule set; a nonzero value after a rules change means two
  /// rules are ping-ponging (a regression that was previously silent).
  /// Surfaced through SolverStats/ExecStats as FixpointCapHits.
  uint64_t fixpointCapHits() const { return CapHits; }

private:
  const Term *rebuild(const Term *T, const std::vector<const Term *> &Ops);
  /// Applies root rules to an already-children-simplified term; returns the
  /// input if no rule fires.
  const Term *applyRules(const Term *T);

  TermBuilder &TB;
  std::unordered_map<const Term *, const Term *> Memo;
  uint64_t CapHits = 0;
};

} // namespace islaris::smt

#endif // ISLARIS_SMT_REWRITER_H
