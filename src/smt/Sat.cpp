//===- smt/Sat.cpp - CDCL SAT solver ----------------------------------------===//

#include "smt/Sat.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace islaris::smt::sat;

Solver::Solver() = default;

Var Solver::newVar() {
  Var V = Var(Assigns.size());
  Assigns.push_back(LBool::Undef);
  Phase.push_back(false);
  Level.push_back(0);
  Reason.push_back(NoReason);
  Activity.push_back(0.0);
  HeapPos.push_back(-1);
  Seen.push_back(0);
  Watches.emplace_back();
  Watches.emplace_back();
  heapInsert(V);
  return V;
}

//===----------------------------------------------------------------------===//
// Activity order heap (max-heap on Activity).
//===----------------------------------------------------------------------===//

void Solver::heapInsert(Var V) {
  if (HeapPos[size_t(V)] != -1)
    return;
  HeapPos[size_t(V)] = int32_t(OrderHeap.size());
  OrderHeap.push_back(V);
  heapPercolateUp(int(OrderHeap.size()) - 1);
}

void Solver::heapPercolateUp(int Pos) {
  Var V = OrderHeap[size_t(Pos)];
  while (Pos > 0) {
    int Parent = (Pos - 1) / 2;
    if (Activity[size_t(OrderHeap[size_t(Parent)])] >= Activity[size_t(V)])
      break;
    OrderHeap[size_t(Pos)] = OrderHeap[size_t(Parent)];
    HeapPos[size_t(OrderHeap[size_t(Pos)])] = Pos;
    Pos = Parent;
  }
  OrderHeap[size_t(Pos)] = V;
  HeapPos[size_t(V)] = Pos;
}

void Solver::heapPercolateDown(int Pos) {
  Var V = OrderHeap[size_t(Pos)];
  int N = int(OrderHeap.size());
  while (true) {
    int Child = 2 * Pos + 1;
    if (Child >= N)
      break;
    if (Child + 1 < N && Activity[size_t(OrderHeap[size_t(Child + 1)])] >
                             Activity[size_t(OrderHeap[size_t(Child)])])
      ++Child;
    if (Activity[size_t(OrderHeap[size_t(Child)])] <= Activity[size_t(V)])
      break;
    OrderHeap[size_t(Pos)] = OrderHeap[size_t(Child)];
    HeapPos[size_t(OrderHeap[size_t(Pos)])] = Pos;
    Pos = Child;
  }
  OrderHeap[size_t(Pos)] = V;
  HeapPos[size_t(V)] = Pos;
}

Var Solver::heapRemoveMax() {
  Var V = OrderHeap[0];
  HeapPos[size_t(V)] = -1;
  OrderHeap[0] = OrderHeap.back();
  OrderHeap.pop_back();
  if (!OrderHeap.empty()) {
    HeapPos[size_t(OrderHeap[0])] = 0;
    heapPercolateDown(0);
  }
  return V;
}

void Solver::varBumpActivity(Var V) {
  Activity[size_t(V)] += VarInc;
  if (Activity[size_t(V)] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (HeapPos[size_t(V)] != -1)
    heapPercolateUp(HeapPos[size_t(V)]);
}

void Solver::varDecayActivity() { VarInc /= VarDecay; }

void Solver::claBumpActivity(Clause &C) {
  C.Activity += ClaInc;
  if (C.Activity > 1e20) {
    for (Clause &Cl : Clauses)
      Cl.Activity *= 1e-20;
    ClaInc *= 1e-20;
  }
}

//===----------------------------------------------------------------------===//
// Clause management.
//===----------------------------------------------------------------------===//

void Solver::attachClause(ClauseRef CR) {
  Clause &C = Clauses[size_t(CR)];
  assert(C.Lits.size() >= 2 && "cannot watch a unit clause");
  Watches[size_t((~C.Lits[0]).index())].push_back({CR, C.Lits[1]});
  Watches[size_t((~C.Lits[1]).index())].push_back({CR, C.Lits[0]});
}

bool Solver::addClause(std::vector<Lit> Clause) {
  assert(decisionLevel() == 0 && "clauses must be added at the root level");
  if (Unsat)
    return false;
  // Level-0 simplification: drop satisfied/tautological clauses, strip
  // falsified and duplicate literals.
  std::sort(Clause.begin(), Clause.end(),
            [](Lit A, Lit B) { return A.index() < B.index(); });
  std::vector<Lit> Out;
  Lit Prev;
  for (Lit L : Clause) {
    if (value(L) == LBool::True || (!Out.empty() && L == ~Prev))
      return true; // satisfied or tautology
    if (value(L) == LBool::False || (!Out.empty() && L == Prev))
      continue;
    Out.push_back(L);
    Prev = L;
  }
  if (Out.empty()) {
    Unsat = true;
    return false;
  }
  if (Out.size() == 1) {
    uncheckedEnqueue(Out[0], NoReason);
    if (propagate() != NoReason) {
      Unsat = true;
      return false;
    }
    return true;
  }
  ClauseRef CR = ClauseRef(Clauses.size());
  Clauses.push_back({std::move(Out), 0.0, false, false});
  ++NumOrigClauses;
  attachClause(CR);
  return true;
}

//===----------------------------------------------------------------------===//
// Propagation.
//===----------------------------------------------------------------------===//

void Solver::uncheckedEnqueue(Lit L, ClauseRef ReasonRef) {
  assert(value(L) == LBool::Undef && "enqueueing an assigned literal");
  Assigns[size_t(L.var())] = L.negated() ? LBool::False : LBool::True;
  Level[size_t(L.var())] = decisionLevel();
  Reason[size_t(L.var())] = ReasonRef;
  Phase[size_t(L.var())] = !L.negated();
  Trail.push_back(L);
}

Solver::ClauseRef Solver::propagate() {
  while (QHead < Trail.size()) {
    Lit P = Trail[QHead++];
    ++Propagations;
    std::vector<Watcher> &WS = Watches[size_t(P.index())];
    size_t I = 0, J = 0;
    while (I < WS.size()) {
      Watcher W = WS[I++];
      if (value(W.Blocker) == LBool::True) {
        WS[J++] = W;
        continue;
      }
      Clause &C = Clauses[size_t(W.CRef)];
      if (C.Deleted)
        continue; // lazily drop watchers of deleted clauses
      // Normalize so that the false literal is Lits[1].
      Lit NotP = ~P;
      if (C.Lits[0] == NotP)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == NotP && "watch invariant violated");
      // 0th watch true: keep watching.
      if (value(C.Lits[0]) == LBool::True) {
        WS[J++] = {W.CRef, C.Lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool FoundWatch = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (value(C.Lits[K]) != LBool::False) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[size_t((~C.Lits[1]).index())].push_back(
              {W.CRef, C.Lits[0]});
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;
      // Clause is unit or conflicting.
      WS[J++] = {W.CRef, C.Lits[0]};
      if (value(C.Lits[0]) == LBool::False) {
        // Conflict: copy remaining watchers and bail out.
        while (I < WS.size())
          WS[J++] = WS[I++];
        WS.resize(J);
        QHead = Trail.size();
        return W.CRef;
      }
      uncheckedEnqueue(C.Lits[0], W.CRef);
    }
    WS.resize(J);
  }
  return NoReason;
}

//===----------------------------------------------------------------------===//
// Conflict analysis (first UIP).
//===----------------------------------------------------------------------===//

void Solver::analyze(ClauseRef Confl, std::vector<Lit> &OutLearnt,
                     int &OutLevel) {
  OutLearnt.clear();
  OutLearnt.push_back(Lit()); // slot for the asserting literal
  int PathC = 0;
  Lit P;
  bool FirstIter = true;
  size_t Index = Trail.size();

  do {
    assert(Confl != NoReason && "no reason during analysis");
    Clause &C = Clauses[size_t(Confl)];
    if (C.Learnt)
      claBumpActivity(C);
    for (size_t K = FirstIter ? 0 : 1; K < C.Lits.size(); ++K) {
      Lit Q = C.Lits[K];
      Var V = Q.var();
      if (Seen[size_t(V)] || Level[size_t(V)] == 0)
        continue;
      Seen[size_t(V)] = 1;
      varBumpActivity(V);
      if (Level[size_t(V)] >= decisionLevel())
        ++PathC;
      else
        OutLearnt.push_back(Q);
    }
    // Select the next literal on the trail to expand.
    while (!Seen[size_t(Trail[Index - 1].var())])
      --Index;
    --Index;
    P = Trail[Index];
    Confl = Reason[size_t(P.var())];
    Seen[size_t(P.var())] = 0;
    --PathC;
    FirstIter = false;
  } while (PathC > 0);
  OutLearnt[0] = ~P;

  // Conflict-clause minimization: drop literals whose negation is implied
  // by the rest of the clause (their entire reason chain is already Seen
  // or at level 0).  Essential for the long clauses arising from blasted
  // bitvector circuits.
  std::vector<Var> ToClear;
  for (Lit L : OutLearnt)
    ToClear.push_back(L.var());
  auto litRedundant = [&](Lit L) {
    if (Reason[size_t(L.var())] == NoReason)
      return false;
    std::vector<Lit> Stack = {L};
    size_t MarkedFrom = ToClear.size();
    while (!Stack.empty()) {
      Lit Q = Stack.back();
      Stack.pop_back();
      assert(Reason[size_t(Q.var())] != NoReason && "decision on stack");
      const Clause &C = Clauses[size_t(Reason[size_t(Q.var())])];
      for (size_t K = 1; K < C.Lits.size(); ++K) {
        Lit R = C.Lits[K];
        Var V = R.var();
        if (Seen[size_t(V)] || Level[size_t(V)] == 0)
          continue;
        if (Reason[size_t(V)] == NoReason) {
          // Hit a decision: not redundant; undo the speculative marks.
          for (size_t I2 = MarkedFrom; I2 < ToClear.size(); ++I2)
            Seen[size_t(ToClear[I2])] = 0;
          ToClear.resize(MarkedFrom);
          return false;
        }
        Seen[size_t(V)] = 1;
        ToClear.push_back(V);
        Stack.push_back(R);
      }
    }
    return true;
  };
  size_t Kept = 1;
  for (size_t K = 1; K < OutLearnt.size(); ++K)
    if (!litRedundant(OutLearnt[K]))
      OutLearnt[Kept++] = OutLearnt[K];
  OutLearnt.resize(Kept);

  // Compute the backtrack level (second-highest level in the clause).
  OutLevel = 0;
  size_t MaxIdx = 1;
  for (size_t K = 1; K < OutLearnt.size(); ++K) {
    int L = Level[size_t(OutLearnt[K].var())];
    if (L > OutLevel) {
      OutLevel = L;
      MaxIdx = K;
    }
  }
  if (OutLearnt.size() > 1)
    std::swap(OutLearnt[1], OutLearnt[MaxIdx]);

  for (Var V : ToClear)
    Seen[size_t(V)] = 0;
}

void Solver::cancelUntil(int LevelTo) {
  if (decisionLevel() <= LevelTo)
    return;
  for (size_t I = Trail.size(); I-- > size_t(TrailLim[size_t(LevelTo)]);) {
    Var V = Trail[I].var();
    Assigns[size_t(V)] = LBool::Undef;
    Reason[size_t(V)] = NoReason;
    heapInsert(V);
  }
  Trail.resize(size_t(TrailLim[size_t(LevelTo)]));
  TrailLim.resize(size_t(LevelTo));
  QHead = Trail.size();
}

Lit Solver::pickBranchLit() {
  while (!OrderHeap.empty()) {
    Var V = OrderHeap[0];
    if (Assigns[size_t(V)] == LBool::Undef) {
      heapRemoveMax();
      return Lit(V, !Phase[size_t(V)]);
    }
    heapRemoveMax();
  }
  return Lit();
}

void Solver::reduceDB() {
  // Delete the least active half of the learnt clauses (never reasons,
  // never binary clauses).  Watchers are dropped lazily in propagate().
  std::vector<ClauseRef> Learnts;
  for (size_t I = NumOrigClauses; I < Clauses.size(); ++I)
    if (Clauses[I].Learnt && !Clauses[I].Deleted && Clauses[I].Lits.size() > 2)
      Learnts.push_back(ClauseRef(I));
  std::sort(Learnts.begin(), Learnts.end(), [&](ClauseRef A, ClauseRef B) {
    return Clauses[size_t(A)].Activity < Clauses[size_t(B)].Activity;
  });
  std::vector<bool> IsReason(Clauses.size(), false);
  for (Lit L : Trail)
    if (Reason[size_t(L.var())] != NoReason)
      IsReason[size_t(Reason[size_t(L.var())])] = true;
  for (size_t I = 0; I < Learnts.size() / 2; ++I)
    if (!IsReason[size_t(Learnts[I])])
      Clauses[size_t(Learnts[I])].Deleted = true;
}

uint64_t Solver::luby(uint64_t I) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  uint64_t K = 1;
  while ((uint64_t(1) << (K + 1)) - 1 <= I + 1)
    ++K;
  while ((uint64_t(1) << K) - 1 != I + 1) {
    I = I - ((uint64_t(1) << K) - 1) + 1 - 1;
    K = 1;
    while ((uint64_t(1) << (K + 1)) - 1 <= I + 1)
      ++K;
  }
  return uint64_t(1) << (K - 1);
}

//===----------------------------------------------------------------------===//
// Main search loop.
//===----------------------------------------------------------------------===//

SatResult Solver::solve(const std::vector<Lit> &Assumptions) {
  if (Unsat)
    return SatResult::Unsat;
  cancelUntil(0);
  if (propagate() != NoReason) {
    Unsat = true;
    return SatResult::Unsat;
  }

  uint64_t RestartNum = 0;
  uint64_t ConflictBudget = 64 * luby(RestartNum);
  uint64_t ConflictsThisRestart = 0;
  uint64_t MaxLearnts = 1000 + NumOrigClauses / 3;

  // Budget accounting is per solve call; a fired budget abandons the search
  // at the root level (learned clauses are kept — they are implied).
  const bool Budgeted = !Budget.unlimited();
  const uint64_t ConflictsAtStart = Conflicts;
  const uint64_t PropagationsAtStart = Propagations;
  uint64_t NextInterruptCheck = 0;
  auto interrupted = [&]() -> bool {
    if (!Budgeted)
      return false;
    if (Budget.MaxConflicts &&
        Conflicts - ConflictsAtStart >= Budget.MaxConflicts)
      return true;
    if (Budget.MaxPropagations &&
        Propagations - PropagationsAtStart >= Budget.MaxPropagations)
      return true;
    // Deadline/cancellation polls are rate-limited by conflict count: the
    // clock costs more than the arithmetic above.
    if (Conflicts >= NextInterruptCheck) {
      NextInterruptCheck = Conflicts + 256;
      if (Budget.Cancel && Budget.Cancel->load(std::memory_order_relaxed))
        return true;
      if (Budget.Deadline != std::chrono::steady_clock::time_point::max() &&
          std::chrono::steady_clock::now() >= Budget.Deadline)
        return true;
    }
    return false;
  };
  if (Budgeted) {
    NextInterruptCheck = Conflicts; // force an immediate clock/cancel poll
    if (interrupted()) {
      cancelUntil(0);
      return SatResult::Unknown;
    }
  }

  std::vector<Lit> Learnt;
  while (true) {
    if (interrupted()) {
      cancelUntil(0);
      return SatResult::Unknown;
    }
    ClauseRef Confl = propagate();
    if (Confl != NoReason) {
      ++Conflicts;
      ++ConflictsThisRestart;
      if ((Conflicts & 0xfff) == 0 && getenv("ISLARIS_SAT_DEBUG"))
        fprintf(stderr, "[sat] conflicts=%llu decisions=%llu learnts=%zu\n",
                (unsigned long long)Conflicts, (unsigned long long)Decisions,
                Clauses.size() - NumOrigClauses);
      if (decisionLevel() == 0)
        return SatResult::Unsat;
      int BtLevel;
      analyze(Confl, Learnt, BtLevel);
      cancelUntil(BtLevel);
      if (Learnt.size() == 1) {
        uncheckedEnqueue(Learnt[0], NoReason);
      } else {
        ClauseRef CR = ClauseRef(Clauses.size());
        Clauses.push_back({Learnt, ClaInc, true, false});
        attachClause(CR);
        uncheckedEnqueue(Learnt[0], CR);
      }
      varDecayActivity();
      ClaInc *= (1 / 0.999);
      continue;
    }

    if (ConflictsThisRestart >= ConflictBudget) {
      ++RestartNum;
      ConflictBudget = 64 * luby(RestartNum);
      ConflictsThisRestart = 0;
      cancelUntil(0);
      continue;
    }
    if (Clauses.size() - NumOrigClauses > MaxLearnts) {
      reduceDB();
      MaxLearnts = MaxLearnts * 11 / 10;
    }

    // Place assumptions as pseudo-decisions, then branch.
    Lit Next;
    bool HaveNext = false;
    while (decisionLevel() < int(Assumptions.size())) {
      Lit A = Assumptions[size_t(decisionLevel())];
      if (value(A) == LBool::True) {
        TrailLim.push_back(int(Trail.size())); // dummy level
      } else if (value(A) == LBool::False) {
        // Restore the root level before returning: earlier assumptions may
        // already sit on the trail as pseudo-decisions, and the caller is
        // entitled to addClause() (which requires level 0) after any solve.
        cancelUntil(0);
        return SatResult::Unsat;
      } else {
        Next = A;
        HaveNext = true;
        break;
      }
    }
    if (!HaveNext) {
      Next = pickBranchLit();
      if (Next == Lit()) {
        // All variables assigned: a model.
        Model = Assigns;
        cancelUntil(0);
        return SatResult::Sat;
      }
      ++Decisions;
    }
    TrailLim.push_back(int(Trail.size()));
    uncheckedEnqueue(Next, NoReason);
  }
}
