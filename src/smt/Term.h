//===- smt/Term.h - Hash-consed SMT term DAG -------------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SMT-LIB QF_BV terms.  ITL events embed these expressions (e of Fig. 4);
/// the Isla symbolic executor builds them; the separation-logic engine
/// discharges side conditions over them.
///
/// Terms are immutable, hash-consed nodes owned by a TermBuilder; structural
/// equality is pointer equality for terms from the same builder.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SMT_TERM_H
#define ISLARIS_SMT_TERM_H

#include "support/BitVec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace islaris::smt {

/// Sort of a term: Bool or BitVec(width).
class Sort {
public:
  static Sort boolean() { return Sort(0); }
  static Sort bitvec(unsigned Width) {
    assert(Width >= 1 && "bitvector width must be positive");
    return Sort(Width);
  }

  bool isBool() const { return Width == 0; }
  bool isBitVec() const { return Width != 0; }
  /// Bitvector width; only valid for bitvector sorts.
  unsigned width() const {
    assert(isBitVec() && "sort is not a bitvector");
    return Width;
  }

  bool operator==(const Sort &O) const { return Width == O.Width; }
  bool operator!=(const Sort &O) const { return Width != O.Width; }

  std::string toString() const;

private:
  explicit Sort(unsigned Width) : Width(Width) {}
  unsigned Width; // 0 encodes Bool.
};

/// Term node kinds.  Mirrors the SMT-LIB QF_BV signature plus boolean
/// connectives, which is the expression language of Isla traces.
enum class Kind : uint8_t {
  // Leaves.
  ConstBV,
  ConstBool,
  Var,
  // Boolean connectives.
  Not,
  And,
  Or,
  Implies,
  Ite, // Also used at bitvector sort.
  Eq,  // Polymorphic equality.
  // Bitvector arithmetic.
  BVAdd,
  BVSub,
  BVMul,
  BVUDiv,
  BVURem,
  BVSDiv,
  BVSRem,
  BVNeg,
  // Bitvector logic.
  BVAnd,
  BVOr,
  BVXor,
  BVNot,
  BVShl,
  BVLShr,
  BVAShr,
  // Bitvector predicates.
  BVUlt,
  BVUle,
  BVSlt,
  BVSle,
  // Structure.
  Extract,    // A = hi, B = lo.
  Concat,     // op0 high bits, op1 low bits.
  ZeroExtend, // A = extra bits.
  SignExtend, // A = extra bits.
};

/// Returns the SMT-LIB operator spelling for \p K ("bvadd", "and", ...).
const char *kindName(Kind K);

class TermBuilder;

/// An immutable term node.  Construct only through TermBuilder.
class Term {
public:
  Kind kind() const { return K; }
  Sort sort() const { return Ty; }
  bool isBool() const { return Ty.isBool(); }
  unsigned width() const { return Ty.width(); }

  const std::vector<const Term *> &operands() const { return Ops; }
  const Term *operand(unsigned I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }
  unsigned numOperands() const { return unsigned(Ops.size()); }

  bool isConst() const { return K == Kind::ConstBV || K == Kind::ConstBool; }
  bool isVar() const { return K == Kind::Var; }

  /// Constant payload; only valid for ConstBV.
  const BitVec &constBV() const {
    assert(K == Kind::ConstBV && "not a bitvector constant");
    return Const;
  }
  /// Constant payload; only valid for ConstBool.
  bool constBool() const {
    assert(K == Kind::ConstBool && "not a boolean constant");
    return A != 0;
  }

  /// Variable identity; only valid for Var.
  uint32_t varId() const {
    assert(K == Kind::Var && "not a variable");
    return A;
  }
  /// Variable display name (e.g. "v38"); only valid for Var.
  const std::string &varName() const {
    assert(K == Kind::Var && "not a variable");
    return Name;
  }

  /// Extract bounds (A=hi, B=lo) or extension amount (A); kind-dependent.
  unsigned attrA() const { return A; }
  unsigned attrB() const { return B; }

  /// Unique, dense id within the owning builder (stable creation order).
  unsigned id() const { return Id; }

  /// Renders the term in SMT-LIB concrete syntax, e.g.
  /// "(bvadd ((_ extract 63 0) ((_ zero_extend 64) v38)) #x...40)".
  std::string toString() const;

private:
  friend class TermBuilder;
  Term() = default;

  Kind K = Kind::ConstBool;
  Sort Ty = Sort::boolean();
  std::vector<const Term *> Ops;
  BitVec Const;
  std::string Name;
  uint32_t A = 0, B = 0;
  unsigned Id = 0;
  size_t HashVal = 0;
};

/// Collects the set of distinct variables occurring in \p T (deduplicated,
/// in first-occurrence order).
std::vector<const Term *> collectVars(const Term *T);

} // namespace islaris::smt

#endif // ISLARIS_SMT_TERM_H
