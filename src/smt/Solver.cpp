//===- smt/Solver.cpp - QF_BV satisfiability facade --------------------------===//

#include "smt/Solver.h"

#include <chrono>

using namespace islaris;
using namespace islaris::smt;

Solver::Solver(TermBuilder &TB) : TB(TB), RW(TB) {}

void Solver::push() { ScopeMarks.push_back(Asserted.size()); }

void Solver::pop() {
  assert(!ScopeMarks.empty() && "pop without matching push");
  Asserted.resize(ScopeMarks.back());
  ScopeMarks.pop_back();
}

void Solver::assertTerm(const Term *T) {
  assert(T->isBool() && "assertions must be boolean");
  Asserted.push_back(T);
}

Result Solver::check(const std::vector<const Term *> &Assumptions) {
  auto Start = std::chrono::steady_clock::now();
  ++Stats.NumChecks;

  // Simplify everything first; collect the residual (non-constant) goals.
  std::vector<const Term *> Goals;
  bool TriviallyUnsat = false;
  auto consider = [&](const Term *T) {
    const Term *S = RW.simplify(T);
    if (S->kind() == Kind::ConstBool) {
      if (!S->constBool())
        TriviallyUnsat = true;
      return;
    }
    Goals.push_back(S);
  };
  for (const Term *T : Asserted)
    consider(T);
  for (const Term *T : Assumptions)
    consider(T);

  Result R;
  if (TriviallyUnsat) {
    ++Stats.NumSyntactic;
    LastSat.reset();
    LastBlaster.reset();
    R = Result::Unsat;
  } else if (Goals.empty()) {
    ++Stats.NumSyntactic;
    // All assertions simplified to true: the empty model satisfies them.
    LastSat = std::make_unique<sat::Solver>();
    LastBlaster = std::make_unique<BitBlaster>(*LastSat);
    LastSat->solve();
    R = Result::Sat;
  } else {
    ++Stats.NumSatCalls;
    LastSat = std::make_unique<sat::Solver>();
    LastBlaster = std::make_unique<BitBlaster>(*LastSat);
    for (const Term *G : Goals)
      LastBlaster->assertTrue(G);
    sat::SatResult SR = LastSat->solve();
    Stats.NumConflicts += LastSat->numConflicts();
    R = SR == sat::SatResult::Sat ? Result::Sat : Result::Unsat;
    if (R == Result::Unsat) {
      LastSat.reset();
      LastBlaster.reset();
    }
  }

  Stats.TotalSeconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return R;
}

bool Solver::isValid(const Term *T) {
  const Term *S = RW.simplify(T);
  if (S->kind() == Kind::ConstBool && S->constBool()) {
    ++Stats.NumChecks;
    ++Stats.NumSyntactic;
    return true;
  }
  return check({TB.notTerm(S)}) == Result::Unsat;
}

Value Solver::modelValue(const Term *Var) {
  assert(LastBlaster && "modelValue requires a preceding Sat answer");
  // The variable may have been simplified away; query the blaster for the
  // simplified form (a variable simplifies to itself).
  return LastBlaster->modelValue(RW.simplify(Var));
}
