//===- smt/Solver.cpp - QF_BV satisfiability facade --------------------------===//

#include "smt/Solver.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <chrono>
#include <map>

using namespace islaris;
using namespace islaris::smt;

SolverCache::~SolverCache() = default;

Solver::Solver(TermBuilder &TB) : TB(TB), RW(TB) {}

Solver::~Solver() = default;

void Solver::push() { ScopeMarks.push_back(Asserted.size()); }

void Solver::pop() {
  assert(!ScopeMarks.empty() && "pop without matching push");
  Asserted.resize(ScopeMarks.back());
  ScopeMarks.pop_back();
  // The last model described the popped scope; a modelValue() now would be
  // answered from a retracted assertion set.
  invalidateModel();
}

void Solver::assertTerm(const Term *T) {
  assert(T->isBool() && "assertions must be boolean");
  Asserted.push_back(T);
  invalidateModel();
}

static Value defaultValue(const Term *V) {
  return V->isBool() ? Value(false) : Value(BitVec::zeros(V->width()));
}

std::string
Solver::printGoalClosure(const std::vector<const Term *> &Goals) {
  // Free-variable declarations, sorted by name.  Two distinct variables
  // printing the same name would make the closure ambiguous (the printed
  // formula conflates them); refuse to produce a key in that case.
  std::map<std::string, const Term *> Decls;
  for (const Term *G : Goals)
    for (const Term *V : collectVars(G)) {
      auto [It, New] = Decls.emplace(V->varName(), V);
      if (!New && It->second != V)
        return std::string();
    }
  std::vector<std::string> Printed;
  Printed.reserve(Goals.size());
  for (const Term *G : Goals)
    Printed.push_back(G->toString());
  std::sort(Printed.begin(), Printed.end());
  Printed.erase(std::unique(Printed.begin(), Printed.end()), Printed.end());

  std::string Out = "(goal-closure 1";
  for (const auto &[Name, V] : Decls) {
    Out += " (|" + Name + "| ";
    Out += std::to_string(V->isBool() ? 0u : V->width());
    Out += ")";
  }
  for (const std::string &P : Printed)
    Out += " (assert " + P + ")";
  Out += ")";
  return Out;
}

Result Solver::solveGoals(const std::vector<const Term *> &Goals) {
  ++Stats.NumSatCalls;
  if (!Core) {
    Core = std::make_unique<sat::Solver>();
    Blaster = std::make_unique<BitBlaster>(*Core);
  }
  // Translate the facade-level limits into a per-call SAT budget.  This is
  // (re)installed on every call so a deadline is measured from the start of
  // this check, not from when the limits were configured.
  sat::SatBudget B;
  B.MaxConflicts = Limits.MaxConflicts;
  B.MaxPropagations = Limits.MaxPropagations;
  if (Limits.MaxSeconds > 0)
    B.Deadline = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(Limits.MaxSeconds));
  if (Limits.Cancel.valid())
    B.Cancel = Limits.Cancel.raw();
  Core->setBudget(B);
  uint64_t ConflictsBefore = Core->numConflicts();
  std::vector<sat::Lit> Assumps;
  Assumps.reserve(Goals.size());
  for (const Term *G : Goals)
    Assumps.push_back(Blaster->blastBool(G));
  sat::SatResult SR = Core->solve(Assumps);
  Stats.NumConflicts += Core->numConflicts() - ConflictsBefore;
  Stats.TermsBlasted = Blaster->stats().TermsBlasted;
  Stats.TermsReused = Blaster->stats().TermsReused;
  if (SR == sat::SatResult::Unknown) {
    ++Stats.NumUnknown;
    invalidateModel();
    return Result::Unknown;
  }
  if (SR != sat::SatResult::Sat) {
    invalidateModel();
    return Result::Unsat;
  }
  // Extract the goal variables' values now: the SAT model is a snapshot
  // that later checks overwrite, but this Env stays valid until the next
  // assertTerm()/pop().
  Model.clear();
  for (const Term *G : Goals)
    for (const Term *V : collectVars(G))
      if (!Model.count(V->varId()))
        Model.emplace(V->varId(), Blaster->modelValue(V));
  HasModel = true;
  return Result::Sat;
}

bool Solver::installCached(const std::vector<const Term *> &Goals,
                           const SolverCache::CachedResult &C, Result &R) {
  if (!C.Sat) {
    invalidateModel();
    R = Result::Unsat;
    return true;
  }
  // Bind the stored (name, width, value) triples back to this builder's
  // variables.  Any mismatch means the entry does not describe this goal
  // set (e.g. a different-width variable of the same name): reject it and
  // fall back to solving.
  std::unordered_map<std::string, const Term *> ByName;
  for (const Term *G : Goals)
    for (const Term *V : collectVars(G))
      ByName.emplace(V->varName(), V);
  Env M;
  for (const auto &[Name, Width, Bits] : C.Model) {
    auto It = ByName.find(Name);
    if (It == ByName.end())
      return false;
    const Term *V = It->second;
    if (V->isBool()) {
      if (Width != 0 || Bits.width() != 1)
        return false;
      M.emplace(V->varId(), Value(Bits.toUInt64() != 0));
    } else {
      if (Width != V->width() || Bits.width() != V->width())
        return false;
      M.emplace(V->varId(), Value(Bits));
    }
  }
  if (M.size() != ByName.size())
    return false; // some goal variable is unassigned
  Model = std::move(M);
  HasModel = true;
  R = Result::Sat;
  return true;
}

SolverCache::CachedResult
Solver::exportResult(const std::vector<const Term *> &Goals,
                     Result R) const {
  SolverCache::CachedResult C;
  C.Sat = R == Result::Sat;
  if (!C.Sat)
    return C;
  std::map<std::string, const Term *> Vars;
  for (const Term *G : Goals)
    for (const Term *V : collectVars(G))
      Vars.emplace(V->varName(), V);
  for (const auto &[Name, V] : Vars) {
    auto It = Model.find(V->varId());
    Value Val = It != Model.end() ? It->second : defaultValue(V);
    if (V->isBool())
      C.Model.emplace_back(Name, 0u, BitVec(1, Val.asBool() ? 1 : 0));
    else
      C.Model.emplace_back(Name, V->width(), Val.asBitVec());
  }
  return C;
}

Result Solver::check(const std::vector<const Term *> &Assumptions) {
  auto Start = std::chrono::steady_clock::now();
  ++Stats.NumChecks;

  // A cancellation requested before we even start: answer Unknown at once
  // (the syntactic fast paths below would be sound, but a cancelled job
  // should stop doing work, not keep simplifying terms).
  if (Limits.Cancel.cancelled()) {
    ++Stats.NumUnknown;
    invalidateModel();
    return Result::Unknown;
  }

  // Simplify everything first; collect the residual (non-constant) goals.
  std::vector<const Term *> Goals;
  bool TriviallyUnsat = false;
  auto consider = [&](const Term *T) {
    const Term *S = RW.simplify(T);
    if (S->kind() == Kind::ConstBool) {
      if (!S->constBool())
        TriviallyUnsat = true;
      return;
    }
    Goals.push_back(S);
  };
  for (const Term *T : Asserted)
    consider(T);
  for (const Term *T : Assumptions)
    consider(T);

  Result R;
  if (TriviallyUnsat) {
    ++Stats.NumSyntactic;
    invalidateModel();
    R = Result::Unsat;
  } else if (Goals.empty()) {
    // All assertions simplified to true: the empty model satisfies them.
    // No SAT instance or blaster is built for this.
    ++Stats.NumSyntactic;
    Model.clear();
    HasModel = true;
    R = Result::Sat;
  } else if (support::FaultInjector::fire(support::FaultSite::SolverUnknown)) {
    // Injected spurious give-up on the non-syntactic path, standing in for
    // an external solver timing out.  Deliberately before the memo/store
    // lookups so a repeated query can fail on one attempt and succeed on a
    // retry — and, like a real Unknown, it is never cached.
    ++Stats.NumUnknown;
    invalidateModel();
    R = Result::Unknown;
  } else {
    // Canonical goal-set key: sorted, deduplicated hash-consed ids.
    std::vector<unsigned> Key;
    Key.reserve(Goals.size());
    for (const Term *G : Goals)
      Key.push_back(G->id());
    std::sort(Key.begin(), Key.end());
    Key.erase(std::unique(Key.begin(), Key.end()), Key.end());

    auto Hit = Memo.find(Key);
    if (Hit != Memo.end()) {
      ++Stats.NumMemoHits;
      R = Hit->second.R;
      Model = Hit->second.Model;
      HasModel = R == Result::Sat;
    } else {
      std::string Closure =
          Persist ? printGoalClosure(Goals) : std::string();
      bool Answered = false;
      if (!Closure.empty())
        if (auto Cached = Persist->lookup(Closure))
          if (installCached(Goals, *Cached, R)) {
            ++Stats.NumStoreHits;
            Answered = true;
          }
      if (!Answered) {
        R = solveGoals(Goals);
        // An Unknown is a statement about this run's budget, not about the
        // formula: memoizing or persisting it would convert a transient
        // resource condition into a cached wrong-ish answer.
        if (R != Result::Unknown && !Closure.empty())
          Persist->store(Closure, exportResult(Goals, R));
      }
      if (R != Result::Unknown)
        Memo.emplace(std::move(Key), MemoEntry{R, Model});
    }
  }

  Stats.TotalSeconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return R;
}

bool Solver::isValid(const Term *T) {
  auto Start = std::chrono::steady_clock::now();
  const Term *S = RW.simplify(T);
  if (S->kind() == Kind::ConstBool && S->constBool()) {
    ++Stats.NumChecks;
    ++Stats.NumSyntactic;
    // The fast path is still a check: account its (tiny) time so the
    // automation/side-condition split stays consistent.
    Stats.TotalSeconds += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - Start)
                              .count();
    return true;
  }
  return check({TB.notTerm(S)}) == Result::Unsat;
}

Value Solver::modelValue(const Term *Var) {
  const Term *S = RW.simplify(Var);
  if (S->kind() == Kind::ConstBool)
    return Value(S->constBool());
  if (S->kind() == Kind::ConstBV)
    return Value(S->constBV());
  assert(HasModel && "modelValue without a Sat answer newer than the last "
                     "assertTerm()/pop()");
  if (!HasModel)
    return defaultValue(S);
  if (S->kind() == Kind::Var) {
    auto It = Model.find(S->varId());
    return It != Model.end() ? It->second : defaultValue(S);
  }
  // Compound term: evaluate under the model, defaulting variables the
  // model does not constrain.
  Env E = Model;
  for (const Term *V : collectVars(S))
    E.emplace(V->varId(), defaultValue(V));
  auto Val = evaluate(S, E);
  return Val ? *Val : defaultValue(S);
}
