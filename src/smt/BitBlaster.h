//===- smt/BitBlaster.h - QF_BV to CNF translation -------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tseitin-style translation of QF_BV terms to CNF over a sat::Solver.
/// Each bitvector term maps to a little-endian vector of literals; each
/// boolean term to a single literal.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SMT_BITBLASTER_H
#define ISLARIS_SMT_BITBLASTER_H

#include "smt/Evaluator.h"
#include "smt/Sat.h"
#include "smt/Term.h"

#include <unordered_map>

namespace islaris::smt {

/// Translation-reuse counters: how much of the CNF built for earlier checks
/// was shared by later ones (a long-lived blaster makes TermsReused grow).
struct BlastStats {
  uint64_t TermsBlasted = 0; ///< Cache misses: terms translated to clauses.
  uint64_t TermsReused = 0;  ///< Cache hits: existing circuits reused.
};

/// Translates terms into clauses of an underlying SAT solver.  Terms are
/// hash-consed, so the per-instance caches stay valid for as long as the
/// TermBuilder lives: a blaster shared across checks reuses every circuit
/// it has ever built.
class BitBlaster {
public:
  explicit BitBlaster(sat::Solver &S);

  /// Asserts that the boolean term \p T holds.
  void assertTrue(const Term *T);

  /// Returns the literal representing boolean term \p T.
  sat::Lit blastBool(const Term *T);

  /// Returns the literals (LSB first) representing bitvector term \p T.
  const std::vector<sat::Lit> &blastBV(const Term *T);

  /// Reads back a model value for \p T after a Sat answer.
  Value modelValue(const Term *T);

  /// The always-true literal.
  sat::Lit trueLit() const { return TrueLit; }

  const BlastStats &stats() const { return BStats; }

private:
  sat::Lit freshLit();
  sat::Lit litAnd(sat::Lit A, sat::Lit B);
  sat::Lit litOr(sat::Lit A, sat::Lit B);
  sat::Lit litXor(sat::Lit A, sat::Lit B);
  sat::Lit litMux(sat::Lit C, sat::Lit T, sat::Lit E);
  sat::Lit litMajority(sat::Lit A, sat::Lit B, sat::Lit C);
  sat::Lit constLit(bool B) const { return B ? TrueLit : ~TrueLit; }

  using Bits = std::vector<sat::Lit>;
  Bits addBits(const Bits &A, const Bits &B, sat::Lit CarryIn);
  Bits negBits(const Bits &A);
  Bits mulBits(const Bits &A, const Bits &B);
  Bits shiftBits(const Bits &A, const Bits &Amount, bool Left,
                 sat::Lit Fill);
  sat::Lit ultBits(const Bits &A, const Bits &B);
  sat::Lit uleBits(const Bits &A, const Bits &B);
  sat::Lit sltBits(const Bits &A, const Bits &B);
  sat::Lit eqBits(const Bits &A, const Bits &B);
  /// Encodes division/remainder via the multiplication relation at double
  /// width (exactness enforced), honoring the SMT-LIB div-by-zero cases.
  void divRem(const Bits &N, const Bits &D, Bits &Quot, Bits &Rem);

  Bits blastNode(const Term *T);

  sat::Solver &S;
  sat::Lit TrueLit;
  BlastStats BStats;
  std::unordered_map<const Term *, Bits> BVCache;
  std::unordered_map<const Term *, sat::Lit> BoolCache;
  /// Cached quotient/remainder pairs so bvudiv/bvurem over the same
  /// operands share one circuit.  Keyed by (dividend, divisor).
  struct PairHash {
    size_t operator()(const std::pair<const Term *, const Term *> &P) const {
      return std::hash<const void *>()(P.first) * 31 +
             std::hash<const void *>()(P.second);
    }
  };
  std::unordered_map<std::pair<const Term *, const Term *>,
                     std::pair<Bits, Bits>, PairHash>
      DivCache;
};

} // namespace islaris::smt

#endif // ISLARIS_SMT_BITBLASTER_H
