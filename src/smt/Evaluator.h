//===- smt/Evaluator.h - Concrete term evaluation --------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The big-step semantics e ↓ v of SMT expressions (used by the ITL
/// operational semantics of Fig. 10 and by property tests).
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SMT_EVALUATOR_H
#define ISLARIS_SMT_EVALUATOR_H

#include "smt/Term.h"

#include <optional>
#include <unordered_map>
#include <variant>

namespace islaris::smt {

/// A concrete SMT value: a bitvector or a boolean.
class Value {
public:
  Value() : V(false) {}
  Value(BitVec BV) : V(std::move(BV)) {}
  Value(bool B) : V(B) {}

  bool isBool() const { return std::holds_alternative<bool>(V); }
  bool isBitVec() const { return !isBool(); }
  bool asBool() const {
    assert(isBool() && "value is not a boolean");
    return std::get<bool>(V);
  }
  const BitVec &asBitVec() const {
    assert(isBitVec() && "value is not a bitvector");
    return std::get<BitVec>(V);
  }

  Sort sort() const {
    return isBool() ? Sort::boolean() : Sort::bitvec(asBitVec().width());
  }

  bool operator==(const Value &O) const { return V == O.V; }
  bool operator!=(const Value &O) const { return !(*this == O); }

  std::string toString() const {
    if (isBool())
      return asBool() ? "true" : "false";
    return asBitVec().toString();
  }

private:
  std::variant<BitVec, bool> V;
};

/// A variable assignment: var id -> concrete value.
using Env = std::unordered_map<uint32_t, Value>;

/// Evaluates \p T under \p E.  Returns nullopt if a variable is unassigned.
/// Asserts on sort errors (terms are built well-sorted).
std::optional<Value> evaluate(const Term *T, const Env &E);

} // namespace islaris::smt

#endif // ISLARIS_SMT_EVALUATOR_H
