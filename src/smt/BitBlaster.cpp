//===- smt/BitBlaster.cpp - QF_BV to CNF translation -------------------------===//

#include "smt/BitBlaster.h"

using namespace islaris;
using namespace islaris::smt;
using sat::Lit;

BitBlaster::BitBlaster(sat::Solver &S) : S(S) {
  TrueLit = Lit(S.newVar(), false);
  S.addClause(TrueLit);
}

Lit BitBlaster::freshLit() { return Lit(S.newVar(), false); }

Lit BitBlaster::litAnd(Lit A, Lit B) {
  if (A == constLit(false) || B == constLit(false))
    return constLit(false);
  if (A == constLit(true))
    return B;
  if (B == constLit(true))
    return A;
  if (A == B)
    return A;
  if (A == ~B)
    return constLit(false);
  Lit C = freshLit();
  S.addClause(~C, A);
  S.addClause(~C, B);
  S.addClause(C, ~A, ~B);
  return C;
}

Lit BitBlaster::litOr(Lit A, Lit B) { return ~litAnd(~A, ~B); }

Lit BitBlaster::litXor(Lit A, Lit B) {
  if (A == constLit(false))
    return B;
  if (B == constLit(false))
    return A;
  if (A == constLit(true))
    return ~B;
  if (B == constLit(true))
    return ~A;
  if (A == B)
    return constLit(false);
  if (A == ~B)
    return constLit(true);
  Lit C = freshLit();
  S.addClause(~C, A, B);
  S.addClause(~C, ~A, ~B);
  S.addClause(C, ~A, B);
  S.addClause(C, A, ~B);
  return C;
}

Lit BitBlaster::litMux(Lit C, Lit T, Lit E) {
  if (C == constLit(true))
    return T;
  if (C == constLit(false))
    return E;
  if (T == E)
    return T;
  Lit R = freshLit();
  S.addClause(~C, ~T, R);
  S.addClause(~C, T, ~R);
  S.addClause(C, ~E, R);
  S.addClause(C, E, ~R);
  return R;
}

Lit BitBlaster::litMajority(Lit A, Lit B, Lit C) {
  return litOr(litAnd(A, B), litOr(litAnd(A, C), litAnd(B, C)));
}

//===----------------------------------------------------------------------===//
// Word-level circuits.
//===----------------------------------------------------------------------===//

BitBlaster::Bits BitBlaster::addBits(const Bits &A, const Bits &B,
                                     Lit CarryIn) {
  assert(A.size() == B.size() && "adder width mismatch");
  Bits Sum(A.size());
  Lit Carry = CarryIn;
  for (size_t I = 0; I < A.size(); ++I) {
    Sum[I] = litXor(litXor(A[I], B[I]), Carry);
    Carry = litMajority(A[I], B[I], Carry);
  }
  return Sum;
}

BitBlaster::Bits BitBlaster::negBits(const Bits &A) {
  Bits NotA(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    NotA[I] = ~A[I];
  Bits Zero(A.size(), constLit(false));
  return addBits(NotA, Zero, constLit(true));
}

BitBlaster::Bits BitBlaster::mulBits(const Bits &A, const Bits &B) {
  size_t W = A.size();
  Bits Acc(W, constLit(false));
  for (size_t I = 0; I < W; ++I) {
    // Partial product: (A << I) & B[I], added into Acc.
    Bits Partial(W, constLit(false));
    for (size_t J = I; J < W; ++J)
      Partial[J] = litAnd(A[J - I], B[I]);
    Acc = addBits(Acc, Partial, constLit(false));
  }
  return Acc;
}

BitBlaster::Bits BitBlaster::shiftBits(const Bits &A, const Bits &Amount,
                                       bool Left, Lit Fill) {
  size_t W = A.size();
  Bits Cur = A;
  // Barrel shifter over the bits of Amount that are < log2ceil(W)+1;
  // any higher set bit forces a full shift-out.
  unsigned Stages = 0;
  while ((size_t(1) << Stages) < W)
    ++Stages;
  Lit Overflow = constLit(false);
  for (size_t I = 0; I < Amount.size(); ++I)
    if (I > Stages || (size_t(1) << I) >= W * 2)
      Overflow = litOr(Overflow, Amount[I]);
  for (size_t Stage = 0; Stage <= Stages && Stage < Amount.size(); ++Stage) {
    size_t Dist = size_t(1) << Stage;
    if (Dist >= W) {
      Overflow = litOr(Overflow, Amount[Stage]);
      continue;
    }
    Bits Next(W);
    for (size_t I = 0; I < W; ++I) {
      Lit Shifted;
      if (Left)
        Shifted = I >= Dist ? Cur[I - Dist] : Fill;
      else
        Shifted = I + Dist < W ? Cur[I + Dist] : Fill;
      Next[I] = litMux(Amount[Stage], Shifted, Cur[I]);
    }
    Cur = Next;
  }
  for (size_t I = 0; I < W; ++I)
    Cur[I] = litMux(Overflow, Fill, Cur[I]);
  return Cur;
}

Lit BitBlaster::ultBits(const Bits &A, const Bits &B) {
  // MSB-first lexicographic comparison.
  Lit Result = constLit(false);
  for (size_t I = 0; I < A.size(); ++I) {
    Lit Less = litAnd(~A[I], B[I]);
    Lit EqBit = ~litXor(A[I], B[I]);
    Result = litOr(Less, litAnd(EqBit, Result));
  }
  return Result;
}

Lit BitBlaster::uleBits(const Bits &A, const Bits &B) {
  return ~ultBits(B, A);
}

Lit BitBlaster::sltBits(const Bits &A, const Bits &B) {
  // Flip the sign bits and compare unsigned.
  Bits A2 = A, B2 = B;
  A2.back() = ~A2.back();
  B2.back() = ~B2.back();
  return ultBits(A2, B2);
}

Lit BitBlaster::eqBits(const Bits &A, const Bits &B) {
  Lit R = constLit(true);
  for (size_t I = 0; I < A.size(); ++I)
    R = litAnd(R, ~litXor(A[I], B[I]));
  return R;
}

void BitBlaster::divRem(const Bits &N, const Bits &D, Bits &Quot, Bits &Rem) {
  size_t W = N.size();
  // Fresh result vectors constrained by the multiplication relation at
  // double width so that no wrap-around can fake a solution:
  //   zext(Q) * zext(D) + zext(R) == zext(N)  and  R < D   (when D != 0)
  //   Q == ones, R == N                                    (when D == 0)
  Quot.assign(W, Lit());
  Rem.assign(W, Lit());
  for (size_t I = 0; I < W; ++I) {
    Quot[I] = freshLit();
    Rem[I] = freshLit();
  }
  Lit DZero = eqBits(D, Bits(W, constLit(false)));

  auto zext2 = [&](const Bits &X) {
    Bits R2 = X;
    R2.resize(2 * W, constLit(false));
    return R2;
  };
  Bits Prod = mulBits(zext2(Quot), zext2(D));
  Bits Sum = addBits(Prod, zext2(Rem), constLit(false));
  Lit Exact = eqBits(Sum, zext2(N));
  Lit RemOk = ultBits(Rem, D);
  Lit NonZeroCase = litAnd(Exact, RemOk);
  Lit ZeroCase =
      litAnd(eqBits(Quot, Bits(W, constLit(true))), eqBits(Rem, N));
  // (DZero -> ZeroCase) and (!DZero -> NonZeroCase)
  S.addClause(litOr(~DZero, ZeroCase));
  S.addClause(litOr(DZero, NonZeroCase));
}

//===----------------------------------------------------------------------===//
// Term translation.
//===----------------------------------------------------------------------===//

Lit BitBlaster::blastBool(const Term *T) {
  assert(T->isBool() && "blastBool needs a boolean term");
  auto It = BoolCache.find(T);
  if (It != BoolCache.end()) {
    ++BStats.TermsReused;
    return It->second;
  }
  ++BStats.TermsBlasted;

  Lit R;
  switch (T->kind()) {
  case Kind::ConstBool:
    R = constLit(T->constBool());
    break;
  case Kind::Var:
    R = freshLit();
    break;
  case Kind::Not:
    R = ~blastBool(T->operand(0));
    break;
  case Kind::And:
    R = litAnd(blastBool(T->operand(0)), blastBool(T->operand(1)));
    break;
  case Kind::Or:
    R = litOr(blastBool(T->operand(0)), blastBool(T->operand(1)));
    break;
  case Kind::Implies:
    R = litOr(~blastBool(T->operand(0)), blastBool(T->operand(1)));
    break;
  case Kind::Ite:
    R = litMux(blastBool(T->operand(0)), blastBool(T->operand(1)),
               blastBool(T->operand(2)));
    break;
  case Kind::Eq: {
    const Term *L = T->operand(0);
    if (L->isBool())
      R = ~litXor(blastBool(T->operand(0)), blastBool(T->operand(1)));
    else
      R = eqBits(blastBV(T->operand(0)), blastBV(T->operand(1)));
    break;
  }
  case Kind::BVUlt:
    R = ultBits(blastBV(T->operand(0)), blastBV(T->operand(1)));
    break;
  case Kind::BVUle:
    R = uleBits(blastBV(T->operand(0)), blastBV(T->operand(1)));
    break;
  case Kind::BVSlt:
    R = sltBits(blastBV(T->operand(0)), blastBV(T->operand(1)));
    break;
  case Kind::BVSle:
    R = ~sltBits(blastBV(T->operand(1)), blastBV(T->operand(0)));
    break;
  default:
    assert(false && "non-boolean kind in blastBool");
    R = constLit(false);
  }
  BoolCache[T] = R;
  return R;
}

BitBlaster::Bits BitBlaster::blastNode(const Term *T) {
  unsigned W = T->width();
  switch (T->kind()) {
  case Kind::ConstBV: {
    Bits R(W);
    for (unsigned I = 0; I < W; ++I)
      R[I] = constLit(T->constBV().bit(I));
    return R;
  }
  case Kind::Var: {
    Bits R(W);
    for (unsigned I = 0; I < W; ++I)
      R[I] = freshLit();
    return R;
  }
  case Kind::Ite: {
    Lit C = blastBool(T->operand(0));
    const Bits &A = blastBV(T->operand(1));
    const Bits &B = blastBV(T->operand(2));
    Bits R(W);
    for (unsigned I = 0; I < W; ++I)
      R[I] = litMux(C, A[I], B[I]);
    return R;
  }
  case Kind::BVAdd:
    return addBits(blastBV(T->operand(0)), blastBV(T->operand(1)),
                   constLit(false));
  case Kind::BVSub: {
    Bits B = blastBV(T->operand(1));
    for (Lit &L : B)
      L = ~L;
    return addBits(blastBV(T->operand(0)), B, constLit(true));
  }
  case Kind::BVNeg:
    return negBits(blastBV(T->operand(0)));
  case Kind::BVMul:
    return mulBits(blastBV(T->operand(0)), blastBV(T->operand(1)));
  case Kind::BVUDiv:
  case Kind::BVURem: {
    auto Key = std::make_pair(T->operand(0), T->operand(1));
    auto It = DivCache.find(Key);
    if (It == DivCache.end()) {
      Bits Q, R;
      divRem(blastBV(T->operand(0)), blastBV(T->operand(1)), Q, R);
      It = DivCache.emplace(Key, std::make_pair(Q, R)).first;
    }
    return T->kind() == Kind::BVUDiv ? It->second.first : It->second.second;
  }
  case Kind::BVSDiv:
  case Kind::BVSRem: {
    // Reduce to unsigned via sign/magnitude muxing.
    const Bits &A = blastBV(T->operand(0));
    const Bits &B = blastBV(T->operand(1));
    Lit SA = A.back(), SB = B.back();
    Bits AbsA(W), AbsB(W);
    Bits NA = negBits(A), NB = negBits(B);
    for (unsigned I = 0; I < W; ++I) {
      AbsA[I] = litMux(SA, NA[I], A[I]);
      AbsB[I] = litMux(SB, NB[I], B[I]);
    }
    Bits Q, R;
    divRem(AbsA, AbsB, Q, R);
    Bits Out(W);
    if (T->kind() == Kind::BVSDiv) {
      Lit NegRes = litXor(SA, SB);
      Bits NQ = negBits(Q);
      // Division by zero: SMT-LIB bvsdiv gives 1 for negative dividend,
      // ones otherwise; our unsigned divRem already yields Q=ones for
      // D==0, so fix up: sdiv(x,0) = x<0 ? 1 : ones.
      Lit DZero = eqBits(B, Bits(W, constLit(false)));
      Bits One(W, constLit(false));
      One[0] = constLit(true);
      Bits Ones(W, constLit(true));
      for (unsigned I = 0; I < W; ++I) {
        Lit Normal = litMux(NegRes, NQ[I], Q[I]);
        Lit ZeroVal = litMux(SA, One[I], Ones[I]);
        Out[I] = litMux(DZero, ZeroVal, Normal);
      }
    } else {
      Bits NR = negBits(R);
      Lit DZero = eqBits(B, Bits(W, constLit(false)));
      for (unsigned I = 0; I < W; ++I) {
        Lit Normal = litMux(SA, NR[I], R[I]);
        Out[I] = litMux(DZero, A[I], Normal);
      }
    }
    return Out;
  }
  case Kind::BVAnd:
  case Kind::BVOr:
  case Kind::BVXor: {
    const Bits &A = blastBV(T->operand(0));
    const Bits &B = blastBV(T->operand(1));
    Bits R(W);
    for (unsigned I = 0; I < W; ++I) {
      if (T->kind() == Kind::BVAnd)
        R[I] = litAnd(A[I], B[I]);
      else if (T->kind() == Kind::BVOr)
        R[I] = litOr(A[I], B[I]);
      else
        R[I] = litXor(A[I], B[I]);
    }
    return R;
  }
  case Kind::BVNot: {
    Bits R = blastBV(T->operand(0));
    for (Lit &L : R)
      L = ~L;
    return R;
  }
  case Kind::BVShl:
    return shiftBits(blastBV(T->operand(0)), blastBV(T->operand(1)), true,
                     constLit(false));
  case Kind::BVLShr:
    return shiftBits(blastBV(T->operand(0)), blastBV(T->operand(1)), false,
                     constLit(false));
  case Kind::BVAShr: {
    const Bits &A = blastBV(T->operand(0));
    return shiftBits(A, blastBV(T->operand(1)), false, A.back());
  }
  case Kind::Extract: {
    const Bits &A = blastBV(T->operand(0));
    return Bits(A.begin() + T->attrB(), A.begin() + T->attrA() + 1);
  }
  case Kind::Concat: {
    Bits R = blastBV(T->operand(1)); // low part
    const Bits &Hi = blastBV(T->operand(0));
    R.insert(R.end(), Hi.begin(), Hi.end());
    return R;
  }
  case Kind::ZeroExtend: {
    Bits R = blastBV(T->operand(0));
    R.resize(W, constLit(false));
    return R;
  }
  case Kind::SignExtend: {
    Bits R = blastBV(T->operand(0));
    Lit Sign = R.back();
    R.resize(W, Sign);
    return R;
  }
  default:
    assert(false && "non-bitvector kind in blastBV");
    return Bits(W, constLit(false));
  }
}

const BitBlaster::Bits &BitBlaster::blastBV(const Term *T) {
  assert(T->sort().isBitVec() && "blastBV needs a bitvector term");
  auto It = BVCache.find(T);
  if (It != BVCache.end()) {
    ++BStats.TermsReused;
    return It->second;
  }
  ++BStats.TermsBlasted;
  Bits R = blastNode(T);
  assert(R.size() == T->width() && "blasted width mismatch");
  return BVCache.emplace(T, std::move(R)).first->second;
}

void BitBlaster::assertTrue(const Term *T) {
  S.addClause(blastBool(T));
}

Value BitBlaster::modelValue(const Term *T) {
  if (T->isBool()) {
    auto It = BoolCache.find(T);
    // Unconstrained variables default to false.
    if (It == BoolCache.end())
      return Value(false);
    return Value(S.modelValue(It->second.var()) != It->second.negated());
  }
  auto It = BVCache.find(T);
  if (It == BVCache.end())
    return Value(BitVec::zeros(T->width()));
  BitVec V = BitVec::zeros(T->width());
  for (unsigned I = 0; I < T->width(); ++I) {
    Lit L = It->second[I];
    if (S.modelValue(L.var()) != L.negated())
      V = V.insertSlice(I, BitVec(1, 1));
  }
  return Value(V);
}
