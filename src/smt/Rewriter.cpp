//===- smt/Rewriter.cpp - Algebraic term simplification ---------------------===//

#include "smt/Rewriter.h"

using namespace islaris;
using namespace islaris::smt;

static bool isZeroConst(const Term *T) {
  return T->kind() == Kind::ConstBV && T->constBV().isZero();
}

static bool isOnesConst(const Term *T) {
  return T->kind() == Kind::ConstBV && T->constBV().isAllOnes();
}

const Term *Rewriter::rebuild(const Term *T,
                              const std::vector<const Term *> &Ops) {
  switch (T->kind()) {
  case Kind::ConstBV:
  case Kind::ConstBool:
  case Kind::Var:
    return T;
  case Kind::Not:
    return TB.notTerm(Ops[0]);
  case Kind::And:
    return TB.andTerm(Ops[0], Ops[1]);
  case Kind::Or:
    return TB.orTerm(Ops[0], Ops[1]);
  case Kind::Implies:
    return TB.impliesTerm(Ops[0], Ops[1]);
  case Kind::Ite:
    return TB.iteTerm(Ops[0], Ops[1], Ops[2]);
  case Kind::Eq:
    return TB.eqTerm(Ops[0], Ops[1]);
  case Kind::BVAdd:
    return TB.bvAdd(Ops[0], Ops[1]);
  case Kind::BVSub:
    return TB.bvSub(Ops[0], Ops[1]);
  case Kind::BVMul:
    return TB.bvMul(Ops[0], Ops[1]);
  case Kind::BVUDiv:
    return TB.bvUDiv(Ops[0], Ops[1]);
  case Kind::BVURem:
    return TB.bvURem(Ops[0], Ops[1]);
  case Kind::BVSDiv:
    return TB.bvSDiv(Ops[0], Ops[1]);
  case Kind::BVSRem:
    return TB.bvSRem(Ops[0], Ops[1]);
  case Kind::BVNeg:
    return TB.bvNeg(Ops[0]);
  case Kind::BVAnd:
    return TB.bvAnd(Ops[0], Ops[1]);
  case Kind::BVOr:
    return TB.bvOr(Ops[0], Ops[1]);
  case Kind::BVXor:
    return TB.bvXor(Ops[0], Ops[1]);
  case Kind::BVNot:
    return TB.bvNot(Ops[0]);
  case Kind::BVShl:
    return TB.bvShl(Ops[0], Ops[1]);
  case Kind::BVLShr:
    return TB.bvLShr(Ops[0], Ops[1]);
  case Kind::BVAShr:
    return TB.bvAShr(Ops[0], Ops[1]);
  case Kind::BVUlt:
    return TB.bvUlt(Ops[0], Ops[1]);
  case Kind::BVUle:
    return TB.bvUle(Ops[0], Ops[1]);
  case Kind::BVSlt:
    return TB.bvSlt(Ops[0], Ops[1]);
  case Kind::BVSle:
    return TB.bvSle(Ops[0], Ops[1]);
  case Kind::Extract:
    return TB.extract(T->attrA(), T->attrB(), Ops[0]);
  case Kind::Concat:
    return TB.concat(Ops[0], Ops[1]);
  case Kind::ZeroExtend:
    return TB.zeroExtend(T->attrA(), Ops[0]);
  case Kind::SignExtend:
    return TB.signExtend(T->attrA(), Ops[0]);
  }
  assert(false && "unhandled kind in rebuild");
  return T;
}

const Term *Rewriter::applyRules(const Term *T) {
  switch (T->kind()) {
  case Kind::BVAdd: {
    const Term *L = T->operand(0), *R = T->operand(1);
    if (isZeroConst(R))
      return L;
    if (isZeroConst(L))
      return R;
    // Constants to the right for reassociation.
    if (L->kind() == Kind::ConstBV && R->kind() != Kind::ConstBV)
      return TB.bvAdd(R, L);
    // (x + c1) + c2 -> x + (c1+c2)
    if (R->kind() == Kind::ConstBV && L->kind() == Kind::BVAdd &&
        L->operand(1)->kind() == Kind::ConstBV)
      return TB.bvAdd(L->operand(0),
                      TB.constBV(L->operand(1)->constBV().add(R->constBV())));
    return T;
  }
  case Kind::BVSub: {
    const Term *L = T->operand(0), *R = T->operand(1);
    if (isZeroConst(R))
      return L;
    if (L == R)
      return TB.constBV(BitVec::zeros(T->width()));
    // (a + b) - a -> b and (a + b) - b -> a: the cancellation that turns
    // array-offset side conditions (base + i) - base into i.
    if (L->kind() == Kind::BVAdd) {
      if (L->operand(0) == R)
        return L->operand(1);
      if (L->operand(1) == R)
        return L->operand(0);
    }
    // (a + b) - (a + c) -> b - c.
    if (L->kind() == Kind::BVAdd && R->kind() == Kind::BVAdd) {
      if (L->operand(0) == R->operand(0))
        return TB.bvSub(L->operand(1), R->operand(1));
      if (L->operand(1) == R->operand(1))
        return TB.bvSub(L->operand(0), R->operand(0));
    }
    // x - c -> x + (-c), to share the add normalizations.
    if (R->kind() == Kind::ConstBV)
      return TB.bvAdd(L, TB.constBV(R->constBV().neg()));
    return T;
  }
  case Kind::BVUDiv: {
    const Term *L = T->operand(0), *R = T->operand(1);
    // Division by a power of two becomes a shift (far cheaper to blast).
    if (R->kind() == Kind::ConstBV && !R->constBV().isZero()) {
      const BitVec &C = R->constBV();
      if (C.bvand(C.sub(BitVec(C.width(), 1))).isZero()) {
        unsigned K = 0;
        while (!C.bit(K))
          ++K;
        return K == 0 ? L : TB.bvLShr(L, TB.constBV(T->width(), K));
      }
    }
    return T;
  }
  case Kind::BVURem: {
    const Term *L = T->operand(0), *R = T->operand(1);
    // Remainder by a power of two keeps the low bits.
    if (R->kind() == Kind::ConstBV && !R->constBV().isZero()) {
      const BitVec &C = R->constBV();
      if (C.bvand(C.sub(BitVec(C.width(), 1))).isZero()) {
        unsigned K = 0;
        while (!C.bit(K))
          ++K;
        if (K == 0)
          return TB.constBV(BitVec::zeros(T->width()));
        return TB.zeroExtend(T->width() - K, TB.extract(K - 1, 0, L));
      }
    }
    return T;
  }
  case Kind::BVMul: {
    const Term *L = T->operand(0), *R = T->operand(1);
    if (isZeroConst(L))
      return L;
    if (isZeroConst(R))
      return R;
    BitVec One(T->width(), 1);
    if (L->kind() == Kind::ConstBV && L->constBV() == One)
      return R;
    if (R->kind() == Kind::ConstBV && R->constBV() == One)
      return L;
    return T;
  }
  case Kind::BVAnd: {
    const Term *L = T->operand(0), *R = T->operand(1);
    if (isZeroConst(L) || isOnesConst(R))
      return L;
    if (isZeroConst(R) || isOnesConst(L))
      return R;
    if (L == R)
      return L;
    return T;
  }
  case Kind::BVOr: {
    const Term *L = T->operand(0), *R = T->operand(1);
    if (isZeroConst(L) || isOnesConst(R))
      return R;
    if (isZeroConst(R) || isOnesConst(L))
      return L;
    if (L == R)
      return L;
    return T;
  }
  case Kind::BVXor: {
    const Term *L = T->operand(0), *R = T->operand(1);
    if (isZeroConst(L))
      return R;
    if (isZeroConst(R))
      return L;
    if (L == R)
      return TB.constBV(BitVec::zeros(T->width()));
    return T;
  }
  case Kind::BVShl:
  case Kind::BVLShr:
  case Kind::BVAShr: {
    if (isZeroConst(T->operand(1)))
      return T->operand(0);
    if (isZeroConst(T->operand(0)))
      return T->operand(0);
    return T;
  }
  case Kind::Extract: {
    const Term *Op = T->operand(0);
    unsigned Hi = T->attrA(), Lo = T->attrB();
    // extract over concat selects a side when the range does not straddle.
    if (Op->kind() == Kind::Concat) {
      unsigned LoWidth = Op->operand(1)->width();
      if (Hi < LoWidth)
        return TB.extract(Hi, Lo, Op->operand(1));
      if (Lo >= LoWidth)
        return TB.extract(Hi - LoWidth, Lo - LoWidth, Op->operand(0));
    }
    // extract over zero/sign extension.
    if (Op->kind() == Kind::ZeroExtend || Op->kind() == Kind::SignExtend) {
      unsigned OrigW = Op->operand(0)->width();
      if (Hi < OrigW)
        return TB.extract(Hi, Lo, Op->operand(0));
      if (Lo >= OrigW && Op->kind() == Kind::ZeroExtend)
        return TB.constBV(BitVec::zeros(Hi - Lo + 1));
    }
    // Low-bit extraction distributes over modular arithmetic and bitwise
    // operations: extract(k,0, a op b) = extract(k,0,a) op extract(k,0,b).
    // This is the rule that collapses the Fig. 3 pattern
    // (_ extract 63 0)(bvadd ((_ zero_extend 64) x) c) to a 64-bit add.
    if (Lo == 0) {
      switch (Op->kind()) {
      case Kind::BVAdd:
      case Kind::BVSub:
      case Kind::BVMul:
      case Kind::BVAnd:
      case Kind::BVOr:
      case Kind::BVXor:
        return rebuild(Op, {TB.extract(Hi, 0, Op->operand(0)),
                            TB.extract(Hi, 0, Op->operand(1))});
      case Kind::BVNot:
      case Kind::BVNeg:
        return rebuild(Op, {TB.extract(Hi, 0, Op->operand(0))});
      case Kind::Ite:
        return TB.iteTerm(Op->operand(0), TB.extract(Hi, 0, Op->operand(1)),
                          TB.extract(Hi, 0, Op->operand(2)));
      default:
        break;
      }
    }
    return T;
  }
  case Kind::ZeroExtend: {
    const Term *Op = T->operand(0);
    // zext(zext(x)) composes.
    if (Op->kind() == Kind::ZeroExtend)
      return TB.zeroExtend(T->attrA() + Op->attrA(), Op->operand(0));
    return T;
  }
  case Kind::Eq: {
    const Term *L = T->operand(0), *R = T->operand(1);
    // Push equality with a constant through concat: high and low parts.
    if (L->sort().isBitVec() && R->kind() == Kind::ConstBV &&
        L->kind() == Kind::Concat) {
      unsigned LoW = L->operand(1)->width();
      const Term *HiC =
          TB.constBV(R->constBV().extract(R->width() - 1, LoW));
      const Term *LoC = TB.constBV(R->constBV().extract(LoW - 1, 0));
      return TB.andTerm(TB.eqTerm(L->operand(0), HiC),
                        TB.eqTerm(L->operand(1), LoC));
    }
    if (R->sort().isBitVec() && L->kind() == Kind::ConstBV)
      return TB.eqTerm(R, L); // constant to the right
    // zext(x) = c  ->  x = low(c) when the high bits of c are zero, else
    // false.
    if (L->kind() == Kind::ZeroExtend && R->kind() == Kind::ConstBV) {
      unsigned OrigW = L->operand(0)->width();
      if (R->constBV().extract(R->width() - 1, OrigW).isZero())
        return TB.eqTerm(L->operand(0),
                         TB.constBV(R->constBV().extract(OrigW - 1, 0)));
      return TB.falseTerm();
    }
    // (x + c1) = c2 -> x = (c2 - c1)
    if (L->kind() == Kind::BVAdd && R->kind() == Kind::ConstBV &&
        L->operand(1)->kind() == Kind::ConstBV)
      return TB.eqTerm(L->operand(0),
                       TB.constBV(R->constBV().sub(L->operand(1)->constBV())));
    return T;
  }
  case Kind::Not: {
    const Term *Op = T->operand(0);
    // not(a = b) over booleans stays; not(not x) handled by builder.
    if (Op->kind() == Kind::BVUlt)
      return TB.bvUle(Op->operand(1), Op->operand(0));
    if (Op->kind() == Kind::BVUle)
      return TB.bvUlt(Op->operand(1), Op->operand(0));
    if (Op->kind() == Kind::BVSlt)
      return TB.bvSle(Op->operand(1), Op->operand(0));
    if (Op->kind() == Kind::BVSle)
      return TB.bvSlt(Op->operand(1), Op->operand(0));
    return T;
  }
  case Kind::BVUlt: {
    // x < 0 is false; distinct-width cases folded by the builder.
    if (isZeroConst(T->operand(1)))
      return TB.falseTerm();
    if (T->operand(0) == T->operand(1))
      return TB.falseTerm();
    return T;
  }
  case Kind::BVUle: {
    if (isZeroConst(T->operand(0)) || T->operand(0) == T->operand(1))
      return TB.trueTerm();
    return T;
  }
  default:
    return T;
  }
}

const Term *Rewriter::simplify(const Term *T) {
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;

  // Simplify children first (iteratively, to bound stack depth).
  std::vector<const Term *> Ops;
  Ops.reserve(T->numOperands());
  bool Changed = false;
  for (const Term *Op : T->operands()) {
    const Term *S = simplify(Op);
    Changed |= S != Op;
    Ops.push_back(S);
  }
  const Term *Cur = Changed ? rebuild(T, Ops) : T;

  // Apply root rules to a fixpoint (rules may expose further rules; cap the
  // iteration count defensively).
  bool Converged = false;
  for (int Iter = 0; Iter < 64; ++Iter) {
    const Term *Next = applyRules(Cur);
    if (Next == Cur) {
      Converged = true;
      break;
    }
    // The result of a rule may itself need child simplification (rules can
    // construct fresh compound children); re-enter through the memo.
    if (Next->numOperands() != 0 && Memo.find(Next) == Memo.end() &&
        Next != T) {
      Next = simplify(Next);
    }
    Cur = Next;
  }
  // Hitting the cap is sound (every rule is semantics-preserving) but means
  // the result may be unnormalized — count it instead of hiding it, so a
  // ping-ponging rule pair shows up in stats rather than as a silent
  // simplification regression.
  if (!Converged)
    ++CapHits;

  Memo[T] = Cur;
  return Cur;
}
