//===- smt/Solver.h - QF_BV satisfiability facade ---------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SMT solver used throughout the pipeline: by Isla's symbolic executor
/// for branch pruning, and by the separation-logic engine for side-condition
/// discharge ("a solver for bitvectors provided by Islaris", §2.5).
///
/// Architecture: assertions are simplified by the Rewriter first; anything
/// not decided syntactically is bit-blasted to CNF and handed to the CDCL
/// core.  Each check builds a fresh SAT instance (formulas in this domain
/// are small, and this keeps push/pop trivially correct).
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SMT_SOLVER_H
#define ISLARIS_SMT_SOLVER_H

#include "smt/BitBlaster.h"
#include "smt/Evaluator.h"
#include "smt/Rewriter.h"
#include "smt/TermBuilder.h"

#include <memory>

namespace islaris::smt {

/// Satisfiability result.
enum class Result { Sat, Unsat };

/// Accumulated statistics, reported by the Fig. 12 benchmark harness.
struct SolverStats {
  uint64_t NumChecks = 0;
  uint64_t NumSyntactic = 0; ///< Checks decided without the SAT core.
  uint64_t NumSatCalls = 0;
  uint64_t NumConflicts = 0;
  double TotalSeconds = 0;
};

/// An incremental-interface QF_BV solver over a TermBuilder's terms.
class Solver {
public:
  explicit Solver(TermBuilder &TB);

  /// Pushes/pops an assertion scope.
  void push();
  void pop();

  /// Asserts a boolean term in the current scope.
  void assertTerm(const Term *T);

  /// Checks satisfiability of the asserted stack plus \p Assumptions.
  Result check(const std::vector<const Term *> &Assumptions = {});

  /// True if \p T holds in every model of the current assertions
  /// (i.e. assertions ∧ ¬T is unsat).
  bool isValid(const Term *T);

  /// After a Sat answer from check(): concrete value of a *variable* term.
  Value modelValue(const Term *Var);

  /// Asserted terms, innermost scope last (diagnostics).
  const std::vector<const Term *> &assertions() const { return Asserted; }

  TermBuilder &builder() { return TB; }
  Rewriter &rewriter() { return RW; }
  const SolverStats &stats() const { return Stats; }

private:
  TermBuilder &TB;
  Rewriter RW;
  std::vector<const Term *> Asserted;
  std::vector<size_t> ScopeMarks;
  SolverStats Stats;

  // State of the last Sat check, kept for model queries.
  std::unique_ptr<sat::Solver> LastSat;
  std::unique_ptr<BitBlaster> LastBlaster;
};

} // namespace islaris::smt

#endif // ISLARIS_SMT_SOLVER_H
