//===- smt/Solver.h - QF_BV satisfiability facade ---------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SMT solver used throughout the pipeline: by Isla's symbolic executor
/// for branch pruning, and by the separation-logic engine for side-condition
/// discharge ("a solver for bitvectors provided by Islaris", §2.5).
///
/// Architecture: assertions are simplified by the Rewriter first; anything
/// not decided syntactically is bit-blasted to CNF and handed to the CDCL
/// core.  The SAT instance and bit-blaster persist for the lifetime of the
/// Solver: goals are passed as *assumptions* (never asserted as unit
/// clauses), so the clause database stays satisfiable, push()/pop() is
/// trivially correct, and the Tseitin circuits of recurring subterms are
/// built once and reused across checks — the "scoped incrementality" half
/// of the side-condition cache.
///
/// On top of that sit two caching layers:
///
///  - an in-memory memo table keyed on the canonical simplified goal set
///    (sorted hash-consed term ids), so a query repeated anywhere within a
///    run — across push/pop frames, paths, or specs — returns instantly
///    with the same answer and model;
///  - an optional persistent SolverCache (implemented by
///    cache::SideCondStore), keyed on the *printed* goal closure so
///    results survive across runs and processes.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SMT_SOLVER_H
#define ISLARIS_SMT_SOLVER_H

#include "smt/BitBlaster.h"
#include "smt/Evaluator.h"
#include "smt/Rewriter.h"
#include "smt/TermBuilder.h"
#include "support/Guard.h"

#include <memory>
#include <optional>
#include <tuple>

namespace islaris::smt {

/// Satisfiability result.  Unknown appears only when a resource guard is
/// installed (SolverLimits / cancellation) or a fault injector spoofs it;
/// the unlimited default solver is complete and never returns it.  Callers
/// MUST treat Unknown explicitly — folding it into Sat or Unsat by a `==`
/// comparison silently weakens or unsounds the surrounding proof logic.
enum class Result { Sat, Unsat, Unknown };

/// Per-check() resource guards (0 = unlimited).  A check cut short returns
/// Result::Unknown; Unknown answers are never memoized or persisted.
struct SolverLimits {
  uint64_t MaxConflicts = 0;    ///< SAT conflict budget per check().
  uint64_t MaxPropagations = 0; ///< SAT propagation budget per check().
  double MaxSeconds = 0;        ///< Wall-clock deadline per check().
  support::CancelToken Cancel;  ///< Cooperative cancellation (shared).

  bool unlimited() const {
    return MaxConflicts == 0 && MaxPropagations == 0 && MaxSeconds <= 0 &&
           !Cancel.valid();
  }
};

/// Accumulated statistics, reported by the Fig. 12 benchmark harness.
struct SolverStats {
  uint64_t NumChecks = 0;
  uint64_t NumSyntactic = 0; ///< Checks decided without the SAT core.
  uint64_t NumMemoHits = 0;  ///< Checks answered by the in-run memo table.
  uint64_t NumStoreHits = 0; ///< Checks answered by the persistent store.
  uint64_t NumSatCalls = 0;  ///< Checks that reached the SAT core.
  uint64_t NumUnknown = 0;   ///< Checks cut short by a guard or fault.
  uint64_t NumConflicts = 0;
  uint64_t TermsBlasted = 0; ///< Terms translated to CNF (mirror of blaster).
  uint64_t TermsReused = 0;  ///< Blaster cache hits: clauses reused.
  /// Times the Rewriter's root-rule loop hit its defensive iteration cap
  /// and returned a possibly-unnormalized term (see
  /// Rewriter::fixpointCapHits).  Zero in a healthy rule set.
  uint64_t FixpointCapHits = 0;
  double TotalSeconds = 0;
};

/// Interface to a (typically persistent) store of side-condition results,
/// keyed by the canonical printed goal closure — see
/// Solver::printGoalClosure.  Implemented by cache::SideCondStore; declared
/// here so the smt layer stays free of I/O and fingerprinting concerns.
/// Implementations must be thread-safe (one store is shared by many
/// solvers).
class SolverCache {
public:
  virtual ~SolverCache();

  /// A cached answer.  For Sat results the model assigns every free
  /// variable of the goal closure by (name, width) — width 0 encodes a
  /// boolean variable whose value is the low bit of a 1-bit vector.
  struct CachedResult {
    bool Sat = false;
    std::vector<std::tuple<std::string, unsigned, BitVec>> Model;
  };

  virtual std::optional<CachedResult> lookup(const std::string &Closure) = 0;
  virtual void store(const std::string &Closure, const CachedResult &R) = 0;
};

/// An incremental-interface QF_BV solver over a TermBuilder's terms.
class Solver {
public:
  explicit Solver(TermBuilder &TB);
  ~Solver();

  /// Pushes/pops an assertion scope.
  void push();
  void pop();

  /// Asserts a boolean term in the current scope.
  void assertTerm(const Term *T);

  /// Checks satisfiability of the asserted stack plus \p Assumptions.
  /// Under installed limits the answer may be Result::Unknown.
  Result check(const std::vector<const Term *> &Assumptions = {});

  /// Installs per-check resource guards (see SolverLimits).  The guards
  /// apply to every subsequent check(); pass a default-constructed value to
  /// remove them.
  void setLimits(const SolverLimits &L) { Limits = L; }
  const SolverLimits &limits() const { return Limits; }

  /// True if \p T holds in every model of the current assertions
  /// (i.e. assertions ∧ ¬T is unsat).
  bool isValid(const Term *T);

  /// After a Sat answer from check(): concrete value of a term under the
  /// discovered model (variables directly, compound terms by evaluation).
  /// The model is invalidated by assertTerm()/pop(); querying it afterwards
  /// asserts, and in release builds degrades to the default (all-zeros)
  /// assignment rather than silently reporting a retracted scope's model.
  Value modelValue(const Term *Var);

  /// Asserted terms, innermost scope last (diagnostics).
  const std::vector<const Term *> &assertions() const { return Asserted; }

  /// Attaches \p C as the persistent side-condition store (shared, not
  /// owned, thread-safe).  Consulted after a memo miss; solved queries are
  /// written back.  Null detaches.
  void setCache(SolverCache *C) { Persist = C; }
  SolverCache *cache() const { return Persist; }

  /// The canonical builder-independent key of a residual goal set: the
  /// sorted printed goals plus sorted (name, width) declarations of their
  /// free variables (width 0 = Bool).  Returns "" when two distinct
  /// variables share a printed name — such a closure would be ambiguous,
  /// so the query is excluded from cross-run caching (the id-keyed memo
  /// still applies).
  static std::string printGoalClosure(const std::vector<const Term *> &Goals);

  TermBuilder &builder() { return TB; }
  Rewriter &rewriter() { return RW; }
  const SolverStats &stats() const {
    // The rewriter owns the live counter; mirror it on read so callers see
    // an up-to-date value without the hot simplify path touching Stats.
    Stats.FixpointCapHits = RW.fixpointCapHits();
    return Stats;
  }

private:
  Result solveGoals(const std::vector<const Term *> &Goals);
  bool installCached(const std::vector<const Term *> &Goals,
                     const SolverCache::CachedResult &C, Result &R);
  SolverCache::CachedResult
  exportResult(const std::vector<const Term *> &Goals, Result R) const;
  void invalidateModel() {
    HasModel = false;
    Model.clear();
  }

  TermBuilder &TB;
  Rewriter RW;
  std::vector<const Term *> Asserted;
  std::vector<size_t> ScopeMarks;
  mutable SolverStats Stats;
  SolverCache *Persist = nullptr;
  SolverLimits Limits;

  // The persistent SAT core and Tseitin translation, created on the first
  // check that needs them and reused for the Solver's lifetime.  Goals are
  // only ever assumed, so the clause database stays satisfiable.
  std::unique_ptr<sat::Solver> Core;
  std::unique_ptr<BitBlaster> Blaster;

  // Model of the last Sat answer (goal variables only), extracted eagerly
  // so it cannot be invalidated by later clause additions.
  bool HasModel = false;
  Env Model;

  // In-run memo: canonical goal-id set -> result + model.  Terms are
  // hash-consed, so ids identify goals and the key is builder-stable.
  struct GoalKeyHash {
    size_t operator()(const std::vector<unsigned> &K) const {
      uint64_t H = 0xcbf29ce484222325ull;
      for (unsigned Id : K) {
        H ^= Id;
        H *= 1099511628211ull;
      }
      return size_t(H ^ (H >> 31));
    }
  };
  struct MemoEntry {
    Result R;
    Env Model;
  };
  std::unordered_map<std::vector<unsigned>, MemoEntry, GoalKeyHash> Memo;
};

} // namespace islaris::smt

#endif // ISLARIS_SMT_SOLVER_H
