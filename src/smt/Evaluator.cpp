//===- smt/Evaluator.cpp - Concrete term evaluation -------------------------===//

#include "smt/Evaluator.h"

using namespace islaris;
using namespace islaris::smt;

namespace {

/// Iterative post-order evaluator with memoization.
class EvalVisitor {
public:
  explicit EvalVisitor(const Env &E) : E(E) {}

  std::optional<Value> run(const Term *Root) {
    std::vector<std::pair<const Term *, bool>> Stack = {{Root, false}};
    while (!Stack.empty()) {
      auto [T, Expanded] = Stack.back();
      Stack.pop_back();
      if (Memo.count(T))
        continue;
      if (!Expanded) {
        Stack.push_back({T, true});
        for (const Term *Op : T->operands())
          Stack.push_back({Op, false});
        continue;
      }
      std::optional<Value> V = evalNode(T);
      if (!V)
        return std::nullopt;
      Memo[T] = *V;
    }
    return Memo.at(Root);
  }

private:
  const Value &op(const Term *T, unsigned I) { return Memo.at(T->operand(I)); }
  const BitVec &bv(const Term *T, unsigned I) { return op(T, I).asBitVec(); }
  bool b(const Term *T, unsigned I) { return op(T, I).asBool(); }

  std::optional<Value> evalNode(const Term *T) {
    switch (T->kind()) {
    case Kind::ConstBV:
      return Value(T->constBV());
    case Kind::ConstBool:
      return Value(T->constBool());
    case Kind::Var: {
      auto It = E.find(T->varId());
      if (It == E.end())
        return std::nullopt;
      assert(It->second.sort() == T->sort() && "environment sort mismatch");
      return It->second;
    }
    case Kind::Not:
      return Value(!b(T, 0));
    case Kind::And:
      return Value(b(T, 0) && b(T, 1));
    case Kind::Or:
      return Value(b(T, 0) || b(T, 1));
    case Kind::Implies:
      return Value(!b(T, 0) || b(T, 1));
    case Kind::Ite:
      return b(T, 0) ? op(T, 1) : op(T, 2);
    case Kind::Eq:
      return Value(op(T, 0) == op(T, 1));
    case Kind::BVAdd:
      return Value(bv(T, 0).add(bv(T, 1)));
    case Kind::BVSub:
      return Value(bv(T, 0).sub(bv(T, 1)));
    case Kind::BVMul:
      return Value(bv(T, 0).mul(bv(T, 1)));
    case Kind::BVUDiv:
      return Value(bv(T, 0).udiv(bv(T, 1)));
    case Kind::BVURem:
      return Value(bv(T, 0).urem(bv(T, 1)));
    case Kind::BVSDiv:
      return Value(bv(T, 0).sdiv(bv(T, 1)));
    case Kind::BVSRem:
      return Value(bv(T, 0).srem(bv(T, 1)));
    case Kind::BVNeg:
      return Value(bv(T, 0).neg());
    case Kind::BVAnd:
      return Value(bv(T, 0).bvand(bv(T, 1)));
    case Kind::BVOr:
      return Value(bv(T, 0).bvor(bv(T, 1)));
    case Kind::BVXor:
      return Value(bv(T, 0).bvxor(bv(T, 1)));
    case Kind::BVNot:
      return Value(bv(T, 0).bvnot());
    case Kind::BVShl:
      return Value(bv(T, 0).shl(bv(T, 1)));
    case Kind::BVLShr:
      return Value(bv(T, 0).lshr(bv(T, 1)));
    case Kind::BVAShr:
      return Value(bv(T, 0).ashr(bv(T, 1)));
    case Kind::BVUlt:
      return Value(bv(T, 0).ult(bv(T, 1)));
    case Kind::BVUle:
      return Value(bv(T, 0).ule(bv(T, 1)));
    case Kind::BVSlt:
      return Value(bv(T, 0).slt(bv(T, 1)));
    case Kind::BVSle:
      return Value(bv(T, 0).sle(bv(T, 1)));
    case Kind::Extract:
      return Value(bv(T, 0).extract(T->attrA(), T->attrB()));
    case Kind::Concat:
      return Value(bv(T, 0).concat(bv(T, 1)));
    case Kind::ZeroExtend:
      return Value(bv(T, 0).zext(T->attrA()));
    case Kind::SignExtend:
      return Value(bv(T, 0).sext(T->attrA()));
    }
    assert(false && "unhandled term kind");
    return std::nullopt;
  }

  const Env &E;
  std::unordered_map<const Term *, Value> Memo;
};

} // namespace

std::optional<Value> islaris::smt::evaluate(const Term *T, const Env &E) {
  return EvalVisitor(E).run(T);
}
