//===- smt/Sat.h - CDCL SAT solver ------------------------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver (watched literals, VSIDS
/// branching, phase saving, first-UIP learning, Luby restarts).  This is the
/// decision kernel under the QF_BV solver that stands in for the external
/// SMT solver in Isla's architecture.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SMT_SAT_H
#define ISLARIS_SMT_SAT_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace islaris::smt::sat {

/// A boolean variable index (0-based).
using Var = int32_t;

/// A literal: variable with polarity, encoded as 2*var (+1 if negated).
class Lit {
public:
  Lit() : X(-2) {}
  Lit(Var V, bool Negated) : X(V + V + (Negated ? 1 : 0)) {}

  Var var() const { return X >> 1; }
  bool negated() const { return X & 1; }
  Lit operator~() const {
    Lit L;
    L.X = X ^ 1;
    return L;
  }
  int32_t index() const { return X; }
  bool operator==(const Lit &O) const { return X == O.X; }
  bool operator!=(const Lit &O) const { return X != O.X; }

private:
  int32_t X;
};

/// Ternary truth value.
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

/// Result of a solve call.  Unknown is only produced when a Budget is in
/// force and fires: the instance was neither proven satisfiable nor
/// unsatisfiable within the allotted resources.
enum class SatResult { Sat, Unsat, Unknown };

/// Per-solve resource budget.  Zero / null fields are unlimited; the
/// default-constructed budget never interrupts the search (the solver is
/// complete, exactly as before).
struct SatBudget {
  uint64_t MaxConflicts = 0;    ///< Conflicts allowed within one solve call.
  uint64_t MaxPropagations = 0; ///< Propagations allowed within one call.
  /// Wall-clock deadline; time_point::max() means none.  Checked every few
  /// hundred conflicts, so overshoot is bounded by one conflict batch.
  std::chrono::steady_clock::time_point Deadline =
      std::chrono::steady_clock::time_point::max();
  /// Cooperative cancellation flag (borrowed); polled with the deadline.
  const std::atomic<bool> *Cancel = nullptr;

  bool unlimited() const {
    return MaxConflicts == 0 && MaxPropagations == 0 && !Cancel &&
           Deadline == std::chrono::steady_clock::time_point::max();
  }
};

/// A CDCL solver.  Usage: newVar()* -> addClause()* -> solve(assumptions).
/// Clauses persist across solve calls; assumptions do not.
class Solver {
public:
  Solver();

  /// Allocates a fresh variable and returns its index.
  Var newVar();
  int numVars() const { return int(Assigns.size()); }

  /// Adds a clause (disjunction of literals).  Returns false if the clause
  /// set is already unsatisfiable at level 0 (e.g. adding the empty clause).
  bool addClause(std::vector<Lit> Clause);
  bool addClause(Lit A) { return addClause(std::vector<Lit>{A}); }
  bool addClause(Lit A, Lit B) { return addClause(std::vector<Lit>{A, B}); }
  bool addClause(Lit A, Lit B, Lit C) {
    return addClause(std::vector<Lit>{A, B, C});
  }

  /// Solves under the given assumption literals.
  SatResult solve(const std::vector<Lit> &Assumptions = {});

  /// Installs the resource budget applied to every subsequent solve()
  /// (counters are measured per call, not cumulatively).  A solve cut short
  /// by the budget returns SatResult::Unknown with the solver left in a
  /// consistent root-level state — clauses learned before the interruption
  /// are kept and later calls may resume with a larger budget.
  void setBudget(const SatBudget &B) { Budget = B; }
  const SatBudget &budget() const { return Budget; }

  /// Model access after a Sat answer.
  bool modelValue(Var V) const { return Model[size_t(V)] == LBool::True; }

  /// Statistics.
  uint64_t numConflicts() const { return Conflicts; }
  uint64_t numDecisions() const { return Decisions; }
  uint64_t numPropagations() const { return Propagations; }

private:
  struct Clause {
    std::vector<Lit> Lits;
    double Activity = 0;
    bool Learnt = false;
    bool Deleted = false;
  };
  using ClauseRef = int32_t;
  static constexpr ClauseRef NoReason = -1;

  struct Watcher {
    ClauseRef CRef;
    Lit Blocker;
  };

  LBool value(Lit L) const {
    LBool V = Assigns[size_t(L.var())];
    if (V == LBool::Undef)
      return LBool::Undef;
    bool B = (V == LBool::True) != L.negated();
    return B ? LBool::True : LBool::False;
  }

  void attachClause(ClauseRef CR);
  void uncheckedEnqueue(Lit L, ClauseRef Reason);
  ClauseRef propagate();
  void analyze(ClauseRef Confl, std::vector<Lit> &OutLearnt, int &OutLevel);
  void cancelUntil(int Level);
  Lit pickBranchLit();
  void varBumpActivity(Var V);
  void varDecayActivity();
  void claBumpActivity(Clause &C);
  void reduceDB();
  int decisionLevel() const { return int(TrailLim.size()); }
  static uint64_t luby(uint64_t I);

  std::vector<Clause> Clauses;
  std::vector<std::vector<Watcher>> Watches; // indexed by literal index
  std::vector<LBool> Assigns;
  std::vector<LBool> Model;
  std::vector<bool> Phase; // saved phases
  std::vector<int> Level;
  std::vector<ClauseRef> Reason;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  size_t QHead = 0;

  // VSIDS.
  std::vector<double> Activity;
  double VarInc = 1.0;
  double VarDecay = 0.95;
  double ClaInc = 1.0;
  std::vector<int32_t> HeapPos; // position in OrderHeap or -1
  std::vector<Var> OrderHeap;
  void heapInsert(Var V);
  void heapPercolateUp(int Pos);
  void heapPercolateDown(int Pos);
  Var heapRemoveMax();

  std::vector<uint8_t> Seen; // scratch for analyze()
  bool Unsat = false;
  SatBudget Budget;

  uint64_t Conflicts = 0, Decisions = 0, Propagations = 0;
  size_t NumOrigClauses = 0;
};

} // namespace islaris::smt::sat

#endif // ISLARIS_SMT_SAT_H
