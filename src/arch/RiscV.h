//===- arch/RiscV.h - RV64 encoders and ABI info ----------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RV64I instruction encoders matching the model's decoder, plus ABI
/// helpers (a0-a7 = x10-x17, ra = x1, sp = x2, t0-t2 = x5-x7).
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_ARCH_RISCV_H
#define ISLARIS_ARCH_RISCV_H

#include "arch/Assembler.h"
#include "itl/Trace.h"

#include <cstdint>

namespace islaris::arch::rv64 {

/// Model register name for x1..x31 (x0 is the hardwired zero and has no
/// architectural state).
inline itl::Reg xreg(unsigned N) {
  assert(N >= 1 && N <= 31 && "x0 has no register state");
  return itl::Reg("x" + std::to_string(N));
}
inline itl::Reg pc() { return itl::Reg("PC"); }
unsigned regWidth(const itl::Reg &R);

// ABI names.
constexpr unsigned RA = 1, SP = 2, T0 = 5, T1 = 6, T2 = 7;
constexpr unsigned A0 = 10, A1 = 11, A2 = 12, A3 = 13, A4 = 14, A5 = 15;

namespace enc {
uint32_t lui(unsigned Rd, uint32_t Imm20);
uint32_t auipc(unsigned Rd, uint32_t Imm20);
uint32_t addi(unsigned Rd, unsigned Rs1, int32_t Imm12);
uint32_t xori(unsigned Rd, unsigned Rs1, int32_t Imm12);
uint32_t ori(unsigned Rd, unsigned Rs1, int32_t Imm12);
uint32_t andi(unsigned Rd, unsigned Rs1, int32_t Imm12);
uint32_t sltiu(unsigned Rd, unsigned Rs1, int32_t Imm12);
uint32_t slli(unsigned Rd, unsigned Rs1, unsigned Sh);
uint32_t srli(unsigned Rd, unsigned Rs1, unsigned Sh);
uint32_t srai(unsigned Rd, unsigned Rs1, unsigned Sh);
uint32_t add(unsigned Rd, unsigned Rs1, unsigned Rs2);
uint32_t sub(unsigned Rd, unsigned Rs1, unsigned Rs2);
uint32_t sltu(unsigned Rd, unsigned Rs1, unsigned Rs2);
uint32_t xorr(unsigned Rd, unsigned Rs1, unsigned Rs2);
uint32_t orr(unsigned Rd, unsigned Rs1, unsigned Rs2);
uint32_t andr(unsigned Rd, unsigned Rs1, unsigned Rs2);
uint32_t srl(unsigned Rd, unsigned Rs1, unsigned Rs2);
uint32_t sll(unsigned Rd, unsigned Rs1, unsigned Rs2);
uint32_t lb(unsigned Rd, unsigned Rs1, int32_t Imm12);
uint32_t lbu(unsigned Rd, unsigned Rs1, int32_t Imm12);
uint32_t lw(unsigned Rd, unsigned Rs1, int32_t Imm12);
uint32_t ld(unsigned Rd, unsigned Rs1, int32_t Imm12);
uint32_t sb(unsigned Rs2, unsigned Rs1, int32_t Imm12);
uint32_t sw(unsigned Rs2, unsigned Rs1, int32_t Imm12);
uint32_t sd(unsigned Rs2, unsigned Rs1, int32_t Imm12);
uint32_t beq(unsigned Rs1, unsigned Rs2, int64_t ByteOff);
uint32_t bne(unsigned Rs1, unsigned Rs2, int64_t ByteOff);
uint32_t blt(unsigned Rs1, unsigned Rs2, int64_t ByteOff);
uint32_t bge(unsigned Rs1, unsigned Rs2, int64_t ByteOff);
uint32_t bltu(unsigned Rs1, unsigned Rs2, int64_t ByteOff);
uint32_t bgeu(unsigned Rs1, unsigned Rs2, int64_t ByteOff);
uint32_t jal(unsigned Rd, int64_t ByteOff);
uint32_t jalr(unsigned Rd, unsigned Rs1, int32_t Imm12);
uint32_t addiw(unsigned Rd, unsigned Rs1, int32_t Imm12);
uint32_t slliw(unsigned Rd, unsigned Rs1, unsigned Sh);
uint32_t srliw(unsigned Rd, unsigned Rs1, unsigned Sh);
uint32_t sraiw(unsigned Rd, unsigned Rs1, unsigned Sh);
uint32_t addw(unsigned Rd, unsigned Rs1, unsigned Rs2);
uint32_t subw(unsigned Rd, unsigned Rs1, unsigned Rs2);
uint32_t sllw(unsigned Rd, unsigned Rs1, unsigned Rs2);
uint32_t srlw(unsigned Rd, unsigned Rs1, unsigned Rs2);
uint32_t sraw(unsigned Rd, unsigned Rs1, unsigned Rs2);
inline uint32_t ret() { return jalr(0, RA, 0); }
inline uint32_t mv(unsigned Rd, unsigned Rs) { return addi(Rd, Rs, 0); }
inline uint32_t beqz(unsigned Rs, int64_t Off) { return beq(Rs, 0, Off); }
inline uint32_t bnez(unsigned Rs, int64_t Off) { return bne(Rs, 0, Off); }
} // namespace enc

/// An Assembler with RV64 branch conveniences.
class Asm : public Assembler {
public:
  void beqz(unsigned Rs, const std::string &L) {
    putRel(L, [Rs](int64_t Off) { return enc::beqz(Rs, Off); });
  }
  void bnez(unsigned Rs, const std::string &L) {
    putRel(L, [Rs](int64_t Off) { return enc::bnez(Rs, Off); });
  }
  void beq(unsigned A, unsigned B, const std::string &L) {
    putRel(L, [=](int64_t Off) { return enc::beq(A, B, Off); });
  }
  void bne(unsigned A, unsigned B, const std::string &L) {
    putRel(L, [=](int64_t Off) { return enc::bne(A, B, Off); });
  }
  void blt(unsigned A, unsigned B, const std::string &L) {
    putRel(L, [=](int64_t Off) { return enc::blt(A, B, Off); });
  }
  void bge(unsigned A, unsigned B, const std::string &L) {
    putRel(L, [=](int64_t Off) { return enc::bge(A, B, Off); });
  }
  void bltu(unsigned A, unsigned B, const std::string &L) {
    putRel(L, [=](int64_t Off) { return enc::bltu(A, B, Off); });
  }
  void bgeu(unsigned A, unsigned B, const std::string &L) {
    putRel(L, [=](int64_t Off) { return enc::bgeu(A, B, Off); });
  }
  void jal(unsigned Rd, const std::string &L) {
    putRel(L, [Rd](int64_t Off) { return enc::jal(Rd, Off); });
  }
};

} // namespace islaris::arch::rv64

#endif // ISLARIS_ARCH_RISCV_H
