//===- arch/AArch64.h - AArch64 encoders and ABI info -----------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AArch64 instruction encoders (matching the model's decoder), system
/// register identifiers, and AAPCS64 helpers used to formalize the calling
/// convention in specifications (§6, binary search).
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_ARCH_AARCH64_H
#define ISLARIS_ARCH_AARCH64_H

#include "arch/Assembler.h"
#include "itl/Trace.h"

#include <cstdint>

namespace islaris::arch::aarch64 {

/// The X register file name used by the model (x31 = SP/XZR by context).
inline itl::Reg xreg(unsigned N) {
  assert(N <= 30 && "x31 is not a named register");
  return itl::Reg("R" + std::to_string(N));
}
inline itl::Reg pc() { return itl::Reg("_PC"); }

/// Width of a model register (for Spec::regAny hints).
unsigned regWidth(const itl::Reg &R);

/// System registers addressable by MSR/MRS (op0:op1:CRn:CRm:op2 packed).
enum class SysReg : uint16_t {
  VBAR_EL1 = 0xc600,
  VBAR_EL2 = 0xe600,
  HCR_EL2 = 0xe088,
  SPSR_EL1 = 0xc200,
  SPSR_EL2 = 0xe200,
  ELR_EL1 = 0xc201,
  ELR_EL2 = 0xe201,
  SCTLR_EL1 = 0xc080,
  SCTLR_EL2 = 0xe080,
  ESR_EL1 = 0xc290,
  ESR_EL2 = 0xe290,
  FAR_EL1 = 0xc300,
  FAR_EL2 = 0xe300,
  TPIDR_EL2 = 0xe682,
  MAIR_EL2 = 0xe510,
  TCR_EL2 = 0xe102,
  TTBR0_EL2 = 0xe100,
  MDCR_EL2 = 0xe089,
  CPTR_EL2 = 0xe08a,
  HSTR_EL2 = 0xe08b,
  VTTBR_EL2 = 0xe108,
  VTCR_EL2 = 0xe10a,
  CNTHCTL_EL2 = 0xe708,
  CNTVOFF_EL2 = 0xe703,
  CurrentEL = 0xc212,
};

/// Model register name for a system register.
const char *sysRegName(SysReg R);

/// Condition codes for B.cond.
enum class Cond : uint8_t {
  EQ = 0x0,
  NE = 0x1,
  CS = 0x2,
  CC = 0x3,
  MI = 0x4,
  PL = 0x5,
  VS = 0x6,
  VC = 0x7,
  HI = 0x8,
  LS = 0x9,
  GE = 0xa,
  LT = 0xb,
  GT = 0xc,
  LE = 0xd,
  AL = 0xe,
};

//===----------------------------------------------------------------------===//
// Encoders.  Register number 31 means SP or XZR depending on the
// instruction, exactly as in the architecture.
//===----------------------------------------------------------------------===//

namespace enc {
uint32_t movz(unsigned Rd, uint16_t Imm16, unsigned Hw = 0);
uint32_t movn(unsigned Rd, uint16_t Imm16, unsigned Hw = 0);
uint32_t movk(unsigned Rd, uint16_t Imm16, unsigned Hw = 0);
uint32_t addImm(unsigned Rd, unsigned Rn, uint16_t Imm12, bool Shift12 = false);
uint32_t subImm(unsigned Rd, unsigned Rn, uint16_t Imm12, bool Shift12 = false);
uint32_t addsImm(unsigned Rd, unsigned Rn, uint16_t Imm12);
uint32_t subsImm(unsigned Rd, unsigned Rn, uint16_t Imm12);
inline uint32_t cmpImm(unsigned Rn, uint16_t Imm12) {
  return subsImm(31, Rn, Imm12);
}
uint32_t addReg(unsigned Rd, unsigned Rn, unsigned Rm);
uint32_t subReg(unsigned Rd, unsigned Rn, unsigned Rm);
uint32_t addsReg(unsigned Rd, unsigned Rn, unsigned Rm);
uint32_t subsReg(unsigned Rd, unsigned Rn, unsigned Rm);
inline uint32_t cmpReg(unsigned Rn, unsigned Rm) {
  return subsReg(31, Rn, Rm);
}
uint32_t andReg(unsigned Rd, unsigned Rn, unsigned Rm);
uint32_t orrReg(unsigned Rd, unsigned Rn, unsigned Rm);
uint32_t eorReg(unsigned Rd, unsigned Rn, unsigned Rm);
uint32_t andsReg(unsigned Rd, unsigned Rn, unsigned Rm);
/// mov xd, xm == orr xd, xzr, xm.
inline uint32_t movReg(unsigned Rd, unsigned Rm) { return orrReg(Rd, 31, Rm); }
uint32_t lslImm(unsigned Rd, unsigned Rn, unsigned Shift);
uint32_t lsrImm(unsigned Rd, unsigned Rn, unsigned Shift);
uint32_t asrImm(unsigned Rd, unsigned Rn, unsigned Shift);
uint32_t rbit64(unsigned Rd, unsigned Rn);
uint32_t rbit32(unsigned Rd, unsigned Rn);
uint32_t rev64(unsigned Rd, unsigned Rn);
uint32_t rev32(unsigned Rd, unsigned Rn);
uint32_t udiv(unsigned Rd, unsigned Rn, unsigned Rm);
uint32_t sdiv(unsigned Rd, unsigned Rn, unsigned Rm);
uint32_t csel(unsigned Rd, unsigned Rn, unsigned Rm, Cond C);
uint32_t csinc(unsigned Rd, unsigned Rn, unsigned Rm, Cond C);
uint32_t csinv(unsigned Rd, unsigned Rn, unsigned Rm, Cond C);
uint32_t csneg(unsigned Rd, unsigned Rn, unsigned Rm, Cond C);
/// cset xd, cond == csinc xd, xzr, xzr, !cond.
uint32_t cset(unsigned Rd, Cond C);
uint32_t adr(unsigned Rd, int64_t ByteOff);
uint32_t adrp(unsigned Rd, int64_t PageOff);
// Loads/stores; Size: 0=B,1=H,2=W,3=X.  Immediates are scaled by size.
uint32_t ldrImm(unsigned Size, unsigned Rt, unsigned Rn, uint16_t ImmScaled);
uint32_t strImm(unsigned Size, unsigned Rt, unsigned Rn, uint16_t ImmScaled);
uint32_t ldrReg(unsigned Size, unsigned Rt, unsigned Rn, unsigned Rm,
                bool ScaleOffset = false);
uint32_t strReg(unsigned Size, unsigned Rt, unsigned Rn, unsigned Rm,
                bool ScaleOffset = false);
uint32_t cbz(unsigned Rt, int64_t ByteOff);
uint32_t cbnz(unsigned Rt, int64_t ByteOff);
uint32_t tbz(unsigned Rt, unsigned Bit, int64_t ByteOff);
uint32_t tbnz(unsigned Rt, unsigned Bit, int64_t ByteOff);
uint32_t bcond(Cond C, int64_t ByteOff);
uint32_t b(int64_t ByteOff);
uint32_t bl(int64_t ByteOff);
uint32_t br(unsigned Rn);
uint32_t blr(unsigned Rn);
uint32_t ret(unsigned Rn = 30);
uint32_t eret();
uint32_t hvc(uint16_t Imm16);
uint32_t nop();
uint32_t msr(SysReg R, unsigned Rt);
uint32_t mrs(unsigned Rt, SysReg R);
} // namespace enc

/// An Assembler with AArch64 branch conveniences.
class Asm : public Assembler {
public:
  void cbz(unsigned Rt, const std::string &L) {
    putRel(L, [Rt](int64_t Off) { return enc::cbz(Rt, Off); });
  }
  void cbnz(unsigned Rt, const std::string &L) {
    putRel(L, [Rt](int64_t Off) { return enc::cbnz(Rt, Off); });
  }
  void tbz(unsigned Rt, unsigned Bit, const std::string &L) {
    putRel(L, [=](int64_t Off) { return enc::tbz(Rt, Bit, Off); });
  }
  void tbnz(unsigned Rt, unsigned Bit, const std::string &L) {
    putRel(L, [=](int64_t Off) { return enc::tbnz(Rt, Bit, Off); });
  }
  void bcond(Cond C, const std::string &L) {
    putRel(L, [C](int64_t Off) { return enc::bcond(C, Off); });
  }
  void b(const std::string &L) {
    putRel(L, [](int64_t Off) { return enc::b(Off); });
  }
  void bl(const std::string &L) {
    putRel(L, [](int64_t Off) { return enc::bl(Off); });
  }
  /// Loads an arbitrary 64-bit constant via movz/movk (1-4 instructions).
  void movImm64(unsigned Rd, uint64_t V);
};

} // namespace islaris::arch::aarch64

#endif // ISLARIS_ARCH_AARCH64_H
