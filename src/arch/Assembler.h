//===- arch/Assembler.h - Two-pass label-resolving assembler ----*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Architecture-independent assembly buffer: .org, labels, fixed opcodes,
/// and PC-relative fixups resolved in a second pass.  The AArch64 and RV64
/// encoder layers build on it; the output (address -> 32-bit opcode) is the
/// machine code Islaris verifies.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_ARCH_ASSEMBLER_H
#define ISLARIS_ARCH_ASSEMBLER_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace islaris::arch {

/// A two-pass assembler buffer.
class Assembler {
public:
  /// Sets the current emission address (like the .org of Fig. 9).
  void org(uint64_t Addr) { Here = Addr; }
  uint64_t here() const { return Here; }

  /// Binds a label to the current address.
  void label(const std::string &Name) {
    assert(!Labels.count(Name) && "duplicate label");
    Labels[Name] = Here;
  }

  /// Emits a fixed 32-bit opcode.
  void put(uint32_t Opcode) {
    Code[Here] = Opcode;
    Here += 4;
  }

  /// Emits an opcode whose encoding depends on the byte offset from the
  /// emission site to \p Target (resolved in finish()).
  void putRel(const std::string &Target,
              std::function<uint32_t(int64_t)> Encode) {
    Fixups.push_back({Here, Target, std::move(Encode)});
    Code[Here] = 0;
    Here += 4;
  }

  /// Address of a bound label; asserts if unbound (after finish()).
  uint64_t addrOf(const std::string &Name) const {
    auto It = Labels.find(Name);
    assert(It != Labels.end() && "unbound label");
    return It->second;
  }

  /// Resolves all fixups and returns the code image.
  std::map<uint64_t, uint32_t> finish() {
    for (const Fixup &F : Fixups) {
      auto It = Labels.find(F.Target);
      assert(It != Labels.end() && "unbound label in fixup");
      Code[F.Site] = F.Encode(int64_t(It->second) - int64_t(F.Site));
    }
    Fixups.clear();
    return Code;
  }

private:
  struct Fixup {
    uint64_t Site;
    std::string Target;
    std::function<uint32_t(int64_t)> Encode;
  };

  uint64_t Here = 0;
  std::map<uint64_t, uint32_t> Code;
  std::unordered_map<std::string, uint64_t> Labels;
  std::vector<Fixup> Fixups;
};

} // namespace islaris::arch

#endif // ISLARIS_ARCH_ASSEMBLER_H
