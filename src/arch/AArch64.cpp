//===- arch/AArch64.cpp - AArch64 encoders --------------------------------------===//

#include "arch/AArch64.h"

using namespace islaris;
using namespace islaris::arch::aarch64;

unsigned islaris::arch::aarch64::regWidth(const itl::Reg &R) {
  if (R.Base == "PSTATE")
    return R.Field == "EL" ? 2 : 1;
  return 64;
}

const char *islaris::arch::aarch64::sysRegName(SysReg R) {
  switch (R) {
  case SysReg::VBAR_EL1:
    return "VBAR_EL1";
  case SysReg::VBAR_EL2:
    return "VBAR_EL2";
  case SysReg::HCR_EL2:
    return "HCR_EL2";
  case SysReg::SPSR_EL1:
    return "SPSR_EL1";
  case SysReg::SPSR_EL2:
    return "SPSR_EL2";
  case SysReg::ELR_EL1:
    return "ELR_EL1";
  case SysReg::ELR_EL2:
    return "ELR_EL2";
  case SysReg::SCTLR_EL1:
    return "SCTLR_EL1";
  case SysReg::SCTLR_EL2:
    return "SCTLR_EL2";
  case SysReg::ESR_EL1:
    return "ESR_EL1";
  case SysReg::ESR_EL2:
    return "ESR_EL2";
  case SysReg::FAR_EL1:
    return "FAR_EL1";
  case SysReg::FAR_EL2:
    return "FAR_EL2";
  case SysReg::TPIDR_EL2:
    return "TPIDR_EL2";
  case SysReg::MAIR_EL2:
    return "MAIR_EL2";
  case SysReg::TCR_EL2:
    return "TCR_EL2";
  case SysReg::TTBR0_EL2:
    return "TTBR0_EL2";
  case SysReg::MDCR_EL2:
    return "MDCR_EL2";
  case SysReg::CPTR_EL2:
    return "CPTR_EL2";
  case SysReg::HSTR_EL2:
    return "HSTR_EL2";
  case SysReg::VTTBR_EL2:
    return "VTTBR_EL2";
  case SysReg::VTCR_EL2:
    return "VTCR_EL2";
  case SysReg::CNTHCTL_EL2:
    return "CNTHCTL_EL2";
  case SysReg::CNTVOFF_EL2:
    return "CNTVOFF_EL2";
  case SysReg::CurrentEL:
    return "CurrentEL";
  }
  return "<sysreg>";
}

namespace {
uint32_t field(uint32_t V, unsigned Hi, unsigned Lo) {
  assert(Hi >= Lo && Hi < 32 && "bad field bounds");
  [[maybe_unused]] uint32_t Width = Hi - Lo + 1;
  assert((Width == 32 || V < (1u << Width)) && "field value overflow");
  return V << Lo;
}
uint32_t imm19(int64_t ByteOff) {
  assert(ByteOff % 4 == 0 && "misaligned branch offset");
  int64_t Words = ByteOff / 4;
  assert(Words >= -(1 << 18) && Words < (1 << 18) && "branch out of range");
  return uint32_t(Words) & 0x7ffff;
}
uint32_t imm14(int64_t ByteOff) {
  assert(ByteOff % 4 == 0 && "misaligned branch offset");
  int64_t Words = ByteOff / 4;
  assert(Words >= -(1 << 13) && Words < (1 << 13) && "branch out of range");
  return uint32_t(Words) & 0x3fff;
}
uint32_t imm26(int64_t ByteOff) {
  assert(ByteOff % 4 == 0 && "misaligned branch offset");
  int64_t Words = ByteOff / 4;
  assert(Words >= -(1 << 25) && Words < (1 << 25) && "branch out of range");
  return uint32_t(Words) & 0x3ffffff;
}
} // namespace

namespace islaris::arch::aarch64::enc {

static uint32_t moveWide(unsigned Opc, unsigned Rd, uint16_t Imm16,
                         unsigned Hw) {
  assert(Rd < 32 && Hw < 4 && "bad move-wide operands");
  return field(1, 31, 31) | field(Opc, 30, 29) | field(0x25, 28, 23) |
         field(Hw, 22, 21) | field(Imm16, 20, 5) | field(Rd, 4, 0);
}
uint32_t movz(unsigned Rd, uint16_t Imm16, unsigned Hw) {
  return moveWide(2, Rd, Imm16, Hw);
}
uint32_t movn(unsigned Rd, uint16_t Imm16, unsigned Hw) {
  return moveWide(0, Rd, Imm16, Hw);
}
uint32_t movk(unsigned Rd, uint16_t Imm16, unsigned Hw) {
  return moveWide(3, Rd, Imm16, Hw);
}

static uint32_t addSubImm(unsigned Op, unsigned S, unsigned Rd, unsigned Rn,
                          uint16_t Imm12, bool Shift12) {
  assert(Imm12 < (1 << 12) && "add/sub immediate out of range");
  return field(1, 31, 31) | field(Op, 30, 30) | field(S, 29, 29) |
         field(0x22, 28, 23) | field(Shift12 ? 1 : 0, 22, 22) |
         field(Imm12, 21, 10) | field(Rn, 9, 5) | field(Rd, 4, 0);
}
uint32_t addImm(unsigned Rd, unsigned Rn, uint16_t Imm12, bool Shift12) {
  return addSubImm(0, 0, Rd, Rn, Imm12, Shift12);
}
uint32_t subImm(unsigned Rd, unsigned Rn, uint16_t Imm12, bool Shift12) {
  return addSubImm(1, 0, Rd, Rn, Imm12, Shift12);
}
uint32_t addsImm(unsigned Rd, unsigned Rn, uint16_t Imm12) {
  return addSubImm(0, 1, Rd, Rn, Imm12, false);
}
uint32_t subsImm(unsigned Rd, unsigned Rn, uint16_t Imm12) {
  return addSubImm(1, 1, Rd, Rn, Imm12, false);
}

static uint32_t addSubReg(unsigned Op, unsigned S, unsigned Rd, unsigned Rn,
                          unsigned Rm) {
  return field(1, 31, 31) | field(Op, 30, 30) | field(S, 29, 29) |
         field(0x0b, 28, 24) | field(Rm, 20, 16) | field(Rn, 9, 5) |
         field(Rd, 4, 0);
}
uint32_t addReg(unsigned Rd, unsigned Rn, unsigned Rm) {
  return addSubReg(0, 0, Rd, Rn, Rm);
}
uint32_t subReg(unsigned Rd, unsigned Rn, unsigned Rm) {
  return addSubReg(1, 0, Rd, Rn, Rm);
}
uint32_t addsReg(unsigned Rd, unsigned Rn, unsigned Rm) {
  return addSubReg(0, 1, Rd, Rn, Rm);
}
uint32_t subsReg(unsigned Rd, unsigned Rn, unsigned Rm) {
  return addSubReg(1, 1, Rd, Rn, Rm);
}

static uint32_t logical(unsigned Opc, unsigned Rd, unsigned Rn, unsigned Rm) {
  return field(1, 31, 31) | field(Opc, 30, 29) | field(0x0a, 28, 24) |
         field(Rm, 20, 16) | field(Rn, 9, 5) | field(Rd, 4, 0);
}
uint32_t andReg(unsigned Rd, unsigned Rn, unsigned Rm) {
  return logical(0, Rd, Rn, Rm);
}
uint32_t orrReg(unsigned Rd, unsigned Rn, unsigned Rm) {
  return logical(1, Rd, Rn, Rm);
}
uint32_t eorReg(unsigned Rd, unsigned Rn, unsigned Rm) {
  return logical(2, Rd, Rn, Rm);
}
uint32_t andsReg(unsigned Rd, unsigned Rn, unsigned Rm) {
  return logical(3, Rd, Rn, Rm);
}

static uint32_t bitfield(unsigned Opc, unsigned Rd, unsigned Rn,
                         unsigned Immr, unsigned Imms) {
  return field(1, 31, 31) | field(Opc, 30, 29) | field(0x26, 28, 23) |
         field(1, 22, 22) | field(Immr, 21, 16) | field(Imms, 15, 10) |
         field(Rn, 9, 5) | field(Rd, 4, 0);
}
uint32_t lsrImm(unsigned Rd, unsigned Rn, unsigned Shift) {
  assert(Shift < 64 && "shift out of range");
  return bitfield(2, Rd, Rn, Shift, 63);
}
uint32_t asrImm(unsigned Rd, unsigned Rn, unsigned Shift) {
  assert(Shift < 64 && "shift out of range");
  return bitfield(0, Rd, Rn, Shift, 63);
}
uint32_t lslImm(unsigned Rd, unsigned Rn, unsigned Shift) {
  assert(Shift >= 1 && Shift < 64 && "shift out of range");
  return bitfield(2, Rd, Rn, (64 - Shift) % 64, 63 - Shift);
}

uint32_t rbit64(unsigned Rd, unsigned Rn) {
  return field(1, 31, 31) | field(0x2d6, 30, 21) | field(Rn, 9, 5) |
         field(Rd, 4, 0);
}
uint32_t rbit32(unsigned Rd, unsigned Rn) {
  return field(0x2d6, 30, 21) | field(Rn, 9, 5) | field(Rd, 4, 0);
}
uint32_t rev64(unsigned Rd, unsigned Rn) {
  return field(1, 31, 31) | field(0x2d6, 30, 21) | field(3, 15, 10) |
         field(Rn, 9, 5) | field(Rd, 4, 0);
}
uint32_t rev32(unsigned Rd, unsigned Rn) {
  return field(0x2d6, 30, 21) | field(2, 15, 10) | field(Rn, 9, 5) |
         field(Rd, 4, 0);
}
static uint32_t divEnc(unsigned Opc2, unsigned Rd, unsigned Rn,
                       unsigned Rm) {
  return field(1, 31, 31) | field(0xd6, 28, 21) | field(Rm, 20, 16) |
         field(Opc2, 15, 10) | field(Rn, 9, 5) | field(Rd, 4, 0);
}
uint32_t udiv(unsigned Rd, unsigned Rn, unsigned Rm) {
  return divEnc(2, Rd, Rn, Rm);
}
uint32_t sdiv(unsigned Rd, unsigned Rn, unsigned Rm) {
  return divEnc(3, Rd, Rn, Rm);
}
static uint32_t condSel(unsigned Op, unsigned Op2, unsigned Rd, unsigned Rn,
                        unsigned Rm, Cond C) {
  return field(1, 31, 31) | field(Op, 30, 30) | field(0xd4, 28, 21) |
         field(Rm, 20, 16) | field(uint32_t(C), 15, 12) |
         field(Op2, 11, 10) | field(Rn, 9, 5) | field(Rd, 4, 0);
}
uint32_t csel(unsigned Rd, unsigned Rn, unsigned Rm, Cond C) {
  return condSel(0, 0, Rd, Rn, Rm, C);
}
uint32_t csinc(unsigned Rd, unsigned Rn, unsigned Rm, Cond C) {
  return condSel(0, 1, Rd, Rn, Rm, C);
}
uint32_t csinv(unsigned Rd, unsigned Rn, unsigned Rm, Cond C) {
  return condSel(1, 0, Rd, Rn, Rm, C);
}
uint32_t csneg(unsigned Rd, unsigned Rn, unsigned Rm, Cond C) {
  return condSel(1, 1, Rd, Rn, Rm, C);
}
uint32_t cset(unsigned Rd, Cond C) {
  return csinc(Rd, 31, 31, Cond(uint32_t(C) ^ 1));
}
static uint32_t adrEnc(unsigned Op, unsigned Rd, int64_t Imm21) {
  assert(Imm21 >= -(1 << 20) && Imm21 < (1 << 20) && "ADR out of range");
  uint32_t I = uint32_t(Imm21) & 0x1fffff;
  return field(Op, 31, 31) | field(I & 3, 30, 29) | field(0x10, 28, 24) |
         field(I >> 2, 23, 5) | field(Rd, 4, 0);
}
uint32_t adr(unsigned Rd, int64_t ByteOff) { return adrEnc(0, Rd, ByteOff); }
uint32_t adrp(unsigned Rd, int64_t PageOff) {
  return adrEnc(1, Rd, PageOff);
}

static uint32_t ldstImm(unsigned Size, unsigned Opc, unsigned Rt, unsigned Rn,
                        uint16_t Imm) {
  assert(Imm < (1 << 12) && "load/store immediate out of range");
  return field(Size, 31, 30) | field(7, 29, 27) | field(1, 25, 24) |
         field(Opc, 23, 22) | field(Imm, 21, 10) | field(Rn, 9, 5) |
         field(Rt, 4, 0);
}
uint32_t ldrImm(unsigned Size, unsigned Rt, unsigned Rn, uint16_t ImmScaled) {
  return ldstImm(Size, 1, Rt, Rn, ImmScaled);
}
uint32_t strImm(unsigned Size, unsigned Rt, unsigned Rn, uint16_t ImmScaled) {
  return ldstImm(Size, 0, Rt, Rn, ImmScaled);
}
static uint32_t ldstReg(unsigned Size, unsigned Opc, unsigned Rt, unsigned Rn,
                        unsigned Rm, bool Scale) {
  return field(Size, 31, 30) | field(7, 29, 27) | field(Opc, 23, 22) |
         field(1, 21, 21) | field(Rm, 20, 16) | field(3, 15, 13) |
         field(Scale ? 1 : 0, 12, 12) | field(2, 11, 10) | field(Rn, 9, 5) |
         field(Rt, 4, 0);
}
uint32_t ldrReg(unsigned Size, unsigned Rt, unsigned Rn, unsigned Rm,
                bool ScaleOffset) {
  return ldstReg(Size, 1, Rt, Rn, Rm, ScaleOffset);
}
uint32_t strReg(unsigned Size, unsigned Rt, unsigned Rn, unsigned Rm,
                bool ScaleOffset) {
  return ldstReg(Size, 0, Rt, Rn, Rm, ScaleOffset);
}

uint32_t cbz(unsigned Rt, int64_t ByteOff) {
  return field(1, 31, 31) | field(0x1a, 30, 25) |
         field(imm19(ByteOff), 23, 5) | field(Rt, 4, 0);
}
uint32_t cbnz(unsigned Rt, int64_t ByteOff) {
  return cbz(Rt, ByteOff) | field(1, 24, 24);
}
uint32_t tbz(unsigned Rt, unsigned Bit, int64_t ByteOff) {
  assert(Bit < 64 && "bit number out of range");
  return field(Bit >> 5, 31, 31) | field(0x1b, 30, 25) |
         field(Bit & 31, 23, 19) | field(imm14(ByteOff), 18, 5) |
         field(Rt, 4, 0);
}
uint32_t tbnz(unsigned Rt, unsigned Bit, int64_t ByteOff) {
  return tbz(Rt, Bit, ByteOff) | field(1, 24, 24);
}
uint32_t bcond(Cond C, int64_t ByteOff) {
  return field(0x54, 31, 24) | field(imm19(ByteOff), 23, 5) |
         field(uint32_t(C), 3, 0);
}
uint32_t b(int64_t ByteOff) {
  return field(0x5, 30, 26) | imm26(ByteOff);
}
uint32_t bl(int64_t ByteOff) {
  return field(1, 31, 31) | field(0x5, 30, 26) | imm26(ByteOff);
}
static uint32_t branchReg(unsigned Opc, unsigned Rn) {
  return field(0x6b, 31, 25) | field(Opc, 24, 21) | field(0x1f, 20, 16) |
         field(Rn, 9, 5);
}
uint32_t br(unsigned Rn) { return branchReg(0, Rn); }
uint32_t blr(unsigned Rn) { return branchReg(1, Rn); }
uint32_t ret(unsigned Rn) { return branchReg(2, Rn); }
uint32_t eret() { return branchReg(4, 31); }
uint32_t hvc(uint16_t Imm16) {
  return field(0xd4, 31, 24) | field(Imm16, 20, 5) | field(2, 1, 0);
}
uint32_t nop() { return 0xd503201f; }
uint32_t msr(SysReg R, unsigned Rt) {
  return field(0x354, 31, 22) | field(uint32_t(R), 20, 5) | field(Rt, 4, 0);
}
uint32_t mrs(unsigned Rt, SysReg R) {
  return field(0x354, 31, 22) | field(1, 21, 21) |
         field(uint32_t(R), 20, 5) | field(Rt, 4, 0);
}

} // namespace islaris::arch::aarch64::enc

void Asm::movImm64(unsigned Rd, uint64_t V) {
  bool First = true;
  for (unsigned Hw = 0; Hw < 4; ++Hw) {
    uint16_t Chunk = uint16_t(V >> (16 * Hw));
    if (Chunk == 0 && !(First && Hw == 3))
      continue;
    if (First) {
      put(enc::movz(Rd, Chunk, Hw));
      First = false;
    } else {
      put(enc::movk(Rd, Chunk, Hw));
    }
  }
  if (First)
    put(enc::movz(Rd, 0, 0));
}
