//===- arch/RiscV.cpp - RV64 encoders -------------------------------------------===//

#include "arch/RiscV.h"

using namespace islaris;
using namespace islaris::arch::rv64;

unsigned islaris::arch::rv64::regWidth(const itl::Reg &) { return 64; }

namespace islaris::arch::rv64::enc {

static uint32_t rtype(unsigned F7, unsigned Rs2, unsigned Rs1, unsigned F3,
                      unsigned Rd, unsigned Op) {
  assert(Rd < 32 && Rs1 < 32 && Rs2 < 32 && "bad register operand");
  return F7 << 25 | Rs2 << 20 | Rs1 << 15 | F3 << 12 | Rd << 7 | Op;
}
static uint32_t itype(int32_t Imm, unsigned Rs1, unsigned F3, unsigned Rd,
                      unsigned Op) {
  assert(Imm >= -2048 && Imm < 2048 && "I-immediate out of range");
  return uint32_t(Imm & 0xfff) << 20 | Rs1 << 15 | F3 << 12 | Rd << 7 | Op;
}
static uint32_t stype(int32_t Imm, unsigned Rs2, unsigned Rs1, unsigned F3,
                      unsigned Op) {
  assert(Imm >= -2048 && Imm < 2048 && "S-immediate out of range");
  uint32_t I = uint32_t(Imm & 0xfff);
  return (I >> 5) << 25 | Rs2 << 20 | Rs1 << 15 | F3 << 12 |
         (I & 0x1f) << 7 | Op;
}
static uint32_t btype(int64_t ByteOff, unsigned Rs2, unsigned Rs1,
                      unsigned F3) {
  assert(ByteOff % 2 == 0 && ByteOff >= -4096 && ByteOff < 4096 &&
         "B-offset out of range");
  uint32_t I = uint32_t(ByteOff) & 0x1fff;
  return ((I >> 12) & 1) << 31 | ((I >> 5) & 0x3f) << 25 | Rs2 << 20 |
         Rs1 << 15 | F3 << 12 | ((I >> 1) & 0xf) << 8 | ((I >> 11) & 1) << 7 |
         0b1100011;
}

uint32_t lui(unsigned Rd, uint32_t Imm20) {
  assert(Imm20 < (1u << 20) && "U-immediate out of range");
  return Imm20 << 12 | Rd << 7 | 0b0110111;
}
uint32_t auipc(unsigned Rd, uint32_t Imm20) {
  assert(Imm20 < (1u << 20) && "U-immediate out of range");
  return Imm20 << 12 | Rd << 7 | 0b0010111;
}
uint32_t addi(unsigned Rd, unsigned Rs1, int32_t Imm12) {
  return itype(Imm12, Rs1, 0b000, Rd, 0b0010011);
}
uint32_t xori(unsigned Rd, unsigned Rs1, int32_t Imm12) {
  return itype(Imm12, Rs1, 0b100, Rd, 0b0010011);
}
uint32_t ori(unsigned Rd, unsigned Rs1, int32_t Imm12) {
  return itype(Imm12, Rs1, 0b110, Rd, 0b0010011);
}
uint32_t andi(unsigned Rd, unsigned Rs1, int32_t Imm12) {
  return itype(Imm12, Rs1, 0b111, Rd, 0b0010011);
}
uint32_t sltiu(unsigned Rd, unsigned Rs1, int32_t Imm12) {
  return itype(Imm12, Rs1, 0b011, Rd, 0b0010011);
}
uint32_t slli(unsigned Rd, unsigned Rs1, unsigned Sh) {
  assert(Sh < 64 && "shift out of range");
  return itype(int32_t(Sh), Rs1, 0b001, Rd, 0b0010011);
}
uint32_t srli(unsigned Rd, unsigned Rs1, unsigned Sh) {
  assert(Sh < 64 && "shift out of range");
  return itype(int32_t(Sh), Rs1, 0b101, Rd, 0b0010011);
}
uint32_t srai(unsigned Rd, unsigned Rs1, unsigned Sh) {
  assert(Sh < 64 && "shift out of range");
  return itype(int32_t(Sh) | 0x400, Rs1, 0b101, Rd, 0b0010011);
}
uint32_t add(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return rtype(0, Rs2, Rs1, 0b000, Rd, 0b0110011);
}
uint32_t sub(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return rtype(0b0100000, Rs2, Rs1, 0b000, Rd, 0b0110011);
}
uint32_t sltu(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return rtype(0, Rs2, Rs1, 0b011, Rd, 0b0110011);
}
uint32_t xorr(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return rtype(0, Rs2, Rs1, 0b100, Rd, 0b0110011);
}
uint32_t orr(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return rtype(0, Rs2, Rs1, 0b110, Rd, 0b0110011);
}
uint32_t andr(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return rtype(0, Rs2, Rs1, 0b111, Rd, 0b0110011);
}
uint32_t srl(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return rtype(0, Rs2, Rs1, 0b101, Rd, 0b0110011);
}
uint32_t sll(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return rtype(0, Rs2, Rs1, 0b001, Rd, 0b0110011);
}
uint32_t lb(unsigned Rd, unsigned Rs1, int32_t Imm12) {
  return itype(Imm12, Rs1, 0b000, Rd, 0b0000011);
}
uint32_t lbu(unsigned Rd, unsigned Rs1, int32_t Imm12) {
  return itype(Imm12, Rs1, 0b100, Rd, 0b0000011);
}
uint32_t lw(unsigned Rd, unsigned Rs1, int32_t Imm12) {
  return itype(Imm12, Rs1, 0b010, Rd, 0b0000011);
}
uint32_t ld(unsigned Rd, unsigned Rs1, int32_t Imm12) {
  return itype(Imm12, Rs1, 0b011, Rd, 0b0000011);
}
uint32_t sb(unsigned Rs2, unsigned Rs1, int32_t Imm12) {
  return stype(Imm12, Rs2, Rs1, 0b000, 0b0100011);
}
uint32_t sw(unsigned Rs2, unsigned Rs1, int32_t Imm12) {
  return stype(Imm12, Rs2, Rs1, 0b010, 0b0100011);
}
uint32_t sd(unsigned Rs2, unsigned Rs1, int32_t Imm12) {
  return stype(Imm12, Rs2, Rs1, 0b011, 0b0100011);
}
uint32_t beq(unsigned Rs1, unsigned Rs2, int64_t ByteOff) {
  return btype(ByteOff, Rs2, Rs1, 0b000);
}
uint32_t bne(unsigned Rs1, unsigned Rs2, int64_t ByteOff) {
  return btype(ByteOff, Rs2, Rs1, 0b001);
}
uint32_t blt(unsigned Rs1, unsigned Rs2, int64_t ByteOff) {
  return btype(ByteOff, Rs2, Rs1, 0b100);
}
uint32_t bge(unsigned Rs1, unsigned Rs2, int64_t ByteOff) {
  return btype(ByteOff, Rs2, Rs1, 0b101);
}
uint32_t bltu(unsigned Rs1, unsigned Rs2, int64_t ByteOff) {
  return btype(ByteOff, Rs2, Rs1, 0b110);
}
uint32_t bgeu(unsigned Rs1, unsigned Rs2, int64_t ByteOff) {
  return btype(ByteOff, Rs2, Rs1, 0b111);
}
uint32_t jal(unsigned Rd, int64_t ByteOff) {
  assert(ByteOff % 2 == 0 && ByteOff >= -(1 << 20) && ByteOff < (1 << 20) &&
         "J-offset out of range");
  uint32_t I = uint32_t(ByteOff) & 0x1fffff;
  return ((I >> 20) & 1) << 31 | ((I >> 1) & 0x3ff) << 21 |
         ((I >> 11) & 1) << 20 | ((I >> 12) & 0xff) << 12 | Rd << 7 |
         0b1101111;
}
uint32_t jalr(unsigned Rd, unsigned Rs1, int32_t Imm12) {
  return itype(Imm12, Rs1, 0b000, Rd, 0b1100111);
}
uint32_t addiw(unsigned Rd, unsigned Rs1, int32_t Imm12) {
  return itype(Imm12, Rs1, 0b000, Rd, 0b0011011);
}
uint32_t slliw(unsigned Rd, unsigned Rs1, unsigned Sh) {
  assert(Sh < 32 && "W-shift out of range");
  return itype(int32_t(Sh), Rs1, 0b001, Rd, 0b0011011);
}
uint32_t srliw(unsigned Rd, unsigned Rs1, unsigned Sh) {
  assert(Sh < 32 && "W-shift out of range");
  return itype(int32_t(Sh), Rs1, 0b101, Rd, 0b0011011);
}
uint32_t sraiw(unsigned Rd, unsigned Rs1, unsigned Sh) {
  assert(Sh < 32 && "W-shift out of range");
  return itype(int32_t(Sh) | 0x400, Rs1, 0b101, Rd, 0b0011011);
}
uint32_t addw(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return rtype(0, Rs2, Rs1, 0b000, Rd, 0b0111011);
}
uint32_t subw(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return rtype(0b0100000, Rs2, Rs1, 0b000, Rd, 0b0111011);
}
uint32_t sllw(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return rtype(0, Rs2, Rs1, 0b001, Rd, 0b0111011);
}
uint32_t srlw(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return rtype(0, Rs2, Rs1, 0b101, Rd, 0b0111011);
}
uint32_t sraw(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return rtype(0b0100000, Rs2, Rs1, 0b101, Rd, 0b0111011);
}

} // namespace islaris::arch::rv64::enc
