//===- validation/Validator.h - Trace translation validation ---*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post-hoc validation of Isla-generated traces against the model's
/// independent reference semantics (§5, Theorem 2).  The paper proves, in
/// Coq, that each trace is refined by the Sail-generated monadic model; our
/// substitution keeps the same trust story with executable artifacts: the
/// concrete mini-Sail interpreter (written independently of the symbolic
/// executor) is the reference, and each trace path is checked against it
/// with solver-generated witness states:
///
///  1. enumerate the linear paths of the trace and their SMT conditions
///     (asserts, assumes, assume-regs);
///  2. for each path, ask the solver for a model and reconstruct a concrete
///     initial machine state from the trace's register/memory read events;
///  3. run the concrete model interpreter and the ITL operational semantics
///     from that state and require identical final states and visible
///     labels (and that the ITL run never reaches BOTTOM);
///  4. repeat with randomized states for additional coverage.
///
/// A disagreement on any path is a bug in the symbolic executor, the trace
/// simplifier, or the solver — exactly what Theorem 2 guards against.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_VALIDATION_VALIDATOR_H
#define ISLARIS_VALIDATION_VALIDATOR_H

#include "isla/Executor.h"
#include "itl/OpSem.h"
#include "sail/Ast.h"
#include "smt/Solver.h"
#include "support/Diag.h"
#include "support/Guard.h"

namespace islaris::validation {

/// Outcome of validating one instruction trace.
struct ValidationResult {
  bool Ok = false;
  std::string Error;
  /// Structured failure: distinguishes a genuine disagreement (the
  /// Theorem 2 alarm) from a resource guard firing (deadline, budget,
  /// cancellation) — the latter leaves the validation inconclusive, not
  /// failed.
  support::Diag D;
  unsigned Paths = 0;        ///< Linear paths in the trace.
  unsigned PathsCovered = 0; ///< Paths exercised with a solver witness.
  unsigned Trials = 0;       ///< Total concrete-vs-trace comparisons run.
};

/// Validates \p Trace (generated for \p Opcode under \p A) against the
/// concrete interpretation of \p M.  \p PcName is the architecture's PC
/// register.  \p RandomTrials extra randomized states are checked on top
/// of the per-path witnesses.
///
/// Resource guards: \p Limits (null = the ambient support::RunLimits)
/// bounds the internal solver per check() and, via RunLimits::InstrSeconds,
/// the whole validation wall clock; \p Cancel cancels cooperatively between
/// trials and inside solver checks.  A fired guard returns !Ok with the
/// matching infrastructure Diag code.
ValidationResult validateInstruction(
    const sail::Model &M, smt::TermBuilder &TB, uint32_t Opcode,
    const isla::Assumptions &A, const itl::Trace &Trace,
    const std::string &PcName, unsigned RandomTrials = 8, uint64_t Seed = 1,
    const support::RunLimits *Limits = nullptr,
    support::CancelToken Cancel = support::CancelToken());

} // namespace islaris::validation

#endif // ISLARIS_VALIDATION_VALIDATOR_H
