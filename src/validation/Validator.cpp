//===- validation/Validator.cpp - Trace translation validation -----------------===//

#include "validation/Validator.h"

#include "sail/Interpreter.h"
#include "smt/Evaluator.h"

#include <chrono>
#include <random>

using namespace islaris;
using namespace islaris::validation;
using islaris::itl::Event;
using islaris::itl::EventKind;
using islaris::itl::Label;
using islaris::itl::MachineState;
using islaris::itl::Reg;
using islaris::itl::Trace;
using smt::Term;
using smt::Value;

namespace {

/// Deterministic memoizing MMIO oracle shared by the concrete and ITL
/// runs so both observe the same device values.
class MemoOracle : public itl::MmioOracle {
public:
  explicit MemoOracle(uint64_t Seed) : Rng(Seed) {}
  BitVec mmioRead(uint64_t Addr, unsigned NBytes) override {
    auto Key = std::make_pair(Addr, NBytes);
    auto It = Memo.find(Key);
    if (It != Memo.end())
      return It->second;
    BitVec V = BitVec(NBytes * 8, Rng());
    Memo.emplace(Key, V);
    return V;
  }

private:
  struct H {
    size_t operator()(const std::pair<uint64_t, unsigned> &P) const {
      return std::hash<uint64_t>()(P.first) * 31 + P.second;
    }
  };
  std::mt19937_64 Rng;
  std::unordered_map<std::pair<uint64_t, unsigned>, BitVec, H> Memo;
};

/// Flattens the trace tree into its linear paths.
void collectPaths(const Trace &T, std::vector<const Event *> Prefix,
                  std::vector<std::vector<const Event *>> &Out) {
  for (const Event &E : T.Events)
    Prefix.push_back(&E);
  if (!T.hasCases()) {
    Out.push_back(std::move(Prefix));
    return;
  }
  for (const Trace &Sub : T.Cases)
    collectPaths(Sub, Prefix, Out);
}

/// A fully initialized random machine state covering every register the
/// model declares.
MachineState baseState(const sail::Model &M, const std::string &PcName,
                       std::mt19937_64 &Rng) {
  MachineState S;
  S.PcReg = PcName;
  for (const sail::RegisterDecl &R : M.Registers) {
    if (R.IsStruct) {
      for (const auto &[F, W] : R.Fields)
        S.setReg(Reg(R.Name, F), Value(BitVec(W, Rng())));
    } else {
      S.setReg(Reg(R.Name), Value(BitVec(R.Width, Rng())));
    }
  }
  // Keep the PC sane (aligned, away from the address-space edges).
  S.setReg(Reg(PcName), Value(BitVec(64, (Rng() & 0xfffffff0ull) + 0x10000)));
  return S;
}

/// Compares a concrete run against all ITL paths: no BOTTOM/STUCK, and
/// some path reproduces the concrete final state and labels.
bool agree(const MachineState &ConcreteFinal,
           const std::vector<Label> &ConcreteLabels,
           const std::vector<itl::PathResult> &TracePaths,
           std::string &Error) {
  for (const auto &P : TracePaths) {
    if (P.Out == itl::Outcome::Bottom || P.Out == itl::Outcome::Stuck) {
      Error = "trace path reached " +
              std::string(P.Out == itl::Outcome::Bottom ? "BOTTOM" : "STUCK") +
              ": " + P.Reason;
      return false;
    }
  }
  for (const auto &P : TracePaths) {
    if (P.Labels.size() != ConcreteLabels.size())
      continue;
    bool LabelsEq = true;
    for (size_t I = 0; I < P.Labels.size(); ++I)
      LabelsEq = LabelsEq && P.Labels[I] == ConcreteLabels[I];
    if (!LabelsEq)
      continue;
    if (P.Final.Regs.size() != ConcreteFinal.Regs.size())
      continue;
    bool RegsEq = true;
    for (const auto &[R, V] : ConcreteFinal.Regs) {
      const Value *PV = P.Final.getReg(R);
      RegsEq = RegsEq && PV && *PV == V;
    }
    if (!RegsEq)
      continue;
    if (P.Final.Mem != ConcreteFinal.Mem)
      continue;
    return true;
  }
  Error = "no trace path reproduces the concrete execution";
  return false;
}

/// Runs one concrete-vs-trace comparison from \p Init.
bool runComparison(const sail::Model &M, smt::TermBuilder &TB,
                   uint32_t Opcode, const Trace &T, MachineState Init,
                   uint64_t OracleSeed, std::string &Error) {
  MemoOracle OracleA(OracleSeed), OracleB(OracleSeed);
  MachineState ForModel = Init;
  sail::Interpreter CI(M, &OracleA);
  auto CR = CI.callFunction("decode", {Value(BitVec(32, Opcode))}, ForModel);
  if (!CR.Ok) {
    Error = "concrete model raised an exception the trace does not have: " +
            CR.Error;
    return false;
  }
  itl::Interpreter TI(TB, &OracleB);
  auto Paths = TI.runTrace(T, std::move(Init));
  return agree(ForModel, CI.labels(), Paths, Error);
}

} // namespace

ValidationResult islaris::validation::validateInstruction(
    const sail::Model &M, smt::TermBuilder &TB, uint32_t Opcode,
    const isla::Assumptions &A, const Trace &T, const std::string &PcName,
    unsigned RandomTrials, uint64_t Seed, const support::RunLimits *Limits,
    support::CancelToken Cancel) {
  using support::Diag;
  using support::ErrorCode;
  ValidationResult Res;
  std::mt19937_64 Rng(Seed * 0x9e3779b97f4a7c15ull + 1);

  std::vector<std::vector<const Event *>> Paths;
  collectPaths(T, {}, Paths);
  Res.Paths = unsigned(Paths.size());

  smt::Solver Solver(TB);

  // Resource guards (ROADMAP follow-up): the harness's RunLimits bound the
  // internal solver per check(), InstrSeconds caps the whole validation's
  // wall clock, and the CancelToken is polled between trials (the solver
  // polls it inside checks).
  support::RunLimits L = Limits ? *Limits : support::ambientRunLimits();
  smt::SolverLimits SL;
  SL.MaxConflicts = L.SolverConflicts;
  SL.MaxPropagations = L.SolverPropagations;
  SL.MaxSeconds = L.SolverCheckSeconds;
  SL.Cancel = Cancel;
  Solver.setLimits(SL);
  auto Start = std::chrono::steady_clock::now();
  auto guardFired = [&]() {
    if (Cancel.cancelled()) {
      Res.D = Diag::error(ErrorCode::Cancelled, "validation",
                          "validation cancelled");
      Res.Error = Res.D.Message;
      return true;
    }
    if (L.InstrSeconds > 0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
                .count() > L.InstrSeconds) {
      Res.D = Diag::error(ErrorCode::DeadlineExceeded, "validation",
                          "validation deadline exceeded");
      Res.Error = Res.D.Message;
      return true;
    }
    return false;
  };

  // Per-path witness states.
  for (const auto &Path : Paths) {
    if (guardFired())
      return Res;
    // Gather the path condition and the read bindings.
    std::vector<const Term *> Cond;
    std::vector<std::pair<Reg, const Term *>> RegReads;
    std::vector<std::pair<const Term *, const Term *>> MemReads; // (v, addr)
    std::vector<unsigned> MemReadSizes;
    std::unordered_map<Reg, bool, itl::RegHash> SeenReg;
    for (const Event *E : Path) {
      switch (E->K) {
      case EventKind::Assert:
      case EventKind::Assume:
        Cond.push_back(E->Expr);
        break;
      case EventKind::ReadReg:
        if (E->Val->isVar() && !SeenReg[E->R]) {
          RegReads.emplace_back(E->R, E->Val);
          SeenReg[E->R] = true;
        }
        break;
      case EventKind::ReadMem:
        MemReads.emplace_back(E->Val, E->Addr);
        MemReadSizes.push_back(E->NBytes);
        break;
      default:
        break;
      }
    }
    if (Solver.check(Cond) != smt::Result::Sat) {
      // Unreachable under the recorded conditions alone; executors only
      // emit feasible paths, so treat as covered-vacuous.
      ++Res.PathsCovered;
      continue;
    }
    // Model values for every variable mentioned on the path.
    smt::Env Env;
    auto addVarsOf = [&](const Term *X) {
      for (const Term *V : smt::collectVars(X))
        if (!Env.count(V->varId()))
          Env[V->varId()] = Solver.modelValue(V);
    };
    for (const Term *C : Cond)
      addVarsOf(C);
    for (const auto &[R, V] : RegReads)
      addVarsOf(V);
    for (size_t I = 0; I < MemReads.size(); ++I) {
      addVarsOf(MemReads[I].first);
      addVarsOf(MemReads[I].second);
    }

    MachineState Init = baseState(M, PcName, Rng);
    for (const auto &[R, C] : A.Concrete)
      Init.setReg(R, Value(C));
    for (const auto &[R, V] : RegReads) {
      auto It = Env.find(V->varId());
      if (It != Env.end())
        Init.setReg(R, It->second);
    }
    bool Consistent = true;
    for (size_t I = 0; I < MemReads.size(); ++I) {
      auto AV = smt::evaluate(MemReads[I].second, Env);
      auto DV = smt::evaluate(MemReads[I].first, Env);
      if (!AV || !DV || !AV->asBitVec().fitsUInt64()) {
        Consistent = false;
        break;
      }
      uint64_t Addr = AV->asBitVec().toUInt64();
      std::vector<uint8_t> Bytes = DV->asBitVec().toBytes();
      for (size_t B = 0; B < Bytes.size(); ++B) {
        auto It = Init.Mem.find(Addr + B);
        if (It != Init.Mem.end() && It->second != Bytes[B]) {
          Consistent = false; // overlapping reads with conflicting values
          break;
        }
        Init.Mem[Addr + B] = Bytes[B];
      }
    }
    if (!Consistent)
      continue;

    std::string Error;
    ++Res.Trials;
    if (!runComparison(M, TB, Opcode, T, std::move(Init), Seed ^ Rng(),
                       Error)) {
      Res.Error = "path witness: " + Error;
      Res.D = Diag::error(ErrorCode::ModelError, "validation", Res.Error);
      return Res;
    }
    ++Res.PathsCovered;
  }

  // Randomized trials (respecting the concrete assumptions; constrained
  // registers get a solver witness of their constraint).
  for (unsigned Trial = 0; Trial < RandomTrials; ++Trial) {
    if (guardFired())
      return Res;
    MachineState Init = baseState(M, PcName, Rng);
    for (const auto &[R, C] : A.Concrete)
      Init.setReg(R, Value(C));
    for (const auto &[R, F] : A.Constraints) {
      const Value *Cur = Init.getReg(R);
      assert(Cur && "constraint on an undeclared register");
      const Term *V = TB.freshVar(
          smt::Sort::bitvec(Cur->asBitVec().width()), "wit");
      if (Solver.check({F(TB, V)}) == smt::Result::Sat)
        Init.setReg(R, Solver.modelValue(V));
    }
    std::string Error;
    ++Res.Trials;
    if (!runComparison(M, TB, Opcode, T, std::move(Init), Seed ^ Rng(),
                       Error)) {
      Res.Error = "random trial: " + Error;
      Res.D = Diag::error(ErrorCode::ModelError, "validation", Res.Error);
      return Res;
    }
  }

  Res.Ok = true;
  return Res;
}
