//===- itl/OpSem.cpp - ITL operational semantics ------------------------------===//

#include "itl/OpSem.h"

using namespace islaris;
using namespace islaris::itl;
using smt::Value;

std::string Label::toString() const {
  switch (K) {
  case Kind::Read:
    return "R(" + Addr.toHexString() + ", " + Data.toString() + ")";
  case Kind::Write:
    return "W(" + Addr.toHexString() + ", " + Data.toString() + ")";
  case Kind::End:
    return "E(" + Addr.toHexString() + ")";
  }
  return "<label>";
}

bool MachineState::isMapped(uint64_t Addr, unsigned N) const {
  for (unsigned I = 0; I < N; ++I)
    if (!Mem.count(Addr + I))
      return false;
  return true;
}

BitVec MachineState::loadBytes(uint64_t Addr, unsigned N) const {
  assert(N >= 1 && isMapped(Addr, N) && "loadBytes of unmapped memory");
  std::vector<uint8_t> Bytes(N);
  for (unsigned I = 0; I < N; ++I)
    Bytes[I] = Mem.at(Addr + I);
  return BitVec::fromBytes(Bytes);
}

namespace {

/// Outcome of trying to evaluate an event operand.
struct EvalOut {
  bool Ok = false;
  Value V;
};

EvalOut tryEval(const smt::Term *T, const smt::Env &Env) {
  auto R = smt::evaluate(T, Env);
  if (!R)
    return {};
  return {true, *R};
}

} // namespace

void Interpreter::fetchNext(MachineState Sigma, std::vector<Label> Labels,
                            unsigned Fuel, std::vector<PathResult> &Out) {
  // step-nil / step-nil-end: read the PC, fetch the instruction trace.
  const Value *Pc = Sigma.getReg(Reg(Sigma.PcReg));
  if (!Pc || !Pc->isBitVec()) {
    Out.push_back({Outcome::Bottom, std::move(Labels), std::move(Sigma),
                   "PC register " + Sigma.PcReg + " is not a bitvector"});
    return;
  }
  if (!Pc->asBitVec().fitsUInt64()) {
    Out.push_back({Outcome::Bottom, std::move(Labels), std::move(Sigma),
                   "PC out of addressable range"});
    return;
  }
  uint64_t Addr = Pc->asBitVec().toUInt64();
  auto It = Sigma.Instrs.find(Addr);
  if (It == Sigma.Instrs.end()) {
    // step-nil-end: visible termination event E(a), configuration TOP.
    Labels.push_back(Label::end(BitVec(64, Addr)));
    Out.push_back({Outcome::Top, std::move(Labels), std::move(Sigma), ""});
    return;
  }
  if (Fuel == 0) {
    Out.push_back(
        {Outcome::OutOfFuel, std::move(Labels), std::move(Sigma), ""});
    return;
  }
  execTrace(*It->second, 0, std::move(Sigma), smt::Env(), std::move(Labels),
            Fuel - 1, /*FetchAtEnd=*/true, Out);
}

void Interpreter::execTrace(const Trace &T, size_t EventIdx,
                            MachineState Sigma, smt::Env Env,
                            std::vector<Label> Labels, unsigned Fuel,
                            bool FetchAtEnd, std::vector<PathResult> &Out) {
  auto bottom = [&](const std::string &Why) {
    Out.push_back({Outcome::Bottom, Labels, Sigma, Why});
  };
  auto top = [&]() { Out.push_back({Outcome::Top, Labels, Sigma, ""}); };
  auto stuck = [&](const std::string &Why) {
    Out.push_back({Outcome::Stuck, Labels, Sigma, Why});
  };

  for (size_t I = EventIdx; I < T.Events.size(); ++I) {
    const Event &E = T.Events[I];
    switch (E.K) {
    case EventKind::DeclareConst:
      // step-declare-const: the variable stays unbound until determined.
      break;

    case EventKind::DefineConst: {
      // step-define-const: e must evaluate (no forward references).
      EvalOut V = tryEval(E.Expr, Env);
      if (!V.Ok)
        return stuck("define-const of an undetermined expression");
      Env[E.Var->varId()] = V.V;
      break;
    }

    case EventKind::ReadReg: {
      const Value *RV = Sigma.getReg(E.R);
      if (!RV)
        // step-fail: no rule applies when the register is absent.
        return bottom("read of absent register " + E.R.toString());
      if (E.Val->isVar() && !Env.count(E.Val->varId())) {
        // Lazy resolution of step-declare-const: only the binding that
        // makes step-read-reg-eq applicable avoids TOP.
        Env[E.Val->varId()] = *RV;
        break;
      }
      EvalOut V = tryEval(E.Val, Env);
      if (!V.Ok)
        return stuck("read-reg with undetermined value pattern");
      if (V.V != *RV)
        return top(); // step-read-reg-neq
      break;          // step-read-reg-eq
    }

    case EventKind::AssumeReg: {
      // step-assume-reg-true, else step-fail (this is how Isla's
      // assumptions become proof obligations).
      const Value *RV = Sigma.getReg(E.R);
      EvalOut V = tryEval(E.Val, Env);
      if (!V.Ok)
        return stuck("assume-reg with undetermined value");
      if (!RV || V.V != *RV)
        return bottom("assume-reg violated for " + E.R.toString());
      break;
    }

    case EventKind::WriteReg: {
      EvalOut V = tryEval(E.Val, Env);
      if (!V.Ok)
        return stuck("write-reg of undetermined value");
      Sigma.setReg(E.R, V.V);
      break;
    }

    case EventKind::ReadMem: {
      EvalOut A = tryEval(E.Addr, Env);
      if (!A.Ok)
        return stuck("read-mem with undetermined address");
      if (!A.V.asBitVec().fitsUInt64())
        return bottom("read-mem address out of range");
      uint64_t Addr = A.V.asBitVec().toUInt64();
      if (Sigma.isMapped(Addr, E.NBytes)) {
        BitVec Stored = Sigma.loadBytes(Addr, E.NBytes);
        if (E.Val->isVar() && !Env.count(E.Val->varId())) {
          Env[E.Val->varId()] = Value(Stored);
          break; // step-read-mem-eq via the only non-TOP binding
        }
        EvalOut V = tryEval(E.Val, Env);
        if (!V.Ok)
          return stuck("read-mem with undetermined value pattern");
        if (V.V != Value(Stored))
          return top(); // step-read-mem-neq
        break;
      }
      // step-read-mem-event: unmapped memory is a visible MMIO read; the
      // device (oracle) chooses the value.
      BitVec Data;
      if (E.Val->isVar() && !Env.count(E.Val->varId())) {
        if (!Oracle)
          return stuck("MMIO read without an oracle");
        Data = Oracle->mmioRead(Addr, E.NBytes);
        assert(Data.width() == E.NBytes * 8 && "oracle width mismatch");
        Env[E.Val->varId()] = Value(Data);
      } else {
        EvalOut V = tryEval(E.Val, Env);
        if (!V.Ok)
          return stuck("MMIO read with undetermined value pattern");
        Data = V.V.asBitVec();
      }
      Labels.push_back(Label::read(BitVec(64, Addr), Data));
      break;
    }

    case EventKind::WriteMem: {
      EvalOut A = tryEval(E.Addr, Env);
      EvalOut V = tryEval(E.Val, Env);
      if (!A.Ok || !V.Ok)
        return stuck("write-mem with undetermined operands");
      if (!A.V.asBitVec().fitsUInt64())
        return bottom("write-mem address out of range");
      uint64_t Addr = A.V.asBitVec().toUInt64();
      assert(V.V.asBitVec().width() == E.NBytes * 8 &&
             "write-mem width mismatch");
      if (Sigma.isMapped(Addr, E.NBytes)) {
        Sigma.storeBytes(Addr, V.V.asBitVec().toBytes()); // step-write-mem
      } else {
        // step-write-mem-event: visible MMIO write.
        Labels.push_back(Label::write(BitVec(64, Addr), V.V.asBitVec()));
      }
      break;
    }

    case EventKind::Assert: {
      EvalOut V = tryEval(E.Expr, Env);
      if (!V.Ok)
        return stuck("assert of undetermined expression");
      if (!V.V.asBool())
        return top(); // step-assert-false
      break;          // step-assert-true
    }

    case EventKind::Assume: {
      EvalOut V = tryEval(E.Expr, Env);
      if (!V.Ok)
        return stuck("assume of undetermined expression");
      if (!V.V.asBool())
        return bottom("assume violated"); // step-fail
      break;                              // step-assume-true
    }
    }
  }

  if (T.hasCases()) {
    // step-cases: explore every subtrace with the full current state.
    for (const Trace &Sub : T.Cases)
      execTrace(Sub, 0, Sigma, Env, Labels, Fuel, FetchAtEnd, Out);
    return;
  }

  if (FetchAtEnd)
    return fetchNext(std::move(Sigma), std::move(Labels), Fuel, Out);
  Out.push_back({Outcome::Top, std::move(Labels), std::move(Sigma), ""});
}

std::vector<PathResult> Interpreter::runTrace(const Trace &T,
                                              MachineState Sigma) {
  std::vector<PathResult> Out;
  execTrace(T, 0, std::move(Sigma), smt::Env(), {}, 0, /*FetchAtEnd=*/false,
            Out);
  return Out;
}

std::vector<PathResult> Interpreter::runProgram(MachineState Sigma,
                                                unsigned MaxInstrs) {
  std::vector<PathResult> Out;
  fetchNext(std::move(Sigma), {}, MaxInstrs, Out);
  return Out;
}
