//===- itl/Trace.h - Isla trace language AST --------------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Isla trace language (ITL) of Fig. 4:
///
///   j ::= ReadReg(r,v) | WriteReg(r,v) | ReadMem(vd,va,n)
///       | WriteMem(va,vd,n) | AssumeReg(r,v) | DeclareConst(x,tau)
///       | DefineConst(x,e) | Assert(e) | Assume(e)
///   t ::= [] | j :: t | Cases(t1,...,tn)
///
/// Values and expressions are SMT terms (smt::Term).  Traces print in the
/// concrete S-expression syntax of Figs. 3 and 6.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_ITL_TRACE_H
#define ISLARIS_ITL_TRACE_H

#include "smt/Term.h"

#include <string>
#include <vector>

namespace islaris::itl {

/// A register designator r: a base register, optionally a struct field
/// (e.g. PSTATE.EL).  Fig. 4's "rho | rho.f".
struct Reg {
  std::string Base;
  std::string Field; ///< Empty for whole-register access.

  Reg() = default;
  Reg(std::string Base) : Base(std::move(Base)) {}
  Reg(std::string Base, std::string Field)
      : Base(std::move(Base)), Field(std::move(Field)) {}

  bool hasField() const { return !Field.empty(); }
  bool operator==(const Reg &O) const {
    return Base == O.Base && Field == O.Field;
  }
  bool operator!=(const Reg &O) const { return !(*this == O); }
  bool operator<(const Reg &O) const {
    return Base != O.Base ? Base < O.Base : Field < O.Field;
  }

  /// Human-readable "PSTATE.EL" form.
  std::string toString() const {
    return hasField() ? Base + "." + Field : Base;
  }
};

struct RegHash {
  size_t operator()(const Reg &R) const {
    return std::hash<std::string>()(R.Base) * 31 +
           std::hash<std::string>()(R.Field);
  }
};

/// Event kinds j of Fig. 4.
enum class EventKind : uint8_t {
  ReadReg,
  WriteReg,
  ReadMem,
  WriteMem,
  AssumeReg,
  DeclareConst,
  DefineConst,
  Assert,
  Assume,
};

const char *eventKindName(EventKind K);

/// A single trace event.  Field use by kind:
///   ReadReg/WriteReg/AssumeReg: R, Val
///   ReadMem:  Val (=vd), Addr (=va), NBytes
///   WriteMem: Addr (=va), Val (=vd), NBytes
///   DeclareConst: Var
///   DefineConst:  Var, Expr
///   Assert/Assume: Expr
struct Event {
  EventKind K = EventKind::Assert;
  Reg R;
  const smt::Term *Val = nullptr;
  const smt::Term *Addr = nullptr;
  unsigned NBytes = 0;
  const smt::Term *Var = nullptr;
  const smt::Term *Expr = nullptr;

  static Event readReg(Reg R, const smt::Term *V);
  static Event writeReg(Reg R, const smt::Term *V);
  static Event assumeReg(Reg R, const smt::Term *V);
  static Event readMem(const smt::Term *Data, const smt::Term *Addr,
                       unsigned NBytes);
  static Event writeMem(const smt::Term *Addr, const smt::Term *Data,
                        unsigned NBytes);
  static Event declareConst(const smt::Term *Var);
  static Event defineConst(const smt::Term *Var, const smt::Term *E);
  static Event assertE(const smt::Term *E);
  static Event assumeE(const smt::Term *E);

  /// Prints one event in the Fig. 3 S-expression syntax.
  std::string toString() const;
};

/// A trace t: a linear event prefix optionally terminated by a Cases node.
/// An empty Cases vector is the [] terminator.
struct Trace {
  std::vector<Event> Events;
  std::vector<Trace> Cases;

  bool hasCases() const { return !Cases.empty(); }

  /// Total number of events in this trace, including all subtraces (the
  /// "ITL events" column of Fig. 12 counts these).
  unsigned countEvents() const;
  /// Number of linear paths through the trace tree.
  unsigned countPaths() const;

  /// Pretty-prints "(trace ...)" as in Figs. 3 and 6.
  std::string toString() const;
};

} // namespace islaris::itl

#endif // ISLARIS_ITL_TRACE_H
