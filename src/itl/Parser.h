//===- itl/Parser.h - S-expression parser for ITL traces --------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the concrete trace syntax of Figs. 3 and 6 back into Trace values
/// (the inverse of Trace::toString()).  Used by golden tests and by the
/// frontend's trace cache.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_ITL_PARSER_H
#define ISLARIS_ITL_PARSER_H

#include "itl/Trace.h"
#include "smt/TermBuilder.h"

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace islaris::itl {

/// A parsed S-expression: an atom or a list.
struct SExpr {
  std::string Atom; ///< Non-empty iff this is an atom.
  std::vector<SExpr> List;
  bool isAtom() const { return !Atom.empty(); }
  std::string toString() const;
};

/// Tokenizes and parses S-expressions.  Returns nullopt and sets the error
/// string on malformed input.
class SExprParser {
public:
  explicit SExprParser(std::string Text) : Text(std::move(Text)) {}
  std::optional<SExpr> parse();
  /// Parses all top-level S-expressions until end of input.
  std::optional<std::vector<SExpr>> parseAll();
  const std::string &error() const { return Error; }
  /// Offset just past the last consumed token.  Lets callers parse a
  /// leading S-expression header and keep the remainder of the input
  /// verbatim (the trace-cache entry format does this).
  size_t position() const { return Pos; }

private:
  void skipWhitespace();
  bool atEnd() const { return Pos >= Text.size(); }
  std::optional<SExpr> parseOne();

  std::string Text;
  size_t Pos = 0;
  std::string Error;
};

/// Parses ITL traces, creating SMT variables in \p TB as declare-consts are
/// encountered.  Variables are scoped to one parser instance.
class TraceParser {
public:
  explicit TraceParser(smt::TermBuilder &TB) : TB(TB) {}

  /// Parses "(trace ...)" text.  Returns nullopt on error.
  std::optional<Trace> parseTrace(const std::string &Text);
  const std::string &error() const { return Error; }

  /// Variables created while parsing, by source name.
  const std::unordered_map<std::string, const smt::Term *> &vars() const {
    return Vars;
  }

private:
  std::optional<Trace> buildTrace(const SExpr &S);
  std::optional<Event> buildEvent(const SExpr &S);
  const smt::Term *buildTermExpr(const SExpr &S);
  std::optional<smt::Sort> buildSort(const SExpr &S);
  const smt::Term *fail(const std::string &Msg);

  smt::TermBuilder &TB;
  std::unordered_map<std::string, const smt::Term *> Vars;
  std::string Error;
};

} // namespace islaris::itl

#endif // ISLARIS_ITL_PARSER_H
