//===- itl/Trace.cpp - Trace construction and printing ----------------------===//

#include "itl/Trace.h"

using namespace islaris;
using namespace islaris::itl;

const char *islaris::itl::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::ReadReg:
    return "read-reg";
  case EventKind::WriteReg:
    return "write-reg";
  case EventKind::ReadMem:
    return "read-mem";
  case EventKind::WriteMem:
    return "write-mem";
  case EventKind::AssumeReg:
    return "assume-reg";
  case EventKind::DeclareConst:
    return "declare-const";
  case EventKind::DefineConst:
    return "define-const";
  case EventKind::Assert:
    return "assert";
  case EventKind::Assume:
    return "assume";
  }
  return "<unknown>";
}

Event Event::readReg(Reg R, const smt::Term *V) {
  Event E;
  E.K = EventKind::ReadReg;
  E.R = std::move(R);
  E.Val = V;
  return E;
}

Event Event::writeReg(Reg R, const smt::Term *V) {
  Event E;
  E.K = EventKind::WriteReg;
  E.R = std::move(R);
  E.Val = V;
  return E;
}

Event Event::assumeReg(Reg R, const smt::Term *V) {
  Event E;
  E.K = EventKind::AssumeReg;
  E.R = std::move(R);
  E.Val = V;
  return E;
}

Event Event::readMem(const smt::Term *Data, const smt::Term *Addr,
                     unsigned NBytes) {
  Event E;
  E.K = EventKind::ReadMem;
  E.Val = Data;
  E.Addr = Addr;
  E.NBytes = NBytes;
  return E;
}

Event Event::writeMem(const smt::Term *Addr, const smt::Term *Data,
                      unsigned NBytes) {
  Event E;
  E.K = EventKind::WriteMem;
  E.Val = Data;
  E.Addr = Addr;
  E.NBytes = NBytes;
  return E;
}

Event Event::declareConst(const smt::Term *Var) {
  assert(Var->isVar() && "declare-const needs a variable");
  Event E;
  E.K = EventKind::DeclareConst;
  E.Var = Var;
  return E;
}

Event Event::defineConst(const smt::Term *Var, const smt::Term *Ex) {
  assert(Var->isVar() && "define-const needs a variable");
  Event E;
  E.K = EventKind::DefineConst;
  E.Var = Var;
  E.Expr = Ex;
  return E;
}

Event Event::assertE(const smt::Term *Ex) {
  Event E;
  E.K = EventKind::Assert;
  E.Expr = Ex;
  return E;
}

Event Event::assumeE(const smt::Term *Ex) {
  Event E;
  E.K = EventKind::Assume;
  E.Expr = Ex;
  return E;
}

/// Renders a register access path: `|PSTATE| ((_ field |EL|))` or
/// `|SP_EL2| nil`.
static std::string regAccessor(const Reg &R) {
  std::string S = "|" + R.Base + "|";
  if (R.hasField())
    S += " ((_ field |" + R.Field + "|))";
  else
    S += " nil";
  return S;
}

/// Renders a register value, wrapping field reads in the struct syntax of
/// Fig. 3 line 4: `(_ struct (|SP| #b1))`.
static std::string regValue(const Reg &R, const smt::Term *V) {
  if (R.hasField())
    return "(_ struct (|" + R.Field + "| " + V->toString() + "))";
  return V->toString();
}

std::string Event::toString() const {
  std::string S = "(";
  S += eventKindName(K);
  switch (K) {
  case EventKind::ReadReg:
  case EventKind::WriteReg:
  case EventKind::AssumeReg:
    S += " " + regAccessor(R) + " " + regValue(R, Val);
    break;
  case EventKind::ReadMem:
    S += " " + Val->toString() + " " + Addr->toString() + " " +
         std::to_string(NBytes);
    break;
  case EventKind::WriteMem:
    S += " " + Addr->toString() + " " + Val->toString() + " " +
         std::to_string(NBytes);
    break;
  case EventKind::DeclareConst:
    S += " " + Var->varName() + " " + Var->sort().toString();
    break;
  case EventKind::DefineConst:
    S += " " + Var->varName() + " " + Expr->toString();
    break;
  case EventKind::Assert:
  case EventKind::Assume:
    S += " " + Expr->toString();
    break;
  }
  S += ")";
  return S;
}

unsigned Trace::countEvents() const {
  unsigned N = unsigned(Events.size());
  for (const Trace &T : Cases)
    N += T.countEvents();
  return N;
}

unsigned Trace::countPaths() const {
  if (Cases.empty())
    return 1;
  unsigned N = 0;
  for (const Trace &T : Cases)
    N += T.countPaths();
  return N;
}

static void printTrace(const Trace &T, std::string &Out, unsigned Indent) {
  std::string Pad(Indent, ' ');
  Out += Pad + "(trace";
  for (const Event &E : T.Events)
    Out += "\n" + Pad + "  " + E.toString();
  if (T.hasCases()) {
    Out += "\n" + Pad + "  (cases";
    for (const Trace &Sub : T.Cases) {
      Out += "\n";
      printTrace(Sub, Out, Indent + 4);
    }
    Out += ")";
  }
  Out += ")";
}

std::string Trace::toString() const {
  std::string S;
  printTrace(*this, S, 0);
  return S;
}
