//===- itl/OpSem.h - ITL operational semantics ------------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The labeled transition system of Fig. 10 as an executable exhaustive
/// interpreter.  Machine configurations are <t, Sigma>, plus the final
/// configurations TOP (successful termination, written ⊤ in the paper) and
/// BOTTOM (failure, ⊥).  Externally visible labels are reads/writes of
/// unmapped memory (memory-mapped IO) and the end-of-instruction-memory
/// event E(a).
///
/// Non-determinism: the paper resolves DeclareConst by picking any value and
/// letting later ReadReg/ReadMem/Assert events prune wrong picks into TOP.
/// The interpreter implements the equivalent lazy strategy: a declared
/// variable is bound by the first event that determines it (register read,
/// memory read, or MMIO oracle).  Wrong guesses always step to TOP at that
/// determining event, so skipping them is sound and complete for
/// BOTTOM-reachability.  Traces where a declared variable is *used* before
/// being determined are reported as Stuck (Isla never emits such traces;
/// property tests check this).
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_ITL_OPSEM_H
#define ISLARIS_ITL_OPSEM_H

#include "itl/Trace.h"
#include "smt/Evaluator.h"
#include "smt/TermBuilder.h"

#include <map>
#include <unordered_map>

namespace islaris::itl {

/// An externally visible label kappa ::= R(a,vd) | W(a,vd) | E(a).
struct Label {
  enum class Kind : uint8_t { Read, Write, End } K;
  BitVec Addr; ///< 64-bit address a.
  BitVec Data; ///< vd; unused for End.

  static Label read(BitVec A, BitVec D) {
    return {Kind::Read, std::move(A), std::move(D)};
  }
  static Label write(BitVec A, BitVec D) {
    return {Kind::Write, std::move(A), std::move(D)};
  }
  static Label end(BitVec A) { return {Kind::End, std::move(A), BitVec()}; }

  bool operator==(const Label &O) const {
    return K == O.K && Addr == O.Addr && (K == Kind::End || Data == O.Data);
  }
  std::string toString() const;
};

/// The machine state Sigma = (R, I, M).
struct MachineState {
  /// Register map R.  Field-granular: PSTATE.EL and PSTATE.SP are separate
  /// entries (the Sail models read and write banked fields individually).
  std::unordered_map<Reg, smt::Value, RegHash> Regs;
  /// Instruction map I: address -> trace for the instruction at the address.
  std::map<uint64_t, const Trace *> Instrs;
  /// Memory map M: address -> byte.
  std::unordered_map<uint64_t, uint8_t> Mem;
  /// The architecture's program-counter register name ("_PC" for Armv8-A,
  /// "PC" for RISC-V) — the only architecture-specific part of Fig. 10.
  std::string PcReg = "_PC";

  void setReg(const Reg &R, smt::Value V) { Regs[R] = std::move(V); }
  const smt::Value *getReg(const Reg &R) const {
    auto It = Regs.find(R);
    return It == Regs.end() ? nullptr : &It->second;
  }
  /// Writes \p Bytes little-endian at \p Addr.
  void storeBytes(uint64_t Addr, const std::vector<uint8_t> &Bytes) {
    for (size_t I = 0; I < Bytes.size(); ++I)
      Mem[Addr + I] = Bytes[I];
  }
  /// True if all of [Addr, Addr+N) is mapped.
  bool isMapped(uint64_t Addr, unsigned N) const;
  /// Reads N mapped bytes as a bitvector (little-endian, Fig. 10's enc).
  BitVec loadBytes(uint64_t Addr, unsigned N) const;
};

/// Supplies device inputs for reads of unmapped memory (the value b in
/// step-read-mem-event is unconstrained; the environment chooses it).
class MmioOracle {
public:
  virtual ~MmioOracle() = default;
  virtual BitVec mmioRead(uint64_t Addr, unsigned NBytes) = 0;
};

/// How an explored execution path ended.
enum class Outcome : uint8_t {
  Top,       ///< ⊤: successful termination (E(a) or pruned branch).
  Bottom,    ///< ⊥: failure (a violated Assume/AssumeReg or stuck config).
  OutOfFuel, ///< Executed the instruction budget without terminating.
  Stuck,     ///< Unsupported trace shape (use of an undetermined variable).
};

/// One explored execution path.
struct PathResult {
  Outcome Out;
  std::vector<Label> Labels;
  MachineState Final;
  std::string Reason; ///< Diagnostic for Bottom/Stuck paths.
};

/// The exhaustive ITL interpreter.
class Interpreter {
public:
  explicit Interpreter(smt::TermBuilder &TB, MmioOracle *Oracle = nullptr)
      : TB(TB), Oracle(Oracle) {}

  /// Runs a single instruction trace from \p Sigma (no instruction fetch at
  /// the end); returns all explored paths.
  std::vector<PathResult> runTrace(const Trace &T, MachineState Sigma);

  /// Runs the whole-program semantics from configuration <[], Sigma>
  /// (Fig. 10's step-nil starts by fetching via the PC register), executing
  /// at most \p MaxInstrs instructions per path.
  std::vector<PathResult> runProgram(MachineState Sigma, unsigned MaxInstrs);

private:
  void execTrace(const Trace &T, size_t EventIdx, MachineState Sigma,
                 smt::Env Env, std::vector<Label> Labels, unsigned Fuel,
                 bool FetchAtEnd, std::vector<PathResult> &Out);
  void fetchNext(MachineState Sigma, std::vector<Label> Labels, unsigned Fuel,
                 std::vector<PathResult> &Out);

  smt::TermBuilder &TB;
  MmioOracle *Oracle;
};

} // namespace islaris::itl

#endif // ISLARIS_ITL_OPSEM_H
