//===- itl/Parser.cpp - S-expression parser for ITL traces --------------------===//

#include "itl/Parser.h"

#include "support/Parse.h"

using namespace islaris;
using namespace islaris::itl;
using smt::Sort;
using smt::Term;

std::string SExpr::toString() const {
  if (isAtom())
    return Atom;
  std::string S = "(";
  for (size_t I = 0; I < List.size(); ++I) {
    if (I)
      S += " ";
    S += List[I].toString();
  }
  return S + ")";
}

void SExprParser::skipWhitespace() {
  while (!atEnd()) {
    char C = Text[Pos];
    if (C == ';') { // comment to end of line
      while (!atEnd() && Text[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
      return;
    ++Pos;
  }
}

std::optional<SExpr> SExprParser::parseOne() {
  skipWhitespace();
  if (atEnd()) {
    Error = "unexpected end of input";
    return std::nullopt;
  }
  char C = Text[Pos];
  if (C == '(') {
    ++Pos;
    SExpr S;
    while (true) {
      skipWhitespace();
      if (atEnd()) {
        Error = "unterminated list";
        return std::nullopt;
      }
      if (Text[Pos] == ')') {
        ++Pos;
        return S;
      }
      auto Child = parseOne();
      if (!Child)
        return std::nullopt;
      S.List.push_back(std::move(*Child));
    }
  }
  if (C == ')') {
    Error = "unexpected ')'";
    return std::nullopt;
  }
  if (C == '|') {
    size_t End = Text.find('|', Pos + 1);
    if (End == std::string::npos) {
      Error = "unterminated |symbol|";
      return std::nullopt;
    }
    SExpr S;
    S.Atom = Text.substr(Pos, End - Pos + 1); // keep the bars
    Pos = End + 1;
    return S;
  }
  // Plain atom: up to whitespace or paren.
  size_t Start = Pos;
  while (!atEnd()) {
    char D = Text[Pos];
    if (D == '(' || D == ')' || D == ' ' || D == '\t' || D == '\n' ||
        D == '\r')
      break;
    ++Pos;
  }
  SExpr S;
  S.Atom = Text.substr(Start, Pos - Start);
  return S;
}

std::optional<SExpr> SExprParser::parse() { return parseOne(); }

std::optional<std::vector<SExpr>> SExprParser::parseAll() {
  std::vector<SExpr> Result;
  while (true) {
    skipWhitespace();
    if (atEnd())
      return Result;
    auto S = parseOne();
    if (!S)
      return std::nullopt;
    Result.push_back(std::move(*S));
  }
}

//===----------------------------------------------------------------------===//
// Trace building.
//===----------------------------------------------------------------------===//

static std::string stripBars(const std::string &S) {
  if (S.size() >= 2 && S.front() == '|' && S.back() == '|')
    return S.substr(1, S.size() - 2);
  return S;
}

/// Trace text reaches this parser from untrusted bytes (disk cache entries,
/// islarisd wire payloads), so every embedded number must be validated: a
/// 20-digit extract index must become a parse error, not an uncaught
/// std::out_of_range in a server worker thread.  Widths/indices are capped
/// well above any real ISA width but far below allocation-bomb territory.
static constexpr uint64_t MaxTraceNumber = 1u << 16;

static bool parseNum(const SExpr &S, unsigned &Out) {
  return S.isAtom() && support::parseUnsigned(S.Atom, MaxTraceNumber, Out);
}

const Term *TraceParser::fail(const std::string &Msg) {
  if (Error.empty())
    Error = Msg;
  return nullptr;
}

std::optional<Sort> TraceParser::buildSort(const SExpr &S) {
  if (S.isAtom()) {
    if (S.Atom == "Bool")
      return Sort::boolean();
    Error = "unknown sort " + S.Atom;
    return std::nullopt;
  }
  // (_ BitVec N)
  if (S.List.size() == 3 && S.List[0].Atom == "_" &&
      S.List[1].Atom == "BitVec") {
    unsigned W = 0;
    if (!parseNum(S.List[2], W) || W == 0) {
      Error = "bad bitvector width in " + S.toString();
      return std::nullopt;
    }
    return Sort::bitvec(W);
  }
  Error = "unknown sort " + S.toString();
  return std::nullopt;
}

const Term *TraceParser::buildTermExpr(const SExpr &S) {
  if (S.isAtom()) {
    const std::string &A = S.Atom;
    if (A == "true")
      return TB.trueTerm();
    if (A == "false")
      return TB.falseTerm();
    if (A.size() >= 2 && A[0] == '#') {
      BitVec V;
      if (!BitVec::fromString(A, V))
        return fail("bad bitvector literal " + A);
      return TB.constBV(V);
    }
    auto It = Vars.find(A);
    if (It == Vars.end())
      return fail("use of undeclared variable " + A);
    return It->second;
  }

  const std::vector<SExpr> &L = S.List;
  if (L.empty())
    return fail("empty expression");

  // Indexed operators: ((_ extract hi lo) e), ((_ zero_extend n) e), ...
  if (!L[0].isAtom() && L[0].List.size() >= 2 && L[0].List[0].Atom == "_") {
    const std::vector<SExpr> &Idx = L[0].List;
    const std::string &Op = Idx[1].Atom;
    if (Op == "extract" && Idx.size() == 4 && L.size() == 2) {
      unsigned Hi = 0, Lo = 0;
      if (!parseNum(Idx[2], Hi) || !parseNum(Idx[3], Lo) || Lo > Hi)
        return fail("bad extract indices in " + S.toString());
      const Term *E = buildTermExpr(L[1]);
      if (!E)
        return nullptr;
      if (E->sort().isBool() || Hi >= E->sort().width())
        return fail("extract out of range in " + S.toString());
      return TB.extract(Hi, Lo, E);
    }
    if ((Op == "zero_extend" || Op == "sign_extend") && Idx.size() == 3 &&
        L.size() == 2) {
      unsigned N = 0;
      if (!parseNum(Idx[2], N))
        return fail("bad extension width in " + S.toString());
      const Term *E = buildTermExpr(L[1]);
      if (!E)
        return nullptr;
      return Op == "zero_extend" ? TB.zeroExtend(N, E) : TB.signExtend(N, E);
    }
    return fail("unknown indexed operator " + S.toString());
  }

  const std::string &Op = L[0].Atom;
  auto arg = [&](size_t I) { return buildTermExpr(L[I]); };

  if (Op == "not" && L.size() == 2) {
    const Term *A = arg(1);
    return A ? TB.notTerm(A) : nullptr;
  }
  if (Op == "bvnot" && L.size() == 2) {
    const Term *A = arg(1);
    return A ? TB.bvNot(A) : nullptr;
  }
  if (Op == "bvneg" && L.size() == 2) {
    const Term *A = arg(1);
    return A ? TB.bvNeg(A) : nullptr;
  }
  if (Op == "ite" && L.size() == 4) {
    const Term *C = arg(1), *T = arg(2), *E = arg(3);
    return (C && T && E) ? TB.iteTerm(C, T, E) : nullptr;
  }

  // Left-associative n-ary for and/or; binary otherwise.
  auto nary = [&](auto F) -> const Term * {
    if (L.size() < 3)
      return fail("operator " + Op + " needs arguments");
    const Term *Acc = arg(1);
    for (size_t I = 2; Acc && I < L.size(); ++I) {
      const Term *Next = arg(I);
      Acc = Next ? (TB.*F)(Acc, Next) : nullptr;
    }
    return Acc;
  };

  if (Op == "and")
    return nary(&smt::TermBuilder::andTerm);
  if (Op == "or")
    return nary(&smt::TermBuilder::orTerm);
  if (Op == "=>")
    return nary(&smt::TermBuilder::impliesTerm);
  if (Op == "=")
    return nary(&smt::TermBuilder::eqTerm);
  if (Op == "bvadd")
    return nary(&smt::TermBuilder::bvAdd);
  if (Op == "bvsub")
    return nary(&smt::TermBuilder::bvSub);
  if (Op == "bvmul")
    return nary(&smt::TermBuilder::bvMul);
  if (Op == "bvudiv")
    return nary(&smt::TermBuilder::bvUDiv);
  if (Op == "bvurem")
    return nary(&smt::TermBuilder::bvURem);
  if (Op == "bvsdiv")
    return nary(&smt::TermBuilder::bvSDiv);
  if (Op == "bvsrem")
    return nary(&smt::TermBuilder::bvSRem);
  if (Op == "bvand")
    return nary(&smt::TermBuilder::bvAnd);
  if (Op == "bvor")
    return nary(&smt::TermBuilder::bvOr);
  if (Op == "bvxor")
    return nary(&smt::TermBuilder::bvXor);
  if (Op == "bvshl")
    return nary(&smt::TermBuilder::bvShl);
  if (Op == "bvlshr")
    return nary(&smt::TermBuilder::bvLShr);
  if (Op == "bvashr")
    return nary(&smt::TermBuilder::bvAShr);
  if (Op == "bvult")
    return nary(&smt::TermBuilder::bvUlt);
  if (Op == "bvule")
    return nary(&smt::TermBuilder::bvUle);
  if (Op == "bvslt")
    return nary(&smt::TermBuilder::bvSlt);
  if (Op == "bvsle")
    return nary(&smt::TermBuilder::bvSle);
  if (Op == "concat")
    return nary(&smt::TermBuilder::concat);

  return fail("unknown operator " + Op);
}

/// Parses a register value, unwrapping "(_ struct (|F| v))" to v.
static const SExpr *unwrapStruct(const SExpr &S) {
  if (!S.isAtom() && S.List.size() == 3 && S.List[0].Atom == "_" &&
      S.List[1].Atom == "struct" && !S.List[2].isAtom() &&
      S.List[2].List.size() == 2)
    return &S.List[2].List[1];
  return &S;
}

/// Parses the register accessor pair: base symbol plus "nil" or
/// "((_ field |F|))".
static bool parseRegAccessor(const SExpr &BaseS, const SExpr &AccS, Reg &Out) {
  if (!BaseS.isAtom())
    return false;
  Out.Base = stripBars(BaseS.Atom);
  Out.Field.clear();
  if (AccS.isAtom())
    return AccS.Atom == "nil";
  if (AccS.List.size() == 1 && !AccS.List[0].isAtom() &&
      AccS.List[0].List.size() == 3 && AccS.List[0].List[0].Atom == "_" &&
      AccS.List[0].List[1].Atom == "field") {
    Out.Field = stripBars(AccS.List[0].List[2].Atom);
    return true;
  }
  return false;
}

std::optional<Event> TraceParser::buildEvent(const SExpr &S) {
  if (S.isAtom() || S.List.empty() || !S.List[0].isAtom()) {
    Error = "malformed event " + S.toString();
    return std::nullopt;
  }
  const std::string &Head = S.List[0].Atom;
  auto err = [&](const std::string &M) -> std::optional<Event> {
    if (Error.empty())
      Error = M + ": " + S.toString();
    return std::nullopt;
  };

  if (Head == "read-reg" || Head == "write-reg" || Head == "assume-reg") {
    if (S.List.size() != 4)
      return err("register event arity");
    Reg R;
    if (!parseRegAccessor(S.List[1], S.List[2], R))
      return err("bad register accessor");
    const Term *V = buildTermExpr(*unwrapStruct(S.List[3]));
    if (!V)
      return std::nullopt;
    if (Head == "read-reg")
      return Event::readReg(R, V);
    if (Head == "write-reg")
      return Event::writeReg(R, V);
    return Event::assumeReg(R, V);
  }
  if (Head == "read-mem") {
    if (S.List.size() != 4)
      return err("read-mem arity");
    unsigned N = 0;
    if (!parseNum(S.List[3], N))
      return err("bad read-mem byte count");
    const Term *D = buildTermExpr(S.List[1]);
    const Term *A = buildTermExpr(S.List[2]);
    if (!D || !A)
      return std::nullopt;
    return Event::readMem(D, A, N);
  }
  if (Head == "write-mem") {
    if (S.List.size() != 4)
      return err("write-mem arity");
    unsigned N = 0;
    if (!parseNum(S.List[3], N))
      return err("bad write-mem byte count");
    const Term *A = buildTermExpr(S.List[1]);
    const Term *D = buildTermExpr(S.List[2]);
    if (!A || !D)
      return std::nullopt;
    return Event::writeMem(A, D, N);
  }
  if (Head == "declare-const") {
    if (S.List.size() != 3 || !S.List[1].isAtom())
      return err("declare-const arity");
    auto Sort = buildSort(S.List[2]);
    if (!Sort)
      return std::nullopt;
    const std::string &Name = S.List[1].Atom;
    if (Vars.count(Name))
      return err("redeclaration of " + Name);
    const Term *V = TB.freshVar(*Sort, Name);
    Vars[Name] = V;
    return Event::declareConst(V);
  }
  if (Head == "define-const") {
    if (S.List.size() != 3 || !S.List[1].isAtom())
      return err("define-const arity");
    const Term *E = buildTermExpr(S.List[2]);
    if (!E)
      return std::nullopt;
    const std::string &Name = S.List[1].Atom;
    if (Vars.count(Name))
      return err("redefinition of " + Name);
    const Term *V = TB.freshVar(E->sort(), Name);
    Vars[Name] = V;
    return Event::defineConst(V, E);
  }
  if (Head == "assert" || Head == "assume") {
    if (S.List.size() != 2)
      return err("assert/assume arity");
    const Term *E = buildTermExpr(S.List[1]);
    if (!E)
      return std::nullopt;
    return Head == "assert" ? Event::assertE(E) : Event::assumeE(E);
  }
  return err("unknown event kind " + Head);
}

std::optional<Trace> TraceParser::buildTrace(const SExpr &S) {
  if (S.isAtom() || S.List.empty() || S.List[0].Atom != "trace") {
    Error = "expected (trace ...)";
    return std::nullopt;
  }
  Trace T;
  for (size_t I = 1; I < S.List.size(); ++I) {
    const SExpr &Item = S.List[I];
    if (!Item.isAtom() && !Item.List.empty() &&
        Item.List[0].Atom == "cases") {
      if (I + 1 != S.List.size()) {
        Error = "cases must terminate a trace";
        return std::nullopt;
      }
      for (size_t J = 1; J < Item.List.size(); ++J) {
        // Sibling subtraces are separate scopes: Isla reuses variable
        // names across branches (e.g. v38 in both arms of Fig. 6).
        auto Saved = Vars;
        auto Sub = buildTrace(Item.List[J]);
        Vars = std::move(Saved);
        if (!Sub)
          return std::nullopt;
        T.Cases.push_back(std::move(*Sub));
      }
      return T;
    }
    auto E = buildEvent(Item);
    if (!E)
      return std::nullopt;
    T.Events.push_back(std::move(*E));
  }
  return T;
}

std::optional<Trace> TraceParser::parseTrace(const std::string &Text) {
  SExprParser P(Text);
  auto S = P.parse();
  if (!S) {
    Error = P.error();
    return std::nullopt;
  }
  return buildTrace(*S);
}
