//===- frontend/Objdump.h - Annotated objdump input -------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loader for objdump-style disassembly listings.  The paper's frontend
/// consumes "the opcodes in an annotated objdump file" (§3); this parses
/// the common `objdump -d` line shape into an address -> opcode map:
///
///   0000000000400000 <memcpy>:
///     400000:	b40000e2 	cbz	x2, 0x40001c <memcpy+0x1c>
///     400004:	d2800003 	mov	x3, #0x0
///
/// Labels (`<name>:` headers) are retained so specifications can be
/// registered by symbol.  Lines that do not look like code are skipped.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_FRONTEND_OBJDUMP_H
#define ISLARIS_FRONTEND_OBJDUMP_H

#include <cassert>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace islaris::frontend {

/// A parsed disassembly listing.
struct ObjdumpImage {
  std::map<uint64_t, uint32_t> Code;
  std::map<std::string, uint64_t> Symbols;

  /// Address of a symbol, or nullopt when the listing never defined it.
  std::optional<uint64_t> lookup(const std::string &Name) const {
    auto It = Symbols.find(Name);
    if (It == Symbols.end())
      return std::nullopt;
    return It->second;
  }

  /// Address of a symbol; a missing symbol is a harness bug, reported by
  /// assert in Debug and as a defined 0 (never a mapped code address in the
  /// case studies) in Release.  Callers that can recover use lookup().
  uint64_t addrOf(const std::string &Name) const {
    auto A = lookup(Name);
    assert(A && "unknown symbol");
    return A ? *A : 0;
  }
};

/// Parses objdump -d style text.  Returns nullopt and sets \p Error on a
/// malformed code line; unrecognized lines are ignored.
std::optional<ObjdumpImage> parseObjdump(const std::string &Text,
                                         std::string &Error);

} // namespace islaris::frontend

#endif // ISLARIS_FRONTEND_OBJDUMP_H
