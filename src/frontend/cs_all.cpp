//===- frontend/cs_all.cpp - All Fig. 12 rows ------------------------------------===//

#include "frontend/CaseStudies.h"

#include "cache/BatchDriver.h"
#include "cache/SideCondCache.h"
#include "support/FaultInjector.h"

using namespace islaris::frontend;
using islaris::support::Diag;
using islaris::support::ErrorCode;

std::vector<CaseResult> islaris::frontend::runAllCaseStudies() {
  return runAllCaseStudies(SuiteOptions());
}

std::vector<CaseResult>
islaris::frontend::runAllCaseStudies(const SuiteOptions &O) {
  using Runner = CaseResult (*)();
  // Thunks in the paper's row order; defaulted-parameter runners need the
  // wrapping.  Names mirror what each runner stamps into CaseResult::Name,
  // so a study that dies before returning is still attributable.
  static const Runner Runners[] = {
      [] { return runMemcpyArm(); },    [] { return runMemcpyRv(); },
      [] { return runHvc(); },          [] { return runPkvm(); },
      [] { return runUnaligned(); },    [] { return runUart(); },
      [] { return runRbit(); },         [] { return runBinSearchArm(); },
      [] { return runBinSearchRv(); },
  };
  static const char *Names[] = {
      "memcpy",    "memcpy",    "hvc",  "pkvm handler", "unaligned",
      "uart putc", "inline asm", "binary search", "binary search",
  };
  constexpr size_t N = sizeof(Runners) / sizeof(Runners[0]);

  // Install the shared cache as the ambient cache for the whole run so the
  // per-study Verifiers pick it up without signature churn.  Set before the
  // pool spawns and restored after it joins: the pointer itself is not
  // synchronized, only the cache behind it is.  Resource limits and the
  // fault injector follow the same ambient-install/restore protocol.
  cache::TraceCache *Saved = cache::ambientTraceCache();
  cache::setAmbientTraceCache(O.Cache ? O.Cache : Saved);
  cache::SideCondStore *SavedSide = cache::ambientSideCondCache();
  cache::setAmbientSideCondCache(O.SideCond ? O.SideCond : SavedSide);
  support::RunLimits SavedLimits = support::ambientRunLimits();
  support::setAmbientRunLimits(O.Limits);
  isla::ExecEngine SavedEngine = isla::defaultExecEngine();
  isla::setDefaultExecEngine(O.Engine);
  support::FaultInjector *SavedFaults = support::FaultInjector::active();
  // Explicit SuiteOptions::Faults wins; otherwise honor ISLARIS_FAULTS so
  // any suite binary can be chaos-tested from the shell without a rebuild.
  std::unique_ptr<support::FaultInjector> EnvFaults;
  if (!O.Faults && !SavedFaults)
    EnvFaults = support::FaultInjector::fromEnv();
  support::FaultInjector *Installed =
      O.Faults ? O.Faults : EnvFaults.get();
  if (Installed)
    support::FaultInjector::setActive(Installed);

  std::vector<CaseResult> Results(N);
  cache::BatchDriver::parallelFor(
      N, O.Threads == 0 ? cache::BatchDriver().threads() : O.Threads,
      [&](size_t I) {
        // One wedged or crashing study must never take down its siblings:
        // an escaped exception becomes that row's infrastructure error and
        // the pool keeps draining.
        try {
          Results[I] = Runners[I]();
        } catch (const std::exception &E) {
          Results[I].Name = Names[I];
          Results[I].Ok = false;
          Results[I].D = Diag::error(
              ErrorCode::JobException, "suite",
              std::string("exception escaped case study: ") + E.what());
          Results[I].Error = Results[I].D.Message;
        } catch (...) {
          Results[I].Name = Names[I];
          Results[I].Ok = false;
          Results[I].D = Diag::error(ErrorCode::JobException, "suite",
                                     "non-standard exception escaped "
                                     "case study");
          Results[I].Error = Results[I].D.Message;
        }
      });

  if (Installed)
    support::FaultInjector::setActive(SavedFaults);
  isla::setDefaultExecEngine(SavedEngine);
  support::setAmbientRunLimits(SavedLimits);
  cache::setAmbientTraceCache(Saved);
  cache::setAmbientSideCondCache(SavedSide);
  return Results;
}

SuiteSummary
islaris::frontend::summarize(const std::vector<CaseResult> &Results) {
  SuiteSummary S;
  for (const CaseResult &R : Results) {
    if (R.Ok)
      ++S.Passed;
    else if (support::isInfrastructureError(R.D.Code))
      ++S.InfraErrors;
    else
      ++S.ProofFailures;
  }
  return S;
}

int islaris::frontend::suiteExitCode(const std::vector<CaseResult> &Results) {
  SuiteSummary S = summarize(Results);
  if (S.InfraErrors)
    return 2;
  return S.ProofFailures ? 1 : 0;
}
