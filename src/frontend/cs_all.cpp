//===- frontend/cs_all.cpp - All Fig. 12 rows ------------------------------------===//

#include "frontend/CaseStudies.h"

using namespace islaris::frontend;

std::vector<CaseResult> islaris::frontend::runAllCaseStudies() {
  return {
      runMemcpyArm(),    runMemcpyRv(), runHvc(),
      runPkvm(),         runUnaligned(), runUart(),
      runRbit(),         runBinSearchArm(), runBinSearchRv(),
  };
}
