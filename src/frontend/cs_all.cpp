//===- frontend/cs_all.cpp - All Fig. 12 rows ------------------------------------===//

#include "frontend/CaseStudies.h"

#include "cache/BatchDriver.h"
#include "cache/SideCondCache.h"

using namespace islaris::frontend;

std::vector<CaseResult> islaris::frontend::runAllCaseStudies() {
  return runAllCaseStudies(SuiteOptions());
}

std::vector<CaseResult>
islaris::frontend::runAllCaseStudies(const SuiteOptions &O) {
  using Runner = CaseResult (*)();
  // Thunks in the paper's row order; defaulted-parameter runners need the
  // wrapping.
  static const Runner Runners[] = {
      [] { return runMemcpyArm(); },    [] { return runMemcpyRv(); },
      [] { return runHvc(); },          [] { return runPkvm(); },
      [] { return runUnaligned(); },    [] { return runUart(); },
      [] { return runRbit(); },         [] { return runBinSearchArm(); },
      [] { return runBinSearchRv(); },
  };
  constexpr size_t N = sizeof(Runners) / sizeof(Runners[0]);

  // Install the shared cache as the ambient cache for the whole run so the
  // per-study Verifiers pick it up without signature churn.  Set before the
  // pool spawns and restored after it joins: the pointer itself is not
  // synchronized, only the cache behind it is.
  cache::TraceCache *Saved = cache::ambientTraceCache();
  cache::setAmbientTraceCache(O.Cache ? O.Cache : Saved);
  cache::SideCondStore *SavedSide = cache::ambientSideCondCache();
  cache::setAmbientSideCondCache(O.SideCond ? O.SideCond : SavedSide);

  std::vector<CaseResult> Results(N);
  cache::BatchDriver::parallelFor(
      N, O.Threads == 0 ? cache::BatchDriver().threads() : O.Threads,
      [&](size_t I) { Results[I] = Runners[I](); });

  cache::setAmbientTraceCache(Saved);
  cache::setAmbientSideCondCache(SavedSide);
  return Results;
}
