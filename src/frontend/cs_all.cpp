//===- frontend/cs_all.cpp - All Fig. 12 rows ------------------------------------===//

#include "frontend/CaseStudies.h"

#include "cache/BatchDriver.h"
#include "cache/Journal.h"
#include "cache/SideCondCache.h"
#include "support/FaultInjector.h"
#include "support/Wire.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>

using namespace islaris::frontend;
using islaris::support::Diag;
using islaris::support::ErrorCode;

//===----------------------------------------------------------------------===//
// Journal codec: the shared support::wire field codec (length-prefixed
// strings survive any embedded spaces/parens; doubles travel as hexfloats so
// a resumed row is bit-for-bit the recorded one).  The same codec carries
// CaseResult rows over the islarisd wire protocol.
//===----------------------------------------------------------------------===//

using islaris::support::wire::Cursor;
using islaris::support::wire::putF;
using islaris::support::wire::putStr;

std::string islaris::frontend::encodeCaseResult(const CaseResult &R) {
  std::ostringstream OS;
  // Version 2: merge-engine and rewriter-cap counters appended.  Version-1
  // journal rows fail to decode, so a resumed run simply re-verifies them.
  OS << "case 2 ";
  putStr(OS, R.Name);
  putStr(OS, R.Isa);
  OS << (R.Ok ? 1 : 0) << " ";
  putStr(OS, R.Error);
  OS << unsigned(R.D.Code) << " " << unsigned(R.D.Sev) << " ";
  putStr(OS, R.D.Stage);
  putStr(OS, R.D.Message);
  OS << R.AsmInstrs << " " << R.ItlEvents << " " << R.SpecSize << " "
     << R.Hints << " ";
  putF(OS, R.IslaSeconds);
  OS << R.TracesExecuted << " " << R.CacheHits << " " << R.Deduped << " "
     << R.IslaMemoHits << " " << R.IslaStoreHits << " " << R.IslaStmts
     << " " << R.IslaStmtsSkipped << " " << R.HelperMemoHits << " "
     << R.PathsMerged << " " << R.MergeFallbacks << " "
     << R.IteTermsIntroduced << " " << R.FixpointCapHits << " "
     << R.Retries << " " << R.Quarantined << " ";
  const seplogic::ProofStats &PS = R.Proof;
  OS << PS.EventsProcessed << " " << PS.InstructionsWalked << " "
     << PS.PathsVerified << " " << PS.PathsPruned << " " << PS.Entailments
     << " " << PS.SolverQueries << " " << PS.CacheHits << " "
     << PS.SolverSatCalls << " " << PS.SolverMemoHits << " "
     << PS.SolverStoreHits << " ";
  putF(OS, PS.TotalSeconds);
  putF(OS, PS.SideCondSeconds);
  return OS.str();
}

bool islaris::frontend::decodeCaseResult(const std::string &Text,
                                         CaseResult &Out) {
  Cursor C(Text);
  if (C.tok() != "case" || C.tok() != "2")
    return false;
  CaseResult R;
  R.Name = C.str();
  R.Isa = C.str();
  R.Ok = C.u64() != 0;
  R.Error = C.str();
  R.D.Code = ErrorCode(unsigned(C.u64()));
  R.D.Sev = support::Severity(unsigned(C.u64()));
  R.D.Stage = C.str();
  R.D.Message = C.str();
  R.AsmInstrs = unsigned(C.u64());
  R.ItlEvents = unsigned(C.u64());
  R.SpecSize = unsigned(C.u64());
  R.Hints = unsigned(C.u64());
  R.IslaSeconds = C.f();
  R.TracesExecuted = unsigned(C.u64());
  R.CacheHits = unsigned(C.u64());
  R.Deduped = unsigned(C.u64());
  R.IslaMemoHits = unsigned(C.u64());
  R.IslaStoreHits = unsigned(C.u64());
  R.IslaStmts = C.u64();
  R.IslaStmtsSkipped = C.u64();
  R.HelperMemoHits = unsigned(C.u64());
  R.PathsMerged = unsigned(C.u64());
  R.MergeFallbacks = unsigned(C.u64());
  R.IteTermsIntroduced = C.u64();
  R.FixpointCapHits = C.u64();
  R.Retries = unsigned(C.u64());
  R.Quarantined = unsigned(C.u64());
  seplogic::ProofStats &PS = R.Proof;
  PS.EventsProcessed = unsigned(C.u64());
  PS.InstructionsWalked = unsigned(C.u64());
  PS.PathsVerified = unsigned(C.u64());
  PS.PathsPruned = unsigned(C.u64());
  PS.Entailments = unsigned(C.u64());
  PS.SolverQueries = C.u64();
  PS.CacheHits = C.u64();
  PS.SolverSatCalls = C.u64();
  PS.SolverMemoHits = C.u64();
  PS.SolverStoreHits = C.u64();
  PS.TotalSeconds = C.f();
  PS.SideCondSeconds = C.f();
  if (C.Fail)
    return false;
  Out = std::move(R);
  return true;
}

std::vector<CaseResult> islaris::frontend::runAllCaseStudies() {
  return runAllCaseStudies(SuiteOptions());
}

std::vector<CaseResult>
islaris::frontend::runAllCaseStudies(const SuiteOptions &O) {
  using Runner = CaseResult (*)();
  // Thunks in the paper's row order; defaulted-parameter runners need the
  // wrapping.  Names mirror what each runner stamps into CaseResult::Name,
  // so a study that dies before returning is still attributable.
  static const Runner Runners[] = {
      [] { return runMemcpyArm(); },    [] { return runMemcpyRv(); },
      [] { return runHvc(); },          [] { return runPkvm(); },
      [] { return runUnaligned(); },    [] { return runUart(); },
      [] { return runRbit(); },         [] { return runBinSearchArm(); },
      [] { return runBinSearchRv(); },
  };
  static const char *Names[] = {
      "memcpy",    "memcpy",    "hvc",  "pkvm handler", "unaligned",
      "uart putc", "inline asm", "binary search", "binary search",
  };
  constexpr size_t N = sizeof(Runners) / sizeof(Runners[0]);

  // Install the shared cache as the ambient cache for the whole run so the
  // per-study Verifiers pick it up without signature churn.  Set before the
  // pool spawns and restored after it joins: the pointer itself is not
  // synchronized, only the cache behind it is.  Resource limits and the
  // fault injector follow the same ambient-install/restore protocol.
  cache::TraceCache *Saved = cache::ambientTraceCache();
  cache::setAmbientTraceCache(O.Cache ? O.Cache : Saved);
  cache::SideCondStore *SavedSide = cache::ambientSideCondCache();
  cache::setAmbientSideCondCache(O.SideCond ? O.SideCond : SavedSide);
  support::RunLimits SavedLimits = support::ambientRunLimits();
  support::setAmbientRunLimits(O.Limits);
  isla::ExecEngine SavedEngine = isla::defaultExecEngine();
  isla::setDefaultExecEngine(O.Engine);
  support::FaultInjector *SavedFaults = support::FaultInjector::active();
  // Explicit SuiteOptions::Faults wins; otherwise honor ISLARIS_FAULTS so
  // any suite binary can be chaos-tested from the shell without a rebuild.
  std::unique_ptr<support::FaultInjector> EnvFaults;
  if (!O.Faults && !SavedFaults)
    EnvFaults = support::FaultInjector::fromEnv();
  support::FaultInjector *Installed =
      O.Faults ? O.Faults : EnvFaults.get();
  if (Installed)
    support::FaultInjector::setActive(Installed);

  // Write-ahead run journal.  Records are keyed on the study's identity
  // *and* the result-affecting suite configuration (engine, limits): a
  // resumed run with different guards must not restore rows those guards
  // would have failed.  Threads and cache pointers stay out of the key —
  // results are bit-identical across them by construction.
  std::unique_ptr<cache::RunJournal> Journal;
  if (!O.JournalPath.empty()) {
    Journal = std::make_unique<cache::RunJournal>(O.JournalPath);
    Journal->open(); // on failure appends fail cleanly and nothing resumes
  }
  auto JobKey = [&](size_t I) {
    cache::Fingerprinter FP;
    FP.str("islaris-suite-job");
    FP.u64(uint64_t(I));
    FP.str(Names[I]);
    FP.u64(uint64_t(O.Engine));
    auto Bits = [](double D) {
      uint64_t U;
      static_assert(sizeof(U) == sizeof(D));
      std::memcpy(&U, &D, sizeof(U));
      return U;
    };
    FP.u64(Bits(O.Limits.SolverCheckSeconds));
    FP.u64(O.Limits.SolverConflicts);
    FP.u64(O.Limits.SolverPropagations);
    FP.u64(Bits(O.Limits.InstrSeconds));
    FP.u64(Bits(O.Limits.JobTimeoutSeconds));
    FP.u64(O.Limits.JobRetries);
    return FP.digest();
  };

  std::vector<CaseResult> Results(N);
  cache::BatchDriver::parallelFor(
      N, O.Threads == 0 ? cache::BatchDriver().threads() : O.Threads,
      [&](size_t I) {
        // Resume: restore the recorded row instead of re-verifying.  Only
        // rows that completed (journal append is the *last* step below)
        // ever match, so a crash mid-study just re-runs the study.
        if (Journal && O.Resume) {
          if (const std::string *Rec = Journal->find(JobKey(I))) {
            CaseResult R;
            if (decodeCaseResult(*Rec, R)) {
              R.Resumed = true;
              Results[I] = std::move(R);
              return;
            }
          }
        }
        // One wedged or crashing study must never take down its siblings:
        // an escaped exception becomes that row's infrastructure error and
        // the pool keeps draining.
        try {
          Results[I] = Runners[I]();
        } catch (const std::exception &E) {
          Results[I].Name = Names[I];
          Results[I].Ok = false;
          Results[I].D = Diag::error(
              ErrorCode::JobException, "suite",
              std::string("exception escaped case study: ") + E.what());
          Results[I].Error = Results[I].D.Message;
        } catch (...) {
          Results[I].Name = Names[I];
          Results[I].Ok = false;
          Results[I].D = Diag::error(ErrorCode::JobException, "suite",
                                     "non-standard exception escaped "
                                     "case study");
          Results[I].Error = Results[I].D.Message;
        }
        if (Journal)
          Journal->append(JobKey(I), encodeCaseResult(Results[I]));
      });

  if (Installed)
    support::FaultInjector::setActive(SavedFaults);
  isla::setDefaultExecEngine(SavedEngine);
  support::setAmbientRunLimits(SavedLimits);
  cache::setAmbientTraceCache(Saved);
  cache::setAmbientSideCondCache(SavedSide);
  return Results;
}

SuiteSummary
islaris::frontend::summarize(const std::vector<CaseResult> &Results) {
  SuiteSummary S;
  for (const CaseResult &R : Results) {
    if (R.Resumed)
      ++S.JobsResumed;
    if (R.Ok)
      ++S.Passed;
    else if (support::isInfrastructureError(R.D.Code))
      ++S.InfraErrors;
    else
      ++S.ProofFailures;
  }
  return S;
}

int islaris::frontend::suiteExitCode(const std::vector<CaseResult> &Results) {
  SuiteSummary S = summarize(Results);
  if (S.InfraErrors)
    return 2;
  return S.ProofFailures ? 1 : 0;
}
