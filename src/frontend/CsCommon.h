//===- frontend/CsCommon.h - Shared case-study helpers ----------*- C++ -*-===//
//
// Internal helpers shared by the cs_*.cpp case studies (not part of the
// public API).
//
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_FRONTEND_CSCOMMON_H
#define ISLARIS_FRONTEND_CSCOMMON_H

#include "frontend/CaseStudies.h"
#include "frontend/Verifier.h"

namespace islaris::frontend {

/// Fills a CaseResult for a study whose generateTraces call failed: the
/// verifier's structured diagnostic (guard trip, injected fault, corrupt
/// cache, model error) is carried into the row so the suite can tell an
/// infrastructure failure from a proof failure.
inline CaseResult genFailed(CaseResult R, Verifier &V,
                            const std::string &Err) {
  R.Ok = false;
  R.Error = Err;
  R.D = V.diag();
  if (R.D.ok())
    R.D = support::Diag::error(support::ErrorCode::ModelError, "isla", Err);
  return R;
}

/// Fills the bookkeeping fields of a CaseResult from a finished Verifier.
inline CaseResult finishResult(CaseResult R, Verifier &V, bool Ok,
                               unsigned SpecSize, unsigned Hints) {
  R.Ok = Ok;
  if (!Ok) {
    R.Error = V.engine().error();
    R.D = V.engine().diag();
    if (R.D.ok())
      R.D = support::Diag::error(support::ErrorCode::ProofFailed,
                                 "proof-engine", R.Error);
  }
  R.AsmInstrs = V.genStats().Instructions;
  R.ItlEvents = V.genStats().ItlEvents;
  R.IslaSeconds = V.genStats().Seconds;
  R.TracesExecuted = V.genStats().Executed;
  R.CacheHits = V.genStats().CacheHits;
  R.Deduped = V.genStats().Deduped;
  R.IslaMemoHits = V.genStats().SolverMemoHits;
  R.IslaStoreHits = V.genStats().SolverStoreHits;
  R.IslaStmts = V.genStats().StmtsExecuted;
  R.IslaStmtsSkipped = V.genStats().StmtsSkipped;
  R.HelperMemoHits = V.genStats().HelperMemoHits;
  R.PathsMerged = V.genStats().PathsMerged;
  R.MergeFallbacks = V.genStats().MergeFallbacks;
  R.IteTermsIntroduced = V.genStats().IteTermsIntroduced;
  R.FixpointCapHits = V.genStats().FixpointCapHits;
  R.Retries = V.genStats().Retries;
  R.Quarantined = V.genStats().Quarantined;
  R.SpecSize = SpecSize;
  R.Hints = Hints;
  R.Proof = V.engine().stats();
  return R;
}

/// The CNVZ_regs collection of Fig. 8: the four condition flags, with
/// existential values owned by \p S.
inline seplogic::RegColChunk nzcvCol(seplogic::Spec &S) {
  seplogic::RegColChunk C;
  C.Name = "CNVZ_regs";
  for (const char *F : {"N", "Z", "C", "V"})
    C.Regs.push_back(
        {itl::Reg("PSTATE", F), S.evar(1, std::string("f") + F)});
  return C;
}

/// The DAIF interrupt-mask bits, existential.
inline seplogic::RegColChunk daifCol(seplogic::Spec &S) {
  seplogic::RegColChunk C;
  C.Name = "DAIF_regs";
  for (const char *F : {"D", "A", "I", "F"})
    C.Regs.push_back(
        {itl::Reg("PSTATE", F), S.evar(1, std::string("m") + F)});
  return C;
}

/// An Armv8-A EL1 user-code configuration: assumptions EL=1, SP=1,
/// SCTLR_EL1=0 (alignment checking off).
inline isla::Assumptions armEl1Assumptions() {
  isla::Assumptions A;
  A.assume(itl::Reg("PSTATE", "EL"), BitVec(2, 0b01));
  A.assume(itl::Reg("PSTATE", "SP"), BitVec(1, 1));
  A.assume(itl::Reg("SCTLR_EL1"), BitVec(64, 0));
  return A;
}

/// Adds the sys_regs collection matching armEl1Assumptions to \p S.
inline void addArmEl1SysRegs(seplogic::Spec &S, smt::TermBuilder &TB) {
  seplogic::RegColChunk C;
  C.Name = "sys_regs";
  C.Regs.push_back({itl::Reg("PSTATE", "EL"), TB.constBV(2, 0b01)});
  C.Regs.push_back({itl::Reg("PSTATE", "SP"), TB.constBV(1, 1)});
  C.Regs.push_back({itl::Reg("SCTLR_EL1"), TB.constBV(64, 0)});
  S.regCol(std::move(C));
}

} // namespace islaris::frontend

#endif // ISLARIS_FRONTEND_CSCOMMON_H
