//===- frontend/Verifier.h - End-to-end Islaris workflow --------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Fig. 1 workflow in one object: machine code + constraints go in, the
/// symbolic executor (Isla) turns each opcode into an ITL trace under the
/// per-address assumptions, and a ProofEngine over those traces checks the
/// user's separation-logic specifications.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_FRONTEND_VERIFIER_H
#define ISLARIS_FRONTEND_VERIFIER_H

#include "isla/Executor.h"
#include "seplogic/Engine.h"
#include "seplogic/Spec.h"

#include <map>
#include <memory>

namespace islaris::cache {
class TraceCache;
}

namespace islaris::frontend {

/// Architecture bundle: model, PC register name, register width oracle.
struct ArchInfo {
  const sail::Model *Model;
  std::string PcName;
  std::function<unsigned(const itl::Reg &)> RegWidth;
  /// Stable architecture name ("aarch64", "rv64"); part of the trace-cache
  /// key so different ISAs can never alias.
  std::string Name;
};

/// The Armv8-A architecture (models::aarch64Model).
ArchInfo aarch64();
/// The RV64 architecture (models::rv64Model).
ArchInfo rv64();

/// Trace-generation statistics ("Isla time" of Fig. 12).  ItlEvents and
/// Paths describe the generated traces (the paper's "ITL" column) and are
/// identical however a trace was obtained; Executed / CacheHits / Deduped /
/// SolverQueries describe the work actually performed, so cache and dedup
/// savings are visible instead of silently folding into Seconds.
struct GenStats {
  double Seconds = 0;
  unsigned Instructions = 0;
  unsigned ItlEvents = 0;
  unsigned Paths = 0;
  unsigned SolverQueries = 0; ///< Queries of executions actually run.
  unsigned Executed = 0;      ///< Instructions symbolically executed.
  unsigned CacheHits = 0;     ///< Instructions served from the trace cache.
  unsigned Deduped = 0;       ///< Instructions sharing an in-batch twin.
  /// Executor solver queries answered by the in-run memo table (a subset
  /// of SolverQueries; the rest reached the SAT core or were syntactic).
  unsigned SolverMemoHits = 0;
  /// Executor queries answered by the persistent side-condition store
  /// (subset of SolverQueries; only meaningful when one is attached).
  unsigned SolverStoreHits = 0;
  /// Model statements dispatched across fresh executions (the snapshot
  /// engine's headline saving relative to replay's paths x model size).
  uint64_t StmtsExecuted = 0;
  /// Statements the snapshot engine restored from checkpoints instead of
  /// re-executing.  Zero under the replay engine.
  uint64_t StmtsSkipped = 0;
  /// Pure-helper calls answered from the executor's per-run summary memo.
  unsigned HelperMemoHits = 0;
  /// Merge engine: forks collapsed at their join, forks demoted to plain
  /// enumeration, and ite terms the register/local joins introduced (all
  /// zero under Snapshot/Replay) — see isla::ExecStats.
  unsigned PathsMerged = 0;
  unsigned MergeFallbacks = 0;
  uint64_t IteTermsIntroduced = 0;
  /// Rewriter fixpoint-cap hits across the executions actually run (see
  /// smt::Rewriter::fixpointCapHits); persistently zero in a healthy rule
  /// set, so any nonzero value is a rules regression made visible.
  uint64_t FixpointCapHits = 0;
  /// Batch-driver fault-tolerance counters for the generation batches this
  /// verifier ran (see cache::BatchStats).
  unsigned Retries = 0;
  unsigned TimedOut = 0;
  unsigned Quarantined = 0; ///< Jobs that ended without a trace (Failed).
};

/// Drives trace generation and verification for one program.
class Verifier {
public:
  explicit Verifier(ArchInfo Arch);

  smt::TermBuilder &builder() { return TB; }
  const ArchInfo &arch() const { return Arch; }

  /// Adds machine code (address -> opcode), e.g. an Assembler::finish()
  /// image.
  void addCode(const std::map<uint64_t, uint32_t> &Code);

  /// Default constraints applied to every instruction (Fig. 1's "default
  /// constraints": system configuration, EL, ...).
  isla::Assumptions &defaults() { return Defaults; }

  /// Instruction-specific constraints replacing the defaults at \p Addr
  /// (Fig. 1's optional per-instruction constraints, e.g. for eret §2.8).
  isla::Assumptions &at(uint64_t Addr) { return PerAddr[Addr]; }

  /// Marks opcode bits [Hi..Lo] at \p Addr as symbolic (relocation-
  /// parametric immediates, §6 pKVM).
  void symbolicAt(uint64_t Addr, unsigned Hi, unsigned Lo);

  /// Trace-generation options (e.g. disabling Isla's simplifications for
  /// the E5 ablation).
  isla::ExecOptions &options() { return Opts; }

  /// Attaches a trace cache (shared, not owned; thread-safe).  New
  /// verifiers start with cache::ambientTraceCache(), which is null unless
  /// a harness opted in — the default pipeline is unchanged.
  void setTraceCache(cache::TraceCache *C) { Cache = C; }
  cache::TraceCache *traceCache() const { return Cache; }

  /// Attaches a persistent side-condition store (shared, not owned;
  /// thread-safe) handed to the proof engine on creation.  New verifiers
  /// start with cache::ambientSideCondCache(), null unless a harness opted
  /// in.  Must be called before the first engine() use to take effect.
  void setSideCondCache(smt::SolverCache *C) { SideCond = C; }
  smt::SolverCache *sideCondCache() const { return SideCond; }

  /// Worker threads for generateTraces (1 = serial on the calling thread,
  /// 0 = hardware concurrency).  Distinct instructions are independent;
  /// each worker owns a private TermBuilder/Executor and results are
  /// deterministic regardless of the thread count.
  void setParallelism(unsigned Threads) { GenThreads = Threads; }
  unsigned parallelism() const { return GenThreads; }

  /// Resource guards for this verifier's trace generation and proof engine.
  /// New verifiers start from support::ambientRunLimits() (all-zero unless
  /// a harness opted in — the default pipeline is unguarded, as before).
  void setLimits(const support::RunLimits &L) { Limits = L; }
  const support::RunLimits &limits() const { return Limits; }

  /// Cooperative cancellation token threaded into the executor jobs and
  /// the proof engine's solver.  Inert by default.
  void setCancelToken(const support::CancelToken &T) { Cancel = T; }

  /// Structured diagnostic of the last failure recorded by this verifier —
  /// a setup error (overlapping addCode, symbolicAt on a missing address)
  /// or the failure generateTraces reported.  Ok when nothing failed.
  const support::Diag &diag() const { return LastDiag; }

  /// Runs the symbolic executor over every instruction, deduplicating
  /// identical (opcode, assumptions, options) requests within the call and
  /// consulting the attached trace cache.  Returns false and sets \p Err on
  /// the first failure (in address order).
  bool generateTraces(std::string &Err);

  /// Trace and opcode-variable access (valid after generateTraces).
  const itl::Trace *traceAt(uint64_t Addr) const;
  const std::vector<const smt::Term *> &opcodeVarsAt(uint64_t Addr) const;
  const std::map<uint64_t, const itl::Trace *> &instrMap() const {
    return InstrPtrs;
  }

  /// Creates a Spec wired with the architecture's register-width hints.
  seplogic::Spec makeSpec(const std::string &Name);

  /// The proof engine over the generated traces (created on first use).
  seplogic::ProofEngine &engine();

  const GenStats &genStats() const { return Gen; }

private:
  ArchInfo Arch;
  smt::TermBuilder TB;
  std::map<uint64_t, uint32_t> Code;
  std::map<uint64_t, isla::OpcodeSpec> OpcodeSpecs;
  isla::Assumptions Defaults;
  isla::ExecOptions Opts;
  std::map<uint64_t, isla::Assumptions> PerAddr;
  std::map<uint64_t, itl::Trace> Traces;
  std::map<uint64_t, const itl::Trace *> InstrPtrs;
  std::map<uint64_t, std::vector<const smt::Term *>> OpcodeVars;
  std::unique_ptr<seplogic::ProofEngine> Engine;
  GenStats Gen;
  cache::TraceCache *Cache = nullptr;
  smt::SolverCache *SideCond = nullptr;
  unsigned GenThreads = 1;
  support::RunLimits Limits;
  support::CancelToken Cancel;
  support::Diag LastDiag;
};

} // namespace islaris::frontend

#endif // ISLARIS_FRONTEND_VERIFIER_H
