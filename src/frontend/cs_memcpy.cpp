//===- frontend/cs_memcpy.cpp - The Fig. 7/8 memcpy case studies ----------------===//
//
// Verifies the machine code of the naive C memcpy of Fig. 7 against the
// Fig. 8 specification: after the call, the destination holds the source
// bytes.  The source and destination addresses and all byte contents are
// symbolic; the length is a concrete parameter (the bounded-array
// substitution documented in DESIGN.md).  The loop is handled by a
// registered invariant at .L3 exactly as in §2.5: the first m bytes have
// been copied, the rest of the destination is unchanged.
//
//===----------------------------------------------------------------------===//

#include "frontend/CaseStudies.h"

#include "arch/AArch64.h"
#include "arch/RiscV.h"
#include "frontend/CsCommon.h"
#include "frontend/Verifier.h"

using namespace islaris;
using namespace islaris::frontend;
using islaris::itl::Reg;
using islaris::seplogic::Spec;
using smt::Term;

CaseResult islaris::frontend::runMemcpyArm(unsigned N,
                                            bool SimplifiedTraces) {
  CaseResult Res;
  Res.Name = "memcpy";
  Res.Isa = "Arm";

  // Fig. 7, second column (GCC 11.2 -O2 shape).
  namespace e = arch::aarch64::enc;
  arch::aarch64::Asm A;
  A.org(0x400000);
  A.label("memcpy");
  A.cbz(2, "L1");            // cbz x2, .L1
  A.put(e::movz(3, 0));      // mov x3, #0
  A.label("L3");
  A.put(e::ldrReg(0, 4, 1, 3)); // ldrb w4, [x1, x3]
  A.put(e::strReg(0, 4, 0, 3)); // strb w4, [x0, x3]
  A.put(e::addImm(3, 3, 1));    // add x3, x3, #1
  A.put(e::cmpReg(2, 3));       // cmp x2, x3
  A.bcond(arch::aarch64::Cond::NE, "L3"); // bne .L3
  A.label("L1");
  A.put(e::ret());              // ret

  Verifier V(aarch64());
  V.addCode(A.finish());
  if (!SimplifiedTraces) {
    // The E5 ablation: hand the proof engine Isla's unsimplified output.
    V.options().CacheRegReads = false;
    V.options().SinksOnly = false;
  }
  std::string Err;
  if (!V.generateTraces(Err))
    return genFailed(std::move(Res), V, Err);
  smt::TermBuilder &TB = V.builder();

  // Post (the Q of Fig. 8 lines 5-8), parameterized over the binders of
  // whichever spec references it.
  Spec Post = V.makeSpec("memcpy_post");
  const Term *PD = Post.param(64, "pd");
  const Term *PS = Post.param(64, "ps");
  std::vector<const Term *> PBs;
  for (unsigned K = 0; K < N; ++K)
    PBs.push_back(Post.param(8, "pb" + std::to_string(K)));
  Post.array(PS, PBs, 1).array(PD, PBs, 1);
  Post.regAny(Reg("R0")).regAny(Reg("R1")).regAny(Reg("R2"));
  Post.regAny(Reg("R3")).regAny(Reg("R4")).regAny(Reg("R30"));

  // Entry spec (Fig. 8 lines 1-5).
  Spec Entry = V.makeSpec("memcpy_spec");
  const Term *D = Entry.evar(64, "d");
  const Term *S = Entry.evar(64, "s");
  const Term *R = Entry.evar(64, "r");
  std::vector<const Term *> Bs, Bd;
  for (unsigned K = 0; K < N; ++K) {
    Bs.push_back(Entry.evar(8, "bs" + std::to_string(K)));
    Bd.push_back(Entry.evar(8, "bd" + std::to_string(K)));
  }
  Entry.reg(Reg("R0"), D).reg(Reg("R1"), S);
  Entry.reg(Reg("R2"), TB.constBV(64, N));
  Entry.regAny(Reg("R3")).regAny(Reg("R4"));
  Entry.reg(Reg("R30"), R);
  Entry.regCol(nzcvCol(Entry));
  Entry.array(S, Bs, 1).array(D, Bd, 1);
  std::vector<const Term *> PostArgs = {D, S};
  PostArgs.insert(PostArgs.end(), Bs.begin(), Bs.end());
  Entry.instrPre(R, &Post, PostArgs);

  // Loop invariant at .L3 (§2.5): the first m bytes have been copied.
  Spec Inv = V.makeSpec("memcpy_inv");
  const Term *ID = Inv.evar(64, "id");
  const Term *IS = Inv.evar(64, "is");
  const Term *IM = Inv.evar(64, "im");
  const Term *IR = Inv.evar(64, "ir");
  std::vector<const Term *> IBs, IBd;
  for (unsigned K = 0; K < N; ++K) {
    IBs.push_back(Inv.evar(8, "ibs" + std::to_string(K)));
    IBd.push_back(Inv.evar(8, "ibd" + std::to_string(K)));
  }
  Inv.reg(Reg("R0"), ID).reg(Reg("R1"), IS);
  Inv.reg(Reg("R2"), TB.constBV(64, N));
  Inv.reg(Reg("R3"), IM);
  Inv.regAny(Reg("R4"));
  Inv.reg(Reg("R30"), IR);
  Inv.regCol(nzcvCol(Inv));
  Inv.array(IS, IBs, 1);
  std::vector<const Term *> MixElems;
  for (unsigned K = 0; K < N; ++K)
    MixElems.push_back(TB.iteTerm(TB.bvUlt(TB.constBV(64, K), IM),
                                  IBs[K], IBd[K]));
  Inv.array(ID, MixElems, 1);
  Inv.pure(TB.bvUlt(IM, TB.constBV(64, N))); // hint: m < n
  std::vector<const Term *> IArgs = {ID, IS};
  IArgs.insert(IArgs.end(), IBs.begin(), IBs.end());
  Inv.instrPre(IR, &Post, IArgs);

  auto &PE = V.engine();
  PE.registerSpec(A.addrOf("memcpy"), &Entry);
  if (N > 0)
    PE.registerSpec(A.addrOf("L3"), &Inv);
  bool Ok = PE.verifyAll();
  return finishResult(std::move(Res), V, Ok,
                      Entry.sizeMetric() + Inv.sizeMetric() +
                          Post.sizeMetric(),
                      /*Hints=*/1 + unsigned(N > 0 ? Inv.sizeMetric() : 0));
}

CaseResult islaris::frontend::runMemcpyRv(unsigned N) {
  CaseResult Res;
  Res.Name = "memcpy";
  Res.Isa = "RV";

  // Fig. 7, third column (Clang 13 -O2 shape; pointer-bumping loop).
  namespace e = arch::rv64::enc;
  using namespace arch::rv64;
  Asm A;
  A.org(0x400000);
  A.label("memcpy");
  A.beqz(A2, "L2");            // beqz a2, .L2
  A.label("L1");
  A.put(e::lb(A3, A1, 0));     // lb a3, 0(a1)
  A.put(e::sb(A3, A0, 0));     // sb a3, 0(a0)
  A.put(e::addi(A2, A2, -1));  // addi a2, a2, -1
  A.put(e::addi(A0, A0, 1));   // addi a0, a0, 1
  A.put(e::addi(A1, A1, 1));   // addi a1, a1, 1
  A.bnez(A2, "L1");            // bnez a2, .L1
  A.label("L2");
  A.put(e::ret());             // ret

  Verifier V(rv64());
  V.addCode(A.finish());
  std::string Err;
  if (!V.generateTraces(Err))
    return genFailed(std::move(Res), V, Err);
  smt::TermBuilder &TB = V.builder();
  auto X = [](unsigned I) { return xreg(I); };

  Spec Post = V.makeSpec("memcpy_rv_post");
  const Term *PD = Post.param(64, "pd");
  const Term *PS = Post.param(64, "ps");
  std::vector<const Term *> PBs;
  for (unsigned K = 0; K < N; ++K)
    PBs.push_back(Post.param(8, "pb" + std::to_string(K)));
  Post.array(PS, PBs, 1).array(PD, PBs, 1);
  for (unsigned RN : {A0, A1, A2, A3, RA})
    Post.regAny(X(RN));

  Spec Entry = V.makeSpec("memcpy_rv_spec");
  const Term *D = Entry.evar(64, "d");
  const Term *S = Entry.evar(64, "s");
  const Term *R = Entry.evar(64, "r");
  std::vector<const Term *> Bs, Bd;
  for (unsigned K = 0; K < N; ++K) {
    Bs.push_back(Entry.evar(8, "bs" + std::to_string(K)));
    Bd.push_back(Entry.evar(8, "bd" + std::to_string(K)));
  }
  Entry.reg(X(A0), D).reg(X(A1), S).reg(X(A2), TB.constBV(64, N));
  Entry.regAny(X(A3)).reg(X(RA), R);
  // The return address must be even: jalr clears bit 0 (the alignment
  // side condition the paper notes for the RISC-V specs, §2.7).
  Entry.pure(TB.eqTerm(TB.bvAnd(R, TB.constBV(64, 1)), TB.constBV(64, 0)));
  Entry.array(S, Bs, 1).array(D, Bd, 1);
  std::vector<const Term *> PostArgs = {D, S};
  PostArgs.insert(PostArgs.end(), Bs.begin(), Bs.end());
  Entry.instrPre(R, &Post, PostArgs);

  // Loop invariant at .L1.  The RISC-V code bumps all three pointers, so
  // the invariant binds the *current* pointer values (P0, P1) and the
  // remaining count (C2) through plain register chunks — Lithium-style
  // unification binds existentials only at bare-variable patterns — and
  // reconstructs the original bases as P - j where j = N - C2 bytes have
  // been copied.
  Spec Inv = V.makeSpec("memcpy_rv_inv");
  const Term *P0 = Inv.evar(64, "p0");
  const Term *P1 = Inv.evar(64, "p1");
  const Term *C2 = Inv.evar(64, "c2");
  const Term *IR = Inv.evar(64, "ir");
  std::vector<const Term *> IBs, IBd;
  for (unsigned K = 0; K < N; ++K) {
    IBs.push_back(Inv.evar(8, "ibs" + std::to_string(K)));
    IBd.push_back(Inv.evar(8, "ibd" + std::to_string(K)));
  }
  Inv.reg(X(A0), P0).reg(X(A1), P1).reg(X(A2), C2);
  Inv.regAny(X(A3)).reg(X(RA), IR);
  const Term *J = TB.bvSub(TB.constBV(64, N), C2);
  const Term *BaseS = TB.bvSub(P1, J);
  const Term *BaseD = TB.bvSub(P0, J);
  Inv.array(BaseS, IBs, 1);
  std::vector<const Term *> MixElems;
  for (unsigned K = 0; K < N; ++K)
    MixElems.push_back(
        TB.iteTerm(TB.bvUlt(TB.constBV(64, K), J), IBs[K], IBd[K]));
  Inv.array(BaseD, MixElems, 1);
  // Hint: 1 <= remaining <= N (the loop head is only reached with work
  // left to do), and the return address is even.
  Inv.pure(TB.bvUlt(TB.bvSub(C2, TB.constBV(64, 1)), TB.constBV(64, N)));
  Inv.pure(TB.eqTerm(TB.bvAnd(IR, TB.constBV(64, 1)), TB.constBV(64, 0)));
  std::vector<const Term *> IArgs = {BaseD, BaseS};
  IArgs.insert(IArgs.end(), IBs.begin(), IBs.end());
  Inv.instrPre(IR, &Post, IArgs);

  auto &PE = V.engine();
  PE.registerSpec(A.addrOf("memcpy"), &Entry);
  if (N > 0)
    PE.registerSpec(A.addrOf("L1"), &Inv);
  bool Ok = PE.verifyAll();
  return finishResult(std::move(Res), V, Ok,
                      Entry.sizeMetric() + Inv.sizeMetric() +
                          Post.sizeMetric(),
                      1 + unsigned(N > 0 ? Inv.sizeMetric() : 0));
}
