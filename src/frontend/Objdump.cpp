//===- frontend/Objdump.cpp - Annotated objdump input ----------------------------===//

#include "frontend/Objdump.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

using namespace islaris;
using namespace islaris::frontend;

namespace {

bool isHexString(const std::string &S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (!std::isxdigit(static_cast<unsigned char>(C)))
      return false;
  return true;
}

} // namespace

std::optional<ObjdumpImage>
islaris::frontend::parseObjdump(const std::string &Text, std::string &Error) {
  ObjdumpImage Img;
  std::istringstream In(Text);
  std::string Line;
  int LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    // Strip leading whitespace.
    size_t Start = Line.find_first_not_of(" \t");
    if (Start == std::string::npos)
      continue;
    std::string Body = Line.substr(Start);

    // Symbol header: "0000000000400000 <memcpy>:".
    {
      std::istringstream LS(Body);
      std::string AddrTok, SymTok;
      if (LS >> AddrTok >> SymTok && isHexString(AddrTok) &&
          SymTok.size() > 3 && SymTok.front() == '<' &&
          SymTok.back() == ':' && SymTok[SymTok.size() - 2] == '>') {
        Img.Symbols[SymTok.substr(1, SymTok.size() - 3)] =
            std::strtoull(AddrTok.c_str(), nullptr, 16);
        continue;
      }
    }

    // Code line: "400000:\tb40000e2 \tcbz x2, ...".
    size_t Colon = Body.find(':');
    if (Colon == std::string::npos)
      continue;
    std::string AddrTok = Body.substr(0, Colon);
    if (!isHexString(AddrTok))
      continue;
    std::istringstream LS(Body.substr(Colon + 1));
    std::string OpTok;
    if (!(LS >> OpTok))
      continue;
    if (!isHexString(OpTok) || OpTok.size() > 8) {
      Error = "line " + std::to_string(LineNo) +
              ": expected a 32-bit opcode after the address, got '" + OpTok +
              "'";
      return std::nullopt;
    }
    uint64_t Addr = std::strtoull(AddrTok.c_str(), nullptr, 16);
    uint32_t Op = uint32_t(std::strtoul(OpTok.c_str(), nullptr, 16));
    if (Img.Code.count(Addr)) {
      Error = "line " + std::to_string(LineNo) + ": duplicate address " +
              AddrTok;
      return std::nullopt;
    }
    Img.Code[Addr] = Op;
  }
  return Img;
}
