//===- frontend/cs_hvc.cpp - The Fig. 9 exception-vector case study -------------===//
//
// The hand-written Armv8-A program of Fig. 9: at EL2, install an exception
// vector table and configure HCR/SPSR/ELR; eret to EL1; perform a
// hypervisor call which the EL2 vector handles by setting x0 = 42 before
// returning.  The verified property is the paper's: upon reaching the
// "hang forever" loop (line 16), x0 contains 42.
//
//===----------------------------------------------------------------------===//

#include "frontend/CaseStudies.h"

#include "arch/AArch64.h"
#include "frontend/CsCommon.h"

using namespace islaris;
using namespace islaris::frontend;
using islaris::itl::Reg;
using islaris::seplogic::Spec;
using smt::Term;

CaseResult islaris::frontend::runHvc() {
  CaseResult Res;
  Res.Name = "hvc";
  Res.Isa = "Arm";

  namespace e = arch::aarch64::enc;
  using arch::aarch64::SysReg;
  arch::aarch64::Asm A;

  // *** initialisation at EL2 (Fig. 9 lines 2-11) ***
  A.org(0x80000);
  A.label("_start");
  A.put(e::movz(0, 0xa, 1));               // mov x0, 0xa0000
  A.put(e::msr(SysReg::VBAR_EL2, 0));      // install exception vector
  A.put(e::movz(0, 0x8000, 1));            // mov x0, 0x80000000
  A.put(e::msr(SysReg::HCR_EL2, 0));       // aarch64 at EL1 (RW bit)
  A.put(e::movz(0, 0x3c4, 0));             // mov x0, 0x3c4
  A.put(e::msr(SysReg::SPSR_EL2, 0));      // EL1 config (SP_EL0, masked)
  A.put(e::movz(0, 0x9, 1));               // mov x0, 0x90000
  A.put(e::msr(SysReg::ELR_EL2, 0));       // EL1 start address
  uint64_t EretAddr = A.here();
  A.put(e::eret());                        // "exception return" to EL1

  // *** calling the vector from EL1 (lines 13-16) ***
  A.org(0x90000);
  A.label("enter_el1");
  A.put(e::movz(0, 0));                    // zero out x0
  uint64_t HvcAddr = A.here();
  A.put(e::hvc(0));                        // hypervisor call
  A.label("hang");
  A.b("hang");                             // hang forever

  // *** the exception vector: lower-EL AArch64 synchronous entry ***
  A.org(0xa0400);
  A.label("el2_sync");
  A.put(e::movz(0, 42));                   // put 42 in x0
  uint64_t VecEretAddr = A.here();
  A.put(e::eret());                        // return from exception

  Verifier V(aarch64());
  V.addCode(A.finish());
  smt::TermBuilder &TB = V.builder();

  // Default constraints: the init code runs at EL2 with SP_EL2 selected.
  V.defaults()
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b10))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  // The first eret additionally needs the installed SPSR/HCR values
  // (Fig. 1's instruction-specific constraints; §2.8).
  V.at(EretAddr)
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b10))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1))
      .assume(Reg("SPSR_EL2"), BitVec(64, 0x3c4))
      .assume(Reg("HCR_EL2"), BitVec(64, 0x80000000ull));
  // EL1 code (lines 13-16): EL=1, SP_EL0 selected (SPSR.M = EL1t).
  V.at(0x90000)
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b01))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 0));
  V.at(HvcAddr)
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b01))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 0));
  V.at(A.addrOf("hang")); // no constraints needed for b .
  // Vector code runs at EL2 again; its eret returns to EL1 (the SPSR was
  // banked by the hvc, so constrain its shape rather than its value).
  V.at(0xa0400)
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b10))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  V.at(VecEretAddr)
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b10))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1))
      .assume(Reg("HCR_EL2"), BitVec(64, 0x80000000ull))
      .constrain(Reg("SPSR_EL2"),
                 [](smt::TermBuilder &TB2, const Term *Spsr) {
                   return TB2.andTerm(
                       TB2.eqTerm(TB2.extract(4, 4, Spsr),
                                  TB2.constBV(1, 0)),
                       TB2.eqTerm(TB2.extract(3, 2, Spsr),
                                  TB2.constBV(2, 0b01)));
                 });

  std::string Err;
  if (!V.generateTraces(Err))
    return genFailed(std::move(Res), V, Err);

  // Goal (registered at the hang loop): x0 == 42.  Verifying the goal spec
  // itself is the self-invariant proof for "b ." (it preserves x0).
  Spec Goal = V.makeSpec("hvc_goal");
  Goal.reg(Reg("R0"), TB.constBV(64, 42));
  Goal.reg(Reg("PSTATE", "EL"), TB.constBV(2, 0b01));
  Goal.reg(Reg("PSTATE", "SP"), TB.constBV(1, 0));

  // Entry spec: ownership of everything the program touches; no
  // constraints on the initial system-register values.
  Spec Entry = V.makeSpec("hvc_entry");
  Entry.regAny(Reg("R0"));
  Entry.reg(Reg("PSTATE", "EL"), TB.constBV(2, 0b10));
  Entry.reg(Reg("PSTATE", "SP"), TB.constBV(1, 1));
  Entry.regCol(nzcvCol(Entry));
  Entry.regCol(daifCol(Entry));
  for (const char *SR : {"VBAR_EL2", "HCR_EL2", "SPSR_EL2", "ELR_EL2",
                         "ESR_EL2"})
    Entry.regAny(Reg(SR));

  auto &PE = V.engine();
  PE.registerSpec(A.addrOf("_start"), &Entry);
  PE.registerSpec(A.addrOf("hang"), &Goal);
  bool Ok = PE.verifyAll();
  return finishResult(std::move(Res), V, Ok,
                      Entry.sizeMetric() + Goal.sizeMetric(), /*Hints=*/2);
}
