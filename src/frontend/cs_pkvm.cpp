//===- frontend/cs_pkvm.cpp - The pKVM-style exception handler -------------------===//
//
// A hypercall handler in the shape of pKVM's stub-vector handler (§6):
// dispatch on the exception class in ESR_EL2 and a hypercall id in x0;
// HVC_SOFT_RESTART (1) repoints the return state at EL2, and
// HVC_RESET_VECTORS (2) returns to the caller; both install a vector base
// that was patched into four move-wide instructions at load time — the
// immediates are *symbolic*, so the proof covers every relocation offset.
// Non-hypercall exceptions branch into the large C codebase, modeled as an
// assumed-correct continuation.  The eret concludes under a constraint
// admitting both possible SPSR values, exactly as the paper describes.
//
//===----------------------------------------------------------------------===//

#include "frontend/CaseStudies.h"

#include "arch/AArch64.h"
#include "frontend/CsCommon.h"

using namespace islaris;
using namespace islaris::frontend;
using islaris::itl::Reg;
using islaris::seplogic::Spec;
using smt::Term;

CaseResult islaris::frontend::runPkvm() {
  CaseResult Res;
  Res.Name = "pKVM";
  Res.Isa = "Arm";

  namespace e = arch::aarch64::enc;
  using arch::aarch64::Cond;
  using arch::aarch64::SysReg;
  arch::aarch64::Asm A;

  A.org(0x20400); // el2_sync vector entry (lower EL, AArch64)
  A.label("handler");
  A.put(e::mrs(3, SysReg::ESR_EL2));   // x3 = syndrome
  A.put(e::lsrImm(4, 3, 26));          // x4 = exception class
  A.put(e::cmpImm(4, 0x16));           // HVC from AArch64?
  A.bcond(Cond::NE, "to_host");
  A.put(e::cmpImm(0, 1));              // HVC_SOFT_RESTART?
  A.bcond(Cond::EQ, "soft");
  A.put(e::cmpImm(0, 2));              // HVC_RESET_VECTORS?
  A.bcond(Cond::EQ, "install");
  A.b("to_host");

  A.label("soft");                     // repoint the return state at EL2
  A.put(e::msr(SysReg::ELR_EL2, 1));   // return to the x1 parameter
  A.put(e::movz(2, 0x3c9));            // EL2h, interrupts masked
  A.put(e::msr(SysReg::SPSR_EL2, 2));

  A.label("install");
  // Four move-wide instructions whose immediates are patched at load time
  // with the relocated vector base (symbolic imm16 fields).
  uint64_t Reloc0 = A.here();
  A.put(e::movz(5, 0));
  uint64_t Reloc1 = A.here();
  A.put(e::movk(5, 0, 1));
  uint64_t Reloc2 = A.here();
  A.put(e::movk(5, 0, 2));
  uint64_t Reloc3 = A.here();
  A.put(e::movk(5, 0, 3));
  A.put(e::msr(SysReg::VBAR_EL2, 5));
  // Save/restore a bank of EL2 system state (the handler interacts with
  // many system registers).
  for (SysReg SR : {SysReg::TPIDR_EL2, SysReg::MAIR_EL2, SysReg::TCR_EL2,
                    SysReg::TTBR0_EL2, SysReg::MDCR_EL2, SysReg::CPTR_EL2,
                    SysReg::HSTR_EL2, SysReg::VTTBR_EL2, SysReg::VTCR_EL2,
                    SysReg::CNTHCTL_EL2, SysReg::CNTVOFF_EL2}) {
    A.put(e::mrs(6, SR));
    A.put(e::msr(SR, 6));
  }
  A.put(e::movz(0, 0));                // success
  uint64_t EretAddr = A.here();
  A.put(e::eret());

  A.label("to_host");
  A.put(e::br(7));                     // into the assumed-correct C code

  Verifier V(aarch64());
  V.addCode(A.finish());
  smt::TermBuilder &TB = V.builder();

  // The relocation patch: imm16 fields [20:5] symbolic in all four words.
  for (uint64_t Addr : {Reloc0, Reloc1, Reloc2, Reloc3})
    V.symbolicAt(Addr, 20, 5);

  V.defaults()
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b10))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1));
  // The concluding eret: neither the original nor the updated SPSR value
  // alone covers both hypercalls, so constrain it to the two possibilities
  // (§6: "a more complex constraint, capturing both possible values").
  V.at(EretAddr)
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b10))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1))
      .assume(Reg("HCR_EL2"), BitVec(64, 0x80000000ull))
      .constrain(Reg("SPSR_EL2"), [](smt::TermBuilder &TB2,
                                     const Term *Spsr) {
        const Term *M = TB2.extract(3, 2, Spsr);
        return TB2.andTerm(
            TB2.eqTerm(TB2.extract(4, 4, Spsr), TB2.constBV(1, 0)),
            TB2.orTerm(TB2.eqTerm(M, TB2.constBV(2, 0b01)),
                       TB2.eqTerm(M, TB2.constBV(2, 0b10))));
      });

  std::string Err;
  if (!V.generateTraces(Err))
    return genFailed(std::move(Res), V, Err);

  // The patched vector base, reconstructed from the symbolic immediates.
  auto OpVar = [&](uint64_t Addr) { return V.opcodeVarsAt(Addr).at(0); };
  const Term *Vbar = TB.zeroExtend(48, OpVar(Reloc0));
  Vbar = TB.bvOr(Vbar, TB.bvShl(TB.zeroExtend(48, OpVar(Reloc1)),
                                TB.constBV(64, 16)));
  Vbar = TB.bvOr(Vbar, TB.bvShl(TB.zeroExtend(48, OpVar(Reloc2)),
                                TB.constBV(64, 32)));
  Vbar = TB.bvOr(Vbar, TB.bvShl(TB.zeroExtend(48, OpVar(Reloc3)),
                                TB.constBV(64, 48)));

  // Continuations.  SOFT_RESTART lands on the x1 parameter at EL2;
  // RESET_VECTORS returns to the caller at EL1.  Both must observe the
  // patched vector base and a zeroed x0.
  Spec SoftPost = V.makeSpec("pkvm_soft_post");
  {
    const Term *PV = SoftPost.param(64, "pv");
    SoftPost.reg(Reg("VBAR_EL2"), PV);
    SoftPost.reg(Reg("R0"), TB.constBV(64, 0));
    SoftPost.reg(Reg("PSTATE", "EL"), TB.constBV(2, 0b10));
  }
  Spec ResetPost = V.makeSpec("pkvm_reset_post");
  {
    const Term *PV = ResetPost.param(64, "pv");
    ResetPost.reg(Reg("VBAR_EL2"), PV);
    ResetPost.reg(Reg("R0"), TB.constBV(64, 0));
    ResetPost.reg(Reg("PSTATE", "EL"), TB.constBV(2, 0b01));
  }
  // The host handler (the pKVM C codebase) is assumed correct: a trivially
  // true continuation, as in the paper.
  Spec HostSpec = V.makeSpec("pkvm_host");

  Spec Entry = V.makeSpec("pkvm_entry");
  const Term *C = Entry.evar(64, "c");    // hypercall id
  const Term *X1 = Entry.evar(64, "x1");  // SOFT_RESTART target
  const Term *Esr = Entry.evar(64, "esr");
  const Term *Spsr0 = Entry.evar(64, "spsr0");
  const Term *Elr0 = Entry.evar(64, "elr0");
  const Term *Host = Entry.evar(64, "host");
  Entry.reg(Reg("R0"), C).reg(Reg("R1"), X1);
  for (unsigned RN : {2u, 3u, 4u, 5u, 6u})
    Entry.regAny(arch::aarch64::xreg(RN));
  Entry.reg(Reg("R7"), Host);
  Entry.reg(Reg("ESR_EL2"), Esr);
  Entry.reg(Reg("SPSR_EL2"), Spsr0);
  Entry.reg(Reg("ELR_EL2"), Elr0);
  Entry.reg(Reg("HCR_EL2"), TB.constBV(64, 0x80000000ull));
  Entry.regAny(Reg("VBAR_EL2"));
  for (const char *SR :
       {"TPIDR_EL2", "MAIR_EL2", "TCR_EL2", "TTBR0_EL2", "MDCR_EL2",
        "CPTR_EL2", "HSTR_EL2", "VTTBR_EL2", "VTCR_EL2", "CNTHCTL_EL2",
        "CNTVOFF_EL2"})
    Entry.regAny(Reg(SR));
  Entry.reg(Reg("PSTATE", "EL"), TB.constBV(2, 0b10));
  Entry.reg(Reg("PSTATE", "SP"), TB.constBV(1, 1));
  Entry.regCol(nzcvCol(Entry));
  Entry.regCol(daifCol(Entry));
  // The exception came from AArch64 EL1, and a hypercall id is 1 or 2
  // whenever the class is HVC.
  Entry.pure(TB.eqTerm(TB.extract(3, 2, Spsr0), TB.constBV(2, 0b01)));
  Entry.pure(TB.eqTerm(TB.extract(4, 4, Spsr0), TB.constBV(1, 0)));
  Entry.pure(TB.impliesTerm(
      TB.eqTerm(TB.bvLShr(Esr, TB.constBV(64, 26)), TB.constBV(64, 0x16)),
      TB.orTerm(TB.eqTerm(C, TB.constBV(64, 1)),
                TB.eqTerm(C, TB.constBV(64, 2)))));
  Entry.instrPre(X1, &SoftPost, {Vbar});
  Entry.instrPre(Elr0, &ResetPost, {Vbar});
  Entry.instrPre(Host, &HostSpec);

  auto &PE = V.engine();
  PE.registerSpec(A.addrOf("handler"), &Entry);
  bool Ok = PE.verifyAll();
  return finishResult(std::move(Res), V, Ok,
                      Entry.sizeMetric() + SoftPost.sizeMetric() +
                          ResetPost.sizeMetric(),
                      /*Hints=*/3);
}
