//===- frontend/cs_misc.cpp - unaligned / UART / rbit case studies ---------------===//
//
// Three of the §6 case studies:
//
//  - unaligned: a misaligned str under SCTLR_EL1.A=1 takes a data abort;
//    we verify it vectors to VBAR_EL1+0x200 with the right SPSR/ELR/ESR/
//    FAR updates and masked interrupts.
//  - UART: the compiled uart1_putc poll loop, verified against the srec
//    IO specification of §6.
//  - rbit: compiled C with inline assembly; x0 comes back bit-reversed.
//
//===----------------------------------------------------------------------===//

#include "frontend/CaseStudies.h"

#include "arch/AArch64.h"
#include "frontend/CsCommon.h"

using namespace islaris;
using namespace islaris::frontend;
using islaris::itl::Reg;
using islaris::seplogic::IoSpecNode;
using islaris::seplogic::IoSpecPtr;
using islaris::seplogic::Spec;
using smt::Term;

//===----------------------------------------------------------------------===//
// Unaligned access fault.
//===----------------------------------------------------------------------===//

CaseResult islaris::frontend::runUnaligned() {
  CaseResult Res;
  Res.Name = "unaligned";
  Res.Isa = "Arm";

  namespace e = arch::aarch64::enc;
  arch::aarch64::Asm A;
  A.org(0x8000);
  uint64_t StrAddr = A.here();
  A.put(e::strImm(2, 0, 1, 0)); // str w0, [x1]

  Verifier V(aarch64());
  V.addCode(A.finish());
  smt::TermBuilder &TB = V.builder();

  // Configuration: EL1, SP_EL1 selected, alignment checking on
  // (SCTLR_EL1.A, constrained rather than fully concrete).
  V.defaults()
      .assume(Reg("PSTATE", "EL"), BitVec(2, 0b01))
      .assume(Reg("PSTATE", "SP"), BitVec(1, 1))
      .constrain(Reg("SCTLR_EL1"),
                 [](smt::TermBuilder &TB2, const Term *S) {
                   return TB2.eqTerm(TB2.extract(1, 1, S),
                                     TB2.constBV(1, 1));
                 });

  std::string Err;
  if (!V.generateTraces(Err))
    return genFailed(std::move(Res), V, Err);

  // Fault continuation: registers banked and syndrome recorded.
  Spec FaultPost = V.makeSpec("fault_post");
  const Term *PAddr = FaultPost.param(64, "paddr");
  FaultPost.reg(Reg("FAR_EL1"), PAddr);
  FaultPost.reg(Reg("ELR_EL1"), TB.constBV(64, StrAddr));
  // ESR: EC=0x25 (data abort, same EL), IL=1, DFSC=0x21 (alignment).
  FaultPost.reg(Reg("ESR_EL1"), TB.constBV(64, 0x96000021ull));
  FaultPost.reg(Reg("PSTATE", "EL"), TB.constBV(2, 0b01));
  FaultPost.reg(Reg("PSTATE", "SP"), TB.constBV(1, 1));
  for (const char *F : {"D", "A", "I", "F"})
    FaultPost.reg(Reg("PSTATE", F), TB.constBV(1, 1)); // masked
  FaultPost.regAny(Reg("SPSR_EL1"));

  Spec Entry = V.makeSpec("unaligned_entry");
  const Term *Addr = Entry.evar(64, "a");
  const Term *Vb = Entry.evar(64, "vb");
  Entry.regAny(Reg("R0"));
  Entry.reg(Reg("R1"), Addr);
  Entry.reg(Reg("VBAR_EL1"), Vb);
  Entry.reg(Reg("PSTATE", "EL"), TB.constBV(2, 0b01));
  Entry.reg(Reg("PSTATE", "SP"), TB.constBV(1, 1));
  Entry.regCol(nzcvCol(Entry));
  Entry.regCol(daifCol(Entry));
  const Term *Sctlr = Entry.evar(64, "sctlr");
  Entry.reg(Reg("SCTLR_EL1"), Sctlr);
  Entry.pure(TB.eqTerm(TB.extract(1, 1, Sctlr), TB.constBV(1, 1)));
  for (const char *SR : {"SPSR_EL1", "ELR_EL1", "ESR_EL1", "FAR_EL1"})
    Entry.regAny(Reg(SR));
  // The address is misaligned for a 32-bit access (the fault hypothesis).
  Entry.pure(TB.distinctTerm(TB.bvAnd(Addr, TB.constBV(64, 3)),
                             TB.constBV(64, 0)));
  // The handler lives at VBAR_EL1 + 0x200 (current EL, SPx).
  Entry.instrPre(TB.bvAdd(Vb, TB.constBV(64, 0x200)), &FaultPost, {Addr});

  auto &PE = V.engine();
  PE.registerSpec(StrAddr, &Entry);
  bool Ok = PE.verifyAll();
  return finishResult(std::move(Res), V, Ok,
                      Entry.sizeMetric() + FaultPost.sizeMetric(),
                      /*Hints=*/2);
}

//===----------------------------------------------------------------------===//
// UART putc over MMIO.
//===----------------------------------------------------------------------===//

namespace {
constexpr uint64_t UartLsr = 0x3f215054;
constexpr uint64_t UartIo = 0x3f215040;
} // namespace

CaseResult islaris::frontend::runUart() {
  CaseResult Res;
  Res.Name = "UART";
  Res.Isa = "Arm";

  namespace e = arch::aarch64::enc;
  arch::aarch64::Asm A;
  A.org(0x9000);
  A.label("putc");
  A.put(e::movz(1, UartLsr & 0xffff));            // build LSR address
  A.put(e::movk(1, uint16_t(UartLsr >> 16), 1));
  A.label("poll");
  A.put(e::ldrImm(2, 2, 1, 0));                   // ldr w2, [x1]
  A.tbz(2, 5, "poll");                            // loop until TX empty
  A.put(e::nop());                                // the asm volatile nop
  A.put(e::movz(3, UartIo & 0xffff));             // build IO address
  A.put(e::movk(3, uint16_t(UartIo >> 16), 1));
  A.put(e::strImm(2, 0, 3, 0));                   // str w0, [x3]
  A.put(e::ret());

  Verifier V(aarch64());
  V.addCode(A.finish());
  smt::TermBuilder &TB = V.builder();
  V.defaults() = armEl1Assumptions();

  std::string Err;
  if (!V.generateTraces(Err))
    return genFailed(std::move(Res), V, Err);

  // The character value, shared by both registered specs and by the IO
  // specification's write predicate.
  const Term *C = TB.freshVar(smt::Sort::bitvec(64), "c");

  // spec(s) = srec(R. exists b. scons(R(LSR,b),
  //                  b[5] ? scons(W(IO, c[31:0]), done) : R))    (§6)
  IoSpecPtr Done = IoSpecNode::done();
  IoSpecPtr S = IoSpecNode::rec([&, C, Done](IoSpecPtr Self) {
    return IoSpecNode::readStep(
        UartLsr, 4, [C, Self, Done](const Term *B, smt::TermBuilder &TB2) {
          return IoSpecNode::branch(
              TB2.eqTerm(TB2.extract(5, 5, B), TB2.constBV(1, 1)),
              IoSpecNode::writeStep(
                  UartIo, 4,
                  [C](const Term *V2, smt::TermBuilder &TB3) {
                    return TB3.eqTerm(V2, TB3.extract(31, 0, C));
                  },
                  Done),
              Self);
        });
  });

  Spec Post = V.makeSpec("uart_post");
  Post.io(Done);
  Post.regAny(Reg("R0")).regAny(Reg("R1")).regAny(Reg("R2"));
  Post.regAny(Reg("R3")).regAny(Reg("R30"));

  auto commonChunks = [&](Spec &Sp) {
    addArmEl1SysRegs(Sp, TB);
    Sp.mmio(UartLsr, 4).mmio(UartIo, 4);
    Sp.io(S);
  };

  Spec Entry = V.makeSpec("uart_entry");
  Entry.shareEvar(C);
  const Term *R = Entry.evar(64, "r");
  Entry.reg(Reg("R0"), C).regAny(Reg("R1")).regAny(Reg("R2"));
  Entry.regAny(Reg("R3")).reg(Reg("R30"), R);
  commonChunks(Entry);
  Entry.instrPre(R, &Post);

  // Loop invariant at the poll label: the LSR address is installed and the
  // IO spec is still at its initial state.
  Spec Inv = V.makeSpec("uart_inv");
  Inv.shareEvar(C);
  const Term *IR = Inv.evar(64, "ir");
  Inv.reg(Reg("R0"), C);
  Inv.reg(Reg("R1"), TB.constBV(64, UartLsr));
  Inv.regAny(Reg("R2")).regAny(Reg("R3"));
  Inv.reg(Reg("R30"), IR);
  commonChunks(Inv);
  Inv.instrPre(IR, &Post);

  auto &PE = V.engine();
  PE.registerSpec(A.addrOf("putc"), &Entry);
  PE.registerSpec(A.addrOf("poll"), &Inv);
  bool Ok = PE.verifyAll();
  return finishResult(std::move(Res), V, Ok,
                      Entry.sizeMetric() + Inv.sizeMetric() +
                          Post.sizeMetric(),
                      /*Hints=*/unsigned(Inv.sizeMetric()));
}

//===----------------------------------------------------------------------===//
// rbit (C inline assembly).
//===----------------------------------------------------------------------===//

CaseResult islaris::frontend::runRbit() {
  CaseResult Res;
  Res.Name = "rbit";
  Res.Isa = "Arm";

  namespace e = arch::aarch64::enc;
  arch::aarch64::Asm A;
  A.org(0xb000);
  uint64_t EntryAddr = A.here();
  A.put(e::rbit64(0, 0)); // rbit x0, x0
  A.put(e::ret());

  Verifier V(aarch64());
  V.addCode(A.finish());
  smt::TermBuilder &TB = V.builder();
  std::string Err;
  if (!V.generateTraces(Err))
    return genFailed(std::move(Res), V, Err);

  // Post: x0 holds the bit reversal of the argument.  The "intuitive
  // specification" is built independently of the trace's concat-of-extracts
  // term, as a shift-and-mask formula: result |= ((x >> i) & 1) << (63-i).
  // Relating the two shapes is the side condition the paper mentions
  // needing manual proof; here the bitvector solver discharges it.
  Spec Post = V.makeSpec("rbit_post");
  const Term *PX = Post.param(64, "px");
  const Term *One = TB.constBV(64, 1);
  const Term *Rev = TB.constBV(64, 0);
  for (unsigned I = 0; I < 64; ++I)
    Rev = TB.bvOr(
        Rev, TB.bvShl(TB.bvAnd(TB.bvLShr(PX, TB.constBV(64, I)), One),
                      TB.constBV(64, 63 - I)));
  Post.reg(Reg("R0"), Rev);
  Post.regAny(Reg("R30"));

  Spec Entry = V.makeSpec("rbit_entry");
  const Term *X = Entry.evar(64, "x");
  const Term *R = Entry.evar(64, "r");
  Entry.reg(Reg("R0"), X).reg(Reg("R30"), R);
  Entry.instrPre(R, &Post, {X});

  auto &PE = V.engine();
  PE.registerSpec(EntryAddr, &Entry);
  bool Ok = PE.verifyAll();
  return finishResult(std::move(Res), V, Ok,
                      Entry.sizeMetric() + Post.sizeMetric(), /*Hints=*/0);
}
