//===- frontend/CaseStudies.h - The paper's evaluation programs -*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The nine case studies of Fig. 12 (§2, §6), each returning the
/// measurements the Fig. 12 harness tabulates:
///
///   memcpy (Arm, RISC-V)     — Fig. 7/8: loop with invariant, byte arrays.
///   hvc                      — Fig. 9: install and call an exception
///                              vector across EL2/EL1.
///   pKVM handler             — §6: relocation-parametric hypercall
///                              handler, partially symbolic opcodes,
///                              SPSR constrained to two values.
///   unaligned                — §6: misaligned store takes a data abort.
///   UART                     — §6: MMIO poll loop against a srec spec.
///   rbit                     — §6: inline-assembly bit reversal.
///   binary search (Arm, RV)  — §6: comparator function pointer via the
///                              formalized calling convention.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_FRONTEND_CASESTUDIES_H
#define ISLARIS_FRONTEND_CASESTUDIES_H

#include "isla/Executor.h"
#include "seplogic/Engine.h"
#include "support/Diag.h"
#include "support/Guard.h"

#include <string>
#include <vector>

namespace islaris::cache {
class TraceCache;
class SideCondStore;
}

namespace islaris::support {
class FaultInjector;
}

namespace islaris::frontend {

/// One Fig. 12 row.
struct CaseResult {
  std::string Name;
  std::string Isa;
  bool Ok = false;
  std::string Error;
  /// Structured diagnostic when !Ok: distinguishes a genuine proof failure
  /// (ProofFailed, SpecError, ...) from an infrastructure failure (budget
  /// exhaustion, cancellation, injected fault, escaped exception) — see
  /// support::isInfrastructureError.
  support::Diag D;
  unsigned AsmInstrs = 0;  ///< "asm" column.
  unsigned ItlEvents = 0;  ///< "ITL" column.
  unsigned SpecSize = 0;   ///< "Spec" column (chunks + pures + binders).
  unsigned Hints = 0;      ///< "Proof" column analogue: manual hints
                           ///< (pure facts + invariants we had to supply).
  double IslaSeconds = 0;  ///< Symbolic-execution time.
  unsigned TracesExecuted = 0; ///< Instructions symbolically executed.
  unsigned CacheHits = 0;      ///< Instructions served by the trace cache.
  unsigned Deduped = 0;        ///< Instructions deduplicated in-batch.
  unsigned IslaMemoHits = 0;   ///< Executor queries answered by the memo.
  /// Executor queries answered by the persistent side-condition store.
  unsigned IslaStoreHits = 0;
  /// Model statements dispatched by fresh executions, and statements the
  /// snapshot engine restored from checkpoints instead of re-executing.
  uint64_t IslaStmts = 0;
  uint64_t IslaStmtsSkipped = 0;
  unsigned HelperMemoHits = 0; ///< Pure-helper summary-memo hits.
  /// Merge-engine counters (zero under Snapshot/Replay): forks collapsed
  /// at their post-dominator join, forks demoted to enumeration, and ite
  /// terms the joins introduced.
  unsigned PathsMerged = 0;
  unsigned MergeFallbacks = 0;
  uint64_t IteTermsIntroduced = 0;
  /// Rewriter fixpoint-cap hits observed by this study's executions —
  /// nonzero means two rewrite rules are ping-ponging (a regression that
  /// used to be silent).
  uint64_t FixpointCapHits = 0;
  /// Batch-driver fault tolerance: extra executions spent on retryable
  /// failures, and jobs quarantined without a trace.
  unsigned Retries = 0;
  unsigned Quarantined = 0;
  /// True when this row was restored from a run journal instead of being
  /// re-verified (SuiteOptions::Resume); the restored fields are the ones
  /// the original run recorded.
  bool Resumed = false;
  seplogic::ProofStats Proof;
};

/// Journal codec for CaseResult rows.  Round-trips every field (Resumed
/// excepted — the decoder's caller decides that); doubles travel as
/// hexfloats so a resumed row is bit-identical to the recorded one.
std::string encodeCaseResult(const CaseResult &R);
bool decodeCaseResult(const std::string &Text, CaseResult &Out);

/// Runs memcpy (Fig. 7, GCC-shaped Arm code) copying \p N bytes with
/// symbolic contents and addresses.
CaseResult runMemcpyArm(unsigned N = 4, bool SimplifiedTraces = true);
/// The Clang-shaped RISC-V memcpy of Fig. 7.
CaseResult runMemcpyRv(unsigned N = 4);
/// The Fig. 9 exception-vector install/call program.
CaseResult runHvc();
/// The pKVM-style relocation-parametric hypercall handler.
CaseResult runPkvm();
/// The misaligned-store fault case study.
CaseResult runUnaligned();
/// The UART putc MMIO poll loop.
CaseResult runUart();
/// The rbit inline-assembly case study.
CaseResult runRbit();
/// Comparator-parametric binary search over \p N sorted elements (Arm).
CaseResult runBinSearchArm(unsigned N = 4);
/// The RISC-V binary search.
CaseResult runBinSearchRv(unsigned N = 4);

/// How to run the suite: worker threads across case studies (the studies
/// are fully independent — each owns a private Verifier/TermBuilder) and an
/// optional shared trace cache installed as the ambient cache for the run.
struct SuiteOptions {
  unsigned Threads = 1; ///< 0 = hardware concurrency, 1 = serial.
  cache::TraceCache *Cache = nullptr;
  /// Shared persistent side-condition store, installed as the ambient
  /// store so each study's proof engine reuses discharged SMT queries
  /// across studies and — when the store persists — across runs.
  cache::SideCondStore *SideCond = nullptr;
  /// Hard resource guards installed as the ambient support::RunLimits for
  /// the run (all-zero = unguarded, exactly the seed behavior).
  support::RunLimits Limits;
  /// Fault injector activated for the duration of the run (chaos testing).
  /// Null leaves whatever injector is already active — including one
  /// configured from ISLARIS_FAULTS / ISLARIS_FAULT_SEED by the harness.
  support::FaultInjector *Faults = nullptr;
  /// Path-exploration engine installed as the process default for the run.
  /// Snapshot and Replay are bit-identical (Replay is the differential
  /// oracle and ablation baseline); Merge collapses both-feasible forks at
  /// their join points into ite values, so its traces are semantically
  /// equivalent but differently shaped.
  isla::ExecEngine Engine = isla::ExecEngine::Snapshot;
  /// Write-ahead run journal: when non-empty, every completed study appends
  /// a checksummed record (keyed on study identity + suite configuration)
  /// at this path, so a killed run can be resumed.
  std::string JournalPath;
  /// Skip studies whose journal record survived a previous (possibly
  /// killed) run with the same configuration, restoring their recorded
  /// rows verbatim (CaseResult::Resumed).  Requires JournalPath.
  bool Resume = false;
};

/// Aggregate view of a suite run: every case study is always attempted
/// (a failing study never aborts the rest), and the split between proof
/// failures and infrastructure errors drives the exit code.
struct SuiteSummary {
  unsigned Passed = 0;
  unsigned ProofFailures = 0; ///< !Ok with a non-infrastructure code.
  unsigned InfraErrors = 0;   ///< !Ok with an infrastructure code.
  unsigned JobsResumed = 0;   ///< Rows restored from the run journal.
  bool allOk() const { return ProofFailures == 0 && InfraErrors == 0; }
};

SuiteSummary summarize(const std::vector<CaseResult> &Results);

/// Process exit status for a suite run: 0 when every study verified,
/// 1 when at least one proof failed, 2 when any study hit an
/// infrastructure error (which dominates — the run is inconclusive).
int suiteExitCode(const std::vector<CaseResult> &Results);

/// All nine Fig. 12 rows, in the paper's order (serial, uncached).
std::vector<CaseResult> runAllCaseStudies();

/// All nine rows under \p O: case studies run concurrently on O.Threads
/// workers and share O.Cache.  Results are positionally identical to the
/// serial overload.
std::vector<CaseResult> runAllCaseStudies(const SuiteOptions &O);

} // namespace islaris::frontend

#endif // ISLARIS_FRONTEND_CASESTUDIES_H
