//===- frontend/Verifier.cpp - End-to-end Islaris workflow ---------------------===//

#include "frontend/Verifier.h"

#include "cache/BatchDriver.h"
#include "cache/SideCondCache.h"
#include "models/Models.h"

#include <chrono>

using namespace islaris;
using namespace islaris::frontend;

ArchInfo islaris::frontend::aarch64() {
  return {&models::aarch64Model(), "_PC",
          [](const itl::Reg &R) -> unsigned {
            if (R.Base == "PSTATE")
              return R.Field == "EL" ? 2 : 1;
            return 64;
          },
          "aarch64"};
}

ArchInfo islaris::frontend::rv64() {
  return {&models::rv64Model(), "PC",
          [](const itl::Reg &) -> unsigned { return 64; }, "rv64"};
}

Verifier::Verifier(ArchInfo Arch)
    : Arch(std::move(Arch)), Cache(cache::ambientTraceCache()),
      SideCond(cache::ambientSideCondCache()),
      Limits(support::ambientRunLimits()) {}

void Verifier::addCode(const std::map<uint64_t, uint32_t> &NewCode) {
  for (const auto &[Addr, Op] : NewCode) {
    if (Code.count(Addr)) {
      // Overlapping images are a setup error, not UB: keep the first
      // mapping, record the conflict, and let generateTraces refuse to run
      // on a verifier whose code layout is ambiguous.
      if (LastDiag.ok())
        LastDiag = support::Diag::error(
            support::ErrorCode::OverlappingCode, "frontend",
            "overlapping code regions: two opcodes mapped at " +
                BitVec(64, Addr).toHexString());
      continue;
    }
    Code[Addr] = Op;
  }
}

void Verifier::symbolicAt(uint64_t Addr, unsigned Hi, unsigned Lo) {
  auto It = Code.find(Addr);
  if (It == Code.end()) {
    if (LastDiag.ok())
      LastDiag = support::Diag::error(
          support::ErrorCode::UnknownSymbol, "frontend",
          "symbolicAt(" + BitVec(64, Addr).toHexString() +
              ") names an address with no code (call addCode first)");
    return;
  }
  auto SpecIt = OpcodeSpecs.find(Addr);
  if (SpecIt == OpcodeSpecs.end()) {
    OpcodeSpecs[Addr] = isla::OpcodeSpec::symbolicField(It->second, Hi, Lo);
    return;
  }
  // Extend an existing partially-symbolic opcode.
  for (unsigned I = Lo; I <= Hi; ++I)
    SpecIt->second.SymMask = SpecIt->second.SymMask.insertSlice(
        I, BitVec(1, 1));
}

bool Verifier::generateTraces(std::string &Err) {
  auto Start = std::chrono::steady_clock::now();

  if (!LastDiag.ok()) {
    // A setup error (overlapping addCode, dangling symbolicAt) was recorded
    // earlier; refuse to generate traces from an ambiguous configuration.
    Err = LastDiag.render();
    return false;
  }

  // One job per instruction.  The batch driver canonicalizes each job to
  // its cache key, so repeated opcodes under the same assumptions (e.g.
  // unrolled loop bodies) execute once, and a shared TraceCache can satisfy
  // whole programs without running the executor at all.
  std::vector<cache::TraceJob> Jobs;
  std::vector<uint64_t> Addrs;
  Jobs.reserve(Code.size());
  for (const auto &[Addr, Op] : Code) {
    cache::TraceJob J;
    J.Model = Arch.Model;
    J.ArchName = Arch.Name;
    auto SpecIt = OpcodeSpecs.find(Addr);
    J.Op = SpecIt != OpcodeSpecs.end() ? SpecIt->second
                                       : isla::OpcodeSpec::concrete(Op);
    auto AIt = PerAddr.find(Addr);
    J.Assume = AIt != PerAddr.end() ? &AIt->second : &Defaults;
    J.Opts = Opts;
    // The merge engine must not fold control-flow forks into ite jump
    // targets the proof engine cannot resolve; telling it the PC keeps
    // per-instruction successor addresses concrete per path.
    if (J.Opts.MergePcName.empty())
      J.Opts.MergePcName = Arch.PcName;
    // Resource guards ride on the options but are excluded from the cache
    // fingerprint (a guarded failure is never cached, so a guarded and an
    // unguarded run share entries).
    J.Opts.DeadlineSeconds = Limits.InstrSeconds;
    J.Opts.SolverCheckSeconds = Limits.SolverCheckSeconds;
    J.Opts.SolverConflicts = Limits.SolverConflicts;
    J.Opts.SolverPropagations = Limits.SolverPropagations;
    J.Opts.Cancel = Cancel;
    // The executor's pruning/assert queries go through the same persistent
    // side-condition store as the proof engine's entailments; the driver
    // salts them with the job's model fingerprint.
    J.SideCond = SideCond;
    J.Tag = Addr;
    Jobs.push_back(std::move(J));
    Addrs.push_back(Addr);
  }

  cache::BatchDriver Driver(GenThreads);
  Driver.setOptions({Limits.JobTimeoutSeconds, Limits.JobRetries});
  std::vector<cache::TraceJobResult> Results = Driver.run(Jobs, Cache);
  Gen.Retries += Driver.lastStats().Retries;
  Gen.TimedOut += Driver.lastStats().TimedOut;
  Gen.Quarantined += Driver.lastStats().Failed;

  // Materialize results in address order into this verifier's builder.
  // Every path — fresh, deduped, or cached — round-trips through the
  // printed ITL form, so the three are bit-identical by construction and
  // each materialization re-checks the grammar's adequacy.
  for (size_t I = 0; I < Results.size(); ++I) {
    uint64_t Addr = Addrs[I];
    cache::TraceJobResult &R = Results[I];
    if (!R.Ok) {
      Err = "instruction at " + BitVec(64, Addr).toHexString() + " (" +
            BitVec(32, Code[Addr]).toHexString() + "): " + R.Error;
      LastDiag = R.D.ok() ? support::Diag::error(
                                support::ErrorCode::ModelError, "isla", Err)
                          : R.D;
      LastDiag.Message = Err;
      return false;
    }
    isla::ExecResult Exec;
    if (!cache::TraceCache::decode(R.Entry, TB, Exec, Err)) {
      Err = "instruction at " + BitVec(64, Addr).toHexString() + ": " + Err;
      // A cached entry that parses as an entry but whose trace text does not
      // re-parse is either a corrupt cache payload or an ITL adequacy bug.
      LastDiag = support::Diag::error(
          R.Source == cache::ResultSource::CacheHit
              ? support::ErrorCode::CorruptCacheEntry
              : support::ErrorCode::Internal,
          "trace-cache", Err);
      return false;
    }
    Traces[Addr] = std::move(Exec.Trace);
    OpcodeVars[Addr] = std::move(Exec.OpcodeVars);
    Gen.ItlEvents += Exec.Stats.Events;
    Gen.Paths += Exec.Stats.Paths;
    ++Gen.Instructions;
    switch (R.Source) {
    case cache::ResultSource::Fresh:
      // Solver work is only accounted when it actually happened.
      Gen.SolverQueries += Exec.Stats.SolverQueries;
      Gen.SolverMemoHits += Exec.Stats.SolverMemoHits;
      Gen.SolverStoreHits += Exec.Stats.SolverStoreHits;
      Gen.StmtsExecuted += Exec.Stats.StmtsExecuted;
      Gen.StmtsSkipped += Exec.Stats.StmtsSkippedBySnapshot;
      Gen.HelperMemoHits += Exec.Stats.HelperMemoHits;
      Gen.PathsMerged += Exec.Stats.PathsMerged;
      Gen.MergeFallbacks += Exec.Stats.MergeFallbacks;
      Gen.IteTermsIntroduced += Exec.Stats.IteTermsIntroduced;
      Gen.FixpointCapHits += Exec.Stats.FixpointCapHits;
      ++Gen.Executed;
      break;
    case cache::ResultSource::CacheHit:
      ++Gen.CacheHits;
      break;
    case cache::ResultSource::Deduped:
      ++Gen.Deduped;
      break;
    }
  }
  for (const auto &[Addr, T] : Traces)
    InstrPtrs[Addr] = &T;
  Gen.Seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return true;
}

const itl::Trace *Verifier::traceAt(uint64_t Addr) const {
  auto It = Traces.find(Addr);
  return It == Traces.end() ? nullptr : &It->second;
}

const std::vector<const smt::Term *> &
Verifier::opcodeVarsAt(uint64_t Addr) const {
  static const std::vector<const smt::Term *> Empty;
  auto It = OpcodeVars.find(Addr);
  return It == OpcodeVars.end() ? Empty : It->second;
}

seplogic::Spec Verifier::makeSpec(const std::string &Name) {
  seplogic::Spec S(TB, Name);
  S.RegWidthHint = Arch.RegWidth;
  return S;
}

seplogic::ProofEngine &Verifier::engine() {
  if (!Engine) {
    // An empty instruction map (engine() before generateTraces, or after a
    // failed generation) is not UB: the engine is well-defined over an
    // empty program and any instr() step simply fails its proof with a
    // "no instruction" diagnostic.
    Engine = std::make_unique<seplogic::ProofEngine>(TB, InstrPtrs,
                                                     Arch.PcName);
    if (SideCond)
      Engine->setSideCondCache(SideCond);
    smt::SolverLimits SL;
    SL.MaxConflicts = Limits.SolverConflicts;
    SL.MaxPropagations = Limits.SolverPropagations;
    SL.MaxSeconds = Limits.SolverCheckSeconds;
    SL.Cancel = Cancel;
    if (!SL.unlimited())
      Engine->setSolverLimits(SL);
  }
  return *Engine;
}
