//===- frontend/Verifier.cpp - End-to-end Islaris workflow ---------------------===//

#include "frontend/Verifier.h"

#include "cache/BatchDriver.h"
#include "cache/SideCondCache.h"
#include "models/Models.h"

#include <chrono>

using namespace islaris;
using namespace islaris::frontend;

ArchInfo islaris::frontend::aarch64() {
  return {&models::aarch64Model(), "_PC",
          [](const itl::Reg &R) -> unsigned {
            if (R.Base == "PSTATE")
              return R.Field == "EL" ? 2 : 1;
            return 64;
          },
          "aarch64"};
}

ArchInfo islaris::frontend::rv64() {
  return {&models::rv64Model(), "PC",
          [](const itl::Reg &) -> unsigned { return 64; }, "rv64"};
}

Verifier::Verifier(ArchInfo Arch)
    : Arch(std::move(Arch)), Cache(cache::ambientTraceCache()),
      SideCond(cache::ambientSideCondCache()) {}

void Verifier::addCode(const std::map<uint64_t, uint32_t> &NewCode) {
  for (const auto &[Addr, Op] : NewCode) {
    assert(!Code.count(Addr) && "overlapping code regions");
    Code[Addr] = Op;
  }
}

void Verifier::symbolicAt(uint64_t Addr, unsigned Hi, unsigned Lo) {
  auto It = Code.find(Addr);
  assert(It != Code.end() && "symbolicAt before addCode");
  auto SpecIt = OpcodeSpecs.find(Addr);
  if (SpecIt == OpcodeSpecs.end()) {
    OpcodeSpecs[Addr] = isla::OpcodeSpec::symbolicField(It->second, Hi, Lo);
    return;
  }
  // Extend an existing partially-symbolic opcode.
  for (unsigned I = Lo; I <= Hi; ++I)
    SpecIt->second.SymMask = SpecIt->second.SymMask.insertSlice(
        I, BitVec(1, 1));
}

bool Verifier::generateTraces(std::string &Err) {
  auto Start = std::chrono::steady_clock::now();

  // One job per instruction.  The batch driver canonicalizes each job to
  // its cache key, so repeated opcodes under the same assumptions (e.g.
  // unrolled loop bodies) execute once, and a shared TraceCache can satisfy
  // whole programs without running the executor at all.
  std::vector<cache::TraceJob> Jobs;
  std::vector<uint64_t> Addrs;
  Jobs.reserve(Code.size());
  for (const auto &[Addr, Op] : Code) {
    cache::TraceJob J;
    J.Model = Arch.Model;
    J.ArchName = Arch.Name;
    auto SpecIt = OpcodeSpecs.find(Addr);
    J.Op = SpecIt != OpcodeSpecs.end() ? SpecIt->second
                                       : isla::OpcodeSpec::concrete(Op);
    auto AIt = PerAddr.find(Addr);
    J.Assume = AIt != PerAddr.end() ? &AIt->second : &Defaults;
    J.Opts = Opts;
    J.Tag = Addr;
    Jobs.push_back(std::move(J));
    Addrs.push_back(Addr);
  }

  cache::BatchDriver Driver(GenThreads);
  std::vector<cache::TraceJobResult> Results = Driver.run(Jobs, Cache);

  // Materialize results in address order into this verifier's builder.
  // Every path — fresh, deduped, or cached — round-trips through the
  // printed ITL form, so the three are bit-identical by construction and
  // each materialization re-checks the grammar's adequacy.
  for (size_t I = 0; I < Results.size(); ++I) {
    uint64_t Addr = Addrs[I];
    cache::TraceJobResult &R = Results[I];
    if (!R.Ok) {
      Err = "instruction at " + BitVec(64, Addr).toHexString() + " (" +
            BitVec(32, Code[Addr]).toHexString() + "): " + R.Error;
      return false;
    }
    isla::ExecResult Exec;
    if (!cache::TraceCache::decode(R.Entry, TB, Exec, Err)) {
      Err = "instruction at " + BitVec(64, Addr).toHexString() + ": " + Err;
      return false;
    }
    Traces[Addr] = std::move(Exec.Trace);
    OpcodeVars[Addr] = std::move(Exec.OpcodeVars);
    Gen.ItlEvents += Exec.Stats.Events;
    Gen.Paths += Exec.Stats.Paths;
    ++Gen.Instructions;
    switch (R.Source) {
    case cache::ResultSource::Fresh:
      // Solver work is only accounted when it actually happened.
      Gen.SolverQueries += Exec.Stats.SolverQueries;
      Gen.SolverMemoHits += Exec.Stats.SolverMemoHits;
      ++Gen.Executed;
      break;
    case cache::ResultSource::CacheHit:
      ++Gen.CacheHits;
      break;
    case cache::ResultSource::Deduped:
      ++Gen.Deduped;
      break;
    }
  }
  for (const auto &[Addr, T] : Traces)
    InstrPtrs[Addr] = &T;
  Gen.Seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return true;
}

const itl::Trace *Verifier::traceAt(uint64_t Addr) const {
  auto It = Traces.find(Addr);
  return It == Traces.end() ? nullptr : &It->second;
}

const std::vector<const smt::Term *> &
Verifier::opcodeVarsAt(uint64_t Addr) const {
  static const std::vector<const smt::Term *> Empty;
  auto It = OpcodeVars.find(Addr);
  return It == OpcodeVars.end() ? Empty : It->second;
}

seplogic::Spec Verifier::makeSpec(const std::string &Name) {
  seplogic::Spec S(TB, Name);
  S.RegWidthHint = Arch.RegWidth;
  return S;
}

seplogic::ProofEngine &Verifier::engine() {
  if (!Engine) {
    assert(!InstrPtrs.empty() && "engine() before generateTraces()");
    Engine = std::make_unique<seplogic::ProofEngine>(TB, InstrPtrs,
                                                     Arch.PcName);
    if (SideCond)
      Engine->setSideCondCache(SideCond);
  }
  return *Engine;
}
