//===- frontend/Verifier.cpp - End-to-end Islaris workflow ---------------------===//

#include "frontend/Verifier.h"

#include "models/Models.h"

#include <chrono>

using namespace islaris;
using namespace islaris::frontend;

ArchInfo islaris::frontend::aarch64() {
  return {&models::aarch64Model(), "_PC", [](const itl::Reg &R) -> unsigned {
            if (R.Base == "PSTATE")
              return R.Field == "EL" ? 2 : 1;
            return 64;
          }};
}

ArchInfo islaris::frontend::rv64() {
  return {&models::rv64Model(), "PC",
          [](const itl::Reg &) -> unsigned { return 64; }};
}

Verifier::Verifier(ArchInfo Arch) : Arch(std::move(Arch)) {}

void Verifier::addCode(const std::map<uint64_t, uint32_t> &NewCode) {
  for (const auto &[Addr, Op] : NewCode) {
    assert(!Code.count(Addr) && "overlapping code regions");
    Code[Addr] = Op;
  }
}

void Verifier::symbolicAt(uint64_t Addr, unsigned Hi, unsigned Lo) {
  auto It = Code.find(Addr);
  assert(It != Code.end() && "symbolicAt before addCode");
  auto SpecIt = OpcodeSpecs.find(Addr);
  if (SpecIt == OpcodeSpecs.end()) {
    OpcodeSpecs[Addr] = isla::OpcodeSpec::symbolicField(It->second, Hi, Lo);
    return;
  }
  // Extend an existing partially-symbolic opcode.
  for (unsigned I = Lo; I <= Hi; ++I)
    SpecIt->second.SymMask = SpecIt->second.SymMask.insertSlice(
        I, BitVec(1, 1));
}

bool Verifier::generateTraces(std::string &Err) {
  auto Start = std::chrono::steady_clock::now();
  isla::Executor Ex(*Arch.Model, TB);
  for (const auto &[Addr, Op] : Code) {
    auto SpecIt = OpcodeSpecs.find(Addr);
    isla::OpcodeSpec OS = SpecIt != OpcodeSpecs.end()
                              ? SpecIt->second
                              : isla::OpcodeSpec::concrete(Op);
    auto AIt = PerAddr.find(Addr);
    const isla::Assumptions &A =
        AIt != PerAddr.end() ? AIt->second : Defaults;
    isla::ExecResult R = Ex.run(OS, A, Opts);
    if (!R.Ok) {
      Err = "instruction at " + BitVec(64, Addr).toHexString() + " (" +
            BitVec(32, Op).toHexString() + "): " + R.Error;
      return false;
    }
    Traces[Addr] = std::move(R.Trace);
    OpcodeVars[Addr] = std::move(R.OpcodeVars);
    Gen.ItlEvents += R.Stats.Events;
    Gen.Paths += R.Stats.Paths;
    Gen.SolverQueries += R.Stats.SolverQueries;
    ++Gen.Instructions;
  }
  for (const auto &[Addr, T] : Traces)
    InstrPtrs[Addr] = &T;
  Gen.Seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return true;
}

const itl::Trace *Verifier::traceAt(uint64_t Addr) const {
  auto It = Traces.find(Addr);
  return It == Traces.end() ? nullptr : &It->second;
}

const std::vector<const smt::Term *> &
Verifier::opcodeVarsAt(uint64_t Addr) const {
  static const std::vector<const smt::Term *> Empty;
  auto It = OpcodeVars.find(Addr);
  return It == OpcodeVars.end() ? Empty : It->second;
}

seplogic::Spec Verifier::makeSpec(const std::string &Name) {
  seplogic::Spec S(TB, Name);
  S.RegWidthHint = Arch.RegWidth;
  return S;
}

seplogic::ProofEngine &Verifier::engine() {
  if (!Engine) {
    assert(!InstrPtrs.empty() && "engine() before generateTraces()");
    Engine = std::make_unique<seplogic::ProofEngine>(TB, InstrPtrs,
                                                     Arch.PcName);
  }
  return *Engine;
}
