//===- frontend/cs_binsearch.cpp - Higher-order binary search --------------------===//
//
// The §6 binary-search case study: a lower_bound over N sorted 64-bit
// elements, parametric over the comparison function, which is invoked
// through a function pointer (blr / jalr).  The pointer is handled with an
// assumed calling-convention contract: the callee receives the key and an
// element, returns their signed three-way comparison in the result
// register, preserves everything else this code relies on, and returns to
// the link register.  The verified postcondition: the result index is the
// number of elements strictly smaller than the key.
//
//===----------------------------------------------------------------------===//

#include "frontend/CaseStudies.h"

#include "arch/AArch64.h"
#include "arch/RiscV.h"
#include "frontend/CsCommon.h"

using namespace islaris;
using namespace islaris::frontend;
using islaris::itl::Reg;
using islaris::seplogic::Contract;
using islaris::seplogic::Spec;
using smt::Term;

namespace {

/// cmp(key, elem) = -1 / 0 / +1 as a signed comparison, expressed over the
/// pre-call argument registers.
const Term *threeWay(smt::TermBuilder &TB, const Term *Key,
                     const Term *Elem) {
  return TB.iteTerm(TB.bvSlt(Key, Elem), TB.constBV(64, ~0ull),
                    TB.iteTerm(TB.eqTerm(Key, Elem), TB.constBV(64, 0),
                               TB.constBV(64, 1)));
}

/// Adds the relational characterization of "Res is the lower bound of Key
/// in the sorted Elems" as pure facts of \p S: Res <= N, everything below
/// Res is smaller than the key, nothing at or above Res is.  (For a sorted
/// array this pins Res uniquely; it decomposes into per-element side
/// conditions the bitvector solver discharges instantly, unlike a
/// popcount-style sum.)
void addLowerBoundFacts(Spec &S, smt::TermBuilder &TB, const Term *Res,
                        const Term *Key,
                        const std::vector<const Term *> &Elems) {
  S.pure(TB.bvUle(Res, TB.constBV(64, Elems.size())));
  for (size_t K = 0; K < Elems.size(); ++K) {
    const Term *KC = TB.constBV(64, K);
    S.pure(TB.impliesTerm(TB.bvUlt(KC, Res), TB.bvSlt(Elems[K], Key)));
    S.pure(TB.impliesTerm(TB.bvUle(Res, KC),
                          TB.notTerm(TB.bvSlt(Elems[K], Key))));
  }
}

/// Sortedness of the element list as pairwise pure facts.
void addSortedFacts(Spec &S, smt::TermBuilder &TB,
                    const std::vector<const Term *> &Elems) {
  for (size_t K = 0; K + 1 < Elems.size(); ++K)
    S.pure(TB.bvSle(Elems[K], Elems[K + 1]));
}

} // namespace

CaseResult islaris::frontend::runBinSearchArm(unsigned N) {
  CaseResult Res;
  Res.Name = "bin.search";
  Res.Isa = "Arm";

  namespace e = arch::aarch64::enc;
  using arch::aarch64::Cond;
  arch::aarch64::Asm A;
  A.org(0x40000);
  A.label("bsearch");        // x0=key x1=base x2=n x3=cmp x30=ret
  A.put(e::movReg(9, 30));   // save the return address
  A.put(e::movReg(8, 0));    // key
  A.put(e::movReg(10, 1));   // base
  A.put(e::movz(4, 0));      // lo = 0
  A.put(e::movReg(5, 2));    // hi = n
  A.label("loop");
  A.put(e::cmpReg(4, 5));
  A.bcond(Cond::EQ, "done");
  A.put(e::addReg(6, 4, 5));
  A.put(e::lsrImm(6, 6, 1)); // mid = (lo + hi) >> 1
  A.put(e::lslImm(7, 6, 3));
  A.put(e::ldrReg(3, 7, 10, 7)); // x7 = base[mid]
  A.put(e::movReg(0, 8));    // arg0 = key
  A.put(e::movReg(1, 7));    // arg1 = element
  A.put(e::blr(3));          // call the comparator
  A.put(e::cmpImm(0, 0));
  A.bcond(Cond::GT, "gt");
  A.put(e::movReg(5, 6));    // hi = mid
  A.b("loop");
  A.label("gt");
  A.put(e::addImm(4, 6, 1)); // lo = mid + 1
  A.b("loop");
  A.label("done");
  A.put(e::movReg(0, 4));    // result = lo
  A.put(e::br(9));

  Verifier V(aarch64());
  V.addCode(A.finish());
  smt::TermBuilder &TB = V.builder();
  V.defaults() = armEl1Assumptions();
  std::string Err;
  if (!V.generateTraces(Err))
    return genFailed(std::move(Res), V, Err);

  auto X = [](unsigned I) { return arch::aarch64::xreg(I); };

  // The comparator contract (AAPCS64, reduced to what this caller needs):
  // clobbers x0/x1, returns the three-way comparison of its arguments in
  // x0, returns to x30.
  Contract Cmp;
  Cmp.Name = "comparator";
  Cmp.RetReg = X(30);
  Cmp.Clobbers = {X(0), X(1), Reg("PSTATE", "N"), Reg("PSTATE", "Z"),
                  Reg("PSTATE", "C"), Reg("PSTATE", "V")};
  Cmp.Post = [](smt::TermBuilder &TB2, const auto &Pre, const auto &Post)
      -> std::vector<const Term *> {
    return {TB2.eqTerm(Post(Reg("R0")),
                       threeWay(TB2, Pre(Reg("R0")), Pre(Reg("R1"))))};
  };

  // Shared unknowns: the key, the sorted elements, the comparator address.
  const Term *Key = TB.freshVar(smt::Sort::bitvec(64), "key");
  const Term *F = TB.freshVar(smt::Sort::bitvec(64), "f");
  std::vector<const Term *> Elems;
  for (unsigned K = 0; K < N; ++K)
    Elems.push_back(
        TB.freshVar(smt::Sort::bitvec(64), "e" + std::to_string(K)));

  Spec Post = V.makeSpec("bsearch_post");
  {
    const Term *Result = Post.evar(64, "result");
    Post.reg(X(0), Result);
    addLowerBoundFacts(Post, TB, Result, Key, Elems);
  }
  for (unsigned RN : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u, 30u})
    Post.regAny(X(RN));
  Post.shareEvar(Key);
  for (const Term *E2 : Elems)
    Post.shareEvar(E2);

  auto buildCommon = [&](Spec &S) {
    S.shareEvar(Key);
    S.shareEvar(F);
    for (const Term *E2 : Elems)
      S.shareEvar(E2);
    S.regCol(nzcvCol(S));
    addArmEl1SysRegs(S, TB);
    addSortedFacts(S, TB, Elems);
    S.contract(F, &Cmp);
  };

  Spec Entry = V.makeSpec("bsearch_entry");
  const Term *Base = Entry.evar(64, "base");
  const Term *R = Entry.evar(64, "r");
  Entry.reg(X(0), Key).reg(X(1), Base);
  Entry.reg(X(2), TB.constBV(64, N));
  Entry.reg(X(3), F);
  for (unsigned RN : {4u, 5u, 6u, 7u, 8u, 9u, 10u})
    Entry.regAny(X(RN));
  Entry.reg(X(30), R);
  Entry.array(Base, Elems, 8);
  buildCommon(Entry);
  Entry.instrPre(R, &Post);

  // Loop invariant: lo/hi bracket the lower bound; everything below lo is
  // smaller than the key, nothing at or above hi is.
  Spec Inv = V.makeSpec("bsearch_inv");
  const Term *IBase = Inv.evar(64, "ibase");
  const Term *Lo = Inv.evar(64, "lo");
  const Term *Hi = Inv.evar(64, "hi");
  const Term *IR = Inv.evar(64, "ir");
  Inv.reg(X(4), Lo).reg(X(5), Hi);
  Inv.reg(X(8), Key).reg(X(9), IR).reg(X(10), IBase);
  Inv.reg(X(3), F);
  for (unsigned RN : {0u, 1u, 2u, 6u, 7u, 30u})
    Inv.regAny(X(RN));
  Inv.array(IBase, Elems, 8);
  buildCommon(Inv);
  Inv.pure(TB.bvUle(Lo, Hi));
  Inv.pure(TB.bvUle(Hi, TB.constBV(64, N)));
  for (unsigned K = 0; K < N; ++K) {
    const Term *KC = TB.constBV(64, K);
    Inv.pure(TB.impliesTerm(TB.bvUlt(KC, Lo),
                            TB.bvSlt(Elems[K], Key)));
    Inv.pure(TB.impliesTerm(TB.bvUle(Hi, KC),
                            TB.notTerm(TB.bvSlt(Elems[K], Key))));
  }
  Inv.instrPre(IR, &Post);

  auto &PE = V.engine();
  PE.registerSpec(A.addrOf("bsearch"), &Entry);
  PE.registerSpec(A.addrOf("loop"), &Inv);
  bool Ok = PE.verifyAll();
  return finishResult(std::move(Res), V, Ok,
                      Entry.sizeMetric() + Inv.sizeMetric() +
                          Post.sizeMetric(),
                      /*Hints=*/2 + 2 * N + (N ? N - 1 : 0));
}

CaseResult islaris::frontend::runBinSearchRv(unsigned N) {
  CaseResult Res;
  Res.Name = "bin.search";
  Res.Isa = "RV";

  namespace e = arch::rv64::enc;
  using namespace arch::rv64;
  Asm A;
  A.org(0x40000);
  A.label("bsearch");          // a0=key a1=base a2=n a3=cmp ra=ret
  A.put(e::mv(T0, RA));        // save the return address
  A.put(e::mv(T1, A0));        // key
  A.put(e::mv(T2, A1));        // base
  A.put(e::addi(A4, 0, 0));    // lo = 0
  A.put(e::mv(A5, A2));        // hi = n
  A.label("loop");
  A.beq(A4, A5, "done");
  A.put(e::add(16, A4, A5));
  A.put(e::srli(16, 16, 1));   // a6 = mid
  A.put(e::slli(17, 16, 3));
  A.put(e::add(17, T2, 17));
  A.put(e::ld(A1, 17, 0));     // a1 = base[mid]
  A.put(e::mv(A0, T1));        // a0 = key
  A.put(e::jalr(RA, 13, 0));   // call the comparator (a3)
  A.blt(0, A0, "gt");          // 0 <s result?
  A.put(e::mv(A5, 16));        // hi = mid
  A.jal(0, "loop");
  A.label("gt");
  A.put(e::addi(A4, 16, 1));   // lo = mid + 1
  A.jal(0, "loop");
  A.label("done");
  A.put(e::mv(A0, A4));
  A.put(e::jalr(0, T0, 0));

  Verifier V(rv64());
  V.addCode(A.finish());
  smt::TermBuilder &TB = V.builder();
  std::string Err;
  if (!V.generateTraces(Err))
    return genFailed(std::move(Res), V, Err);
  auto X = [](unsigned I) { return xreg(I); };

  Contract Cmp;
  Cmp.Name = "comparator";
  Cmp.RetReg = X(RA);
  Cmp.Clobbers = {X(A0), X(A1)};
  Cmp.Post = [](smt::TermBuilder &TB2, const auto &Pre, const auto &Post)
      -> std::vector<const Term *> {
    return {TB2.eqTerm(Post(xreg(A0)),
                       threeWay(TB2, Pre(xreg(A0)), Pre(xreg(A1))))};
  };

  const Term *Key = TB.freshVar(smt::Sort::bitvec(64), "key");
  const Term *F = TB.freshVar(smt::Sort::bitvec(64), "f");
  std::vector<const Term *> Elems;
  for (unsigned K = 0; K < N; ++K)
    Elems.push_back(
        TB.freshVar(smt::Sort::bitvec(64), "e" + std::to_string(K)));

  Spec Post = V.makeSpec("bsearch_rv_post");
  {
    const Term *Result = Post.evar(64, "result");
    Post.reg(X(A0), Result);
    addLowerBoundFacts(Post, TB, Result, Key, Elems);
  }
  for (unsigned RN : {A1, A2, 13u, A4, A5, 16u, 17u, T0, T1, T2, RA})
    Post.regAny(X(RN));
  Post.shareEvar(Key);
  for (const Term *E2 : Elems)
    Post.shareEvar(E2);

  auto buildCommon = [&](Spec &S) {
    S.shareEvar(Key);
    S.shareEvar(F);
    for (const Term *E2 : Elems)
      S.shareEvar(E2);
    addSortedFacts(S, TB, Elems);
    // jalr clears bit 0 of the target: the comparator address must be even
    // for the contract chunk to match.
    S.pure(TB.eqTerm(TB.bvAnd(F, TB.constBV(64, 1)), TB.constBV(64, 0)));
    S.contract(F, &Cmp);
  };

  Spec Entry = V.makeSpec("bsearch_rv_entry");
  const Term *Base = Entry.evar(64, "base");
  const Term *R = Entry.evar(64, "r");
  Entry.reg(X(A0), Key).reg(X(A1), Base);
  Entry.reg(X(A2), TB.constBV(64, N));
  Entry.reg(X(13), F);
  for (unsigned RN : {A4, A5, 16u, 17u, T0, T1, T2})
    Entry.regAny(X(RN));
  Entry.reg(X(RA), R);
  Entry.pure(TB.eqTerm(TB.bvAnd(R, TB.constBV(64, 1)), TB.constBV(64, 0)));
  Entry.array(Base, Elems, 8);
  buildCommon(Entry);
  Entry.instrPre(R, &Post);

  Spec Inv = V.makeSpec("bsearch_rv_inv");
  const Term *IBase = Inv.evar(64, "ibase");
  const Term *Lo = Inv.evar(64, "lo");
  const Term *Hi = Inv.evar(64, "hi");
  const Term *IR = Inv.evar(64, "ir");
  Inv.reg(X(A4), Lo).reg(X(A5), Hi);
  Inv.reg(X(T1), Key).reg(X(T0), IR).reg(X(T2), IBase);
  Inv.reg(X(13), F);
  for (unsigned RN : {A0, A1, A2, 16u, 17u, RA})
    Inv.regAny(X(RN));
  Inv.array(IBase, Elems, 8);
  buildCommon(Inv);
  Inv.pure(TB.bvUle(Lo, Hi));
  Inv.pure(TB.bvUle(Hi, TB.constBV(64, N)));
  Inv.pure(TB.eqTerm(TB.bvAnd(IR, TB.constBV(64, 1)), TB.constBV(64, 0)));
  for (unsigned K = 0; K < N; ++K) {
    const Term *KC = TB.constBV(64, K);
    Inv.pure(TB.impliesTerm(TB.bvUlt(KC, Lo),
                            TB.bvSlt(Elems[K], Key)));
    Inv.pure(TB.impliesTerm(TB.bvUle(Hi, KC),
                            TB.notTerm(TB.bvSlt(Elems[K], Key))));
  }
  Inv.instrPre(IR, &Post);

  auto &PE = V.engine();
  PE.registerSpec(A.addrOf("bsearch"), &Entry);
  PE.registerSpec(A.addrOf("loop"), &Inv);
  bool Ok = PE.verifyAll();
  return finishResult(std::move(Res), V, Ok,
                      Entry.sizeMetric() + Inv.sizeMetric() +
                          Post.sizeMetric(),
                      /*Hints=*/3 + 2 * N + (N ? N - 1 : 0));
}
