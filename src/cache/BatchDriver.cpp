//===- cache/BatchDriver.cpp - Parallel batch trace generation ----------------===//

#include "cache/BatchDriver.h"

#include "smt/TermBuilder.h"

#include <atomic>
#include <map>
#include <thread>

using namespace islaris;
using namespace islaris::cache;

BatchDriver::BatchDriver(unsigned Threads) : NThreads(Threads) {
  if (NThreads == 0) {
    NThreads = std::thread::hardware_concurrency();
    if (NThreads == 0)
      NThreads = 1;
  }
}

void BatchDriver::parallelFor(size_t N, unsigned Threads,
                              const std::function<void(size_t)> &Fn) {
  if (Threads <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    while (true) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      Fn(I);
    }
  };
  size_t NumWorkers = std::min<size_t>(Threads, N);
  std::vector<std::thread> Pool;
  Pool.reserve(NumWorkers - 1);
  for (size_t T = 1; T < NumWorkers; ++T)
    Pool.emplace_back(Worker);
  Worker(); // the calling thread participates
  for (std::thread &T : Pool)
    T.join();
}

std::vector<TraceJobResult>
BatchDriver::run(const std::vector<TraceJob> &Jobs, TraceCache *Cache) {
  Last = BatchStats();
  Last.Jobs = unsigned(Jobs.size());

  std::vector<TraceJobResult> Results(Jobs.size());

  // Canonicalize and group: one execution per distinct key.  std::map keeps
  // group iteration deterministic.
  struct Group {
    std::vector<size_t> Members; ///< Job indices, in submission order.
    bool Ok = false;
    bool FromCache = false;
    CacheEntry Entry;
    std::string Error;
  };
  std::map<Fingerprint, Group> Groups;
  for (size_t I = 0; I < Jobs.size(); ++I) {
    const TraceJob &J = Jobs[I];
    assert(J.Model && J.Assume && "incomplete trace job");
    Results[I].Key =
        traceCacheKey(J.ArchName, *J.Model, J.Op, *J.Assume, J.Opts);
    Groups[Results[I].Key].Members.push_back(I);
  }

  // Serve what we can from the cache; collect the rest as work items.
  std::vector<std::pair<const Fingerprint *, Group *>> Work;
  for (auto &[K, G] : Groups) {
    if (Cache) {
      if (auto E = Cache->lookup(K)) {
        G.Entry = std::move(*E);
        G.Ok = true;
        G.FromCache = true;
        continue;
      }
    }
    Work.emplace_back(&K, &G);
  }

  // Execute the misses.  Each execution gets a private TermBuilder and
  // Executor; groups are disjoint, so workers write without locks and the
  // shared cache synchronizes internally.
  parallelFor(Work.size(), NThreads, [&](size_t W) {
    const Fingerprint &K = *Work[W].first;
    Group &G = *Work[W].second;
    const TraceJob &J = Jobs[G.Members.front()];
    smt::TermBuilder TB;
    isla::Executor Ex(*J.Model, TB);
    isla::ExecResult R = Ex.run(J.Op, *J.Assume, J.Opts);
    if (!R.Ok) {
      G.Error = R.Error;
      return;
    }
    G.Entry = TraceCache::encode(R);
    G.Ok = true;
    if (Cache)
      Cache->insert(K, G.Entry);
  });

  for (auto &[K, G] : Groups) {
    (void)K;
    for (size_t Rank = 0; Rank < G.Members.size(); ++Rank) {
      TraceJobResult &R = Results[G.Members[Rank]];
      R.Ok = G.Ok;
      if (!G.Ok) {
        R.Error = G.Error;
        continue;
      }
      R.Entry = G.Entry;
      if (G.FromCache) {
        R.Source = ResultSource::CacheHit;
        ++Last.CacheHits;
      } else if (Rank == 0) {
        R.Source = ResultSource::Fresh;
        ++Last.Fresh;
      } else {
        R.Source = ResultSource::Deduped;
        ++Last.Deduped;
      }
    }
  }
  return Results;
}
