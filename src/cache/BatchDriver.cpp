//===- cache/BatchDriver.cpp - Parallel batch trace generation ----------------===//

#include "cache/BatchDriver.h"

#include "cache/Generations.h"
#include "cache/SideCondCache.h"
#include "smt/TermBuilder.h"
#include "support/Guard.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

using namespace islaris;
using namespace islaris::cache;

BatchDriver::BatchDriver(unsigned Threads) : NThreads(Threads) {
  if (NThreads == 0) {
    NThreads = std::thread::hardware_concurrency();
    if (NThreads == 0)
      NThreads = 1;
  }
}

void BatchDriver::parallelFor(size_t N, unsigned Threads,
                              const std::function<void(size_t)> &Fn) {
  if (Threads <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    while (true) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      Fn(I);
    }
  };
  size_t NumWorkers = std::min<size_t>(Threads, N);
  std::vector<std::thread> Pool;
  Pool.reserve(NumWorkers - 1);
  for (size_t T = 1; T < NumWorkers; ++T)
    Pool.emplace_back(Worker);
  Worker(); // the calling thread participates
  for (std::thread &T : Pool)
    T.join();
}

namespace {

/// The batch watchdog: one thread polling the active attempts every 50 ms,
/// firing a job's private cancellation token once its deadline passes (or
/// once the caller's own token fires, which the private token replaces for
/// the duration of the attempt).  Started only when a job timeout is
/// configured; the zero-timeout path never touches tokens or threads.
class Watchdog {
public:
  struct Attempt {
    std::chrono::steady_clock::time_point Deadline;
    support::CancelToken Tok;
    const std::atomic<bool> *Caller = nullptr;
    std::atomic<bool> TimedOut{false};
  };

  ~Watchdog() { stop(); }

  std::shared_ptr<Attempt> arm(double Seconds,
                               const support::CancelToken &CallerTok) {
    auto A = std::make_shared<Attempt>();
    A->Deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(Seconds));
    A->Tok = support::CancelToken::create();
    A->Caller = CallerTok.raw();
    std::lock_guard<std::mutex> L(Mu);
    Active.push_back(A);
    if (!Th.joinable())
      Th = std::thread([this] { loop(); });
    return A;
  }

  void disarm(const std::shared_ptr<Attempt> &A) {
    std::lock_guard<std::mutex> L(Mu);
    for (size_t I = 0; I < Active.size(); ++I)
      if (Active[I] == A) {
        Active.erase(Active.begin() + long(I));
        break;
      }
  }

  void stop() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Stop = true;
    }
    Cv.notify_all();
    if (Th.joinable())
      Th.join();
  }

private:
  void loop() {
    std::unique_lock<std::mutex> L(Mu);
    while (!Stop) {
      Cv.wait_for(L, std::chrono::milliseconds(50));
      auto Now = std::chrono::steady_clock::now();
      for (auto &A : Active) {
        if (Now >= A->Deadline) {
          A->TimedOut.store(true, std::memory_order_relaxed);
          A->Tok.requestCancel();
        } else if (A->Caller &&
                   A->Caller->load(std::memory_order_relaxed)) {
          A->Tok.requestCancel();
        }
      }
    }
  }

  std::mutex Mu;
  std::condition_variable Cv;
  std::vector<std::shared_ptr<Attempt>> Active;
  bool Stop = false;
  std::thread Th;
};

} // namespace

std::vector<TraceJobResult>
BatchDriver::run(const std::vector<TraceJob> &Jobs, TraceCache *Cache) {
  Last = BatchStats();
  Last.Jobs = unsigned(Jobs.size());

  std::vector<TraceJobResult> Results(Jobs.size());

  // Canonicalize and group: one execution per distinct key.  std::map keeps
  // group iteration deterministic.
  struct Group {
    std::vector<size_t> Members; ///< Job indices, in submission order.
    bool Ok = false;
    bool FromCache = false;
    CacheEntry Entry;
    std::string Error;
    support::Diag D;
    unsigned Attempts = 0;
    unsigned TimedOut = 0;
    unsigned Exceptions = 0;
  };
  std::map<Fingerprint, Group> Groups;
  for (size_t I = 0; I < Jobs.size(); ++I) {
    const TraceJob &J = Jobs[I];
    if (!J.Model || !J.Assume) {
      // An incomplete job is the submitter's bug, but it must not take the
      // whole batch down (or, under NDEBUG, dereference null).
      Results[I].Ok = false;
      Results[I].D = support::Diag::error(
          support::ErrorCode::Internal, "batch-driver",
          "incomplete trace job (null model or assumptions)");
      Results[I].Error = Results[I].D.Message;
      ++Last.Failed;
      continue;
    }
    Results[I].Key =
        traceCacheKey(J.ArchName, *J.Model, J.Op, *J.Assume, J.Opts);
    Groups[Results[I].Key].Members.push_back(I);
  }

  // Serve what we can from the cache; collect the rest as work items.
  std::vector<std::pair<const Fingerprint *, Group *>> Work;
  for (auto &[K, G] : Groups) {
    if (Cache) {
      if (auto E = Cache->lookup(K)) {
        G.Entry = std::move(*E);
        G.Ok = true;
        G.FromCache = true;
        // A warm hit keeps its model's generation current, so steady-state
        // traffic never ages a live model into GC range.
        if (Cache->config().Persist)
          touchGeneration(Cache->dir(),
                          fingerprintModel(*Jobs[G.Members.front()].Model));
        continue;
      }
    }
    Work.emplace_back(&K, &G);
  }

  // Execute the misses.  Each execution gets a private TermBuilder and
  // Executor; groups are disjoint, so workers write without locks and the
  // shared cache synchronizes internally.  Every execution is fault-
  // contained: exceptions are caught into the job's result, a wedged job is
  // cancelled by the watchdog, and retryable failures get bounded retries
  // before the job is quarantined with its last diagnostic.
  Watchdog WD;
  const DriverOptions DO = Opts;
  parallelFor(Work.size(), NThreads, [&](size_t W) {
    const Fingerprint &K = *Work[W].first;
    Group &G = *Work[W].second;
    const TraceJob &J = Jobs[G.Members.front()];
    // Salt the shared side-condition store by this job's model so its
    // pruning/assert queries can never be answered by another model's
    // entries (fingerprintModel is memoized, so this is a map lookup).
    std::optional<SaltedSolverCache> SideCond;
    if (J.SideCond)
      SideCond.emplace(*J.SideCond, fingerprintModel(*J.Model));
    for (unsigned Attempt = 0; Attempt <= DO.MaxRetries; ++Attempt) {
      ++G.Attempts;
      isla::ExecOptions EO = J.Opts;
      std::shared_ptr<Watchdog::Attempt> Armed;
      if (DO.JobTimeoutSeconds > 0) {
        Armed = WD.arm(DO.JobTimeoutSeconds, EO.Cancel);
        EO.Cancel = Armed->Tok;
      }
      // The builder must outlive encode(): the result's trace and opcode
      // variables point into it until they are serialized.
      smt::TermBuilder TB;
      isla::ExecResult R;
      bool Threw = false;
      try {
        isla::Executor Ex(*J.Model, TB);
        if (SideCond)
          Ex.setSolverCache(&*SideCond);
        R = Ex.run(J.Op, *J.Assume, EO);
      } catch (const std::exception &E) {
        Threw = true;
        R.Ok = false;
        R.Error = std::string("exception escaped trace job: ") + E.what();
        R.D = support::Diag::error(support::ErrorCode::JobException,
                                   "batch-driver", R.Error);
      } catch (...) {
        Threw = true;
        R.Ok = false;
        R.Error = "non-standard exception escaped trace job";
        R.D = support::Diag::error(support::ErrorCode::JobException,
                                   "batch-driver", R.Error);
      }
      bool TimedOut =
          Armed && Armed->TimedOut.load(std::memory_order_relaxed);
      if (Armed)
        WD.disarm(Armed);
      if (R.Ok) {
        G.Entry = TraceCache::encode(R);
        G.Ok = true;
        G.Error.clear();
        G.D = support::Diag();
        if (Cache) {
          Cache->insert(K, G.Entry);
          // Generation bookkeeping for persistent stores: a fresh
          // execution mints an entry against this job's model, so record
          // the (model, key) pair for `cachectl gc --keep-generations`.
          if (Cache->config().Persist)
            recordEntryGeneration(Cache->dir(), fingerprintModel(*J.Model),
                                  K);
        }
        return;
      }
      G.Exceptions += Threw ? 1 : 0;
      G.TimedOut += TimedOut ? 1 : 0;
      G.D = R.D.ok() ? support::Diag::error(support::ErrorCode::Internal,
                                            "executor", R.Error)
                     : R.D;
      if (TimedOut) {
        // The executor reports Cancelled (it only sees the token); the
        // driver knows the cancellation was its own deadline.
        G.D = support::Diag::error(
            support::ErrorCode::JobTimeout, "batch-driver",
            "job exceeded " + std::to_string(DO.JobTimeoutSeconds) +
                "s wall clock and was cancelled");
      }
      G.Error = G.D.Message;
      if (!support::isRetryable(G.D.Code))
        return; // deterministic failure: retrying cannot help
    }
  });
  WD.stop();

  for (auto &[K, G] : Groups) {
    (void)K;
    if (G.Attempts > 1)
      Last.Retries += G.Attempts - 1;
    Last.TimedOut += G.TimedOut;
    Last.Exceptions += G.Exceptions;
    for (size_t Rank = 0; Rank < G.Members.size(); ++Rank) {
      TraceJobResult &R = Results[G.Members[Rank]];
      R.Ok = G.Ok;
      R.Attempts = G.Attempts;
      if (!G.Ok) {
        R.Error = G.Error;
        R.D = G.D;
        ++Last.Failed;
        continue;
      }
      R.Entry = G.Entry;
      if (G.FromCache) {
        R.Source = ResultSource::CacheHit;
        ++Last.CacheHits;
      } else if (Rank == 0) {
        R.Source = ResultSource::Fresh;
        ++Last.Fresh;
      } else {
        R.Source = ResultSource::Deduped;
        ++Last.Deduped;
      }
    }
  }
  return Results;
}
