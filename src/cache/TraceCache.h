//===- cache/TraceCache.h - Content-addressed ITL trace store ---*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed store of symbolic-execution results, mirroring the
/// on-disk cache the real Isla tool keeps of per-opcode traces.  Entries are
/// keyed by cache::traceCacheKey fingerprints and stored in *serialized*
/// form: the ITL trace as its printed S-expression (Figs. 3/6 syntax) plus
/// the opcode-variable names and execution statistics.  Consumers
/// materialize an entry into their own TermBuilder through itl::TraceParser,
/// so every cache hit doubles as an adequacy test of the ITL grammar
/// (print . parse == id), and results are bit-identical whether they came
/// from a fresh execution, the in-memory cache, or disk.
///
/// The in-memory map is LRU-bounded and fully thread-safe; optional
/// persistence writes one file per entry under a cache directory
/// (ISLARIS_CACHE_DIR env override, default build/.trace-cache).  Entries
/// are sharded into 256 fan-out subdirectories keyed on the leading
/// fingerprint byte (dir/ab/ab...cd.itc) so large suite caches never pile
/// tens of thousands of files into one directory; stores written by older
/// versions with the flat layout (dir/ab...cd.itc) are still read
/// transparently.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_CACHE_TRACECACHE_H
#define ISLARIS_CACHE_TRACECACHE_H

#include "cache/Fingerprint.h"
#include "itl/Trace.h"
#include "support/Diag.h"

#include <atomic>
#include <list>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace islaris::smt {
class TermBuilder;
}

namespace islaris::cache {

/// A cached symbolic-execution result in serialized, builder-independent
/// form.
struct CacheEntry {
  /// The printed "(trace ...)" S-expression.
  std::string TraceText;
  /// Names and widths of the fresh variables standing for symbolic opcode
  /// fields, low-to-high (ExecResult::OpcodeVars).  Every name is declared
  /// by a declare-const event inside TraceText.
  std::vector<std::pair<std::string, unsigned>> OpcodeVars;
  isla::ExecStats Stats;
};

/// Counters of cache behavior, surfaced through GenStats and bench_cache.
struct CacheStats {
  uint64_t Hits = 0;       ///< In-memory lookups that found an entry.
  uint64_t DiskHits = 0;   ///< Memory misses satisfied from disk.
  uint64_t Misses = 0;     ///< Lookups satisfied nowhere.
  uint64_t Insertions = 0; ///< insert() calls that stored a new entry.
  uint64_t Evictions = 0;  ///< Entries dropped by the LRU bound.
  uint64_t DiskWrites = 0; ///< Entry files written.
  /// Corrupt on-disk entries displaced on read (self-repair: writeToDisk is
  /// first-writer-wins, so a torn entry left in place would never heal).
  uint64_t CorruptRemoved = 0;
  /// Corrupt entries preserved under dir()/quarantine/ for post-mortem
  /// instead of being deleted outright (a subset of CorruptRemoved).
  uint64_t Quarantined = 0;
  /// Entry publishes that failed (directory unwritable, device full, rename
  /// refused).  islarisd watches this to flip into cache-off degraded mode
  /// instead of emitting one error per request.
  uint64_t WriteFailures = 0;
};

struct TraceCacheConfig {
  /// LRU bound on in-memory entries (entries, not bytes; a per-opcode trace
  /// is a few KB).
  size_t MaxEntries = 4096;
  /// Also read/write entries under dir() (one file per fingerprint).
  bool Persist = false;
  /// Cache directory; empty means resolveCacheDir().
  std::string Dir;
  /// Run the clean-shutdown-marker protocol on construction (see
  /// cache/Scrub.h): consume the marker when present, otherwise reap stale
  /// writer temps and spot-check entry envelopes before first use.
  /// Long-lived owners (islarisd) enable this; batch runs keep the seed
  /// behavior of validating entries lazily on read.
  bool ScrubOnOpen = false;
};

/// Resolves the on-disk cache location: $ISLARIS_CACHE_DIR if set and
/// non-empty, else "build/.trace-cache" (relative to the working
/// directory, which for the tier-1 flow is the repository root).
std::string resolveCacheDir();

/// Atomically publishes \p Content at \p Path via write-to-temp + rename.
/// The temp suffix combines the pid with a process-wide monotonic counter,
/// so concurrent writers — in this process or another one sharing the cache
/// directory — never collide on the temp name; on any failure the temp file
/// is removed rather than left orphaned.  The temp file is fsync'd before
/// the rename and the parent directory after it, so a crash after
/// atomicWriteFile returns cannot lose or tear the published file; set
/// ISLARIS_NO_FSYNC=1 to skip both syncs (tests, throwaway caches).
/// Returns false if \p Path could not be published (the caller treats that
/// as "no entry written").
bool atomicWriteFile(const std::string &Path, const std::string &Content);

//===----------------------------------------------------------------------===//
// Durability envelope (shared by TraceCache, SideCondStore and the run
// journal).  Store files are payload bytes wrapped in a one-line header
//
//   (islaris-entry <version> <fnv64-hex> <payload-size>)\n<payload>
//
// so readers verify integrity *before* handing bytes to a parser.  The
// model-fingerprint salt rides inside the payload: both stores embed the
// full content-addressed key (which hashes the model) in their payload
// header and verify it against the probe key on read.
//===----------------------------------------------------------------------===//

/// Current on-disk entry format version.  Version 1 is the pre-envelope
/// headerless format, still read transparently.
inline constexpr unsigned DurableFormatVersion = 2;

/// 64-bit FNV-1a over \p Data (the envelope checksum).
uint64_t fnv1a64(std::string_view Data);

/// Outcome of validating a store file's durability envelope.
enum class EnvelopeResult {
  Ok,         ///< checksum verified; payload extracted.
  Legacy,     ///< headerless pre-envelope file; payload is the whole file.
  BadVersion, ///< header present but written by an unknown format version.
  Corrupt,    ///< truncated header/payload or checksum mismatch.
  Empty,      ///< zero-length file (e.g. crash between create and write).
};

/// Wraps \p Payload in the versioned, checksummed envelope.
std::string wrapDurableEntry(const std::string &Payload);

/// Validates \p File's envelope; on Ok/Legacy, \p Payload receives the
/// entry payload.  Never throws; any malformed input maps to a non-Ok
/// result.
EnvelopeResult unwrapDurableEntry(const std::string &File,
                                  std::string &Payload);

/// Maps a non-Ok/Legacy envelope verdict onto the Diag error code suite
/// aggregation reports (Empty/Corrupt-structure -> CorruptCacheEntry or
/// ChecksumMismatch, BadVersion -> CacheVersionMismatch).
support::ErrorCode envelopeErrorCode(EnvelopeResult R);

/// Moves the corrupt file at \p Path into \p Dir/quarantine/ (creating the
/// subdirectory as needed), freeing the path so first-writer-wins publishing
/// can heal the entry while preserving the corpse for post-mortem.  Falls
/// back to deleting the file when the move fails.  Returns true if the path
/// was freed either way.
bool quarantineFile(const std::string &Dir, const std::string &Path);

/// Thread-safe content-addressed trace store.  Shared by all BatchDriver
/// workers behind an internal mutex; disk I/O happens outside the lock.
class TraceCache {
public:
  explicit TraceCache(TraceCacheConfig C = TraceCacheConfig());

  TraceCache(const TraceCache &) = delete;
  TraceCache &operator=(const TraceCache &) = delete;

  /// Looks up \p K in memory, then (when persistent) on disk.  A disk hit
  /// is promoted into memory.
  std::optional<CacheEntry> lookup(const Fingerprint &K);

  /// Stores \p E under \p K (most-recently-used position).  Re-inserting an
  /// existing key refreshes recency but keeps the first entry.
  void insert(const Fingerprint &K, CacheEntry E);

  /// Drops all in-memory entries (disk files are kept).  Counters survive.
  void clearMemory();

  size_t size() const;
  CacheStats stats() const;
  /// Returns and clears the diagnostics accumulated by disk I/O (corrupt
  /// entries, unwritable cache directory).  Bounded: at most 64 are kept
  /// between drains so a corrupt store cannot balloon memory.
  std::vector<support::Diag> drainDiags();
  const TraceCacheConfig &config() const { return Cfg; }
  /// The directory persistent entries live in (valid even when persistence
  /// is off, for diagnostics).
  const std::string &dir() const { return Directory; }

  /// Degraded-mode switch: while disabled, lookup() never touches disk and
  /// insert() never publishes, but the in-memory LRU keeps working — the
  /// daemon's answer to a full or failing device is "serve from memory,
  /// stop hammering the disk" rather than one error per request.  Counters
  /// and existing on-disk entries are untouched; re-enabling resumes normal
  /// persistence (first-writer-wins fills any holes).
  void setDiskDisabled(bool Off) {
    DiskDisabled.store(Off, std::memory_order_relaxed);
  }
  bool diskDisabled() const {
    return DiskDisabled.load(std::memory_order_relaxed);
  }

  //===------------------------------------------------------------------===//
  // Serialization (also used directly by tests and the batch driver).
  //===------------------------------------------------------------------===//

  /// Serializes a successful ExecResult (trace printed, opcode vars by
  /// name).  Asserts R.Ok.
  static CacheEntry encode(const isla::ExecResult &R);

  /// Materializes \p E into \p TB: parses the trace text (creating fresh
  /// variables in \p TB) and resolves the opcode variables by name.
  /// Returns false and sets \p Err if the text does not re-parse — which
  /// would mean the ITL grammar lost information (an adequacy bug).
  static bool decode(const CacheEntry &E, smt::TermBuilder &TB,
                     isla::ExecResult &Out, std::string &Err);

  /// The on-disk entry format: a single-line header S-expression
  ///   (islaris-trace-cache 1 <keyhex> (opcode-vars (|v| w) ...)
  ///    (stats paths pruned queries events))
  /// followed by the trace text verbatim.
  static std::string serializeEntry(const Fingerprint &K,
                                    const CacheEntry &E);
  /// Inverse of serializeEntry; checks the embedded key against \p K.
  static bool parseEntry(const std::string &Text, const Fingerprint &K,
                         CacheEntry &Out, std::string &Err);

private:
  /// Sharded path of \p K: dir/<first hex byte>/<hex>.itc.
  std::string entryPath(const Fingerprint &K) const;
  /// Pre-sharding flat path (dir/<hex>.itc), still honored on read.
  std::string legacyEntryPath(const Fingerprint &K) const;
  std::optional<CacheEntry> loadFromDisk(const Fingerprint &K);
  void writeToDisk(const Fingerprint &K, const CacheEntry &E);
  /// Quarantines the corrupt file at \p Path and records a bounded Diag.
  void discardCorrupt(const std::string &Path, support::ErrorCode Code,
                      const std::string &Why);
  void noteDiag(support::Diag D);
  /// One-time unwritable-cache-directory Diag (satellite of the durability
  /// work: never silently run uncached).
  void noteWriteFailure(const std::string &Path);

  TraceCacheConfig Cfg;
  std::string Directory;

  mutable std::mutex Mu;
  std::atomic<bool> DiskDisabled{false};
  bool WarnedUnwritable = false;
  std::vector<support::Diag> Diags;
  struct Slot {
    CacheEntry Entry;
    std::list<Fingerprint>::iterator LruIt;
  };
  std::unordered_map<Fingerprint, Slot, FingerprintHash> Map;
  std::list<Fingerprint> Lru; ///< Front = most recently used.
  CacheStats St;
};

/// The process-wide ambient cache consulted by newly constructed Verifiers
/// (null by default: caching is opt-in and the seed pipeline is unchanged).
/// Set it before spawning concurrent case studies; the pointer itself is
/// not synchronized.
TraceCache *ambientTraceCache();
void setAmbientTraceCache(TraceCache *C);

} // namespace islaris::cache

#endif // ISLARIS_CACHE_TRACECACHE_H
