//===- cache/SideCondCache.h - Persistent side-condition store --*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-run half of the side-condition solver cache: a
/// content-addressed store of SMT check() results, implementing the
/// smt::SolverCache interface so warm re-verification skips SAT entirely.
///
/// Keys are 128-bit fingerprints over the solver's canonical *printed* goal
/// closure (sorted goals plus sorted free-variable declarations — see
/// Solver::printGoalClosure) salted with a model hash, normally
/// cache::fingerprintModel of the ISA model in play.  The printed form is
/// builder-independent, so a key matches across TermBuilders, processes,
/// and runs; the salt means editing the ISA model invalidates every entry
/// — a stale cache can only miss, never lie.  Queries whose printed form
/// would be ambiguous (duplicate variable names) never reach this store.
///
/// Entries record the Sat/Unsat verdict and, for Sat, a full model of the
/// closure's variables by (name, width, value), so a hit restores
/// modelValue() behavior identical to a cold solve.  Disk layout follows
/// the trace cache: one file per entry under a directory (default
/// resolveCacheDir() + "/sidecond"), sharded into 256 fan-out
/// subdirectories on the leading fingerprint byte (legacy flat stores are
/// still read), written atomically, first writer wins, corrupt entries
/// degrade to misses.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_CACHE_SIDECONDCACHE_H
#define ISLARIS_CACHE_SIDECONDCACHE_H

#include "cache/Fingerprint.h"
#include "smt/Solver.h"
#include "support/Diag.h"

#include <atomic>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace islaris::cache {

/// Counters of store behavior, surfaced through bench_fig12.
struct SideCondStats {
  uint64_t Hits = 0;       ///< In-memory lookups that found an entry.
  uint64_t DiskHits = 0;   ///< Memory misses satisfied from disk.
  uint64_t Misses = 0;     ///< Lookups satisfied nowhere.
  uint64_t Insertions = 0; ///< store() calls that added a new entry.
  uint64_t DiskWrites = 0; ///< Entry files written.
  /// Corrupt on-disk entries displaced on read (self-repair; see
  /// CacheStats::CorruptRemoved).
  uint64_t CorruptRemoved = 0;
  /// Corrupt entries preserved under dir()/quarantine/ (a subset of
  /// CorruptRemoved).
  uint64_t Quarantined = 0;
  /// Entry publishes that failed (see CacheStats::WriteFailures; islarisd's
  /// degraded-mode detector watches both stores).
  uint64_t WriteFailures = 0;
};

struct SideCondConfig {
  /// Bound on in-memory entries (entries are small: a verdict plus a few
  /// model values).  Past the bound new results are still written to disk
  /// (when persistent) but not kept in memory.
  size_t MaxEntries = 1 << 16;
  /// Also read/write entries under dir() (one file per fingerprint).
  bool Persist = false;
  /// Store directory; empty means resolveCacheDir() + "/sidecond".
  std::string Dir;
  /// Salt mixed into every key; pass cache::fingerprintModel(...) of the
  /// ISA model(s) the side conditions are discharged against, so model
  /// edits invalidate the store wholesale.
  Fingerprint ModelSalt;
  /// Run the clean-shutdown-marker protocol on construction (see
  /// cache/Scrub.h).  Same contract as TraceCacheConfig::ScrubOnOpen.
  bool ScrubOnOpen = false;
};

/// Thread-safe content-addressed store of side-condition results.  One
/// instance is shared by every solver of a run (suite harnesses install it
/// as the ambient store); all state sits behind one mutex, disk I/O
/// happens outside it.
class SideCondStore : public smt::SolverCache {
public:
  explicit SideCondStore(SideCondConfig C = SideCondConfig());

  SideCondStore(const SideCondStore &) = delete;
  SideCondStore &operator=(const SideCondStore &) = delete;

  std::optional<CachedResult> lookup(const std::string &Closure) override;
  void store(const std::string &Closure, const CachedResult &R) override;

  /// Drops all in-memory entries (disk files are kept).  Counters survive.
  /// Lets one process demonstrate a cold-disk warm start.
  void clearMemory();

  size_t size() const;
  SideCondStats stats() const;
  const SideCondConfig &config() const { return Cfg; }
  const std::string &dir() const { return Directory; }

  /// Degraded-mode switch; same contract as TraceCache::setDiskDisabled
  /// (memory keeps serving, disk is left alone until re-enabled).
  void setDiskDisabled(bool Off) {
    DiskDisabled.store(Off, std::memory_order_relaxed);
  }
  bool diskDisabled() const {
    return DiskDisabled.load(std::memory_order_relaxed);
  }
  /// Returns and clears disk-I/O diagnostics (bounded to 64 between
  /// drains); same contract as TraceCache::drainDiags.
  std::vector<support::Diag> drainDiags();

  /// The fingerprint \p Closure is stored under (closure + salt).
  Fingerprint key(const std::string &Closure) const;

  /// The on-disk entry format, one line:
  ///   (islaris-sidecond-cache 1 <keyhex> (result sat|unsat)
  ///    (model (|name| width #x..|#b..) ...))
  static std::string serializeEntry(const Fingerprint &K,
                                    const CachedResult &R);
  /// Inverse of serializeEntry; checks the embedded key against \p K.
  static bool parseEntry(const std::string &Text, const Fingerprint &K,
                         CachedResult &Out, std::string &Err);

private:
  /// Sharded path of \p K: dir/<first hex byte>/<hex>.scc.
  std::string entryPath(const Fingerprint &K) const;
  /// Pre-sharding flat path (dir/<hex>.scc), still honored on read.
  std::string legacyEntryPath(const Fingerprint &K) const;
  std::optional<CachedResult> loadFromDisk(const Fingerprint &K);
  /// Returns true when this call published a new entry file.
  bool writeToDisk(const Fingerprint &K, const CachedResult &R);
  void discardCorrupt(const std::string &Path, support::ErrorCode Code,
                      const std::string &Why);
  void noteWriteFailure(const std::string &Path);

  SideCondConfig Cfg;
  std::string Directory;

  mutable std::mutex Mu;
  std::atomic<bool> DiskDisabled{false};
  bool WarnedUnwritable = false;
  std::vector<support::Diag> Diags;
  std::unordered_map<Fingerprint, CachedResult, FingerprintHash> Map;
  SideCondStats St;
};

/// A zero-copy view of another SolverCache that prefixes every closure with
/// a fingerprint salt before delegating.  Lets one shared store (whose own
/// ModelSalt stays neutral) serve queries discharged against different ISA
/// models — the batch driver wraps the suite store in the fingerprint of
/// each job's model, so an aarch64 pruning query can never answer a riscv64
/// one.  Stateless beyond the prefix; safe to construct per job.
class SaltedSolverCache : public smt::SolverCache {
public:
  SaltedSolverCache(smt::SolverCache &Inner, const Fingerprint &Salt)
      : Inner(Inner), Prefix("(salt " + Salt.toHex() + ") ") {}

  std::optional<CachedResult> lookup(const std::string &Closure) override {
    return Inner.lookup(Prefix + Closure);
  }
  void store(const std::string &Closure, const CachedResult &R) override {
    Inner.store(Prefix + Closure, R);
  }

private:
  smt::SolverCache &Inner;
  std::string Prefix;
};

/// Parses the SaltedSolverCache "(salt <32 hex>) " closure prefix into
/// \p Out; false when \p Closure is unsalted.  Exposed for the generation
/// bookkeeping and its tests.
bool extractClosureSalt(const std::string &Closure, Fingerprint &Out);

/// The process-wide ambient store consulted by newly constructed Verifiers
/// (null by default: side-condition persistence is opt-in).  Same contract
/// as ambientTraceCache: set before spawning concurrent case studies; the
/// pointer itself is not synchronized.
SideCondStore *ambientSideCondCache();
void setAmbientSideCondCache(SideCondStore *C);

} // namespace islaris::cache

#endif // ISLARIS_CACHE_SIDECONDCACHE_H
