//===- cache/SideCondCache.cpp - Persistent side-condition store --------------===//

#include "cache/SideCondCache.h"

#include "cache/Generations.h" // per-model entry manifests
#include "cache/Scrub.h"       // scrub-on-open protocol
#include "cache/TraceCache.h"  // resolveCacheDir, atomicWriteFile
#include "itl/Parser.h"
#include "support/FaultInjector.h"
#include "support/Parse.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

using namespace islaris;
using namespace islaris::cache;

namespace fs = std::filesystem;

SideCondStore::SideCondStore(SideCondConfig C) : Cfg(std::move(C)) {
  Directory = Cfg.Dir.empty() ? resolveCacheDir() + "/sidecond" : Cfg.Dir;
  if (Cfg.Persist && Cfg.ScrubOnOpen) {
    // See TraceCache: missing clean-shutdown marker means the previous
    // owner died mid-flight — reap temps and spot-check envelopes now.
    QuickScrubReport R = scrubOnOpen(Directory);
    St.CorruptRemoved += R.Quarantined;
    St.Quarantined += R.Quarantined;
    for (support::Diag &D : R.Diags)
      if (Diags.size() < 64)
        Diags.push_back(std::move(D));
  }
}

Fingerprint SideCondStore::key(const std::string &Closure) const {
  Fingerprinter FP;
  FP.str("islaris-sidecond");
  FP.str(Closure);
  FP.u64(Cfg.ModelSalt.Hi);
  FP.u64(Cfg.ModelSalt.Lo);
  return FP.digest();
}

//===----------------------------------------------------------------------===//
// Serialization.
//===----------------------------------------------------------------------===//

std::string SideCondStore::serializeEntry(const Fingerprint &K,
                                          const CachedResult &R) {
  std::ostringstream OS;
  OS << "(islaris-sidecond-cache 1 " << K.toHex() << " (result "
     << (R.Sat ? "sat" : "unsat") << ") (model";
  for (const auto &[Name, Width, Bits] : R.Model)
    OS << " (|" << Name << "| " << Width << " " << Bits.toString() << ")";
  OS << "))\n";
  return OS.str();
}

static std::string stripBars(const std::string &S) {
  if (S.size() >= 2 && S.front() == '|' && S.back() == '|')
    return S.substr(1, S.size() - 2);
  return S;
}

bool SideCondStore::parseEntry(const std::string &Text, const Fingerprint &K,
                               CachedResult &Out, std::string &Err) {
  itl::SExprParser P(Text);
  auto Header = P.parse();
  if (!Header) {
    Err = "bad side-condition entry: " + P.error();
    return false;
  }
  const std::vector<itl::SExpr> &L = Header->List;
  if (Header->isAtom() || L.size() != 5 ||
      L[0].Atom != "islaris-sidecond-cache" || L[1].Atom != "1") {
    Err = "unrecognized side-condition entry header/version";
    return false;
  }
  Fingerprint FileKey;
  if (!Fingerprint::fromHex(L[2].Atom, FileKey) || FileKey != K) {
    Err = "side-condition entry key mismatch";
    return false;
  }
  if (L[3].isAtom() || L[3].List.size() != 2 ||
      L[3].List[0].Atom != "result" ||
      (L[3].List[1].Atom != "sat" && L[3].List[1].Atom != "unsat")) {
    Err = "bad result clause";
    return false;
  }
  Out.Sat = L[3].List[1].Atom == "sat";
  if (L[4].isAtom() || L[4].List.empty() || L[4].List[0].Atom != "model") {
    Err = "bad model clause";
    return false;
  }
  Out.Model.clear();
  for (size_t I = 1; I < L[4].List.size(); ++I) {
    const itl::SExpr &V = L[4].List[I];
    if (V.isAtom() || V.List.size() != 3 || !V.List[0].isAtom() ||
        !V.List[1].isAtom() || !V.List[2].isAtom()) {
      Err = "bad model binding";
      return false;
    }
    BitVec Bits;
    if (!BitVec::fromString(V.List[2].Atom, Bits)) {
      Err = "bad model value";
      return false;
    }
    // Untrusted number: reject non-numeric/negative/oversized atoms with a
    // parse error (-> miss + quarantine) instead of throwing or wrapping.
    unsigned Width = 0;
    if (!support::parseUnsigned(V.List[1].Atom, 1u << 16, Width)) {
      Err = "bad model binding width '" + V.List[1].Atom + "'";
      return false;
    }
    // A declared width 0 marks a boolean (stored as one bit); otherwise the
    // value must have exactly the declared width.
    if (Width == 0 ? Bits.width() != 1 : Bits.width() != Width) {
      Err = "model value width mismatch";
      return false;
    }
    Out.Model.emplace_back(stripBars(V.List[0].Atom), Width,
                           std::move(Bits));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Disk persistence.
//===----------------------------------------------------------------------===//

std::string SideCondStore::entryPath(const Fingerprint &K) const {
  // Same 256-way fan-out as the trace cache: shard on the leading
  // fingerprint byte so warm suite stores stay navigable.
  std::string Hex = K.toHex();
  return Directory + "/" + Hex.substr(0, 2) + "/" + Hex + ".scc";
}

std::string SideCondStore::legacyEntryPath(const Fingerprint &K) const {
  return Directory + "/" + K.toHex() + ".scc";
}

void SideCondStore::discardCorrupt(const std::string &Path,
                                   support::ErrorCode Code,
                                   const std::string &Why) {
  // Miss + displace the corpse (into dir()/quarantine/) so a future
  // first-writer-wins writeToDisk can repair this key.
  bool Freed = quarantineFile(Directory, Path);
  std::lock_guard<std::mutex> L(Mu);
  if (Freed) {
    ++St.CorruptRemoved;
    ++St.Quarantined;
  }
  if (Diags.size() < 64)
    Diags.push_back(
        support::Diag::error(Code, "cache", Why + ": " + Path));
}

void SideCondStore::noteWriteFailure(const std::string &Path) {
  // Every failed publish counts (degraded-mode detector input); the Diag
  // below stays one-time and unwritable-directory-only — see
  // TraceCache::noteWriteFailure.
  {
    std::lock_guard<std::mutex> L(Mu);
    ++St.WriteFailures;
    if (WarnedUnwritable)
      return;
  }
  std::string Parent = fs::path(Path).parent_path().string();
  if (::access(Parent.c_str(), W_OK) == 0)
    return;
  std::lock_guard<std::mutex> L(Mu);
  if (WarnedUnwritable)
    return;
  WarnedUnwritable = true;
  if (Diags.size() < 64)
    Diags.push_back(support::Diag::error(
        support::ErrorCode::IoError, "cache",
        "side-condition store directory is not writable, running uncached: " +
            Directory));
}

std::vector<support::Diag> SideCondStore::drainDiags() {
  std::lock_guard<std::mutex> L(Mu);
  std::vector<support::Diag> Out;
  Out.swap(Diags);
  return Out;
}

std::optional<smt::SolverCache::CachedResult>
SideCondStore::loadFromDisk(const Fingerprint &K) {
  if (diskDisabled())
    return std::nullopt; // degraded mode: leave the failing device alone
  if (support::FaultInjector::fire(support::FaultSite::CacheRead))
    return std::nullopt; // injected read failure: degrade to a miss
  std::string Path = entryPath(K);
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    // Transparent read-through of pre-sharding stores (flat layout).
    Path = legacyEntryPath(K);
    In.open(Path, std::ios::binary);
    if (!In)
      return std::nullopt;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  // Envelope first: integrity failures are attributed precisely before any
  // bytes reach the parser (see TraceCache::loadFromDisk).
  std::string Payload;
  EnvelopeResult E = unwrapDurableEntry(Buf.str(), Payload);
  switch (E) {
  case EnvelopeResult::Ok:
  case EnvelopeResult::Legacy:
    break;
  case EnvelopeResult::Empty:
    discardCorrupt(Path, envelopeErrorCode(E), "zero-length entry file");
    return std::nullopt;
  case EnvelopeResult::BadVersion:
    discardCorrupt(Path, envelopeErrorCode(E),
                   "entry written by an unknown format version");
    return std::nullopt;
  case EnvelopeResult::Corrupt:
    discardCorrupt(Path, envelopeErrorCode(E),
                   "entry checksum did not verify (torn or corrupt)");
    return std::nullopt;
  }
  CachedResult R;
  std::string Err;
  if (!parseEntry(Payload, K, R, Err)) {
    discardCorrupt(Path, support::ErrorCode::CorruptCacheEntry, Err);
    return std::nullopt;
  }
  return R;
}

bool SideCondStore::writeToDisk(const Fingerprint &K,
                                const CachedResult &R) {
  if (diskDisabled())
    return false; // degraded mode: serve from memory, stop hammering disk
  std::error_code EC;
  std::string Path = entryPath(K);
  fs::create_directories(fs::path(Path).parent_path(), EC);
  if (EC) {
    noteWriteFailure(Path);
    return false;
  }
  // Entries are immutable: first writer wins on the sharded path.
  if (fs::exists(Path, EC))
    return false;
  std::string Legacy = legacyEntryPath(K);
  bool HadLegacy = fs::exists(Legacy, EC);
  if (!atomicWriteFile(Path, wrapDurableEntry(serializeEntry(K, R)))) {
    noteWriteFailure(Path);
    return false;
  }
  // A publish upgrades any legacy headerless flat-layout twin in place.
  if (HadLegacy) {
    std::error_code EC2;
    fs::remove(Legacy, EC2);
  }
  std::lock_guard<std::mutex> L(Mu);
  ++St.DiskWrites;
  return true;
}

//===----------------------------------------------------------------------===//
// Store interface.
//===----------------------------------------------------------------------===//

std::optional<smt::SolverCache::CachedResult>
SideCondStore::lookup(const std::string &Closure) {
  Fingerprint K = key(Closure);
  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Map.find(K);
    if (It != Map.end()) {
      ++St.Hits;
      return It->second;
    }
  }
  if (Cfg.Persist) {
    if (auto R = loadFromDisk(K)) {
      std::lock_guard<std::mutex> L(Mu);
      ++St.DiskHits;
      if (Map.size() < Cfg.MaxEntries)
        Map.emplace(K, *R); // promote into memory
      return R;
    }
  }
  std::lock_guard<std::mutex> L(Mu);
  ++St.Misses;
  return std::nullopt;
}

void SideCondStore::store(const std::string &Closure,
                          const CachedResult &R) {
  Fingerprint K = key(Closure);
  bool New = false;
  {
    std::lock_guard<std::mutex> L(Mu);
    if (Map.size() < Cfg.MaxEntries || Map.count(K)) {
      New = Map.emplace(K, R).second;
      if (New)
        ++St.Insertions;
    } else {
      New = true; // over the memory bound; disk still gets the entry
    }
  }
  if (New && Cfg.Persist && writeToDisk(K, R)) {
    // Generation bookkeeping: attribute the entry to the model it was
    // discharged against — the SaltedSolverCache prefix when the store is
    // shared across models, the config salt otherwise.
    Fingerprint Salt;
    if (extractClosureSalt(Closure, Salt))
      recordEntryGeneration(Directory, Salt, K);
    else if (Cfg.ModelSalt.Hi || Cfg.ModelSalt.Lo)
      recordEntryGeneration(Directory, Cfg.ModelSalt, K);
  }
}

bool islaris::cache::extractClosureSalt(const std::string &Closure,
                                        Fingerprint &Out) {
  // The SaltedSolverCache prefix: "(salt <32 hex>) ".
  constexpr std::string_view Magic = "(salt ";
  constexpr size_t HexLen = 32;
  if (Closure.size() < Magic.size() + HexLen + 2 ||
      Closure.compare(0, Magic.size(), Magic) != 0 ||
      Closure[Magic.size() + HexLen] != ')' ||
      Closure[Magic.size() + HexLen + 1] != ' ')
    return false;
  return Fingerprint::fromHex(Closure.substr(Magic.size(), HexLen), Out);
}

void SideCondStore::clearMemory() {
  std::lock_guard<std::mutex> L(Mu);
  Map.clear();
}

size_t SideCondStore::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Map.size();
}

SideCondStats SideCondStore::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return St;
}

//===----------------------------------------------------------------------===//
// Ambient store.
//===----------------------------------------------------------------------===//

static SideCondStore *AmbientSideCond = nullptr;

SideCondStore *islaris::cache::ambientSideCondCache() {
  return AmbientSideCond;
}

void islaris::cache::setAmbientSideCondCache(SideCondStore *C) {
  AmbientSideCond = C;
}
