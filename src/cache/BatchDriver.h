//===- cache/BatchDriver.h - Parallel batch trace generation ----*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A worker-pool scheduler for independent symbolic executions.  In the
/// paper's pipeline (Fig. 1) trace generation dominates end-to-end time; the
/// instructions of a program (and the nine Fig. 12 case studies) are
/// independent, so the driver (1) canonicalizes each request to its
/// cache::traceCacheKey, (2) collapses duplicate requests so each distinct
/// (opcode, assumptions, options) pair executes at most once per batch, (3)
/// satisfies keys from a shared TraceCache when one is attached, and (4)
/// fans the remaining work out over a thread pool in which every worker owns
/// a private TermBuilder/Executor (TermBuilder is not thread-safe) and
/// shares only the mutex-protected cache.
///
/// Results are returned in *serialized* CacheEntry form; callers
/// materialize them into their own builder with TraceCache::decode.  A
/// fresh builder per execution makes variable numbering a function of the
/// job alone, so batch results are deterministic under any scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_CACHE_BATCHDRIVER_H
#define ISLARIS_CACHE_BATCHDRIVER_H

#include "cache/TraceCache.h"
#include "support/Diag.h"

#include <functional>

namespace islaris::cache {

/// One symbolic-execution request: Executor::run(Op, *Assume, Opts) against
/// *Model.  \p Assume is borrowed and must outlive the batch.
struct TraceJob {
  const sail::Model *Model = nullptr;
  std::string ArchName;
  isla::OpcodeSpec Op;
  const isla::Assumptions *Assume = nullptr;
  isla::ExecOptions Opts;
  uint64_t Tag = 0; ///< Caller cookie (e.g. the instruction address).
  /// Optional persistent store for the executor's branch-pruning and
  /// assertion queries, installed on each worker's solver.  Must be
  /// thread-safe (SideCondStore is).  The driver salts every query with
  /// fingerprintModel(*Model), so one suite-wide store serves all models
  /// without key collisions.  Borrowed; must outlive the batch.
  smt::SolverCache *SideCond = nullptr;
};

/// Where a job's result came from.
enum class ResultSource : uint8_t {
  Fresh,    ///< Executed in this batch (first job of its key group).
  CacheHit, ///< Satisfied from the TraceCache (memory or disk).
  Deduped,  ///< Shared the execution of an identical job in this batch.
};

struct TraceJobResult {
  bool Ok = false;
  std::string Error;   ///< Executor error when !Ok (mirrors D.Message).
  support::Diag D;     ///< Structured failure diagnostic when !Ok.
  unsigned Attempts = 0; ///< Executions spent on this job's group (>1: retried).
  Fingerprint Key;
  CacheEntry Entry; ///< Valid when Ok.
  ResultSource Source = ResultSource::Fresh;
};

/// Per-batch counters (the dedup/hit savings GenStats surfaces).
struct BatchStats {
  unsigned Jobs = 0;
  unsigned Fresh = 0;
  unsigned CacheHits = 0;
  unsigned Deduped = 0;
  unsigned Failed = 0;     ///< Jobs that ended without a trace.
  unsigned Retries = 0;    ///< Extra executions spent on retryable failures.
  unsigned TimedOut = 0;   ///< Executions the watchdog cancelled.
  unsigned Exceptions = 0; ///< Executions that ended in a caught exception.
};

/// Fault-tolerance knobs of a batch run.
struct DriverOptions {
  /// Per-job wall clock (seconds; 0 = none).  Past it the watchdog fires
  /// the job's cancellation token; the job fails with JobTimeout and is
  /// eligible for retry.
  double JobTimeoutSeconds = 0;
  /// Executions allowed beyond the first for retryable failures (timeouts,
  /// escaped exceptions, injected faults) before the job is quarantined
  /// with its last diagnostic.  Deterministic failures are never retried.
  unsigned MaxRetries = 1;
};

class BatchDriver {
public:
  /// \p Threads = 0 selects std::thread::hardware_concurrency(); 1 runs
  /// everything inline on the calling thread.
  explicit BatchDriver(unsigned Threads = 0);

  unsigned threads() const { return NThreads; }

  void setOptions(const DriverOptions &O) { Opts = O; }
  const DriverOptions &options() const { return Opts; }

  /// Runs a batch.  Results are positionally aligned with \p Jobs.  When
  /// \p Cache is non-null, hits are served from it and fresh executions are
  /// inserted into it.
  std::vector<TraceJobResult> run(const std::vector<TraceJob> &Jobs,
                                  TraceCache *Cache);

  const BatchStats &lastStats() const { return Last; }

  /// Generic fan-out helper: invokes Fn(0..N-1) across at most \p Threads
  /// threads (inline when Threads <= 1 or N <= 1).  Used for whole-case-
  /// study parallelism in runAllCaseStudies.
  static void parallelFor(size_t N, unsigned Threads,
                          const std::function<void(size_t)> &Fn);

private:
  unsigned NThreads;
  BatchStats Last;
  DriverOptions Opts;
};

} // namespace islaris::cache

#endif // ISLARIS_CACHE_BATCHDRIVER_H
