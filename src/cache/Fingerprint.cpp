//===- cache/Fingerprint.cpp - Content-addressed trace-cache keys -------------===//

#include "cache/Fingerprint.h"

#include "sail/Printer.h"
#include "smt/TermBuilder.h"

#include <mutex>
#include <unordered_map>

using namespace islaris;
using namespace islaris::cache;

static constexpr uint64_t FnvPrime = 0x100000001b3ull;

static uint64_t rotl64(uint64_t V, unsigned S) {
  return (V << S) | (V >> (64 - S));
}

/// Murmur3 fmix64 avalanche.
static uint64_t fmix64(uint64_t K) {
  K ^= K >> 33;
  K *= 0xff51afd7ed558ccdull;
  K ^= K >> 33;
  K *= 0xc4ceb9fe1a85ec53ull;
  K ^= K >> 33;
  return K;
}

std::string Fingerprint::toHex() const {
  static const char *Digits = "0123456789abcdef";
  std::string S(32, '0');
  for (unsigned I = 0; I < 16; ++I) {
    S[15 - I] = Digits[(Hi >> (4 * I)) & 0xf];
    S[31 - I] = Digits[(Lo >> (4 * I)) & 0xf];
  }
  return S;
}

bool Fingerprint::fromHex(const std::string &Text, Fingerprint &Out) {
  if (Text.size() != 32)
    return false;
  uint64_t Parts[2] = {0, 0};
  for (unsigned I = 0; I < 32; ++I) {
    char C = Text[I];
    uint64_t D;
    if (C >= '0' && C <= '9')
      D = uint64_t(C - '0');
    else if (C >= 'a' && C <= 'f')
      D = uint64_t(C - 'a' + 10);
    else
      return false;
    Parts[I / 16] = (Parts[I / 16] << 4) | D;
  }
  Out.Hi = Parts[0];
  Out.Lo = Parts[1];
  return true;
}

Fingerprinter &Fingerprinter::bytes(const void *Data, size_t N) {
  const auto *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < N; ++I) {
    H1 = (H1 ^ P[I]) * FnvPrime;
    // Second lane: same FNV step over a bit-flipped stream, plus a rotate,
    // so the lanes decorrelate.
    H2 = rotl64((H2 ^ (P[I] ^ 0xa5u)) * FnvPrime, 1);
  }
  Len += N;
  return *this;
}

Fingerprinter &Fingerprinter::u64(uint64_t V) {
  unsigned char Buf[8];
  for (unsigned I = 0; I < 8; ++I)
    Buf[I] = (unsigned char)(V >> (8 * I)); // fixed little-endian encoding
  return bytes(Buf, 8);
}

Fingerprinter &Fingerprinter::str(const std::string &S) {
  u64(S.size());
  return bytes(S.data(), S.size());
}

Fingerprinter &Fingerprinter::bitvec(const BitVec &V) {
  u64(V.width());
  return str(V.toString());
}

Fingerprint Fingerprinter::digest() const {
  Fingerprint F;
  F.Hi = fmix64(H1 ^ Len);
  F.Lo = fmix64(H2 ^ rotl64(Len, 32) ^ H1);
  return F;
}

Fingerprint islaris::cache::fingerprintModel(const sail::Model &M) {
  // Memoized by the model's process-unique Uid, NOT its address: hot
  // reloads (and test suites running many servers) parse and free Model
  // instances, and a recycled heap address must never resurrect a dead
  // model's fingerprint into fresh cache keys.  Entries for dead models
  // linger, but they are 24 bytes per parse ever performed.
  static std::mutex Mu;
  static std::unordered_map<uint64_t, Fingerprint> Memo;
  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Memo.find(M.Uid);
    if (It != Memo.end())
      return It->second;
  }
  // Print outside the lock: printing a large model is the expensive part,
  // and a duplicated computation yields the identical fingerprint.
  Fingerprinter FP;
  FP.str(sail::printModel(M));
  Fingerprint F = FP.digest();
  std::lock_guard<std::mutex> L(Mu);
  Memo.emplace(M.Uid, F);
  return F;
}

Fingerprint islaris::cache::traceCacheKey(const std::string &ArchName,
                                          const sail::Model &M,
                                          const isla::OpcodeSpec &Op,
                                          const isla::Assumptions &A,
                                          const isla::ExecOptions &Opts) {
  Fingerprinter FP;
  FP.str("islaris-trace-key-v1");
  FP.str(ArchName);
  Fingerprint MF = fingerprintModel(M);
  FP.u64(MF.Hi).u64(MF.Lo);
  FP.bitvec(Op.Bits).bitvec(Op.SymMask);

  FP.u64(A.Concrete.size());
  for (const auto &[R, V] : A.Concrete) {
    FP.str(R.toString());
    FP.bitvec(V);
  }
  FP.u64(A.Constraints.size());
  for (const auto &[R, F] : A.Constraints) {
    FP.str(R.toString());
    // Render the predicate against a scratch builder whose first variable
    // stands for the register's initial value.  Constraint closures receive
    // the builder as a parameter (RegConstraintFn), so they are
    // builder-agnostic and this rendering is deterministic.
    unsigned W = isla::registerWidth(M, R);
    FP.u64(W);
    smt::TermBuilder Scratch;
    const smt::Term *Var =
        Scratch.freshVar(smt::Sort::bitvec(W ? W : 64), "k0");
    const smt::Term *Pred = F(Scratch, Var);
    FP.str(Pred ? Pred->toString() : "<null>");
  }

  FP.boolean(Opts.CacheRegReads);
  FP.boolean(Opts.SinksOnly);
  FP.u64(Opts.MaxPaths);
  // The Snapshot and Replay engines emit bit-identical traces, so the engine
  // knob stays out of their shared key space.  Merged traces are only
  // semantically equivalent — different bytes — so the merge engine is
  // salted into its own keys (budget included: it decides where merging
  // falls back to enumeration, hence the trace shape).
  if (Opts.Engine == isla::ExecEngine::Merge) {
    FP.str("merge-engine");
    FP.u64(Opts.MergeTermBudget);
    FP.str(Opts.MergePcName);
  }
  return FP.digest();
}
