//===- cache/Scrub.h - Offline store scrub & compaction ---------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline maintenance pass over a persistent store directory
/// (TraceCache or SideCondStore — both share the entry envelope and the
/// sharded layout, so one scrubber serves both).  A scrub:
///
///   - reaps stale ".tmp." files left by crashed writers,
///   - verifies every entry's durability envelope, quarantining files whose
///     checksum, version, or embedded key does not hold,
///   - migrates legacy files — headerless payloads and flat-layout
///     placement — into checksummed entries in their proper shard,
///   - enforces an optional size budget by evicting least-recently-touched
///     entries (LRU by mtime; readers re-derive evicted results, so
///     eviction is always safe).
///
/// Exposed as a library call for tests and as the `cachectl` mini-tool for
/// operators.  Scrubbing a live store is safe: entry publishing is
/// first-writer-wins atomic-rename, so the worst interleaving costs a
/// recomputation, never a wrong hit.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_CACHE_SCRUB_H
#define ISLARIS_CACHE_SCRUB_H

#include "support/Diag.h"

#include <cstdint>
#include <string>
#include <vector>

namespace islaris::cache {

struct ScrubOptions {
  /// Store root to scrub (one of the per-store directories, e.g.
  /// resolveCacheDir() or resolveCacheDir() + "/sidecond").
  std::string Dir;
  /// Entry size budget in bytes; 0 disables compaction.  When the store
  /// exceeds the budget, oldest-mtime entries are evicted until it fits.
  uint64_t MaxBytes = 0;
  /// Report what would change without touching the store.
  bool DryRun = false;
};

struct ScrubReport {
  uint64_t FilesScanned = 0;   ///< Regular files visited (excl. quarantine/).
  uint64_t OkEntries = 0;      ///< Entries whose envelope verified.
  uint64_t LegacyMigrated = 0; ///< Headerless and/or flat-layout entries
                               ///< rewritten as enveloped sharded files.
  uint64_t Quarantined = 0;    ///< Corrupt files moved to quarantine/.
  uint64_t TempsRemoved = 0;   ///< Stale writer temp files reaped.
  uint64_t Evicted = 0;        ///< Entries evicted by the size budget.
  uint64_t BytesReclaimed = 0; ///< Bytes freed by reaping + eviction.
  uint64_t BytesInUse = 0;     ///< Entry bytes remaining after the pass.
  std::vector<support::Diag> Diags;

  bool clean() const { return Quarantined == 0 && Diags.empty(); }
};

/// Runs one scrub/compaction pass over \p O.Dir.  A missing directory is a
/// no-op (empty report), not an error.
ScrubReport scrubStore(const ScrubOptions &O);

//===----------------------------------------------------------------------===//
// Clean-shutdown marker & scrub-on-open.  A long-lived process (islarisd)
// writes a marker file into each store directory when it drains cleanly; a
// store opened with ScrubOnOpen enabled consumes the marker (the store is
// in use again — a crash from here leaves it absent) and, when the marker
// is MISSING, runs a quick scrub first: reap stale writer temps and
// spot-check a bounded sample of entry envelopes, quarantining corruption
// before the first read can trip over it.  Entry publishing is atomic
// first-writer-wins, so an unclean shutdown can only leave temps and torn
// files — exactly what the quick pass looks for.
//===----------------------------------------------------------------------===//

/// Marker file name inside a store directory.
inline constexpr const char *CleanShutdownMarker = ".clean-shutdown";

/// Writes \p Dir's clean-shutdown marker (creating the directory as
/// needed).  Returns false on I/O failure.
bool writeCleanShutdownMarker(const std::string &Dir);
bool hasCleanShutdownMarker(const std::string &Dir);
void clearCleanShutdownMarker(const std::string &Dir);

struct QuickScrubReport {
  /// False when the directory does not exist or the marker attested a
  /// clean shutdown (no pass was needed).
  bool Ran = false;
  /// True when the marker was present and consumed.
  bool WasClean = false;
  uint64_t TempsRemoved = 0;
  uint64_t EntriesChecked = 0; ///< Envelopes spot-checked.
  uint64_t Quarantined = 0;    ///< Spot-checked entries that failed.
  std::vector<support::Diag> Diags;
};

/// The scrub-on-open pass: consumes the clean-shutdown marker if present
/// (skipping the scrub), otherwise reaps every stale ".tmp." file and
/// verifies the envelopes of up to \p MaxSpotChecks entries, quarantining
/// failures.  Bounded by design — this runs on the open path.
QuickScrubReport scrubOnOpen(const std::string &Dir,
                             size_t MaxSpotChecks = 32);

} // namespace islaris::cache

#endif // ISLARIS_CACHE_SCRUB_H
