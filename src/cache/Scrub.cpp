//===- cache/Scrub.cpp - Offline store scrub & compaction ---------------------===//

#include "cache/Scrub.h"

#include "cache/Fingerprint.h"
#include "cache/TraceCache.h" // envelope helpers, atomicWriteFile, quarantine

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace islaris;
using namespace islaris::cache;

namespace fs = std::filesystem;

namespace {

struct LiveEntry {
  fs::path Path;
  uint64_t Size = 0;
  fs::file_time_type MTime;
};

bool isHex(const std::string &S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (!((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')))
      return false;
  return true;
}

void note(ScrubReport &R, support::ErrorCode Code, const std::string &Msg) {
  if (R.Diags.size() < 64)
    R.Diags.push_back(support::Diag::error(Code, "scrub", Msg));
}

uint64_t sizeOf(const fs::path &P) {
  std::error_code EC;
  uint64_t S = fs::file_size(P, EC);
  return EC ? 0 : S;
}

} // namespace

ScrubReport islaris::cache::scrubStore(const ScrubOptions &O) {
  ScrubReport R;
  fs::path Root(O.Dir);
  std::error_code EC;
  if (!fs::is_directory(Root, EC))
    return R; // nothing to scrub

  std::vector<LiveEntry> Live;
  std::vector<fs::path> Files;
  try {
    fs::recursive_directory_iterator It(
        Root, fs::directory_options::skip_permission_denied);
    for (auto End = fs::end(It); It != End; ++It) {
      if (It->is_directory()) {
        // Only shard fan-out directories ("00".."ff") belong to this
        // store's layout.  Anything else — the quarantine area (corpses
        // kept on purpose), a sibling store nested under the same root
        // (sidecond/ under the trace root) — is not ours: descending
        // would "migrate" a foreign store's entries into our shards.
        std::string D = It->path().filename().string();
        if (!(D.size() == 2 && isHex(D)))
          It.disable_recursion_pending();
        continue;
      }
      if (It->is_regular_file())
        Files.push_back(It->path());
    }
  } catch (const fs::filesystem_error &E) {
    note(R, support::ErrorCode::IoError,
         std::string("store walk failed: ") + E.what());
    return R;
  }

  for (const fs::path &P : Files) {
    ++R.FilesScanned;
    std::string Name = P.filename().string();

    // Stale writer temp: a crash between create and rename leaves
    // "<entry>.tmp.<pid>.<counter>" behind; it is never read, only reaped.
    if (Name.find(".tmp.") != std::string::npos) {
      uint64_t S = sizeOf(P);
      if (!O.DryRun)
        fs::remove(P, EC);
      ++R.TempsRemoved;
      R.BytesReclaimed += S;
      continue;
    }

    // Entry files are "<32-hex-fingerprint>.itc|.scc"; anything else in the
    // tree (run journals, operator notes) is left alone.
    std::string Ext = P.extension().string();
    std::string Stem = P.stem().string();
    if ((Ext != ".itc" && Ext != ".scc") || Stem.size() != 32 ||
        !isHex(Stem))
      continue;

    std::string Text;
    {
      std::ifstream In(P, std::ios::binary);
      if (!In) {
        note(R, support::ErrorCode::IoError,
             "unreadable entry file: " + P.string());
        continue;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Text = Buf.str();
    }

    std::string Payload;
    EnvelopeResult V = unwrapDurableEntry(Text, Payload);
    // Whatever the envelope says, the payload must carry the fingerprint
    // the filename promises — a renamed or cross-linked entry would
    // otherwise verify cleanly and then serve the wrong key.
    bool KeyOk = (V == EnvelopeResult::Ok || V == EnvelopeResult::Legacy) &&
                 Payload.find(Stem) != std::string::npos;
    if (!KeyOk) {
      support::ErrorCode Code =
          (V == EnvelopeResult::Ok || V == EnvelopeResult::Legacy)
              ? support::ErrorCode::CorruptCacheEntry
              : envelopeErrorCode(V);
      uint64_t S = sizeOf(P);
      if (!O.DryRun)
        quarantineFile(Root.string(), P.string());
      ++R.Quarantined;
      R.BytesReclaimed += S;
      note(R, Code, "quarantined corrupt entry: " + P.string());
      continue;
    }

    fs::path ShardPath = Root / Stem.substr(0, 2) / (Stem + Ext);
    bool Misplaced = fs::weakly_canonical(P, EC) !=
                     fs::weakly_canonical(ShardPath, EC);
    if (V == EnvelopeResult::Ok && !Misplaced) {
      Live.push_back({P, sizeOf(P), fs::last_write_time(P, EC)});
      ++R.OkEntries;
      continue;
    }

    // Legacy in format (headerless payload), placement (flat at the store
    // root), or both: republish as an enveloped entry in its shard.  The
    // sharded twin wins if one already exists — entries are immutable, so
    // content is interchangeable.
    ++R.LegacyMigrated;
    if (O.DryRun) {
      Live.push_back({P, sizeOf(P), fs::last_write_time(P, EC)});
      continue;
    }
    bool Published = fs::exists(ShardPath, EC);
    if (!Published) {
      fs::create_directories(ShardPath.parent_path(), EC);
      Published = atomicWriteFile(ShardPath.string(), wrapDurableEntry(Payload));
    }
    if (!Published) {
      note(R, support::ErrorCode::IoError,
           "could not migrate legacy entry: " + P.string());
      Live.push_back({P, sizeOf(P), fs::last_write_time(P, EC)});
      continue;
    }
    if (Misplaced)
      fs::remove(P, EC);
    Live.push_back(
        {ShardPath, sizeOf(ShardPath), fs::last_write_time(ShardPath, EC)});
  }

  for (const LiveEntry &E : Live)
    R.BytesInUse += E.Size;

  // Compaction: evict least-recently-touched entries until the store fits
  // the budget.  Always safe — a future miss recomputes and republishes.
  if (O.MaxBytes && R.BytesInUse > O.MaxBytes) {
    std::sort(Live.begin(), Live.end(),
              [](const LiveEntry &A, const LiveEntry &B) {
                return A.MTime < B.MTime;
              });
    for (const LiveEntry &E : Live) {
      if (R.BytesInUse <= O.MaxBytes)
        break;
      if (!O.DryRun)
        fs::remove(E.Path, EC);
      ++R.Evicted;
      R.BytesReclaimed += E.Size;
      R.BytesInUse -= E.Size;
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Clean-shutdown marker & scrub-on-open.
//===----------------------------------------------------------------------===//

bool islaris::cache::writeCleanShutdownMarker(const std::string &Dir) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  std::ofstream Out(fs::path(Dir) / CleanShutdownMarker,
                    std::ios::binary | std::ios::trunc);
  Out << "clean\n";
  return bool(Out);
}

bool islaris::cache::hasCleanShutdownMarker(const std::string &Dir) {
  std::error_code EC;
  return fs::exists(fs::path(Dir) / CleanShutdownMarker, EC);
}

void islaris::cache::clearCleanShutdownMarker(const std::string &Dir) {
  std::error_code EC;
  fs::remove(fs::path(Dir) / CleanShutdownMarker, EC);
}

QuickScrubReport islaris::cache::scrubOnOpen(const std::string &Dir,
                                             size_t MaxSpotChecks) {
  QuickScrubReport R;
  fs::path Root(Dir);
  std::error_code EC;
  if (!fs::is_directory(Root, EC))
    return R;
  if (hasCleanShutdownMarker(Dir)) {
    // The previous owner drained cleanly; consume the marker (this store is
    // live again — only a clean close rewrites it) and skip the pass.
    clearCleanShutdownMarker(Dir);
    R.WasClean = true;
    return R;
  }
  R.Ran = true;

  auto Note = [&R](support::ErrorCode Code, const std::string &Msg) {
    if (R.Diags.size() < 64)
      R.Diags.push_back(support::Diag(Code, "scrub", Msg,
                                      support::Severity::Warning));
  };

  try {
    fs::recursive_directory_iterator It(
        Root, fs::directory_options::skip_permission_denied);
    for (auto End = fs::end(It); It != End; ++It) {
      if (It->is_directory()) {
        std::string D = It->path().filename().string();
        if (!(D.size() == 2 && isHex(D)))
          It.disable_recursion_pending(); // quarantine/, nested stores
        continue;
      }
      if (!It->is_regular_file())
        continue;
      const fs::path &P = It->path();
      std::string Name = P.filename().string();
      if (Name.find(".tmp.") != std::string::npos) {
        // A crashed writer's temp: never read, only reaped.
        fs::remove(P, EC);
        ++R.TempsRemoved;
        continue;
      }
      std::string Ext = P.extension().string();
      std::string Stem = P.stem().string();
      if ((Ext != ".itc" && Ext != ".scc") || Stem.size() != 32 ||
          !isHex(Stem))
        continue;
      if (R.EntriesChecked >= MaxSpotChecks)
        continue; // keep reaping temps, stop opening entries
      ++R.EntriesChecked;
      std::string Text;
      {
        std::ifstream In(P, std::ios::binary);
        if (!In)
          continue;
        std::ostringstream Buf;
        Buf << In.rdbuf();
        Text = Buf.str();
      }
      std::string Payload;
      EnvelopeResult V = unwrapDurableEntry(Text, Payload);
      if (V == EnvelopeResult::Ok || V == EnvelopeResult::Legacy)
        continue;
      quarantineFile(Root.string(), P.string());
      ++R.Quarantined;
      Note(envelopeErrorCode(V),
           "scrub-on-open quarantined corrupt entry: " + P.string());
    }
  } catch (const fs::filesystem_error &E) {
    Note(support::ErrorCode::IoError,
         std::string("scrub-on-open walk failed: ") + E.what());
  }
  return R;
}
