//===- cache/Journal.h - Append-only run journal ----------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The write-ahead journal behind resumable suite runs.  A suite run
/// appends one checksummed record per completed job — keyed on a
/// fingerprint of the job's identity and suite configuration, carrying the
/// serialized result — so a run killed partway through can be restarted
/// with the same options and skip every job whose record survived, while
/// reproducing bit-identical aggregate results.
///
/// Records are self-delimiting and individually checksummed:
///
///   (islaris-journal 1 <keyhex> <payload-len> <fnv64-hex>)\n<payload>\n
///
/// The file is append-only; recovery is a single forward scan that accepts
/// the longest valid prefix and truncates anything after it (a crash mid-
/// append leaves at most one torn tail record, which carries no completed
/// work by definition — the job's effects on the entry stores are idempotent
/// first-writer-wins publishes, so replaying it is safe).  Appends are
/// fsync'd (ISLARIS_NO_FSYNC opt-out shared with atomicWriteFile) so a
/// record observed by the dying process is observed by its successor.
/// Duplicate keys can occur when a crash lands between a job finishing and
/// its record syncing on a later run; the last record wins (all records for
/// a key encode the same result, so this is a tie-break, not a merge).
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_CACHE_JOURNAL_H
#define ISLARIS_CACHE_JOURNAL_H

#include "cache/Fingerprint.h"
#include "support/Diag.h"

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace islaris::cache {

/// An append-only, checksummed, crash-recoverable key -> payload log.
/// Thread-safe: suite workers append concurrently behind one mutex.
class RunJournal {
public:
  /// \p Path is the journal file; nothing is opened until open().
  explicit RunJournal(std::string Path);
  ~RunJournal();

  RunJournal(const RunJournal &) = delete;
  RunJournal &operator=(const RunJournal &) = delete;

  /// Opens (creating the file and parent directory as needed), scans the
  /// existing records into memory, and truncates any torn tail left by a
  /// crash mid-append.  Returns false when the file cannot be opened for
  /// appending — the journal is then disabled and append() fails cleanly.
  bool open();

  /// The payload recorded for \p K, or null when no record survived.
  const std::string *find(const Fingerprint &K) const;

  /// Appends a record durably (write + fsync before returning).  Returns
  /// false when the journal is closed or the write failed; the in-memory
  /// map is only updated on success.  When a compaction threshold is set
  /// and the file has outgrown it, the append triggers a compaction pass.
  bool append(const Fingerprint &K, const std::string &Payload);

  /// Arms automatic rotation: once the journal file exceeds \p Bytes after
  /// an append AND rewriting last-record-per-key would reclaim at least
  /// half the file (long-lived suites re-append every key each run, so the
  /// dead-record fraction grows without bound), the file is compacted in
  /// place.  0 (the default) disables automatic compaction.
  void setCompactThreshold(uint64_t Bytes);

  /// One rotation/compaction pass: rewrites the last record per key into a
  /// fresh file and atomically swaps it over the journal (write-temp,
  /// fsync, rename — the same durability protocol as the entry stores), so
  /// a crash at any point leaves either the old or the new file, never a
  /// mix.  The append descriptor is reopened on the new file.  Returns
  /// false when the rewrite or the reopen failed (the journal is then
  /// closed — appends fail cleanly rather than landing on a stale inode).
  bool compact();

  /// Number of distinct keys with a surviving record.
  size_t records() const;
  /// Bytes of torn tail discarded by open() (0 on a clean file).
  uint64_t tornBytesDiscarded() const;
  /// Current journal file size in bytes (valid records only).
  uint64_t fileBytes() const;
  /// Compaction passes run (automatic and explicit) since open().
  unsigned compactions() const;
  const std::string &path() const { return FilePath; }

  /// Returns and clears diagnostics (torn-tail truncation, I/O failures);
  /// bounded to 64 between drains.
  std::vector<support::Diag> drainDiags();

  /// One serialized record, exposed for tests and scrub tooling.
  static std::string encodeRecord(const Fingerprint &K,
                                  const std::string &Payload);

private:
  std::string FilePath;
  int Fd = -1; ///< Append descriptor; -1 when closed/disabled.

  mutable std::mutex Mu;
  std::unordered_map<Fingerprint, std::string, FingerprintHash> Map;
  uint64_t TornBytes = 0;
  uint64_t FileBytes = 0;    ///< Valid bytes on disk (append-tracked).
  uint64_t LiveBytes = 0;    ///< Bytes a compacted rewrite would occupy.
  uint64_t CompactThreshold = 0;
  unsigned Compactions = 0;
  std::vector<support::Diag> Diags;

  void noteDiag(support::Diag D);
  /// compact() body; requires Mu held.
  bool compactLocked();
};

} // namespace islaris::cache

#endif // ISLARIS_CACHE_JOURNAL_H
