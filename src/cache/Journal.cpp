//===- cache/Journal.cpp - Append-only run journal ----------------------------===//

#include "cache/Journal.h"

#include "cache/TraceCache.h" // fnv1a64, fsync policy shared with the stores
#include "support/FaultInjector.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

using namespace islaris;
using namespace islaris::cache;

namespace fs = std::filesystem;

static constexpr std::string_view JournalMagic = "(islaris-journal 1 ";

static bool fsyncEnabled() {
  const char *E = std::getenv("ISLARIS_NO_FSYNC");
  return !E || !*E;
}

RunJournal::RunJournal(std::string Path) : FilePath(std::move(Path)) {}

RunJournal::~RunJournal() {
  if (Fd >= 0)
    ::close(Fd);
}

void RunJournal::noteDiag(support::Diag D) {
  if (Diags.size() < 64)
    Diags.push_back(std::move(D));
}

std::string RunJournal::encodeRecord(const Fingerprint &K,
                                     const std::string &Payload) {
  std::ostringstream OS;
  OS << JournalMagic << K.toHex() << " " << Payload.size() << " "
     << std::hex << std::setfill('0') << std::setw(16) << fnv1a64(Payload)
     << ")\n"
     << Payload << "\n";
  return OS.str();
}

static bool isHex(std::string_view S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (!((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f') ||
          (C >= 'A' && C <= 'F')))
      return false;
  return true;
}

static bool isDigits(std::string_view S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (C < '0' || C > '9')
      return false;
  return true;
}

bool RunJournal::open() {
  std::lock_guard<std::mutex> L(Mu);
  if (Fd >= 0)
    return true;
  std::error_code EC;
  fs::path Parent = fs::path(FilePath).parent_path();
  if (!Parent.empty())
    fs::create_directories(Parent, EC);

  // Recovery scan: accept the longest prefix of valid records; everything
  // after the first malformed byte is a torn tail from a crash mid-append
  // and is truncated away (it cannot describe completed work: the append
  // protocol syncs the record before the job is reported complete).
  std::string Text;
  {
    std::ifstream In(FilePath, std::ios::binary);
    if (In) {
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Text = Buf.str();
    }
  }
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Start = Pos;
    if (Text.compare(Pos, JournalMagic.size(), JournalMagic) != 0)
      break;
    size_t NL = Text.find('\n', Pos);
    if (NL == std::string::npos)
      break;
    // "<keyhex> <len> <fnv64-hex>)" between the magic and the newline.
    std::string_view Header(Text.data() + Pos + JournalMagic.size(),
                            NL - Pos - JournalMagic.size());
    size_t Sp1 = Header.find(' ');
    size_t Sp2 = Sp1 == std::string_view::npos
                     ? std::string_view::npos
                     : Header.find(' ', Sp1 + 1);
    if (Sp2 == std::string_view::npos || Header.empty() ||
        Header.back() != ')')
      break;
    std::string_view KeyHex = Header.substr(0, Sp1);
    std::string_view Len = Header.substr(Sp1 + 1, Sp2 - Sp1 - 1);
    std::string_view Sum = Header.substr(Sp2 + 1, Header.size() - Sp2 - 2);
    Fingerprint K;
    if (!isHex(KeyHex) || !Fingerprint::fromHex(std::string(KeyHex), K) ||
        !isDigits(Len) || Sum.size() != 16 || !isHex(Sum))
      break;
    uint64_t WantLen = std::strtoull(std::string(Len).c_str(), nullptr, 10);
    uint64_t WantSum = std::strtoull(std::string(Sum).c_str(), nullptr, 16);
    size_t PayloadStart = NL + 1;
    // The payload plus its trailing newline must be fully present.
    if (PayloadStart + WantLen + 1 > Text.size())
      break;
    std::string_view Payload(Text.data() + PayloadStart, WantLen);
    if (Text[PayloadStart + WantLen] != '\n' || fnv1a64(Payload) != WantSum)
      break;
    size_t RecordSize = PayloadStart + WantLen + 1 - Pos;
    auto It = Map.find(K);
    if (It == Map.end())
      LiveBytes += RecordSize;
    else
      LiveBytes += RecordSize - encodeRecord(K, It->second).size();
    Map[K] = std::string(Payload); // last record for a key wins
    Pos = PayloadStart + WantLen + 1;
    (void)Start;
  }
  FileBytes = Pos;
  if (Pos < Text.size()) {
    TornBytes = Text.size() - Pos;
    if (::truncate(FilePath.c_str(), off_t(Pos)) != 0) {
      noteDiag(support::Diag::error(
          support::ErrorCode::IoError, "journal",
          "could not truncate torn journal tail: " + FilePath));
      return false;
    }
    noteDiag(support::Diag(
        support::ErrorCode::ChecksumMismatch, "journal",
        "truncated " + std::to_string(TornBytes) +
            " bytes of torn journal tail (crash mid-append): " + FilePath,
        support::Severity::Warning));
  }

  Fd = ::open(FilePath.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (Fd < 0) {
    noteDiag(support::Diag::error(
        support::ErrorCode::IoError, "journal",
        "could not open run journal for append: " + FilePath));
    return false;
  }
  return true;
}

bool RunJournal::append(const Fingerprint &K, const std::string &Payload) {
  using support::FaultInjector;
  using support::FaultSite;
  std::string Record = encodeRecord(K, Payload);
  std::lock_guard<std::mutex> L(Mu);
  if (Fd < 0)
    return false;
  // Crash-storm probe #1: die before any byte of the record lands — the job
  // simply re-runs on resume.
  if (FaultInjector::fire(FaultSite::CrashJournal))
    std::_Exit(42);
  // The record is written in two halves with a crash probe between them so
  // the storm harness can manufacture a genuinely torn tail (a single
  // write(2) would be all-or-nothing on most filesystems).
  size_t Half = Record.size() / 2;
  auto WriteAll = [&](const char *Data, size_t Size) {
    size_t Off = 0;
    while (Off < Size) {
      ssize_t N = ::write(Fd, Data + Off, Size - Off);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Off += size_t(N);
    }
    return true;
  };
  if (!WriteAll(Record.data(), Half)) {
    noteDiag(support::Diag::error(support::ErrorCode::IoError, "journal",
                                  "journal append failed: " + FilePath));
    return false;
  }
  // Crash-storm probe #2: die with half a record on disk — recovery must
  // truncate it away.
  if (FaultInjector::fire(FaultSite::CrashJournal))
    std::_Exit(42);
  if (!WriteAll(Record.data() + Half, Record.size() - Half)) {
    noteDiag(support::Diag::error(support::ErrorCode::IoError, "journal",
                                  "journal append failed: " + FilePath));
    return false;
  }
  if (fsyncEnabled())
    ::fsync(Fd);
  // Crash-storm probe #3: die after the sync — the record must survive and
  // the job must be skipped on resume.
  if (FaultInjector::fire(FaultSite::CrashJournal))
    std::_Exit(42);
  FileBytes += Record.size();
  auto It = Map.find(K);
  if (It == Map.end())
    LiveBytes += Record.size();
  else
    LiveBytes += Record.size() - encodeRecord(K, It->second).size();
  Map[K] = Payload;
  // Rotation: once the file outgrows the threshold and at least half of it
  // is dead (superseded records), rewrite it.  The half-dead gate keeps a
  // journal of mostly-distinct keys from recompacting on every append.
  if (CompactThreshold && FileBytes > CompactThreshold &&
      LiveBytes <= FileBytes / 2)
    compactLocked();
  return true;
}

void RunJournal::setCompactThreshold(uint64_t Bytes) {
  std::lock_guard<std::mutex> L(Mu);
  CompactThreshold = Bytes;
}

bool RunJournal::compact() {
  std::lock_guard<std::mutex> L(Mu);
  return compactLocked();
}

bool RunJournal::compactLocked() {
  if (Fd < 0)
    return false;
  // Deterministic record order: sorted by key, so two compactions of the
  // same logical state produce byte-identical files.
  std::vector<const Fingerprint *> Keys;
  Keys.reserve(Map.size());
  for (const auto &[K, V] : Map) {
    (void)V;
    Keys.push_back(&K);
  }
  std::sort(Keys.begin(), Keys.end(),
            [](const Fingerprint *A, const Fingerprint *B) { return *A < *B; });
  std::string Text;
  Text.reserve(LiveBytes);
  for (const Fingerprint *K : Keys)
    Text += encodeRecord(*K, Map.at(*K));
  uint64_t Reclaimed = FileBytes > Text.size() ? FileBytes - Text.size() : 0;
  // atomicWriteFile gives the full write-temp/fsync/rename/fsync-dir
  // protocol; the old append descriptor then points at the unlinked inode
  // and must be swapped for one on the new file.
  if (!atomicWriteFile(FilePath, Text)) {
    noteDiag(support::Diag::error(support::ErrorCode::IoError, "journal",
                                  "journal compaction rewrite failed: " +
                                      FilePath));
    return false;
  }
  ::close(Fd);
  Fd = ::open(FilePath.c_str(), O_WRONLY | O_APPEND, 0644);
  if (Fd < 0) {
    noteDiag(support::Diag::error(
        support::ErrorCode::IoError, "journal",
        "could not reopen journal after compaction: " + FilePath));
    return false;
  }
  FileBytes = LiveBytes = Text.size();
  ++Compactions;
  noteDiag(support::Diag(
      support::ErrorCode::Ok, "journal",
      "compacted run journal (" + std::to_string(Reclaimed) +
          " bytes of superseded records reclaimed): " + FilePath,
      support::Severity::Note));
  return true;
}

const std::string *RunJournal::find(const Fingerprint &K) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Map.find(K);
  return It == Map.end() ? nullptr : &It->second;
}

size_t RunJournal::records() const {
  std::lock_guard<std::mutex> L(Mu);
  return Map.size();
}

uint64_t RunJournal::tornBytesDiscarded() const {
  std::lock_guard<std::mutex> L(Mu);
  return TornBytes;
}

uint64_t RunJournal::fileBytes() const {
  std::lock_guard<std::mutex> L(Mu);
  return FileBytes;
}

unsigned RunJournal::compactions() const {
  std::lock_guard<std::mutex> L(Mu);
  return Compactions;
}

std::vector<support::Diag> RunJournal::drainDiags() {
  std::lock_guard<std::mutex> L(Mu);
  std::vector<support::Diag> Out;
  Out.swap(Diags);
  return Out;
}
