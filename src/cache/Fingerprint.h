//===- cache/Fingerprint.h - Content-addressed trace-cache keys -*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical cache keys for symbolic-execution results.  The real Isla tool
/// amortises trace generation with an on-disk cache keyed by the opcode and
/// execution configuration; this header provides the key derivation for our
/// reproduction: a stable 128-bit fingerprint over
///
///   - the architecture name,
///   - the opcode bits and symbolic-bit mask,
///   - the full Assumptions set (concrete values verbatim; constraint
///     predicates rendered through the SMT term printer against a scratch
///     builder, so structurally equal predicates key equal),
///   - the ExecOptions knobs, and
///   - a fingerprint of the mini-Sail model source.
///
/// The hasher is a small self-contained two-lane FNV-1a variant with a
/// murmur-style final avalanche — no external dependencies, deterministic
/// across platforms and runs (it never hashes pointers or addresses).
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_CACHE_FINGERPRINT_H
#define ISLARIS_CACHE_FINGERPRINT_H

#include "isla/Executor.h"

#include <cstdint>
#include <string>

namespace islaris::cache {

/// A 128-bit content fingerprint.
struct Fingerprint {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const Fingerprint &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  bool operator!=(const Fingerprint &O) const { return !(*this == O); }
  bool operator<(const Fingerprint &O) const {
    return Hi != O.Hi ? Hi < O.Hi : Lo < O.Lo;
  }

  /// 32 lowercase hex characters (filename-safe).
  std::string toHex() const;
  /// Parses the toHex() form; false on malformed input.
  static bool fromHex(const std::string &Text, Fingerprint &Out);
};

struct FingerprintHash {
  size_t operator()(const Fingerprint &F) const {
    return size_t(F.Hi ^ (F.Lo * 0x9e3779b97f4a7c15ull));
  }
};

/// Incremental hasher producing a Fingerprint.  All inputs are
/// length-prefixed, so adjacent fields cannot alias ("ab"+"c" != "a"+"bc").
class Fingerprinter {
public:
  Fingerprinter &bytes(const void *Data, size_t N);
  Fingerprinter &str(const std::string &S);
  Fingerprinter &u64(uint64_t V);
  Fingerprinter &u32(uint32_t V) { return u64(V); }
  Fingerprinter &boolean(bool V) { return u64(V ? 1 : 0); }
  Fingerprinter &bitvec(const BitVec &V);

  /// Finalizes (avalanche mix).  The hasher may keep absorbing afterwards;
  /// digest() is a pure function of everything absorbed so far.
  Fingerprint digest() const;

private:
  uint64_t H1 = 0xcbf29ce484222325ull; // FNV-1a offset basis
  uint64_t H2 = 0x84222325cbf29ce4ull; // rotated basis for the second lane
  uint64_t Len = 0;
};

/// Fingerprint of a resolved mini-Sail model, derived from its printed
/// source (sail::printModel), memoized by model identity.  Thread-safe.
Fingerprint fingerprintModel(const sail::Model &M);

/// The canonical trace-cache key for one symbolic execution
/// Executor::run(Op, A, Opts) against \p M.  Two executions with equal keys
/// produce identical traces up to variable numbering, which the serialized
/// representation normalizes away (see TraceCache).
Fingerprint traceCacheKey(const std::string &ArchName, const sail::Model &M,
                          const isla::OpcodeSpec &Op,
                          const isla::Assumptions &A,
                          const isla::ExecOptions &Opts);

} // namespace islaris::cache

#endif // ISLARIS_CACHE_FINGERPRINT_H
