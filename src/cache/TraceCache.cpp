//===- cache/TraceCache.cpp - Content-addressed ITL trace store ---------------===//

#include "cache/TraceCache.h"

#include "cache/Scrub.h"
#include "itl/Parser.h"
#include "smt/TermBuilder.h"
#include "support/FaultInjector.h"
#include "support/Parse.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string_view>

#include <fcntl.h>
#include <unistd.h>

using namespace islaris;
using namespace islaris::cache;

namespace fs = std::filesystem;

std::string islaris::cache::resolveCacheDir() {
  if (const char *Env = std::getenv("ISLARIS_CACHE_DIR"))
    if (*Env)
      return Env;
  return "build/.trace-cache";
}

/// ISLARIS_NO_FSYNC=1 (any non-empty value) skips the durability syncs —
/// tests and throwaway caches don't need crash safety and fsync dominates
/// their wall time on some filesystems.  Read per call: it is two libc
/// lookups, and tests toggle the variable at runtime.
static bool fsyncEnabled() {
  const char *E = std::getenv("ISLARIS_NO_FSYNC");
  return !E || !*E;
}

/// fsync on the *directory* makes the rename itself durable (POSIX persists
/// a renamed dirent only once the containing directory is synced).
static void fsyncDir(const fs::path &Dir) {
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd >= 0) {
    ::fsync(Fd);
    ::close(Fd);
  }
}

bool islaris::cache::atomicWriteFile(const std::string &Path,
                                     const std::string &Content) {
  using support::FaultInjector;
  using support::FaultSite;
  if (FaultInjector::fire(FaultSite::DiskFull))
    return false; // injected ENOSPC: the device stays full until disarmed
  if (FaultInjector::fire(FaultSite::CacheWrite))
    return false; // injected: entry file could not be created/written
  // Injected torn write: only a prefix reaches disk, and the truncated file
  // IS published — the one failure mode rename cannot mask, standing in for
  // a crash mid-write on a filesystem that reorders data and rename.
  bool Torn = FaultInjector::fire(FaultSite::CacheTornWrite);
  std::string_view Payload(Content);
  if (Torn)
    Payload = Payload.substr(0, Payload.size() / 2);
  static std::atomic<uint64_t> Counter{0};
  std::string Tmp = Path + ".tmp." + std::to_string(uint64_t(::getpid())) +
                    "." +
                    std::to_string(
                        Counter.fetch_add(1, std::memory_order_relaxed));
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  bool WriteOk = true;
  size_t Off = 0;
  while (Off < Payload.size()) {
    ssize_t N = ::write(Fd, Payload.data() + Off, Payload.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      WriteOk = false;
      break;
    }
    Off += size_t(N);
  }
  // Sync the temp file's *data* before the rename publishes it, so a crash
  // right after the rename cannot expose a file whose blocks never hit the
  // platter (the failure mode the old comment here only described).
  if (WriteOk && fsyncEnabled() && ::fsync(Fd) != 0)
    WriteOk = false;
  if (::close(Fd) != 0)
    WriteOk = false;
  if (!WriteOk) {
    std::error_code EC;
    fs::remove(Tmp, EC);
    return false;
  }
  // Crash-storm probe #1: die with the temp durable but not yet visible.  A
  // resumed run must see a clean miss (plus a stale .tmp for scrub to reap).
  if (FaultInjector::fire(FaultSite::CrashPublish))
    std::_Exit(42);
  if (FaultInjector::fire(FaultSite::CacheRename)) {
    std::error_code EC2;
    fs::remove(Tmp, EC2);
    return false; // injected: publish rename failed, temp cleaned up
  }
  std::error_code EC;
  fs::rename(Tmp, Path, EC);
  if (EC) {
    std::error_code EC2;
    fs::remove(Tmp, EC2);
    return false;
  }
  // Crash-storm probe #2: die after the rename but before the directory
  // sync — the published entry may or may not survive; either state must be
  // recoverable.
  if (FaultInjector::fire(FaultSite::CrashPublish))
    std::_Exit(42);
  if (fsyncEnabled())
    fsyncDir(fs::path(Path).parent_path());
  return !Torn;
}

//===----------------------------------------------------------------------===//
// Durability envelope.
//===----------------------------------------------------------------------===//

uint64_t islaris::cache::fnv1a64(std::string_view Data) {
  uint64_t H = 14695981039346656037ull;
  for (unsigned char C : Data) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

static constexpr std::string_view EnvelopeMagic = "(islaris-entry ";

std::string islaris::cache::wrapDurableEntry(const std::string &Payload) {
  std::ostringstream OS;
  OS << EnvelopeMagic << DurableFormatVersion << " " << std::hex
     << std::setfill('0') << std::setw(16) << fnv1a64(Payload) << std::dec
     << " " << Payload.size() << ")\n"
     << Payload;
  return OS.str();
}

static bool isDigits(std::string_view S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (C < '0' || C > '9')
      return false;
  return true;
}

EnvelopeResult islaris::cache::unwrapDurableEntry(const std::string &File,
                                                  std::string &Payload) {
  if (File.empty())
    return EnvelopeResult::Empty;
  if (File.compare(0, EnvelopeMagic.size(), EnvelopeMagic) != 0) {
    Payload = File;
    return EnvelopeResult::Legacy;
  }
  size_t NL = File.find('\n');
  if (NL == std::string::npos)
    return EnvelopeResult::Corrupt; // header torn mid-line
  // "<version> <fnv64-hex> <size>)" between the magic and the newline.
  std::string_view Header(File.data() + EnvelopeMagic.size(),
                          NL - EnvelopeMagic.size());
  size_t Sp1 = Header.find(' ');
  if (Sp1 == std::string_view::npos)
    return EnvelopeResult::Corrupt;
  size_t Sp2 = Header.find(' ', Sp1 + 1);
  if (Sp2 == std::string_view::npos || Header.empty() ||
      Header.back() != ')')
    return EnvelopeResult::Corrupt;
  std::string_view Ver = Header.substr(0, Sp1);
  std::string_view Sum = Header.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  std::string_view Size = Header.substr(Sp2 + 1, Header.size() - Sp2 - 2);
  if (!isDigits(Ver))
    return EnvelopeResult::Corrupt;
  if (Ver != std::to_string(DurableFormatVersion))
    return EnvelopeResult::BadVersion; // don't guess at future layouts
  if (Sum.size() != 16 || !isDigits(Size))
    return EnvelopeResult::Corrupt;
  uint64_t WantSum = std::strtoull(std::string(Sum).c_str(), nullptr, 16);
  uint64_t WantSize = std::strtoull(std::string(Size).c_str(), nullptr, 10);
  std::string_view Body(File.data() + NL + 1, File.size() - NL - 1);
  if (Body.size() != WantSize || fnv1a64(Body) != WantSum)
    return EnvelopeResult::Corrupt; // truncated or bit-flipped payload
  Payload.assign(Body);
  return EnvelopeResult::Ok;
}

support::ErrorCode islaris::cache::envelopeErrorCode(EnvelopeResult R) {
  switch (R) {
  case EnvelopeResult::BadVersion:
    return support::ErrorCode::CacheVersionMismatch;
  case EnvelopeResult::Corrupt:
    return support::ErrorCode::ChecksumMismatch;
  case EnvelopeResult::Ok:
  case EnvelopeResult::Legacy:
  case EnvelopeResult::Empty:
    break;
  }
  return support::ErrorCode::CorruptCacheEntry;
}

bool islaris::cache::quarantineFile(const std::string &Dir,
                                    const std::string &Path) {
  std::error_code EC;
  fs::path Dest = fs::path(Dir) / "quarantine" / fs::path(Path).filename();
  fs::create_directories(Dest.parent_path(), EC);
  if (!EC) {
    // rename overwrites an existing corpse of the same name: keeping the
    // latest is enough for post-mortem, and it cannot accumulate unboundedly.
    fs::rename(Path, Dest, EC);
    if (!EC)
      return true;
  }
  fs::remove(Path, EC);
  return !fs::exists(Path, EC);
}

TraceCache::TraceCache(TraceCacheConfig C) : Cfg(std::move(C)) {
  Directory = Cfg.Dir.empty() ? resolveCacheDir() : Cfg.Dir;
  if (Cfg.Persist && Cfg.ScrubOnOpen) {
    // Unclean-shutdown detection: no marker means the previous owner died
    // mid-flight — reap its temps and spot-check envelopes before the
    // first lookup can trip over a torn file.
    QuickScrubReport R = scrubOnOpen(Directory);
    St.CorruptRemoved += R.Quarantined;
    St.Quarantined += R.Quarantined;
    for (support::Diag &D : R.Diags)
      noteDiag(std::move(D));
  }
}

//===----------------------------------------------------------------------===//
// Serialization.
//===----------------------------------------------------------------------===//

CacheEntry TraceCache::encode(const isla::ExecResult &R) {
  assert(R.Ok && "only successful executions are cached");
  CacheEntry E;
  E.TraceText = R.Trace.toString();
  for (const smt::Term *V : R.OpcodeVars)
    E.OpcodeVars.emplace_back(V->varName(), V->width());
  E.Stats = R.Stats;
  return E;
}

bool TraceCache::decode(const CacheEntry &E, smt::TermBuilder &TB,
                        isla::ExecResult &Out, std::string &Err) {
  itl::TraceParser P(TB);
  auto T = P.parseTrace(E.TraceText);
  if (!T) {
    Err = "cached trace does not re-parse (ITL adequacy bug): " + P.error();
    return false;
  }
  Out.Trace = std::move(*T);
  Out.OpcodeVars.clear();
  for (const auto &[Name, Width] : E.OpcodeVars) {
    auto It = P.vars().find(Name);
    if (It != P.vars().end()) {
      Out.OpcodeVars.push_back(It->second);
      continue;
    }
    // Opcode variables are always declared inside the trace; tolerate a
    // missing one (e.g. a hand-written entry) with a fresh stand-in.
    Out.OpcodeVars.push_back(
        TB.freshVar(smt::Sort::bitvec(Width ? Width : 1), Name));
  }
  Out.Stats = E.Stats;
  Out.Error.clear();
  Out.Ok = true;
  return true;
}

std::string TraceCache::serializeEntry(const Fingerprint &K,
                                       const CacheEntry &E) {
  std::ostringstream OS;
  OS << "(islaris-trace-cache 1 " << K.toHex() << " (opcode-vars";
  for (const auto &[Name, Width] : E.OpcodeVars)
    OS << " (|" << Name << "| " << Width << ")";
  OS << ") (stats " << E.Stats.Paths << " " << E.Stats.PrunedBranches << " "
     << E.Stats.SolverQueries << " " << E.Stats.Events << "))\n";
  OS << E.TraceText << "\n";
  return OS.str();
}

static std::string stripBars(const std::string &S) {
  if (S.size() >= 2 && S.front() == '|' && S.back() == '|')
    return S.substr(1, S.size() - 2);
  return S;
}

bool TraceCache::parseEntry(const std::string &Text, const Fingerprint &K,
                            CacheEntry &Out, std::string &Err) {
  itl::SExprParser P(Text);
  auto Header = P.parse();
  if (!Header) {
    Err = "bad cache entry header: " + P.error();
    return false;
  }
  const std::vector<itl::SExpr> &L = Header->List;
  if (Header->isAtom() || L.size() != 5 ||
      L[0].Atom != "islaris-trace-cache" || L[1].Atom != "1") {
    Err = "unrecognized cache entry header/version";
    return false;
  }
  Fingerprint FileKey;
  if (!Fingerprint::fromHex(L[2].Atom, FileKey) || FileKey != K) {
    Err = "cache entry key mismatch";
    return false;
  }
  if (L[3].isAtom() || L[3].List.empty() ||
      L[3].List[0].Atom != "opcode-vars") {
    Err = "bad opcode-vars list";
    return false;
  }
  Out.OpcodeVars.clear();
  for (size_t I = 1; I < L[3].List.size(); ++I) {
    const itl::SExpr &V = L[3].List[I];
    if (V.isAtom() || V.List.size() != 2 || !V.List[0].isAtom() ||
        !V.List[1].isAtom()) {
      Err = "bad opcode-var entry";
      return false;
    }
    // Untrusted number: a checksum-valid but hand-written/fuzzed entry can
    // carry "abc", "-1" or 2^64-scale atoms here; degrade to a parse error
    // (-> miss + quarantine), never a throw or a silent wrap.
    unsigned Width = 0;
    if (!support::parseUnsigned(V.List[1].Atom, 1u << 16, Width)) {
      Err = "bad opcode-var width '" + V.List[1].Atom + "'";
      return false;
    }
    Out.OpcodeVars.emplace_back(stripBars(V.List[0].Atom), Width);
  }
  if (L[4].isAtom() || L[4].List.size() != 5 ||
      L[4].List[0].Atom != "stats") {
    Err = "bad stats list";
    return false;
  }
  unsigned *StatFields[4] = {&Out.Stats.Paths, &Out.Stats.PrunedBranches,
                             &Out.Stats.SolverQueries, &Out.Stats.Events};
  for (size_t I = 0; I < 4; ++I)
    if (!support::parseUnsigned(L[4].List[I + 1].Atom, 0xFFFFFFFFu,
                                *StatFields[I])) {
      Err = "bad stats atom '" + L[4].List[I + 1].Atom + "'";
      return false;
    }

  // The remainder of the file is the trace text, kept verbatim so that a
  // disk round-trip is byte-identical with the in-memory entry.
  size_t Start = P.position();
  while (Start < Text.size() &&
         (Text[Start] == '\n' || Text[Start] == '\r' || Text[Start] == ' ' ||
          Text[Start] == '\t'))
    ++Start;
  size_t End = Text.size();
  while (End > Start && (Text[End - 1] == '\n' || Text[End - 1] == '\r'))
    --End;
  Out.TraceText = Text.substr(Start, End - Start);
  if (Out.TraceText.empty()) {
    Err = "cache entry has no trace";
    return false;
  }
  // Structural torn-write check: the trace text must be one balanced
  // S-expression.  A write cut short mid-entry (crash, full disk) leaves
  // dangling parens; catching it here lets loadFromDisk treat the file as
  // corrupt (miss + self-repair) instead of handing decode() garbage.
  long Depth = 0;
  bool InBars = false;
  for (char Ch : Out.TraceText) {
    if (Ch == '|')
      InBars = !InBars;
    else if (!InBars && Ch == '(')
      ++Depth;
    else if (!InBars && Ch == ')' && --Depth < 0)
      break;
  }
  if (Depth != 0 || InBars) {
    Err = "truncated trace text (torn write?)";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Disk persistence.
//===----------------------------------------------------------------------===//

std::string TraceCache::entryPath(const Fingerprint &K) const {
  // 256-way fan-out on the leading fingerprint byte keeps suite-scale
  // stores (tens of thousands of entries) from piling into one directory.
  std::string Hex = K.toHex();
  return Directory + "/" + Hex.substr(0, 2) + "/" + Hex + ".itc";
}

std::string TraceCache::legacyEntryPath(const Fingerprint &K) const {
  return Directory + "/" + K.toHex() + ".itc";
}

void TraceCache::discardCorrupt(const std::string &Path,
                                support::ErrorCode Code,
                                const std::string &Why) {
  // Treat as a miss AND displace the file: writeToDisk is first-writer-wins,
  // so leaving the corpse in place would shadow every future rewrite of
  // this key.  The corpse moves to dir()/quarantine/ for post-mortem.
  bool Freed = quarantineFile(Directory, Path);
  std::lock_guard<std::mutex> L(Mu);
  if (Freed) {
    ++St.CorruptRemoved;
    ++St.Quarantined;
  }
  if (Diags.size() < 64)
    Diags.push_back(
        support::Diag::error(Code, "cache", Why + ": " + Path));
}

void TraceCache::noteDiag(support::Diag D) {
  std::lock_guard<std::mutex> L(Mu);
  if (Diags.size() < 64)
    Diags.push_back(std::move(D));
}

void TraceCache::noteWriteFailure(const std::string &Path) {
  // Every failed publish counts, whatever the cause — islarisd's degraded-
  // mode detector watches this counter, not the one-time Diag below, which
  // only fires when the directory really is unwritable/uncreatable (a
  // FaultInjector-failed publish into a healthy directory is a different,
  // already-attributed event).
  {
    std::lock_guard<std::mutex> L(Mu);
    ++St.WriteFailures;
    if (WarnedUnwritable)
      return;
  }
  std::string Parent = fs::path(Path).parent_path().string();
  if (::access(Parent.c_str(), W_OK) == 0)
    return;
  std::lock_guard<std::mutex> L(Mu);
  if (WarnedUnwritable)
    return;
  WarnedUnwritable = true;
  if (Diags.size() < 64)
    Diags.push_back(support::Diag::error(
        support::ErrorCode::IoError, "cache",
        "cache directory is not writable, running uncached: " + Directory));
}

std::vector<support::Diag> TraceCache::drainDiags() {
  std::lock_guard<std::mutex> L(Mu);
  std::vector<support::Diag> Out;
  Out.swap(Diags);
  return Out;
}

std::optional<CacheEntry> TraceCache::loadFromDisk(const Fingerprint &K) {
  if (diskDisabled())
    return std::nullopt; // degraded mode: leave the failing device alone
  if (support::FaultInjector::fire(support::FaultSite::CacheRead))
    return std::nullopt; // injected read failure: degrade to a miss
  std::string Path = entryPath(K);
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    // Transparent read-through of stores written before sharding: their
    // entries sit flat at the directory root.
    Path = legacyEntryPath(K);
    In.open(Path, std::ios::binary);
    if (!In)
      return std::nullopt;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  // Verify the durability envelope *before* parsing: a checksum or version
  // mismatch is attributed precisely instead of surfacing as whatever parse
  // error the garbage happens to trigger.
  std::string Payload;
  EnvelopeResult R = unwrapDurableEntry(Buf.str(), Payload);
  switch (R) {
  case EnvelopeResult::Ok:
  case EnvelopeResult::Legacy:
    break;
  case EnvelopeResult::Empty:
    discardCorrupt(Path, envelopeErrorCode(R), "zero-length entry file");
    return std::nullopt;
  case EnvelopeResult::BadVersion:
    discardCorrupt(Path, envelopeErrorCode(R),
                   "entry written by an unknown format version");
    return std::nullopt;
  case EnvelopeResult::Corrupt:
    discardCorrupt(Path, envelopeErrorCode(R),
                   "entry checksum did not verify (torn or corrupt)");
    return std::nullopt;
  }
  CacheEntry E;
  std::string Err;
  if (!parseEntry(Payload, K, E, Err)) {
    discardCorrupt(Path, support::ErrorCode::CorruptCacheEntry, Err);
    return std::nullopt;
  }
  return E;
}

void TraceCache::writeToDisk(const Fingerprint &K, const CacheEntry &E) {
  if (diskDisabled())
    return; // degraded mode: serve from memory, stop hammering the disk
  std::error_code EC;
  std::string Path = entryPath(K);
  fs::create_directories(fs::path(Path).parent_path(), EC);
  if (EC) {
    noteWriteFailure(Path);
    return;
  }
  // Entries are immutable: first writer wins on the sharded path.
  if (fs::exists(Path, EC))
    return;
  std::string Legacy = legacyEntryPath(K);
  bool HadLegacy = fs::exists(Legacy, EC);
  // Write-to-temp + rename keeps concurrent writers from exposing partial
  // files; racing writers produce identical content anyway.
  if (!atomicWriteFile(Path, wrapDurableEntry(serializeEntry(K, E)))) {
    noteWriteFailure(Path);
    return;
  }
  // A publish upgrades any legacy headerless flat-layout twin in place: the
  // new enveloped sharded entry now serves all readers.
  if (HadLegacy) {
    std::error_code EC2;
    fs::remove(Legacy, EC2);
  }
  std::lock_guard<std::mutex> L(Mu);
  ++St.DiskWrites;
}

//===----------------------------------------------------------------------===//
// In-memory LRU map.
//===----------------------------------------------------------------------===//

std::optional<CacheEntry> TraceCache::lookup(const Fingerprint &K) {
  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Map.find(K);
    if (It != Map.end()) {
      Lru.splice(Lru.begin(), Lru, It->second.LruIt);
      ++St.Hits;
      return It->second.Entry;
    }
  }
  if (Cfg.Persist) {
    if (auto E = loadFromDisk(K)) {
      std::lock_guard<std::mutex> L(Mu);
      ++St.DiskHits;
      if (!Map.count(K)) { // promote into memory
        Lru.push_front(K);
        Map.emplace(K, Slot{*E, Lru.begin()});
        while (Map.size() > Cfg.MaxEntries) {
          Map.erase(Lru.back());
          Lru.pop_back();
          ++St.Evictions;
        }
      }
      return E;
    }
  }
  std::lock_guard<std::mutex> L(Mu);
  ++St.Misses;
  return std::nullopt;
}

void TraceCache::insert(const Fingerprint &K, CacheEntry E) {
  bool Fresh = false;
  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Map.find(K);
    if (It != Map.end()) {
      // Entries are immutable by content-addressing; refresh recency only.
      Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    } else {
      Lru.push_front(K);
      Map.emplace(K, Slot{E, Lru.begin()});
      ++St.Insertions;
      Fresh = true;
      while (Map.size() > Cfg.MaxEntries) {
        Map.erase(Lru.back());
        Lru.pop_back();
        ++St.Evictions;
      }
    }
  }
  if (Fresh && Cfg.Persist)
    writeToDisk(K, E);
}

void TraceCache::clearMemory() {
  std::lock_guard<std::mutex> L(Mu);
  Map.clear();
  Lru.clear();
}

size_t TraceCache::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Map.size();
}

CacheStats TraceCache::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return St;
}

//===----------------------------------------------------------------------===//
// Ambient cache.
//===----------------------------------------------------------------------===//

static TraceCache *AmbientCache = nullptr;

TraceCache *islaris::cache::ambientTraceCache() { return AmbientCache; }
void islaris::cache::setAmbientTraceCache(TraceCache *C) {
  AmbientCache = C;
}
