//===- cache/TraceCache.cpp - Content-addressed ITL trace store ---------------===//

#include "cache/TraceCache.h"

#include "itl/Parser.h"
#include "smt/TermBuilder.h"
#include "support/FaultInjector.h"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include <unistd.h>

using namespace islaris;
using namespace islaris::cache;

namespace fs = std::filesystem;

std::string islaris::cache::resolveCacheDir() {
  if (const char *Env = std::getenv("ISLARIS_CACHE_DIR"))
    if (*Env)
      return Env;
  return "build/.trace-cache";
}

bool islaris::cache::atomicWriteFile(const std::string &Path,
                                     const std::string &Content) {
  using support::FaultInjector;
  using support::FaultSite;
  if (FaultInjector::fire(FaultSite::CacheWrite))
    return false; // injected: entry file could not be created/written
  // Injected torn write: only a prefix reaches disk, and the truncated file
  // IS published — the one failure mode rename cannot mask, standing in for
  // a crash mid-write on a filesystem that reorders data and rename.
  bool Torn = FaultInjector::fire(FaultSite::CacheTornWrite);
  std::string_view Payload(Content);
  if (Torn)
    Payload = Payload.substr(0, Payload.size() / 2);
  static std::atomic<uint64_t> Counter{0};
  std::string Tmp = Path + ".tmp." + std::to_string(uint64_t(::getpid())) +
                    "." +
                    std::to_string(
                        Counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out << Payload;
    Out.flush();
    if (!Out) {
      std::error_code EC;
      fs::remove(Tmp, EC);
      return false;
    }
  }
  if (FaultInjector::fire(FaultSite::CacheRename)) {
    std::error_code EC2;
    fs::remove(Tmp, EC2);
    return false; // injected: publish rename failed, temp cleaned up
  }
  std::error_code EC;
  fs::rename(Tmp, Path, EC);
  if (EC) {
    std::error_code EC2;
    fs::remove(Tmp, EC2);
    return false;
  }
  return !Torn;
}

TraceCache::TraceCache(TraceCacheConfig C) : Cfg(std::move(C)) {
  Directory = Cfg.Dir.empty() ? resolveCacheDir() : Cfg.Dir;
}

//===----------------------------------------------------------------------===//
// Serialization.
//===----------------------------------------------------------------------===//

CacheEntry TraceCache::encode(const isla::ExecResult &R) {
  assert(R.Ok && "only successful executions are cached");
  CacheEntry E;
  E.TraceText = R.Trace.toString();
  for (const smt::Term *V : R.OpcodeVars)
    E.OpcodeVars.emplace_back(V->varName(), V->width());
  E.Stats = R.Stats;
  return E;
}

bool TraceCache::decode(const CacheEntry &E, smt::TermBuilder &TB,
                        isla::ExecResult &Out, std::string &Err) {
  itl::TraceParser P(TB);
  auto T = P.parseTrace(E.TraceText);
  if (!T) {
    Err = "cached trace does not re-parse (ITL adequacy bug): " + P.error();
    return false;
  }
  Out.Trace = std::move(*T);
  Out.OpcodeVars.clear();
  for (const auto &[Name, Width] : E.OpcodeVars) {
    auto It = P.vars().find(Name);
    if (It != P.vars().end()) {
      Out.OpcodeVars.push_back(It->second);
      continue;
    }
    // Opcode variables are always declared inside the trace; tolerate a
    // missing one (e.g. a hand-written entry) with a fresh stand-in.
    Out.OpcodeVars.push_back(
        TB.freshVar(smt::Sort::bitvec(Width ? Width : 1), Name));
  }
  Out.Stats = E.Stats;
  Out.Error.clear();
  Out.Ok = true;
  return true;
}

std::string TraceCache::serializeEntry(const Fingerprint &K,
                                       const CacheEntry &E) {
  std::ostringstream OS;
  OS << "(islaris-trace-cache 1 " << K.toHex() << " (opcode-vars";
  for (const auto &[Name, Width] : E.OpcodeVars)
    OS << " (|" << Name << "| " << Width << ")";
  OS << ") (stats " << E.Stats.Paths << " " << E.Stats.PrunedBranches << " "
     << E.Stats.SolverQueries << " " << E.Stats.Events << "))\n";
  OS << E.TraceText << "\n";
  return OS.str();
}

static std::string stripBars(const std::string &S) {
  if (S.size() >= 2 && S.front() == '|' && S.back() == '|')
    return S.substr(1, S.size() - 2);
  return S;
}

bool TraceCache::parseEntry(const std::string &Text, const Fingerprint &K,
                            CacheEntry &Out, std::string &Err) {
  itl::SExprParser P(Text);
  auto Header = P.parse();
  if (!Header) {
    Err = "bad cache entry header: " + P.error();
    return false;
  }
  const std::vector<itl::SExpr> &L = Header->List;
  if (Header->isAtom() || L.size() != 5 ||
      L[0].Atom != "islaris-trace-cache" || L[1].Atom != "1") {
    Err = "unrecognized cache entry header/version";
    return false;
  }
  Fingerprint FileKey;
  if (!Fingerprint::fromHex(L[2].Atom, FileKey) || FileKey != K) {
    Err = "cache entry key mismatch";
    return false;
  }
  if (L[3].isAtom() || L[3].List.empty() ||
      L[3].List[0].Atom != "opcode-vars") {
    Err = "bad opcode-vars list";
    return false;
  }
  Out.OpcodeVars.clear();
  for (size_t I = 1; I < L[3].List.size(); ++I) {
    const itl::SExpr &V = L[3].List[I];
    if (V.isAtom() || V.List.size() != 2 || !V.List[0].isAtom() ||
        !V.List[1].isAtom()) {
      Err = "bad opcode-var entry";
      return false;
    }
    Out.OpcodeVars.emplace_back(stripBars(V.List[0].Atom),
                                unsigned(std::stoul(V.List[1].Atom)));
  }
  if (L[4].isAtom() || L[4].List.size() != 5 ||
      L[4].List[0].Atom != "stats") {
    Err = "bad stats list";
    return false;
  }
  Out.Stats.Paths = unsigned(std::stoul(L[4].List[1].Atom));
  Out.Stats.PrunedBranches = unsigned(std::stoul(L[4].List[2].Atom));
  Out.Stats.SolverQueries = unsigned(std::stoul(L[4].List[3].Atom));
  Out.Stats.Events = unsigned(std::stoul(L[4].List[4].Atom));

  // The remainder of the file is the trace text, kept verbatim so that a
  // disk round-trip is byte-identical with the in-memory entry.
  size_t Start = P.position();
  while (Start < Text.size() &&
         (Text[Start] == '\n' || Text[Start] == '\r' || Text[Start] == ' ' ||
          Text[Start] == '\t'))
    ++Start;
  size_t End = Text.size();
  while (End > Start && (Text[End - 1] == '\n' || Text[End - 1] == '\r'))
    --End;
  Out.TraceText = Text.substr(Start, End - Start);
  if (Out.TraceText.empty()) {
    Err = "cache entry has no trace";
    return false;
  }
  // Structural torn-write check: the trace text must be one balanced
  // S-expression.  A write cut short mid-entry (crash, full disk) leaves
  // dangling parens; catching it here lets loadFromDisk treat the file as
  // corrupt (miss + self-repair) instead of handing decode() garbage.
  long Depth = 0;
  bool InBars = false;
  for (char Ch : Out.TraceText) {
    if (Ch == '|')
      InBars = !InBars;
    else if (!InBars && Ch == '(')
      ++Depth;
    else if (!InBars && Ch == ')' && --Depth < 0)
      break;
  }
  if (Depth != 0 || InBars) {
    Err = "truncated trace text (torn write?)";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Disk persistence.
//===----------------------------------------------------------------------===//

std::string TraceCache::entryPath(const Fingerprint &K) const {
  // 256-way fan-out on the leading fingerprint byte keeps suite-scale
  // stores (tens of thousands of entries) from piling into one directory.
  std::string Hex = K.toHex();
  return Directory + "/" + Hex.substr(0, 2) + "/" + Hex + ".itc";
}

std::string TraceCache::legacyEntryPath(const Fingerprint &K) const {
  return Directory + "/" + K.toHex() + ".itc";
}

std::optional<CacheEntry> TraceCache::loadFromDisk(const Fingerprint &K) {
  if (support::FaultInjector::fire(support::FaultSite::CacheRead))
    return std::nullopt; // injected read failure: degrade to a miss
  std::string Path = entryPath(K);
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    // Transparent read-through of stores written before sharding: their
    // entries sit flat at the directory root.
    Path = legacyEntryPath(K);
    In.open(Path, std::ios::binary);
    if (!In)
      return std::nullopt;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  CacheEntry E;
  std::string Err;
  if (!parseEntry(Buf.str(), K, E, Err)) {
    // Corrupt or stale-format entry: treat as a miss AND delete the file.
    // writeToDisk is first-writer-wins, so leaving the corpse in place
    // would shadow every future rewrite of this key.
    std::error_code EC;
    if (fs::remove(Path, EC)) {
      std::lock_guard<std::mutex> L(Mu);
      ++St.CorruptRemoved;
    }
    return std::nullopt;
  }
  return E;
}

void TraceCache::writeToDisk(const Fingerprint &K, const CacheEntry &E) {
  std::error_code EC;
  std::string Path = entryPath(K);
  fs::create_directories(fs::path(Path).parent_path(), EC);
  if (EC)
    return;
  // Entries are immutable: first writer wins, and an entry already present
  // under the legacy flat layout counts as written.
  if (fs::exists(Path, EC) || fs::exists(legacyEntryPath(K), EC))
    return;
  // Write-to-temp + rename keeps concurrent writers from exposing partial
  // files; racing writers produce identical content anyway.
  if (!atomicWriteFile(Path, serializeEntry(K, E)))
    return;
  std::lock_guard<std::mutex> L(Mu);
  ++St.DiskWrites;
}

//===----------------------------------------------------------------------===//
// In-memory LRU map.
//===----------------------------------------------------------------------===//

std::optional<CacheEntry> TraceCache::lookup(const Fingerprint &K) {
  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Map.find(K);
    if (It != Map.end()) {
      Lru.splice(Lru.begin(), Lru, It->second.LruIt);
      ++St.Hits;
      return It->second.Entry;
    }
  }
  if (Cfg.Persist) {
    if (auto E = loadFromDisk(K)) {
      std::lock_guard<std::mutex> L(Mu);
      ++St.DiskHits;
      if (!Map.count(K)) { // promote into memory
        Lru.push_front(K);
        Map.emplace(K, Slot{*E, Lru.begin()});
        while (Map.size() > Cfg.MaxEntries) {
          Map.erase(Lru.back());
          Lru.pop_back();
          ++St.Evictions;
        }
      }
      return E;
    }
  }
  std::lock_guard<std::mutex> L(Mu);
  ++St.Misses;
  return std::nullopt;
}

void TraceCache::insert(const Fingerprint &K, CacheEntry E) {
  bool Fresh = false;
  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Map.find(K);
    if (It != Map.end()) {
      // Entries are immutable by content-addressing; refresh recency only.
      Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    } else {
      Lru.push_front(K);
      Map.emplace(K, Slot{E, Lru.begin()});
      ++St.Insertions;
      Fresh = true;
      while (Map.size() > Cfg.MaxEntries) {
        Map.erase(Lru.back());
        Lru.pop_back();
        ++St.Evictions;
      }
    }
  }
  if (Fresh && Cfg.Persist)
    writeToDisk(K, E);
}

void TraceCache::clearMemory() {
  std::lock_guard<std::mutex> L(Mu);
  Map.clear();
  Lru.clear();
}

size_t TraceCache::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Map.size();
}

CacheStats TraceCache::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return St;
}

//===----------------------------------------------------------------------===//
// Ambient cache.
//===----------------------------------------------------------------------===//

static TraceCache *AmbientCache = nullptr;

TraceCache *islaris::cache::ambientTraceCache() { return AmbientCache; }
void islaris::cache::setAmbientTraceCache(TraceCache *C) {
  AmbientCache = C;
}
