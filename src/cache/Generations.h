//===- cache/Generations.h - Model-fingerprint store generations -*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generation bookkeeping for the persistent stores.  Store entries are
/// content-addressed under keys that hash the ISA model, so editing a model
/// orphans every entry minted against the old text: still perfectly valid
/// files, never looked up again.  Over months of model iteration a shared
/// store accumulates unbounded garbage no LRU budget can tell apart from
/// hot entries.
///
/// The fix is a per-store generation registry keyed on model fingerprints:
///
///   <dir>/generations.txt           "<model-fp> <seq> <unix-time>" lines
///   <dir>/manifests/<model-fp>.mf   one entry-key hex per line
///
/// Every run *touches* the fingerprint of each model it executes against,
/// bumping it to the newest generation, and every published entry appends
/// its key to the owning model's manifest.  `cachectl gc
/// --keep-generations N` then retires every fingerprint outside the N most
/// recently touched generations and deletes exactly the entries their
/// manifests enumerate.
///
/// All bookkeeping is best-effort by design: a lost manifest line keeps an
/// orphan entry alive (wasted bytes, recomputable), never deletes a live
/// one — gc only ever removes keys explicitly recorded against a retired
/// fingerprint, and evicted entries are re-derived on the next miss.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_CACHE_GENERATIONS_H
#define ISLARIS_CACHE_GENERATIONS_H

#include "cache/Fingerprint.h"
#include "support/Diag.h"

#include <cstdint>
#include <string>
#include <vector>

namespace islaris::cache {

struct GenerationRecord {
  Fingerprint ModelFp;
  uint64_t Seq = 0;         ///< Monotonic per store; highest = newest.
  uint64_t TouchedUnix = 0; ///< Wall clock of the last touch (operator info).
};

/// Reads \p Dir's generation registry, oldest first.  Missing registry or
/// malformed lines degrade to an empty/partial result, never an error.
std::vector<GenerationRecord> readGenerations(const std::string &Dir);

/// Marks \p ModelFp as the newest generation of \p Dir's registry (creating
/// registry and directory as needed).  Memoized per (dir, fingerprint) per
/// process, so hot paths may call it unconditionally.  Thread-safe; cross-
/// process races are last-writer-wins (a lost touch ages a model early,
/// which costs a recomputation, never a wrong result).
void touchGeneration(const std::string &Dir, const Fingerprint &ModelFp);

/// Appends entry \p Key to \p ModelFp's manifest in \p Dir, recording which
/// model the entry was minted against.  Best-effort; failures are silent
/// (the entry merely outlives its generation).
void recordEntryGeneration(const std::string &Dir, const Fingerprint &ModelFp,
                           const Fingerprint &Key);

struct GenerationGcOptions {
  std::string Dir;
  /// Generations to keep, newest first.  Fingerprints outside the newest N
  /// are retired and their manifest entries deleted.
  unsigned KeepGenerations = 2;
  bool DryRun = false;
};

struct GenerationGcReport {
  uint64_t Generations = 0;    ///< Registry rows seen.
  uint64_t Retired = 0;        ///< Model fingerprints retired.
  uint64_t EntriesRemoved = 0; ///< Entry files deleted (or counted, dry-run).
  uint64_t BytesReclaimed = 0;
  std::vector<support::Diag> Diags;
};

/// Retires every generation of \p O.Dir outside the newest
/// O.KeepGenerations: deletes the entries each retired fingerprint's
/// manifest enumerates (sharded and legacy-flat placements, both store
/// extensions), removes the manifest, and rewrites the registry without the
/// retired rows.  Safe on a live store — entries are immutable and
/// recomputable, so the worst interleaving costs a re-execution.
GenerationGcReport gcGenerations(const GenerationGcOptions &O);

} // namespace islaris::cache

#endif // ISLARIS_CACHE_GENERATIONS_H
