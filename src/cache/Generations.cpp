//===- cache/Generations.cpp - Model-fingerprint store generations ------------===//

#include "cache/Generations.h"



#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

using namespace islaris;
using namespace islaris::cache;

namespace fs = std::filesystem;

namespace {

std::string registryPath(const std::string &Dir) {
  return Dir + "/generations.txt";
}

std::string manifestPath(const std::string &Dir, const Fingerprint &ModelFp) {
  return Dir + "/manifests/" + ModelFp.toHex() + ".mf";
}

/// One registry/manifest mutation at a time per process; cross-process
/// races are documented last-writer-wins.
std::mutex &genMutex() {
  static std::mutex Mu;
  return Mu;
}

std::string renderRegistry(const std::vector<GenerationRecord> &Rows) {
  std::ostringstream OS;
  for (const GenerationRecord &R : Rows)
    OS << R.ModelFp.toHex() << " " << R.Seq << " " << R.TouchedUnix << "\n";
  return OS.str();
}

/// Registry writes stay outside the cache-write/cache-rename fault domain
/// (unlike entry publication via atomicWriteFile): the registry is
/// best-effort metadata whose total loss only makes GC keep everything,
/// and injected cache faults must deterministically target entry writes.
/// Plain temp+rename is enough — no fsync, rename still prevents torn
/// reads by concurrent scanners.
bool writeRegistry(const std::string &Path, const std::string &Content) {
  static std::atomic<uint64_t> Counter{0};
  std::string Tmp = Path + ".gen-tmp." + std::to_string(uint64_t(::getpid())) +
                    "." +
                    std::to_string(
                        Counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out << Content;
    if (!Out.flush())
      return false;
  }
  std::error_code EC;
  fs::rename(Tmp, Path, EC);
  if (EC) {
    fs::remove(Tmp, EC);
    return false;
  }
  return true;
}

} // namespace

std::vector<GenerationRecord>
islaris::cache::readGenerations(const std::string &Dir) {
  std::vector<GenerationRecord> Rows;
  std::ifstream In(registryPath(Dir));
  std::string Line;
  while (std::getline(In, Line)) {
    std::istringstream LS(Line);
    std::string FpHex;
    GenerationRecord R;
    if (!(LS >> FpHex >> R.Seq >> R.TouchedUnix))
      continue;
    if (!Fingerprint::fromHex(FpHex, R.ModelFp))
      continue;
    Rows.push_back(R);
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const GenerationRecord &A, const GenerationRecord &B) {
              return A.Seq < B.Seq;
            });
  return Rows;
}

namespace {

/// touchGeneration body; requires genMutex() held.
void touchGenerationLocked(const std::string &Dir,
                           const Fingerprint &ModelFp) {
  // Once per (dir, model) per process: the first insert of a run does the
  // I/O, every later one is a set lookup — plus one stat, so a store
  // wiped and recreated under a live process regains its registry.
  static std::set<std::pair<std::string, Fingerprint>> Touched;
  if (!Touched.emplace(Dir, ModelFp).second &&
      fs::exists(registryPath(Dir)))
    return;

  std::vector<GenerationRecord> Rows = readGenerations(Dir);
  uint64_t MaxSeq = Rows.empty() ? 0 : Rows.back().Seq;
  auto It = std::find_if(Rows.begin(), Rows.end(),
                         [&](const GenerationRecord &R) {
                           return R.ModelFp == ModelFp;
                         });
  uint64_t Now = uint64_t(std::time(nullptr));
  if (It != Rows.end() && It->Seq == MaxSeq && MaxSeq != 0) {
    // Already the newest generation; refresh the timestamp only.
    It->TouchedUnix = Now;
  } else {
    if (It != Rows.end())
      Rows.erase(It);
    Rows.push_back({ModelFp, MaxSeq + 1, Now});
  }
  std::error_code EC;
  fs::create_directories(Dir, EC);
  writeRegistry(registryPath(Dir), renderRegistry(Rows));
}

} // namespace

void islaris::cache::touchGeneration(const std::string &Dir,
                                     const Fingerprint &ModelFp) {
  std::lock_guard<std::mutex> L(genMutex());
  touchGenerationLocked(Dir, ModelFp);
}

void islaris::cache::recordEntryGeneration(const std::string &Dir,
                                           const Fingerprint &ModelFp,
                                           const Fingerprint &Key) {
  std::lock_guard<std::mutex> L(genMutex());
  touchGenerationLocked(Dir, ModelFp);
  std::string Path = manifestPath(Dir, ModelFp);
  std::error_code EC;
  fs::create_directories(fs::path(Path).parent_path(), EC);
  // O_APPEND keeps concurrent same-process writers line-atomic for these
  // short records; no fsync — a lost line only strands a recomputable
  // entry past its generation.
  int Fd = ::open(Path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (Fd < 0)
    return;
  std::string Line = Key.toHex() + "\n";
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t N = ::write(Fd, Line.data() + Off, Line.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    Off += size_t(N);
  }
  ::close(Fd);
}

GenerationGcReport
islaris::cache::gcGenerations(const GenerationGcOptions &O) {
  GenerationGcReport R;
  auto Note = [&R](support::ErrorCode Code, const std::string &Msg) {
    if (R.Diags.size() < 64)
      R.Diags.push_back(support::Diag::error(Code, "generations", Msg));
  };

  std::lock_guard<std::mutex> L(genMutex());
  std::vector<GenerationRecord> Rows = readGenerations(O.Dir);
  R.Generations = Rows.size();
  if (Rows.size() <= O.KeepGenerations)
    return R;

  // Rows are sorted oldest-first; everything before the keep window
  // retires.
  size_t RetireCount = Rows.size() - O.KeepGenerations;
  std::error_code EC;
  for (size_t I = 0; I < RetireCount; ++I) {
    const GenerationRecord &Gen = Rows[I];
    ++R.Retired;
    std::string MPath = manifestPath(O.Dir, Gen.ModelFp);
    std::ifstream In(MPath);
    std::string KeyHex;
    while (std::getline(In, KeyHex)) {
      Fingerprint K;
      if (!Fingerprint::fromHex(KeyHex, K))
        continue;
      // The manifest records bare keys; resolve against both store
      // extensions and both placements (sharded, legacy flat).
      const std::string Shard = KeyHex.substr(0, 2) + "/";
      for (const char *Ext : {".itc", ".scc"}) {
        for (const std::string &Rel : {Shard + KeyHex + Ext, KeyHex + Ext}) {
          fs::path P = fs::path(O.Dir) / Rel;
          uint64_t Size = fs::file_size(P, EC);
          if (EC) {
            EC.clear();
            continue;
          }
          ++R.EntriesRemoved;
          R.BytesReclaimed += Size;
          if (!O.DryRun && !fs::remove(P, EC) && EC)
            Note(support::ErrorCode::IoError,
                 "could not remove retired entry: " + P.string());
        }
      }
    }
    In.close();
    if (!O.DryRun)
      fs::remove(MPath, EC);
  }
  if (!O.DryRun) {
    Rows.erase(Rows.begin(), Rows.begin() + long(RetireCount));
    if (!writeRegistry(registryPath(O.Dir), renderRegistry(Rows)))
      Note(support::ErrorCode::IoError,
           "could not rewrite generation registry: " + registryPath(O.Dir));
  }
  return R;
}
