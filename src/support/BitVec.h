//===- support/BitVec.h - Arbitrary-width bitvectors ----------*- C++ -*-===//
//
// Part of Islaris-CPP, a reproduction of "Islaris: Verification of Machine
// Code Against Authoritative ISA Semantics" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width two's-complement bitvectors of arbitrary width.
///
/// ITL values, SMT constants, register contents, and memory bytes are all
/// bitvectors (Fig. 4 of the paper).  Widths from 1 to BitVec::MaxWidth are
/// supported; all arithmetic wraps modulo 2^width as in SMT-LIB QF_BV.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SUPPORT_BITVEC_H
#define ISLARIS_SUPPORT_BITVEC_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace islaris {

/// An immutable fixed-width bitvector with SMT-LIB QF_BV semantics.
///
/// The value is stored little-endian in 64-bit words; bits above the width
/// are kept zero (canonical form), which makes unsigned comparison and
/// equality plain word comparisons.
class BitVec {
public:
  /// Maximum supported width in bits.  Generous enough for the 128-bit
  /// intermediate additions the Arm model performs (Fig. 3) and for wide
  /// memory values.
  static constexpr unsigned MaxWidth = 4096;

  /// Constructs the 1-bit zero vector.
  BitVec() : BitVec(1, 0) {}

  /// Constructs a \p Width-bit vector holding \p Value (truncated).
  BitVec(unsigned Width, uint64_t Value);

  /// Constructs the \p Width-bit zero vector.
  static BitVec zeros(unsigned Width) { return BitVec(Width, 0); }

  /// Constructs the \p Width-bit all-ones vector.
  static BitVec ones(unsigned Width);

  /// Parses "#x<hex>", "#b<bits>", "0x<hex>", or "0b<bits>" (SMT-LIB and C
  /// style).  The width is the number of digits times 4 (hex) or 1 (binary).
  /// Returns false and leaves \p Out untouched on malformed input.
  static bool fromString(const std::string &Text, BitVec &Out);

  /// Builds a vector from raw little-endian bytes; width is 8 * size.
  static BitVec fromBytes(const std::vector<uint8_t> &Bytes);

  unsigned width() const { return Width; }
  unsigned numWords() const { return (Width + 63) / 64; }

  /// Returns bit \p I (0 = least significant).
  bool bit(unsigned I) const {
    assert(I < Width && "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  bool isZero() const;
  bool isAllOnes() const;
  /// Most significant (sign) bit.
  bool sign() const { return bit(Width - 1); }

  /// Returns the value as a uint64_t.  Requires the value to fit (all bits
  /// above 63 must be zero); asserts otherwise.
  uint64_t toUInt64() const;
  /// True if the value fits in a uint64_t.
  bool fitsUInt64() const;
  /// Returns the low 64 bits regardless of width.
  uint64_t low64() const { return Words[0]; }
  /// Sign-extends the value into an int64_t.  Requires width <= 64.
  int64_t toInt64() const;

  /// Little-endian byte encoding; requires width to be a multiple of 8.
  /// This is enc(b) from Fig. 10.
  std::vector<uint8_t> toBytes() const;

  //===------------------------------------------------------------------===//
  // QF_BV operations.  Binary operations require equal widths.
  //===------------------------------------------------------------------===//

  BitVec add(const BitVec &O) const;
  BitVec sub(const BitVec &O) const;
  BitVec neg() const;
  BitVec mul(const BitVec &O) const;
  /// SMT-LIB bvudiv: division by zero yields all-ones.
  BitVec udiv(const BitVec &O) const;
  /// SMT-LIB bvurem: remainder by zero yields the dividend.
  BitVec urem(const BitVec &O) const;
  BitVec sdiv(const BitVec &O) const;
  BitVec srem(const BitVec &O) const;

  BitVec bvand(const BitVec &O) const;
  BitVec bvor(const BitVec &O) const;
  BitVec bvxor(const BitVec &O) const;
  BitVec bvnot() const;

  /// Logical shifts; the shift amount is the *value* of \p O (saturating:
  /// shifting by >= width yields zero, or sign-fill for ashr).
  BitVec shl(const BitVec &O) const;
  BitVec lshr(const BitVec &O) const;
  BitVec ashr(const BitVec &O) const;
  BitVec shl(unsigned Amount) const;
  BitVec lshr(unsigned Amount) const;
  BitVec ashr(unsigned Amount) const;

  /// SMT-LIB (_ extract Hi Lo): bits Lo..Hi inclusive, width Hi-Lo+1.
  BitVec extract(unsigned Hi, unsigned Lo) const;
  /// SMT-LIB concat: *this forms the high bits, \p Low the low bits.
  BitVec concat(const BitVec &Low) const;
  /// Zero-extends by \p Extra additional bits.
  BitVec zext(unsigned Extra) const;
  /// Sign-extends by \p Extra additional bits.
  BitVec sext(unsigned Extra) const;
  /// Zero-extends or truncates to exactly \p NewWidth bits.
  BitVec zextTo(unsigned NewWidth) const;

  /// Replaces bits Lo..Lo+V.width()-1 with \p V.
  BitVec insertSlice(unsigned Lo, const BitVec &V) const;

  /// Reverses the order of all bits (the Arm rbit instruction).
  BitVec reverseBits() const;

  bool eq(const BitVec &O) const;
  bool ult(const BitVec &O) const;
  bool ule(const BitVec &O) const { return !O.ult(*this); }
  bool slt(const BitVec &O) const;
  bool sle(const BitVec &O) const { return !O.slt(*this); }

  bool operator==(const BitVec &O) const { return eq(O); }
  bool operator!=(const BitVec &O) const { return !eq(O); }

  /// SMT-LIB rendering: "#b..." for widths not divisible by 4, else "#x...".
  std::string toString() const;
  /// Hex rendering "0x..." regardless of width.
  std::string toHexString() const;

  /// Hash suitable for unordered containers.
  size_t hash() const;

private:
  explicit BitVec(unsigned Width) : Width(Width), Words((Width + 63) / 64) {
    assert(Width >= 1 && Width <= MaxWidth && "unsupported bitvector width");
  }

  /// Zeroes any bits above the width (restores canonical form).
  void clearUnusedBits();

  unsigned Width;
  std::vector<uint64_t> Words;
};

} // namespace islaris

#endif // ISLARIS_SUPPORT_BITVEC_H
