//===- support/Diag.h - Structured pipeline diagnostics ---------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured failure channel of the verification pipeline.  A Diag
/// carries an error code, the pipeline stage that produced it, a severity,
/// and a human-readable message, so a failing case study can report *what*
/// went wrong and *where* — in Release builds too — instead of vanishing
/// into an `assert()` or a bare string.
///
/// Policy (see DESIGN.md "Error handling and fault tolerance"): anything
/// reachable from input data — objdump text, ITL trace text, cache files,
/// model content, solver verdicts, resource exhaustion — must fail by
/// returning a Diag-carrying result.  Plain `assert()` remains only for
/// invariants of locally constructed data structures (API misuse by the
/// programmer), and even those must degrade to a defined value rather than
/// undefined behavior when NDEBUG compiles them out.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SUPPORT_DIAG_H
#define ISLARIS_SUPPORT_DIAG_H

#include <string>

namespace islaris::support {

/// Machine-readable failure class.  Codes distinguish *proof* failures (the
/// spec does not hold / cannot be shown to hold) from *infrastructure*
/// errors (resource exhaustion, I/O, injected faults, crashes), so suite
/// aggregation can report pass/fail/error separately.
enum class ErrorCode : unsigned {
  Ok = 0,

  // Input-shaped failures (frontend / parsers / caches).
  MalformedObjdump,   ///< objdump text did not parse.
  MalformedTrace,     ///< ITL trace text did not parse.
  CorruptCacheEntry,  ///< persistent cache entry failed validation.
  ChecksumMismatch,   ///< store entry's payload checksum did not verify.
  CacheVersionMismatch, ///< store entry written by an unknown format version.
  OverlappingCode,    ///< addCode over an already-populated address.
  UnknownSymbol,      ///< symbol lookup in an image that lacks it.
  UnknownRegister,    ///< constraint or access on an undeclared register.

  // Semantic failures (the model or the proof).
  ModelError,         ///< reachable model exception / failed model assert.
  ProofFailed,        ///< a proof obligation is false or not provable.
  SpecError,          ///< ill-formed specification (e.g. open registered spec).

  // Resource-guard failures.
  PathBudgetExceeded,   ///< executor exceeded ExecOptions::MaxPaths.
  InstrBudgetExhausted, ///< engine exceeded MaxInstrsPerPath.
  DeadlineExceeded,     ///< a wall-clock deadline fired.
  SolverBudgetExceeded, ///< SAT conflict/propagation/time budget fired.
  Cancelled,            ///< a cooperative cancellation token fired.
  JobTimeout,           ///< batch driver timed out a wedged job.

  // Infrastructure errors.
  JobException,  ///< an exception escaped a pipeline job.
  IoError,       ///< file I/O failed.
  InjectedFault, ///< a FaultInjector site fired (chaos testing).
  Internal,      ///< violated internal invariant (was an assert).
};

/// Stable identifier for an ErrorCode ("path-budget-exceeded", ...).
const char *errorCodeName(ErrorCode C);

enum class Severity : unsigned { Note, Warning, Error, Fatal };

const char *severityName(Severity S);

/// One structured diagnostic.  Default-constructed Diags are Ok (empty).
struct Diag {
  ErrorCode Code = ErrorCode::Ok;
  Severity Sev = Severity::Error;
  /// Pipeline stage that produced the failure ("executor", "proof-engine",
  /// "verifier", "batch-driver", "smt", "cache", "frontend", "suite").
  std::string Stage;
  std::string Message;

  Diag() = default;
  Diag(ErrorCode Code, std::string Stage, std::string Message,
       Severity Sev = Severity::Error)
      : Code(Code), Sev(Sev), Stage(std::move(Stage)),
        Message(std::move(Message)) {}

  bool ok() const { return Code == ErrorCode::Ok; }
  explicit operator bool() const { return !ok(); }

  /// "error[path-budget-exceeded] executor: ..." — the canonical rendering
  /// used in aggregated suite reports.
  std::string render() const;

  static Diag error(ErrorCode Code, std::string Stage, std::string Message) {
    return Diag(Code, std::move(Stage), std::move(Message));
  }
  static Diag fatal(ErrorCode Code, std::string Stage, std::string Message) {
    return Diag(Code, std::move(Stage), std::move(Message), Severity::Fatal);
  }
};

/// True if a failure with this code is worth re-running: transient
/// infrastructure trouble (timeouts, cancellations, I/O, injected faults,
/// escaped exceptions) rather than a deterministic proof/model failure.
/// Used by the batch driver's bounded-retry loop.
bool isRetryable(ErrorCode C);

/// True if the code describes an infrastructure *error* as opposed to a
/// verification *failure*; suite aggregation counts the two separately.
bool isInfrastructureError(ErrorCode C);

} // namespace islaris::support

#endif // ISLARIS_SUPPORT_DIAG_H
