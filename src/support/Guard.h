//===- support/Guard.h - Cancellation tokens and resource limits -*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource-guard primitives of the fault-tolerant pipeline:
///
///  - CancelToken: a shared cooperative cancellation flag.  Producers (the
///    batch driver's watchdog, a suite harness) request cancellation; long-
///    running consumers (the symbolic executor's statement loop, the proof
///    engine's event loop, the SAT core) poll it at cheap points and fail
///    their current unit of work with ErrorCode::Cancelled.
///
///  - RunLimits: the knob bundle SuiteOptions exposes — per-query solver
///    budgets, per-instruction trace-generation deadlines, and batch-driver
///    job timeouts — installed ambiently for a run the same way the ambient
///    trace cache is (set before spawning workers, restored after).
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SUPPORT_GUARD_H
#define ISLARIS_SUPPORT_GUARD_H

#include <atomic>
#include <cstdint>
#include <memory>

namespace islaris::support {

/// A shared cooperative cancellation flag.  Copies alias the same flag; a
/// default-constructed token is inert (never cancelled, cannot cancel).
class CancelToken {
public:
  CancelToken() = default;

  /// A fresh, uncancelled token.
  static CancelToken create() {
    CancelToken T;
    T.Flag = std::make_shared<std::atomic<bool>>(false);
    return T;
  }

  bool valid() const { return Flag != nullptr; }

  void requestCancel() const {
    if (Flag)
      Flag->store(true, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return Flag && Flag->load(std::memory_order_relaxed);
  }

  /// Raw flag for the hottest polling loops (null when inert).
  const std::atomic<bool> *raw() const { return Flag.get(); }

private:
  std::shared_ptr<std::atomic<bool>> Flag;
};

/// Hard resource guards for one verification run.  Zero always means
/// "unlimited" — the default pipeline behaves exactly as before.
struct RunLimits {
  /// Per-check() wall-clock deadline inside smt::Solver (seconds).
  double SolverCheckSeconds = 0;
  /// Per-check() SAT conflict budget.
  uint64_t SolverConflicts = 0;
  /// Per-check() SAT propagation budget.
  uint64_t SolverPropagations = 0;
  /// Per-instruction trace-generation deadline (one Executor::run call).
  double InstrSeconds = 0;
  /// Batch-driver per-job wall clock; past it the watchdog cancels the job.
  double JobTimeoutSeconds = 0;
  /// Bounded retries for retryable job failures before quarantine.
  unsigned JobRetries = 1;
};

/// The process-wide ambient limits consulted by newly constructed Verifiers
/// (all-zero by default: guards are opt-in).  Same contract as
/// cache::ambientTraceCache: set before spawning concurrent case studies;
/// the value itself is not synchronized.
RunLimits ambientRunLimits();
void setAmbientRunLimits(const RunLimits &L);

} // namespace islaris::support

#endif // ISLARIS_SUPPORT_GUARD_H
