//===- support/BitVec.cpp - Arbitrary-width bitvectors --------------------===//

#include "support/BitVec.h"

#include <algorithm>

using namespace islaris;

BitVec::BitVec(unsigned Width, uint64_t Value) : BitVec(Width) {
  Words[0] = Value;
  clearUnusedBits();
}

BitVec BitVec::ones(unsigned Width) {
  BitVec R(Width);
  for (uint64_t &W : R.Words)
    W = ~uint64_t(0);
  R.clearUnusedBits();
  return R;
}

void BitVec::clearUnusedBits() {
  unsigned Rem = Width % 64;
  if (Rem != 0)
    Words.back() &= (~uint64_t(0)) >> (64 - Rem);
}

bool BitVec::fromString(const std::string &Text, BitVec &Out) {
  if (Text.size() < 3)
    return false;
  unsigned DigitBits;
  if (Text[0] == '#' || Text[0] == '0') {
    char Kind = Text[1];
    if (Kind == 'x' || Kind == 'X')
      DigitBits = 4;
    else if (Kind == 'b' || Kind == 'B')
      DigitBits = 1;
    else
      return false;
  } else {
    return false;
  }
  std::string Digits = Text.substr(2);
  if (Digits.empty())
    return false;
  unsigned Width = Digits.size() * DigitBits;
  if (Width > MaxWidth)
    return false;
  BitVec R(Width);
  unsigned Pos = Width;
  for (char C : Digits) {
    unsigned V;
    if (C >= '0' && C <= '9')
      V = C - '0';
    else if (C >= 'a' && C <= 'f')
      V = C - 'a' + 10;
    else if (C >= 'A' && C <= 'F')
      V = C - 'A' + 10;
    else
      return false;
    if (DigitBits == 1 && V > 1)
      return false;
    Pos -= DigitBits;
    R.Words[Pos / 64] |= uint64_t(V) << (Pos % 64);
    // A hex digit can straddle a word boundary.
    if (DigitBits == 4 && Pos % 64 > 60 && Pos / 64 + 1 < R.Words.size())
      R.Words[Pos / 64 + 1] |= uint64_t(V) >> (64 - Pos % 64);
  }
  R.clearUnusedBits();
  Out = R;
  return true;
}

BitVec BitVec::fromBytes(const std::vector<uint8_t> &Bytes) {
  assert(!Bytes.empty() && "cannot build an empty bitvector");
  BitVec R(unsigned(Bytes.size() * 8));
  for (size_t I = 0; I < Bytes.size(); ++I)
    R.Words[I / 8] |= uint64_t(Bytes[I]) << ((I % 8) * 8);
  return R;
}

bool BitVec::isZero() const {
  return std::all_of(Words.begin(), Words.end(),
                     [](uint64_t W) { return W == 0; });
}

bool BitVec::isAllOnes() const { return eq(ones(Width)); }

bool BitVec::fitsUInt64() const {
  for (size_t I = 1; I < Words.size(); ++I)
    if (Words[I] != 0)
      return false;
  return true;
}

uint64_t BitVec::toUInt64() const {
  assert(fitsUInt64() && "value does not fit in 64 bits");
  return Words[0];
}

int64_t BitVec::toInt64() const {
  assert(Width <= 64 && "toInt64 requires width <= 64");
  uint64_t V = Words[0];
  if (Width < 64 && sign())
    V |= (~uint64_t(0)) << Width;
  return int64_t(V);
}

std::vector<uint8_t> BitVec::toBytes() const {
  assert(Width % 8 == 0 && "byte encoding requires a multiple-of-8 width");
  std::vector<uint8_t> Bytes(Width / 8);
  for (size_t I = 0; I < Bytes.size(); ++I)
    Bytes[I] = uint8_t(Words[I / 8] >> ((I % 8) * 8));
  return Bytes;
}

BitVec BitVec::add(const BitVec &O) const {
  assert(Width == O.Width && "width mismatch");
  BitVec R(Width);
  uint64_t Carry = 0;
  for (size_t I = 0; I < Words.size(); ++I) {
    uint64_t A = Words[I], B = O.Words[I];
    uint64_t S = A + B;
    uint64_t C1 = S < A;
    uint64_t S2 = S + Carry;
    uint64_t C2 = S2 < S;
    R.Words[I] = S2;
    Carry = C1 | C2;
  }
  R.clearUnusedBits();
  return R;
}

BitVec BitVec::sub(const BitVec &O) const { return add(O.neg()); }

BitVec BitVec::neg() const { return bvnot().add(BitVec(Width, 1)); }

BitVec BitVec::mul(const BitVec &O) const {
  assert(Width == O.Width && "width mismatch");
  BitVec R(Width);
  // Schoolbook multiplication over 32-bit halves to keep carries in 64 bits.
  size_t NHalves = Words.size() * 2;
  auto half = [](const std::vector<uint64_t> &W, size_t I) -> uint64_t {
    uint64_t Word = W[I / 2];
    return (I % 2) ? (Word >> 32) : (Word & 0xffffffffu);
  };
  std::vector<uint64_t> Acc(NHalves, 0);
  for (size_t I = 0; I < NHalves; ++I) {
    uint64_t Carry = 0;
    uint64_t A = half(Words, I);
    if (A == 0)
      continue;
    for (size_t J = 0; I + J < NHalves; ++J) {
      uint64_t Prod = A * half(O.Words, J) + Acc[I + J] + Carry;
      Acc[I + J] = Prod & 0xffffffffu;
      Carry = Prod >> 32;
    }
  }
  for (size_t I = 0; I < Words.size(); ++I)
    R.Words[I] = Acc[2 * I] | (Acc[2 * I + 1] << 32);
  R.clearUnusedBits();
  return R;
}

BitVec BitVec::udiv(const BitVec &O) const {
  assert(Width == O.Width && "width mismatch");
  if (O.isZero())
    return ones(Width); // SMT-LIB convention.
  // Long division bit by bit; widths here are small, so this is fine.
  BitVec Quot(Width);
  BitVec Rem(Width);
  for (unsigned I = Width; I-- > 0;) {
    Rem = Rem.shl(1);
    if (bit(I))
      Rem.Words[0] |= 1;
    if (!Rem.ult(O)) {
      Rem = Rem.sub(O);
      Quot.Words[I / 64] |= uint64_t(1) << (I % 64);
    }
  }
  return Quot;
}

BitVec BitVec::urem(const BitVec &O) const {
  if (O.isZero())
    return *this; // SMT-LIB convention.
  return sub(udiv(O).mul(O));
}

BitVec BitVec::sdiv(const BitVec &O) const {
  // SMT-LIB bvsdiv: truncating signed division.
  bool NegA = sign(), NegB = O.sign();
  BitVec A = NegA ? neg() : *this;
  BitVec B = NegB ? O.neg() : O;
  if (O.isZero())
    return NegA ? BitVec(Width, 1) : ones(Width);
  BitVec Q = A.udiv(B);
  return (NegA != NegB) ? Q.neg() : Q;
}

BitVec BitVec::srem(const BitVec &O) const {
  if (O.isZero())
    return *this;
  bool NegA = sign();
  BitVec A = NegA ? neg() : *this;
  BitVec B = O.sign() ? O.neg() : O;
  BitVec R = A.urem(B);
  return NegA ? R.neg() : R;
}

BitVec BitVec::bvand(const BitVec &O) const {
  assert(Width == O.Width && "width mismatch");
  BitVec R(Width);
  for (size_t I = 0; I < Words.size(); ++I)
    R.Words[I] = Words[I] & O.Words[I];
  return R;
}

BitVec BitVec::bvor(const BitVec &O) const {
  assert(Width == O.Width && "width mismatch");
  BitVec R(Width);
  for (size_t I = 0; I < Words.size(); ++I)
    R.Words[I] = Words[I] | O.Words[I];
  return R;
}

BitVec BitVec::bvxor(const BitVec &O) const {
  assert(Width == O.Width && "width mismatch");
  BitVec R(Width);
  for (size_t I = 0; I < Words.size(); ++I)
    R.Words[I] = Words[I] ^ O.Words[I];
  return R;
}

BitVec BitVec::bvnot() const {
  BitVec R(Width);
  for (size_t I = 0; I < Words.size(); ++I)
    R.Words[I] = ~Words[I];
  R.clearUnusedBits();
  return R;
}

BitVec BitVec::shl(unsigned Amount) const {
  if (Amount >= Width)
    return zeros(Width);
  BitVec R(Width);
  unsigned WordShift = Amount / 64, BitShift = Amount % 64;
  for (size_t I = Words.size(); I-- > WordShift;) {
    uint64_t V = Words[I - WordShift] << BitShift;
    if (BitShift != 0 && I > WordShift)
      V |= Words[I - WordShift - 1] >> (64 - BitShift);
    R.Words[I] = V;
  }
  R.clearUnusedBits();
  return R;
}

BitVec BitVec::lshr(unsigned Amount) const {
  if (Amount >= Width)
    return zeros(Width);
  BitVec R(Width);
  unsigned WordShift = Amount / 64, BitShift = Amount % 64;
  for (size_t I = 0; I + WordShift < Words.size(); ++I) {
    uint64_t V = Words[I + WordShift] >> BitShift;
    if (BitShift != 0 && I + WordShift + 1 < Words.size())
      V |= Words[I + WordShift + 1] << (64 - BitShift);
    R.Words[I] = V;
  }
  return R;
}

BitVec BitVec::ashr(unsigned Amount) const {
  bool Neg = sign();
  if (Amount >= Width)
    return Neg ? ones(Width) : zeros(Width);
  BitVec R = lshr(Amount);
  if (Neg) {
    // Fill the vacated high bits with ones.
    for (unsigned I = Width - Amount; I < Width; ++I)
      R.Words[I / 64] |= uint64_t(1) << (I % 64);
  }
  return R;
}

static unsigned shiftAmountOf(const BitVec &O, unsigned Width) {
  // Any amount >= width saturates, so clamping to Width is exact.
  for (unsigned I = 64; I < O.width(); ++I)
    if (O.bit(I))
      return Width;
  uint64_t Low = O.low64();
  return Low >= Width ? Width : unsigned(Low);
}

BitVec BitVec::shl(const BitVec &O) const {
  return shl(shiftAmountOf(O, Width));
}
BitVec BitVec::lshr(const BitVec &O) const {
  return lshr(shiftAmountOf(O, Width));
}
BitVec BitVec::ashr(const BitVec &O) const {
  return ashr(shiftAmountOf(O, Width));
}

BitVec BitVec::extract(unsigned Hi, unsigned Lo) const {
  assert(Lo <= Hi && Hi < Width && "bad extract range");
  BitVec Shifted = lshr(Lo);
  BitVec R(Hi - Lo + 1);
  for (size_t I = 0; I < R.Words.size(); ++I)
    R.Words[I] = Shifted.Words[I];
  R.clearUnusedBits();
  return R;
}

BitVec BitVec::concat(const BitVec &Low) const {
  BitVec R(Width + Low.Width);
  for (size_t I = 0; I < Low.Words.size(); ++I)
    R.Words[I] = Low.Words[I];
  // OR in the high part shifted by Low.Width.
  BitVec Hi = zextTo(R.Width).shl(Low.Width);
  for (size_t I = 0; I < R.Words.size(); ++I)
    R.Words[I] |= Hi.Words[I];
  return R;
}

BitVec BitVec::zext(unsigned Extra) const { return zextTo(Width + Extra); }

BitVec BitVec::sext(unsigned Extra) const {
  unsigned NewWidth = Width + Extra;
  BitVec R = zextTo(NewWidth);
  if (sign())
    for (unsigned I = Width; I < NewWidth; ++I)
      R.Words[I / 64] |= uint64_t(1) << (I % 64);
  return R;
}

BitVec BitVec::zextTo(unsigned NewWidth) const {
  if (NewWidth < Width)
    return extract(NewWidth - 1, 0);
  BitVec R(NewWidth);
  for (size_t I = 0; I < Words.size(); ++I)
    R.Words[I] = Words[I];
  return R;
}

BitVec BitVec::insertSlice(unsigned Lo, const BitVec &V) const {
  assert(Lo + V.Width <= Width && "slice out of range");
  BitVec R = *this;
  for (unsigned I = 0; I < V.Width; ++I) {
    unsigned Pos = Lo + I;
    uint64_t Mask = uint64_t(1) << (Pos % 64);
    if (V.bit(I))
      R.Words[Pos / 64] |= Mask;
    else
      R.Words[Pos / 64] &= ~Mask;
  }
  return R;
}

BitVec BitVec::reverseBits() const {
  BitVec R(Width);
  for (unsigned I = 0; I < Width; ++I)
    if (bit(I))
      R.Words[(Width - 1 - I) / 64] |= uint64_t(1) << ((Width - 1 - I) % 64);
  return R;
}

bool BitVec::eq(const BitVec &O) const {
  return Width == O.Width && Words == O.Words;
}

bool BitVec::ult(const BitVec &O) const {
  assert(Width == O.Width && "width mismatch");
  for (size_t I = Words.size(); I-- > 0;) {
    if (Words[I] != O.Words[I])
      return Words[I] < O.Words[I];
  }
  return false;
}

bool BitVec::slt(const BitVec &O) const {
  bool SA = sign(), SB = O.sign();
  if (SA != SB)
    return SA;
  return ult(O);
}

std::string BitVec::toString() const {
  if (Width % 4 != 0) {
    std::string S = "#b";
    for (unsigned I = Width; I-- > 0;)
      S += bit(I) ? '1' : '0';
    return S;
  }
  static const char *Hex = "0123456789abcdef";
  std::string S = "#x";
  for (unsigned I = Width; I >= 4; I -= 4) {
    unsigned Nibble = 0;
    for (unsigned B = 0; B < 4; ++B)
      if (bit(I - 4 + B))
        Nibble |= 1u << B;
    S += Hex[Nibble];
  }
  return S;
}

std::string BitVec::toHexString() const {
  static const char *Hex = "0123456789abcdef";
  std::string S;
  unsigned NumNibbles = (Width + 3) / 4;
  for (unsigned N = NumNibbles; N-- > 0;) {
    unsigned Nibble = 0;
    for (unsigned B = 0; B < 4; ++B) {
      unsigned Pos = N * 4 + B;
      if (Pos < Width && bit(Pos))
        Nibble |= 1u << B;
    }
    S += Hex[Nibble];
  }
  return "0x" + S;
}

size_t BitVec::hash() const {
  size_t H = std::hash<unsigned>()(Width);
  for (uint64_t W : Words)
    H = H * 1099511628211ULL + std::hash<uint64_t>()(W);
  return H;
}
