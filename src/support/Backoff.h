//===- support/Backoff.h - Capped exponential retry backoff -----*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retry-pacing policy shared by the islarisd client, the CLI, and the
/// benchmarks: capped exponential backoff with *deterministic* seeded
/// jitter, in the same spirit as the FaultInjector — a run with a fixed
/// seed retries at exactly the same instants every time, so a flaky
/// network test is reproducible from its logged seed.
///
/// The delay for attempt k (0-based) is
///
///   min(Cap, Base * 2^k) * jitter,   jitter in [1/2, 1)
///
/// the classic "equal jitter" shape: enough spread to de-synchronize a
/// fleet of clients retrying the same shed, never less than half the
/// nominal delay so pressure provably decays.  A server-supplied
/// retry-after hint overrides the computed delay when it is larger —
/// the server knows its own queue better than the client's exponent does.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SUPPORT_BACKOFF_H
#define ISLARIS_SUPPORT_BACKOFF_H

#include <cstdint>

namespace islaris::support {

class Backoff {
public:
  /// \p BaseSeconds first-retry delay, \p CapSeconds ceiling on the
  /// exponential, \p Seed for the jitter stream.
  Backoff(double BaseSeconds, double CapSeconds, uint64_t Seed)
      : Base(BaseSeconds), Cap(CapSeconds), State(Seed ? Seed : 1) {}

  /// The delay (seconds) to sleep before the next attempt; advances the
  /// attempt counter and the jitter stream.
  double next();

  /// next(), but honoring a server retry-after hint: the result is at
  /// least \p RetryAfterSeconds (the hint still consumes the attempt, so
  /// repeated sheds keep escalating).
  double next(double RetryAfterSeconds);

  /// Restarts the exponent (a success ends the incident); the jitter
  /// stream keeps advancing so later incidents see fresh jitter.
  void reset() { Attempt = 0; }

  unsigned attempt() const { return Attempt; }

private:
  double Base, Cap;
  uint64_t State;
  unsigned Attempt = 0;

  /// splitmix64: the same tiny deterministic generator the FaultInjector
  /// family uses; uniform in [0, 1).
  double nextUnit();
};

} // namespace islaris::support

#endif // ISLARIS_SUPPORT_BACKOFF_H
