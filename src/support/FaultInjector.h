//===- support/FaultInjector.h - Deterministic fault injection --*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seeded fault-injection layer for chaos-testing the
/// pipeline.  Hook points are compiled in permanently but cost one branch on
/// a null pointer when no injector is active, so production behavior is
/// untouched.  Sites:
///
///   cache-read        persistent cache entry reads fail (degrade to miss)
///   cache-write       entry file creation/write fails (entry not published)
///   cache-rename      the atomic publish rename fails (temp cleaned up)
///   cache-torn-write  only a prefix of the entry reaches disk, then IS
///                     published — readers must detect the corruption
///   solver-unknown    smt::Solver::check returns a spurious Unknown
///   exec-step         the symbolic executor fails the current run with an
///                     attributed injected-fault Diag (retryable)
///   exec-throw        the symbolic executor throws, exercising the batch
///                     driver's per-job exception containment
///   crash-publish     the process exits hard (std::_Exit) inside a store
///                     publish — after the temp file is written, before or
///                     after the rename — standing in for a crash/power cut
///                     mid-write.  Only meaningful under the crash-storm
///                     child harness; never enable it in-process.
///   crash-journal     the process exits hard inside a run-journal append,
///                     leaving a torn tail record the resume path must
///                     detect and truncate away.
///   disk-full         every store publish fails as if the device were
///                     full (ENOSPC at atomicWriteFile), persisting until
///                     the injector is disarmed — the shape islarisd's
///                     cache-off degraded mode and its self-heal probe are
///                     tested against.
///
/// Decisions are a pure function of (seed, site, per-site probe counter), so
/// a run with a fixed seed and thread-free scheduling is exactly
/// reproducible, and per-site fault counts are reproducible even under a
/// thread pool.  Configure programmatically (SuiteOptions::Faults) or from
/// the environment:
///
///   ISLARIS_FAULT_SEED=42
///   ISLARIS_FAULTS="cache-read=0.2,solver-unknown=0.01,exec-throw=first:3"
///
/// where `site=p` injects with probability p, `site=first:n` fails exactly
/// the first n probes of that site (the deterministic shape the retry tests
/// use), and `site=at:k` fails exactly the probe with zero-based index k
/// (the shape the crash-storm harness uses to pick one abort point per
/// run).
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SUPPORT_FAULTINJECTOR_H
#define ISLARIS_SUPPORT_FAULTINJECTOR_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace islaris::support {

enum class FaultSite : unsigned {
  CacheRead,
  CacheWrite,
  CacheRename,
  CacheTornWrite,
  SolverUnknown,
  ExecStep,
  ExecThrow,
  CrashPublish,
  CrashJournal,
  DiskFull,
};
inline constexpr unsigned NumFaultSites = 10;

/// Stable site name ("cache-read", ...); the ISLARIS_FAULTS syntax.
const char *faultSiteName(FaultSite S);

class FaultInjector {
public:
  explicit FaultInjector(uint64_t Seed = 0);

  /// Injects at \p S with probability \p P in [0, 1].
  void setRate(FaultSite S, double P);

  /// Fails exactly the first \p N probes of \p S, then none (overrides any
  /// rate for those probes; later probes fall back to the rate).
  void failFirst(FaultSite S, uint64_t N);

  /// Fails exactly the probe with zero-based index \p N of \p S and no
  /// other.  The crash-storm harness uses this to abort the process at one
  /// seeded point per run.
  void failAt(FaultSite S, uint64_t N);

  /// One probe of \p S: returns true when the fault fires.  Thread-safe;
  /// advances the per-site counter either way.
  bool shouldFail(FaultSite S);

  /// Per-site observability for chaos-test assertions.
  uint64_t probes(FaultSite S) const;
  uint64_t injected(FaultSite S) const;

  uint64_t seed() const { return Seed; }

  //===------------------------------------------------------------------===//
  // Process-wide activation (same ambient contract as the caches: install
  // before spawning workers, restore after; the pointer is unsynchronized).
  //===------------------------------------------------------------------===//

  static FaultInjector *active();
  static void setActive(FaultInjector *F);

  /// The one-branch hook the pipeline calls: false when no injector is
  /// active or the site does not fire.
  static bool fire(FaultSite S) {
    FaultInjector *F = active();
    return F && F->shouldFail(S);
  }

  /// Builds an injector from ISLARIS_FAULT_SEED / ISLARIS_FAULTS; null when
  /// ISLARIS_FAULTS is unset or empty.  Malformed entries are ignored.
  static std::unique_ptr<FaultInjector> fromEnv();

private:
  struct SiteState {
    double Rate = 0;
    uint64_t FailFirst = 0;
    uint64_t FailAt = UINT64_MAX; ///< UINT64_MAX = no exact-probe fault.
    uint64_t Probes = 0;
    uint64_t Injected = 0;
  };

  uint64_t Seed;
  mutable std::mutex Mu;
  SiteState Sites[NumFaultSites];
};

} // namespace islaris::support

#endif // ISLARIS_SUPPORT_FAULTINJECTOR_H
