//===- support/Wire.h - Shared field-level wire codec -----------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The field-level codec shared by the run-journal CaseResult rows and the
/// islarisd wire protocol.  Values are space-separated tokens; strings are
/// length-prefixed ("<len>:<bytes>") so embedded spaces, parens and newlines
/// survive; doubles travel as hexfloats so a decoded value is bit-for-bit
/// the encoded one, not a decimal approximation.
///
/// Decoding is fail-soft: any malformed field trips Cursor::Fail and every
/// later read degrades to a zero value, so callers validate once at the end
/// instead of threading error returns through every field.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SUPPORT_WIRE_H
#define ISLARIS_SUPPORT_WIRE_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace islaris::support::wire {

inline void putStr(std::ostringstream &OS, const std::string &S) {
  OS << S.size() << ":" << S << " ";
}

inline void putU64(std::ostringstream &OS, uint64_t V) { OS << V << " "; }

inline void putF(std::ostringstream &OS, double D) {
  char Buf[64];
  std::snprintf(Buf, sizeof Buf, "%a", D);
  OS << Buf << " ";
}

/// Sequential token reader over the encoded form; any malformed field trips
/// Fail and every later read degrades to a zero value.
struct Cursor {
  const std::string &T;
  size_t P = 0;
  bool Fail = false;

  explicit Cursor(const std::string &T) : T(T) {}

  void skip() {
    while (P < T.size() && T[P] == ' ')
      ++P;
  }
  std::string tok() {
    skip();
    size_t S = P;
    while (P < T.size() && T[P] != ' ')
      ++P;
    if (P == S)
      Fail = true;
    return T.substr(S, P - S);
  }
  uint64_t u64() { return std::strtoull(tok().c_str(), nullptr, 10); }
  double f() { return std::strtod(tok().c_str(), nullptr); }
  std::string str() {
    skip();
    size_t S = P;
    while (P < T.size() && T[P] >= '0' && T[P] <= '9')
      ++P;
    if (P == S || P >= T.size() || T[P] != ':') {
      Fail = true;
      return "";
    }
    size_t Len = std::strtoull(T.substr(S, P - S).c_str(), nullptr, 10);
    ++P; // ':'
    if (P + Len > T.size()) {
      Fail = true;
      return "";
    }
    std::string Out = T.substr(P, Len);
    P += Len;
    return Out;
  }
};

} // namespace islaris::support::wire

#endif // ISLARIS_SUPPORT_WIRE_H
