//===- support/Backoff.cpp - Capped exponential retry backoff ------------------===//

#include "support/Backoff.h"

using namespace islaris::support;

double Backoff::nextUnit() {
  State += 0x9e3779b97f4a7c15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  Z ^= Z >> 31;
  return double(Z >> 11) * (1.0 / 9007199254740992.0); // 53-bit mantissa
}

double Backoff::next() {
  double Nominal = Base;
  for (unsigned I = 0; I < Attempt && Nominal < Cap; ++I)
    Nominal *= 2;
  if (Nominal > Cap)
    Nominal = Cap;
  ++Attempt;
  return Nominal * (0.5 + 0.5 * nextUnit());
}

double Backoff::next(double RetryAfterSeconds) {
  double D = next();
  return D < RetryAfterSeconds ? RetryAfterSeconds : D;
}
