//===- support/Diag.cpp - Structured pipeline diagnostics ---------------------===//

#include "support/Diag.h"

using namespace islaris::support;

const char *islaris::support::errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::MalformedObjdump:
    return "malformed-objdump";
  case ErrorCode::MalformedTrace:
    return "malformed-trace";
  case ErrorCode::CorruptCacheEntry:
    return "corrupt-cache-entry";
  case ErrorCode::ChecksumMismatch:
    return "checksum-mismatch";
  case ErrorCode::CacheVersionMismatch:
    return "cache-version-mismatch";
  case ErrorCode::OverlappingCode:
    return "overlapping-code";
  case ErrorCode::UnknownSymbol:
    return "unknown-symbol";
  case ErrorCode::UnknownRegister:
    return "unknown-register";
  case ErrorCode::ModelError:
    return "model-error";
  case ErrorCode::ProofFailed:
    return "proof-failed";
  case ErrorCode::SpecError:
    return "spec-error";
  case ErrorCode::PathBudgetExceeded:
    return "path-budget-exceeded";
  case ErrorCode::InstrBudgetExhausted:
    return "instr-budget-exhausted";
  case ErrorCode::DeadlineExceeded:
    return "deadline-exceeded";
  case ErrorCode::SolverBudgetExceeded:
    return "solver-budget-exceeded";
  case ErrorCode::Cancelled:
    return "cancelled";
  case ErrorCode::JobTimeout:
    return "job-timeout";
  case ErrorCode::JobException:
    return "job-exception";
  case ErrorCode::IoError:
    return "io-error";
  case ErrorCode::InjectedFault:
    return "injected-fault";
  case ErrorCode::Internal:
    return "internal";
  }
  return "unknown";
}

const char *islaris::support::severityName(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  case Severity::Fatal:
    return "fatal";
  }
  return "error";
}

std::string Diag::render() const {
  if (ok())
    return "ok";
  std::string Out = severityName(Sev);
  Out += "[";
  Out += errorCodeName(Code);
  Out += "]";
  if (!Stage.empty()) {
    Out += " ";
    Out += Stage;
  }
  Out += ": ";
  Out += Message;
  return Out;
}

bool islaris::support::isRetryable(ErrorCode C) {
  switch (C) {
  case ErrorCode::JobTimeout:
  case ErrorCode::Cancelled:
  case ErrorCode::DeadlineExceeded:
  case ErrorCode::JobException:
  case ErrorCode::IoError:
  case ErrorCode::InjectedFault:
    return true;
  default:
    return false;
  }
}

bool islaris::support::isInfrastructureError(ErrorCode C) {
  switch (C) {
  case ErrorCode::JobTimeout:
  case ErrorCode::Cancelled:
  case ErrorCode::DeadlineExceeded:
  case ErrorCode::SolverBudgetExceeded:
  case ErrorCode::PathBudgetExceeded:
  case ErrorCode::InstrBudgetExhausted:
  case ErrorCode::JobException:
  case ErrorCode::IoError:
  case ErrorCode::InjectedFault:
  case ErrorCode::CorruptCacheEntry:
  case ErrorCode::ChecksumMismatch:
  case ErrorCode::CacheVersionMismatch:
  case ErrorCode::Internal:
    return true;
  default:
    return false;
  }
}
