//===- support/Parse.h - Strict parsing of untrusted numbers ----*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validating decimal parser for numbers that arrive as untrusted bytes —
/// on-disk cache entries, the islarisd wire, objdump text.  `std::stoul`
/// throws on non-numeric input and silently wraps "-1" to 4294967295; both
/// behaviours violate the durability contract (a corrupt entry degrades to
/// a miss / parse error, never a crash or a wrong value).  Every number
/// parsed out of input data must come through here.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SUPPORT_PARSE_H
#define ISLARIS_SUPPORT_PARSE_H

#include <cstdint>
#include <string_view>

namespace islaris::support {

/// Parses a non-negative decimal integer in [0, Max].  Accepts exactly
/// [0-9]+ — rejects the empty string, signs (so "-1" cannot wrap), hex,
/// whitespace, trailing junk, and anything that overflows uint64_t or
/// exceeds Max.  Returns false instead of throwing.
inline bool parseUnsigned(std::string_view S, uint64_t Max, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    unsigned D = unsigned(C - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
  }
  if (V > Max)
    return false;
  Out = V;
  return true;
}

/// Narrow-result overload for the common width/count fields.  Max above
/// UINT32_MAX is clamped so the result always fits the output type.
inline bool parseUnsigned(std::string_view S, uint64_t Max, unsigned &Out) {
  uint64_t V = 0;
  if (!parseUnsigned(S, Max < 0xFFFFFFFFu ? Max : 0xFFFFFFFFu, V))
    return false;
  Out = unsigned(V);
  return true;
}

} // namespace islaris::support

#endif // ISLARIS_SUPPORT_PARSE_H
