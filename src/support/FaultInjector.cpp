//===- support/FaultInjector.cpp - Deterministic fault injection --------------===//

#include "support/FaultInjector.h"
#include "support/Guard.h"

#include <cstdlib>
#include <cstring>

using namespace islaris::support;

const char *islaris::support::faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::CacheRead:
    return "cache-read";
  case FaultSite::CacheWrite:
    return "cache-write";
  case FaultSite::CacheRename:
    return "cache-rename";
  case FaultSite::CacheTornWrite:
    return "cache-torn-write";
  case FaultSite::SolverUnknown:
    return "solver-unknown";
  case FaultSite::ExecStep:
    return "exec-step";
  case FaultSite::ExecThrow:
    return "exec-throw";
  case FaultSite::CrashPublish:
    return "crash-publish";
  case FaultSite::CrashJournal:
    return "crash-journal";
  case FaultSite::DiskFull:
    return "disk-full";
  }
  return "unknown";
}

FaultInjector::FaultInjector(uint64_t Seed) : Seed(Seed) {}

void FaultInjector::setRate(FaultSite S, double P) {
  std::lock_guard<std::mutex> L(Mu);
  Sites[unsigned(S)].Rate = P < 0 ? 0 : (P > 1 ? 1 : P);
}

void FaultInjector::failFirst(FaultSite S, uint64_t N) {
  std::lock_guard<std::mutex> L(Mu);
  Sites[unsigned(S)].FailFirst = N;
}

void FaultInjector::failAt(FaultSite S, uint64_t N) {
  std::lock_guard<std::mutex> L(Mu);
  Sites[unsigned(S)].FailAt = N;
}

/// splitmix64: a full-period mixer; decisions are a pure function of
/// (seed, site, counter).
static uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

bool FaultInjector::shouldFail(FaultSite S) {
  std::lock_guard<std::mutex> L(Mu);
  SiteState &St = Sites[unsigned(S)];
  uint64_t Probe = St.Probes++;
  bool Fail;
  if (Probe < St.FailFirst || Probe == St.FailAt) {
    Fail = true;
  } else if (St.Rate <= 0) {
    Fail = false;
  } else {
    uint64_t H = mix(Seed ^ (uint64_t(S) * 0x0123456789abcdefull) ^
                     mix(Probe));
    // Top 53 bits as a uniform double in [0, 1).
    double U = double(H >> 11) * 0x1.0p-53;
    Fail = U < St.Rate;
  }
  if (Fail)
    ++St.Injected;
  return Fail;
}

uint64_t FaultInjector::probes(FaultSite S) const {
  std::lock_guard<std::mutex> L(Mu);
  return Sites[unsigned(S)].Probes;
}

uint64_t FaultInjector::injected(FaultSite S) const {
  std::lock_guard<std::mutex> L(Mu);
  return Sites[unsigned(S)].Injected;
}

static FaultInjector *ActiveInjector = nullptr;

FaultInjector *FaultInjector::active() { return ActiveInjector; }
void FaultInjector::setActive(FaultInjector *F) { ActiveInjector = F; }

std::unique_ptr<FaultInjector> FaultInjector::fromEnv() {
  const char *Spec = std::getenv("ISLARIS_FAULTS");
  if (!Spec || !*Spec)
    return nullptr;
  uint64_t Seed = 0;
  if (const char *S = std::getenv("ISLARIS_FAULT_SEED"))
    Seed = std::strtoull(S, nullptr, 0);
  auto F = std::make_unique<FaultInjector>(Seed);

  // "site=rate,site=first:n,..." — malformed entries are skipped.
  std::string Text(Spec);
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Comma = Text.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Text.size();
    std::string Item = Text.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos)
      continue;
    std::string Name = Item.substr(0, Eq);
    std::string Val = Item.substr(Eq + 1);
    FaultSite Site = FaultSite::CacheRead;
    bool Known = false;
    for (unsigned I = 0; I < NumFaultSites; ++I)
      if (Name == faultSiteName(FaultSite(I))) {
        Site = FaultSite(I);
        Known = true;
        break;
      }
    if (!Known || Val.empty())
      continue;
    if (Val.rfind("first:", 0) == 0)
      F->failFirst(Site, std::strtoull(Val.c_str() + 6, nullptr, 0));
    else if (Val.rfind("at:", 0) == 0)
      F->failAt(Site, std::strtoull(Val.c_str() + 3, nullptr, 0));
    else
      F->setRate(Site, std::strtod(Val.c_str(), nullptr));
  }
  return F;
}

//===----------------------------------------------------------------------===//
// Ambient run limits (support/Guard.h).
//===----------------------------------------------------------------------===//

namespace {
RunLimits AmbientLimits;
}

RunLimits islaris::support::ambientRunLimits() { return AmbientLimits; }
void islaris::support::setAmbientRunLimits(const RunLimits &L) {
  AmbientLimits = L;
}
