//===- seplogic/Spec.h - Islaris separation logic assertions ----*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// User-facing specifications in the Islaris separation logic (§2.3, §4.1).
/// A Spec is a separation-logic formula
///
///   exists x1..xk.  r1 |->R v1 * ... * reg_col(C) * a |->M b *
///                   a |->*M B * a |->IO n * r @@ Q * spec(s) * pure...
///
/// Existentials are SMT variables owned by the Spec ("pattern variables"):
/// when the spec is *assumed* they are instantiated with fresh unknowns,
/// when it is *proven* they are bound by unification against the context
/// (this is how Lithium's goal-directed search avoids backtracking).
///
/// Specs double as Hoare-double preconditions, loop invariants (registered
/// at an address, the `.L3 @@ I` of §2.5), and function postconditions (the
/// `r @@ Q` continuation assertion of Fig. 8).
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SEPLOGIC_SPEC_H
#define ISLARIS_SEPLOGIC_SPEC_H

#include "itl/Trace.h"
#include "seplogic/IoSpec.h"
#include "smt/TermBuilder.h"

#include <optional>
#include <string>
#include <vector>

namespace islaris::seplogic {

/// r |->R v.
struct RegChunk {
  itl::Reg R;
  const smt::Term *V;
};

/// reg_col(C): a named collection of register points-tos (§4.1).  Purely a
/// grouping device; the engine flattens it but remembers the collection
/// name for diagnostics.
struct RegColChunk {
  std::string Name;
  std::vector<RegChunk> Regs;
};

/// a |->M b (NBytes-wide little-endian value).
struct MemChunk {
  const smt::Term *Addr;
  const smt::Term *Val;
  unsigned NBytes;
};

/// a |->*M B: an array of |Elems| values, each ElemBytes wide.
struct MemArrayChunk {
  const smt::Term *Base;
  std::vector<const smt::Term *> Elems;
  unsigned ElemBytes;
};

/// a |->IO n: ownership of an unmapped (device) region of Size bytes.
struct MmioChunk {
  uint64_t Base;
  unsigned Size;
};

class Spec;

/// r @@ Q(args): the code at address r has been verified under the
/// precondition Q with its parameters instantiated to Args.  Parameters are
/// how a continuation spec (e.g. the Fig. 8 postcondition) refers to values
/// bound by the spec that references it.
struct InstrPreChunk {
  const smt::Term *Addr;
  const Spec *Q;
  std::vector<const smt::Term *> Args;
};

/// An assumed function contract, used to formalize a calling convention
/// (§6, binary search): when control reaches Addr, the engine havocs the
/// contract's clobber registers, assumes the relational postcondition, and
/// resumes at the address held in the return register.  Contracts are
/// assumptions (like the paper's assumed-correct pKVM host handler path).
struct Contract {
  std::string Name;
  /// Return-address register (x30 on AArch64, ra on RISC-V).
  itl::Reg RetReg;
  /// Registers whose values the callee may change (set to fresh unknowns).
  std::vector<itl::Reg> Clobbers;
  /// Relational postcondition: given lookups for pre-call and post-call
  /// register values, returns pure facts to assume.
  std::function<std::vector<const smt::Term *>(
      smt::TermBuilder &,
      const std::function<const smt::Term *(const itl::Reg &)> &PreVal,
      const std::function<const smt::Term *(const itl::Reg &)> &PostVal)>
      Post;
};

/// f @@contract C: the code at address f satisfies contract C.
struct ContractChunk {
  const smt::Term *Addr;
  const Contract *C;
};

/// A separation-logic assertion with existential pattern variables.
class Spec {
public:
  explicit Spec(smt::TermBuilder &TB, std::string Name = "")
      : TB(&TB), Name(std::move(Name)) {}

  /// Creates an existential pattern variable of the given bit width.
  const smt::Term *evar(unsigned Width, const std::string &N) {
    const smt::Term *V = TB->freshVar(smt::Sort::bitvec(Width), N);
    Exists.push_back(V);
    return V;
  }

  /// Registers an externally created variable as an existential of this
  /// spec (used when two registered specs must mention the same unknown,
  /// e.g. an IO-spec closure shared between an entry spec and a loop
  /// invariant).
  const smt::Term *shareEvar(const smt::Term *V) {
    assert(V->isVar() && "shareEvar needs a variable");
    Exists.push_back(V);
    return V;
  }

  /// Declares a parameter: a variable bound by the `r @@ Q(args)` chunk
  /// that references this spec (never by unification).
  const smt::Term *param(unsigned Width, const std::string &N) {
    const smt::Term *V = TB->freshVar(smt::Sort::bitvec(Width), N);
    Params.push_back(V);
    return V;
  }

  Spec &reg(itl::Reg R, const smt::Term *V) {
    Regs.push_back({std::move(R), V});
    return *this;
  }
  Spec &reg(const std::string &R, const smt::Term *V) {
    return reg(itl::Reg(R), V);
  }
  /// r |->R _ : don't-care value (fresh existential).
  Spec &regAny(itl::Reg R) {
    unsigned W = RegWidthHint ? RegWidthHint(R) : 64;
    return reg(std::move(R), evar(W, "_" + R.toString()));
  }
  Spec &regCol(RegColChunk C) {
    RegCols.push_back(std::move(C));
    return *this;
  }
  Spec &mem(const smt::Term *Addr, const smt::Term *Val, unsigned NBytes) {
    Mems.push_back({Addr, Val, NBytes});
    return *this;
  }
  Spec &array(const smt::Term *Base, std::vector<const smt::Term *> Elems,
              unsigned ElemBytes) {
    Arrays.push_back({Base, std::move(Elems), ElemBytes});
    return *this;
  }
  Spec &mmio(uint64_t Base, unsigned Size) {
    Mmios.push_back({Base, Size});
    return *this;
  }
  Spec &instrPre(const smt::Term *Addr, const Spec *Q,
                 std::vector<const smt::Term *> Args = {}) {
    InstrPres.push_back({Addr, Q, std::move(Args)});
    return *this;
  }
  Spec &contract(const smt::Term *Addr, const Contract *C) {
    Contracts.push_back({Addr, C});
    return *this;
  }
  Spec &pure(const smt::Term *P) {
    Pures.push_back(P);
    return *this;
  }
  /// spec(s): sets the required IO-specification automaton state.
  Spec &io(IoSpecPtr S) {
    Io = std::move(S);
    return *this;
  }

  /// Optional callback giving register widths for regAny (set by the
  /// architecture layer).
  std::function<unsigned(const itl::Reg &)> RegWidthHint;

  // Accessors used by the engine.
  const std::vector<const smt::Term *> &exists() const { return Exists; }
  const std::vector<const smt::Term *> &params() const { return Params; }
  const std::vector<ContractChunk> &contracts() const { return Contracts; }
  const std::vector<RegChunk> &regs() const { return Regs; }
  const std::vector<RegColChunk> &regCols() const { return RegCols; }
  const std::vector<MemChunk> &mems() const { return Mems; }
  const std::vector<MemArrayChunk> &arrays() const { return Arrays; }
  const std::vector<MmioChunk> &mmios() const { return Mmios; }
  const std::vector<InstrPreChunk> &instrPres() const { return InstrPres; }
  const std::vector<const smt::Term *> &pures() const { return Pures; }
  const IoSpecPtr &ioSpec() const { return Io; }
  const std::string &name() const { return Name; }

  /// Rough "specification size" metric for the Fig. 12 table: number of
  /// chunks plus pure facts plus existentials.
  unsigned sizeMetric() const {
    unsigned N = unsigned(Exists.size() + Regs.size() + Mems.size() +
                          Arrays.size() + Mmios.size() + InstrPres.size() +
                          Pures.size());
    for (const RegColChunk &C : RegCols)
      N += unsigned(C.Regs.size());
    return N;
  }

private:
  smt::TermBuilder *TB;
  std::string Name;
  std::vector<const smt::Term *> Exists;
  std::vector<const smt::Term *> Params;
  std::vector<ContractChunk> Contracts;
  std::vector<RegChunk> Regs;
  std::vector<RegColChunk> RegCols;
  std::vector<MemChunk> Mems;
  std::vector<MemArrayChunk> Arrays;
  std::vector<MmioChunk> Mmios;
  std::vector<InstrPreChunk> InstrPres;
  std::vector<const smt::Term *> Pures;
  IoSpecPtr Io;
};

} // namespace islaris::seplogic

#endif // ISLARIS_SEPLOGIC_SPEC_H
