//===- seplogic/Engine.h - The Islaris proof engine -------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The automated Hoare-double verifier for ITL traces: the C++ counterpart
/// of the Islaris separation logic (Figs. 5 and 11) driven by Lithium-style
/// deterministic proof search (§4.3).
///
/// Verification tasks are registered specs: pairs of a code address and a
/// Spec (function preconditions, loop invariants, handler invariants).  To
/// verify one spec, the engine assumes it (instantiating existentials with
/// fresh unknowns), then symbolically walks the instruction traces applying
/// the proof rules:
///
///  - register/memory events use findR/findM: a deterministic search of the
///    separation context, consulting the bitvector solver for address
///    containment, instead of backtracking over rule alternatives (§4.3);
///  - Assert adds the branch condition as an assumption (pruning the path
///    when the condition contradicts the context);
///  - Assume / AssumeReg become proof obligations discharged by the solver;
///  - at instruction boundaries, a provably matching `a @@ Q` chunk ends
///    the path by *proving* Q (hoare-instr-pre), with all registered specs
///    available coinductively (the paper's step-indexing / Löb argument);
///    otherwise execution continues into the next instruction trace
///    (hoare-instr);
///  - MMIO events step the spec(s) automaton (hoare-read-mem-mmio).
///
/// Every rule application is counted; solver time is accounted separately
/// so the Fig. 12 harness can report the automation/side-condition split.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SEPLOGIC_ENGINE_H
#define ISLARIS_SEPLOGIC_ENGINE_H

#include "itl/Trace.h"
#include "seplogic/Spec.h"
#include "smt/Solver.h"
#include "support/Diag.h"

#include <map>

namespace islaris::seplogic {

/// Proof-effort statistics (the "Coq time" analogue of Fig. 12).
struct ProofStats {
  unsigned EventsProcessed = 0;
  unsigned InstructionsWalked = 0;
  unsigned PathsVerified = 0;
  unsigned PathsPruned = 0;
  unsigned Entailments = 0;
  uint64_t SolverQueries = 0;
  uint64_t CacheHits = 0; ///< Side conditions answered from the cache.
  uint64_t SolverSatCalls = 0;  ///< Checks that reached the SAT core.
  uint64_t SolverMemoHits = 0;  ///< Checks answered by the solver memo.
  uint64_t SolverStoreHits = 0; ///< Checks answered by the persistent store.
  double TotalSeconds = 0;
  double SideCondSeconds = 0; ///< Spent inside the SMT solver.
  double automationSeconds() const {
    return TotalSeconds - SideCondSeconds;
  }
};

/// The verification engine.  One instance per program; the instruction map
/// plays the role of the persistent instr(a,t) chunks of Theorem 1.
class ProofEngine {
public:
  ProofEngine(smt::TermBuilder &TB,
              std::map<uint64_t, const itl::Trace *> Instrs,
              std::string PcReg = "_PC");

  /// Registers \p S as the invariant of the code at \p Addr.  All
  /// registered specs are available as `Addr @@ S` chunks in every
  /// verification context (Löb induction).
  void registerSpec(uint64_t Addr, const Spec *S);

  /// Verifies every registered spec.  Returns false and sets error() on
  /// the first failure.
  bool verifyAll();

  /// Verifies a single registered spec.
  bool verifySpec(uint64_t Addr, const Spec *S);

  const std::string &error() const { return Error; }
  /// Structured diagnostic of the last failure (Ok when no failure); its
  /// code distinguishes genuine proof failures from resource exhaustion,
  /// cancellation, and spec errors.
  const support::Diag &diag() const { return DiagV; }
  const ProofStats &stats() const { return Stats; }

  /// Installs per-check resource guards on the engine's solver.  When a
  /// guarded check gives up (Result::Unknown), the spec under verification
  /// fails with an attributed solver-budget/cancellation diagnostic —
  /// Unknown is never folded into "provable" or "unprovable".
  void setSolverLimits(const smt::SolverLimits &L) { Solver.setLimits(L); }

  /// Attaches a persistent side-condition store (shared, not owned) to the
  /// engine's solver; every discharged query is looked up in / written back
  /// to it.  See smt::Solver::setCache.
  void setSideCondCache(smt::SolverCache *C) { Solver.setCache(C); }

  /// Maximum instructions walked per verification path before giving up
  /// (a missing loop invariant shows up as exhaustion of this budget).
  unsigned MaxInstrsPerPath = 4096;

private:
  struct Ctx;
  enum class Step { Ok, Pruned, Failed };

  void assumeSpec(const Spec &S, Ctx &C);
  bool wpTrace(const itl::Trace &T, Ctx C, unsigned Budget);
  Step wpEvent(const itl::Event &E, Ctx &C);
  bool wpInstrEnd(Ctx C, unsigned Budget);
  bool entail(const Spec &Q, Ctx &C,
              const std::vector<const smt::Term *> &Args);
  /// Applies an assumed function contract (havoc + relational post) and
  /// resumes at the contract's return address.
  bool applyContract(const Contract &Co, Ctx C, unsigned Budget);

  // Lithium-style context search and side-condition helpers.
  const smt::Term *substTerm(const smt::Term *T, const Ctx &C);
  bool prove(const smt::Term *Goal, Ctx &C);
  bool pureSatisfiable(Ctx &C);
  std::optional<BitVec> concretize(const smt::Term *T, Ctx &C);
  /// Resolves Rec/Branch IO-spec nodes to the next Read/Write/Done node
  /// under the current path condition; null on undecidable branch.
  IoSpecPtr resolveIoState(IoSpecPtr S, Ctx &C);
  bool fail(const std::string &Msg,
            support::ErrorCode C = support::ErrorCode::ProofFailed);
  /// Records a solver give-up (Unknown) at a proof-search site; sticky for
  /// the current verifySpec so the verdict cannot be silently wrong.
  void noteSolverGaveUp(const std::string &Where);

  smt::TermBuilder &TB;
  smt::Solver Solver;
  smt::Rewriter RW;
  std::map<uint64_t, const itl::Trace *> Instrs;
  std::string PcReg;
  std::vector<std::pair<uint64_t, const Spec *>> Registered;
  std::string Error;
  support::Diag DiagV;
  /// A check() returned Unknown during this verifySpec: the walk may have
  /// taken unsound shortcuts, so the spec must not report success.
  bool GaveUp = false;
  /// Deferred registration error (ill-formed spec passed to registerSpec);
  /// reported by the next verifySpec/verifyAll instead of asserting.
  std::string RegError;
  ProofStats Stats;
  /// Side-condition memo: the exact (goal, path-condition) id sequence ->
  /// result.  Branch contexts share long pure prefixes, so the same query
  /// recurs many times across paths and loop iterations.  Keyed on the id
  /// vector itself, not a folded hash: a hash collision here would silently
  /// misprove a goal.
  struct IdSeqHash {
    size_t operator()(const std::vector<unsigned> &V) const {
      uint64_t H = 0xcbf29ce484222325ull;
      for (unsigned Id : V) {
        H ^= Id;
        H *= 1099511628211ull;
      }
      return size_t(H ^ (H >> 31));
    }
  };
  std::unordered_map<std::vector<unsigned>, bool, IdSeqHash> ProveCache;
  /// Monotonic counter making contract-havoc variable names unique, so
  /// printed goal closures stay unambiguous and cacheable across runs.
  unsigned HavocCounter = 0;
};

} // namespace islaris::seplogic

#endif // ISLARIS_SEPLOGIC_ENGINE_H
