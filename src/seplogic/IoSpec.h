//===- seplogic/IoSpec.h - spec(s) label-sequence specifications -*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The spec(s) assertion of §4.2: a (possibly infinite) set of visible-label
/// sequences describing allowed MMIO behaviour, built from the paper's
/// combinators — scons(kappa, s) prepends a label, srec is the least fixed
/// point, and a read binds the device-chosen value for use in the
/// continuation.  The UART specification of §6,
///
///   srec(R. exists b. scons(R(LSR,b), b[5] ? scons(W(IO,c), s) : R))
///
/// is expressed as nested readStep/branch/writeStep/rec nodes.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SEPLOGIC_IOSPEC_H
#define ISLARIS_SEPLOGIC_IOSPEC_H

#include "smt/TermBuilder.h"

#include <functional>
#include <memory>

namespace islaris::seplogic {

class IoSpecNode;
using IoSpecPtr = std::shared_ptr<const IoSpecNode>;

/// One state of the label-sequence specification automaton.
class IoSpecNode : public std::enable_shared_from_this<IoSpecNode> {
public:
  enum class Kind : uint8_t {
    Done,   ///< No further visible events allowed.
    Read,   ///< exists b. scons(R(addr,b), K(b)).
    Write,  ///< scons(W(addr,v), Next) with a predicate on v.
    Branch, ///< cond ? Then : Else (cond fixed when constructed).
    Rec,    ///< srec: unfolds to Gen(self).
  };

  Kind kind() const { return K; }

  /// Terminal state: no more visible events.
  static IoSpecPtr done();

  /// A read of \p NBytes at \p Addr; \p Cont receives the term standing for
  /// the device-chosen value and returns the continuation.
  static IoSpecPtr
  readStep(uint64_t Addr, unsigned NBytes,
           std::function<IoSpecPtr(const smt::Term *, smt::TermBuilder &)>
               Cont);

  /// A write of \p NBytes at \p Addr; \p Allowed receives the written value
  /// and returns the predicate it must provably satisfy.
  static IoSpecPtr
  writeStep(uint64_t Addr, unsigned NBytes,
            std::function<const smt::Term *(const smt::Term *,
                                            smt::TermBuilder &)>
                Allowed,
            IoSpecPtr Next);

  /// Conditional continuation on an SMT boolean (usually over a read value).
  static IoSpecPtr branch(const smt::Term *Cond, IoSpecPtr Then,
                          IoSpecPtr Else);

  /// Least fixed point: \p Gen receives the recursive reference.
  static IoSpecPtr rec(std::function<IoSpecPtr(IoSpecPtr)> Gen);

  // Accessors (valid per kind; asserted).
  uint64_t addr() const { return Addr; }
  unsigned nbytes() const { return NBytes; }
  IoSpecPtr applyRead(const smt::Term *V, smt::TermBuilder &TB) const {
    assert(K == Kind::Read && "not a read node");
    return ReadCont(V, TB);
  }
  const smt::Term *writeAllowed(const smt::Term *V,
                                smt::TermBuilder &TB) const {
    assert(K == Kind::Write && "not a write node");
    return WriteAllowed(V, TB);
  }
  IoSpecPtr next() const {
    assert(K == Kind::Write && "not a write node");
    return Next;
  }
  const smt::Term *cond() const {
    assert(K == Kind::Branch && "not a branch node");
    return Cond;
  }
  IoSpecPtr thenSpec() const { return Then; }
  IoSpecPtr elseSpec() const { return Else; }
  /// Unfolds one level of recursion (memoized, so repeated unfoldings of
  /// the same node are pointer-equal — loop invariants compare states by
  /// identity).
  IoSpecPtr unfold() const;

private:
  IoSpecNode() = default;

  Kind K = Kind::Done;
  uint64_t Addr = 0;
  unsigned NBytes = 0;
  std::function<IoSpecPtr(const smt::Term *, smt::TermBuilder &)> ReadCont;
  std::function<const smt::Term *(const smt::Term *, smt::TermBuilder &)>
      WriteAllowed;
  IoSpecPtr Next, Then, Else;
  const smt::Term *Cond = nullptr;
  std::function<IoSpecPtr(IoSpecPtr)> Gen;
  /// Memoized unfolding of Rec nodes.  Weak: the unfolded body captures a
  /// strong reference back to this node (that is what srec means), so an
  /// owning memo would form a shared_ptr cycle and leak the whole automaton.
  /// Any consumer comparing unfoldings by identity necessarily holds the
  /// previous unfolding alive, which keeps the memo valid.
  mutable std::weak_ptr<const IoSpecNode> Unfolded;
};

} // namespace islaris::seplogic

#endif // ISLARIS_SEPLOGIC_IOSPEC_H
