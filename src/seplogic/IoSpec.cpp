//===- seplogic/IoSpec.cpp - spec(s) combinators --------------------------------===//

#include "seplogic/IoSpec.h"

using namespace islaris;
using namespace islaris::seplogic;

IoSpecPtr IoSpecNode::done() {
  auto N = std::shared_ptr<IoSpecNode>(new IoSpecNode());
  N->K = Kind::Done;
  return N;
}

IoSpecPtr IoSpecNode::readStep(
    uint64_t Addr, unsigned NBytes,
    std::function<IoSpecPtr(const smt::Term *, smt::TermBuilder &)> Cont) {
  auto N = std::shared_ptr<IoSpecNode>(new IoSpecNode());
  N->K = Kind::Read;
  N->Addr = Addr;
  N->NBytes = NBytes;
  N->ReadCont = std::move(Cont);
  return N;
}

IoSpecPtr IoSpecNode::writeStep(
    uint64_t Addr, unsigned NBytes,
    std::function<const smt::Term *(const smt::Term *, smt::TermBuilder &)>
        Allowed,
    IoSpecPtr Next) {
  auto N = std::shared_ptr<IoSpecNode>(new IoSpecNode());
  N->K = Kind::Write;
  N->Addr = Addr;
  N->NBytes = NBytes;
  N->WriteAllowed = std::move(Allowed);
  N->Next = std::move(Next);
  return N;
}

IoSpecPtr IoSpecNode::branch(const smt::Term *Cond, IoSpecPtr Then,
                             IoSpecPtr Else) {
  auto N = std::shared_ptr<IoSpecNode>(new IoSpecNode());
  N->K = Kind::Branch;
  N->Cond = Cond;
  N->Then = std::move(Then);
  N->Else = std::move(Else);
  return N;
}

IoSpecPtr IoSpecNode::rec(std::function<IoSpecPtr(IoSpecPtr)> Gen) {
  auto N = std::shared_ptr<IoSpecNode>(new IoSpecNode());
  N->K = Kind::Rec;
  N->Gen = std::move(Gen);
  return N;
}

IoSpecPtr IoSpecNode::unfold() const {
  assert(K == Kind::Rec && "unfold of a non-recursive node");
  if (IoSpecPtr U = Unfolded.lock())
    return U;
  IoSpecPtr U = Gen(shared_from_this());
  Unfolded = U;
  return U;
}
