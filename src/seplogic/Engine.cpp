//===- seplogic/Engine.cpp - The Islaris proof engine ---------------------------===//

#include "seplogic/Engine.h"

#include "smt/Evaluator.h"

#include <chrono>

using namespace islaris;
using namespace islaris::seplogic;
using islaris::itl::Event;
using islaris::itl::EventKind;
using islaris::itl::Reg;
using islaris::itl::RegHash;
using islaris::itl::Trace;
using smt::Term;

/// The separation context a verification path carries (the "P" of a Hoare
/// double {P} t, in flattened Lithium form).
struct ProofEngine::Ctx {
  std::unordered_map<Reg, const Term *, RegHash> Regs;
  std::vector<MemChunk> Mems;
  std::vector<MemArrayChunk> Arrays;
  std::vector<MmioChunk> Mmios;
  std::vector<InstrPreChunk> InstrPres;
  std::vector<ContractChunk> Contracts;
  std::vector<const Term *> Pure;
  IoSpecPtr Io;
  /// Bindings of the current instruction's trace variables.
  std::unordered_map<uint32_t, const Term *> Subst;
};

ProofEngine::ProofEngine(smt::TermBuilder &TB,
                         std::map<uint64_t, const itl::Trace *> Instrs,
                         std::string PcReg)
    : TB(TB), Solver(TB), RW(TB), Instrs(std::move(Instrs)),
      PcReg(std::move(PcReg)) {}

void ProofEngine::registerSpec(uint64_t Addr, const Spec *S) {
  if (!S->params().empty()) {
    // Ill-formed specification: deferred to the next verify call so the
    // caller gets a clean SpecError instead of an abort (or, under NDEBUG,
    // an open spec silently treated as closed).
    if (RegError.empty())
      RegError = "registered spec " + S->name() + " at " +
                 BitVec(64, Addr).toHexString() +
                 " must be closed (has parameters)";
    return;
  }
  Registered.emplace_back(Addr, S);
}

bool ProofEngine::fail(const std::string &Msg, support::ErrorCode C) {
  if (Error.empty()) {
    Error = Msg;
    DiagV = support::Diag::error(C, "proof-engine", Msg);
  }
  return false;
}

void ProofEngine::noteSolverGaveUp(const std::string &Where) {
  GaveUp = true;
  bool Cancelled = Solver.limits().Cancel.cancelled();
  fail("solver gave up on " + Where +
           (Cancelled ? " (cancelled)" : " (budget exhausted)"),
       Cancelled ? support::ErrorCode::Cancelled
                 : support::ErrorCode::SolverBudgetExceeded);
}

//===----------------------------------------------------------------------===//
// Side-condition helpers.
//===----------------------------------------------------------------------===//

const Term *ProofEngine::substTerm(const Term *T, const Ctx &C) {
  if (C.Subst.empty())
    return T;
  return TB.substitute(T, C.Subst);
}

bool ProofEngine::prove(const Term *Goal, Ctx &C) {
  const Term *G = RW.simplify(substTerm(Goal, C));
  if (G->kind() == smt::Kind::ConstBool)
    return G->constBool();
  // Side-condition memoization keyed on the goal plus the path condition
  // (terms are hash-consed, so ids identify them exactly).
  std::vector<unsigned> Key;
  Key.reserve(C.Pure.size() + 1);
  Key.push_back(G->id());
  for (const Term *P : C.Pure)
    Key.push_back(P->id());
  auto Hit = ProveCache.find(Key);
  if (Hit != ProveCache.end()) {
    ++Stats.CacheHits;
    return Hit->second;
  }
  std::vector<const Term *> Query = C.Pure;
  Query.push_back(TB.notTerm(G));
  ++Stats.SolverQueries;
  auto T0 = std::chrono::steady_clock::now();
  smt::Result CR = Solver.check(Query);
  if (getenv("ISLARIS_DEBUG_SLOW")) {
    double Dt = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
    if (Dt > 0.5)
      fprintf(stderr, "[slow %.1fs, pure=%zu] %s\n", Dt, C.Pure.size(),
              G->toString().substr(0, 200).c_str());
  }
  if (CR == smt::Result::Unknown) {
    // "Not proven" is the sound answer, but it must not be memoized (a
    // retry with a fresh budget may well prove it) and the spec as a whole
    // must not succeed, so the give-up is recorded stickily.
    noteSolverGaveUp("side condition " + G->toString().substr(0, 120));
    return false;
  }
  bool R = CR == smt::Result::Unsat;
  ProveCache.emplace(std::move(Key), R);
  return R;
}

bool ProofEngine::pureSatisfiable(Ctx &C) {
  ++Stats.SolverQueries;
  smt::Result CR = Solver.check(C.Pure);
  if (CR == smt::Result::Unknown) {
    // Answering "unsatisfiable" here would PRUNE a possibly-feasible path —
    // an unsound skip.  Keep walking the path (sound, possibly wasted work)
    // and record the give-up so the verdict is failure, not silent success.
    noteSolverGaveUp("path-condition satisfiability");
    return true;
  }
  return CR == smt::Result::Sat;
}

std::optional<BitVec> ProofEngine::concretize(const Term *T, Ctx &C) {
  const Term *S = RW.simplify(substTerm(T, C));
  if (S->kind() == smt::Kind::ConstBV)
    return S->constBV();
  // Ask the solver for a model of the path condition, evaluate a candidate
  // value, then confirm it is the only one.
  ++Stats.SolverQueries;
  smt::Result CR = Solver.check(C.Pure);
  if (CR == smt::Result::Unknown) {
    noteSolverGaveUp("concretization of " + S->toString().substr(0, 120));
    return std::nullopt;
  }
  if (CR != smt::Result::Sat)
    return std::nullopt; // vacuous path; caller prunes via asserts
  smt::Env E;
  for (const Term *V : smt::collectVars(S))
    E[V->varId()] = Solver.modelValue(V);
  auto Val = smt::evaluate(S, E);
  if (!Val || !Val->isBitVec())
    return std::nullopt;
  const Term *Eq = TB.eqTerm(S, TB.constBV(Val->asBitVec()));
  if (!prove(Eq, C))
    return std::nullopt;
  return Val->asBitVec();
}

IoSpecPtr ProofEngine::resolveIoState(IoSpecPtr S, Ctx &C) {
  for (int Fuel = 0; S && Fuel < 64; ++Fuel) {
    switch (S->kind()) {
    case IoSpecNode::Kind::Rec:
      S = S->unfold();
      continue;
    case IoSpecNode::Kind::Branch:
      if (prove(S->cond(), C)) {
        S = S->thenSpec();
        continue;
      }
      if (prove(TB.notTerm(S->cond()), C)) {
        S = S->elseSpec();
        continue;
      }
      return nullptr; // undecidable branch
    default:
      return S;
    }
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Assuming a spec.
//===----------------------------------------------------------------------===//

void ProofEngine::assumeSpec(const Spec &S, Ctx &C) {
  // The spec's existentials become the task's unknowns directly.  This
  // matters because other specs (e.g. the postcondition referenced by an
  // `r @@ Q` chunk, Fig. 8) mention the same variables; instantiating
  // fresh copies here would sever that connection.  Each verification task
  // has an independent context, so sharing the variables across tasks is
  // sound (they are unconstrained unknowns).
  auto inst = [&](const Term *T) { return T; };

  for (const RegChunk &R : S.regs())
    C.Regs[R.R] = inst(R.V);
  for (const RegColChunk &Col : S.regCols())
    for (const RegChunk &R : Col.Regs)
      C.Regs[R.R] = inst(R.V);
  for (const MemChunk &M : S.mems())
    C.Mems.push_back({inst(M.Addr), inst(M.Val), M.NBytes});
  for (const MemArrayChunk &A : S.arrays()) {
    MemArrayChunk NA;
    NA.Base = inst(A.Base);
    NA.ElemBytes = A.ElemBytes;
    for (const Term *E : A.Elems)
      NA.Elems.push_back(inst(E));
    C.Arrays.push_back(std::move(NA));
  }
  for (const MmioChunk &M : S.mmios())
    C.Mmios.push_back(M);
  for (const InstrPreChunk &I : S.instrPres()) {
    std::vector<const Term *> Args;
    for (const Term *A : I.Args)
      Args.push_back(inst(A));
    C.InstrPres.push_back({inst(I.Addr), I.Q, std::move(Args)});
  }
  for (const ContractChunk &Co : S.contracts())
    C.Contracts.push_back({inst(Co.Addr), Co.C});
  for (const Term *P : S.pures())
    C.Pure.push_back(inst(P));
  if (S.ioSpec())
    C.Io = S.ioSpec();
  // Note: the IO spec state is shared by identity; existentials inside IO
  // continuations are created on the fly by the automaton.
}

//===----------------------------------------------------------------------===//
// Entailment: context |= Spec (hoare-instr-pre / instr-pre-intro).
//===----------------------------------------------------------------------===//

bool ProofEngine::entail(const Spec &Q, Ctx &C,
                         const std::vector<const Term *> &Args) {
  ++Stats.Entailments;
  std::unordered_map<uint32_t, const Term *> Bind;
  std::unordered_map<uint32_t, bool> IsEvar;
  for (const Term *E : Q.exists())
    IsEvar[E->varId()] = true;
  // Parameters are bound up front by the @@ chunk's arguments.
  if (Args.size() != Q.params().size())
    return fail("entailment of " + Q.name() +
                    ": instr-pre argument count mismatch (" +
                    std::to_string(Args.size()) + " vs " +
                    std::to_string(Q.params().size()) + ")",
                support::ErrorCode::SpecError);
  for (size_t I = 0; I < Args.size(); ++I)
    Bind[Q.params()[I]->varId()] = Args[I];

  auto applyBind = [&](const Term *T) {
    return RW.simplify(TB.substitute(T, Bind));
  };
  // Unifies a spec pattern against a context value: an unbound existential
  // binds; anything else must be provably equal.
  auto unify = [&](const Term *Pattern, const Term *Val,
                   const std::string &What) {
    const Term *P = applyBind(Pattern);
    if (P->isVar() && IsEvar.count(P->varId()) && !Bind.count(P->varId())) {
      Bind[P->varId()] = Val;
      return true;
    }
    if (prove(TB.eqTerm(P, Val), C))
      return true;
    return fail("entailment of " + Q.name() + ": " + What +
                ": cannot prove " + P->toString() + " == " + Val->toString());
  };

  auto matchReg = [&](const RegChunk &R) {
    auto It = C.Regs.find(R.R);
    if (It == C.Regs.end())
      return fail("entailment of " + Q.name() + ": context has no " +
                  R.R.toString() + " |->R chunk");
    return unify(R.V, It->second, "register " + R.R.toString());
  };

  for (const RegChunk &R : Q.regs())
    if (!matchReg(R))
      return false;
  for (const RegColChunk &Col : Q.regCols())
    for (const RegChunk &R : Col.Regs)
      if (!matchReg(R))
        return false;

  for (const MemChunk &M : Q.mems()) {
    const Term *Addr = applyBind(M.Addr);
    bool Found = false;
    for (const MemChunk &CM : C.Mems) {
      if (CM.NBytes != M.NBytes)
        continue;
      if (!prove(TB.eqTerm(Addr, CM.Addr), C))
        continue;
      if (!unify(M.Val, CM.Val, "memory at " + Addr->toString()))
        return false;
      Found = true;
      break;
    }
    if (!Found)
      return fail("entailment of " + Q.name() +
                  ": no |->M chunk at " + Addr->toString());
  }

  for (const MemArrayChunk &A : Q.arrays()) {
    const Term *Base = applyBind(A.Base);
    bool Found = false;
    for (const MemArrayChunk &CA : C.Arrays) {
      if (CA.ElemBytes != A.ElemBytes || CA.Elems.size() != A.Elems.size())
        continue;
      if (!prove(TB.eqTerm(Base, CA.Base), C))
        continue;
      for (size_t I = 0; I < A.Elems.size(); ++I)
        if (!unify(A.Elems[I], CA.Elems[I],
                   "array element " + std::to_string(I)))
          return false;
      Found = true;
      break;
    }
    if (!Found)
      return fail("entailment of " + Q.name() +
                  ": no matching |->*M chunk at " + Base->toString());
  }

  for (const MmioChunk &M : Q.mmios()) {
    bool Found = false;
    for (const MmioChunk &CM : C.Mmios)
      Found = Found || (CM.Base == M.Base && CM.Size == M.Size);
    if (!Found)
      return fail("entailment of " + Q.name() + ": missing |->IO chunk");
  }

  for (const InstrPreChunk &I : Q.instrPres()) {
    const Term *Addr = applyBind(I.Addr);
    bool Found = false;
    for (const InstrPreChunk &CI : C.InstrPres) {
      if (CI.Q != I.Q || CI.Args.size() != I.Args.size())
        continue;
      if (!prove(TB.eqTerm(Addr, CI.Addr), C))
        continue;
      // Argument matching may bind existentials (e.g. an invariant's
      // "original value" binder determined only by the continuation);
      // roll the bindings back if this candidate fails.
      auto Snapshot = Bind;
      std::string SavedError = Error;
      support::Diag SavedDiag = DiagV;
      bool ArgsOk = true;
      for (size_t K = 0; ArgsOk && K < I.Args.size(); ++K)
        ArgsOk = unify(I.Args[K], CI.Args[K],
                       "@@ argument " + std::to_string(K));
      if (ArgsOk) {
        Found = true;
        break;
      }
      Bind = std::move(Snapshot);
      Error = std::move(SavedError);
      DiagV = std::move(SavedDiag);
    }
    if (!Found)
      return fail("entailment of " + Q.name() + ": missing @@ chunk at " +
                  Addr->toString());
  }

  for (const ContractChunk &Co : Q.contracts()) {
    const Term *Addr = applyBind(Co.Addr);
    bool Found = false;
    for (const ContractChunk &CC : C.Contracts)
      if (CC.C == Co.C && prove(TB.eqTerm(Addr, CC.Addr), C)) {
        Found = true;
        break;
      }
    if (!Found)
      return fail("entailment of " + Q.name() +
                  ": missing contract chunk at " + Addr->toString());
  }

  if (Q.ioSpec()) {
    // Compare automaton states up to one recursion unfolding.
    IoSpecPtr Want = Q.ioSpec(), Have = C.Io;
    auto same = [](const IoSpecPtr &A, const IoSpecPtr &B) {
      if (A == B)
        return true;
      if (A && A->kind() == IoSpecNode::Kind::Rec && A->unfold() == B)
        return true;
      if (B && B->kind() == IoSpecNode::Kind::Rec && B->unfold() == A)
        return true;
      return false;
    };
    if (!same(Want, Have)) {
      // The context state may be an unresolved Branch/Rec node (resolution
      // is lazy); normalize both sides under the path condition.
      IoSpecPtr RHave = Have ? resolveIoState(Have, C) : nullptr;
      IoSpecPtr RWant = Want ? resolveIoState(Want, C) : nullptr;
      if (!(RHave && RWant && same(RHave, RWant)))
        return fail("entailment of " + Q.name() +
                    ": IO specification state mismatch");
    }
  }

  for (const Term *P : Q.pures())
    if (!prove(applyBind(P), C))
      return fail("entailment of " + Q.name() + ": pure goal not provable: " +
                  applyBind(P)->toString());

  // Existentials that never reached a binding position are sound to leave
  // uninstantiated: every obligation mentioning them was proven with the
  // variable universally quantified, which is stronger than the required
  // existential statement (this occurs when an invariant re-proves itself
  // and a pattern variable matches the identical context unknown).
  return true;
}

//===----------------------------------------------------------------------===//
// Weakest-precondition walk over trace events.
//===----------------------------------------------------------------------===//

ProofEngine::Step ProofEngine::wpEvent(const Event &E, Ctx &C) {
  ++Stats.EventsProcessed;
  switch (E.K) {
  case EventKind::DeclareConst:
    return Step::Ok; // hoare-declare-const: stays an unknown until read

  case EventKind::DefineConst: // hoare-define-const
    C.Subst[E.Var->varId()] = RW.simplify(substTerm(E.Expr, C));
    return Step::Ok;

  case EventKind::ReadReg: { // hoare-read-reg via findR
    auto It = C.Regs.find(E.R);
    if (It == C.Regs.end()) {
      fail("read of register " + E.R.toString() +
           " without a points-to chunk (add it to the spec)");
      return Step::Failed;
    }
    if (E.Val->isVar() && !C.Subst.count(E.Val->varId())) {
      C.Subst[E.Val->varId()] = It->second;
      return Step::Ok;
    }
    C.Pure.push_back(TB.eqTerm(substTerm(E.Val, C), It->second));
    return Step::Ok;
  }

  case EventKind::AssumeReg: { // hoare-assume-reg: an obligation
    auto It = C.Regs.find(E.R);
    if (It == C.Regs.end()) {
      fail("assume-reg on register " + E.R.toString() +
           " without a points-to chunk");
      return Step::Failed;
    }
    if (!prove(TB.eqTerm(E.Val, It->second), C)) {
      fail("assume-reg obligation failed for " + E.R.toString() +
           ": expected " + E.Val->toString() + ", context has " +
           It->second->toString());
      return Step::Failed;
    }
    return Step::Ok;
  }

  case EventKind::WriteReg: { // hoare-write-reg
    auto It = C.Regs.find(E.R);
    if (It == C.Regs.end()) {
      fail("write of register " + E.R.toString() +
           " without a points-to chunk");
      return Step::Failed;
    }
    It->second = RW.simplify(substTerm(E.Val, C));
    return Step::Ok;
  }

  case EventKind::Assert: { // hoare-assert: an assumption; prune if absurd
    const Term *T = RW.simplify(substTerm(E.Expr, C));
    if (T->kind() == smt::Kind::ConstBool) {
      if (T->constBool())
        return Step::Ok;
      ++Stats.PathsPruned;
      return Step::Pruned;
    }
    C.Pure.push_back(T);
    if (!pureSatisfiable(C)) {
      ++Stats.PathsPruned;
      return Step::Pruned;
    }
    return Step::Ok;
  }

  case EventKind::Assume: { // Isla assumption: an obligation
    if (!prove(E.Expr, C)) {
      fail("Isla assumption not discharged: " + E.Expr->toString());
      return Step::Failed;
    }
    return Step::Ok;
  }

  case EventKind::ReadMem: { // findM over Mems, Arrays, Mmios
    const Term *Addr = RW.simplify(substTerm(E.Addr, C));
    auto deliver = [&](const Term *Val) {
      if (E.Val->isVar() && !C.Subst.count(E.Val->varId()))
        C.Subst[E.Val->varId()] = Val;
      else
        C.Pure.push_back(TB.eqTerm(substTerm(E.Val, C), Val));
    };
    for (const MemChunk &M : C.Mems) {
      if (M.NBytes != E.NBytes)
        continue;
      if (!prove(TB.eqTerm(Addr, M.Addr), C))
        continue;
      deliver(M.Val);
      return Step::Ok;
    }
    for (const MemArrayChunk &A : C.Arrays) {
      if (A.ElemBytes != E.NBytes)
        continue;
      unsigned Count = unsigned(A.Elems.size());
      const Term *Off = TB.bvSub(Addr, A.Base);
      const Term *InRange = TB.andTerm(
          TB.bvUlt(Off, TB.constBV(64, uint64_t(Count) * A.ElemBytes)),
          TB.eqTerm(TB.bvURem(Off, TB.constBV(64, A.ElemBytes)),
                    TB.constBV(64, 0)));
      if (!prove(InRange, C))
        continue;
      const Term *Idx = TB.bvUDiv(Off, TB.constBV(64, A.ElemBytes));
      Idx = RW.simplify(Idx);
      // hoare-read-mem-array: select the element (an ite chain for a
      // symbolic index).
      const Term *Val = A.Elems[Count - 1];
      for (unsigned K = Count - 1; K-- > 0;)
        Val = TB.iteTerm(TB.eqTerm(Idx, TB.constBV(64, K)), A.Elems[K], Val);
      deliver(RW.simplify(Val));
      return Step::Ok;
    }
    if (auto CA = concretize(Addr, C)) {
      uint64_t A = CA->toUInt64();
      for (const MmioChunk &M : C.Mmios) {
        if (A < M.Base || A + E.NBytes > M.Base + M.Size)
          continue;
        // hoare-read-mem-mmio: step the spec(s) automaton.
        IoSpecPtr S = resolveIoState(C.Io, C);
        if (!S || S->kind() != IoSpecNode::Kind::Read || S->addr() != A ||
            S->nbytes() != E.NBytes) {
          fail("MMIO read at " + Addr->toString() +
               " not allowed by the IO specification");
          return Step::Failed;
        }
        const Term *V = E.Val->isVar() && !C.Subst.count(E.Val->varId())
                            ? E.Val
                            : substTerm(E.Val, C);
        C.Io = S->applyRead(V, TB);
        return Step::Ok;
      }
    }
    fail("memory read at " + Addr->toString() +
         " matches no |->M / |->*M / |->IO chunk");
    return Step::Failed;
  }

  case EventKind::WriteMem: {
    const Term *Addr = RW.simplify(substTerm(E.Addr, C));
    const Term *Val = RW.simplify(substTerm(E.Val, C));
    for (MemChunk &M : C.Mems) {
      if (M.NBytes != E.NBytes)
        continue;
      if (!prove(TB.eqTerm(Addr, M.Addr), C))
        continue;
      M.Val = Val;
      return Step::Ok;
    }
    for (MemArrayChunk &A : C.Arrays) {
      if (A.ElemBytes != E.NBytes)
        continue;
      unsigned Count = unsigned(A.Elems.size());
      const Term *Off = TB.bvSub(Addr, A.Base);
      const Term *InRange = TB.andTerm(
          TB.bvUlt(Off, TB.constBV(64, uint64_t(Count) * A.ElemBytes)),
          TB.eqTerm(TB.bvURem(Off, TB.constBV(64, A.ElemBytes)),
                    TB.constBV(64, 0)));
      if (!prove(InRange, C))
        continue;
      const Term *Idx = RW.simplify(
          TB.bvUDiv(Off, TB.constBV(64, A.ElemBytes)));
      if (auto CIdx = concretize(Idx, C)) {
        A.Elems[size_t(CIdx->toUInt64())] = Val;
      } else {
        for (unsigned K = 0; K < Count; ++K)
          A.Elems[K] = RW.simplify(TB.iteTerm(
              TB.eqTerm(Idx, TB.constBV(64, K)), Val, A.Elems[K]));
      }
      return Step::Ok;
    }
    if (auto CA = concretize(Addr, C)) {
      uint64_t A = CA->toUInt64();
      for (const MmioChunk &M : C.Mmios) {
        if (A < M.Base || A + E.NBytes > M.Base + M.Size)
          continue;
        IoSpecPtr S = resolveIoState(C.Io, C);
        if (!S || S->kind() != IoSpecNode::Kind::Write || S->addr() != A ||
            S->nbytes() != E.NBytes) {
          fail("MMIO write at " + Addr->toString() +
               " not allowed by the IO specification");
          return Step::Failed;
        }
        if (!prove(S->writeAllowed(Val, TB), C)) {
          fail("MMIO write value not allowed by the IO specification");
          return Step::Failed;
        }
        C.Io = S->next();
        return Step::Ok;
      }
    }
    fail("memory write at " + Addr->toString() +
         " matches no |->M / |->*M / |->IO chunk");
    return Step::Failed;
  }
  }
  fail("internal: unhandled event kind");
  return Step::Failed;
}

bool ProofEngine::wpTrace(const Trace &T, Ctx C, unsigned Budget) {
  // Cooperative cancellation: one relaxed atomic load per event batch (the
  // SAT core polls the same token at much finer grain).
  if (Solver.limits().Cancel.cancelled())
    return fail("proof search cancelled", support::ErrorCode::Cancelled);
  for (const Event &E : T.Events) {
    Step S = wpEvent(E, C);
    if (S == Step::Failed)
      return false;
    if (S == Step::Pruned)
      return true;
  }
  if (T.hasCases()) { // hoare-cases
    for (const Trace &Sub : T.Cases)
      if (!wpTrace(Sub, C, Budget))
        return false;
    return true;
  }
  return wpInstrEnd(std::move(C), Budget);
}

bool ProofEngine::wpInstrEnd(Ctx C, unsigned Budget) {
  auto PcIt = C.Regs.find(Reg(PcReg));
  if (PcIt == C.Regs.end())
    return fail("no points-to chunk for the PC register " + PcReg);
  const Term *Pc = PcIt->second;

  // hoare-instr-pre: a provably matching a @@ Q ends the path by proving Q.
  for (const InstrPreChunk &I : C.InstrPres) {
    if (!prove(TB.eqTerm(Pc, I.Addr), C))
      continue;
    if (!entail(*I.Q, C, I.Args))
      return false;
    ++Stats.PathsVerified;
    return true;
  }

  // Assumed function contract: havoc clobbers, assume the relational post,
  // resume at the return address.
  for (const ContractChunk &Co : C.Contracts) {
    if (!prove(TB.eqTerm(Pc, Co.Addr), C))
      continue;
    return applyContract(*Co.C, std::move(C), Budget);
  }

  // hoare-instr: continue into the next instruction's trace.
  auto CA = concretize(Pc, C);
  if (!CA)
    return fail("jump target " + Pc->toString() +
                " is neither a known instruction nor a @@ chunk");
  auto It = Instrs.find(CA->toUInt64());
  if (It == Instrs.end())
    return fail("jump to " + CA->toHexString() +
                ": no instruction and no @@ chunk there (E(a) termination "
                "is not part of any registered spec)");
  if (Budget == 0)
    return fail("instruction budget exhausted at " + CA->toHexString() +
                    " (missing loop invariant?)",
                support::ErrorCode::InstrBudgetExhausted);
  if (getenv("ISLARIS_DEBUG_SLOW"))
    fprintf(stderr, "[instr %s budget=%u pure=%zu]\n",
            CA->toHexString().c_str(), Budget, C.Pure.size());
  ++Stats.InstructionsWalked;
  C.Subst.clear(); // trace variables are per instruction
  return wpTrace(*It->second, std::move(C), Budget - 1);
}

bool ProofEngine::applyContract(const Contract &Co, Ctx C, unsigned Budget) {
  auto RetIt = C.Regs.find(Co.RetReg);
  if (RetIt == C.Regs.end())
    return fail("contract " + Co.Name + ": no chunk for return register " +
                Co.RetReg.toString());
  const Term *Ret = RetIt->second;

  // Snapshot pre-call values, then havoc the clobbers.  A contract post
  // reading a register the context does not own is a spec bug: flag it and
  // hand the post a throwaway unknown so evaluation stays defined, then
  // fail the path with a SpecError below.
  std::unordered_map<Reg, const Term *, RegHash> Pre = C.Regs;
  bool UnownedRead = false;
  std::string UnownedName;
  auto unowned = [&](const Reg &R) -> const Term * {
    UnownedRead = true;
    if (UnownedName.empty())
      UnownedName = R.toString();
    return TB.freshVar(smt::Sort::bitvec(64),
                       "unowned" + std::to_string(++HavocCounter));
  };
  auto preVal = [&](const Reg &R) -> const Term * {
    auto It = Pre.find(R);
    if (It == Pre.end())
      return unowned(R);
    return It->second;
  };
  for (const Reg &R : Co.Clobbers) {
    auto It = C.Regs.find(R);
    if (It == C.Regs.end())
      return fail("contract " + Co.Name + ": no chunk for clobbered " +
                  R.toString());
    // Number the havoc variables: several applications of the same
    // contract along one path must not print identically, or the goal
    // closures fed to the cross-run side-condition cache would be
    // ambiguous (and excluded from caching).
    It->second =
        TB.freshVar(smt::Sort::bitvec(It->second->width()),
                    "ret" + std::to_string(++HavocCounter) + "_" +
                        R.toString());
  }
  auto postVal = [&](const Reg &R) -> const Term * {
    auto It = C.Regs.find(R);
    if (It == C.Regs.end())
      return unowned(R);
    return It->second;
  };
  if (Co.Post)
    for (const Term *P : Co.Post(TB, preVal, postVal))
      C.Pure.push_back(P);
  if (UnownedRead)
    return fail("contract " + Co.Name + ": post reads register " +
                    UnownedName + " the context does not own",
                support::ErrorCode::SpecError);

  C.Regs[Reg(PcReg)] = Ret;
  return wpInstrEnd(std::move(C), Budget);
}

//===----------------------------------------------------------------------===//
// Entry points.
//===----------------------------------------------------------------------===//

bool ProofEngine::verifySpec(uint64_t Addr, const Spec *S) {
  Error.clear();
  DiagV = support::Diag();
  GaveUp = false;
  if (!RegError.empty())
    return fail(RegError, support::ErrorCode::SpecError);
  auto Start = std::chrono::steady_clock::now();
  double SolverBefore = Solver.stats().TotalSeconds;

  Ctx C;
  assumeSpec(*S, C);
  // Löb: all registered specs are available in the context.
  for (const auto &[A, Q] : Registered)
    C.InstrPres.push_back({TB.constBV(64, A), Q, {}});
  // Entry: the PC starts at the spec's address.
  C.Regs[Reg(PcReg)] = TB.constBV(64, Addr);

  auto It = Instrs.find(Addr);
  bool Ok;
  if (It == Instrs.end()) {
    Ok = fail("registered spec at " + BitVec(64, Addr).toHexString() +
              " has no instruction");
  } else {
    ++Stats.InstructionsWalked;
    Ok = wpTrace(*It->second, std::move(C), MaxInstrsPerPath);
  }

  if (GaveUp) {
    // Some check() during the walk answered Unknown.  Whatever verdict the
    // walk reached may rest on a missed prune or an unproven equality, so
    // it is withdrawn; the sticky diagnostic attributes the give-up.
    Ok = false;
    if (Error.empty())
      noteSolverGaveUp("proof search (give-up rolled back by a "
                       "speculative entailment)");
    else if (!DiagV)
      DiagV = support::Diag::error(
          Solver.limits().Cancel.cancelled()
              ? support::ErrorCode::Cancelled
              : support::ErrorCode::SolverBudgetExceeded,
          "proof-engine", Error);
  }

  Stats.SolverQueries = Solver.stats().NumChecks;
  Stats.SolverSatCalls = Solver.stats().NumSatCalls;
  Stats.SolverMemoHits = Solver.stats().NumMemoHits;
  Stats.SolverStoreHits = Solver.stats().NumStoreHits;
  Stats.SideCondSeconds += Solver.stats().TotalSeconds - SolverBefore;
  Stats.TotalSeconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Ok;
}

bool ProofEngine::verifyAll() {
  for (const auto &[Addr, S] : Registered)
    if (!verifySpec(Addr, S))
      return false;
  return true;
}
