//===- models/aarch64_model.cpp - Armv8-A mini-Sail model ----------------------===//
//
// An Armv8-A (AArch64) subset model in mini-Sail, structured like the Sail
// ARMv8.5-A specification derived from the Arm-internal ASL: a decode
// hierarchy dispatching to per-class execute functions over shared helpers
// (AddWithCarry, banked SP selection, ConditionHolds, exception entry and
// return, alignment-checked memory access, system-register moves).
//
// Covered instruction classes (64-bit, little-endian, EL0-EL2):
//   MOVZ/MOVN/MOVK; ADD/SUB(S) immediate and shifted-register (incl. SP and
//   CMP/CMN aliases); AND/ORR/EOR/ANDS shifted-register (incl. MOV/TST);
//   UBFM/SBFM shift aliases (LSL/LSR/ASR immediate); RBIT; LDR/STR bytes,
//   half, word, doubleword with unsigned-immediate and register-offset
//   addressing (incl. LDRSB/LDRSW); CBZ/CBNZ; TBZ/TBNZ; B.cond; B/BL;
//   BR/BLR/RET; ERET; HVC; NOP; MSR/MRS over 22 system registers.
//
//===----------------------------------------------------------------------===//

#include "models/Models.h"

#include "sail/Parser.h"

#include <cstdio>
#include <cstdlib>

static const char *Aarch64Src = R"SAIL(
// ===== Armv8-A register file ==============================================

register R0 : bits(64)    register R1 : bits(64)    register R2 : bits(64)
register R3 : bits(64)    register R4 : bits(64)    register R5 : bits(64)
register R6 : bits(64)    register R7 : bits(64)    register R8 : bits(64)
register R9 : bits(64)    register R10 : bits(64)   register R11 : bits(64)
register R12 : bits(64)   register R13 : bits(64)   register R14 : bits(64)
register R15 : bits(64)   register R16 : bits(64)   register R17 : bits(64)
register R18 : bits(64)   register R19 : bits(64)   register R20 : bits(64)
register R21 : bits(64)   register R22 : bits(64)   register R23 : bits(64)
register R24 : bits(64)   register R25 : bits(64)   register R26 : bits(64)
register R27 : bits(64)   register R28 : bits(64)   register R29 : bits(64)
register R30 : bits(64)

register _PC : bits(64)

// Banked stack pointers, one per exception level.
register SP_EL0 : bits(64)   register SP_EL1 : bits(64)
register SP_EL2 : bits(64)   register SP_EL3 : bits(64)

// Processor state: current EL, stack-pointer select, NZCV, DAIF masks.
register PSTATE : struct { N : bits(1), Z : bits(1), C : bits(1),
                           V : bits(1), D : bits(1), A : bits(1),
                           I : bits(1), F : bits(1), SP : bits(1),
                           EL : bits(2) }

// System registers reachable via MSR/MRS in this model.
register VBAR_EL1 : bits(64)     register VBAR_EL2 : bits(64)
register SCTLR_EL1 : bits(64)    register SCTLR_EL2 : bits(64)
register HCR_EL2 : bits(64)
register SPSR_EL1 : bits(64)     register SPSR_EL2 : bits(64)
register ELR_EL1 : bits(64)      register ELR_EL2 : bits(64)
register ESR_EL1 : bits(64)      register ESR_EL2 : bits(64)
register FAR_EL1 : bits(64)      register FAR_EL2 : bits(64)
register TPIDR_EL2 : bits(64)    register MAIR_EL2 : bits(64)
register TCR_EL2 : bits(64)      register TTBR0_EL2 : bits(64)
register MDCR_EL2 : bits(64)     register CPTR_EL2 : bits(64)
register HSTR_EL2 : bits(64)     register VTTBR_EL2 : bits(64)
register VTCR_EL2 : bits(64)     register CNTHCTL_EL2 : bits(64)
register CNTVOFF_EL2 : bits(64)

// ===== General-purpose register access ====================================
// Register 31 reads as zero and discards writes (XZR) in these contexts.

function rget(n : bits(5)) -> bits(64) = {
  if n == 0b00000 then { return R0; }
  else if n == 0b00001 then { return R1; }
  else if n == 0b00010 then { return R2; }
  else if n == 0b00011 then { return R3; }
  else if n == 0b00100 then { return R4; }
  else if n == 0b00101 then { return R5; }
  else if n == 0b00110 then { return R6; }
  else if n == 0b00111 then { return R7; }
  else if n == 0b01000 then { return R8; }
  else if n == 0b01001 then { return R9; }
  else if n == 0b01010 then { return R10; }
  else if n == 0b01011 then { return R11; }
  else if n == 0b01100 then { return R12; }
  else if n == 0b01101 then { return R13; }
  else if n == 0b01110 then { return R14; }
  else if n == 0b01111 then { return R15; }
  else if n == 0b10000 then { return R16; }
  else if n == 0b10001 then { return R17; }
  else if n == 0b10010 then { return R18; }
  else if n == 0b10011 then { return R19; }
  else if n == 0b10100 then { return R20; }
  else if n == 0b10101 then { return R21; }
  else if n == 0b10110 then { return R22; }
  else if n == 0b10111 then { return R23; }
  else if n == 0b11000 then { return R24; }
  else if n == 0b11001 then { return R25; }
  else if n == 0b11010 then { return R26; }
  else if n == 0b11011 then { return R27; }
  else if n == 0b11100 then { return R28; }
  else if n == 0b11101 then { return R29; }
  else if n == 0b11110 then { return R30; }
  else { return 0x0000000000000000; };
}

function rset(n : bits(5), value : bits(64)) -> unit = {
  if n == 0b00000 then { R0 = value; }
  else if n == 0b00001 then { R1 = value; }
  else if n == 0b00010 then { R2 = value; }
  else if n == 0b00011 then { R3 = value; }
  else if n == 0b00100 then { R4 = value; }
  else if n == 0b00101 then { R5 = value; }
  else if n == 0b00110 then { R6 = value; }
  else if n == 0b00111 then { R7 = value; }
  else if n == 0b01000 then { R8 = value; }
  else if n == 0b01001 then { R9 = value; }
  else if n == 0b01010 then { R10 = value; }
  else if n == 0b01011 then { R11 = value; }
  else if n == 0b01100 then { R12 = value; }
  else if n == 0b01101 then { R13 = value; }
  else if n == 0b01110 then { R14 = value; }
  else if n == 0b01111 then { R15 = value; }
  else if n == 0b10000 then { R16 = value; }
  else if n == 0b10001 then { R17 = value; }
  else if n == 0b10010 then { R18 = value; }
  else if n == 0b10011 then { R19 = value; }
  else if n == 0b10100 then { R20 = value; }
  else if n == 0b10101 then { R21 = value; }
  else if n == 0b10110 then { R22 = value; }
  else if n == 0b10111 then { R23 = value; }
  else if n == 0b11000 then { R24 = value; }
  else if n == 0b11001 then { R25 = value; }
  else if n == 0b11010 then { R26 = value; }
  else if n == 0b11011 then { R27 = value; }
  else if n == 0b11100 then { R28 = value; }
  else if n == 0b11101 then { R29 = value; }
  else if n == 0b11110 then { R30 = value; }
  else { };
}

// 32-bit views (W registers): reads truncate, writes zero-extend.
function wget(n : bits(5)) -> bits(32) = { return truncate(rget(n), 32); }
function wset(n : bits(5), value : bits(32)) -> unit = {
  rset(n, zero_extend(value, 64));
}

// ===== Banked stack pointer (the Fig. 2 aget_SP/aset_SP) ==================

function aget_SP() -> bits(64) = {
  if PSTATE.SP == 0b0 then { return SP_EL0; }
  else if PSTATE.EL == 0b00 then { return SP_EL0; }
  else if PSTATE.EL == 0b01 then { return SP_EL1; }
  else if PSTATE.EL == 0b10 then { return SP_EL2; }
  else { return SP_EL3; };
}

function aset_SP(value : bits(64)) -> unit = {
  if PSTATE.SP == 0b0 then { SP_EL0 = value; }
  else if PSTATE.EL == 0b00 then { SP_EL0 = value; }
  else if PSTATE.EL == 0b01 then { SP_EL1 = value; }
  else if PSTATE.EL == 0b10 then { SP_EL2 = value; }
  else { SP_EL3 = value; };
}

// ===== Control flow helpers ===============================================

function next_instr() -> unit = { _PC = _PC + 0x0000000000000004; }
function branch_to(target : bits(64)) -> unit = { _PC = target; }
function pc_rel(offset : bits(64)) -> unit = { _PC = _PC + offset; }

// ===== AddWithCarry: result and NZCV, computed even when discarded ========

function AddWithCarry64(x : bits(64), y : bits(64), carry_in : bits(1))
    -> bits(68) = {
  let usum = zero_extend(x, 65) + zero_extend(y, 65)
           + zero_extend(carry_in, 65);
  let ssum = sign_extend(x, 66) + sign_extend(y, 66)
           + zero_extend(carry_in, 66);
  let result = usum[63 .. 0];
  let n = result[63];
  let z = if result == 0x0000000000000000 then 0b1 else 0b0;
  let c = if zero_extend(result, 65) == usum then 0b0 else 0b1;
  let v = if sign_extend(result, 66) == ssum then 0b0 else 0b1;
  return result @ n @ z @ c @ v;
}

function AddWithCarry32(x : bits(32), y : bits(32), carry_in : bits(1))
    -> bits(36) = {
  let usum = zero_extend(x, 33) + zero_extend(y, 33)
           + zero_extend(carry_in, 33);
  let ssum = sign_extend(x, 34) + sign_extend(y, 34)
           + zero_extend(carry_in, 34);
  let result = usum[31 .. 0];
  let n = result[31];
  let z = if result == 0x00000000 then 0b1 else 0b0;
  let c = if zero_extend(result, 33) == usum then 0b0 else 0b1;
  let v = if sign_extend(result, 34) == ssum then 0b0 else 0b1;
  return result @ n @ z @ c @ v;
}

function set_flags(nzcv : bits(4)) -> unit = {
  PSTATE.N = nzcv[3];
  PSTATE.Z = nzcv[2];
  PSTATE.C = nzcv[1];
  PSTATE.V = nzcv[0];
}

function ConditionHolds(cond : bits(4)) -> bool = {
  let c3 = cond[3 .. 1];
  var result = false;
  if c3 == 0b000 then { result = PSTATE.Z == 0b1; }
  else if c3 == 0b001 then { result = PSTATE.C == 0b1; }
  else if c3 == 0b010 then { result = PSTATE.N == 0b1; }
  else if c3 == 0b011 then { result = PSTATE.V == 0b1; }
  else if c3 == 0b100 then { result = PSTATE.C == 0b1 & PSTATE.Z == 0b0; }
  else if c3 == 0b101 then { result = PSTATE.N == PSTATE.V; }
  else if c3 == 0b110 then { result = PSTATE.N == PSTATE.V
                                    & PSTATE.Z == 0b0; }
  else { result = true; };
  if cond[0] == 0b1 & cond != 0b1111 then { result = !result; };
  return result;
}

// ===== Exception entry and return =========================================

function pstate_to_spsr() -> bits(64) = {
  return zero_extend(PSTATE.N @ PSTATE.Z @ PSTATE.C @ PSTATE.V
       @ 0b000000000000000000
       @ PSTATE.D @ PSTATE.A @ PSTATE.I @ PSTATE.F
       @ 0b00 @ PSTATE.EL @ 0b0 @ PSTATE.SP, 64);
}

function spsr_to_pstate(spsr : bits(64)) -> unit = {
  if spsr[4] == 0b1 then { throw("return to AArch32 is unsupported"); };
  PSTATE.N = spsr[31];
  PSTATE.Z = spsr[30];
  PSTATE.C = spsr[29];
  PSTATE.V = spsr[28];
  PSTATE.D = spsr[9];
  PSTATE.A = spsr[8];
  PSTATE.I = spsr[7];
  PSTATE.F = spsr[6];
  PSTATE.EL = spsr[3 .. 2];
  PSTATE.SP = spsr[0];
}

// AArch64.TakeException (simplified to EL1/EL2, SCTLR.EE=0): vector into
// VBAR_ELx at the offset selected by same-vs-lower EL and SP selection,
// bank PSTATE into SPSR_ELx, record the syndrome and (for aborts) the
// fault address, mask interrupts, and switch to SP_ELx.
function take_exception(target_el : bits(2), esr : bits(64),
                        ret_addr : bits(64), is_abort : bool,
                        fault_addr : bits(64)) -> unit = {
  var offset = 0x0000000000000000;
  if PSTATE.EL <u target_el then { offset = 0x0000000000000400; }
  else if PSTATE.SP == 0b1 then { offset = 0x0000000000000200; };
  let spsr = pstate_to_spsr();
  if target_el == 0b01 then {
    SPSR_EL1 = spsr;
    ELR_EL1 = ret_addr;
    ESR_EL1 = esr;
    if is_abort then { FAR_EL1 = fault_addr; };
    branch_to(VBAR_EL1 + offset);
  } else if target_el == 0b10 then {
    SPSR_EL2 = spsr;
    ELR_EL2 = ret_addr;
    ESR_EL2 = esr;
    if is_abort then { FAR_EL2 = fault_addr; };
    branch_to(VBAR_EL2 + offset);
  } else {
    throw("exceptions to EL0/EL3 are unsupported");
  };
  PSTATE.EL = target_el;
  PSTATE.SP = 0b1;
  PSTATE.D = 0b1;
  PSTATE.A = 0b1;
  PSTATE.I = 0b1;
  PSTATE.F = 0b1;
}

function execute_eret() -> unit = {
  var spsr = 0x0000000000000000;
  var target = 0x0000000000000000;
  if PSTATE.EL == 0b01 then { spsr = SPSR_EL1; target = ELR_EL1; }
  else if PSTATE.EL == 0b10 then { spsr = SPSR_EL2; target = ELR_EL2; }
  else { throw("eret at EL0/EL3 is unsupported"); };
  if PSTATE.EL <u spsr[3 .. 2] then {
    throw("illegal exception return to a higher EL");
  };
  // Returning to EL1 in AArch64 state requires HCR_EL2.RW = 1 (this is the
  // bit 31 that Fig. 9 line 6 installs).
  if PSTATE.EL == 0b10 & spsr[3 .. 2] == 0b01 then {
    if HCR_EL2[31] != 0b1 then {
      throw("eret to AArch32 EL1 (HCR_EL2.RW = 0) is unsupported");
    };
  };
  spsr_to_pstate(spsr);
  branch_to(target);
}

// ===== Memory access with alignment checking ==============================

function current_sctlr_a() -> bits(1) = {
  if PSTATE.EL == 0b10 then { return SCTLR_EL2[1]; }
  else { return SCTLR_EL1[1]; };
}

function alignment_fault(addr : bits(64)) -> unit = {
  var target = PSTATE.EL;
  if target == 0b00 then { target = 0b01; };
  var ec = 0b100101;                      // data abort, same EL
  if PSTATE.EL <u target then { ec = 0b100100; };
  // ISS.DFSC = 0b100001: alignment fault.
  let esr = zero_extend(ec @ 0b1 @ 0b0000000000000000000 @ 0b100001, 64);
  take_exception(target, esr, _PC, true, addr);
}

// ===== Decode: data processing (immediate) ================================

function addsub_immediate(opcode : bits(32)) -> unit = {
  let sf = opcode[31];
  let op = opcode[30];
  let s_flag = opcode[29];
  let sh = opcode[22];
  let rn = opcode[9 .. 5];
  let rd = opcode[4 .. 0];
  var imm = zero_extend(opcode[21 .. 10], 64);
  if sh == 0b1 then { imm = imm << 12; };
  if sf == 0b1 then {
    let op1 = if rn == 0b11111 then aget_SP() else rget(rn);
    var op2 = imm;
    var carry = 0b0;
    if op == 0b1 then { op2 = ~op2; carry = 0b1; };
    let res = AddWithCarry64(op1, op2, carry);
    let result = res[67 .. 4];
    if s_flag == 0b1 then { set_flags(res[3 .. 0]); rset(rd, result); }
    else if rd == 0b11111 then { aset_SP(result); }
    else { rset(rd, result); };
  } else {
    let op1 = if rn == 0b11111 then truncate(aget_SP(), 32)
              else wget(rn);
    var op2 = truncate(imm, 32);
    var carry = 0b0;
    if op == 0b1 then { op2 = ~op2; carry = 0b1; };
    let res = AddWithCarry32(op1, op2, carry);
    let result = res[35 .. 4];
    if s_flag == 0b1 then { set_flags(res[3 .. 0]); wset(rd, result); }
    else if rd == 0b11111 then { aset_SP(zero_extend(result, 64)); }
    else { wset(rd, result); };
  };
  next_instr();
}

function move_wide(opcode : bits(32)) -> unit = {
  if opcode[31] != 0b1 then { throw("32-bit move-wide is unsupported"); };
  let opc = opcode[30 .. 29];
  let hw = opcode[22 .. 21];
  let imm16 = opcode[20 .. 5];
  let rd = opcode[4 .. 0];
  let sh = zero_extend(hw, 64) << 4;
  if opc == 0b10 then {
    rset(rd, zero_extend(imm16, 64) << sh);
  } else if opc == 0b00 then {
    rset(rd, ~(zero_extend(imm16, 64) << sh));
  } else if opc == 0b11 then {
    let mask = zero_extend(0xffff, 64) << sh;
    rset(rd, (rget(rd) & ~mask) | (zero_extend(imm16, 64) << sh));
  } else {
    throw("unallocated move-wide opc");
  };
  next_instr();
}

// UBFM/SBFM, restricted to the shift aliases LSR/ASR/LSL (immediate).
function bitfield(opcode : bits(32)) -> unit = {
  if opcode[31] != 0b1 | opcode[22] != 0b1 then {
    throw("32-bit bitfield is unsupported");
  };
  let opc = opcode[30 .. 29];
  let immr = opcode[21 .. 16];
  let imms = opcode[15 .. 10];
  let rn = opcode[9 .. 5];
  let rd = opcode[4 .. 0];
  if opc == 0b10 then {
    if imms == 0b111111 then {
      rset(rd, rget(rn) >> zero_extend(immr, 64));           // LSR alias
    } else if imms + 0b000001 == immr then {
      let amount = 0b111111 - imms;
      rset(rd, rget(rn) << zero_extend(amount, 64));         // LSL alias
    } else {
      throw("general UBFM is unsupported");
    };
  } else if opc == 0b00 then {
    if imms == 0b111111 then {
      rset(rd, rget(rn) >>> zero_extend(immr, 64));          // ASR alias
    } else {
      throw("general SBFM is unsupported");
    };
  } else {
    throw("unallocated bitfield opc");
  };
  next_instr();
}

// ADR / ADRP: PC-relative address computation.
function pcreladdr(opcode : bits(32)) -> unit = {
  let rd = opcode[4 .. 0];
  let imm = opcode[23 .. 5] @ opcode[30 .. 29];
  if opcode[31] == 0b0 then {
    rset(rd, _PC + sign_extend(imm, 64));
  } else {
    let base = _PC & 0xfffffffffffff000;
    rset(rd, base + (sign_extend(imm, 64) << 12));
  };
  next_instr();
}

function decode_data_proc_imm(opcode : bits(32)) -> unit = {
  if opcode[28 .. 23] == 0b100010 then { addsub_immediate(opcode); }
  else if opcode[28 .. 23] == 0b100101 then { move_wide(opcode); }
  else if opcode[28 .. 23] == 0b100110 then { bitfield(opcode); }
  else if opcode[28 .. 24] == 0b10000 then { pcreladdr(opcode); }
  else { throw("unallocated data-processing (immediate)"); };
}

// ===== Decode: data processing (register) =================================

function shift_reg64(rm : bits(5), ty : bits(2), amount : bits(6))
    -> bits(64) = {
  let v = rget(rm);
  if ty == 0b00 then { return v << zero_extend(amount, 64); }
  else if ty == 0b01 then { return v >> zero_extend(amount, 64); }
  else if ty == 0b10 then { return v >>> zero_extend(amount, 64); }
  else { throw("ROR-shifted operands are unsupported"); };
}

function logical_shifted(opcode : bits(32)) -> unit = {
  if opcode[31] != 0b1 then { throw("32-bit logical is unsupported"); };
  let opc = opcode[30 .. 29];
  let n_flag = opcode[21];
  let rm = opcode[20 .. 16];
  let imm6 = opcode[15 .. 10];
  let rn = opcode[9 .. 5];
  let rd = opcode[4 .. 0];
  var op2 = shift_reg64(rm, opcode[23 .. 22], imm6);
  if n_flag == 0b1 then { op2 = ~op2; };
  let op1 = rget(rn);
  var result = op1 & op2;
  if opc == 0b01 then { result = op1 | op2; }
  else if opc == 0b10 then { result = op1 ^ op2; }
  else if opc == 0b11 then {
    let z = if result == 0x0000000000000000 then 0b1 else 0b0;
    set_flags(result[63] @ z @ 0b00);
  } else { };
  rset(rd, result);
  next_instr();
}

function addsub_shifted(opcode : bits(32)) -> unit = {
  if opcode[31] != 0b1 then {
    throw("32-bit add/sub (shifted register) is unsupported");
  };
  let op = opcode[30];
  let s_flag = opcode[29];
  let rm = opcode[20 .. 16];
  let imm6 = opcode[15 .. 10];
  let rn = opcode[9 .. 5];
  let rd = opcode[4 .. 0];
  var op2 = shift_reg64(rm, opcode[23 .. 22], imm6);
  var carry = 0b0;
  if op == 0b1 then { op2 = ~op2; carry = 0b1; };
  let res = AddWithCarry64(rget(rn), op2, carry);
  if s_flag == 0b1 then { set_flags(res[3 .. 0]); };
  rset(rd, res[67 .. 4]);
  next_instr();
}

function byte_reverse64(v : bits(64)) -> bits(64) = {
  return v[7 .. 0] @ v[15 .. 8] @ v[23 .. 16] @ v[31 .. 24]
       @ v[39 .. 32] @ v[47 .. 40] @ v[55 .. 48] @ v[63 .. 56];
}

function byte_reverse32(v : bits(32)) -> bits(32) = {
  return v[7 .. 0] @ v[15 .. 8] @ v[23 .. 16] @ v[31 .. 24];
}

function data_proc_1src(opcode : bits(32)) -> unit = {
  let rn = opcode[9 .. 5];
  let rd = opcode[4 .. 0];
  if opcode[15 .. 10] == 0b000000 then {   // RBIT
    if opcode[31] == 0b1 then { rset(rd, reverse_bits(rget(rn))); }
    else { wset(rd, reverse_bits(wget(rn))); };
    next_instr();
  } else if opcode[15 .. 10] == 0b000010 then {  // REV32 (sf=1) / REV (sf=0)
    if opcode[31] == 0b1 then {
      let v = rget(rn);
      rset(rd, byte_reverse32(v[63 .. 32]) @ byte_reverse32(v[31 .. 0]));
    } else {
      wset(rd, byte_reverse32(wget(rn)));
    };
    next_instr();
  } else if opcode[15 .. 10] == 0b000011 then {  // REV (64-bit)
    if opcode[31] != 0b1 then { throw("unallocated REV encoding"); };
    rset(rd, byte_reverse64(rget(rn)));
    next_instr();
  } else {
    throw("unallocated data-processing (1 source)");
  };
}

// UDIV / SDIV: Armv8-A division returns zero for a zero divisor and wraps
// on INT_MIN / -1.
function data_proc_2src(opcode : bits(32)) -> unit = {
  if opcode[31] != 0b1 then { throw("32-bit division is unsupported"); };
  let rm = opcode[20 .. 16];
  let rn = opcode[9 .. 5];
  let rd = opcode[4 .. 0];
  let op1 = rget(rn);
  let op2 = rget(rm);
  if opcode[15 .. 10] == 0b000010 then {         // UDIV
    if op2 == 0x0000000000000000 then { rset(rd, 0x0000000000000000); }
    else { rset(rd, op1 /u op2); };
    next_instr();
  } else if opcode[15 .. 10] == 0b000011 then {  // SDIV
    if op2 == 0x0000000000000000 then {
      rset(rd, 0x0000000000000000);
    } else {
      var a = op1;
      var b = op2;
      if a[63] == 0b1 then { a = -a; };
      if b[63] == 0b1 then { b = -b; };
      var q = a /u b;
      if op1[63] != op2[63] then { q = -q; };
      rset(rd, q);
    };
    next_instr();
  } else {
    throw("unallocated data-processing (2 source)");
  };
}

// CSEL / CSINC / CSINV / CSNEG: conditional select.
function cond_select(opcode : bits(32)) -> unit = {
  if opcode[31] != 0b1 then {
    throw("32-bit conditional select is unsupported");
  };
  let op = opcode[30];
  let op2 = opcode[11 .. 10];
  let rm = opcode[20 .. 16];
  let cond = opcode[15 .. 12];
  let rn = opcode[9 .. 5];
  let rd = opcode[4 .. 0];
  if ConditionHolds(cond) then {
    rset(rd, rget(rn));
  } else {
    var alt = rget(rm);
    if op == 0b1 then { alt = ~alt; };                 // CSINV / CSNEG
    if op2 == 0b01 then {
      alt = alt + 0x0000000000000001;                  // CSINC / CSNEG
    } else if op2 != 0b00 then {
      throw("unallocated conditional-select op2");
    };
    rset(rd, alt);
  };
  next_instr();
}

function decode_data_proc_reg(opcode : bits(32)) -> unit = {
  if opcode[28 .. 24] == 0b01010 then { logical_shifted(opcode); }
  else if opcode[28 .. 24] == 0b01011 & opcode[21] == 0b0 then {
    addsub_shifted(opcode);
  } else if opcode[30 .. 21] == 0b1011010110 then {
    data_proc_1src(opcode);
  } else if opcode[30 .. 21] == 0b0011010110 & opcode[29] == 0b0 then {
    data_proc_2src(opcode);
  } else if opcode[28 .. 21] == 0b11010100 & opcode[29] == 0b0 then {
    cond_select(opcode);
  } else {
    throw("unallocated data-processing (register)");
  };
}

// ===== Decode: loads and stores ===========================================

function ldst_common(size : bits(2), opc : bits(2), addr : bits(64),
                     rt : bits(5)) -> unit = {
  if size == 0b00 then {
    if opc == 0b00 then { write_mem(addr, truncate(rget(rt), 8), 1); }
    else if opc == 0b01 then {
      rset(rt, zero_extend(read_mem(addr, 1), 64));
    } else if opc == 0b10 then {                    // LDRSB (64-bit)
      rset(rt, sign_extend(read_mem(addr, 1), 64));
    } else { throw("unallocated byte load/store opc"); };
  } else if size == 0b01 then {
    if current_sctlr_a() == 0b1
       & (addr & 0x0000000000000001) != 0x0000000000000000 then {
      alignment_fault(addr);
      return;
    };
    if opc == 0b00 then { write_mem(addr, truncate(rget(rt), 16), 2); }
    else if opc == 0b01 then {
      rset(rt, zero_extend(read_mem(addr, 2), 64));
    } else { throw("unallocated halfword load/store opc"); };
  } else if size == 0b10 then {
    if current_sctlr_a() == 0b1
       & (addr & 0x0000000000000003) != 0x0000000000000000 then {
      alignment_fault(addr);
      return;
    };
    if opc == 0b00 then { write_mem(addr, truncate(rget(rt), 32), 4); }
    else if opc == 0b01 then {
      rset(rt, zero_extend(read_mem(addr, 4), 64));
    } else if opc == 0b10 then {                    // LDRSW
      rset(rt, sign_extend(read_mem(addr, 4), 64));
    } else { throw("unallocated word load/store opc"); };
  } else {
    if current_sctlr_a() == 0b1
       & (addr & 0x0000000000000007) != 0x0000000000000000 then {
      alignment_fault(addr);
      return;
    };
    if opc == 0b00 then { write_mem(addr, rget(rt), 8); }
    else if opc == 0b01 then { rset(rt, read_mem(addr, 8)); }
    else { throw("unallocated doubleword load/store opc"); };
  };
  next_instr();
}

function decode_loads_stores(opcode : bits(32)) -> unit = {
  if opcode[29 .. 27] != 0b111 | opcode[26] != 0b0 then {
    throw("SIMD/FP and exotic load/store classes are unsupported");
  };
  let size = opcode[31 .. 30];
  let opc = opcode[23 .. 22];
  let rn = opcode[9 .. 5];
  let rt = opcode[4 .. 0];
  let base = if rn == 0b11111 then aget_SP() else rget(rn);
  if opcode[25 .. 24] == 0b01 then {
    // Unsigned immediate, scaled by the access size.
    let imm12 = zero_extend(opcode[21 .. 10], 64);
    let addr = base + (imm12 << zero_extend(size, 64));
    ldst_common(size, opc, addr, rt);
  } else if opcode[25 .. 24] == 0b00 & opcode[21] == 0b1
           & opcode[11 .. 10] == 0b10 then {
    // Register offset; only LSL/UXTX extend (option 011) is modeled.
    if opcode[15 .. 13] != 0b011 then {
      throw("register-offset extend option is unsupported");
    };
    var offset = rget(opcode[20 .. 16]);
    if opcode[12] == 0b1 then { offset = offset << zero_extend(size, 64); };
    ldst_common(size, opc, base + offset, rt);
  } else {
    throw("unallocated load/store addressing mode");
  };
}

// ===== Decode: branches, exceptions, system ===============================

function compare_and_branch(opcode : bits(32)) -> unit = {
  let t = rget(opcode[4 .. 0]);
  let offset = sign_extend(opcode[23 .. 5] @ 0b00, 64);
  var iszero = false;
  if opcode[31] == 0b1 then { iszero = t == 0x0000000000000000; }
  else { iszero = truncate(t, 32) == 0x00000000; };
  var taken = iszero;
  if opcode[24] == 0b1 then { taken = !iszero; };
  if taken then { pc_rel(offset); } else { next_instr(); };
}

function test_and_branch(opcode : bits(32)) -> unit = {
  let bitpos = opcode[31] @ opcode[23 .. 19];
  let t = rget(opcode[4 .. 0]);
  let bitval = truncate(t >> zero_extend(bitpos, 64), 1);
  let offset = sign_extend(opcode[18 .. 5] @ 0b00, 64);
  var taken = bitval == 0b0;
  if opcode[24] == 0b1 then { taken = bitval == 0b1; };
  if taken then { pc_rel(offset); } else { next_instr(); };
}

function cond_branch(opcode : bits(32)) -> unit = {
  if ConditionHolds(opcode[3 .. 0]) then {
    pc_rel(sign_extend(opcode[23 .. 5] @ 0b00, 64));
  } else {
    next_instr();
  };
}

function uncond_branch_imm(opcode : bits(32)) -> unit = {
  let offset = sign_extend(opcode[25 .. 0] @ 0b00, 64);
  if opcode[31] == 0b1 then { R30 = _PC + 0x0000000000000004; };
  pc_rel(offset);
}

function uncond_branch_reg(opcode : bits(32)) -> unit = {
  let opc = opcode[24 .. 21];
  let rn = opcode[9 .. 5];
  if opc == 0b0000 then { branch_to(rget(rn)); }
  else if opc == 0b0001 then {
    let target = rget(rn);
    R30 = _PC + 0x0000000000000004;
    branch_to(target);
  }
  else if opc == 0b0010 then { branch_to(rget(rn)); }   // RET
  else if opc == 0b0100 & rn == 0b11111 then { execute_eret(); }
  else { throw("unallocated branch (register)"); };
}

function exception_gen(opcode : bits(32)) -> unit = {
  let imm16 = opcode[20 .. 5];
  if opcode[23 .. 21] == 0b000 & opcode[4 .. 0] == 0b00010 then {  // HVC
    if PSTATE.EL == 0b00 then { throw("hvc from EL0 is unsupported"); };
    // EC = 0x16 (HVC from AArch64), IL = 1, ISS = imm16.
    let esr = zero_extend(0b010110 @ 0b1 @ 0b000000000 @ imm16, 64);
    take_exception(0b10, esr, _PC + 0x0000000000000004, false,
                   0x0000000000000000);
  } else if opcode[23 .. 21] == 0b000 & opcode[4 .. 0] == 0b00001 then {
    throw("svc is unsupported in this model");
  } else {
    throw("unallocated exception generation");
  };
}

// MSR/MRS system-register access.  The selector packs
// op0:op1:CRn:CRm:op2 into 16 bits, as in the Arm system-register space.
function sys_read(key : bits(16)) -> bits(64) = {
  if key == 0xc600 then { return VBAR_EL1; }
  else if key == 0xe600 then { return VBAR_EL2; }
  else if key == 0xe088 then { return HCR_EL2; }
  else if key == 0xc200 then { return SPSR_EL1; }
  else if key == 0xe200 then { return SPSR_EL2; }
  else if key == 0xc201 then { return ELR_EL1; }
  else if key == 0xe201 then { return ELR_EL2; }
  else if key == 0xc080 then { return SCTLR_EL1; }
  else if key == 0xe080 then { return SCTLR_EL2; }
  else if key == 0xc290 then { return ESR_EL1; }
  else if key == 0xe290 then { return ESR_EL2; }
  else if key == 0xc300 then { return FAR_EL1; }
  else if key == 0xe300 then { return FAR_EL2; }
  else if key == 0xe682 then { return TPIDR_EL2; }
  else if key == 0xe510 then { return MAIR_EL2; }
  else if key == 0xe102 then { return TCR_EL2; }
  else if key == 0xe100 then { return TTBR0_EL2; }
  else if key == 0xe089 then { return MDCR_EL2; }
  else if key == 0xe08a then { return CPTR_EL2; }
  else if key == 0xe08b then { return HSTR_EL2; }
  else if key == 0xe108 then { return VTTBR_EL2; }
  else if key == 0xe10a then { return VTCR_EL2; }
  else if key == 0xe708 then { return CNTHCTL_EL2; }
  else if key == 0xe703 then { return CNTVOFF_EL2; }
  else if key == 0xc212 then {                      // CurrentEL
    return zero_extend(PSTATE.EL @ 0b00, 64);
  }
  else { throw("unknown system register (MRS)"); };
}

function sys_write(key : bits(16), value : bits(64)) -> unit = {
  if key == 0xc600 then { VBAR_EL1 = value; }
  else if key == 0xe600 then { VBAR_EL2 = value; }
  else if key == 0xe088 then { HCR_EL2 = value; }
  else if key == 0xc200 then { SPSR_EL1 = value; }
  else if key == 0xe200 then { SPSR_EL2 = value; }
  else if key == 0xc201 then { ELR_EL1 = value; }
  else if key == 0xe201 then { ELR_EL2 = value; }
  else if key == 0xc080 then { SCTLR_EL1 = value; }
  else if key == 0xe080 then { SCTLR_EL2 = value; }
  else if key == 0xc290 then { ESR_EL1 = value; }
  else if key == 0xe290 then { ESR_EL2 = value; }
  else if key == 0xc300 then { FAR_EL1 = value; }
  else if key == 0xe300 then { FAR_EL2 = value; }
  else if key == 0xe682 then { TPIDR_EL2 = value; }
  else if key == 0xe510 then { MAIR_EL2 = value; }
  else if key == 0xe102 then { TCR_EL2 = value; }
  else if key == 0xe100 then { TTBR0_EL2 = value; }
  else if key == 0xe089 then { MDCR_EL2 = value; }
  else if key == 0xe08a then { CPTR_EL2 = value; }
  else if key == 0xe08b then { HSTR_EL2 = value; }
  else if key == 0xe108 then { VTTBR_EL2 = value; }
  else if key == 0xe10a then { VTCR_EL2 = value; }
  else if key == 0xe708 then { CNTHCTL_EL2 = value; }
  else if key == 0xe703 then { CNTVOFF_EL2 = value; }
  else { throw("unknown system register (MSR)"); };
}

function system_insn(opcode : bits(32)) -> unit = {
  if opcode == 0xd503201f then { next_instr(); }            // NOP
  else {
    let key = opcode[20 .. 5];
    let rt = opcode[4 .. 0];
    if opcode[21] == 0b1 then { rset(rt, sys_read(key)); }
    else { sys_write(key, rget(rt)); };
    next_instr();
  };
}

function decode_branches_exc_sys(opcode : bits(32)) -> unit = {
  if opcode[30 .. 26] == 0b00101 then { uncond_branch_imm(opcode); }
  else if opcode[30 .. 25] == 0b011010 then { compare_and_branch(opcode); }
  else if opcode[30 .. 25] == 0b011011 then { test_and_branch(opcode); }
  else if opcode[31 .. 24] == 0x54 & opcode[4] == 0b0 then {
    cond_branch(opcode);
  }
  else if opcode[31 .. 25] == 0b1101011 then { uncond_branch_reg(opcode); }
  else if opcode[31 .. 24] == 0xd4 then { exception_gen(opcode); }
  else if opcode[31 .. 22] == 0b1101010100 then { system_insn(opcode); }
  else { throw("unallocated branch/exception/system encoding"); };
}

// ===== Top-level decode (the decode64 of Fig. 2) ==========================

function decode(opcode : bits(32)) -> unit = {
  let op0 = opcode[28 .. 25];
  if op0 == 0b1000 | op0 == 0b1001 then { decode_data_proc_imm(opcode); }
  else if op0 == 0b1010 | op0 == 0b1011 then {
    decode_branches_exc_sys(opcode);
  }
  else if op0[2] == 0b1 & op0[0] == 0b0 then { decode_loads_stores(opcode); }
  else if op0[2 .. 0] == 0b101 then { decode_data_proc_reg(opcode); }
  else { throw("UNDEFINED"); };
}
)SAIL";

const char *islaris::models::aarch64Source() { return Aarch64Src; }

const islaris::sail::Model &islaris::models::aarch64Model() {
  static const sail::Model *M = [] {
    std::string Err;
    auto Parsed = sail::parseModel(Aarch64Src, Err);
    if (!Parsed) {
      std::fprintf(stderr, "aarch64 model: %s\n", Err.c_str());
      std::abort();
    }
    return Parsed.release();
  }();
  return *M;
}
