//===- models/rv64_model.cpp - RV64I mini-Sail model ---------------------------===//
//
// An RV64I subset model in mini-Sail, structured like the official
// sail-riscv specification: opcode-major decode dispatching to per-format
// execute functions, x0 hardwired to zero, sign-extended immediates.
//
// Covered: LUI, AUIPC, OP-IMM (ADDI/XORI/ORI/ANDI/SLTI/SLTIU/SLLI/SRLI/
// SRAI), OP (ADD/SUB/SLL/SLT/SLTU/XOR/SRL/SRA/OR/AND), loads (LB/LH/LW/LD/
// LBU/LHU/LWU), stores (SB/SH/SW/SD), branches (BEQ/BNE/BLT/BGE/BLTU/BGEU),
// JAL, JALR.
//
//===----------------------------------------------------------------------===//

#include "models/Models.h"

#include "sail/Parser.h"

#include <cstdio>
#include <cstdlib>

static const char *Rv64Src = R"SAIL(
// ===== RV64 register file =================================================

register x1 : bits(64)    register x2 : bits(64)    register x3 : bits(64)
register x4 : bits(64)    register x5 : bits(64)    register x6 : bits(64)
register x7 : bits(64)    register x8 : bits(64)    register x9 : bits(64)
register x10 : bits(64)   register x11 : bits(64)   register x12 : bits(64)
register x13 : bits(64)   register x14 : bits(64)   register x15 : bits(64)
register x16 : bits(64)   register x17 : bits(64)   register x18 : bits(64)
register x19 : bits(64)   register x20 : bits(64)   register x21 : bits(64)
register x22 : bits(64)   register x23 : bits(64)   register x24 : bits(64)
register x25 : bits(64)   register x26 : bits(64)   register x27 : bits(64)
register x28 : bits(64)   register x29 : bits(64)   register x30 : bits(64)
register x31 : bits(64)

register PC : bits(64)

// x0 reads as zero and discards writes.
function rget(n : bits(5)) -> bits(64) = {
  if n == 0b00000 then { return 0x0000000000000000; }
  else if n == 0b00001 then { return x1; }
  else if n == 0b00010 then { return x2; }
  else if n == 0b00011 then { return x3; }
  else if n == 0b00100 then { return x4; }
  else if n == 0b00101 then { return x5; }
  else if n == 0b00110 then { return x6; }
  else if n == 0b00111 then { return x7; }
  else if n == 0b01000 then { return x8; }
  else if n == 0b01001 then { return x9; }
  else if n == 0b01010 then { return x10; }
  else if n == 0b01011 then { return x11; }
  else if n == 0b01100 then { return x12; }
  else if n == 0b01101 then { return x13; }
  else if n == 0b01110 then { return x14; }
  else if n == 0b01111 then { return x15; }
  else if n == 0b10000 then { return x16; }
  else if n == 0b10001 then { return x17; }
  else if n == 0b10010 then { return x18; }
  else if n == 0b10011 then { return x19; }
  else if n == 0b10100 then { return x20; }
  else if n == 0b10101 then { return x21; }
  else if n == 0b10110 then { return x22; }
  else if n == 0b10111 then { return x23; }
  else if n == 0b11000 then { return x24; }
  else if n == 0b11001 then { return x25; }
  else if n == 0b11010 then { return x26; }
  else if n == 0b11011 then { return x27; }
  else if n == 0b11100 then { return x28; }
  else if n == 0b11101 then { return x29; }
  else if n == 0b11110 then { return x30; }
  else { return x31; };
}

function rset(n : bits(5), value : bits(64)) -> unit = {
  if n == 0b00000 then { }
  else if n == 0b00001 then { x1 = value; }
  else if n == 0b00010 then { x2 = value; }
  else if n == 0b00011 then { x3 = value; }
  else if n == 0b00100 then { x4 = value; }
  else if n == 0b00101 then { x5 = value; }
  else if n == 0b00110 then { x6 = value; }
  else if n == 0b00111 then { x7 = value; }
  else if n == 0b01000 then { x8 = value; }
  else if n == 0b01001 then { x9 = value; }
  else if n == 0b01010 then { x10 = value; }
  else if n == 0b01011 then { x11 = value; }
  else if n == 0b01100 then { x12 = value; }
  else if n == 0b01101 then { x13 = value; }
  else if n == 0b01110 then { x14 = value; }
  else if n == 0b01111 then { x15 = value; }
  else if n == 0b10000 then { x16 = value; }
  else if n == 0b10001 then { x17 = value; }
  else if n == 0b10010 then { x18 = value; }
  else if n == 0b10011 then { x19 = value; }
  else if n == 0b10100 then { x20 = value; }
  else if n == 0b10101 then { x21 = value; }
  else if n == 0b10110 then { x22 = value; }
  else if n == 0b10111 then { x23 = value; }
  else if n == 0b11000 then { x24 = value; }
  else if n == 0b11001 then { x25 = value; }
  else if n == 0b11010 then { x26 = value; }
  else if n == 0b11011 then { x27 = value; }
  else if n == 0b11100 then { x28 = value; }
  else if n == 0b11101 then { x29 = value; }
  else if n == 0b11110 then { x30 = value; }
  else { x31 = value; };
}

function next_pc() -> unit = { PC = PC + 0x0000000000000004; }

// ===== Immediate decoders =================================================

function imm_i(opcode : bits(32)) -> bits(64) = {
  return sign_extend(opcode[31 .. 20], 64);
}

function imm_s(opcode : bits(32)) -> bits(64) = {
  return sign_extend(opcode[31 .. 25] @ opcode[11 .. 7], 64);
}

function imm_b(opcode : bits(32)) -> bits(64) = {
  return sign_extend(opcode[31] @ opcode[7] @ opcode[30 .. 25]
                   @ opcode[11 .. 8] @ 0b0, 64);
}

function imm_u(opcode : bits(32)) -> bits(64) = {
  return sign_extend(opcode[31 .. 12] @ 0x000, 64);
}

function imm_j(opcode : bits(32)) -> bits(64) = {
  return sign_extend(opcode[31] @ opcode[19 .. 12] @ opcode[20]
                   @ opcode[30 .. 21] @ 0b0, 64);
}

// ===== Execute functions ==================================================

function execute_op_imm(opcode : bits(32)) -> unit = {
  let f3 = opcode[14 .. 12];
  let rs1 = rget(opcode[19 .. 15]);
  let rd = opcode[11 .. 7];
  let imm = imm_i(opcode);
  if f3 == 0b000 then { rset(rd, rs1 + imm); }
  else if f3 == 0b010 then {
    rset(rd, if rs1 <s imm then 0x0000000000000001
             else 0x0000000000000000);
  }
  else if f3 == 0b011 then {
    rset(rd, if rs1 <u imm then 0x0000000000000001
             else 0x0000000000000000);
  }
  else if f3 == 0b100 then { rset(rd, rs1 ^ imm); }
  else if f3 == 0b110 then { rset(rd, rs1 | imm); }
  else if f3 == 0b111 then { rset(rd, rs1 & imm); }
  else if f3 == 0b001 then {
    if opcode[31 .. 26] != 0b000000 then { throw("bad SLLI encoding"); };
    rset(rd, rs1 << zero_extend(opcode[25 .. 20], 64));
  }
  else {
    let shamt = zero_extend(opcode[25 .. 20], 64);
    if opcode[31 .. 26] == 0b000000 then { rset(rd, rs1 >> shamt); }
    else if opcode[31 .. 26] == 0b010000 then { rset(rd, rs1 >>> shamt); }
    else { throw("bad SRLI/SRAI encoding"); };
  };
  next_pc();
}

function execute_op(opcode : bits(32)) -> unit = {
  let f3 = opcode[14 .. 12];
  let f7 = opcode[31 .. 25];
  let rs1 = rget(opcode[19 .. 15]);
  let rs2 = rget(opcode[24 .. 20]);
  let rd = opcode[11 .. 7];
  if f7 == 0b0000000 then {
    if f3 == 0b000 then { rset(rd, rs1 + rs2); }
    else if f3 == 0b001 then {
      rset(rd, rs1 << zero_extend(truncate(rs2, 6), 64));
    }
    else if f3 == 0b010 then {
      rset(rd, if rs1 <s rs2 then 0x0000000000000001
               else 0x0000000000000000);
    }
    else if f3 == 0b011 then {
      rset(rd, if rs1 <u rs2 then 0x0000000000000001
               else 0x0000000000000000);
    }
    else if f3 == 0b100 then { rset(rd, rs1 ^ rs2); }
    else if f3 == 0b101 then {
      rset(rd, rs1 >> zero_extend(truncate(rs2, 6), 64));
    }
    else if f3 == 0b110 then { rset(rd, rs1 | rs2); }
    else { rset(rd, rs1 & rs2); };
  } else if f7 == 0b0100000 then {
    if f3 == 0b000 then { rset(rd, rs1 - rs2); }
    else if f3 == 0b101 then {
      rset(rd, rs1 >>> zero_extend(truncate(rs2, 6), 64));
    }
    else { throw("bad OP funct3 for funct7=0100000"); };
  } else {
    throw("unsupported OP funct7");
  };
  next_pc();
}

function execute_load(opcode : bits(32)) -> unit = {
  let f3 = opcode[14 .. 12];
  let addr = rget(opcode[19 .. 15]) + imm_i(opcode);
  let rd = opcode[11 .. 7];
  if f3 == 0b000 then { rset(rd, sign_extend(read_mem(addr, 1), 64)); }
  else if f3 == 0b001 then { rset(rd, sign_extend(read_mem(addr, 2), 64)); }
  else if f3 == 0b010 then { rset(rd, sign_extend(read_mem(addr, 4), 64)); }
  else if f3 == 0b011 then { rset(rd, read_mem(addr, 8)); }
  else if f3 == 0b100 then { rset(rd, zero_extend(read_mem(addr, 1), 64)); }
  else if f3 == 0b101 then { rset(rd, zero_extend(read_mem(addr, 2), 64)); }
  else if f3 == 0b110 then { rset(rd, zero_extend(read_mem(addr, 4), 64)); }
  else { throw("unsupported load width"); };
  next_pc();
}

function execute_store(opcode : bits(32)) -> unit = {
  let f3 = opcode[14 .. 12];
  let addr = rget(opcode[19 .. 15]) + imm_s(opcode);
  let v = rget(opcode[24 .. 20]);
  if f3 == 0b000 then { write_mem(addr, truncate(v, 8), 1); }
  else if f3 == 0b001 then { write_mem(addr, truncate(v, 16), 2); }
  else if f3 == 0b010 then { write_mem(addr, truncate(v, 32), 4); }
  else if f3 == 0b011 then { write_mem(addr, v, 8); }
  else { throw("unsupported store width"); };
  next_pc();
}

function execute_branch(opcode : bits(32)) -> unit = {
  let f3 = opcode[14 .. 12];
  let rs1 = rget(opcode[19 .. 15]);
  let rs2 = rget(opcode[24 .. 20]);
  var taken = false;
  if f3 == 0b000 then { taken = rs1 == rs2; }
  else if f3 == 0b001 then { taken = rs1 != rs2; }
  else if f3 == 0b100 then { taken = rs1 <s rs2; }
  else if f3 == 0b101 then { taken = !(rs1 <s rs2); }
  else if f3 == 0b110 then { taken = rs1 <u rs2; }
  else if f3 == 0b111 then { taken = !(rs1 <u rs2); }
  else { throw("unsupported branch funct3"); };
  if taken then { PC = PC + imm_b(opcode); } else { next_pc(); };
}

function execute_jal(opcode : bits(32)) -> unit = {
  rset(opcode[11 .. 7], PC + 0x0000000000000004);
  PC = PC + imm_j(opcode);
}

function execute_jalr(opcode : bits(32)) -> unit = {
  if opcode[14 .. 12] != 0b000 then { throw("bad JALR funct3"); };
  let target = (rget(opcode[19 .. 15]) + imm_i(opcode))
             & 0xfffffffffffffffe;
  rset(opcode[11 .. 7], PC + 0x0000000000000004);
  PC = target;
}

// RV64I W-instructions: 32-bit operations whose results are sign-extended.
function execute_op_imm_32(opcode : bits(32)) -> unit = {
  let f3 = opcode[14 .. 12];
  let rs1 = truncate(rget(opcode[19 .. 15]), 32);
  let rd = opcode[11 .. 7];
  if f3 == 0b000 then {                            // ADDIW
    rset(rd, sign_extend(rs1 + truncate(imm_i(opcode), 32), 64));
  } else if f3 == 0b001 then {                     // SLLIW
    if opcode[31 .. 25] != 0b0000000 then { throw("bad SLLIW encoding"); };
    rset(rd, sign_extend(rs1 << zero_extend(opcode[24 .. 20], 32), 64));
  } else if f3 == 0b101 then {                     // SRLIW / SRAIW
    let shamt = zero_extend(opcode[24 .. 20], 32);
    if opcode[31 .. 25] == 0b0000000 then {
      rset(rd, sign_extend(rs1 >> shamt, 64));
    } else if opcode[31 .. 25] == 0b0100000 then {
      rset(rd, sign_extend(rs1 >>> shamt, 64));
    } else { throw("bad SRLIW/SRAIW encoding"); };
  } else {
    throw("unsupported OP-IMM-32 funct3");
  };
  next_pc();
}

function execute_op_32(opcode : bits(32)) -> unit = {
  let f3 = opcode[14 .. 12];
  let f7 = opcode[31 .. 25];
  let rs1 = truncate(rget(opcode[19 .. 15]), 32);
  let rs2 = truncate(rget(opcode[24 .. 20]), 32);
  let rd = opcode[11 .. 7];
  if f7 == 0b0000000 then {
    if f3 == 0b000 then { rset(rd, sign_extend(rs1 + rs2, 64)); }   // ADDW
    else if f3 == 0b001 then {                                      // SLLW
      rset(rd, sign_extend(rs1 << zero_extend(truncate(rs2, 5), 32), 64));
    }
    else if f3 == 0b101 then {                                      // SRLW
      rset(rd, sign_extend(rs1 >> zero_extend(truncate(rs2, 5), 32), 64));
    }
    else { throw("unsupported OP-32 funct3"); };
  } else if f7 == 0b0100000 then {
    if f3 == 0b000 then { rset(rd, sign_extend(rs1 - rs2, 64)); }   // SUBW
    else if f3 == 0b101 then {                                      // SRAW
      rset(rd, sign_extend(rs1 >>> zero_extend(truncate(rs2, 5), 32), 64));
    }
    else { throw("unsupported OP-32 funct3 for funct7=0100000"); };
  } else {
    throw("unsupported OP-32 funct7");
  };
  next_pc();
}

// ===== Top-level decode ===================================================

function decode(opcode : bits(32)) -> unit = {
  let op = opcode[6 .. 0];
  if op == 0b0110111 then {                       // LUI
    rset(opcode[11 .. 7], imm_u(opcode));
    next_pc();
  }
  else if op == 0b0010111 then {                  // AUIPC
    rset(opcode[11 .. 7], PC + imm_u(opcode));
    next_pc();
  }
  else if op == 0b0010011 then { execute_op_imm(opcode); }
  else if op == 0b0110011 then { execute_op(opcode); }
  else if op == 0b0011011 then { execute_op_imm_32(opcode); }
  else if op == 0b0111011 then { execute_op_32(opcode); }
  else if op == 0b0000011 then { execute_load(opcode); }
  else if op == 0b0100011 then { execute_store(opcode); }
  else if op == 0b1100011 then { execute_branch(opcode); }
  else if op == 0b1101111 then { execute_jal(opcode); }
  else if op == 0b1100111 then { execute_jalr(opcode); }
  else { throw("UNDEFINED"); };
}
)SAIL";

const char *islaris::models::rv64Source() { return Rv64Src; }

const islaris::sail::Model &islaris::models::rv64Model() {
  static const sail::Model *M = [] {
    std::string Err;
    auto Parsed = sail::parseModel(Rv64Src, Err);
    if (!Parsed) {
      std::fprintf(stderr, "rv64 model: %s\n", Err.c_str());
      std::abort();
    }
    return Parsed.release();
  }();
  return *M;
}
