//===- models/Models.h - ISA model registry ---------------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The authoritative-model substrate: mini-Sail sources for an Armv8-A
/// subset (system registers, banked stack pointers, exception entry/return,
/// flag-setting arithmetic, alignment checking) and an RV64I subset, plus a
/// cached loader.  These stand in for the Sail ARMv8.5-A and sail-riscv
/// models; they deliberately keep the papers' "irrelevant complexity" (e.g.
/// AddWithCarry computes flags that most instructions discard, every
/// SP access goes through the banked-selection logic, every sized access
/// goes through the alignment-check path).
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_MODELS_MODELS_H
#define ISLARIS_MODELS_MODELS_H

#include "sail/Ast.h"

namespace islaris::models {

/// Raw mini-Sail source of the Armv8-A model.
const char *aarch64Source();
/// Raw mini-Sail source of the RV64 model.
const char *rv64Source();

/// Parses + resolves the Armv8-A model (cached; aborts on parse failure,
/// which is a build-time bug).
const sail::Model &aarch64Model();
/// Parses + resolves the RV64 model (cached).
const sail::Model &rv64Model();

} // namespace islaris::models

#endif // ISLARIS_MODELS_MODELS_H
