//===- server/Net.cpp - Deadline-bounded socket I/O ----------------------------===//

#include "server/Net.h"

#include <cerrno>

#include <poll.h>
#include <sys/socket.h>

using namespace islaris::server;
using namespace islaris::server::net;

const char *islaris::server::net::ioStatusName(IoStatus S) {
  switch (S) {
  case IoStatus::Ok:
    return "ok";
  case IoStatus::Timeout:
    return "timeout";
  case IoStatus::Closed:
    return "closed";
  case IoStatus::Error:
    return "error";
  }
  return "error";
}

/// Polls \p Fd for \p Events under \p D.  Ok when ready; Timeout when the
/// deadline passed; Error on a poll failure or error/hangup-only
/// revents.  POLLHUP alongside the requested event is left to the actual
/// read/write to classify (a half-closed socket can still hold buffered
/// data worth reading).
static IoStatus pollFor(int Fd, short Events, const Deadline &D) {
  while (true) {
    pollfd P{Fd, Events, 0};
    int Ms = D.pollMs();
    if (Ms == 0)
      return IoStatus::Timeout;
    int R = ::poll(&P, 1, Ms);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return IoStatus::Error;
    }
    if (R == 0) {
      // poll's own timeout; re-check the deadline (it may be infinite and
      // this a spurious zero, though with Ms==-1 poll never returns 0).
      if (D.expired())
        return IoStatus::Timeout;
      continue;
    }
    if (P.revents & (POLLIN | POLLOUT))
      return IoStatus::Ok;
    if (P.revents & (POLLERR | POLLHUP | POLLNVAL))
      return IoStatus::Closed;
    return IoStatus::Error;
  }
}

IoStatus islaris::server::net::writeAll(int Fd, const char *Data, size_t N,
                                        const Deadline &D) {
  size_t Off = 0;
  while (Off < N) {
    IoStatus S = pollFor(Fd, POLLOUT, D);
    if (S != IoStatus::Ok)
      return S;
    ssize_t W = ::send(Fd, Data + Off, N - Off, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue; // poll again; the kernel buffer refilled under us
      if (errno == EPIPE || errno == ECONNRESET)
        return IoStatus::Closed;
      return IoStatus::Error;
    }
    Off += size_t(W);
  }
  return IoStatus::Ok;
}

IoStatus islaris::server::net::readSome(int Fd, char *Buf, size_t N,
                                        const Deadline &D, size_t &Got) {
  Got = 0;
  while (true) {
    IoStatus S = pollFor(Fd, POLLIN, D);
    if (S != IoStatus::Ok && S != IoStatus::Closed)
      return S;
    // On Closed revents still try the recv: buffered bytes outlive a peer
    // hangup, and recv distinguishes data / EOF / reset for us.
    ssize_t R = ::recv(Fd, Buf, N, 0);
    if (R < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      if (errno == ECONNRESET)
        return IoStatus::Closed;
      return IoStatus::Error;
    }
    if (R == 0)
      return IoStatus::Closed;
    Got = size_t(R);
    return IoStatus::Ok;
  }
}
