//===- server/Client.cpp - islarisd client library -----------------------------===//

#include "server/Client.h"

#include "server/Transport.h"
#include "support/Backoff.h"
#include "support/Wire.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

using namespace islaris;
using namespace islaris::server;

namespace {
double nowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
} // namespace

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Reader = FrameReader(); // drop any half-frame from the dead stream
}

bool Client::sendHello(std::string &Err) {
  HelloInfo H;
  H.Version = ProtocolVersion;
  H.ClientName = Opt.Name;
  H.DefaultDeadlineMs = Opt.DeadlineMs;
  H.HeartbeatMs = uint64_t(Opt.HeartbeatSeconds * 1000);
  if (!send(Frame{FrameType::Hello, encodeHello(H)}, Err))
    return false;
  Frame F;
  if (!recv(F, Err))
    return false;
  if (F.Type == FrameType::Error) {
    Err = "server refused handshake: " + F.Payload;
    return false;
  }
  if (F.Type != FrameType::Welcome) {
    Err = std::string("expected welcome, got ") + frameTypeName(F.Type);
    return false;
  }
  support::wire::Cursor C(F.Payload);
  uint64_t Ver = C.u64();
  if (C.Fail || Ver != ProtocolVersion) {
    Err = "server speaks protocol " + std::to_string(Ver) + ", client " +
          std::to_string(ProtocolVersion);
    return false;
  }
  return true;
}

bool Client::connectOnce(std::string &Err) {
  close();
  Fd = connectSpec(Spec, Opt.ConnectTimeoutSeconds, Err);
  if (Fd < 0)
    return false;
  if (!sendHello(Err)) {
    close();
    return false;
  }
  return true;
}

bool Client::connect(const std::string &EndpointSpec, std::string &Err) {
  Spec = EndpointSpec;
  // The initial dial gets the same retry discipline as everything else: a
  // reset during the hello/welcome exchange is just as transient as one
  // mid-request, and on a hostile wire it happens.  (reconnect() stays
  // single-attempt — retryLoop already paces re-dials with this backoff.)
  support::Backoff B(Opt.BackoffBaseSeconds, Opt.BackoffCapSeconds,
                     Opt.Seed);
  net::Deadline Overall =
      Opt.DeadlineMs > 0
          ? net::Deadline::in(double(Opt.DeadlineMs) / 1000.0)
          : net::Deadline();
  unsigned Max = Opt.MaxAttempts ? Opt.MaxAttempts : 1;
  for (unsigned A = 0;; ++A) {
    if (connectOnce(Err))
      return true;
    if (A + 1 >= Max || Overall.expired())
      return false;
    Net.Retries++;
    double Delay = B.next();
    if (!Overall.infinite() && Overall.secondsLeft() <= Delay)
      return false;
    std::this_thread::sleep_for(std::chrono::duration<double>(Delay));
  }
}

bool Client::reconnect(std::string &Err) {
  if (Spec.empty()) {
    Err = "no endpoint to reconnect to";
    return false;
  }
  if (!connectOnce(Err))
    return false;
  Net.Reconnects++;
  return true;
}

bool Client::sendRaw(const std::string &Bytes, std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  // The one client-side write path: deadline-bounded, partial-write and
  // EINTR safe, SIGPIPE-free (server/Net.h) — a stalled or vanished server
  // costs one bounded send, never a wedged caller.
  net::Deadline D = Opt.WriteTimeoutSeconds > 0
                        ? net::Deadline::in(Opt.WriteTimeoutSeconds)
                        : net::Deadline();
  net::IoStatus S = net::writeAll(Fd, Bytes.data(), Bytes.size(), D);
  if (S != net::IoStatus::Ok) {
    Err = std::string("send(): ") + net::ioStatusName(S);
    return false;
  }
  LastSendSec = nowSec();
  return true;
}

bool Client::send(const Frame &F, std::string &Err) {
  return sendRaw(encodeFrame(F), Err);
}

bool Client::recv(Frame &Out, std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  char Buf[64 * 1024];
  while (true) {
    FrameReader::Status S = Reader.next(Out, &Err);
    if (S == FrameReader::Status::Frame)
      return true;
    if (S == FrameReader::Status::Malformed)
      return false;
    ssize_t N = ::recv(Fd, Buf, sizeof Buf, 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0) {
      Err = std::string("recv(): ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      Err = "connection closed by server";
      return false;
    }
    Reader.feed(Buf, size_t(N));
  }
}

bool Client::awaitFrame(Frame &Out, const net::Deadline &Overall,
                        std::string &Err, bool &Transient) {
  Transient = false;
  if (Fd < 0) {
    Err = "not connected";
    Transient = true;
    return false;
  }
  char Buf[64 * 1024];
  double LastRecv = nowSec();
  while (true) {
    // Drain buffered frames first; heartbeats are liveness, not answers.
    FrameReader::Status S = Reader.next(Out, &Err);
    if (S == FrameReader::Status::Frame) {
      if (Out.Type == FrameType::Heartbeat) {
        Net.HeartbeatsSeen++;
        continue;
      }
      return true;
    }
    if (S == FrameReader::Status::Malformed) {
      // Corruption on the wire (the checksum caught it): the stream is
      // unrecoverable but the request is retryable on a fresh one.
      Err = "malformed frame from server: " + Err;
      Transient = true;
      return false;
    }

    if (Overall.expired()) {
      Err = "deadline expired waiting for server";
      Net.DeadlineExpired++;
      return false;
    }
    double Tick = 0.2;
    if (!Overall.infinite() && Overall.secondsLeft() < Tick)
      Tick = Overall.secondsLeft() > 0.01 ? Overall.secondsLeft() : 0.01;

    // Heartbeat on the pacing clock regardless of inbound traffic: a
    // chatty server (its own heartbeats, streamed rows) must not suppress
    // ours, or it could never tell us apart from a vanished peer.
    if (Opt.HeartbeatSeconds > 0 &&
        nowSec() - LastSendSec >= Opt.HeartbeatSeconds) {
      std::string HbErr;
      if (send(Frame{FrameType::Heartbeat, ""}, HbErr))
        Net.HeartbeatsSent++;
      else {
        Err = "heartbeat send failed: " + HbErr;
        Transient = true;
        return false;
      }
    }

    size_t Got = 0;
    net::IoStatus IS =
        net::readSome(Fd, Buf, sizeof Buf, net::Deadline::in(Tick), Got);
    if (IS == net::IoStatus::Timeout) {
      double Now = nowSec();
      if (Opt.SilenceTimeoutSeconds > 0 &&
          Now - LastRecv > Opt.SilenceTimeoutSeconds) {
        Err = "server silent for " +
              std::to_string(Opt.SilenceTimeoutSeconds) +
              "s (half-open connection?)";
        Transient = true;
        return false;
      }
      continue;
    }
    if (IS != net::IoStatus::Ok) {
      Err = std::string("recv(): ") + net::ioStatusName(IS);
      Transient = true;
      return false;
    }
    LastRecv = nowSec();
    Reader.feed(Buf, Got);
  }
}

//===----------------------------------------------------------------------===//
// Retry driver.
//===----------------------------------------------------------------------===//

bool Client::retryLoop(
    std::string &Err,
    const std::function<Outcome(const net::Deadline &, std::string &,
                                double &)> &Attempt) {
  support::Backoff B(Opt.BackoffBaseSeconds, Opt.BackoffCapSeconds,
                     Opt.Seed ^ (LastId * 0x9e3779b97f4a7c15ull));
  net::Deadline Overall = Opt.DeadlineMs > 0
                              ? net::Deadline::in(double(Opt.DeadlineMs) /
                                                  1000.0)
                              : net::Deadline();
  unsigned Max = Opt.MaxAttempts ? Opt.MaxAttempts : 1;
  std::string LastErr;
  for (unsigned A = 0; A < Max; ++A) {
    if (A > 0)
      Net.Retries++;
    if (!connected()) {
      std::string CErr;
      if (!reconnect(CErr)) {
        LastErr = CErr;
        double Delay = B.next();
        if (!Overall.infinite() && Overall.secondsLeft() <= Delay) {
          Err = "deadline expired reconnecting: " + CErr;
          Net.DeadlineExpired++;
          return false;
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(Delay));
        continue;
      }
    }
    std::string AErr;
    double RetryAfterSeconds = 0;
    Outcome O = Attempt(Overall, AErr, RetryAfterSeconds);
    switch (O) {
    case Outcome::Done:
      Err = AErr;
      return AErr.empty();
    case Outcome::Shed:
      Net.Sheds++;
      break;
    case Outcome::Transient:
      close(); // next iteration re-dials
      break;
    }
    LastErr = AErr;
    if (Overall.expired())
      break;
    double Delay =
        O == Outcome::Shed ? B.next(RetryAfterSeconds) : B.next();
    if (!Overall.infinite() && Overall.secondsLeft() <= Delay)
      break;
    std::this_thread::sleep_for(std::chrono::duration<double>(Delay));
  }
  Err = LastErr.empty() ? "request failed after retries" : LastErr;
  if (Overall.expired()) {
    Net.DeadlineExpired++;
    Err = "deadline expired: " + Err;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Helpers.
//===----------------------------------------------------------------------===//

bool Client::runTrace(const TraceRequest &R, TraceResult &Out,
                      std::string &Err) {
  Request Req;
  Req.Id = nextId(); // one id across every retry: idempotent replay
  Req.K = Request::Kind::Trace;
  Req.Trace = R;

  return retryLoop(Err, [&](const net::Deadline &Overall, std::string &E,
                            double &RetryAfterSeconds) -> Outcome {
    Out = TraceResult();
    Req.DeadlineMs = Opt.DeadlineMs
                         ? uint64_t(Overall.secondsLeft() * 1000) + 1
                         : 0;
    if (!send(Frame{FrameType::Request, encodeRequest(Req)}, E))
      return Outcome::Transient;
    Frame F;
    bool Transient = false;
    while (awaitFrame(F, Overall, E, Transient)) {
      uint64_t Id = 0;
      std::string Body;
      switch (F.Type) {
      case FrameType::Accepted:
        continue;
      case FrameType::Rejected: {
        if (!decodeIdPayload(F.Payload, Id, Body) || Id != Req.Id)
          continue;
        std::string Reason;
        uint64_t RetryMs = 0;
        decodeRejectBody(Body, Reason, RetryMs);
        Out.Rejected = true;
        Out.RejectReason = Reason;
        Out.RetryAfterMs = RetryMs;
        if (RetryMs > 0) {
          RetryAfterSeconds = double(RetryMs) / 1000.0;
          E = "shed: " + Reason;
          return Outcome::Shed;
        }
        return Outcome::Done; // permanent: surface via Out.Rejected
      }
      case FrameType::Trace:
        if (decodeIdPayload(F.Payload, Id, Body) && Id == Req.Id)
          Out.EntryText = std::move(Body);
        continue;
      case FrameType::Done: {
        DoneInfo D;
        if (decodeDone(F.Payload, D) && D.Id == Req.Id) {
          Out.Done = D;
          Out.Ok = D.Status == 0;
          return Outcome::Done;
        }
        continue;
      }
      case FrameType::Error:
        E = "server error: " + F.Payload;
        return Outcome::Transient;
      case FrameType::Bye:
        E = "server shut down before the result arrived";
        return Outcome::Done; // a drained server will not come back
      default:
        continue; // diag/stats frames for other ids: skip
      }
    }
    return Transient ? Outcome::Transient : Outcome::Done;
  });
}

bool Client::runStudy(
    const std::string &Name, StudyResult &Out, std::string &Err,
    const std::function<void(const frontend::CaseResult &)> &OnRow) {
  Request Req;
  Req.Id = nextId();
  Req.K = Request::Kind::Study;
  Req.Study = Name;

  return retryLoop(Err, [&](const net::Deadline &Overall, std::string &E,
                            double &RetryAfterSeconds) -> Outcome {
    Out = StudyResult(); // a retry restarts the row stream from scratch
    Req.DeadlineMs = Opt.DeadlineMs
                         ? uint64_t(Overall.secondsLeft() * 1000) + 1
                         : 0;
    if (!send(Frame{FrameType::Request, encodeRequest(Req)}, E))
      return Outcome::Transient;
    Frame F;
    bool Transient = false;
    while (awaitFrame(F, Overall, E, Transient)) {
      uint64_t Id = 0;
      std::string Body;
      switch (F.Type) {
      case FrameType::Accepted:
        continue;
      case FrameType::Rejected: {
        if (!decodeIdPayload(F.Payload, Id, Body) || Id != Req.Id)
          continue;
        std::string Reason;
        uint64_t RetryMs = 0;
        decodeRejectBody(Body, Reason, RetryMs);
        Out.Rejected = true;
        Out.RejectReason = Reason;
        Out.RetryAfterMs = RetryMs;
        if (RetryMs > 0) {
          RetryAfterSeconds = double(RetryMs) / 1000.0;
          E = "shed: " + Reason;
          return Outcome::Shed;
        }
        return Outcome::Done;
      }
      case FrameType::Row: {
        if (!decodeIdPayload(F.Payload, Id, Body) || Id != Req.Id)
          continue;
        frontend::CaseResult R;
        if (!frontend::decodeCaseResult(Body, R)) {
          E = "undecodable case-result row from server";
          return Outcome::Transient;
        }
        Out.Rows.push_back(R);
        if (OnRow)
          OnRow(R);
        continue;
      }
      case FrameType::Done: {
        DoneInfo D;
        if (decodeDone(F.Payload, D) && D.Id == Req.Id) {
          Out.Done = D;
          Out.Ok = D.Status == 0;
          return Outcome::Done;
        }
        continue;
      }
      case FrameType::Error:
        E = "server error: " + F.Payload;
        return Outcome::Transient;
      case FrameType::Bye:
        E = "server shut down before the result arrived";
        return Outcome::Done;
      default:
        continue;
      }
    }
    return Transient ? Outcome::Transient : Outcome::Done;
  });
}

bool Client::ping(std::string &Err) {
  if (!send(Frame{FrameType::Ping, ""}, Err))
    return false;
  net::Deadline Overall = Opt.DeadlineMs > 0
                              ? net::Deadline::in(double(Opt.DeadlineMs) /
                                                  1000.0)
                              : net::Deadline();
  Frame F;
  bool Transient = false;
  while (awaitFrame(F, Overall, Err, Transient)) {
    if (F.Type == FrameType::Pong)
      return true;
    if (F.Type == FrameType::Error || F.Type == FrameType::Bye) {
      Err = "server error: " + F.Payload;
      return false;
    }
  }
  return false;
}

bool Client::getStats(std::string &Out, std::string &Err) {
  Request Req;
  Req.Id = nextId();
  Req.K = Request::Kind::Stats;

  return retryLoop(Err, [&](const net::Deadline &Overall, std::string &E,
                            double &RetryAfterSeconds) -> Outcome {
    Req.DeadlineMs = Opt.DeadlineMs
                         ? uint64_t(Overall.secondsLeft() * 1000) + 1
                         : 0;
    if (!send(Frame{FrameType::Request, encodeRequest(Req)}, E))
      return Outcome::Transient;
    Frame F;
    bool Got = false;
    bool Transient = false;
    while (awaitFrame(F, Overall, E, Transient)) {
      uint64_t Id = 0;
      std::string Body;
      if (F.Type == FrameType::Stats &&
          decodeIdPayload(F.Payload, Id, Body) && Id == Req.Id) {
        Out = std::move(Body);
        Got = true;
        continue;
      }
      if (F.Type == FrameType::Done) {
        DoneInfo D;
        if (decodeDone(F.Payload, D) && D.Id == Req.Id) {
          if (Got)
            return Outcome::Done;
          E = "stats done without a stats frame (" + D.Error + ")";
          return Outcome::Done;
        }
        continue;
      }
      if (F.Type == FrameType::Rejected &&
          decodeIdPayload(F.Payload, Id, Body) && Id == Req.Id) {
        std::string Reason;
        uint64_t RetryMs = 0;
        decodeRejectBody(Body, Reason, RetryMs);
        if (RetryMs > 0) {
          RetryAfterSeconds = double(RetryMs) / 1000.0;
          E = "shed: " + Reason;
          return Outcome::Shed;
        }
        E = "stats request rejected: " + Reason;
        return Outcome::Done;
      }
      if (F.Type == FrameType::Error || F.Type == FrameType::Bye) {
        E = "server error: " + F.Payload;
        return Outcome::Done;
      }
    }
    return Transient ? Outcome::Transient : Outcome::Done;
  });
}

bool Client::shutdownServer(std::string &Err) {
  if (!send(Frame{FrameType::Shutdown, ""}, Err))
    return false;
  Frame F;
  while (recv(F, Err)) {
    if (F.Type == FrameType::Accepted || F.Type == FrameType::Bye)
      return true;
    if (F.Type == FrameType::Heartbeat)
      continue;
    if (F.Type == FrameType::Error) {
      Err = "server error: " + F.Payload;
      return false;
    }
  }
  // EOF after a shutdown request is success too: the server drained and
  // closed before the ack was read.
  return true;
}
