//===- server/Client.cpp - islarisd client library -----------------------------===//

#include "server/Client.h"

#include "server/Transport.h"
#include "support/Backoff.h"
#include "support/Wire.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

using namespace islaris;
using namespace islaris::server;

namespace {
double nowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
} // namespace

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Reader = FrameReader(); // drop any half-frame from the dead stream
}

bool Client::sendHello(std::string &Err) {
  HelloInfo H;
  H.Version = ProtocolVersion;
  H.ClientName = Opt.Name;
  H.DefaultDeadlineMs = Opt.DeadlineMs;
  H.HeartbeatMs = uint64_t(Opt.HeartbeatSeconds * 1000);
  if (!send(Frame{FrameType::Hello, encodeHello(H)}, Err))
    return false;
  Frame F;
  if (!recv(F, Err))
    return false;
  if (F.Type == FrameType::Error) {
    Err = "server refused handshake: " + F.Payload;
    return false;
  }
  if (F.Type != FrameType::Welcome) {
    Err = std::string("expected welcome, got ") + frameTypeName(F.Type);
    return false;
  }
  support::wire::Cursor C(F.Payload);
  uint64_t Ver = C.u64();
  // The welcome carries the *negotiated* version: min(ours, the
  // server's).  Anything in the range we speak is a successful handshake;
  // a protocol-2 peer simply means the protocol-3 helpers (health,
  // reload) will fail fast client-side.
  if (C.Fail || Ver < MinProtocolVersion || Ver > ProtocolVersion) {
    Err = "server speaks protocol " + std::to_string(Ver) + ", client " +
          std::to_string(MinProtocolVersion) + ".." +
          std::to_string(ProtocolVersion);
    return false;
  }
  PeerVer = Ver;
  return true;
}

bool Client::dialEndpoint(size_t I, std::string &Err, DialError &DE) {
  close();
  DE = DialError::None;
  Fd = connectSpec(Eps[I].Spec, Opt.ConnectTimeoutSeconds, Err, &DE);
  if (Fd < 0)
    return false;
  if (!sendHello(Err)) {
    close();
    // A listener that accepted but failed the handshake is trouble of the
    // non-rotate-forever kind; classify like a slow endpoint.
    DE = DialError::Other;
    return false;
  }
  return true;
}

bool Client::dialAny(std::string &Err) {
  if (Eps.empty()) {
    Err = "no endpoint to dial";
    return false;
  }
  // When every endpoint is dead and still backing off, probe anyway: a
  // client with nothing reachable should be trying, not deadlocking on
  // its own pacing (the caller's retry backoff still bounds the rate).
  double Now = nowSec();
  bool AnyDue = false;
  for (const EndpointHealth &E : Eps)
    if (!E.Dead || E.RetryAtSec <= Now) {
      AnyDue = true;
      break;
    }
  std::string LastErr;
  for (size_t Hop = 0; Hop < Eps.size(); ++Hop) {
    size_t I = (Cur + Hop) % Eps.size();
    EndpointHealth &E = Eps[I];
    if (AnyDue && E.Dead && E.RetryAtSec > Now)
      continue; // not due for a re-probe yet
    DialError DE = DialError::None;
    std::string DErr;
    if (dialEndpoint(I, DErr, DE)) {
      if (I != Cur) {
        Cur = I;
        Net.EndpointRotations++;
      }
      E.Dead = false;
      E.Probe.reset();
      return true;
    }
    LastErr = E.Spec + ": " + DErr;
    E.Dead = true;
    E.RetryAtSec = nowSec() + E.Probe.next();
    if (DE == DialError::Refused) {
      // Nobody listening: definitively down right now — rotate to the
      // next candidate immediately, no backoff sleep.
      Net.DialsRefused++;
      continue;
    }
    if (DE == DialError::Timeout)
      Net.DialsTimedOut++;
    // Slow (or odd) endpoint: stop the walk and let the caller's backoff
    // pace the retry — hammering the rest of the ring after a timeout
    // risks paying a full connect timeout per endpoint per attempt.  The
    // next walk resumes *past* the offender, so one slow endpoint that
    // keeps coming due for re-probes cannot shadow a healthy neighbor.
    Cur = (I + 1) % Eps.size();
    break;
  }
  Err = LastErr.empty() ? "every endpoint is backing off" : LastErr;
  return false;
}

bool Client::connect(const std::string &EndpointSpec, std::string &Err) {
  Spec = EndpointSpec;
  Eps.clear();
  Cur = 0;
  ShedStreak = 0;
  // Parse the comma-separated failover ring; each endpoint gets its own
  // deterministic re-probe pacer.
  size_t Pos = 0;
  while (Pos <= EndpointSpec.size()) {
    size_t Comma = EndpointSpec.find(',', Pos);
    bool Last = Comma == std::string::npos;
    if (Last)
      Comma = EndpointSpec.size();
    std::string One = EndpointSpec.substr(Pos, Comma - Pos);
    size_t B = One.find_first_not_of(" \t");
    size_t E = One.find_last_not_of(" \t");
    if (B != std::string::npos)
      One = One.substr(B, E - B + 1);
    else
      One.clear();
    if (!One.empty())
      Eps.push_back(EndpointHealth{
          One, false, 0,
          support::Backoff(Opt.BackoffBaseSeconds, Opt.BackoffCapSeconds,
                           Opt.Seed ^
                               (Eps.size() * 0x9e3779b97f4a7c15ull))});
    if (Last)
      break;
    Pos = Comma + 1;
  }
  if (Eps.empty()) {
    Err = "empty endpoint spec";
    return false;
  }
  RetryB.emplace(Opt.BackoffBaseSeconds, Opt.BackoffCapSeconds, Opt.Seed);

  // The initial dial gets the same retry discipline as everything else: a
  // reset during the hello/welcome exchange is just as transient as one
  // mid-request, and on a hostile wire it happens.  (reconnect() stays
  // single-attempt — retryLoop already paces re-dials with this backoff.)
  net::Deadline Overall =
      Opt.DeadlineMs > 0
          ? net::Deadline::in(double(Opt.DeadlineMs) / 1000.0)
          : net::Deadline();
  unsigned Max = Opt.MaxAttempts ? Opt.MaxAttempts : 1;
  for (unsigned A = 0;; ++A) {
    if (dialAny(Err)) {
      RetryB->reset();
      if (Opt.PreferLeastLoaded && Eps.size() > 1)
        settleLeastLoaded();
      return true;
    }
    if (A + 1 >= Max || Overall.expired())
      return false;
    Net.Retries++;
    double Delay = RetryB->next();
    if (!Overall.infinite() && Overall.secondsLeft() <= Delay)
      return false;
    std::this_thread::sleep_for(std::chrono::duration<double>(Delay));
  }
}

void Client::settleLeastLoaded() {
  if (PeerVer < 3)
    return; // the probe needs the protocol-3 health request
  // Probe the ring in order, remembering each endpoint's instantaneous
  // load; endpoints that fail to dial or to answer are left marked by
  // dialAny/awaitFrame and simply not preferred.
  size_t Best = Cur;
  uint64_t BestLoad = UINT64_MAX;
  size_t Started = Cur;
  for (size_t Hop = 0; Hop < Eps.size(); ++Hop) {
    size_t I = (Started + Hop) % Eps.size();
    if (I != Cur || Fd < 0) {
      DialError DE;
      std::string DErr;
      if (!dialEndpoint(I, DErr, DE))
        continue;
      Cur = I;
    }
    HealthInfo H;
    std::string HErr;
    bool Transient = false;
    double Wait = Opt.ConnectTimeoutSeconds > 0 ? Opt.ConnectTimeoutSeconds
                                                : 5;
    if (!healthOnce(H, net::Deadline::in(Wait), HErr, Transient))
      continue;
    uint64_t Load = H.QueueDepth + H.ActiveJobs + (H.Draining ? 1u << 20 : 0);
    if (Load < BestLoad) {
      BestLoad = Load;
      Best = I;
    }
  }
  if (Best != Cur || Fd < 0) {
    DialError DE;
    std::string DErr;
    if (dialEndpoint(Best, DErr, DE)) {
      if (Best != Cur)
        Net.EndpointRotations++;
      Cur = Best;
    } else {
      // The winner vanished between probe and settle; fall back to the
      // normal walk.
      std::string AErr;
      dialAny(AErr);
    }
  }
}

bool Client::reconnect(std::string &Err) {
  if (Eps.empty()) {
    Err = "no endpoint to reconnect to";
    return false;
  }
  if (!dialAny(Err))
    return false;
  Net.Reconnects++;
  return true;
}

bool Client::sendRaw(const std::string &Bytes, std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  // The one client-side write path: deadline-bounded, partial-write and
  // EINTR safe, SIGPIPE-free (server/Net.h) — a stalled or vanished server
  // costs one bounded send, never a wedged caller.
  net::Deadline D = Opt.WriteTimeoutSeconds > 0
                        ? net::Deadline::in(Opt.WriteTimeoutSeconds)
                        : net::Deadline();
  net::IoStatus S = net::writeAll(Fd, Bytes.data(), Bytes.size(), D);
  if (S != net::IoStatus::Ok) {
    Err = std::string("send(): ") + net::ioStatusName(S);
    return false;
  }
  LastSendSec = nowSec();
  return true;
}

bool Client::send(const Frame &F, std::string &Err) {
  return sendRaw(encodeFrame(F), Err);
}

bool Client::recv(Frame &Out, std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  char Buf[64 * 1024];
  while (true) {
    FrameReader::Status S = Reader.next(Out, &Err);
    if (S == FrameReader::Status::Frame)
      return true;
    if (S == FrameReader::Status::Malformed)
      return false;
    ssize_t N = ::recv(Fd, Buf, sizeof Buf, 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0) {
      Err = std::string("recv(): ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      Err = "connection closed by server";
      return false;
    }
    Reader.feed(Buf, size_t(N));
  }
}

bool Client::awaitFrame(Frame &Out, const net::Deadline &Overall,
                        std::string &Err, bool &Transient) {
  Transient = false;
  if (Fd < 0) {
    Err = "not connected";
    Transient = true;
    return false;
  }
  char Buf[64 * 1024];
  double LastRecv = nowSec();
  while (true) {
    // Drain buffered frames first; heartbeats are liveness, not answers.
    FrameReader::Status S = Reader.next(Out, &Err);
    if (S == FrameReader::Status::Frame) {
      if (Out.Type == FrameType::Heartbeat) {
        Net.HeartbeatsSeen++;
        continue;
      }
      return true;
    }
    if (S == FrameReader::Status::Malformed) {
      // Corruption on the wire (the checksum caught it): the stream is
      // unrecoverable but the request is retryable on a fresh one.
      Err = "malformed frame from server: " + Err;
      Transient = true;
      return false;
    }

    if (Overall.expired()) {
      Err = "deadline expired waiting for server";
      Net.DeadlineExpired++;
      return false;
    }
    double Tick = 0.2;
    if (!Overall.infinite() && Overall.secondsLeft() < Tick)
      Tick = Overall.secondsLeft() > 0.01 ? Overall.secondsLeft() : 0.01;

    // Heartbeat on the pacing clock regardless of inbound traffic: a
    // chatty server (its own heartbeats, streamed rows) must not suppress
    // ours, or it could never tell us apart from a vanished peer.
    if (Opt.HeartbeatSeconds > 0 &&
        nowSec() - LastSendSec >= Opt.HeartbeatSeconds) {
      std::string HbErr;
      if (send(Frame{FrameType::Heartbeat, ""}, HbErr))
        Net.HeartbeatsSent++;
      else {
        Err = "heartbeat send failed: " + HbErr;
        Transient = true;
        return false;
      }
    }

    size_t Got = 0;
    net::IoStatus IS =
        net::readSome(Fd, Buf, sizeof Buf, net::Deadline::in(Tick), Got);
    if (IS == net::IoStatus::Timeout) {
      double Now = nowSec();
      if (Opt.SilenceTimeoutSeconds > 0 &&
          Now - LastRecv > Opt.SilenceTimeoutSeconds) {
        Err = "server silent for " +
              std::to_string(Opt.SilenceTimeoutSeconds) +
              "s (half-open connection?)";
        Transient = true;
        return false;
      }
      continue;
    }
    if (IS != net::IoStatus::Ok) {
      Err = std::string("recv(): ") + net::ioStatusName(IS);
      Transient = true;
      return false;
    }
    LastRecv = nowSec();
    Reader.feed(Buf, Got);
  }
}

//===----------------------------------------------------------------------===//
// Retry driver.
//===----------------------------------------------------------------------===//

bool Client::retryLoop(
    std::string &Err,
    const std::function<Outcome(const net::Deadline &, std::string &,
                                double &)> &Attempt) {
  // One pacer shared by every helper call: a shed storm keeps its long
  // delays across calls, and a success resets the streak (below) so one
  // healthy answer restores fast retries.
  if (!RetryB)
    RetryB.emplace(Opt.BackoffBaseSeconds, Opt.BackoffCapSeconds, Opt.Seed);
  support::Backoff &B = *RetryB;
  net::Deadline Overall = Opt.DeadlineMs > 0
                              ? net::Deadline::in(double(Opt.DeadlineMs) /
                                                  1000.0)
                              : net::Deadline();
  unsigned Max = Opt.MaxAttempts ? Opt.MaxAttempts : 1;
  std::string LastErr;
  for (unsigned A = 0; A < Max; ++A) {
    if (A > 0)
      Net.Retries++;
    if (!connected()) {
      std::string CErr;
      if (!reconnect(CErr)) {
        LastErr = CErr;
        double Delay = B.next();
        if (!Overall.infinite() && Overall.secondsLeft() <= Delay) {
          Err = "deadline expired reconnecting: " + CErr;
          Net.DeadlineExpired++;
          return false;
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(Delay));
        continue;
      }
    }
    std::string AErr;
    double RetryAfterSeconds = 0;
    Outcome O = Attempt(Overall, AErr, RetryAfterSeconds);
    switch (O) {
    case Outcome::Done:
      Err = AErr;
      if (AErr.empty()) {
        ShedStreak = 0;
        B.reset(); // success ends the failure streak: next retry is fast
      }
      return AErr.empty();
    case Outcome::Shed:
      Net.Sheds++;
      // Shed storm: a daemon that sheds twice in a row is saturated; with
      // a failover ring, move the next dial to the neighbor instead of
      // queueing politely behind the flood.
      if (++ShedStreak >= 2 && Eps.size() > 1) {
        ShedStreak = 0;
        close();
        Cur = (Cur + 1) % Eps.size();
        Net.EndpointRotations++;
      }
      break;
    case Outcome::Transient:
      ShedStreak = 0;
      close(); // next iteration re-dials...
      if (Eps.size() > 1) {
        // ...starting at the neighbor: a reset/reap mid-request is the
        // failover signal, and the dedup'd request id makes landing on a
        // different daemon an attach-or-reread, never a recompute.
        Cur = (Cur + 1) % Eps.size();
        Net.EndpointRotations++;
      }
      break;
    }
    LastErr = AErr;
    if (Overall.expired())
      break;
    double Delay =
        O == Outcome::Shed ? B.next(RetryAfterSeconds) : B.next();
    if (!Overall.infinite() && Overall.secondsLeft() <= Delay)
      break;
    std::this_thread::sleep_for(std::chrono::duration<double>(Delay));
  }
  Err = LastErr.empty() ? "request failed after retries" : LastErr;
  if (Overall.expired()) {
    Net.DeadlineExpired++;
    Err = "deadline expired: " + Err;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Helpers.
//===----------------------------------------------------------------------===//

bool Client::runTrace(const TraceRequest &R, TraceResult &Out,
                      std::string &Err) {
  Request Req;
  Req.Id = nextId(); // one id across every retry: idempotent replay
  Req.K = Request::Kind::Trace;
  Req.Trace = R;

  return retryLoop(Err, [&](const net::Deadline &Overall, std::string &E,
                            double &RetryAfterSeconds) -> Outcome {
    Out = TraceResult();
    Req.DeadlineMs = Opt.DeadlineMs
                         ? uint64_t(Overall.secondsLeft() * 1000) + 1
                         : 0;
    if (!send(Frame{FrameType::Request, encodeRequest(Req)}, E))
      return Outcome::Transient;
    Frame F;
    bool Transient = false;
    while (awaitFrame(F, Overall, E, Transient)) {
      uint64_t Id = 0;
      std::string Body;
      switch (F.Type) {
      case FrameType::Accepted:
        continue;
      case FrameType::Rejected: {
        if (!decodeIdPayload(F.Payload, Id, Body) || Id != Req.Id)
          continue;
        std::string Reason;
        uint64_t RetryMs = 0;
        decodeRejectBody(Body, Reason, RetryMs);
        Out.Rejected = true;
        Out.RejectReason = Reason;
        Out.RetryAfterMs = RetryMs;
        if (RetryMs > 0) {
          RetryAfterSeconds = double(RetryMs) / 1000.0;
          E = "shed: " + Reason;
          return Outcome::Shed;
        }
        return Outcome::Done; // permanent: surface via Out.Rejected
      }
      case FrameType::Trace:
        if (decodeIdPayload(F.Payload, Id, Body) && Id == Req.Id)
          Out.EntryText = std::move(Body);
        continue;
      case FrameType::Done: {
        DoneInfo D;
        if (decodeDone(F.Payload, D) && D.Id == Req.Id) {
          Out.Done = D;
          Out.Ok = D.Status == 0;
          return Outcome::Done;
        }
        continue;
      }
      case FrameType::Error:
        E = "server error: " + F.Payload;
        return Outcome::Transient;
      case FrameType::Bye:
        E = "server shut down before the result arrived";
        return Outcome::Done; // a drained server will not come back
      default:
        continue; // diag/stats frames for other ids: skip
      }
    }
    return Transient ? Outcome::Transient : Outcome::Done;
  });
}

bool Client::runStudy(
    const std::string &Name, StudyResult &Out, std::string &Err,
    const std::function<void(const frontend::CaseResult &)> &OnRow) {
  Request Req;
  Req.Id = nextId();
  Req.K = Request::Kind::Study;
  Req.Study = Name;

  return retryLoop(Err, [&](const net::Deadline &Overall, std::string &E,
                            double &RetryAfterSeconds) -> Outcome {
    Out = StudyResult(); // a retry restarts the row stream from scratch
    Req.DeadlineMs = Opt.DeadlineMs
                         ? uint64_t(Overall.secondsLeft() * 1000) + 1
                         : 0;
    if (!send(Frame{FrameType::Request, encodeRequest(Req)}, E))
      return Outcome::Transient;
    Frame F;
    bool Transient = false;
    while (awaitFrame(F, Overall, E, Transient)) {
      uint64_t Id = 0;
      std::string Body;
      switch (F.Type) {
      case FrameType::Accepted:
        continue;
      case FrameType::Rejected: {
        if (!decodeIdPayload(F.Payload, Id, Body) || Id != Req.Id)
          continue;
        std::string Reason;
        uint64_t RetryMs = 0;
        decodeRejectBody(Body, Reason, RetryMs);
        Out.Rejected = true;
        Out.RejectReason = Reason;
        Out.RetryAfterMs = RetryMs;
        if (RetryMs > 0) {
          RetryAfterSeconds = double(RetryMs) / 1000.0;
          E = "shed: " + Reason;
          return Outcome::Shed;
        }
        return Outcome::Done;
      }
      case FrameType::Row: {
        if (!decodeIdPayload(F.Payload, Id, Body) || Id != Req.Id)
          continue;
        frontend::CaseResult R;
        if (!frontend::decodeCaseResult(Body, R)) {
          E = "undecodable case-result row from server";
          return Outcome::Transient;
        }
        Out.Rows.push_back(R);
        if (OnRow)
          OnRow(R);
        continue;
      }
      case FrameType::Done: {
        DoneInfo D;
        if (decodeDone(F.Payload, D) && D.Id == Req.Id) {
          Out.Done = D;
          Out.Ok = D.Status == 0;
          return Outcome::Done;
        }
        continue;
      }
      case FrameType::Error:
        E = "server error: " + F.Payload;
        return Outcome::Transient;
      case FrameType::Bye:
        E = "server shut down before the result arrived";
        return Outcome::Done;
      default:
        continue;
      }
    }
    return Transient ? Outcome::Transient : Outcome::Done;
  });
}

bool Client::ping(std::string &Err) {
  if (!send(Frame{FrameType::Ping, ""}, Err))
    return false;
  net::Deadline Overall = Opt.DeadlineMs > 0
                              ? net::Deadline::in(double(Opt.DeadlineMs) /
                                                  1000.0)
                              : net::Deadline();
  Frame F;
  bool Transient = false;
  while (awaitFrame(F, Overall, Err, Transient)) {
    if (F.Type == FrameType::Pong)
      return true;
    if (F.Type == FrameType::Error || F.Type == FrameType::Bye) {
      Err = "server error: " + F.Payload;
      return false;
    }
  }
  return false;
}

bool Client::getStats(std::string &Out, std::string &Err) {
  Request Req;
  Req.Id = nextId();
  Req.K = Request::Kind::Stats;

  return retryLoop(Err, [&](const net::Deadline &Overall, std::string &E,
                            double &RetryAfterSeconds) -> Outcome {
    Req.DeadlineMs = Opt.DeadlineMs
                         ? uint64_t(Overall.secondsLeft() * 1000) + 1
                         : 0;
    if (!send(Frame{FrameType::Request, encodeRequest(Req)}, E))
      return Outcome::Transient;
    Frame F;
    bool Got = false;
    bool Transient = false;
    while (awaitFrame(F, Overall, E, Transient)) {
      uint64_t Id = 0;
      std::string Body;
      if (F.Type == FrameType::Stats &&
          decodeIdPayload(F.Payload, Id, Body) && Id == Req.Id) {
        Out = std::move(Body);
        Got = true;
        continue;
      }
      if (F.Type == FrameType::Done) {
        DoneInfo D;
        if (decodeDone(F.Payload, D) && D.Id == Req.Id) {
          if (Got)
            return Outcome::Done;
          E = "stats done without a stats frame (" + D.Error + ")";
          return Outcome::Done;
        }
        continue;
      }
      if (F.Type == FrameType::Rejected &&
          decodeIdPayload(F.Payload, Id, Body) && Id == Req.Id) {
        std::string Reason;
        uint64_t RetryMs = 0;
        decodeRejectBody(Body, Reason, RetryMs);
        if (RetryMs > 0) {
          RetryAfterSeconds = double(RetryMs) / 1000.0;
          E = "shed: " + Reason;
          return Outcome::Shed;
        }
        E = "stats request rejected: " + Reason;
        return Outcome::Done;
      }
      if (F.Type == FrameType::Error || F.Type == FrameType::Bye) {
        E = "server error: " + F.Payload;
        return Outcome::Done;
      }
    }
    return Transient ? Outcome::Transient : Outcome::Done;
  });
}

bool Client::healthOnce(HealthInfo &Out, const net::Deadline &Overall,
                        std::string &Err, bool &Transient) {
  Transient = false;
  Request Req;
  Req.Id = nextId();
  Req.K = Request::Kind::Health;
  Req.DeadlineMs =
      Overall.infinite() ? 0 : uint64_t(Overall.secondsLeft() * 1000) + 1;
  if (!send(Frame{FrameType::Request, encodeRequest(Req)}, Err)) {
    Transient = true;
    return false;
  }
  Frame F;
  bool Got = false;
  while (awaitFrame(F, Overall, Err, Transient)) {
    uint64_t Id = 0;
    std::string Body;
    if (F.Type == FrameType::Health && decodeIdPayload(F.Payload, Id, Body) &&
        Id == Req.Id) {
      if (!decodeHealth(Body, Out)) {
        Err = "malformed health payload";
        Transient = true;
        return false;
      }
      Got = true;
      continue;
    }
    if (F.Type == FrameType::Done) {
      DoneInfo D;
      if (decodeDone(F.Payload, D) && D.Id == Req.Id) {
        if (Got)
          return true;
        Err = "health done without a snapshot (" + D.Error + ")";
        return false;
      }
      continue;
    }
    if (F.Type == FrameType::Error || F.Type == FrameType::Bye) {
      // A protocol-2 daemon answers `health` with an error frame and
      // closes; that is a permanent version mismatch, not a flaky link.
      Err = "server error: " + F.Payload;
      return false;
    }
  }
  return false;
}

bool Client::health(HealthInfo &Out, std::string &Err) {
  return retryLoop(Err, [&](const net::Deadline &Overall, std::string &E,
                            double &) -> Outcome {
    if (PeerVer < 3) {
      E = "peer speaks protocol " + std::to_string(PeerVer) +
          "; health needs protocol 3";
      return Outcome::Done;
    }
    bool Transient = false;
    if (healthOnce(Out, Overall, E, Transient))
      return Outcome::Done;
    return Transient ? Outcome::Transient : Outcome::Done;
  });
}

bool Client::reloadServer(std::string &Err) {
  Request Req;
  Req.Id = nextId();
  Req.K = Request::Kind::Reload;

  return retryLoop(Err, [&](const net::Deadline &Overall, std::string &E,
                            double &) -> Outcome {
    if (PeerVer < 3) {
      E = "peer speaks protocol " + std::to_string(PeerVer) +
          "; reload needs protocol 3";
      return Outcome::Done;
    }
    Req.DeadlineMs = Opt.DeadlineMs
                         ? uint64_t(Overall.secondsLeft() * 1000) + 1
                         : 0;
    if (!send(Frame{FrameType::Request, encodeRequest(Req)}, E))
      return Outcome::Transient;
    Frame F;
    bool Transient = false;
    while (awaitFrame(F, Overall, E, Transient)) {
      if (F.Type == FrameType::Done) {
        DoneInfo D;
        if (decodeDone(F.Payload, D) && D.Id == Req.Id) {
          if (D.Status == 0)
            return Outcome::Done;
          E = D.Error.empty() ? "reload failed" : D.Error;
          return Outcome::Done;
        }
        continue;
      }
      if (F.Type == FrameType::Error || F.Type == FrameType::Bye) {
        E = "server error: " + F.Payload;
        return Outcome::Done;
      }
    }
    return Transient ? Outcome::Transient : Outcome::Done;
  });
}

bool Client::shutdownServer(std::string &Err) {
  if (!send(Frame{FrameType::Shutdown, ""}, Err))
    return false;
  Frame F;
  while (recv(F, Err)) {
    if (F.Type == FrameType::Accepted || F.Type == FrameType::Bye)
      return true;
    if (F.Type == FrameType::Heartbeat)
      continue;
    if (F.Type == FrameType::Error) {
      Err = "server error: " + F.Payload;
      return false;
    }
  }
  // EOF after a shutdown request is success too: the server drained and
  // closed before the ack was read.
  return true;
}
