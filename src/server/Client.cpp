//===- server/Client.cpp - islarisd client library -----------------------------===//

#include "server/Client.h"

#include "support/Wire.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace islaris;
using namespace islaris::server;

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::connect(const std::string &SocketPath, std::string &Err) {
  close();
  sockaddr_un Addr{};
  if (SocketPath.size() >= sizeof Addr.sun_path) {
    Err = "socket path too long: " + SocketPath;
    return false;
  }
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) < 0) {
    Err = "connect(" + SocketPath + "): " + std::strerror(errno);
    close();
    return false;
  }
  // Handshake.
  std::ostringstream OS;
  support::wire::putU64(OS, ProtocolVersion);
  support::wire::putStr(OS, "islaris-client");
  if (!send(Frame{FrameType::Hello, OS.str()}, Err)) {
    close();
    return false;
  }
  Frame F;
  if (!recv(F, Err)) {
    close();
    return false;
  }
  if (F.Type == FrameType::Error) {
    Err = "server refused handshake: " + F.Payload;
    close();
    return false;
  }
  if (F.Type != FrameType::Welcome) {
    Err = std::string("expected welcome, got ") + frameTypeName(F.Type);
    close();
    return false;
  }
  support::wire::Cursor C(F.Payload);
  uint64_t Ver = C.u64();
  if (C.Fail || Ver != ProtocolVersion) {
    Err = "server speaks protocol " + std::to_string(Ver) + ", client " +
          std::to_string(ProtocolVersion);
    close();
    return false;
  }
  return true;
}

bool Client::sendRaw(const std::string &Bytes, std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N =
        ::send(Fd, Bytes.data() + Off, Bytes.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("send(): ") + std::strerror(errno);
      return false;
    }
    Off += size_t(N);
  }
  return true;
}

bool Client::send(const Frame &F, std::string &Err) {
  return sendRaw(encodeFrame(F), Err);
}

bool Client::recv(Frame &Out, std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  char Buf[64 * 1024];
  while (true) {
    FrameReader::Status S = Reader.next(Out, &Err);
    if (S == FrameReader::Status::Frame)
      return true;
    if (S == FrameReader::Status::Malformed)
      return false;
    ssize_t N = ::recv(Fd, Buf, sizeof Buf, 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0) {
      Err = std::string("recv(): ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      Err = "connection closed by server";
      return false;
    }
    Reader.feed(Buf, size_t(N));
  }
}

bool Client::runTrace(const TraceRequest &R, TraceResult &Out,
                      std::string &Err) {
  Out = TraceResult();
  Request Req;
  Req.Id = nextId();
  Req.K = Request::Kind::Trace;
  Req.Trace = R;
  if (!send(Frame{FrameType::Request, encodeRequest(Req)}, Err))
    return false;
  Frame F;
  while (recv(F, Err)) {
    uint64_t Id = 0;
    std::string Body;
    switch (F.Type) {
    case FrameType::Accepted:
      continue;
    case FrameType::Rejected:
      if (decodeIdPayload(F.Payload, Id, Body) && Id == Req.Id) {
        Out.Rejected = true;
        Out.RejectReason = Body;
        return true;
      }
      continue;
    case FrameType::Trace:
      if (decodeIdPayload(F.Payload, Id, Body) && Id == Req.Id)
        Out.EntryText = std::move(Body);
      continue;
    case FrameType::Done: {
      DoneInfo D;
      if (decodeDone(F.Payload, D) && D.Id == Req.Id) {
        Out.Done = D;
        Out.Ok = D.Status == 0;
        return true;
      }
      continue;
    }
    case FrameType::Error:
      Err = "server error: " + F.Payload;
      return false;
    case FrameType::Bye:
      Err = "server shut down before the result arrived";
      return false;
    default:
      continue; // diag/stats frames for other ids: skip
    }
  }
  return false;
}

bool Client::runStudy(
    const std::string &Name, StudyResult &Out, std::string &Err,
    const std::function<void(const frontend::CaseResult &)> &OnRow) {
  Out = StudyResult();
  Request Req;
  Req.Id = nextId();
  Req.K = Request::Kind::Study;
  Req.Study = Name;
  if (!send(Frame{FrameType::Request, encodeRequest(Req)}, Err))
    return false;
  Frame F;
  while (recv(F, Err)) {
    uint64_t Id = 0;
    std::string Body;
    switch (F.Type) {
    case FrameType::Accepted:
      continue;
    case FrameType::Rejected:
      if (decodeIdPayload(F.Payload, Id, Body) && Id == Req.Id) {
        Out.Rejected = true;
        Out.RejectReason = Body;
        return true;
      }
      continue;
    case FrameType::Row: {
      if (!decodeIdPayload(F.Payload, Id, Body) || Id != Req.Id)
        continue;
      frontend::CaseResult R;
      if (!frontend::decodeCaseResult(Body, R)) {
        Err = "undecodable case-result row from server";
        return false;
      }
      Out.Rows.push_back(R);
      if (OnRow)
        OnRow(R);
      continue;
    }
    case FrameType::Done: {
      DoneInfo D;
      if (decodeDone(F.Payload, D) && D.Id == Req.Id) {
        Out.Done = D;
        Out.Ok = D.Status == 0;
        return true;
      }
      continue;
    }
    case FrameType::Error:
      Err = "server error: " + F.Payload;
      return false;
    case FrameType::Bye:
      Err = "server shut down before the result arrived";
      return false;
    default:
      continue;
    }
  }
  return false;
}

bool Client::ping(std::string &Err) {
  if (!send(Frame{FrameType::Ping, ""}, Err))
    return false;
  Frame F;
  while (recv(F, Err)) {
    if (F.Type == FrameType::Pong)
      return true;
    if (F.Type == FrameType::Error || F.Type == FrameType::Bye) {
      Err = "server error: " + F.Payload;
      return false;
    }
  }
  return false;
}

bool Client::getStats(std::string &Out, std::string &Err) {
  Request Req;
  Req.Id = nextId();
  Req.K = Request::Kind::Stats;
  if (!send(Frame{FrameType::Request, encodeRequest(Req)}, Err))
    return false;
  Frame F;
  bool Got = false;
  while (recv(F, Err)) {
    uint64_t Id = 0;
    std::string Body;
    if (F.Type == FrameType::Stats &&
        decodeIdPayload(F.Payload, Id, Body) && Id == Req.Id) {
      Out = std::move(Body);
      Got = true;
      continue;
    }
    if (F.Type == FrameType::Done) {
      DoneInfo D;
      if (decodeDone(F.Payload, D) && D.Id == Req.Id)
        return Got;
      continue;
    }
    if (F.Type == FrameType::Rejected &&
        decodeIdPayload(F.Payload, Id, Body) && Id == Req.Id) {
      Err = "stats request rejected: " + Body;
      return false;
    }
    if (F.Type == FrameType::Error || F.Type == FrameType::Bye) {
      Err = "server error: " + F.Payload;
      return false;
    }
  }
  return false;
}

bool Client::shutdownServer(std::string &Err) {
  if (!send(Frame{FrameType::Shutdown, ""}, Err))
    return false;
  Frame F;
  while (recv(F, Err)) {
    if (F.Type == FrameType::Accepted || F.Type == FrameType::Bye)
      return true;
    if (F.Type == FrameType::Error) {
      Err = "server error: " + F.Payload;
      return false;
    }
  }
  // EOF after a shutdown request is success too: the server drained and
  // closed before the ack was read.
  return true;
}
