//===- server/Transport.h - Listener/endpoint abstraction -------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport layer under the islarisd frame protocol: one Endpoint
/// grammar and one Listener type covering both address families, so the
/// server, the client, the chaos proxy, and the tools all speak
///
///   /path/to/daemon.sock        AF_UNIX stream socket
///   host:port                   TCP (SO_REUSEADDR; TCP_NODELAY per
///                               connection — frames are small and
///                               latency-sensitive, Nagle only hurts)
///
/// and the frame protocol above never learns which one carried it.  A TCP
/// port of 0 binds ephemerally and local() reports the kernel-assigned
/// port, which is how the tests and the chaos proxy avoid fixed-port
/// collisions.
///
/// Unix-path binding is probe-first (PR 8): a path that already holds a
/// *live* daemon is refused instead of silently unlink()ed out from under
/// it — the historical unconditional unlink let a second islarisd orphan a
/// running daemon's socket, stranding its clients.  Only a socket nobody
/// answers (a previous daemon died without cleanup) is considered stale
/// and reclaimed.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SERVER_TRANSPORT_H
#define ISLARIS_SERVER_TRANSPORT_H

#include <cstdint>
#include <string>

namespace islaris::server {

struct Endpoint {
  enum class Kind : uint8_t { Unix, Tcp } K = Kind::Unix;
  std::string Path;    ///< Unix: socket path.
  std::string Host;    ///< Tcp: numeric or resolvable host.
  uint16_t Port = 0;   ///< Tcp: 0 = bind ephemeral.

  /// Renders back to the spec grammar ("path" or "host:port").
  std::string str() const;
};

/// Parses the endpoint grammar above.  "host:port" with an all-digit port
/// in [0, 65535] is TCP; everything else (and anything starting with '/'
/// or '.') is a Unix path.  False with \p Err set on an empty spec or an
/// out-of-range port.
bool parseEndpoint(const std::string &Spec, Endpoint &Out, std::string &Err);

/// True when a Unix socket at \p Path has a live listener: probe-connect
/// and see whether anyone accepts.  ECONNREFUSED (or a missing/non-socket
/// file) means stale.
bool unixSocketAlive(const std::string &Path);

/// One bound, listening socket of either family.
class Listener {
public:
  Listener() = default;
  ~Listener();

  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;

  /// Binds and listens on \p E.  For Unix endpoints, refuses a path with a
  /// live daemon (probe-first) and reclaims a stale one.  For TCP, sets
  /// SO_REUSEADDR and resolves the actual port into local().
  bool listenOn(const Endpoint &E, std::string &Err);

  /// Accepts one connection; -1 when none is pending or on error.  TCP
  /// connections get TCP_NODELAY.
  int acceptOne();

  /// Closes the listening socket (and unlinks an owned Unix path).
  void close();

  int fd() const { return Fd; }
  bool listening() const { return Fd >= 0; }

  /// The bound endpoint with the real port filled in (TCP port 0 resolves
  /// to the kernel-assigned one).
  const Endpoint &local() const { return Local; }

private:
  int Fd = -1;
  Endpoint Local;
  bool OwnsUnixPath = false;
};

/// Why a dial failed, for callers that treat "nobody is listening" and
/// "the listener is slow" differently (the failover client rotates
/// immediately on Refused but honors its backoff on Timeout — the TCP
/// analogue of unixSocketAlive's stale-vs-live distinction).
enum class DialError : uint8_t {
  None,    ///< The dial succeeded.
  Refused, ///< ECONNREFUSED / missing socket path: endpoint is down.
  Timeout, ///< The connect timer (or the peer's accept queue) ran out.
  Other,   ///< Resolution failure, permission, unreachable network, ...
};

/// Connects to \p E, TCP_NODELAY applied for TCP, bounded by
/// \p TimeoutSeconds (<= 0 = the OS default).  Returns the fd or -1 with
/// \p Err set (and \p DE classified, when non-null).
int connectEndpoint(const Endpoint &E, double TimeoutSeconds,
                    std::string &Err, DialError *DE = nullptr);

/// parse + connect in one step for callers holding a spec string.
int connectSpec(const std::string &Spec, double TimeoutSeconds,
                std::string &Err, DialError *DE = nullptr);

} // namespace islaris::server

#endif // ISLARIS_SERVER_TRANSPORT_H
