//===- server/ChaosProxy.cpp - Fault-injecting stream proxy --------------------===//

#include "server/ChaosProxy.h"

#include "server/Net.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace islaris::server;

//===----------------------------------------------------------------------===//
// Config from the environment.
//===----------------------------------------------------------------------===//

ChaosConfig ChaosConfig::fromEnv() {
  ChaosConfig C;
  if (const char *S = std::getenv("ISLARIS_FAULT_SEED"))
    C.Seed = std::strtoull(S, nullptr, 10);
  const char *Spec = std::getenv("ISLARIS_NETCHAOS");
  if (!Spec)
    return C;
  std::string Str(Spec);
  size_t Pos = 0;
  while (Pos < Str.size()) {
    size_t Comma = Str.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Str.size();
    std::string Entry = Str.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    size_t Eq = Entry.find('=');
    if (Eq == std::string::npos)
      continue; // malformed entry: ignored, like ISLARIS_FAULTS
    std::string Key = Entry.substr(0, Eq);
    double Val = std::strtod(Entry.c_str() + Eq + 1, nullptr);
    if (Key == "delay")
      C.DelayProb = Val;
    else if (Key == "delay-max-ms")
      C.DelayMaxMs = Val;
    else if (Key == "split")
      C.SplitProb = Val;
    else if (Key == "corrupt")
      C.CorruptProb = Val;
    else if (Key == "drop")
      C.DropProb = Val;
    else if (Key == "reset")
      C.ResetProb = Val;
  }
  return C;
}

//===----------------------------------------------------------------------===//
// Impl.
//===----------------------------------------------------------------------===//

namespace {

/// splitmix64, the FaultInjector-family generator.
uint64_t mix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

double unit(uint64_t &State) {
  return double(mix64(State) >> 11) * (1.0 / 9007199254740992.0);
}

/// Arrange for close() to send RST instead of FIN where the transport
/// supports it, so peers exercise ECONNRESET, not just clean EOF.
void hardClose(int Fd) {
  if (Fd < 0)
    return;
  linger Lg{1, 0};
  ::setsockopt(Fd, SOL_SOCKET, SO_LINGER, &Lg, sizeof Lg);
  ::close(Fd);
}

} // namespace

struct ChaosProxy::Impl {
  explicit Impl(ChaosConfig C) : Cfg(C) {}

  ChaosConfig Cfg;
  Endpoint Upstream;
  Listener Lsn;
  std::atomic<bool> Stopping{false};
  std::thread AcceptTh;
  uint64_t NextConn = 0;

  mutable std::mutex StatsMu;
  ChaosStats St;

  /// Live connection fd pairs, so stop() can reset them mid-stream.
  std::mutex ConnMu;
  struct Pair {
    int CFd = -1, UFd = -1;
    std::thread Th;
    std::atomic<bool> Done{false};
  };
  std::vector<std::unique_ptr<Pair>> Pairs;

  void bump(uint64_t ChaosStats::*F, uint64_t N = 1) {
    std::lock_guard<std::mutex> SL(StatsMu);
    St.*F += N;
  }

  void acceptLoop() {
    while (!Stopping.load(std::memory_order_relaxed)) {
      pollfd P{Lsn.fd(), POLLIN, 0};
      int R = ::poll(&P, 1, 100);
      reapPairs();
      if (R <= 0)
        continue;
      int CFd = Lsn.acceptOne();
      if (CFd < 0)
        continue;
      std::string Err;
      int UFd = connectEndpoint(Upstream, 5.0, Err);
      if (UFd < 0) {
        // Upstream down: the client sees an immediate reset, the honest
        // translation of "there is no server behind this proxy".
        hardClose(CFd);
        continue;
      }
      bump(&ChaosStats::Connections);
      auto PR = std::make_unique<Pair>();
      PR->CFd = CFd;
      PR->UFd = UFd;
      Pair *Raw = PR.get();
      uint64_t ConnIx = NextConn++;
      {
        std::lock_guard<std::mutex> CL(ConnMu);
        Pairs.push_back(std::move(PR));
      }
      Raw->Th = std::thread([this, Raw, ConnIx] {
        pump(*Raw, Cfg.Seed * 0x100000001b3ull + ConnIx + 1);
        Raw->Done.store(true, std::memory_order_release);
      });
    }
  }

  void reapPairs() {
    std::vector<std::unique_ptr<Pair>> Dead;
    {
      std::lock_guard<std::mutex> CL(ConnMu);
      for (auto It = Pairs.begin(); It != Pairs.end();) {
        if ((*It)->Done.load(std::memory_order_acquire)) {
          Dead.push_back(std::move(*It));
          It = Pairs.erase(It);
        } else {
          ++It;
        }
      }
    }
    for (auto &P : Dead)
      if (P->Th.joinable())
        P->Th.join();
  }

  /// Forward one received chunk through the fault lottery.  Returns false
  /// when the connection pair should die.
  bool forwardChunk(int Dst, char *Buf, size_t N, uint64_t &Rng) {
    if (Cfg.ResetProb > 0 && unit(Rng) < Cfg.ResetProb) {
      bump(&ChaosStats::Resets);
      return false;
    }
    if (Cfg.DropProb > 0 && unit(Rng) < Cfg.DropProb) {
      // Mid-frame loss: a strict prefix goes through, then the reset.
      size_t Keep = N > 1 ? size_t(mix64(Rng) % N) : 0;
      if (Keep > 0)
        net::writeAll(Dst, Buf, Keep, net::Deadline::in(10));
      bump(&ChaosStats::Drops);
      return false;
    }
    if (Cfg.CorruptProb > 0 && unit(Rng) < Cfg.CorruptProb) {
      // Flip one byte by a nonzero delta so the chunk provably changed;
      // the frame checksum downstream must catch it.
      size_t At = size_t(mix64(Rng) % N);
      Buf[At] = char(Buf[At] ^ (1 + mix64(Rng) % 255));
      bump(&ChaosStats::Corruptions);
    }
    if (Cfg.DelayProb > 0 && unit(Rng) < Cfg.DelayProb) {
      bump(&ChaosStats::Delays);
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          unit(Rng) * Cfg.DelayMaxMs));
    }
    if (Cfg.SplitProb > 0 && unit(Rng) < Cfg.SplitProb) {
      // Trickle: tiny pieces with a breath between, the worst legal TCP
      // delivery a reader must already tolerate.  Small chunks go byte-ish
      // at a time (the adversarial boundary coverage); big ones bound the
      // piece count so one split of a multi-KB result frame costs
      // milliseconds, not seconds of gap sleeps.
      bump(&ChaosStats::Splits);
      size_t Floor = N / 64;
      size_t Off = 0;
      while (Off < N) {
        size_t Piece = 1 + size_t(mix64(Rng) % 4);
        if (Piece < Floor)
          Piece = Floor;
        if (Piece > N - Off)
          Piece = N - Off;
        if (net::writeAll(Dst, Buf + Off, Piece, net::Deadline::in(10)) !=
            net::IoStatus::Ok)
          return false;
        Off += Piece;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      bump(&ChaosStats::BytesForwarded, N);
      return true;
    }
    if (net::writeAll(Dst, Buf, N, net::Deadline::in(10)) !=
        net::IoStatus::Ok)
      return false;
    bump(&ChaosStats::BytesForwarded, N);
    return true;
  }

  void pump(Pair &P, uint64_t Seed) {
    uint64_t Rng = Seed ? Seed : 1;
    char Buf[16 * 1024];
    bool Alive = true;
    while (Alive && !Stopping.load(std::memory_order_relaxed)) {
      pollfd PF[2] = {{P.CFd, POLLIN, 0}, {P.UFd, POLLIN, 0}};
      int R = ::poll(PF, 2, 100);
      if (R < 0) {
        if (errno == EINTR)
          continue;
        break;
      }
      if (R == 0)
        continue;
      for (int I = 0; I < 2 && Alive; ++I) {
        if (!(PF[I].revents & (POLLIN | POLLERR | POLLHUP)))
          continue;
        ssize_t N = ::recv(PF[I].fd, Buf, sizeof Buf, 0);
        if (N <= 0) {
          Alive = false;
          break;
        }
        Alive = forwardChunk(I == 0 ? P.UFd : P.CFd, Buf, size_t(N), Rng);
      }
    }
    // Both directions die together: half-proxied connections are a fault
    // mode the *server* simulates (half-open reap), not this proxy.
    // Closing under ConnMu keeps stop()'s shutdown sweep off a recycled
    // fd number.
    std::lock_guard<std::mutex> CL(ConnMu);
    hardClose(P.CFd);
    hardClose(P.UFd);
    P.CFd = P.UFd = -1;
  }
};

ChaosProxy::ChaosProxy(ChaosConfig C) : I(std::make_unique<Impl>(C)) {}

ChaosProxy::~ChaosProxy() { stop(); }

bool ChaosProxy::start(const std::string &ListenSpec,
                       const std::string &UpstreamSpec, std::string &Err) {
  if (!parseEndpoint(UpstreamSpec, I->Upstream, Err))
    return false;
  Endpoint L;
  if (!parseEndpoint(ListenSpec, L, Err))
    return false;
  if (!I->Lsn.listenOn(L, Err))
    return false;
  I->AcceptTh = std::thread([this] { I->acceptLoop(); });
  return true;
}

void ChaosProxy::stop() {
  bool Expected = false;
  if (!I->Stopping.compare_exchange_strong(Expected, true)) {
    if (I->AcceptTh.joinable())
      I->AcceptTh.join();
    return;
  }
  if (I->AcceptTh.joinable())
    I->AcceptTh.join();
  I->Lsn.close();
  // Wake every pump out of poll by shutting the sockets down under it,
  // then join; the pumps do the closing themselves.
  {
    std::lock_guard<std::mutex> CL(I->ConnMu);
    for (auto &P : I->Pairs) {
      if (P->CFd >= 0)
        ::shutdown(P->CFd, SHUT_RDWR);
      if (P->UFd >= 0)
        ::shutdown(P->UFd, SHUT_RDWR);
    }
  }
  for (;;) {
    std::unique_ptr<Impl::Pair> P;
    {
      std::lock_guard<std::mutex> CL(I->ConnMu);
      if (I->Pairs.empty())
        break;
      P = std::move(I->Pairs.back());
      I->Pairs.pop_back();
    }
    if (P->Th.joinable())
      P->Th.join();
  }
}

Endpoint ChaosProxy::boundEndpoint() const { return I->Lsn.local(); }

ChaosStats ChaosProxy::stats() const {
  std::lock_guard<std::mutex> SL(I->StatsMu);
  return I->St;
}
