//===- server/Client.h - islarisd client library ----------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the islarisd protocol: a blocking connection that
/// handshakes on connect and exposes one-call helpers for the request
/// kinds (trace, study, stats, ping, shutdown).  Each helper issues one
/// request and consumes frames until its `done` (or `rejected`) arrives;
/// concurrency comes from opening multiple clients, one per thread, which
/// is exactly how bench_server and the dedup tests drive the daemon.
///
/// Fleet failover (PR 10): connect() accepts a comma-separated endpoint
/// list.  The retry machinery keeps per-endpoint health — an endpoint
/// whose dial is *refused* (nobody listening) is rotated past immediately,
/// one that *times out* (slow, saturated) costs one backoff delay — and a
/// dead endpoint is re-probed on its own capped-exponential schedule.  The
/// request id is minted once per helper call and survives rotation, so a
/// replay that lands on a different daemon sharing the store dedups or
/// re-reads the published entry; it never recomputes divergently.
///
/// Hostile-network discipline (PR 8):
///
///  - Endpoints: connect() takes the Transport grammar (Unix path or TCP
///    "host:port"), so the same client crosses a real network.
///
///  - Deadlines: ClientOptions::DeadlineMs bounds each helper end to end;
///    the remaining patience travels in every request so the server can
///    abandon work this client will no longer read.
///
///  - Retries: sheds (rejected + retry-after) and transient transport
///    failures (reset, EOF mid-stream, corrupted frame, silence) are
///    retried with capped exponential backoff and deterministic seeded
///    jitter (support::Backoff), reconnecting as needed.  Retrying is safe
///    by construction: request ids are idempotent per client, and trace
///    requests are canonicalized and deduped at admission, so a replay
///    can only re-observe or attach — never recompute divergently.
///
///  - Heartbeats: while a helper waits it emits client->server heartbeats
///    and expects bytes (results or server heartbeats) within
///    SilenceTimeoutSeconds, so a dead server is detected and retried
///    rather than awaited forever.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SERVER_CLIENT_H
#define ISLARIS_SERVER_CLIENT_H

#include "frontend/CaseStudies.h"
#include "server/Net.h"
#include "server/Protocol.h"
#include "server/Transport.h"
#include "support/Backoff.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace islaris::server {

/// Network behavior knobs; the defaults are tuned for a trustworthy local
/// socket (generous, retrying).  Tests and the chaos harness tighten them.
struct ClientOptions {
  std::string Name = "islaris-client";
  /// End-to-end bound on each helper call, milliseconds; 0 = none.  Also
  /// carried to the server as this client's patience.
  uint64_t DeadlineMs = 0;
  /// Client->server heartbeat interval while waiting for frames (0 = off).
  double HeartbeatSeconds = 2;
  /// Declare the server dead after this much silence while waiting
  /// (0 = wait forever).  The server heartbeats every few seconds while
  /// work is in flight, so silence past this is a wedged link, not a slow
  /// job.
  double SilenceTimeoutSeconds = 30;
  double ConnectTimeoutSeconds = 5;
  /// Deadline on each socket write (0 = block forever).
  double WriteTimeoutSeconds = 10;
  /// Total tries per helper call, including the first (1 = never retry).
  unsigned MaxAttempts = 5;
  double BackoffBaseSeconds = 0.05;
  double BackoffCapSeconds = 2.0;
  /// Jitter seed; fixed seed => reproducible retry instants.
  uint64_t Seed = 1;
  /// With a multi-endpoint spec: probe every endpoint's health at
  /// connect() and settle on the least loaded (queue depth + active jobs)
  /// instead of the first reachable one.  Off by default — list order is
  /// deterministic, which the tests and CI rely on.
  bool PreferLeastLoaded = false;
};

/// Monotonic per-client counters for the retry machinery.
struct ClientNetStats {
  uint64_t Retries = 0;        ///< Re-attempts after the first try.
  uint64_t Sheds = 0;          ///< rejected(retry-after > 0) seen.
  uint64_t Reconnects = 0;     ///< Successful re-dials mid-call.
  uint64_t HeartbeatsSent = 0;
  uint64_t HeartbeatsSeen = 0;
  uint64_t DeadlineExpired = 0; ///< Calls that died on DeadlineMs.
  uint64_t DialsRefused = 0;   ///< Dials answered "nobody listening"
                               ///< (rotated past without a backoff sleep).
  uint64_t DialsTimedOut = 0;  ///< Dials that ran out the connect timer.
  uint64_t EndpointRotations = 0; ///< Active-endpoint switches.
};

class Client {
public:
  Client() = default;
  explicit Client(ClientOptions O) : Opt(std::move(O)) {}
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Adjust options (takes effect on the next call; set before connect()).
  void setOptions(ClientOptions O) { Opt = std::move(O); }
  const ClientOptions &options() const { return Opt; }
  ClientNetStats netStats() const { return Net; }

  /// Connects to \p Spec — one endpoint (Unix path or TCP "host:port") or
  /// a comma-separated failover list — and performs the hello/welcome
  /// handshake with the first reachable endpoint (or, with
  /// PreferLeastLoaded, the least-loaded one).
  bool connect(const std::string &Spec, std::string &Err);
  void close();
  bool connected() const { return Fd >= 0; }

  /// The protocol version negotiated at the last handshake (0 before any).
  uint64_t peerVersion() const { return PeerVer; }
  /// The endpoint currently (or most recently) connected to.
  std::string activeEndpoint() const {
    return Eps.empty() ? Spec : Eps[Cur].Spec;
  }
  /// Attempt index of the shared retry backoff — 0 right after a success
  /// (the streak resets); test observability for the pacing contract.
  unsigned retryBackoffAttempt() const {
    return RetryB ? RetryB->attempt() : 0;
  }

  /// Low-level frame I/O (used by the protocol tests).
  bool send(const Frame &F, std::string &Err);
  /// Sends raw bytes, bypassing the frame encoder (malformed-input tests).
  bool sendRaw(const std::string &Bytes, std::string &Err);
  /// Blocks for the next frame.  False on EOF, framing error, or I/O
  /// error.
  bool recv(Frame &Out, std::string &Err);

  /// Outcome of one trace request.
  struct TraceResult {
    bool Ok = false;
    bool Rejected = false;
    std::string RejectReason;
    uint64_t RetryAfterMs = 0; ///< Hint from the final shed, when Rejected.
    /// Serialized cache entry (TraceCache::serializeEntry form) — the
    /// bit-identical artifact the dedup test compares across clients.
    std::string EntryText;
    DoneInfo Done;
  };
  /// Issues a trace request and consumes frames until done/rejected,
  /// retrying sheds and transient transport failures per ClientOptions.
  bool runTrace(const TraceRequest &R, TraceResult &Out, std::string &Err);

  /// Outcome of one study/suite request.
  struct StudyResult {
    bool Ok = false;
    bool Rejected = false;
    std::string RejectReason;
    uint64_t RetryAfterMs = 0;
    std::vector<frontend::CaseResult> Rows;
    DoneInfo Done; ///< Done.Status is the suite exit code (0/1/2).
  };
  /// Issues a study request ("suite" or one of the nine study names),
  /// streaming each row through \p OnRow as it arrives.  On a retry the
  /// row vector restarts from scratch (OnRow may see rows twice; rows are
  /// deterministic, so the final vector is the authoritative one).
  bool runStudy(const std::string &Name, StudyResult &Out, std::string &Err,
                const std::function<void(const frontend::CaseResult &)>
                    &OnRow = nullptr);

  /// Round-trips a ping.
  bool ping(std::string &Err);

  /// Fetches the server's stats JSON.
  bool getStats(std::string &Out, std::string &Err);

  /// Fetches the server's readiness snapshot (protocol 3; fails fast with
  /// a version error against a protocol-2 peer).
  bool health(HealthInfo &Out, std::string &Err);

  /// Asks the server to hot-reload its ISA models (protocol 3).  True when
  /// the daemon swapped in the new parse; false with \p Err when the
  /// reload was rejected (e.g. the new source does not parse — the daemon
  /// keeps serving the old generation).
  bool reloadServer(std::string &Err);

  /// Asks the server to drain and exit.  Returns once the request is
  /// acknowledged (the drain completes asynchronously).
  bool shutdownServer(std::string &Err);

private:
  uint64_t nextId() { return ++LastId; }

  /// One attempt's terminal state, driving the retry loop.
  enum class Outcome {
    Done,      ///< Result (or permanent rejection) delivered; stop.
    Transient, ///< Transport died; reconnect and retry.
    Shed,      ///< Server shed the request; back off (honor hint), retry.
  };

  /// Per-endpoint health for the failover walk: a dead endpoint is skipped
  /// until its Backoff-paced re-probe instant arrives.
  struct EndpointHealth {
    std::string Spec;
    bool Dead = false;
    double RetryAtSec = 0; ///< Steady-clock second of the next re-probe.
    support::Backoff Probe;
  };

  /// One dial + handshake against endpoint \p I (no retries); classifies
  /// the failure into \p DE for the rotation policy.
  bool dialEndpoint(size_t I, std::string &Err, DialError &DE);
  /// Walks the endpoint ring from Cur: refused endpoints are rotated past
  /// immediately, a timeout/other failure ends the walk (the caller's
  /// backoff paces the retry).  Dead endpoints not yet due for a re-probe
  /// are skipped unless every endpoint is backing off.
  bool dialAny(std::string &Err);
  /// Probes every endpoint's health and re-dials the least-loaded one
  /// (connect()-time only, behind ClientOptions::PreferLeastLoaded).
  void settleLeastLoaded();
  /// Sends one health request on the current connection and waits for its
  /// snapshot (no retries; health() wraps it in the retry loop).
  bool healthOnce(HealthInfo &Out, const net::Deadline &Overall,
                  std::string &Err, bool &Transient);
  bool reconnect(std::string &Err);
  bool sendHello(std::string &Err);
  /// Waits for the next non-heartbeat frame, ticking heartbeats out and
  /// enforcing silence/overall deadlines.  False with \p Transient telling
  /// the caller whether a retry could help.
  bool awaitFrame(Frame &Out, const net::Deadline &Overall, std::string &Err,
                  bool &Transient);
  /// Shared retry driver around one attempt closure.
  bool retryLoop(
      std::string &Err,
      const std::function<Outcome(const net::Deadline &, std::string &,
                                  double & /*RetryAfterSeconds*/)> &Attempt);

  ClientOptions Opt;
  ClientNetStats Net;
  std::string Spec; ///< Raw spec of the last connect() (possibly a list).
  std::vector<EndpointHealth> Eps; ///< Parsed failover ring.
  size_t Cur = 0;                  ///< Index of the active endpoint.
  uint64_t PeerVer = 0;            ///< Negotiated protocol version.
  unsigned ShedStreak = 0; ///< Consecutive sheds from the active endpoint.
  /// The shared retry pacer: persists across helper calls so a shed storm
  /// keeps its long delays between calls, and resets on every success so
  /// one healthy answer restores fast retries.
  std::optional<support::Backoff> RetryB;
  int Fd = -1;
  uint64_t LastId = 0;
  FrameReader Reader;
  double LastSendSec = 0; ///< Heartbeat pacing (steady-clock seconds).
};

} // namespace islaris::server

#endif // ISLARIS_SERVER_CLIENT_H
