//===- server/Client.h - islarisd client library ----------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the islarisd protocol: a blocking connection that
/// handshakes on connect and exposes one-call helpers for the request
/// kinds (trace, study, stats, ping, shutdown).  Each helper issues one
/// request and consumes frames until its `done` (or `rejected`) arrives;
/// concurrency comes from opening multiple clients, one per thread, which
/// is exactly how bench_server and the dedup tests drive the daemon.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SERVER_CLIENT_H
#define ISLARIS_SERVER_CLIENT_H

#include "frontend/CaseStudies.h"
#include "server/Protocol.h"

#include <functional>
#include <string>
#include <vector>

namespace islaris::server {

class Client {
public:
  Client() = default;
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects and performs the hello/welcome handshake.
  bool connect(const std::string &SocketPath, std::string &Err);
  void close();
  bool connected() const { return Fd >= 0; }

  /// Low-level frame I/O (used by the protocol tests).
  bool send(const Frame &F, std::string &Err);
  /// Sends raw bytes, bypassing the frame encoder (malformed-input tests).
  bool sendRaw(const std::string &Bytes, std::string &Err);
  /// Blocks for the next frame.  False on EOF, framing error, or I/O
  /// error.
  bool recv(Frame &Out, std::string &Err);

  /// Outcome of one trace request.
  struct TraceResult {
    bool Ok = false;
    bool Rejected = false;
    std::string RejectReason;
    /// Serialized cache entry (TraceCache::serializeEntry form) — the
    /// bit-identical artifact the dedup test compares across clients.
    std::string EntryText;
    DoneInfo Done;
  };
  /// Issues a trace request and consumes frames until done/rejected.
  bool runTrace(const TraceRequest &R, TraceResult &Out, std::string &Err);

  /// Outcome of one study/suite request.
  struct StudyResult {
    bool Ok = false;
    bool Rejected = false;
    std::string RejectReason;
    std::vector<frontend::CaseResult> Rows;
    DoneInfo Done; ///< Done.Status is the suite exit code (0/1/2).
  };
  /// Issues a study request ("suite" or one of the nine study names),
  /// streaming each row through \p OnRow as it arrives.
  bool runStudy(const std::string &Name, StudyResult &Out, std::string &Err,
                const std::function<void(const frontend::CaseResult &)>
                    &OnRow = nullptr);

  /// Round-trips a ping.
  bool ping(std::string &Err);

  /// Fetches the server's stats JSON.
  bool getStats(std::string &Out, std::string &Err);

  /// Asks the server to drain and exit.  Returns once the request is
  /// acknowledged (the drain completes asynchronously).
  bool shutdownServer(std::string &Err);

private:
  uint64_t nextId() { return ++LastId; }

  int Fd = -1;
  uint64_t LastId = 0;
  FrameReader Reader;
};

} // namespace islaris::server

#endif // ISLARIS_SERVER_CLIENT_H
