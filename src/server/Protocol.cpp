//===- server/Protocol.cpp - islarisd wire protocol ---------------------------===//

#include "server/Protocol.h"

#include "cache/TraceCache.h" // fnv1a64, shared with the journal codec
#include "support/Wire.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <iomanip>
#include <sstream>

using namespace islaris;
using namespace islaris::server;
using islaris::support::wire::Cursor;
using islaris::support::wire::putStr;
using islaris::support::wire::putU64;

static constexpr std::string_view FrameMagic = "(islaris-frame 1 ";

const char *islaris::server::frameTypeName(FrameType T) {
  switch (T) {
  case FrameType::Hello:
    return "hello";
  case FrameType::Request:
    return "request";
  case FrameType::Ping:
    return "ping";
  case FrameType::Shutdown:
    return "shutdown";
  case FrameType::Welcome:
    return "welcome";
  case FrameType::Accepted:
    return "accepted";
  case FrameType::Rejected:
    return "rejected";
  case FrameType::Trace:
    return "trace";
  case FrameType::Row:
    return "row";
  case FrameType::Diag:
    return "diag";
  case FrameType::Stats:
    return "stats";
  case FrameType::Done:
    return "done";
  case FrameType::Pong:
    return "pong";
  case FrameType::Bye:
    return "bye";
  case FrameType::Error:
    return "error";
  case FrameType::Heartbeat:
    return "heartbeat";
  case FrameType::Health:
    return "health";
  }
  return "error";
}

bool islaris::server::frameTypeFromName(const std::string &Name,
                                        FrameType &Out) {
  static const FrameType All[] = {
      FrameType::Hello,    FrameType::Request, FrameType::Ping,
      FrameType::Shutdown, FrameType::Welcome, FrameType::Accepted,
      FrameType::Rejected, FrameType::Trace,   FrameType::Row,
      FrameType::Diag,     FrameType::Stats,   FrameType::Done,
      FrameType::Pong,     FrameType::Bye,     FrameType::Error,
      FrameType::Heartbeat, FrameType::Health,
  };
  for (FrameType T : All)
    if (Name == frameTypeName(T)) {
      Out = T;
      return true;
    }
  return false;
}

std::string islaris::server::encodeFrame(const Frame &F) {
  std::ostringstream OS;
  OS << FrameMagic << frameTypeName(F.Type) << " " << F.Payload.size() << " "
     << std::hex << std::setfill('0') << std::setw(16)
     << cache::fnv1a64(F.Payload) << ")\n"
     << F.Payload << "\n";
  return OS.str();
}

void FrameReader::feed(const char *Data, size_t N) {
  // Compact lazily: once the consumed prefix dominates, shift it off so a
  // long-lived connection does not grow its buffer without bound.
  if (Pos > 4096 && Pos > Buf.size() / 2) {
    Buf.erase(0, Pos);
    Pos = 0;
  }
  Buf.append(Data, N);
}

static bool isHexSV(std::string_view S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (!((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f') ||
          (C >= 'A' && C <= 'F')))
      return false;
  return true;
}

static bool isDigitsSV(std::string_view S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (C < '0' || C > '9')
      return false;
  return true;
}

FrameReader::Status FrameReader::next(Frame &Out, std::string *Err) {
  auto Die = [&](const char *Why) {
    Dead = true;
    if (Err)
      *Err = Why;
    return Status::Malformed;
  };
  if (Dead)
    return Die("frame stream already dead");

  std::string_view Rest(Buf.data() + Pos, Buf.size() - Pos);
  if (Rest.empty())
    return Status::NeedMore;

  // Magic.  A partial prefix of the magic is NeedMore; a byte that can
  // never extend to the magic is Malformed.
  size_t CmpLen = std::min(Rest.size(), FrameMagic.size());
  if (Rest.compare(0, CmpLen, FrameMagic.substr(0, CmpLen)) != 0)
    return Die("bad frame magic");
  if (Rest.size() < FrameMagic.size())
    return Status::NeedMore;

  size_t NL = Rest.find('\n');
  if (NL == std::string_view::npos) {
    // Headers are short; a kilobyte without a newline is corruption, not a
    // slow sender.
    if (Rest.size() > 1024)
      return Die("unterminated frame header");
    return Status::NeedMore;
  }

  // "<type> <len> <fnv64-hex>)" between the magic and the newline.
  std::string_view Header =
      Rest.substr(FrameMagic.size(), NL - FrameMagic.size());
  size_t Sp1 = Header.find(' ');
  size_t Sp2 = Sp1 == std::string_view::npos ? std::string_view::npos
                                             : Header.find(' ', Sp1 + 1);
  if (Sp2 == std::string_view::npos || Header.empty() || Header.back() != ')')
    return Die("malformed frame header");
  std::string TypeName(Header.substr(0, Sp1));
  std::string_view Len = Header.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  std::string_view Sum = Header.substr(Sp2 + 1, Header.size() - Sp2 - 2);
  FrameType T;
  if (!frameTypeFromName(TypeName, T))
    return Die("unknown frame type");
  if (!isDigitsSV(Len) || Sum.size() != 16 || !isHexSV(Sum))
    return Die("malformed frame header");
  uint64_t WantLen = std::strtoull(std::string(Len).c_str(), nullptr, 10);
  uint64_t WantSum = std::strtoull(std::string(Sum).c_str(), nullptr, 16);
  if (WantLen > MaxFramePayload)
    return Die("frame payload exceeds protocol bound");

  size_t PayloadStart = NL + 1;
  if (PayloadStart + WantLen + 1 > Rest.size())
    return Status::NeedMore; // payload + trailing newline not all here yet
  std::string_view Payload = Rest.substr(PayloadStart, WantLen);
  if (Rest[PayloadStart + WantLen] != '\n')
    return Die("missing frame terminator");
  if (cache::fnv1a64(Payload) != WantSum)
    return Die("frame checksum mismatch");

  Out.Type = T;
  Out.Payload = std::string(Payload);
  Pos += PayloadStart + WantLen + 1;
  return Status::Frame;
}

//===----------------------------------------------------------------------===//
// Payload codecs.
//===----------------------------------------------------------------------===//

std::string islaris::server::encodeRequest(const Request &R) {
  std::ostringstream OS;
  putU64(OS, R.Id);
  putU64(OS, R.DeadlineMs);
  switch (R.K) {
  case Request::Kind::Trace: {
    putStr(OS, "trace");
    const TraceRequest &T = R.Trace;
    putStr(OS, T.Arch);
    putU64(OS, T.Opcode);
    putU64(OS, T.SymMask);
    putU64(OS, T.CacheRegReads);
    putU64(OS, T.SinksOnly);
    putU64(OS, T.MaxPaths);
    putU64(OS, T.Assumes.size());
    for (const TraceRequest::Assume &A : T.Assumes) {
      putStr(OS, A.Base);
      putStr(OS, A.Field);
      putU64(OS, A.Width);
      putU64(OS, A.Value);
    }
    break;
  }
  case Request::Kind::Study:
    putStr(OS, "study");
    putStr(OS, R.Study);
    break;
  case Request::Kind::Stats:
    putStr(OS, "stats");
    break;
  case Request::Kind::Health:
    putStr(OS, "health");
    break;
  case Request::Kind::Reload:
    putStr(OS, "reload");
    break;
  }
  return OS.str();
}

bool islaris::server::decodeRequest(const std::string &Payload, Request &Out) {
  Cursor C(Payload);
  Out = Request();
  Out.Id = C.u64();
  Out.DeadlineMs = C.u64();
  std::string Kind = C.str();
  if (Kind == "trace") {
    Out.K = Request::Kind::Trace;
    TraceRequest &T = Out.Trace;
    T.Arch = C.str();
    T.Opcode = uint32_t(C.u64());
    T.SymMask = uint32_t(C.u64());
    T.CacheRegReads = C.u64() != 0;
    T.SinksOnly = C.u64() != 0;
    T.MaxPaths = unsigned(C.u64());
    uint64_t N = C.u64();
    if (C.Fail || N > 4096)
      return false;
    T.Assumes.resize(size_t(N));
    for (TraceRequest::Assume &A : T.Assumes) {
      A.Base = C.str();
      A.Field = C.str();
      A.Width = unsigned(C.u64());
      A.Value = C.u64();
    }
  } else if (Kind == "study") {
    Out.K = Request::Kind::Study;
    Out.Study = C.str();
  } else if (Kind == "stats") {
    Out.K = Request::Kind::Stats;
  } else if (Kind == "health") {
    Out.K = Request::Kind::Health;
  } else if (Kind == "reload") {
    Out.K = Request::Kind::Reload;
  } else {
    // A protocol-2 server lands here for "health"/"reload" and answers
    // with its malformed-request error frame — the negotiated downgrade
    // the v3 client expects.
    return false;
  }
  return !C.Fail;
}

std::string islaris::server::encodeHello(const HelloInfo &H) {
  std::ostringstream OS;
  putU64(OS, H.Version);
  putStr(OS, H.ClientName);
  putU64(OS, H.DefaultDeadlineMs);
  putU64(OS, H.HeartbeatMs);
  return OS.str();
}

bool islaris::server::decodeHello(const std::string &Payload, HelloInfo &Out) {
  Cursor C(Payload);
  Out = HelloInfo();
  Out.Version = C.u64();
  if (C.Fail)
    return false;
  Out.ClientName = C.str();
  if (C.Fail) {
    // Version-only hello: acceptable (the extras are informational).
    Out.ClientName.clear();
    return true;
  }
  // Protocol-1 hellos stop here; missing deadline/heartbeat fields stay 0.
  uint64_t Deadline = C.u64();
  if (C.Fail)
    return true;
  Out.DefaultDeadlineMs = Deadline;
  uint64_t Hb = C.u64();
  if (!C.Fail)
    Out.HeartbeatMs = Hb;
  return true;
}

std::string islaris::server::encodeHealth(const HealthInfo &H) {
  std::ostringstream OS;
  putU64(OS, H.Version);
  putU64(OS, H.Pid);
  support::wire::putF(OS, H.UptimeSeconds);
  putU64(OS, H.QueueDepth);
  putU64(OS, H.ActiveJobs);
  putU64(OS, H.Draining);
  putU64(OS, H.Generation);
  putStr(OS, H.ModelFpHex);
  putU64(OS, H.DegradedFlags);
  putU64(OS, H.PublishFailures);
  support::wire::putF(OS, H.DegradedSeconds);
  return OS.str();
}

bool islaris::server::decodeHealth(const std::string &Payload,
                                   HealthInfo &Out) {
  Cursor C(Payload);
  Out = HealthInfo();
  Out.Version = C.u64();
  Out.Pid = C.u64();
  Out.UptimeSeconds = C.f();
  Out.QueueDepth = C.u64();
  Out.ActiveJobs = C.u64();
  Out.Draining = C.u64();
  Out.Generation = C.u64();
  if (C.Fail)
    return false;
  // Trailing fields appended by later versions decode fail-soft, the same
  // discipline as decodeHello: absent fields keep their zero defaults.
  std::string Fp = C.str();
  if (C.Fail)
    return true;
  Out.ModelFpHex = Fp;
  uint64_t Flags = C.u64();
  if (C.Fail)
    return true;
  Out.DegradedFlags = Flags;
  uint64_t PF = C.u64();
  if (C.Fail)
    return true;
  Out.PublishFailures = PF;
  double DS = C.f();
  if (!C.Fail)
    Out.DegradedSeconds = DS;
  return true;
}

std::string islaris::server::encodeRejectBody(const std::string &Reason,
                                              uint64_t RetryAfterMs) {
  std::ostringstream OS;
  putStr(OS, Reason);
  putU64(OS, RetryAfterMs);
  return OS.str();
}

void islaris::server::decodeRejectBody(const std::string &Body,
                                       std::string &Reason,
                                       uint64_t &RetryAfterMs) {
  Cursor C(Body);
  std::string R = C.str();
  if (C.Fail) {
    // Legacy bare-string reason; no hint.
    Reason = Body;
    RetryAfterMs = 0;
    return;
  }
  Reason = R;
  uint64_t RA = C.u64();
  RetryAfterMs = C.Fail ? 0 : RA;
}

std::string islaris::server::encodeDone(const DoneInfo &D) {
  std::ostringstream OS;
  putU64(OS, D.Id);
  putU64(OS, D.Status);
  putStr(OS, D.Source);
  putU64(OS, D.Attempts);
  support::wire::putF(OS, D.Seconds);
  putStr(OS, D.Error);
  return OS.str();
}

bool islaris::server::decodeDone(const std::string &Payload, DoneInfo &Out) {
  Cursor C(Payload);
  Out = DoneInfo();
  Out.Id = C.u64();
  Out.Status = unsigned(C.u64());
  Out.Source = C.str();
  Out.Attempts = C.u64();
  Out.Seconds = C.f();
  Out.Error = C.str();
  return !C.Fail;
}

std::string islaris::server::encodeIdPayload(uint64_t Id,
                                             const std::string &Body) {
  std::ostringstream OS;
  putU64(OS, Id);
  putStr(OS, Body);
  return OS.str();
}

bool islaris::server::decodeIdPayload(const std::string &Payload, uint64_t &Id,
                                      std::string &Body) {
  Cursor C(Payload);
  Id = C.u64();
  Body = C.str();
  return !C.Fail;
}
