//===- server/Server.cpp - Resident verification server -----------------------===//

#include "server/Server.h"

#include "cache/BatchDriver.h"
#include "cache/Fingerprint.h"
#include "cache/Generations.h"
#include "cache/Scrub.h"
#include "cache/SideCondCache.h"
#include "cache/TraceCache.h"
#include "frontend/CaseStudies.h"
#include "models/Models.h"
#include "sail/Parser.h"
#include "server/Net.h"
#include "server/Transport.h"
#include "support/Diag.h"
#include "support/Wire.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace islaris;
using namespace islaris::server;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T) {
  return std::chrono::duration<double>(Clock::now() - T).count();
}

/// One accepted connection.  The reader thread owns recv(); any thread may
/// send through the write mutex.  Open flips false exactly once, after
/// which sends become no-ops (a disconnected client's queued jobs still
/// execute — their frames just fall on the floor).
struct Conn {
  int Fd = -1;
  uint64_t Id = 0;
  std::mutex WriteMu;
  std::atomic<bool> Open{true};
  /// Set as the reader thread exits; tells the accept loop this Conn can
  /// be joined, closed, and dropped from the connection table.
  std::atomic<bool> ReaderDone{false};
  /// Instant of the last byte received from this peer, as seconds on the
  /// steady clock; the half-open reaper compares silence against it.
  std::atomic<double> LastRecvSec{0};
  /// Requests accepted for this connection and not yet answered with a
  /// done/rejected; the per-client quota and the half-open policy (a
  /// silent peer with work in flight is waiting, not dead) both read it.
  std::atomic<uint32_t> InFlight{0};
  /// Connection-default request deadline from the hello (0 = none).
  std::atomic<uint64_t> DefaultDeadlineMs{0};
  /// Protocol version negotiated at hello: min(client's, ours).  Gates the
  /// protocol-3 request kinds so a v2 peer sees exactly the protocol-2
  /// behavior it negotiated.
  std::atomic<uint64_t> Version{ProtocolVersion};
  std::thread Reader;
};

/// A client waiting on a result: the connection plus the request id the
/// result frames must carry, plus the enqueue instant for the done-frame
/// latency field and the instant after which the client has given up.
struct Waiter {
  std::shared_ptr<Conn> C;
  uint64_t ReqId = 0;
  Clock::time_point Enqueued;
  bool HasDeadline = false;
  Clock::time_point Deadline{};

  bool expired(Clock::time_point Now) const {
    return HasDeadline && Now >= Deadline;
  }
  /// Seconds of patience left; <0 when expired, a huge value when none.
  double secondsLeft(Clock::time_point Now) const {
    if (!HasDeadline)
      return 1e18;
    return std::chrono::duration<double>(Deadline - Now).count();
  }
};

/// The in-flight group of one distinct trace key: every waiter attached
/// before the result fans out shares the single execution.  All mutation
/// happens under the scheduler mutex.
struct TraceGroup {
  cache::Fingerprint Key;
  /// Shared ownership pins the model generation the group was admitted
  /// under: a hot reload swaps the registry but an in-flight group keeps
  /// executing against the parse its cache key was derived from.
  std::shared_ptr<const sail::Model> Model;
  std::string Arch;
  isla::OpcodeSpec Op;
  isla::Assumptions Assume; ///< Owned: the batch driver borrows it.
  isla::ExecOptions Opts;
  std::vector<Waiter> Waiters; ///< [0] is the primary requester.
};

/// One queued unit of work.
struct Job {
  enum class Kind : uint8_t { Trace, Study, Stats } K = Kind::Trace;
  Waiter W;
  std::shared_ptr<TraceGroup> Group; ///< Trace jobs.
  std::string Study;                 ///< Study name or "suite".
};

/// One parsed generation of the ISA models.  Immutable once published;
/// modelFor hands out shared_ptrs, so a generation stays alive while any
/// in-flight group still executes against it.
struct ModelSet {
  std::shared_ptr<const sail::Model> A64, Rv;
  uint64_t Generation = 0;
  /// Combined fingerprint of both models (hex) — the store-generation
  /// identity health probes report, so a fleet client can tell whether two
  /// daemons serve the same model revision.
  std::string FpHex;
};

} // namespace

struct Server::Impl {
  explicit Impl(ServerConfig C) : Cfg(std::move(C)) {}

  ServerConfig Cfg;
  Clock::time_point StartedAt;

  Listener Lsn;
  std::atomic<bool> Running{false};
  std::atomic<bool> Draining{false};
  bool TornDown = false;
  std::mutex TeardownMu;

  std::unique_ptr<cache::TraceCache> Cache;
  std::unique_ptr<cache::SideCondStore> SideCond;
  cache::TraceCache *PrevCache = nullptr;
  cache::SideCondStore *PrevSide = nullptr;
  support::RunLimits PrevLimits;

  mutable std::mutex StatsMu;
  ServerStats St;

  std::mutex ConnMu;
  std::vector<std::shared_ptr<Conn>> Conns;
  uint64_t NextConnId = 1;
  std::thread AcceptTh;

  // Scheduler state: per-client FIFOs, the round-robin cursor over client
  // ids, the dedup index, and the activity clock — all under QMu.
  mutable std::mutex QMu;
  /// Wakes workers only.  Anyone else sleeping on QCv could steal an
  /// enqueue's notify_one and strand the job (the waitImpl/idleLoop
  /// waiters have their own cvs for exactly that reason).
  std::condition_variable QCv;
  /// Wakes threads blocked in wait() when a drain begins.
  std::condition_variable ShutCv;
  std::map<uint64_t, std::deque<std::shared_ptr<Job>>> Queues;
  uint64_t RRCursor = 0; ///< Last client id served; pick the next above it.
  size_t TotalQueued = 0;
  unsigned ActiveJobs = 0;
  std::map<cache::Fingerprint, std::shared_ptr<TraceGroup>> Inflight;
  Clock::time_point LastActivity = Clock::now();
  bool EvictedSinceActivity = false;

  std::vector<std::thread> WorkerThs;
  std::thread IdleTh;
  /// The idle timer ticks on its own cv: were it to share QCv, an
  /// enqueue's notify_one could wake the timer instead of a worker and
  /// strand the job until the next notification (a lost wakeup).
  std::mutex IdleMu;
  std::condition_variable IdleCv;

  /// Serializes study requests: the study runners consult process-wide
  /// ambient state, so two concurrent suite runs would race on it.
  std::mutex StudyMu;

  // Model registry (PR 10): the current generation behind ModelMu (held
  // only for pointer reads/swaps — never across a parse).  In-flight jobs
  // pin the generation they were admitted against via the TraceGroup's
  // shared_ptr; a retired set dies with its last job.  (Identity safety
  // across the free is the fingerprint memo's job: it keys on Model::Uid,
  // which is never reused, not on the recyclable address.)
  mutable std::mutex ModelMu;
  std::shared_ptr<const ModelSet> Models;
  /// Serializes whole reloads (parse + touch + swap) without blocking
  /// modelFor readers.
  std::mutex ReloadMu;

  // Degraded-mode state (PR 10): entered when the stores report publish
  // failures (device full, dying disk), left when a periodic write probe
  // succeeds.  Seen* remember the store counters already accounted for.
  mutable std::mutex DegradeMu;
  bool Degraded = false;
  Clock::time_point DegradedAt;
  Clock::time_point LastProbeAt;
  double DegradedAccumSeconds = 0;
  uint64_t SeenCacheWF = 0, SeenSideWF = 0;

  void bump(uint64_t ServerStats::*F, uint64_t N = 1) {
    std::lock_guard<std::mutex> SL(StatsMu);
    St.*F += N;
  }

  static double nowSec() {
    return std::chrono::duration<double>(Clock::now().time_since_epoch())
        .count();
  }

  /// The one write path every server-side byte takes (PR 8): deadline-
  /// bounded, EINTR/partial-write safe, SIGPIPE-free.  A timed-out or
  /// failed send declares the connection dead and wakes its reader so the
  /// accept loop reaps it — a stalled peer costs one WriteTimeoutSeconds
  /// window, never a wedged worker or drain.
  bool sendAll(Conn &C, const std::string &Bytes) {
    std::lock_guard<std::mutex> WL(C.WriteMu);
    if (!C.Open.load(std::memory_order_relaxed))
      return false;
    net::IoStatus S =
        net::writeAll(C.Fd, Bytes.data(), Bytes.size(),
                      net::Deadline::in(Cfg.WriteTimeoutSeconds));
    if (S == net::IoStatus::Ok)
      return true;
    if (S == net::IoStatus::Timeout)
      bump(&ServerStats::StalledWrites);
    C.Open.store(false, std::memory_order_relaxed);
    ::shutdown(C.Fd, SHUT_RDWR);
    return false;
  }

  bool sendFrame(Conn &C, FrameType T, const std::string &Payload) {
    return sendAll(C, encodeFrame(Frame{T, Payload}));
  }

  void touchActivity() {
    LastActivity = Clock::now();
    EvictedSinceActivity = false;
  }

  std::shared_ptr<const sail::Model> modelFor(const std::string &Arch) {
    std::lock_guard<std::mutex> ML(ModelMu);
    if (Arch == "aarch64")
      return Models->A64;
    if (Arch == "rv64")
      return Models->Rv;
    return nullptr;
  }

  /// Parses one model generation from the built-in sources, with per-arch
  /// file overrides from Cfg.ModelDir when present.  Null with \p Err set
  /// when a source does not parse; nothing is published.
  std::shared_ptr<const ModelSet> parseModelSet(uint64_t Generation,
                                                std::string &Err) {
    std::string A64Src = models::aarch64Source();
    std::string RvSrc = models::rv64Source();
    if (!Cfg.ModelDir.empty()) {
      auto Override = [&](const char *File, std::string &Src) {
        std::ifstream In(Cfg.ModelDir + "/" + File, std::ios::binary);
        if (!In)
          return; // missing override keeps the builtin
        std::ostringstream Buf;
        Buf << In.rdbuf();
        Src = Buf.str();
      };
      Override("aarch64.sail", A64Src);
      Override("rv64.sail", RvSrc);
    }
    std::string PErr;
    std::shared_ptr<const sail::Model> A = sail::parseModel(A64Src, PErr);
    if (!A) {
      Err = "aarch64 model: " + PErr;
      return nullptr;
    }
    std::shared_ptr<const sail::Model> R = sail::parseModel(RvSrc, PErr);
    if (!R) {
      Err = "rv64 model: " + PErr;
      return nullptr;
    }
    auto S = std::make_shared<ModelSet>();
    S->A64 = std::move(A);
    S->Rv = std::move(R);
    S->Generation = Generation;
    cache::Fingerprinter FP;
    FP.str(cache::fingerprintModel(*S->A64).toHex());
    FP.str(cache::fingerprintModel(*S->Rv).toHex());
    S->FpHex = FP.digest().toHex();
    return S;
  }

  bool reloadModelsImpl(std::string &Err) {
    std::lock_guard<std::mutex> RL(ReloadMu);
    uint64_t NextGen;
    {
      std::lock_guard<std::mutex> ML(ModelMu);
      NextGen = Models->Generation + 1;
    }
    auto S = parseModelSet(NextGen, Err);
    if (!S) {
      bump(&ServerStats::ReloadFailures);
      return false;
    }
    // Record the fresh fingerprints in the store's generation index before
    // the swap, so a health probe that sees the new generation never races
    // a store whose bookkeeping predates it.
    if (Cfg.Persist) {
      cache::touchGeneration(Cache->dir(), cache::fingerprintModel(*S->A64));
      cache::touchGeneration(Cache->dir(), cache::fingerprintModel(*S->Rv));
    }
    {
      std::lock_guard<std::mutex> ML(ModelMu);
      Models = std::move(S); // in-flight groups keep the old set alive
    }
    bump(&ServerStats::Reloads);
    return true;
  }

  isla::ExecOptions execOptionsFor(const TraceRequest &T) {
    isla::ExecOptions EO;
    EO.CacheRegReads = T.CacheRegReads;
    EO.SinksOnly = T.SinksOnly;
    EO.MaxPaths = T.MaxPaths;
    EO.DeadlineSeconds = Cfg.Limits.InstrSeconds;
    EO.SolverCheckSeconds = Cfg.Limits.SolverCheckSeconds;
    EO.SolverConflicts = Cfg.Limits.SolverConflicts;
    EO.SolverPropagations = Cfg.Limits.SolverPropagations;
    return EO;
  }

  //===--------------------------------------------------------------------===//
  // Listener + per-connection reader.
  //===--------------------------------------------------------------------===//

  void acceptLoop() {
    while (!Draining.load(std::memory_order_relaxed)) {
      pollfd P{Lsn.fd(), POLLIN, 0};
      int R = ::poll(&P, 1, 200);
      reapConns();
      if (R <= 0)
        continue;
      int Fd = Lsn.acceptOne();
      if (Fd < 0)
        continue;
      auto C = std::make_shared<Conn>();
      C->Fd = Fd;
      C->LastRecvSec.store(nowSec(), std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> CL(ConnMu);
        C->Id = NextConnId++;
        Conns.push_back(C);
      }
      bump(&ServerStats::Connections);
      C->Reader = std::thread([this, C] { readLoop(C); });
    }
  }

  void readLoop(std::shared_ptr<Conn> C) {
    // Catch-all: the frame/payload decoders validate their inputs, but a
    // hostile payload that finds any remaining throwing path (bad_alloc
    // from an absurd length, a std::stoul deep in a parser, a container
    // at()) must cost the client its connection, not the daemon its life —
    // an exception escaping a thread entry point is std::terminate.
    try {
      readLoopInner(C);
    } catch (const std::exception &E) {
      bump(&ServerStats::Malformed);
      sendFrame(*C, FrameType::Error,
                std::string("internal error handling request: ") + E.what());
    } catch (...) {
      bump(&ServerStats::Malformed);
      sendFrame(*C, FrameType::Error, "internal error handling request");
    }
    C->Open.store(false, std::memory_order_relaxed);
    ::shutdown(C->Fd, SHUT_RDWR);
    C->ReaderDone.store(true, std::memory_order_release);
  }

  void readLoopInner(const std::shared_ptr<Conn> &C) {
    FrameReader FR;
    char Buf[64 * 1024];
    Clock::time_point LastHbSent = Clock::now();
    // Poll in short ticks rather than blocking in recv: each tick is a
    // chance to heartbeat a waiting client and to notice a half-open peer,
    // without a second thread per connection.
    double Tick = 0.2;
    if (Cfg.HeartbeatSeconds > 0 && Cfg.HeartbeatSeconds < Tick)
      Tick = Cfg.HeartbeatSeconds;
    while (C->Open.load(std::memory_order_relaxed)) {
      size_t Got = 0;
      net::IoStatus S =
          net::readSome(C->Fd, Buf, sizeof Buf, net::Deadline::in(Tick), Got);
      if (S == net::IoStatus::Timeout) {
        if (Cfg.HeartbeatSeconds > 0 &&
            C->InFlight.load(std::memory_order_relaxed) > 0 &&
            secondsSince(LastHbSent) >= Cfg.HeartbeatSeconds) {
          LastHbSent = Clock::now();
          if (sendFrame(*C, FrameType::Heartbeat, ""))
            bump(&ServerStats::HeartbeatsSent);
        }
        if (Cfg.HalfOpenReapSeconds > 0 &&
            C->InFlight.load(std::memory_order_relaxed) == 0 &&
            nowSec() - C->LastRecvSec.load(std::memory_order_relaxed) >
                Cfg.HalfOpenReapSeconds) {
          bump(&ServerStats::HalfOpenReaped);
          return;
        }
        continue;
      }
      if (S != net::IoStatus::Ok)
        return;
      C->LastRecvSec.store(nowSec(), std::memory_order_relaxed);
      FR.feed(Buf, Got);
      Frame F;
      std::string Err;
      FrameReader::Status FS;
      while ((FS = FR.next(F, &Err)) == FrameReader::Status::Frame)
        if (!handleFrame(C, F))
          return;
      if (FS == FrameReader::Status::Malformed) {
        bump(&ServerStats::Malformed);
        sendFrame(*C, FrameType::Error, "malformed frame: " + Err);
        return;
      }
    }
  }

  /// Drop connections whose reader has exited: join the thread, close the
  /// fd, erase from the table.  Without this a long-lived daemon leaks one
  /// fd plus one joinable thread per short-lived client until accept()
  /// fails on fd exhaustion.  Late result frames for a reaped client are
  /// already no-ops: sendAll checks Open under WriteMu, and the close
  /// happens under the same mutex, so no send can race the fd.
  void reapConns() {
    std::vector<std::shared_ptr<Conn>> Dead;
    {
      std::lock_guard<std::mutex> L(ConnMu);
      for (auto It = Conns.begin(); It != Conns.end();) {
        if ((*It)->ReaderDone.load(std::memory_order_acquire)) {
          Dead.push_back(*It);
          It = Conns.erase(It);
        } else {
          ++It;
        }
      }
    }
    for (auto &C : Dead) {
      if (C->Reader.joinable())
        C->Reader.join();
      std::lock_guard<std::mutex> WL(C->WriteMu);
      if (C->Fd >= 0) {
        ::close(C->Fd);
        C->Fd = -1;
      }
    }
  }

  /// Returns false when the connection should close.
  bool handleFrame(const std::shared_ptr<Conn> &C, const Frame &F) {
    switch (F.Type) {
    case FrameType::Hello: {
      HelloInfo H;
      if (!decodeHello(F.Payload, H) || H.Version < MinProtocolVersion ||
          H.Version > ProtocolVersion) {
        sendFrame(*C, FrameType::Error,
                  "unsupported protocol version " + std::to_string(H.Version) +
                      " (server speaks " +
                      std::to_string(MinProtocolVersion) + ".." +
                      std::to_string(ProtocolVersion) + ")");
        return false;
      }
      C->DefaultDeadlineMs.store(H.DefaultDeadlineMs,
                                 std::memory_order_relaxed);
      C->Version.store(H.Version, std::memory_order_relaxed);
      std::ostringstream OS;
      // The welcome echoes the negotiated version — min(client's, ours) —
      // not the server's own, so a protocol-2 peer keeps speaking the
      // protocol it knows.
      support::wire::putU64(OS, H.Version);
      support::wire::putU64(OS, uint64_t(::getpid()));
      support::wire::putStr(OS, "islarisd");
      return sendFrame(*C, FrameType::Welcome, OS.str());
    }
    case FrameType::Heartbeat:
      // Liveness only: the byte arrival already refreshed LastRecvSec.
      bump(&ServerStats::HeartbeatsSeen);
      return true;
    case FrameType::Ping:
      return sendFrame(*C, FrameType::Pong, "");
    case FrameType::Shutdown:
      sendFrame(*C, FrameType::Accepted, encodeIdPayload(0, "shutdown"));
      requestShutdownImpl();
      return true;
    case FrameType::Request: {
      Request R;
      if (!decodeRequest(F.Payload, R)) {
        bump(&ServerStats::Malformed);
        sendFrame(*C, FrameType::Error, "malformed request payload");
        return false;
      }
      // Protocol-3 request kinds on a protocol-2 connection get exactly
      // what a real protocol-2 server would answer: its decoder cannot
      // parse them, so it reports a malformed payload and closes.
      if ((R.K == Request::Kind::Health || R.K == Request::Kind::Reload) &&
          C->Version.load(std::memory_order_relaxed) < 3) {
        bump(&ServerStats::Malformed);
        sendFrame(*C, FrameType::Error, "malformed request payload");
        return false;
      }
      admit(C, R);
      return true;
    }
    default:
      // A server-to-client frame type arriving at the server is a protocol
      // violation, same as a framing error.
      bump(&ServerStats::Malformed);
      sendFrame(*C, FrameType::Error,
                std::string("unexpected frame type: ") +
                    frameTypeName(F.Type));
      return false;
    }
  }

  //===--------------------------------------------------------------------===//
  // Admission.
  //===--------------------------------------------------------------------===//

  /// Permanent rejection: the request itself is invalid, retrying is
  /// pointless (retry-after 0).
  void reject(Conn &C, uint64_t Id, const std::string &Why) {
    bump(&ServerStats::Rejected);
    sendFrame(C, FrameType::Rejected,
              encodeIdPayload(Id, encodeRejectBody(Why, 0)));
  }

  /// Load shed: the request is fine, the server is not — carry a
  /// retry-after hint scaled by queue pressure so a polite client comes
  /// back when there is room.  Call with QMu NOT held.
  void shed(Conn &C, uint64_t Id, const std::string &Why,
            size_t QueuedNow) {
    bump(&ServerStats::Rejected);
    bump(&ServerStats::Shed);
    uint64_t Base = Cfg.ShedRetryAfterMs ? Cfg.ShedRetryAfterMs : 100;
    size_t Depth = Cfg.MaxQueueDepth ? Cfg.MaxQueueDepth : 1;
    uint64_t Hint = Base + Base * uint64_t(QueuedNow) / uint64_t(Depth);
    sendFrame(C, FrameType::Rejected,
              encodeIdPayload(Id, encodeRejectBody(Why, Hint)));
  }

  void admit(const std::shared_ptr<Conn> &C, const Request &R) {
    bump(&ServerStats::Requests);

    // Readiness probes answer inline, before the drain check, the queue,
    // and the per-client quota: a probe must get through exactly when the
    // daemon is busiest or draining (the snapshot says so), and it is not
    // work, so it never competes with work.
    if (R.K == Request::Kind::Health) {
      bump(&ServerStats::HealthRequests);
      sendFrame(*C, FrameType::Health,
                encodeIdPayload(R.Id, encodeHealth(healthSnapshotImpl())));
      DoneInfo D;
      D.Id = R.Id;
      D.Source = "health";
      sendFrame(*C, FrameType::Done, encodeDone(D));
      return;
    }

    if (Draining.load(std::memory_order_relaxed)) {
      // A drain is a *shed*, not a permanent rejection: the request is
      // fine, this daemon is leaving.  The retry-after hint lets a lone
      // client wait out a restart, and a failover client's shed-storm
      // rotation carries the request to a surviving daemon.
      size_t Q;
      {
        std::lock_guard<std::mutex> QL(QMu);
        Q = TotalQueued;
      }
      shed(*C, R.Id, "server draining", Q);
      return;
    }

    // Reloads also run inline (on this connection's reader thread): the
    // parse is milliseconds, and serializing it behind queued work would
    // let a flooded daemon defer the very reload meant to fix it.
    if (R.K == Request::Kind::Reload) {
      Clock::time_point T0 = Clock::now();
      std::string RErr;
      bool Ok = reloadModelsImpl(RErr);
      DoneInfo D;
      D.Id = R.Id;
      D.Status = Ok ? 0 : 2; // infrastructure failure, never a verdict
      D.Source = "reload";
      D.Seconds = secondsSince(T0);
      D.Error = RErr;
      sendFrame(*C, FrameType::Done, encodeDone(D));
      return;
    }

    Waiter W{C, R.Id, Clock::now()};
    uint64_t DeadlineMs = R.DeadlineMs
                              ? R.DeadlineMs
                              : C->DefaultDeadlineMs.load(
                                    std::memory_order_relaxed);
    if (DeadlineMs > 0) {
      W.HasDeadline = true;
      W.Deadline = W.Enqueued + std::chrono::milliseconds(DeadlineMs);
    }

    // Per-client quota: a connection flooding requests past its in-flight
    // cap is shed before its work touches the queue, independently of the
    // global bound — admission-tier isolation, not just fairness at pop.
    if (Cfg.MaxInflightPerClient > 0 &&
        C->InFlight.load(std::memory_order_relaxed) >=
            Cfg.MaxInflightPerClient) {
      size_t Q;
      {
        std::lock_guard<std::mutex> QL(QMu);
        Q = TotalQueued;
      }
      shed(*C, R.Id,
           "client quota exceeded (" +
               std::to_string(Cfg.MaxInflightPerClient) + " in flight)",
           Q);
      return;
    }

    auto J = std::make_shared<Job>();
    J->W = W;

    switch (R.K) {
    case Request::Kind::Stats:
      bump(&ServerStats::StatsRequests);
      J->K = Job::Kind::Stats;
      break;
    case Request::Kind::Study: {
      bump(&ServerStats::StudyRequests);
      if (!validStudy(R.Study)) {
        reject(*C, R.Id, "unknown case study: " + R.Study);
        return;
      }
      J->K = Job::Kind::Study;
      J->Study = R.Study;
      break;
    }
    case Request::Kind::Health:
    case Request::Kind::Reload:
      return; // answered inline above; unreachable
    case Request::Kind::Trace: {
      bump(&ServerStats::TraceRequests);
      std::shared_ptr<const sail::Model> M = modelFor(R.Trace.Arch);
      if (!M) {
        reject(*C, R.Id, "unknown architecture: " + R.Trace.Arch);
        return;
      }
      // Widths come off the wire: BitVec(Width) allocates (Width+63)/64
      // words, so an unchecked width near 2^32 across thousands of assumes
      // would force multi-GB allocations (and an uncaught bad_alloc) in
      // the reader thread.  Register fields never exceed the 64-bit
      // target register width.
      for (const TraceRequest::Assume &A : R.Trace.Assumes) {
        if (A.Width == 0 || A.Width > 64) {
          reject(*C, R.Id,
                 "assume width out of range (1..64): " +
                     std::to_string(A.Width));
          return;
        }
      }
      auto G = std::make_shared<TraceGroup>();
      G->Model = std::move(M);
      G->Arch = R.Trace.Arch;
      G->Op = isla::OpcodeSpec{BitVec(32, R.Trace.Opcode),
                               BitVec(32, R.Trace.SymMask)};
      for (const TraceRequest::Assume &A : R.Trace.Assumes)
        G->Assume.assume(itl::Reg(A.Base, A.Field),
                         BitVec(A.Width, A.Value));
      G->Opts = execOptionsFor(R.Trace);
      G->Key = cache::traceCacheKey(G->Arch, *G->Model, G->Op, G->Assume,
                                    G->Opts);
      G->Waiters.push_back(W);

      std::unique_lock<std::mutex> L(QMu);
      touchActivity();
      // Cross-client dedup: an identical request already queued or
      // executing absorbs this one — no new queue entry, one execution,
      // result fan-out.  Attach is exempt from the queue bound because it
      // adds no work.
      auto It = Inflight.find(G->Key);
      if (It != Inflight.end()) {
        It->second->Waiters.push_back(W);
        L.unlock();
        C->InFlight.fetch_add(1, std::memory_order_relaxed);
        bump(&ServerStats::DedupFanout);
        sendFrame(*C, FrameType::Accepted, encodeIdPayload(R.Id, "dedup"));
        return;
      }
      if (TotalQueued >= Cfg.MaxQueueDepth) {
        size_t Q = TotalQueued;
        L.unlock();
        shed(*C, R.Id, "queue full", Q);
        return;
      }
      J->K = Job::Kind::Trace;
      J->Group = G;
      Inflight[G->Key] = G;
      Queues[C->Id].push_back(J);
      ++TotalQueued;
      L.unlock();
      C->InFlight.fetch_add(1, std::memory_order_relaxed);
      QCv.notify_one();
      sendFrame(*C, FrameType::Accepted, encodeIdPayload(R.Id, "queued"));
      return;
    }
    }

    // Stats/study jobs share the same bounded, per-client-fair queue.
    std::unique_lock<std::mutex> L(QMu);
    touchActivity();
    if (TotalQueued >= Cfg.MaxQueueDepth) {
      size_t Q = TotalQueued;
      L.unlock();
      shed(*C, R.Id, "queue full", Q);
      return;
    }
    Queues[C->Id].push_back(J);
    ++TotalQueued;
    L.unlock();
    C->InFlight.fetch_add(1, std::memory_order_relaxed);
    QCv.notify_one();
    sendFrame(*C, FrameType::Accepted, encodeIdPayload(R.Id, "queued"));
  }

  /// One request id retired: the done (or deadline-expiry) frame is out,
  /// the per-client quota slot frees up.
  static void retire(Waiter &W) {
    W.C->InFlight.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Tell a waiter its deadline passed before (or while) its work ran.
  /// Status 2 = infrastructure, Source "deadline": the verdict was never
  /// computed, so this can never be mistaken for a proof failure.
  void expireWaiter(Waiter &W, const char *Why) {
    bump(&ServerStats::DeadlineExpired);
    DoneInfo D;
    D.Id = W.ReqId;
    D.Status = 2;
    D.Source = "deadline";
    D.Seconds = secondsSince(W.Enqueued);
    D.Error = Why;
    sendFrame(*W.C, FrameType::Done, encodeDone(D));
    retire(W);
  }

  static bool validStudy(const std::string &S) {
    static const char *Names[] = {"memcpy-arm",    "memcpy-rv", "hvc",
                                  "pkvm",          "unaligned", "uart",
                                  "rbit",          "binsearch-arm",
                                  "binsearch-rv",  "suite"};
    for (const char *N : Names)
      if (S == N)
        return true;
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Workers.
  //===--------------------------------------------------------------------===//

  /// Round-robin pop: the next client id (cyclically) above the cursor
  /// with queued work.  A flooding client advances the cursor past itself
  /// after every pop, so other clients' single requests interleave 1:1
  /// with its backlog.
  std::shared_ptr<Job> popLocked() {
    if (TotalQueued == 0)
      return nullptr;
    auto It = Queues.upper_bound(RRCursor);
    for (size_t Hops = 0; Hops <= Queues.size(); ++Hops) {
      if (It == Queues.end())
        It = Queues.begin();
      if (!It->second.empty()) {
        RRCursor = It->first;
        auto J = It->second.front();
        It->second.pop_front();
        --TotalQueued;
        // Drop drained clients from the table so it tracks clients with
        // work, not every client ever seen; the cursor tolerates missing
        // ids via upper_bound.
        if (It->second.empty())
          Queues.erase(It);
        return J;
      }
      ++It;
    }
    return nullptr;
  }

  void workerLoop() {
    while (true) {
      std::shared_ptr<Job> J;
      {
        std::unique_lock<std::mutex> L(QMu);
        QCv.wait(L, [&] {
          return TotalQueued > 0 || Draining.load(std::memory_order_relaxed);
        });
        J = popLocked();
        if (!J) {
          if (Draining.load(std::memory_order_relaxed))
            return;
          continue;
        }
        ++ActiveJobs;
      }
      switch (J->K) {
      case Job::Kind::Trace:
        runTraceJob(*J);
        break;
      case Job::Kind::Study:
        runStudyJob(*J);
        break;
      case Job::Kind::Stats: {
        if (J->W.expired(Clock::now())) {
          expireWaiter(J->W, "deadline expired in queue");
          break;
        }
        sendFrame(*J->W.C, FrameType::Stats,
                  encodeIdPayload(J->W.ReqId, renderStatsImpl()));
        DoneInfo D;
        D.Id = J->W.ReqId;
        D.Source = "stats";
        D.Seconds = secondsSince(J->W.Enqueued);
        sendFrame(*J->W.C, FrameType::Done, encodeDone(D));
        retire(J->W);
        break;
      }
      }
      // Degraded-mode detector: any publish failures the job just caused
      // flip the daemon into cache-off mode once, instead of surfacing as
      // one error storm per request (see maybeDegrade).
      maybeDegrade();
      {
        std::lock_guard<std::mutex> L(QMu);
        --ActiveJobs;
        touchActivity();
      }
      QCv.notify_all();
    }
  }

  /// Compares the stores' publish-failure counters against the last
  /// accounted values; on growth, charges PublishFailures and (first time)
  /// enters cache-off degraded mode: both stores stop touching the disk,
  /// requests keep being served from memory and fresh execution, and the
  /// idle thread's write probe decides when to come back.
  void maybeDegrade() {
    if (!Cfg.Persist)
      return;
    uint64_t CW = Cache->stats().WriteFailures;
    uint64_t SW = SideCond->stats().WriteFailures;
    bool Enter = false;
    uint64_t Delta;
    {
      std::lock_guard<std::mutex> L(DegradeMu);
      Delta = (CW - SeenCacheWF) + (SW - SeenSideWF);
      SeenCacheWF = CW;
      SeenSideWF = SW;
      if (Delta == 0)
        return;
      if (!Degraded) {
        Degraded = true;
        DegradedAt = Clock::now();
        LastProbeAt = DegradedAt;
        Enter = true;
      }
    }
    bump(&ServerStats::PublishFailures, Delta);
    if (Enter) {
      Cache->setDiskDisabled(true);
      SideCond->setDiskDisabled(true);
      bump(&ServerStats::DegradedEntered);
      std::fprintf(stderr,
                   "islarisd: store publish failing under %s, entering "
                   "cache-off degraded mode\n",
                   Cache->dir().c_str());
    }
  }

  /// Degraded-mode self-heal: paced by DegradedProbeSeconds, write one
  /// probe file into the store directory.  The probe bypasses the disabled
  /// stores on purpose — it is the one write allowed to touch the device —
  /// and atomicWriteFile routes it through the disk-full fault site, so
  /// chaos tests heal exactly when the injector is disarmed.
  void probeDegraded() {
    {
      std::lock_guard<std::mutex> L(DegradeMu);
      if (!Degraded || Cfg.DegradedProbeSeconds <= 0)
        return;
      if (secondsSince(LastProbeAt) < Cfg.DegradedProbeSeconds)
        return;
      LastProbeAt = Clock::now();
    }
    std::string Probe = Cache->dir() + "/.disk-probe";
    if (!cache::atomicWriteFile(Probe, "islarisd disk probe\n"))
      return; // still failing; stay degraded, try again next interval
    ::unlink(Probe.c_str());
    {
      std::lock_guard<std::mutex> L(DegradeMu);
      if (!Degraded)
        return;
      Degraded = false;
      DegradedAccumSeconds += secondsSince(DegradedAt);
    }
    Cache->setDiskDisabled(false);
    SideCond->setDiskDisabled(false);
    bump(&ServerStats::DegradedHealed);
    std::fprintf(stderr,
                 "islarisd: store probe succeeded, leaving degraded mode\n");
  }

  void runTraceJob(Job &J) {
    TraceGroup &G = *J.Group;
    bool Ok = false;
    bool Fresh = false;
    std::string EntryText, Error;
    unsigned Attempts = 0;
    unsigned Status = 0;

    // Pre-execution pruning: drop waiters that disconnected or timed out
    // while the job sat in the queue.  When nobody live remains, retire
    // the group without executing — work no one is waiting for costs queue
    // time, never solver time.  Live deadlines also bound the execution:
    // if every live waiter is bounded, the job watchdog is tightened to
    // the most patient one (an unbounded waiter keeps the configured cap).
    std::vector<Waiter> Expired;
    bool Abandoned = false;
    bool AllBounded = true;
    double MaxLeft = 0;
    {
      std::lock_guard<std::mutex> QL(QMu);
      Clock::time_point Now = Clock::now();
      auto &Ws = G.Waiters;
      for (auto It = Ws.begin(); It != Ws.end();) {
        if (!It->C->Open.load(std::memory_order_relaxed)) {
          retire(*It);
          It = Ws.erase(It);
        } else if (It->expired(Now)) {
          Expired.push_back(*It);
          It = Ws.erase(It);
        } else {
          if (!It->HasDeadline)
            AllBounded = false;
          else if (It->secondsLeft(Now) > MaxLeft)
            MaxLeft = It->secondsLeft(Now);
          ++It;
        }
      }
      if (Ws.empty()) {
        // Un-registering under the same lock the pruning ran under means
        // no attacher can slip in between: attach goes through Inflight.
        Inflight.erase(G.Key);
        Abandoned = true;
      }
    }
    for (Waiter &W : Expired)
      expireWaiter(W, "deadline expired before execution");
    if (Abandoned)
      return;

    if (auto E = Cache->lookup(G.Key)) {
      Ok = true;
      EntryText = cache::TraceCache::serializeEntry(G.Key, *E);
      bump(&ServerStats::WarmHits);
    } else {
      if (Cfg.ExecDelaySeconds > 0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(Cfg.ExecDelaySeconds));
      cache::BatchDriver BD(1);
      cache::DriverOptions DO;
      DO.JobTimeoutSeconds = Cfg.Limits.JobTimeoutSeconds;
      DO.MaxRetries = Cfg.Limits.JobRetries;
      // Deadline propagation: the watchdog (a driver knob, not part of the
      // fingerprinted ExecOptions — cache keys stay bit-identical) is
      // tightened to the most patient live waiter, so execution nobody
      // will wait out is cut off rather than run to the configured cap.
      if (AllBounded) {
        double Bound = MaxLeft < 0.05 ? 0.05 : MaxLeft;
        if (DO.JobTimeoutSeconds <= 0 || Bound < DO.JobTimeoutSeconds)
          DO.JobTimeoutSeconds = Bound;
      }
      BD.setOptions(DO);
      cache::TraceJob TJ;
      TJ.Model = G.Model.get();
      TJ.ArchName = G.Arch;
      TJ.Op = G.Op;
      TJ.Assume = &G.Assume;
      TJ.Opts = G.Opts;
      TJ.SideCond = SideCond.get();
      auto R = BD.run({TJ}, Cache.get());
      const cache::TraceJobResult &TR = R.front();
      Ok = TR.Ok;
      Attempts = TR.Attempts;
      if (Ok) {
        EntryText = cache::TraceCache::serializeEntry(TR.Key, TR.Entry);
        if (TR.Source == cache::ResultSource::CacheHit) {
          // Another worker published the key between our lookup and the
          // driver's: a warm hit after all.
          bump(&ServerStats::WarmHits);
        } else {
          Fresh = true;
          bump(&ServerStats::Executed);
        }
      } else {
        Error = TR.Error;
        Status = support::isInfrastructureError(TR.D.Code) ? 2 : 1;
      }
    }

    // Retire the group *before* fanning out, so a request arriving during
    // the sends starts a new group (and hits the now-warm cache) instead of
    // attaching to a group that will never signal it again.
    std::vector<Waiter> Waiters;
    {
      std::lock_guard<std::mutex> L(QMu);
      Inflight.erase(G.Key);
      Waiters = std::move(G.Waiters);
    }
    for (size_t I = 0; I < Waiters.size(); ++I) {
      Waiter &W = Waiters[I];
      if (Ok)
        sendFrame(*W.C, FrameType::Trace,
                  encodeIdPayload(W.ReqId, EntryText));
      DoneInfo D;
      D.Id = W.ReqId;
      D.Status = Ok ? 0 : Status;
      D.Source = !Ok ? "failed" : (I == 0 ? (Fresh ? "fresh" : "warm")
                                          : "dedup");
      D.Attempts = Attempts;
      D.Seconds = secondsSince(W.Enqueued);
      D.Error = Error;
      sendFrame(*W.C, FrameType::Done, encodeDone(D));
      retire(W);
    }
  }

  frontend::CaseResult runOneStudy(const std::string &Name) {
    if (Name == "memcpy-arm")
      return frontend::runMemcpyArm();
    if (Name == "memcpy-rv")
      return frontend::runMemcpyRv();
    if (Name == "hvc")
      return frontend::runHvc();
    if (Name == "pkvm")
      return frontend::runPkvm();
    if (Name == "unaligned")
      return frontend::runUnaligned();
    if (Name == "uart")
      return frontend::runUart();
    if (Name == "rbit")
      return frontend::runRbit();
    if (Name == "binsearch-arm")
      return frontend::runBinSearchArm();
    return frontend::runBinSearchRv();
  }

  void runStudyJob(Job &J) {
    if (J.W.expired(Clock::now())) {
      expireWaiter(J.W, "deadline expired in queue");
      return;
    }
    // Studies consult the ambient stores the server installed at start;
    // the ambient protocol is per-process, so study execution is strictly
    // serialized even on a multi-worker server.
    std::lock_guard<std::mutex> SL(StudyMu);
    std::vector<std::string> Names;
    if (J.Study == "suite")
      Names = {"memcpy-arm", "memcpy-rv",    "hvc",
               "pkvm",       "unaligned",    "uart",
               "rbit",       "binsearch-arm", "binsearch-rv"};
    else
      Names = {J.Study};

    std::vector<frontend::CaseResult> Rows;
    for (const std::string &N : Names) {
      frontend::CaseResult R = runOneStudy(N);
      Rows.push_back(R);
      bump(&ServerStats::RowsStreamed);
      sendFrame(*J.W.C, FrameType::Row,
                encodeIdPayload(J.W.ReqId, frontend::encodeCaseResult(R)));
      if (!R.Ok)
        sendFrame(*J.W.C, FrameType::Diag,
                  encodeIdPayload(J.W.ReqId,
                                  N + ": " + (R.Error.empty() ? "failed"
                                                              : R.Error)));
    }
    DoneInfo D;
    D.Id = J.W.ReqId;
    D.Status = unsigned(frontend::suiteExitCode(Rows));
    D.Source = "study";
    D.Seconds = secondsSince(J.W.Enqueued);
    if (D.Status != 0)
      for (const frontend::CaseResult &R : Rows)
        if (!R.Ok) {
          D.Error = R.Name + ": " + R.Error;
          break;
        }
    sendFrame(*J.W.C, FrameType::Done, encodeDone(D));
    retire(J.W);
  }

  //===--------------------------------------------------------------------===//
  // Idle eviction.
  //===--------------------------------------------------------------------===//

  void idleLoop() {
    while (!Draining.load(std::memory_order_relaxed)) {
      {
        std::unique_lock<std::mutex> IL(IdleMu);
        IdleCv.wait_for(IL, std::chrono::milliseconds(200));
      }
      if (Draining.load(std::memory_order_relaxed))
        return;
      probeDegraded();
      {
        std::lock_guard<std::mutex> L(QMu);
        if (Cfg.IdleEvictSeconds <= 0 || EvictedSinceActivity)
          continue;
        if (TotalQueued > 0 || ActiveJobs > 0)
          continue;
        if (secondsSince(LastActivity) < Cfg.IdleEvictSeconds)
          continue;
        EvictedSinceActivity = true;
      }
      // Disk entries survive; only the hot sets drop.  The next request
      // repopulates from disk at disk-hit (not cold-execution) cost.
      Cache->clearMemory();
      SideCond->clearMemory();
      bump(&ServerStats::IdleEvictions);
    }
  }

  //===--------------------------------------------------------------------===//
  // Lifecycle.
  //===--------------------------------------------------------------------===//

  bool startImpl(std::string &Err) {
    Endpoint E;
    if (!parseEndpoint(Cfg.SocketPath, E, Err))
      return false;

    cache::TraceCacheConfig TC;
    TC.MaxEntries = Cfg.CacheMaxEntries;
    TC.Persist = Cfg.Persist;
    TC.Dir = Cfg.CacheDir;
    TC.ScrubOnOpen = Cfg.Persist; // unclean-shutdown scrub (cache/Scrub.h)
    Cache = std::make_unique<cache::TraceCache>(TC);

    cache::SideCondConfig SC;
    SC.Persist = Cfg.Persist;
    SC.Dir = Cache->dir() + "/sidecond";
    SC.ScrubOnOpen = Cfg.Persist;
    SideCond = std::make_unique<cache::SideCondStore>(SC);

    // Mark the stores dirty for the daemon's lifetime: only a clean drain
    // rewrites the markers, so a crash leaves the next open to scrub.
    if (Cfg.Persist) {
      cache::clearCleanShutdownMarker(Cache->dir());
      cache::clearCleanShutdownMarker(SideCond->dir());
    }

    // Initial model generation, parsed before the daemon accepts work: a
    // ModelDir override that does not parse fails startup, not the first
    // request.
    {
      auto MS = parseModelSet(0, Err);
      if (!MS)
        return false;
      std::lock_guard<std::mutex> ML(ModelMu);
      Models = std::move(MS);
    }

    // Transport bind (PR 8): unix paths probe-connect before unlinking so
    // a second daemon refuses to steal a live one's socket; TCP resolves
    // host:port (port 0 ephemerally) — see server/Transport.cpp.
    if (!Lsn.listenOn(E, Err))
      return false;

    // Install the resident stores and guards as the process ambients for
    // the daemon's lifetime (study runners pick them up).
    PrevCache = cache::ambientTraceCache();
    PrevSide = cache::ambientSideCondCache();
    PrevLimits = support::ambientRunLimits();
    cache::setAmbientTraceCache(Cache.get());
    cache::setAmbientSideCondCache(SideCond.get());
    support::setAmbientRunLimits(Cfg.Limits);

    StartedAt = Clock::now();
    Running.store(true, std::memory_order_relaxed);
    AcceptTh = std::thread([this] { acceptLoop(); });
    unsigned Workers = Cfg.Workers ? Cfg.Workers : 1;
    for (unsigned I = 0; I < Workers; ++I)
      WorkerThs.emplace_back([this] { workerLoop(); });
    IdleTh = std::thread([this] { idleLoop(); });
    return true;
  }

  void requestShutdownImpl() {
    // Draining must flip while holding the waiters' mutexes: a worker or
    // waitImpl waiter that checked its predicate under QMu and is about to
    // block would otherwise miss a notify sent between its check and its
    // sleep — the only wakeup ever sent — and hang the drain forever.
    bool Expected = false;
    {
      std::lock_guard<std::mutex> QL(QMu);
      if (!Draining.compare_exchange_strong(Expected, true))
        return;
      QCv.notify_all();
      ShutCv.notify_all();
    }
    {
      std::lock_guard<std::mutex> IL(IdleMu);
    }
    IdleCv.notify_all();
  }

  void waitImpl() {
    if (!Running.load(std::memory_order_relaxed))
      return;
    // Block until a drain begins, then tear down exactly once.
    {
      std::unique_lock<std::mutex> L(QMu);
      ShutCv.wait(L,
                  [&] { return Draining.load(std::memory_order_relaxed); });
    }
    std::lock_guard<std::mutex> TL(TeardownMu);
    if (TornDown)
      return;
    TornDown = true;

    if (AcceptTh.joinable())
      AcceptTh.join();
    QCv.notify_all();
    for (std::thread &T : WorkerThs)
      T.join(); // workers drain every queued job before exiting
    WorkerThs.clear();
    if (IdleTh.joinable())
      IdleTh.join();

    // Every accepted request has its done frame out; say goodbye.
    {
      std::lock_guard<std::mutex> L(ConnMu);
      for (auto &C : Conns) {
        sendFrame(*C, FrameType::Bye, "drained");
        C->Open.store(false, std::memory_order_relaxed);
        ::shutdown(C->Fd, SHUT_RDWR);
      }
      for (auto &C : Conns) {
        if (C->Reader.joinable())
          C->Reader.join();
        ::close(C->Fd);
      }
      Conns.clear();
    }
    Lsn.close(); // unlinks a unix socket path itself

    cache::setAmbientTraceCache(PrevCache);
    cache::setAmbientSideCondCache(PrevSide);
    support::setAmbientRunLimits(PrevLimits);

    // A completed drain is a clean shutdown: the next open may skip its
    // scrub.
    if (Cfg.Persist) {
      cache::writeCleanShutdownMarker(Cache->dir());
      cache::writeCleanShutdownMarker(SideCond->dir());
    }
    Running.store(false, std::memory_order_relaxed);
  }

  HealthInfo healthSnapshotImpl() const {
    HealthInfo H;
    H.Version = ProtocolVersion;
    H.Pid = uint64_t(::getpid());
    H.UptimeSeconds = secondsSince(StartedAt);
    H.Draining = Draining.load(std::memory_order_relaxed) ? 1 : 0;
    {
      std::lock_guard<std::mutex> L(QMu);
      H.QueueDepth = TotalQueued;
      H.ActiveJobs = ActiveJobs;
    }
    {
      std::lock_guard<std::mutex> L(ModelMu);
      if (Models) {
        H.Generation = Models->Generation;
        H.ModelFpHex = Models->FpHex;
      }
    }
    {
      std::lock_guard<std::mutex> L(DegradeMu);
      if (Degraded)
        H.DegradedFlags |= HealthDegradedCacheOff;
      H.DegradedSeconds =
          DegradedAccumSeconds + (Degraded ? secondsSince(DegradedAt) : 0);
    }
    {
      std::lock_guard<std::mutex> L(StatsMu);
      H.PublishFailures = St.PublishFailures;
    }
    return H;
  }

  std::string renderStatsImpl() const {
    ServerStats S;
    {
      std::lock_guard<std::mutex> L(StatsMu);
      S = St;
    }
    size_t Depth;
    unsigned Active;
    {
      std::lock_guard<std::mutex> L(QMu);
      Depth = TotalQueued;
      Active = ActiveJobs;
    }
    HealthInfo H = healthSnapshotImpl();
    cache::CacheStats CS = Cache->stats();
    cache::SideCondStats SS = SideCond->stats();
    std::ostringstream OS;
    OS << "{\"uptime_seconds\":" << secondsSince(StartedAt)
       << ",\"connections\":" << S.Connections
       << ",\"requests\":" << S.Requests
       << ",\"trace_requests\":" << S.TraceRequests
       << ",\"study_requests\":" << S.StudyRequests
       << ",\"rejected\":" << S.Rejected
       << ",\"malformed\":" << S.Malformed
       << ",\"executed\":" << S.Executed
       << ",\"warm_hits\":" << S.WarmHits
       << ",\"dedup_fanout\":" << S.DedupFanout
       << ",\"rows_streamed\":" << S.RowsStreamed
       << ",\"idle_evictions\":" << S.IdleEvictions
       << ",\"shed\":" << S.Shed
       << ",\"deadline_expired\":" << S.DeadlineExpired
       << ",\"heartbeats_sent\":" << S.HeartbeatsSent
       << ",\"heartbeats_seen\":" << S.HeartbeatsSeen
       << ",\"half_open_reaped\":" << S.HalfOpenReaped
       << ",\"stalled_writes\":" << S.StalledWrites
       << ",\"health_requests\":" << S.HealthRequests
       << ",\"reloads\":" << S.Reloads
       << ",\"reload_failures\":" << S.ReloadFailures
       << ",\"publish_failures\":" << S.PublishFailures
       << ",\"degraded\":" << ((H.DegradedFlags & HealthDegradedCacheOff)
                                   ? 1 : 0)
       << ",\"degraded_seconds\":" << H.DegradedSeconds
       << ",\"model_generation\":" << H.Generation
       << ",\"model_fp\":\"" << H.ModelFpHex << "\""
       << ",\"listen\":\"" << Lsn.local().str() << "\""
       << ",\"queue_depth\":" << Depth << ",\"active_jobs\":" << Active
       << ",\"trace_cache\":{\"hits\":" << CS.Hits
       << ",\"disk_hits\":" << CS.DiskHits << ",\"misses\":" << CS.Misses
       << ",\"insertions\":" << CS.Insertions << "}"
       << ",\"sidecond\":{\"hits\":" << SS.Hits
       << ",\"disk_hits\":" << SS.DiskHits << ",\"misses\":" << SS.Misses
       << ",\"insertions\":" << SS.Insertions << "}}";
    return OS.str();
  }
};

Server::Server(ServerConfig C) : I(std::make_unique<Impl>(std::move(C))) {}

Server::~Server() {
  if (I->Running.load(std::memory_order_relaxed)) {
    I->requestShutdownImpl();
    I->waitImpl();
  }
}

bool Server::start(std::string &Err) { return I->startImpl(Err); }

void Server::requestShutdown() { I->requestShutdownImpl(); }

void Server::wait() { I->waitImpl(); }

bool Server::running() const {
  return I->Running.load(std::memory_order_relaxed);
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> L(I->StatsMu);
  return I->St;
}

const std::string &Server::socketPath() const { return I->Cfg.SocketPath; }

Endpoint Server::boundEndpoint() const { return I->Lsn.local(); }

size_t Server::openConnections() const {
  std::lock_guard<std::mutex> L(I->ConnMu);
  return I->Conns.size();
}

cache::TraceCache *Server::traceCache() { return I->Cache.get(); }

cache::SideCondStore *Server::sideCondStore() { return I->SideCond.get(); }

std::string Server::renderStats() const { return I->renderStatsImpl(); }

bool Server::reloadModels(std::string &Err) {
  return I->reloadModelsImpl(Err);
}

HealthInfo Server::healthSnapshot() const { return I->healthSnapshotImpl(); }
