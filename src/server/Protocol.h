//===- server/Protocol.h - islarisd wire protocol ---------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framing and request/response payloads of the islarisd protocol: a
/// byte stream of self-delimiting, individually checksummed frames in the
/// run-journal record grammar,
///
///   (islaris-frame 1 <type> <payload-len> <fnv64-hex>)\n<payload>\n
///
/// so the same recovery property holds on the wire as in the journal: a
/// reader accepts the longest valid prefix of the stream and attributes the
/// first malformed byte precisely (truncated header, bad length, checksum
/// mismatch) instead of desynchronizing silently.  Payload fields use the
/// support::wire codec the journal's CaseResult rows already travel in.
///
/// Conversation shape:
///
///   client                               server
///   ------                               ------
///   hello(deadline, hb-interval) ───────▶
///          ◀─────────────────────────────  welcome
///   request(id, deadline, kind) ────────▶
///          ◀─────────────────────────────  accepted(id) | rejected(id,
///          ◀─────────────────────────────    retry-after-ms)
///          ◀─────────────────────────────  trace(id)* | row(id)* | stats(id)
///          ◀─────────────────────────────  done(id, status, source)
///   heartbeat ◀────────────────────────▶    (either direction, any time;
///                                            refreshes peer liveness,
///                                            never answered)
///   ping   ─────────────────────────────▶
///          ◀─────────────────────────────  pong
///   shutdown ───────────────────────────▶   (drain: every accepted id
///          ◀─────────────────────────────    still gets its done)
///          ◀─────────────────────────────  bye
///
/// Versioning: the frame header carries the format version (1); `hello`
/// and `welcome` carry the protocol version.  A server that cannot speak
/// the client's protocol answers with an `error` frame and closes.
///
/// Hostile-network discipline (PR 8): request payloads carry the client's
/// end-to-end deadline (milliseconds of patience remaining) so the server
/// can abandon work nobody is waiting for; `rejected` payloads carry a
/// retry-after hint so shed clients back off by the server's estimate
/// instead of guessing; `heartbeat` frames flow in both directions so a
/// half-open connection (peer vanished without a FIN) is detectable by
/// silence on an otherwise-busy link.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SERVER_PROTOCOL_H
#define ISLARIS_SERVER_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

namespace islaris::server {

/// Protocol version spoken by hello/welcome.  Version 2 (PR 8) added
/// heartbeat frames, request deadlines, and retry-after hints on
/// rejections.  Version 3 (PR 10) added the `health` readiness probe and
/// the `reload` hot-model-reload request.
inline constexpr uint64_t ProtocolVersion = 3;

/// Oldest protocol the server still accepts in a hello.  Version 3 is a
/// strict superset of 2 (two new request kinds, one new response frame
/// that only v3 requests elicit), so a v2 peer negotiates and works
/// unchanged; a v2 *server* answers the new kinds with its existing
/// malformed-request error frame, which is exactly what a v3 client
/// treats as "no health endpoint here".
inline constexpr uint64_t MinProtocolVersion = 2;

/// Hard bound on a frame payload; a header advertising more is malformed
/// (protects the reader from allocating on behalf of a corrupt length
/// field).
inline constexpr uint64_t MaxFramePayload = 64ull << 20;

enum class FrameType : uint8_t {
  // client -> server
  Hello,
  Request,
  Ping,
  Shutdown,
  // server -> client
  Welcome,
  Accepted,
  Rejected,
  Trace,
  Row,
  Diag,
  Stats,
  Done,
  Pong,
  Bye,
  Error,
  // either direction: liveness only, never answered
  Heartbeat,
  // server -> client (protocol 3): readiness-probe snapshot
  Health,
};

/// Stable wire token ("hello", "request", ...).
const char *frameTypeName(FrameType T);
bool frameTypeFromName(const std::string &Name, FrameType &Out);

struct Frame {
  FrameType Type = FrameType::Error;
  std::string Payload;
};

/// Serializes one frame in the journal-record grammar above.
std::string encodeFrame(const Frame &F);

/// Incremental frame decoder over a byte stream.  Feed bytes as they
/// arrive; next() yields complete frames until the buffer runs dry or a
/// malformed frame kills the stream.
class FrameReader {
public:
  void feed(const char *Data, size_t N);

  enum class Status {
    Frame,    ///< \p Out holds the next frame.
    NeedMore, ///< No complete frame buffered yet.
    Malformed, ///< Unrecoverable framing error; the stream is dead.
  };
  Status next(Frame &Out, std::string *Err = nullptr);

  /// Bytes buffered but not yet consumed by next().
  size_t buffered() const { return Buf.size() - Pos; }

private:
  std::string Buf;
  size_t Pos = 0;
  bool Dead = false;
};

//===----------------------------------------------------------------------===//
// Request payloads.
//===----------------------------------------------------------------------===//

/// One wire-transportable symbolic-execution request: a single opcode with
/// optional symbolic bits, concrete register assumptions, and the semantic
/// ExecOptions knobs.  (Predicate constraints and separation-logic specs
/// are C++ values and do not travel; whole-spec verification goes through
/// the named case-study requests instead.)
struct TraceRequest {
  std::string Arch; ///< "aarch64" | "rv64".
  uint32_t Opcode = 0;
  uint32_t SymMask = 0; ///< 1-bits of the opcode that are symbolic.
  struct Assume {
    std::string Base, Field;
    unsigned Width = 0;
    uint64_t Value = 0;
  };
  std::vector<Assume> Assumes;
  bool CacheRegReads = true;
  bool SinksOnly = true;
  unsigned MaxPaths = 64;
};

/// A parsed `request` frame payload.
struct Request {
  uint64_t Id = 0;
  /// Client patience remaining at send time, in milliseconds; 0 = wait
  /// forever.  The server rebases it to its own clock at admission and
  /// abandons (or never starts) work whose waiters have all timed out.
  uint64_t DeadlineMs = 0;
  /// Health and Reload are protocol-3 kinds: Health is answered inline
  /// (never queued — a readiness probe must work under a full queue),
  /// Reload swaps the server's model set for freshly parsed sources.
  enum class Kind : uint8_t {
    Trace,
    Study,
    Stats,
    Health,
    Reload,
  } K = Kind::Trace;
  TraceRequest Trace;  ///< Valid when K == Trace.
  std::string Study;   ///< Study name or "suite" when K == Study.
};

std::string encodeRequest(const Request &R);
bool decodeRequest(const std::string &Payload, Request &Out);

/// A parsed `hello` frame payload.  The deadline/heartbeat fields were
/// added in protocol 2; decodeHello tolerates their absence (fields stay
/// zero) so a minimal hello still handshakes.
struct HelloInfo {
  uint64_t Version = ProtocolVersion;
  std::string ClientName;
  /// Connection-default request deadline; a request's own DeadlineMs
  /// overrides it.  0 = none.
  uint64_t DefaultDeadlineMs = 0;
  /// Interval at which this client intends to emit heartbeats while
  /// waiting (informational; lets the server size its silence threshold).
  uint64_t HeartbeatMs = 0;
};

std::string encodeHello(const HelloInfo &H);
bool decodeHello(const std::string &Payload, HelloInfo &Out);

/// `rejected` body codec (the body inside the id-tagged payload): a
/// human-readable reason plus a machine retry-after hint.  RetryAfterMs 0
/// means "do not retry — the request itself is invalid"; nonzero marks a
/// load shed worth retrying after the hinted delay.  decodeRejectBody
/// tolerates a bare legacy reason string (hint degrades to 0).
std::string encodeRejectBody(const std::string &Reason,
                             uint64_t RetryAfterMs);
void decodeRejectBody(const std::string &Body, std::string &Reason,
                      uint64_t &RetryAfterMs);

/// `health` frame payload (protocol 3): the readiness snapshot a probe or
/// a failover client reads before committing work to a daemon.  Decoding
/// tolerates missing trailing fields (same discipline as decodeHello) so
/// later versions can append fields without breaking v3 readers.
struct HealthInfo {
  uint64_t Version = ProtocolVersion; ///< Responder's protocol version.
  uint64_t Pid = 0;
  double UptimeSeconds = 0;
  uint64_t QueueDepth = 0; ///< Queued-but-not-executing requests.
  uint64_t ActiveJobs = 0; ///< Requests executing right now.
  uint64_t Draining = 0;   ///< 1 once a shutdown drain has begun.
  /// Model generation: reload count since start.  A SIGHUP/`reload` that
  /// swapped the model set bumps it, so a probe can confirm a rollout.
  uint64_t Generation = 0;
  /// Store generation fingerprint: combined fingerprint of the live model
  /// set (the same fingerprints the generation registry is keyed on).
  std::string ModelFpHex;
  /// Degraded-mode flags; bit 0 = cache-off (store publishes failing, disk
  /// I/O suspended until the self-heal probe succeeds).
  uint64_t DegradedFlags = 0;
  uint64_t PublishFailures = 0; ///< Store publish failures observed.
  double DegradedSeconds = 0;   ///< Total time spent degraded.
};

inline constexpr uint64_t HealthDegradedCacheOff = 1;

std::string encodeHealth(const HealthInfo &H);
bool decodeHealth(const std::string &Payload, HealthInfo &Out);

/// `done` frame payload: terminal status of one request id.
struct DoneInfo {
  uint64_t Id = 0;
  /// Suite-style status: 0 ok, 1 proof failure, 2 infrastructure error.
  unsigned Status = 0;
  /// Where the result came from: "fresh", "warm", "dedup", "failed".
  std::string Source;
  uint64_t Attempts = 0;
  double Seconds = 0; ///< Server-side queue + execution time.
  std::string Error;  ///< Failure message when Status != 0.
};

std::string encodeDone(const DoneInfo &D);
bool decodeDone(const std::string &Payload, DoneInfo &Out);

/// Payload helpers for the id-tagged streaming frames (trace / row / stats
/// / accepted / rejected): "<id> <len>:<body>".
std::string encodeIdPayload(uint64_t Id, const std::string &Body);
bool decodeIdPayload(const std::string &Payload, uint64_t &Id,
                     std::string &Body);

} // namespace islaris::server

#endif // ISLARIS_SERVER_PROTOCOL_H
