//===- server/Server.h - Resident verification server -----------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The islarisd core: a resident verification service on a Unix-domain
/// socket.  One process keeps the expensive state warm across requests —
/// the persistent TraceCache and SideCondStore (installed as the ambient
/// stores), their in-memory hot sets, and the parsed ISA models — so a
/// short-lived client pays none of the cold-start cost the batch tools pay
/// on every invocation.
///
/// Scheduling discipline:
///
///  - Admission control: the total queue is bounded (ServerConfig::
///    MaxQueueDepth); a request past the bound is *rejected immediately*
///    with a `rejected` frame rather than queued into unbounded latency.
///
///  - Fairness: queued work is organized as one FIFO per client connection
///    and workers pick round-robin across clients, so a client flooding
///    thousands of requests cannot starve a client with one.
///
///  - Cross-client dedup: trace requests are canonicalized to their
///    cache::traceCacheKey at admission; a request whose key is already
///    queued or executing attaches to the in-flight group instead of
///    executing again, and the one result fans out to every waiter —
///    bit-identically, since results travel in serialized CacheEntry form.
///
///  - Drain: shutdown (signal or `shutdown` frame) stops accepting new
///    work but completes everything already accepted, so every accepted
///    request id receives its `done` frame before `bye`.  A clean drain
///    writes the stores' clean-shutdown markers (cache/Scrub.h), making
///    the next open skip its scrub.
///
///  - Idle eviction: after ServerConfig::IdleEvictSeconds without work the
///    in-memory hot sets are dropped (clearMemory; disk entries remain),
///    bounding the resident footprint of an idle daemon.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SERVER_SERVER_H
#define ISLARIS_SERVER_SERVER_H

#include "server/Protocol.h"
#include "support/Guard.h"

#include <cstdint>
#include <memory>
#include <string>

namespace islaris::cache {
class TraceCache;
class SideCondStore;
}

namespace islaris::server {

struct ServerConfig {
  /// Unix-domain socket path.  Keep it short: sockaddr_un caps paths at
  /// ~107 bytes, so prefer /tmp/... over deep build trees.
  std::string SocketPath;
  /// Worker threads executing requests (1 = strictly serial execution,
  /// which makes dedup and fairness tests deterministic).
  unsigned Workers = 2;
  /// Admission bound on queued-but-not-executing requests across all
  /// clients; past it requests are rejected, not queued.
  size_t MaxQueueDepth = 256;
  /// Seconds of idle after which in-memory cache hot sets are dropped
  /// (0 = never).
  double IdleEvictSeconds = 0;
  /// Resource guards applied to request execution (JobTimeoutSeconds /
  /// JobRetries feed the batch driver; the rest go into ExecOptions).
  support::RunLimits Limits;
  /// Keep the trace/side-condition stores on disk under CacheDir.
  bool Persist = true;
  /// Store root; empty = cache::resolveCacheDir().  Side conditions live
  /// under <CacheDir>/sidecond.
  std::string CacheDir;
  /// In-memory LRU bound of the resident trace cache.
  size_t CacheMaxEntries = 4096;
  /// Test hook: artificial seconds of latency added to each *fresh*
  /// execution, giving dedup/fairness tests a deterministic window in
  /// which to race a second client against an in-flight request.
  double ExecDelaySeconds = 0;
};

/// Monotonic counters; readable while the server runs.
struct ServerStats {
  uint64_t Connections = 0;
  uint64_t Requests = 0;      ///< Request frames parsed (any kind).
  uint64_t TraceRequests = 0;
  uint64_t StudyRequests = 0;
  uint64_t StatsRequests = 0;
  uint64_t Rejected = 0;      ///< Admission-control rejections.
  uint64_t Malformed = 0;     ///< Connections killed by framing errors.
  uint64_t Executed = 0;      ///< Fresh symbolic executions performed.
  uint64_t WarmHits = 0;      ///< Trace requests served from the cache.
  uint64_t DedupFanout = 0;   ///< Requests attached to an in-flight group.
  uint64_t RowsStreamed = 0;  ///< Case-study rows streamed to clients.
  uint64_t IdleEvictions = 0; ///< Hot-set drops by the idle timer.
};

/// The resident verification server.  start() spawns the listener and
/// worker threads and returns; requestShutdown() begins a drain; wait()
/// blocks until the drain completes and every thread has been joined.
class Server {
public:
  explicit Server(ServerConfig C);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket, installs the ambient stores, spawns threads.
  /// False (with \p Err set) if the socket could not be bound.
  bool start(std::string &Err);

  /// Begins a graceful drain: stop accepting connections and requests,
  /// finish everything already accepted.  Idempotent; safe from signal
  /// handlers' notify threads and from connection readers.
  void requestShutdown();

  /// Blocks until the server has fully stopped (drain complete, threads
  /// joined, markers written).  Also reached by destruction.
  void wait();

  bool running() const;
  ServerStats stats() const;
  const std::string &socketPath() const;

  /// Connections currently held in the table (accepted and not yet
  /// reaped); exposed so tests can assert disconnected clients are
  /// actually dropped rather than leaked.
  size_t openConnections() const;

  /// The resident stores (valid between start() and wait()); exposed for
  /// tests and the stats endpoint.
  cache::TraceCache *traceCache();
  cache::SideCondStore *sideCondStore();

  /// Renders the stats payload served to `stats` requests (JSON object,
  /// one line).
  std::string renderStats() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace islaris::server

#endif // ISLARIS_SERVER_SERVER_H
