//===- server/Server.h - Resident verification server -----------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The islarisd core: a resident verification service on a Unix-domain
/// socket.  One process keeps the expensive state warm across requests —
/// the persistent TraceCache and SideCondStore (installed as the ambient
/// stores), their in-memory hot sets, and the parsed ISA models — so a
/// short-lived client pays none of the cold-start cost the batch tools pay
/// on every invocation.
///
/// Scheduling discipline:
///
///  - Admission control: the total queue is bounded (ServerConfig::
///    MaxQueueDepth); a request past the bound is *rejected immediately*
///    with a `rejected` frame rather than queued into unbounded latency.
///
///  - Fairness: queued work is organized as one FIFO per client connection
///    and workers pick round-robin across clients, so a client flooding
///    thousands of requests cannot starve a client with one.
///
///  - Cross-client dedup: trace requests are canonicalized to their
///    cache::traceCacheKey at admission; a request whose key is already
///    queued or executing attaches to the in-flight group instead of
///    executing again, and the one result fans out to every waiter —
///    bit-identically, since results travel in serialized CacheEntry form.
///
///  - Drain: shutdown (signal or `shutdown` frame) stops accepting new
///    work but completes everything already accepted, so every accepted
///    request id receives its `done` frame before `bye`.  A clean drain
///    writes the stores' clean-shutdown markers (cache/Scrub.h), making
///    the next open skip its scrub.
///
///  - Idle eviction: after ServerConfig::IdleEvictSeconds without work the
///    in-memory hot sets are dropped (clearMemory; disk entries remain),
///    bounding the resident footprint of an idle daemon.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SERVER_SERVER_H
#define ISLARIS_SERVER_SERVER_H

#include "server/Protocol.h"
#include "server/Transport.h"
#include "support/Guard.h"

#include <cstdint>
#include <memory>
#include <string>

namespace islaris::cache {
class TraceCache;
class SideCondStore;
}

namespace islaris::server {

struct ServerConfig {
  /// Listen endpoint in the Transport grammar: a Unix socket path (keep it
  /// short: sockaddr_un caps paths at ~107 bytes, so prefer /tmp/...) or a
  /// TCP "host:port" (port 0 binds ephemerally; read the real port back
  /// from Server::boundEndpoint()).
  std::string SocketPath;
  /// Worker threads executing requests (1 = strictly serial execution,
  /// which makes dedup and fairness tests deterministic).
  unsigned Workers = 2;
  /// Admission bound on queued-but-not-executing requests across all
  /// clients; past it requests are rejected, not queued.
  size_t MaxQueueDepth = 256;
  /// Seconds of idle after which in-memory cache hot sets are dropped
  /// (0 = never).
  double IdleEvictSeconds = 0;
  /// Resource guards applied to request execution (JobTimeoutSeconds /
  /// JobRetries feed the batch driver; the rest go into ExecOptions).
  support::RunLimits Limits;
  /// Keep the trace/side-condition stores on disk under CacheDir.
  bool Persist = true;
  /// Store root; empty = cache::resolveCacheDir().  Side conditions live
  /// under <CacheDir>/sidecond.
  std::string CacheDir;
  /// In-memory LRU bound of the resident trace cache.
  size_t CacheMaxEntries = 4096;
  /// Test hook: artificial seconds of latency added to each *fresh*
  /// execution, giving dedup/fairness tests a deterministic window in
  /// which to race a second client against an in-flight request.
  double ExecDelaySeconds = 0;

  //===--- Hostile-network hardening (PR 8) -------------------------------===//

  /// Deadline on every socket write.  A peer that stops draining its
  /// receive buffer stalls one send for at most this long, after which the
  /// connection is declared dead — a worker, the heartbeat tick, and the
  /// drain path can never wedge on a stalled peer.  0 = block forever
  /// (pre-PR-8 behavior; do not use on untrusted networks).
  double WriteTimeoutSeconds = 10;
  /// Interval of server->client heartbeat frames on connections with
  /// requests in flight, so a client waiting minutes for a cold execution
  /// can tell a slow server from a dead one.  0 = off.
  double HeartbeatSeconds = 5;
  /// A connection that has sent no bytes for this long *and* has nothing
  /// in flight is half-open (peer vanished without a FIN) and is reaped.
  /// 0 = never reap.
  double HalfOpenReapSeconds = 30;
  /// Per-connection cap on requests queued or executing; past it requests
  /// are shed with a retry-after hint.  0 = unlimited.
  size_t MaxInflightPerClient = 0;
  /// Base retry-after hint (milliseconds) carried by load-shed
  /// rejections; scaled up with queue pressure.
  uint64_t ShedRetryAfterMs = 100;

  //===--- Fleet operation (PR 10) ----------------------------------------===//

  /// Optional model-source override directory: when non-empty, files named
  /// <ModelDir>/aarch64.sail and <ModelDir>/rv64.sail replace the built-in
  /// sources for the architectures they cover (missing files keep the
  /// builtin).  Re-read on every hot reload (SIGHUP or a `reload` request),
  /// which is the point: edit the file, signal the daemon, new requests
  /// execute against the new parse while in-flight jobs finish on the old
  /// one.
  std::string ModelDir;
  /// While in cache-off degraded mode (store publishes failing — device
  /// full, dying disk), probe the store directory for writability at this
  /// interval and self-heal when a probe succeeds.  <= 0 disables the
  /// probe (degraded mode then persists until restart).
  double DegradedProbeSeconds = 5;
};

/// Monotonic counters; readable while the server runs.
struct ServerStats {
  uint64_t Connections = 0;
  uint64_t Requests = 0;      ///< Request frames parsed (any kind).
  uint64_t TraceRequests = 0;
  uint64_t StudyRequests = 0;
  uint64_t StatsRequests = 0;
  uint64_t Rejected = 0;      ///< Admission-control rejections.
  uint64_t Malformed = 0;     ///< Connections killed by framing errors.
  uint64_t Executed = 0;      ///< Fresh symbolic executions performed.
  uint64_t WarmHits = 0;      ///< Trace requests served from the cache.
  uint64_t DedupFanout = 0;   ///< Requests attached to an in-flight group.
  uint64_t RowsStreamed = 0;  ///< Case-study rows streamed to clients.
  uint64_t IdleEvictions = 0; ///< Hot-set drops by the idle timer.
  uint64_t Shed = 0;          ///< Load-shed rejections (queue/quota), a
                              ///< subset of Rejected; carried retry-after.
  uint64_t DeadlineExpired = 0; ///< Requests abandoned (or never started)
                                ///< because every waiter's deadline passed.
  uint64_t HeartbeatsSent = 0;  ///< Server->client heartbeat frames.
  uint64_t HeartbeatsSeen = 0;  ///< Client->server heartbeat frames.
  uint64_t HalfOpenReaped = 0;  ///< Connections reaped for silence.
  uint64_t StalledWrites = 0;   ///< Sends abandoned at WriteTimeoutSeconds.
  uint64_t HealthRequests = 0;  ///< `health` probes answered.
  uint64_t Reloads = 0;         ///< Successful hot model reloads.
  uint64_t ReloadFailures = 0;  ///< Reloads rejected (model did not parse).
  uint64_t PublishFailures = 0; ///< Store publishes that failed (both
                                ///< stores; feeds degraded-mode entry).
  uint64_t DegradedEntered = 0; ///< Transitions into cache-off degraded mode.
  uint64_t DegradedHealed = 0;  ///< Degraded spells ended by a probe success.
};

/// The resident verification server.  start() spawns the listener and
/// worker threads and returns; requestShutdown() begins a drain; wait()
/// blocks until the drain completes and every thread has been joined.
class Server {
public:
  explicit Server(ServerConfig C);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket, installs the ambient stores, spawns threads.
  /// False (with \p Err set) if the socket could not be bound.
  bool start(std::string &Err);

  /// Begins a graceful drain: stop accepting connections and requests,
  /// finish everything already accepted.  Idempotent; safe from signal
  /// handlers' notify threads and from connection readers.
  void requestShutdown();

  /// Blocks until the server has fully stopped (drain complete, threads
  /// joined, markers written).  Also reached by destruction.
  void wait();

  bool running() const;
  ServerStats stats() const;
  const std::string &socketPath() const;

  /// The endpoint actually bound (valid between start() and wait()); for
  /// TCP with port 0 this carries the kernel-assigned port.
  Endpoint boundEndpoint() const;

  /// Connections currently held in the table (accepted and not yet
  /// reaped); exposed so tests can assert disconnected clients are
  /// actually dropped rather than leaked.
  size_t openConnections() const;

  /// The resident stores (valid between start() and wait()); exposed for
  /// tests and the stats endpoint.
  cache::TraceCache *traceCache();
  cache::SideCondStore *sideCondStore();

  /// Renders the stats payload served to `stats` requests (JSON object,
  /// one line).
  std::string renderStats() const;

  /// Hot model reload: re-parse the model sources (ModelDir overrides
  /// included), swap the registry, bump the generation, and touch the new
  /// fingerprints' generation records.  In-flight jobs finish against the
  /// parse they started with; requests admitted after the swap use the new
  /// one.  False (with \p Err, registry untouched) when a source does not
  /// parse — a bad reload never takes down a serving daemon.  Safe from
  /// any thread; also reached by SIGHUP (tools/islarisd) and the `reload`
  /// wire request.
  bool reloadModels(std::string &Err);

  /// The readiness snapshot served to `health` probes (also handy for
  /// tests: generation, degraded flags, queue pressure).
  HealthInfo healthSnapshot() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace islaris::server

#endif // ISLARIS_SERVER_SERVER_H
