//===- server/ChaosProxy.h - Fault-injecting stream proxy -------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hostile network in a box: a stream proxy that sits between an
/// islarisd client and the server and injects, from a seeded deterministic
/// lottery, the failure modes a real network serves up —
///
///   delay      a forwarded chunk sits in the proxy for a few milliseconds
///   split      a chunk is trickled through in tiny partial writes
///              (exercises every reader's handling of arbitrary chunking)
///   corrupt    one byte of a chunk is flipped (the frame checksum must
///              catch it and attribute it, never desynchronize)
///   drop       only a prefix of a chunk is forwarded, then the connection
///              is reset — a mid-frame loss
///   reset      the connection is torn down immediately (RST where the
///              transport supports it)
///
/// The contract the chaos suite enforces: every injected fault ends as a
/// precisely attributed Diag or a successful retry — never a hang, a
/// crash, or a wrong verdict.  Retry safety is an admission-layer
/// property (trace requests are canonicalized and deduped by cache key),
/// so the proxy needs no protocol knowledge at all; it mangles bytes.
///
/// Decisions come from a splitmix64 stream per connection, seeded from
/// (config seed, connection index), the same philosophy as
/// support::FaultInjector: a run with a fixed seed and a deterministic
/// connection order replays exactly.  Seeding follows the FaultInjector
/// env convention (ISLARIS_FAULT_SEED), with the fault mix in
/// ISLARIS_NETCHAOS ("delay=0.1,split=0.2,corrupt=0.01,...").
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SERVER_CHAOSPROXY_H
#define ISLARIS_SERVER_CHAOSPROXY_H

#include "server/Transport.h"

#include <cstdint>
#include <memory>
#include <string>

namespace islaris::server {

struct ChaosConfig {
  uint64_t Seed = 1;
  /// Per-chunk probabilities in [0, 1].  At most one destructive fault
  /// (reset/drop/corrupt) fires per chunk; delay and split compose with
  /// anything.
  double ResetProb = 0;
  double DropProb = 0;
  double CorruptProb = 0;
  double SplitProb = 0;
  double DelayProb = 0;
  /// Injected latency is uniform in [0, DelayMaxMs].
  double DelayMaxMs = 20;

  /// Builds a config from the environment: ISLARIS_FAULT_SEED for the
  /// seed, ISLARIS_NETCHAOS for the mix, e.g.
  ///   ISLARIS_NETCHAOS="delay=0.2,split=0.3,corrupt=0.02,drop=0.02,reset=0.01"
  /// Unset/malformed entries keep their defaults.
  static ChaosConfig fromEnv();
};

/// Monotonic injection counters, for the "faults actually fired" half of
/// chaos-test assertions.
struct ChaosStats {
  uint64_t Connections = 0;
  uint64_t BytesForwarded = 0;
  uint64_t Delays = 0;
  uint64_t Splits = 0;
  uint64_t Corruptions = 0;
  uint64_t Drops = 0;
  uint64_t Resets = 0;
};

/// The proxy: listens on one endpoint, forwards each accepted connection
/// to the upstream endpoint, mangling per the config.  start() spawns the
/// accept thread and returns; stop() tears down every live connection
/// (clients see resets, exactly like a mid-stream proxy kill).
class ChaosProxy {
public:
  explicit ChaosProxy(ChaosConfig C);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy &) = delete;
  ChaosProxy &operator=(const ChaosProxy &) = delete;

  /// \p ListenSpec / \p UpstreamSpec in the Transport endpoint grammar
  /// (TCP port 0 binds ephemerally; read it back from boundEndpoint()).
  bool start(const std::string &ListenSpec, const std::string &UpstreamSpec,
             std::string &Err);

  /// Tears down the listener and every live connection, joins threads.
  /// Idempotent.
  void stop();

  Endpoint boundEndpoint() const;
  ChaosStats stats() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace islaris::server

#endif // ISLARIS_SERVER_CHAOSPROXY_H
