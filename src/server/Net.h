//===- server/Net.h - Deadline-bounded socket I/O ---------------*- C++ -*-===//
//
// Part of Islaris-CPP (PLDI 2022 "Islaris" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one socket I/O layer every islarisd byte travels through, on both
/// ends of the wire.  Two properties hold at every call site because they
/// hold here:
///
///  - No write is ever un-deadlined.  writeAll poll()s for writability
///    before each send and gives up (IoStatus::Timeout) when the deadline
///    passes, so a peer that stops draining its receive buffer (slow-loris
///    by reading, or a half-open TCP connection) can stall one send for a
///    bounded time, never wedge a worker, the heartbeat tick, or the drain
///    path forever.
///
///  - No write ever raises SIGPIPE and no partial send is ever dropped:
///    MSG_NOSIGNAL on every send, EINTR retried, short sends resumed —
///    the historical per-site `::send` loops are all gone (PR 8).
///
/// Reads go through readSome with the same poll discipline, so a reader
/// thread can wake on a timer tick (to send heartbeats or notice a dead
/// peer) without threading signals or nonblocking-mode state through the
/// socket.
///
//===----------------------------------------------------------------------===//

#ifndef ISLARIS_SERVER_NET_H
#define ISLARIS_SERVER_NET_H

#include <chrono>
#include <cstddef>

namespace islaris::server::net {

/// A wall-clock point after which an I/O operation should give up.
/// Default-constructed deadlines are infinite (block forever), preserving
/// the pre-PR-8 behavior for callers that opt out.
class Deadline {
public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// A deadline \p Seconds from now; <= 0 means infinite.
  static Deadline in(double Seconds) {
    Deadline D;
    if (Seconds > 0) {
      D.Infinite = false;
      D.At = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(Seconds));
    }
    return D;
  }

  bool infinite() const { return Infinite; }

  bool expired() const { return !Infinite && Clock::now() >= At; }

  /// Remaining budget as a poll() timeout: -1 for infinite, 0 when already
  /// expired, else milliseconds left (at least 1 so a sub-millisecond
  /// remainder still polls instead of spinning).
  int pollMs() const {
    if (Infinite)
      return -1;
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
        At - Clock::now());
    if (Left.count() <= 0)
      return 0;
    return int(Left.count() < 1 ? 1 : Left.count());
  }

  double secondsLeft() const {
    if (Infinite)
      return -1;
    return std::chrono::duration<double>(At - Clock::now()).count();
  }

private:
  Clock::time_point At{};
  bool Infinite = true;
};

enum class IoStatus {
  Ok,      ///< The operation completed.
  Timeout, ///< The deadline passed first; the peer is stalled or dead.
  Closed,  ///< Orderly EOF (reads) or EPIPE/ECONNRESET (writes).
  Error,   ///< Any other socket error; errno holds the cause.
};

const char *ioStatusName(IoStatus S);

/// Writes all \p N bytes to \p Fd or reports why it could not: poll for
/// writability under the deadline, send with MSG_NOSIGNAL, retry EINTR,
/// resume short sends.  Timeout means the peer stopped draining us.
IoStatus writeAll(int Fd, const char *Data, size_t N, const Deadline &D);

/// Reads up to \p N bytes into \p Buf under the deadline.  Got is set on
/// Ok (>= 1 byte); Timeout means no bytes arrived in time (the caller
/// decides whether that is a heartbeat tick or a dead peer), Closed is a
/// clean EOF.
IoStatus readSome(int Fd, char *Buf, size_t N, const Deadline &D,
                  size_t &Got);

} // namespace islaris::server::net

#endif // ISLARIS_SERVER_NET_H
