//===- server/Transport.cpp - Listener/endpoint abstraction --------------------===//

#include "server/Transport.h"

#include "server/Net.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace islaris::server;

std::string Endpoint::str() const {
  if (K == Kind::Unix)
    return Path;
  return Host + ":" + std::to_string(Port);
}

bool islaris::server::parseEndpoint(const std::string &Spec, Endpoint &Out,
                                    std::string &Err) {
  Out = Endpoint();
  if (Spec.empty()) {
    Err = "empty endpoint";
    return false;
  }
  // Paths are unambiguous; only a "host:port" shape with a numeric port is
  // TCP.  (A Unix path containing ':' still parses as a path unless its
  // tail is all digits, which no sane socket path has.)
  size_t Colon = Spec.rfind(':');
  if (Spec[0] != '/' && Spec[0] != '.' && Colon != std::string::npos &&
      Colon + 1 < Spec.size()) {
    std::string PortStr = Spec.substr(Colon + 1);
    bool AllDigits = true;
    for (char C : PortStr)
      if (C < '0' || C > '9')
        AllDigits = false;
    if (AllDigits) {
      unsigned long P = std::strtoul(PortStr.c_str(), nullptr, 10);
      if (P > 65535) {
        Err = "port out of range: " + Spec;
        return false;
      }
      Out.K = Endpoint::Kind::Tcp;
      Out.Host = Spec.substr(0, Colon);
      if (Out.Host.empty())
        Out.Host = "127.0.0.1";
      Out.Port = uint16_t(P);
      return true;
    }
  }
  Out.K = Endpoint::Kind::Unix;
  Out.Path = Spec;
  return true;
}

//===----------------------------------------------------------------------===//
// Unix-socket liveness probe.
//===----------------------------------------------------------------------===//

bool islaris::server::unixSocketAlive(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0 || !S_ISSOCK(St.st_mode))
    return false; // missing or not a socket: nothing live to protect
  sockaddr_un Addr{};
  if (Path.size() >= sizeof Addr.sun_path)
    return false;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  bool Alive =
      ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) == 0;
  ::close(Fd);
  return Alive;
}

//===----------------------------------------------------------------------===//
// Listener.
//===----------------------------------------------------------------------===//

Listener::~Listener() { close(); }

void Listener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (OwnsUnixPath && Local.K == Endpoint::Kind::Unix) {
    ::unlink(Local.Path.c_str());
    OwnsUnixPath = false;
  }
}

static bool listenUnix(const Endpoint &E, int &OutFd, std::string &Err) {
  sockaddr_un Addr{};
  if (E.Path.size() >= sizeof Addr.sun_path) {
    Err = "socket path too long for sockaddr_un (" +
          std::to_string(E.Path.size()) + " bytes): " + E.Path;
    return false;
  }
  // Probe before reclaiming: an answering listener means another daemon
  // owns this path right now, and stealing it would orphan that daemon's
  // socket while its clients still hold the address.
  if (unixSocketAlive(E.Path)) {
    Err = "socket " + E.Path +
          " already has a live daemon (refusing to steal it)";
    return false;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  ::unlink(E.Path.c_str()); // stale socket from a dead daemon (probed above)
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, E.Path.c_str(), E.Path.size() + 1);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) < 0) {
    Err = "bind(" + E.Path + "): " + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  if (::listen(Fd, 64) < 0) {
    Err = std::string("listen(): ") + std::strerror(errno);
    ::close(Fd);
    ::unlink(E.Path.c_str());
    return false;
  }
  OutFd = Fd;
  return true;
}

static bool listenTcp(const Endpoint &E, int &OutFd, uint16_t &BoundPort,
                      std::string &Err) {
  addrinfo Hints{};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  Hints.ai_flags = AI_PASSIVE;
  addrinfo *Res = nullptr;
  std::string PortStr = std::to_string(E.Port);
  int GA = ::getaddrinfo(E.Host.c_str(), PortStr.c_str(), &Hints, &Res);
  if (GA != 0) {
    Err = "getaddrinfo(" + E.Host + "): " + ::gai_strerror(GA);
    return false;
  }
  int Fd = -1;
  for (addrinfo *A = Res; A; A = A->ai_next) {
    Fd = ::socket(A->ai_family, A->ai_socktype, A->ai_protocol);
    if (Fd < 0)
      continue;
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof One);
    if (::bind(Fd, A->ai_addr, A->ai_addrlen) == 0 && ::listen(Fd, 64) == 0)
      break;
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  if (Fd < 0) {
    Err = "bind(" + E.str() + "): " + std::strerror(errno);
    return false;
  }
  sockaddr_storage SS{};
  socklen_t SL = sizeof SS;
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&SS), &SL) == 0) {
    if (SS.ss_family == AF_INET)
      BoundPort = ntohs(reinterpret_cast<sockaddr_in *>(&SS)->sin_port);
    else if (SS.ss_family == AF_INET6)
      BoundPort = ntohs(reinterpret_cast<sockaddr_in6 *>(&SS)->sin6_port);
  }
  OutFd = Fd;
  return true;
}

bool Listener::listenOn(const Endpoint &E, std::string &Err) {
  close();
  Local = E;
  if (E.K == Endpoint::Kind::Unix) {
    if (!listenUnix(E, Fd, Err))
      return false;
    OwnsUnixPath = true;
    return true;
  }
  uint16_t Port = E.Port;
  if (!listenTcp(E, Fd, Port, Err))
    return false;
  Local.Port = Port;
  return true;
}

int Listener::acceptOne() {
  if (Fd < 0)
    return -1;
  int C = ::accept(Fd, nullptr, nullptr);
  if (C < 0)
    return -1;
  if (Local.K == Endpoint::Kind::Tcp) {
    int One = 1;
    ::setsockopt(C, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
  }
  return C;
}

//===----------------------------------------------------------------------===//
// Connect.
//===----------------------------------------------------------------------===//

/// Maps a failed connect(2)'s errno onto the caller-facing taxonomy.
/// ECONNREFUSED and ENOENT (missing unix socket path) both mean "nobody is
/// home" — the stale-socket shape unixSocketAlive reclaims.  EAGAIN on a
/// unix stream socket means the listener's accept backlog is full: alive
/// but saturated, which for pacing purposes is a timeout, not a refusal.
static DialError classifyDialErrno(int E) {
  switch (E) {
  case ECONNREFUSED:
  case ENOENT:
    return DialError::Refused;
  case EAGAIN:
  case ETIMEDOUT:
    return DialError::Timeout;
  default:
    return DialError::Other;
  }
}

/// Connect with a deadline: flip nonblocking, connect, poll for
/// writability, read SO_ERROR, flip back.  The OS default TCP connect
/// timeout is minutes — far past any request deadline we would carry.
static bool connectTimed(int Fd, const sockaddr *Addr, socklen_t Len,
                         double TimeoutSeconds, std::string &Err,
                         DialError &DE) {
  if (TimeoutSeconds <= 0) {
    if (::connect(Fd, Addr, Len) < 0) {
      DE = classifyDialErrno(errno);
      Err = std::string("connect(): ") + std::strerror(errno);
      return false;
    }
    return true;
  }
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  int R = ::connect(Fd, Addr, Len);
  if (R < 0 && errno != EINPROGRESS) {
    DE = classifyDialErrno(errno);
    Err = std::string("connect(): ") + std::strerror(errno);
    return false;
  }
  if (R < 0) {
    net::Deadline D = net::Deadline::in(TimeoutSeconds);
    while (true) {
      pollfd P{Fd, POLLOUT, 0};
      int Ms = D.pollMs();
      if (Ms == 0) {
        DE = DialError::Timeout;
        Err = "connect(): timed out after " +
              std::to_string(TimeoutSeconds) + "s";
        return false;
      }
      int PR = ::poll(&P, 1, Ms);
      if (PR < 0 && errno == EINTR)
        continue;
      if (PR <= 0) {
        if (D.expired()) {
          DE = DialError::Timeout;
          Err = "connect(): timed out after " +
                std::to_string(TimeoutSeconds) + "s";
          return false;
        }
        continue;
      }
      break;
    }
    int SoErr = 0;
    socklen_t SL = sizeof SoErr;
    if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &SL) < 0 ||
        SoErr != 0) {
      DE = classifyDialErrno(SoErr ? SoErr : errno);
      Err = std::string("connect(): ") + std::strerror(SoErr ? SoErr : errno);
      return false;
    }
  }
  ::fcntl(Fd, F_SETFL, Flags);
  return true;
}

int islaris::server::connectEndpoint(const Endpoint &E, double TimeoutSeconds,
                                     std::string &Err, DialError *DE) {
  DialError Local = DialError::None;
  DialError &D = DE ? *DE : Local;
  D = DialError::None;
  if (E.K == Endpoint::Kind::Unix) {
    sockaddr_un Addr{};
    if (E.Path.size() >= sizeof Addr.sun_path) {
      Err = "socket path too long: " + E.Path;
      D = DialError::Other;
      return -1;
    }
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      Err = std::string("socket(): ") + std::strerror(errno);
      D = DialError::Other;
      return -1;
    }
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, E.Path.c_str(), E.Path.size() + 1);
    std::string CErr;
    if (!connectTimed(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr,
                      TimeoutSeconds, CErr, D)) {
      Err = E.Path + ": " + CErr;
      ::close(Fd);
      return -1;
    }
    return Fd;
  }

  addrinfo Hints{};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  std::string PortStr = std::to_string(E.Port);
  int GA = ::getaddrinfo(E.Host.c_str(), PortStr.c_str(), &Hints, &Res);
  if (GA != 0) {
    Err = "getaddrinfo(" + E.Host + "): " + ::gai_strerror(GA);
    D = DialError::Other;
    return -1;
  }
  int Fd = -1;
  std::string LastErr = "no addresses";
  D = DialError::Other;
  for (addrinfo *A = Res; A; A = A->ai_next) {
    Fd = ::socket(A->ai_family, A->ai_socktype, A->ai_protocol);
    if (Fd < 0)
      continue;
    std::string CErr;
    DialError AD = DialError::None;
    if (connectTimed(Fd, A->ai_addr, A->ai_addrlen, TimeoutSeconds, CErr,
                     AD)) {
      int One = 1;
      ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
      D = DialError::None;
      break;
    }
    LastErr = CErr;
    D = AD;
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  if (Fd < 0)
    Err = E.str() + ": " + LastErr;
  return Fd;
}

int islaris::server::connectSpec(const std::string &Spec,
                                 double TimeoutSeconds, std::string &Err,
                                 DialError *DE) {
  Endpoint E;
  if (!parseEndpoint(Spec, E, Err)) {
    if (DE)
      *DE = DialError::Other;
    return -1;
  }
  return connectEndpoint(E, TimeoutSeconds, Err, DE);
}
