//===- bench/bench_cache.cpp - Trace cache and batch driver (E6) -------------------===//
//
// Exercises the trace-cache subsystem over the full Fig. 12 case-study
// suite and checks its three contract points:
//
//   1. a warm cache serves the whole suite without re-executing a single
//      instruction (100% hit rate),
//   2. a parallel cold run produces the same results as a serial cold run
//      (timing is printed; the speedup is informational since CI machines
//      vary), and
//   3. traces are byte-identical across the serial, cached, and parallel
//      generation paths (checked trace-by-trace on a memcpy-shaped
//      program, since CaseResult exposes only aggregates).
//
// Exit status reflects correctness only, never timing.
//
//===----------------------------------------------------------------------===//

#include "cache/TraceCache.h"

#include "arch/AArch64.h"
#include "frontend/CaseStudies.h"
#include "frontend/Verifier.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <thread>

#include <unistd.h>

using namespace islaris;
using islaris::frontend::CaseResult;
using islaris::frontend::SuiteOptions;
using islaris::frontend::Verifier;

namespace {

double now() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

struct SuiteRun {
  std::vector<CaseResult> Rows;
  double Seconds = 0;
  unsigned Executed = 0, Hits = 0, Deduped = 0, Instrs = 0;
  bool Ok = true;
};

SuiteRun runSuite(unsigned Threads, cache::TraceCache *Cache) {
  SuiteRun R;
  SuiteOptions O;
  O.Threads = Threads;
  O.Cache = Cache;
  double T0 = now();
  R.Rows = frontend::runAllCaseStudies(O);
  R.Seconds = now() - T0;
  for (const CaseResult &Row : R.Rows) {
    R.Ok = R.Ok && Row.Ok;
    R.Executed += Row.TracesExecuted;
    R.Hits += Row.CacheHits;
    R.Deduped += Row.Deduped;
    R.Instrs += Row.AsmInstrs;
  }
  return R;
}

void printRun(const char *Label, const SuiteRun &R) {
  std::printf("  %-24s %6.2f s | executed %3u, dedup %2u, hits %3u of %3u "
              "instrs | proofs %s\n",
              Label, R.Seconds, R.Executed, R.Deduped, R.Hits, R.Instrs,
              R.Ok ? "ok" : "FAILED");
}

/// Per-trace byte-identity across generation paths, on a program with
/// repeated opcodes so dedup, cache, and parallel paths all engage.
bool traceIdentityCheck() {
  namespace e = arch::aarch64::enc;
  std::map<uint64_t, uint32_t> Code;
  uint64_t A = 0x1000;
  for (int I = 0; I < 4; ++I) { // a memcpy-loop shape, unrolled
    Code[A] = e::ldrImm(0, 2, 0, 0), A += 4;
    Code[A] = e::strImm(0, 2, 1, 0), A += 4;
    Code[A] = e::addImm(0, 0, 1), A += 4;
    Code[A] = e::addImm(1, 1, 1), A += 4;
  }
  Code[A] = e::ret();

  auto setup = [&](Verifier &V) {
    V.addCode(Code);
    V.defaults()
        .assume(itl::Reg("PSTATE", "EL"), BitVec(2, 0b01))
        .assume(itl::Reg("PSTATE", "SP"), BitVec(1, 1))
        .assume(itl::Reg("SCTLR_EL1"), BitVec(64, 0));
  };
  auto texts = [](Verifier &V) {
    std::map<uint64_t, std::string> Out;
    for (const auto &[Addr, T] : V.instrMap())
      Out[Addr] = T->toString();
    return Out;
  };

  std::string Err;
  Verifier Serial(frontend::aarch64());
  setup(Serial);
  if (!Serial.generateTraces(Err)) {
    std::printf("  serial generation FAILED: %s\n", Err.c_str());
    return false;
  }

  cache::TraceCache C;
  Verifier Warmer(frontend::aarch64());
  Warmer.setTraceCache(&C);
  setup(Warmer);
  Verifier Cached(frontend::aarch64());
  Cached.setTraceCache(&C);
  setup(Cached);
  Verifier Parallel(frontend::aarch64());
  Parallel.setParallelism(4);
  setup(Parallel);
  if (!Warmer.generateTraces(Err) || !Cached.generateTraces(Err) ||
      !Parallel.generateTraces(Err)) {
    std::printf("  cached/parallel generation FAILED: %s\n", Err.c_str());
    return false;
  }

  bool Ok = texts(Cached) == texts(Serial) &&
            texts(Parallel) == texts(Serial) &&
            Cached.genStats().Executed == 0;
  std::printf("  serial vs cached vs parallel traces (%zu instrs): %s, "
              "warm run executed %u\n",
              Code.size(), Ok ? "byte-identical" : "MISMATCH",
              Cached.genStats().Executed);
  return Ok;
}

} // namespace

int main() {
  unsigned Hw = std::thread::hardware_concurrency();
  std::printf("Trace cache benchmark (E6): Fig. 12 suite, %u hardware "
              "threads\n\n", Hw);

  bool Ok = true;

  // Persistence is on by default: the shared cache writes through to a
  // scratch directory (wiped up front so the cold pass stays cold), and a
  // dedicated pass re-reads the whole suite from disk through a cleared
  // in-memory map.
  std::string CacheDir =
      (std::filesystem::temp_directory_path() /
       ("islaris-bench-cache-" + std::to_string(uint64_t(::getpid()))))
          .string();
  std::error_code EC;
  std::filesystem::remove_all(CacheDir, EC);
  cache::TraceCacheConfig Cfg;
  Cfg.Persist = true;
  Cfg.Dir = CacheDir;

  std::printf("Full suite, shared persistent cache:\n");
  cache::TraceCache C(Cfg);
  SuiteRun ColdSerial = runSuite(1, &C);
  printRun("cold serial", ColdSerial);
  SuiteRun Warm = runSuite(1, &C);
  printRun("warm serial", Warm);
  C.clearMemory();
  SuiteRun Disk = runSuite(1, &C);
  printRun("warm serial (from disk)", Disk);
  SuiteRun ParCold = runSuite(0, nullptr); // no cache: pure parallelism
  printRun("cold parallel (no cache)", ParCold);
  SuiteRun ParWarm = runSuite(0, &C);
  printRun("warm parallel", ParWarm);

  Ok &= ColdSerial.Ok && Warm.Ok && Disk.Ok && ParCold.Ok && ParWarm.Ok;

  std::printf("\nChecks:\n");
  bool WarmAllHits = Warm.Executed == 0 && Warm.Hits == Warm.Instrs;
  std::printf("  warm cache re-executes nothing (100%% hits) ... %s "
              "(%u executed, %u/%u hits)\n",
              WarmAllHits ? "yes" : "NO", Warm.Executed, Warm.Hits,
              Warm.Instrs);
  Ok &= WarmAllHits;

  bool DiskAllHits = Disk.Executed == 0 && Disk.Hits == Disk.Instrs;
  std::printf("  disk-warm cache re-executes nothing .......... %s "
              "(%u executed, %u/%u hits)\n",
              DiskAllHits ? "yes" : "NO", Disk.Executed, Disk.Hits,
              Disk.Instrs);
  Ok &= DiskAllHits;

  bool SameEvents = true;
  for (size_t I = 0; I < ColdSerial.Rows.size(); ++I) {
    SameEvents &= Warm.Rows[I].ItlEvents == ColdSerial.Rows[I].ItlEvents;
    SameEvents &= ParCold.Rows[I].ItlEvents == ColdSerial.Rows[I].ItlEvents;
    SameEvents &=
        ParCold.Rows[I].Proof.PathsVerified ==
        ColdSerial.Rows[I].Proof.PathsVerified;
  }
  std::printf("  warm/parallel rows match cold serial rows ..... %s\n",
              SameEvents ? "yes" : "NO");
  Ok &= SameEvents;

  Ok &= traceIdentityCheck();

  if (Hw >= 2) {
    double Speedup = ParCold.Seconds > 0
                         ? ColdSerial.Seconds / ParCold.Seconds
                         : 0;
    std::printf("  parallel cold speedup over serial cold ........ %.2fx "
                "(informational)\n", Speedup);
  }
  double WarmSpeedup = Warm.Seconds > 0 ? ColdSerial.Seconds / Warm.Seconds
                                        : 0;
  std::printf("  warm speedup over cold ........................ %.2fx "
              "(informational)\n", WarmSpeedup);

  std::filesystem::remove_all(CacheDir, EC);
  std::printf("\n%s\n", Ok ? "all cache checks passed"
                          : "CACHE CHECKS FAILED");
  return Ok ? 0 : 1;
}
