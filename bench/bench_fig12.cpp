//===- bench/bench_fig12.cpp - The Fig. 12 evaluation table (E1) ------------------===//
//
// Regenerates the paper's single evaluation table: for each case study,
// the code size, ITL event count, specification size, manual-hint count,
// symbolic-execution ("Isla") time and verification ("Coq") time, the
// latter split into separation-logic automation and side-condition solving
// as the paper splits its Coq column.  Paper reference values are printed
// alongside for shape comparison (absolute times are expected to differ:
// different machine, solver, and model scale).
//
//===----------------------------------------------------------------------===//

#include "frontend/CaseStudies.h"

#include "cache/SideCondCache.h"
#include "cache/TraceCache.h"

#include <chrono>
#include <cstdio>
#include <filesystem>

#include <unistd.h>

using islaris::frontend::CaseResult;

namespace {

struct PaperRow {
  const char *Name;
  const char *Isa;
  unsigned Asm, Itl, Spec, Proof;
  double IslaSec, CoqAutoSec, CoqSideSec;
};

// Fig. 12 of the paper (Coq time columns 1 and 2 of the '/' split).
const PaperRow Paper[] = {
    {"memcpy", "Arm", 8, 169, 20, 55, 6, 9, 2},
    {"memcpy", "RV", 8, 134, 19, 54, 1, 10, 4},
    {"hvc", "Arm", 13, 436, 93, 5, 10, 28, 5},
    {"pKVM", "Arm", 47, 1070, 159, 232, 37, 67, 16},
    {"unaligned", "Arm", 1, 104, 89, 29, 2, 10, 12},
    {"UART", "Arm", 14, 207, 33, 42, 10, 9, 3},
    {"rbit", "Arm", 2, 26, 18, 27, 3, 4, 73},
    {"bin.search", "Arm", 32, 741, 25, 146, 25, 54, 16},
    {"bin.search", "RV", 48, 801, 25, 108, 5, 63, 22},
};

} // namespace

int main() {
  std::printf("Fig. 12 reproduction: example sizes and times\n");
  std::printf("(per row: this reproduction / paper reference)\n\n");
  std::printf("%-11s %-4s | %13s | %13s | %11s | %11s | %15s | %23s\n",
              "Test", "ISA", "asm (rep/pap)", "ITL (rep/pap)",
              "Spec (r/p)", "Hints (r/p)", "Isla s (r/p)",
              "Verify s auto+side (r/p)");
  std::printf("--------------------------------------------------------------"
              "----------------------------------------------------\n");

  // Persistent caches are on by default: the suite shares a trace cache
  // and side-condition store in the standard cache directory
  // (ISLARIS_CACHE_DIR override), so re-running the bench demonstrates a
  // warm start — the reuse section below shows how much was served.
  namespace ifr = islaris::frontend;
  namespace ica = islaris::cache;
  ica::TraceCacheConfig TCfg;
  TCfg.Persist = true;
  ica::TraceCache PersistCache(TCfg);
  ica::SideCondConfig PCfg;
  PCfg.Persist = true;
  ica::SideCondStore PersistSide(PCfg);
  ifr::SuiteOptions MainOpts;
  MainOpts.Cache = &PersistCache;
  MainOpts.SideCond = &PersistSide;
  std::vector<CaseResult> Rows =
      islaris::frontend::runAllCaseStudies(MainOpts);
  bool AllOk = true;
  for (size_t I = 0; I < Rows.size(); ++I) {
    const CaseResult &R = Rows[I];
    const PaperRow &P = Paper[I];
    if (!R.Ok) {
      std::printf("%-11s %-4s | FAILED: %s\n", R.Name.c_str(),
                  R.Isa.c_str(), R.D.render().c_str());
      AllOk = false;
      continue;
    }
    std::printf("%-11s %-4s | %5u / %5u | %5u / %5u | %4u / %4u | "
                "%4u / %4u | %6.2f / %5.0f | %5.2f + %5.2f / %3.0f + %3.0f\n",
                R.Name.c_str(), R.Isa.c_str(), R.AsmInstrs, P.Asm,
                R.ItlEvents, P.Itl, R.SpecSize, P.Spec, R.Hints, P.Proof,
                R.IslaSeconds, P.IslaSec, R.Proof.automationSeconds(),
                R.Proof.SideCondSeconds, P.CoqAutoSec, P.CoqSideSec);
  }
  // Trace-generation reuse: before the trace-cache subsystem this was
  // invisible — deduped/cached instructions silently shrank "Isla s".
  // Surface it so the time column can be read against the work performed.
  std::printf("\nTrace generation reuse (per row: executed + deduped + "
              "cache hits = asm):\n");
  unsigned TotExec = 0, TotDedup = 0, TotHits = 0, TotInstr = 0,
           TotMemo = 0;
  for (const CaseResult &R : Rows) {
    if (!R.Ok)
      continue;
    std::printf("  %-11s %-4s : %3u + %3u + %3u = %3u\n", R.Name.c_str(),
                R.Isa.c_str(), R.TracesExecuted, R.Deduped, R.CacheHits,
                R.AsmInstrs);
    TotExec += R.TracesExecuted;
    TotDedup += R.Deduped;
    TotHits += R.CacheHits;
    TotInstr += R.AsmInstrs;
    TotMemo += R.IslaMemoHits;
  }
  if (TotInstr)
    std::printf("  total: %u of %u instructions executed (%.0f%% saved by "
                "dedup/cache)\n",
                TotExec, TotInstr,
                100.0 * double(TotInstr - TotExec) / double(TotInstr));
  std::printf("  executor solver queries answered by the memo table: %u\n",
              TotMemo);

  // Side-condition solver cache: run the suite again twice against a
  // persistent store in a scratch directory — once cold (populating it)
  // and once warm in a fresh store instance (simulating a second process
  // reading the same cache dir).  The cold pass must be bit-identical to
  // the uncached baseline above; the warm pass must answer at least half
  // of all side-condition SAT calls from the store.
  namespace ifr = islaris::frontend;
  namespace ica = islaris::cache;
  std::string SideDir =
      (std::filesystem::temp_directory_path() /
       ("islaris-sidecond-bench-" + std::to_string(uint64_t(::getpid()))))
          .string();
  std::error_code EC;
  std::filesystem::remove_all(SideDir, EC);
  ica::SideCondConfig SCfg;
  SCfg.Persist = true;
  SCfg.Dir = SideDir;

  auto satCalls = [](const std::vector<CaseResult> &Rs) {
    uint64_t N = 0;
    for (const CaseResult &R : Rs)
      N += R.Proof.SolverSatCalls;
    return N;
  };
  auto sameRows = [](const std::vector<CaseResult> &A,
                     const std::vector<CaseResult> &B) {
    if (A.size() != B.size())
      return false;
    for (size_t I = 0; I < A.size(); ++I)
      if (A[I].Ok != B[I].Ok || A[I].ItlEvents != B[I].ItlEvents ||
          A[I].AsmInstrs != B[I].AsmInstrs ||
          A[I].Proof.PathsVerified != B[I].Proof.PathsVerified ||
          A[I].Proof.EventsProcessed != B[I].Proof.EventsProcessed ||
          A[I].Proof.Entailments != B[I].Proof.Entailments ||
          A[I].Proof.SolverQueries != B[I].Proof.SolverQueries)
        return false;
    return true;
  };

  std::vector<CaseResult> Cold, Warm;
  {
    ica::SideCondStore Store(SCfg);
    ifr::SuiteOptions O;
    O.SideCond = &Store;
    Cold = ifr::runAllCaseStudies(O);
  }
  {
    ica::SideCondStore Store(SCfg); // fresh instance: memory is cold
    ifr::SuiteOptions O;
    O.SideCond = &Store;
    Warm = ifr::runAllCaseStudies(O);
  }
  std::filesystem::remove_all(SideDir, EC);

  uint64_t ColdSat = satCalls(Cold), WarmSat = satCalls(Warm);
  std::printf("\nSide-condition solver cache (cold populate -> warm rerun "
              "from disk):\n");
  for (size_t I = 0; I < Warm.size() && I < Cold.size(); ++I)
    std::printf("  %-11s %-4s : SAT calls %4llu -> %3llu   (memo %llu, "
                "store %llu of %llu queries)\n",
                Warm[I].Name.c_str(), Warm[I].Isa.c_str(),
                (unsigned long long)Cold[I].Proof.SolverSatCalls,
                (unsigned long long)Warm[I].Proof.SolverSatCalls,
                (unsigned long long)Warm[I].Proof.SolverMemoHits,
                (unsigned long long)Warm[I].Proof.SolverStoreHits,
                (unsigned long long)Warm[I].Proof.SolverQueries);
  bool ColdIdentical = sameRows(Rows, Cold) && sameRows(Rows, Warm);
  double Elim = ColdSat
                    ? 100.0 * double(ColdSat - WarmSat) / double(ColdSat)
                    : 100.0;
  std::printf("  total: %llu -> %llu side-condition SAT calls "
              "(%.0f%% eliminated; criterion >= 50%%) ...... %s\n",
              (unsigned long long)ColdSat, (unsigned long long)WarmSat,
              Elim, WarmSat * 2 <= ColdSat ? "ok" : "BELOW CRITERION");
  std::printf("  cold-run results bit-identical to uncached ... %s\n",
              ColdIdentical ? "yes" : "NO");
  AllOk = AllOk && WarmSat * 2 <= ColdSat && ColdIdentical;

  // Path-exploration engines: re-run the suite uncached under the legacy
  // replay engine and the snapshot engine.  Traces are bit-identical by
  // construction; what differs is the work — replay re-executes the shared
  // prefix of every path, the snapshot engine restores it from a
  // checkpoint.  Statement counts are deterministic (the criterion); wall
  // clock is informational.
  auto now = [] {
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch()).count();
  };
  auto stmts = [](const std::vector<CaseResult> &Rs) {
    uint64_t N = 0;
    for (const CaseResult &R : Rs)
      N += R.IslaStmts;
    return N;
  };
  ifr::SuiteOptions RepOpts;
  RepOpts.Engine = islaris::isla::ExecEngine::Replay;
  double T0 = now();
  std::vector<CaseResult> Rep = ifr::runAllCaseStudies(RepOpts);
  double RepWall = now() - T0;
  ifr::SuiteOptions SnapOpts; // snapshot engine, still uncached
  T0 = now();
  std::vector<CaseResult> Snap = ifr::runAllCaseStudies(SnapOpts);
  double SnapWall = now() - T0;
  uint64_t RepStmts = stmts(Rep), SnapStmts = stmts(Snap);
  uint64_t Skipped = 0;
  for (const CaseResult &R : Snap)
    Skipped += R.IslaStmtsSkipped;
  bool EnginesAgree = sameRows(Rep, Snap);
  std::printf("\nPath-exploration engines (uncached; replay -> "
              "snapshot):\n");
  std::printf("  model statements executed .... %llu -> %llu "
              "(%.2fx; %llu restored from checkpoints)\n",
              (unsigned long long)RepStmts, (unsigned long long)SnapStmts,
              SnapStmts ? double(RepStmts) / double(SnapStmts) : 0.0,
              (unsigned long long)Skipped);
  std::printf("  trace-generation wall time ... %.2f s -> %.2f s "
              "(informational)\n", RepWall, SnapWall);
  std::printf("  rows bit-identical across engines ............. %s\n",
              EnginesAgree ? "yes" : "NO");
  std::printf("  snapshot executes strictly fewer statements ... %s\n",
              SnapStmts < RepStmts ? "yes" : "NO");
  AllOk = AllOk && EnginesAgree && SnapStmts < RepStmts;

  // Diagnostics and fault tolerance: every row carries its structured
  // diagnostic and the batch driver's retry/quarantine counters, so a red
  // run can be triaged from the summary alone.
  unsigned TotRetries = 0, TotQuarantined = 0;
  for (const CaseResult &R : Rows) {
    TotRetries += R.Retries;
    TotQuarantined += R.Quarantined;
  }
  std::printf("\nDiagnostics (structured rows for failures; driver fault "
              "tolerance):\n");
  bool AnyDiag = false;
  for (const CaseResult &R : Rows)
    if (!R.Ok) {
      AnyDiag = true;
      std::printf("  %-11s %-4s : %s\n", R.Name.c_str(), R.Isa.c_str(),
                  R.D.render().c_str());
    }
  if (!AnyDiag)
    std::printf("  no failing rows\n");
  std::printf("  batch-driver retries: %u, quarantined jobs: %u\n",
              TotRetries, TotQuarantined);

  std::printf("\nShape checks (the qualitative claims that must carry "
              "over):\n");
  auto row = [&](const char *N, const char *I) -> const CaseResult & {
    for (const CaseResult &R : Rows)
      if (R.Name == N && R.Isa == I)
        return R;
    static CaseResult Dummy;
    return Dummy;
  };
  auto total = [](const CaseResult &R) {
    return R.IslaSeconds + R.Proof.TotalSeconds;
  };
  bool PkvmLargest = true;
  for (const CaseResult &R : Rows)
    PkvmLargest = PkvmLargest && R.ItlEvents <= row("pKVM", "Arm").ItlEvents;
  std::printf("  pKVM has the most ITL events ............ %s\n",
              PkvmLargest ? "yes (as in the paper)" : "NO");
  std::printf("  rbit is the smallest example ............ %s\n",
              row("rbit", "Arm").ItlEvents <= 60 ? "yes" : "NO");
  std::printf("  pKVM is the most expensive end to end ... %s\n",
              total(row("pKVM", "Arm")) >= total(row("rbit", "Arm"))
                  ? "yes"
                  : "NO");

  // Suite-level aggregation: distinguish "a proof failed" (exit 1) from
  // "the infrastructure broke" (exit 2, dominates) so CI can triage a red
  // run without reading the table.
  islaris::frontend::SuiteSummary Sum = islaris::frontend::summarize(Rows);
  int Exit = islaris::frontend::suiteExitCode(Rows);
  std::printf("\nSuite summary: %u passed, %u proof failures, %u "
              "infrastructure errors\n",
              Sum.Passed, Sum.ProofFailures, Sum.InfraErrors);
  if (Exit == 0 && !AllOk)
    Exit = 1; // a bench-specific criterion (cache reuse, identity) failed
  return Exit;
}
