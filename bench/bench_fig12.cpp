//===- bench/bench_fig12.cpp - The Fig. 12 evaluation table (E1) ------------------===//
//
// Regenerates the paper's single evaluation table: for each case study,
// the code size, ITL event count, specification size, manual-hint count,
// symbolic-execution ("Isla") time and verification ("Coq") time, the
// latter split into separation-logic automation and side-condition solving
// as the paper splits its Coq column.  Paper reference values are printed
// alongside for shape comparison (absolute times are expected to differ:
// different machine, solver, and model scale).
//
//===----------------------------------------------------------------------===//

#include "frontend/CaseStudies.h"

#include <cstdio>

using islaris::frontend::CaseResult;

namespace {

struct PaperRow {
  const char *Name;
  const char *Isa;
  unsigned Asm, Itl, Spec, Proof;
  double IslaSec, CoqAutoSec, CoqSideSec;
};

// Fig. 12 of the paper (Coq time columns 1 and 2 of the '/' split).
const PaperRow Paper[] = {
    {"memcpy", "Arm", 8, 169, 20, 55, 6, 9, 2},
    {"memcpy", "RV", 8, 134, 19, 54, 1, 10, 4},
    {"hvc", "Arm", 13, 436, 93, 5, 10, 28, 5},
    {"pKVM", "Arm", 47, 1070, 159, 232, 37, 67, 16},
    {"unaligned", "Arm", 1, 104, 89, 29, 2, 10, 12},
    {"UART", "Arm", 14, 207, 33, 42, 10, 9, 3},
    {"rbit", "Arm", 2, 26, 18, 27, 3, 4, 73},
    {"bin.search", "Arm", 32, 741, 25, 146, 25, 54, 16},
    {"bin.search", "RV", 48, 801, 25, 108, 5, 63, 22},
};

} // namespace

int main() {
  std::printf("Fig. 12 reproduction: example sizes and times\n");
  std::printf("(per row: this reproduction / paper reference)\n\n");
  std::printf("%-11s %-4s | %13s | %13s | %11s | %11s | %15s | %23s\n",
              "Test", "ISA", "asm (rep/pap)", "ITL (rep/pap)",
              "Spec (r/p)", "Hints (r/p)", "Isla s (r/p)",
              "Verify s auto+side (r/p)");
  std::printf("--------------------------------------------------------------"
              "----------------------------------------------------\n");

  std::vector<CaseResult> Rows = islaris::frontend::runAllCaseStudies();
  bool AllOk = true;
  for (size_t I = 0; I < Rows.size(); ++I) {
    const CaseResult &R = Rows[I];
    const PaperRow &P = Paper[I];
    if (!R.Ok) {
      std::printf("%-11s %-4s | FAILED: %s\n", R.Name.c_str(),
                  R.Isa.c_str(), R.Error.c_str());
      AllOk = false;
      continue;
    }
    std::printf("%-11s %-4s | %5u / %5u | %5u / %5u | %4u / %4u | "
                "%4u / %4u | %6.2f / %5.0f | %5.2f + %5.2f / %3.0f + %3.0f\n",
                R.Name.c_str(), R.Isa.c_str(), R.AsmInstrs, P.Asm,
                R.ItlEvents, P.Itl, R.SpecSize, P.Spec, R.Hints, P.Proof,
                R.IslaSeconds, P.IslaSec, R.Proof.automationSeconds(),
                R.Proof.SideCondSeconds, P.CoqAutoSec, P.CoqSideSec);
  }
  // Trace-generation reuse: before the trace-cache subsystem this was
  // invisible — deduped/cached instructions silently shrank "Isla s".
  // Surface it so the time column can be read against the work performed.
  std::printf("\nTrace generation reuse (per row: executed + deduped + "
              "cache hits = asm):\n");
  unsigned TotExec = 0, TotDedup = 0, TotHits = 0, TotInstr = 0;
  for (const CaseResult &R : Rows) {
    if (!R.Ok)
      continue;
    std::printf("  %-11s %-4s : %3u + %3u + %3u = %3u\n", R.Name.c_str(),
                R.Isa.c_str(), R.TracesExecuted, R.Deduped, R.CacheHits,
                R.AsmInstrs);
    TotExec += R.TracesExecuted;
    TotDedup += R.Deduped;
    TotHits += R.CacheHits;
    TotInstr += R.AsmInstrs;
  }
  if (TotInstr)
    std::printf("  total: %u of %u instructions executed (%.0f%% saved by "
                "dedup/cache)\n",
                TotExec, TotInstr,
                100.0 * double(TotInstr - TotExec) / double(TotInstr));

  std::printf("\nShape checks (the qualitative claims that must carry "
              "over):\n");
  auto row = [&](const char *N, const char *I) -> const CaseResult & {
    for (const CaseResult &R : Rows)
      if (R.Name == N && R.Isa == I)
        return R;
    static CaseResult Dummy;
    return Dummy;
  };
  auto total = [](const CaseResult &R) {
    return R.IslaSeconds + R.Proof.TotalSeconds;
  };
  bool PkvmLargest = true;
  for (const CaseResult &R : Rows)
    PkvmLargest = PkvmLargest && R.ItlEvents <= row("pKVM", "Arm").ItlEvents;
  std::printf("  pKVM has the most ITL events ............ %s\n",
              PkvmLargest ? "yes (as in the paper)" : "NO");
  std::printf("  rbit is the smallest example ............ %s\n",
              row("rbit", "Arm").ItlEvents <= 60 ? "yes" : "NO");
  std::printf("  pKVM is the most expensive end to end ... %s\n",
              total(row("pKVM", "Arm")) >= total(row("rbit", "Arm"))
                  ? "yes"
                  : "NO");
  return AllOk ? 0 : 1;
}
