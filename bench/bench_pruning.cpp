//===- bench/bench_pruning.cpp - Constraint-based pruning sweep (E4) ---------------===//
//
// The §2.1 claim: without the EL/SP configuration constraints, the trace
// of add sp, sp, #0x40 "distinguishes five cases (one for SP=0, and one
// for each of the four exception levels when SP=1)"; with them it is a
// single linear trace.  Sweeps the assumption set and reports the case
// counts and trace sizes.
//
//===----------------------------------------------------------------------===//

#include "isla/Executor.h"
#include "models/Models.h"

#include <cstdio>

using namespace islaris;
using islaris::itl::Reg;

int main() {
  smt::TermBuilder TB;
  isla::Executor Ex(models::aarch64Model(), TB);
  constexpr uint32_t AddSp = 0x910103ffu;

  struct Config {
    const char *Name;
    isla::Assumptions A;
  };
  std::vector<Config> Sweep;
  Sweep.push_back({"no assumptions", isla::Assumptions()});
  {
    isla::Assumptions A;
    A.assume(Reg("PSTATE", "SP"), BitVec(1, 1));
    Sweep.push_back({"SP=1 only", std::move(A)});
  }
  {
    isla::Assumptions A;
    A.assume(Reg("PSTATE", "SP"), BitVec(1, 0));
    Sweep.push_back({"SP=0 only", std::move(A)});
  }
  {
    isla::Assumptions A;
    A.assume(Reg("PSTATE", "EL"), BitVec(2, 0b10));
    Sweep.push_back({"EL=2 only", std::move(A)});
  }
  {
    isla::Assumptions A;
    A.assume(Reg("PSTATE", "EL"), BitVec(2, 0b10));
    A.assume(Reg("PSTATE", "SP"), BitVec(1, 1));
    Sweep.push_back({"EL=2, SP=1 (Fig. 3)", std::move(A)});
  }

  std::printf("Pruning sweep for add sp, sp, #0x40 (0x910103ff):\n\n");
  std::printf("%-22s | %6s | %7s | %7s | %s\n", "assumptions", "paths",
              "events", "queries", "note");
  std::printf("-----------------------------------------------------------"
              "---------\n");
  bool Ok = true;
  for (const Config &C : Sweep) {
    isla::ExecResult R = Ex.run(isla::OpcodeSpec::concrete(AddSp), C.A);
    if (!R.Ok) {
      std::printf("%-22s | error: %s\n", C.Name, R.Error.c_str());
      Ok = false;
      continue;
    }
    const char *Note = "";
    if (std::string(C.Name) == "no assumptions")
      Note = R.Stats.Paths == 5 ? "the paper's five banked-SP cases"
                                : "UNEXPECTED (paper: 5)";
    if (std::string(C.Name) == "EL=2, SP=1 (Fig. 3)")
      Note = R.Stats.Paths == 1 ? "fully pruned, linear trace"
                                : "UNEXPECTED (paper: 1)";
    std::printf("%-22s | %6u | %7u | %7u | %s\n", C.Name, R.Stats.Paths,
                R.Stats.Events, R.Stats.SolverQueries, Note);
  }
  return Ok ? 0 : 1;
}
